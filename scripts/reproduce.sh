#!/usr/bin/env bash
# Full reproduction: build, run the entire test suite, then regenerate every
# figure/table. Outputs land in test_output.txt and bench_output.txt at the
# repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo
echo "Done. See test_output.txt and bench_output.txt."
