#!/usr/bin/env bash
# Full reproduction: build, run the entire test suite, then regenerate every
# figure/table. Outputs land in test_output.txt and bench_output.txt at the
# repository root.
#
# Usage: scripts/reproduce.sh [-j N] [--shards N]
#   -j N        worker threads per figure binary (default: all cores; -j1 is
#               the exact sequential run — figure output is byte-identical at
#               any -j)
#   --shards N  intra-scenario PDES shards per simulation (default 1; figure
#               output is byte-identical at any shard count)
#
# Figure binaries exit non-zero when a PAPER-vs-MEASURED row goes [off] or a
# qualitative claim prints [VIOLATED]; with pipefail below, a shape
# regression fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SHARDS=1
while [ $# -gt 0 ]; do
  case "$1" in
    -j) JOBS="$2"; shift 2 ;;
    -j*) JOBS="${1#-j}"; shift ;;
    --shards) SHARDS="$2"; shift 2 ;;
    --shards=*) SHARDS="${1#--shards=}"; shift ;;
    *) echo "usage: $0 [-j N] [--shards N]" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    case "$(basename "$b")" in
      micro_engine)  # google-benchmark binary: no -j flag
        "$b" 2>&1 | tee -a bench_output.txt ;;
      *)
        "$b" -j "$JOBS" --shards "$SHARDS" 2>&1 | tee -a bench_output.txt ;;
    esac
  fi
done

echo
echo "Done. See test_output.txt and bench_output.txt."
