#!/usr/bin/env bash
# Engine performance tracker: builds Release, runs the engine
# micro-benchmarks plus one end-to-end figure bench, and writes
# BENCH_engine.json (schema: [{bench, events_per_sec, wall_ms,
# sim_events}, ...]) so the perf trajectory is comparable across PRs.
#
# Usage: scripts/bench_report.sh [build-dir]   (default: ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
FILTER='BM_ScheduleDispatch|BM_Fig5StyleSweep'

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target micro_engine fig5_clic_vs_tcp \
  >/dev/null

"$BUILD/bench/micro_engine" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json > "$BUILD/micro_engine.json"

# The same protocol sweep with packet-buffer pooling bypassed: the
# pooled-vs-heap A/B that keeps the BufferPool win visible across PRs.
CLICSIM_NO_POOL=1 "$BUILD/bench/micro_engine" \
  --benchmark_filter='BM_Fig5StyleSweep' \
  --benchmark_min_time=0.2 \
  --benchmark_format=json > "$BUILD/micro_engine_nopool.json"

# Wall-clock of the full fig5 figure harness (ms): sequential (-j1, the
# historical row) and on every core (-jN) — the parallel-speedup trajectory.
time_fig5() {
  local start end
  start=$(date +%s%N)
  "$BUILD/bench/fig5_clic_vs_tcp" -j "$1" > "$BUILD/fig5_report_j$1.txt"
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}
NPROC=$(nproc)
fig5_ms=$(time_fig5 1)
fig5_par_ms=$(time_fig5 "$NPROC")

python3 - "$BUILD/micro_engine.json" "$fig5_ms" "$ROOT/BENCH_engine.json" \
  "$fig5_par_ms" "$NPROC" "$BUILD/micro_engine_nopool.json" <<'PY'
import json
import sys

micro_path, fig5_ms, out_path = sys.argv[1], float(sys.argv[2]), sys.argv[3]
fig5_par_ms, nproc = float(sys.argv[4]), int(sys.argv[5])
nopool_path = sys.argv[6]
scale_to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def bench_rows(path, suffix=""):
    rows = []
    with open(path) as f:
        data = json.load(f)
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        row = {
            "bench": b["name"] + suffix,
            "events_per_sec": b.get("items_per_second"),
            "wall_ms": b["real_time"]
            * scale_to_ms.get(b.get("time_unit", "ns")),
            "sim_events": int(b["sim_events"]) if "sim_events" in b else None,
        }
        # Packet-path allocator traffic (BM_Fig5StyleSweep counters): heap
        # mints vs pool-freelist hits per sweep.
        if "pool_heap_allocs" in b:
            row["pool_heap_allocs"] = int(b["pool_heap_allocs"])
            row["pool_reuses"] = int(b["pool_reuses"])
        rows.append(row)
    return rows


rows = bench_rows(micro_path)
rows += bench_rows(nopool_path, suffix=" (CLICSIM_NO_POOL=1)")
rows.append({
    "bench": "fig5_clic_vs_tcp",
    "events_per_sec": None,
    "wall_ms": fig5_ms,
    "sim_events": None,
})
rows.append({
    "bench": "fig5_clic_vs_tcp -j1",
    "events_per_sec": None,
    "wall_ms": fig5_ms,
    "sim_events": None,
})
rows.append({
    "bench": f"fig5_clic_vs_tcp -j{nproc} (nproc)",
    "events_per_sec": None,
    "wall_ms": fig5_par_ms,
    "sim_events": None,
})
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} rows)")
PY
