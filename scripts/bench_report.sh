#!/usr/bin/env bash
# Engine performance tracker: builds Release, runs the engine
# micro-benchmarks plus one end-to-end figure bench, and writes
# BENCH_engine.json (schema: [{bench, events_per_sec, wall_ms,
# sim_events}, ...]) so the perf trajectory is comparable across PRs.
#
# Usage: scripts/bench_report.sh [build-dir]   (default: ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
FILTER='BM_ScheduleDispatch|BM_Fig5StyleSweep'

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target micro_engine fig5_clic_vs_tcp \
  pdes_scale collective_scale traffic_tail >/dev/null

"$BUILD/bench/micro_engine" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json > "$BUILD/micro_engine.json"

# The same protocol sweep with packet-buffer pooling bypassed: the
# pooled-vs-heap A/B that keeps the BufferPool win visible across PRs.
CLICSIM_NO_POOL=1 "$BUILD/bench/micro_engine" \
  --benchmark_filter='BM_Fig5StyleSweep' \
  --benchmark_min_time=0.2 \
  --benchmark_format=json > "$BUILD/micro_engine_nopool.json"

# Wall-clock of the full fig5 figure harness (ms): sequential (-j1, the
# historical row) and on every core (-jN) — the parallel-speedup trajectory.
time_fig5() {
  local start end
  start=$(date +%s%N)
  "$BUILD/bench/fig5_clic_vs_tcp" -j "$1" > "$BUILD/fig5_report_j$1.txt"
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}
NPROC=$(nproc)
fig5_ms=$(time_fig5 1)
fig5_par_ms=$(time_fig5 "$NPROC")

# Intra-scenario PDES rows: the same fig5 sweep with each simulation
# sharded (-j1 so only the shard engine provides parallelism), plus the
# 64-node pdes_scale scenario — the topology sharding is actually built
# for. Sharded stdout must be byte-identical to --shards 1; on a 1-core
# host the speedup columns are expected ~1.0x and flagged in the JSON.
time_fig5_shards() {
  local start end
  start=$(date +%s%N)
  "$BUILD/bench/fig5_clic_vs_tcp" -j 1 --shards "$1" \
    > "$BUILD/fig5_report_sh$1.txt"
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}
fig5_sh1_ms=$(time_fig5_shards 1)
fig5_shN_ms=$(time_fig5_shards "$NPROC")
cmp "$BUILD/fig5_report_sh1.txt" "$BUILD/fig5_report_sh$NPROC.txt" || {
  echo "bench_report: fig5 sharded stdout diverged from --shards 1" >&2
  exit 1
}

time_pdes() {
  local start end
  start=$(date +%s%N)
  "$BUILD/bench/pdes_scale" --shards "$1" \
    > "$BUILD/pdes_scale_sh$1.txt" 2> /dev/null
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}
pdes_sh1_ms=$(time_pdes 1)
pdes_shN_ms=$(time_pdes "$NPROC")
cmp "$BUILD/pdes_scale_sh1.txt" "$BUILD/pdes_scale_sh$NPROC.txt" || {
  echo "bench_report: pdes_scale sharded stdout diverged from --shards 1" >&2
  exit 1
}

# Engine-coordination counters: the fat-tree storm at --shards 2 prints
# barrier windows, cross-shard posts and COW payload mints to stderr
# (--shard-stats; stdout stays cmp-identical). These are simulation-state
# counts — deterministic on any host — so the window-algebra and zero-copy
# trajectories stay machine-readable across PRs.
"$BUILD/bench/pdes_scale" --shards 2 --topology fat-tree --shard-stats \
  > /dev/null 2> "$BUILD/pdes_shard_stats.txt"
grep -q shard-stats "$BUILD/pdes_shard_stats.txt" || {
  echo "bench_report: pdes_scale --shard-stats emitted no stats line" >&2
  exit 1
}

# Thousand-node gate: the 1024-node 2-level fat-tree must shard
# bit-identically (stdout cmp) — the headline topology-sharding invariant.
for sh in 1 "$NPROC"; do
  "$BUILD/bench/pdes_scale" --nodes 1024 --messages 2 --bytes 1024 \
    --topology fat-tree --shards "$sh" \
    > "$BUILD/pdes_1024_sh$sh.txt" 2> /dev/null
done
cmp "$BUILD/pdes_1024_sh1.txt" "$BUILD/pdes_1024_sh$NPROC.txt" || {
  echo "bench_report: 1024-node fat-tree stdout diverged from --shards 1" >&2
  exit 1
}

# Log-depth collectives at 128/512/1024 ranks: host trees over CLIC and
# TCP vs the NIC-offload contender, sharded and serial (stdout must match).
time_coll() {
  local start end
  start=$(date +%s%N)
  "$BUILD/bench/collective_scale" --shards "$1" \
    > "$BUILD/collective_scale_sh$1.txt" 2> /dev/null
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}
coll_sh1_ms=$(time_coll 1)
coll_shN_ms=$(time_coll "$NPROC")
cmp "$BUILD/collective_scale_sh1.txt" "$BUILD/collective_scale_sh$NPROC.txt" || {
  echo "bench_report: collective_scale sharded stdout diverged from --shards 1" >&2
  exit 1
}

# Open-loop tail-latency figure (traffic_tail): HDR p50/p99/p999 per
# workload x stack cell. The binary exits nonzero if any latency-accounting
# or tail-ordering claim is violated (set -e propagates that), and its
# stdout must be byte-identical at -j1 vs -jN and --shards 1 vs 2 — the
# per-client seeded arrival streams make the rows host- and
# parallelism-independent regression gates.
time_tail() {
  local start end
  start=$(date +%s%N)
  "$BUILD/bench/traffic_tail" -j "$1" --shards "$2" \
    > "$BUILD/traffic_tail_j$1_sh$2.txt" 2> /dev/null
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}
tail_ms=$(time_tail 1 1)
tail_par_ms=$(time_tail "$NPROC" 1)
time_tail 1 2 > /dev/null
cmp "$BUILD/traffic_tail_j1_sh1.txt" "$BUILD/traffic_tail_j${NPROC}_sh1.txt" || {
  echo "bench_report: traffic_tail stdout diverged between -j1 and -j$NPROC" >&2
  exit 1
}
cmp "$BUILD/traffic_tail_j1_sh1.txt" "$BUILD/traffic_tail_j1_sh2.txt" || {
  echo "bench_report: traffic_tail sharded stdout diverged from --shards 1" >&2
  exit 1
}

# Adaptive reliability rows (clic-a): the same figure with the RFC 6298 /
# congestion-response stack added. The exit code additionally gates the
# incast-repair claim (adaptive p99 <= fixed p99 / 10) and the poisson /
# bursty 1.5x guardrails; the -j and --shards cmp pins the adaptive
# scheduler (estimator, cwnd, pacing timers) to a deterministic schedule.
time_tail_adaptive() {
  local start end
  start=$(date +%s%N)
  "$BUILD/bench/traffic_tail" --adaptive -j "$1" --shards "$2" \
    > "$BUILD/traffic_tail_a_j$1_sh$2.txt" 2> /dev/null
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}
tail_a_ms=$(time_tail_adaptive 1 1)
tail_a_par_ms=$(time_tail_adaptive "$NPROC" 1)
time_tail_adaptive 1 2 > /dev/null
cmp "$BUILD/traffic_tail_a_j1_sh1.txt" \
    "$BUILD/traffic_tail_a_j${NPROC}_sh1.txt" || {
  echo "bench_report: adaptive traffic_tail diverged between -j1 and -j$NPROC" >&2
  exit 1
}
cmp "$BUILD/traffic_tail_a_j1_sh1.txt" "$BUILD/traffic_tail_a_j1_sh2.txt" || {
  echo "bench_report: adaptive traffic_tail sharded stdout diverged from --shards 1" >&2
  exit 1
}

python3 - "$BUILD/micro_engine.json" "$fig5_ms" "$ROOT/BENCH_engine.json" \
  "$fig5_par_ms" "$NPROC" "$BUILD/micro_engine_nopool.json" \
  "$fig5_sh1_ms" "$fig5_shN_ms" "$pdes_sh1_ms" "$pdes_shN_ms" \
  "$BUILD/collective_scale_sh1.txt" "$coll_sh1_ms" "$coll_shN_ms" \
  "$BUILD/pdes_shard_stats.txt" \
  "$BUILD/traffic_tail_j1_sh1.txt" "$tail_ms" "$tail_par_ms" \
  "$BUILD/traffic_tail_a_j1_sh1.txt" "$tail_a_ms" "$tail_a_par_ms" <<'PY'
import json
import sys

micro_path, fig5_ms, out_path = sys.argv[1], float(sys.argv[2]), sys.argv[3]
fig5_par_ms, nproc = float(sys.argv[4]), int(sys.argv[5])
nopool_path = sys.argv[6]
scale_to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def bench_rows(path, suffix=""):
    rows = []
    with open(path) as f:
        data = json.load(f)
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        row = {
            "bench": b["name"] + suffix,
            "events_per_sec": b.get("items_per_second"),
            "wall_ms": b["real_time"]
            * scale_to_ms.get(b.get("time_unit", "ns")),
            "sim_events": int(b["sim_events"]) if "sim_events" in b else None,
        }
        # Packet-path allocator traffic (BM_Fig5StyleSweep counters): heap
        # mints vs pool-freelist hits per sweep.
        if "pool_heap_allocs" in b:
            row["pool_heap_allocs"] = int(b["pool_heap_allocs"])
            row["pool_reuses"] = int(b["pool_reuses"])
        rows.append(row)
    return rows


rows = bench_rows(micro_path)
rows += bench_rows(nopool_path, suffix=" (CLICSIM_NO_POOL=1)")
rows.append({
    "bench": "fig5_clic_vs_tcp",
    "events_per_sec": None,
    "wall_ms": fig5_ms,
    "sim_events": None,
})
rows.append({
    "bench": "fig5_clic_vs_tcp -j1",
    "events_per_sec": None,
    "wall_ms": fig5_ms,
    "sim_events": None,
})
rows.append({
    "bench": f"fig5_clic_vs_tcp -j{nproc} (nproc)",
    "events_per_sec": None,
    "wall_ms": fig5_par_ms,
    "sim_events": None,
})

# Intra-scenario PDES (shard engine) rows. On a single-core host the
# sharded runs cannot go faster than --shards 1 — the note keeps that
# visible so a ~1.0x speedup there is not read as a regression.
fig5_sh1, fig5_shn, pdes_sh1, pdes_shn = map(float, sys.argv[7:11])
caveat = (
    "single-core host: shard speedup unmeasurable here"
    if nproc == 1 else None
)


def shard_row(bench, ms):
    row = {
        "bench": bench,
        "events_per_sec": None,
        "wall_ms": ms,
        "sim_events": None,
    }
    if caveat:
        row["note"] = caveat
    return row


rows.append(shard_row("fig5_clic_vs_tcp -j1 --shards 1", fig5_sh1))
rows.append(
    shard_row(f"fig5_clic_vs_tcp -j1 --shards {nproc} (nproc)", fig5_shn))
rows.append(shard_row("pdes_scale --shards 1 (64 nodes)", pdes_sh1))
rows.append(
    shard_row(f"pdes_scale --shards {nproc} (nproc, 64 nodes)", pdes_shn))
speedup = shard_row(
    f"pdes_scale shard speedup (--shards 1 / --shards {nproc})",
    pdes_shn,
)
speedup["speedup"] = (pdes_sh1 / pdes_shn) if pdes_shn > 0 else None
rows.append(speedup)

# Collective-scale rows: one per (ranks, stack, op) parsed from the bench's
# deterministic stdout, plus the sharded wall-clock pair. Latencies are
# simulated microseconds — identical at any shard count (the cmp above
# enforced it) — so they track the protocol model, not the host.
import re

coll_path, coll_sh1_ms, coll_shn_ms = (
    sys.argv[11], float(sys.argv[12]), float(sys.argv[13]))
with open(coll_path) as f:
    for line in f:
        m = re.match(
            r"\s*nodes=(\d+)\s+stack=(\S+)\s+barrier_us=([\d.]+)\s+"
            r"bcast_us=([\d.]+)\s+allreduce_us=([\d.]+)", line)
        if not m:
            continue
        ranks, stack = int(m.group(1)), m.group(2)
        for op, us in zip(("barrier", "bcast", "allreduce"),
                          (m.group(3), m.group(4), m.group(5))):
            rows.append({
                "bench": f"collective_scale {stack} {op} ({ranks} ranks)",
                "events_per_sec": None,
                "wall_ms": None,
                "sim_events": None,
                "latency_us": float(us),
            })
rows.append(shard_row("collective_scale --shards 1", coll_sh1_ms))
rows.append(
    shard_row(f"collective_scale --shards {nproc} (nproc)", coll_shn_ms))

# Engine coordination rows (pdes_scale --shards 2 --topology fat-tree
# --shard-stats): barrier windows opened by the per-channel lookahead
# matrix, cross-shard mailbox traffic, and the COW payload accounting —
# shared-immutable mints vs unpooled deep copies (the zero-copy unicast
# claim is copies == 0 on the frame path). Deterministic counts, host-
# independent.
with open(sys.argv[14]) as f:
    m = re.search(
        r"shard-stats shards=(\d+) windows=(\d+) barrier_waits=(\d+)"
        r" cross_shard_posts=(\d+) drained=(\d+) shared_mints=(\d+)"
        r" unpooled_copies=(\d+)", f.read())
if not m:
    sys.exit("bench_report: malformed pdes_scale --shard-stats line")
for name, value in zip(
        ("barrier windows", "barrier waits", "cross-shard posts",
         "drained events", "shared payload mints", "unpooled payload copies"),
        m.groups()[1:]):
    rows.append({
        "bench": f"pdes_scale --shards {m.group(1)} fat-tree: {name}",
        "events_per_sec": None,
        "wall_ms": None,
        "sim_events": None,
        "count": int(value),
    })

# Open-loop tail-latency rows (traffic_tail): simulated nanoseconds per
# workload x stack cell, parsed from the cmp-gated deterministic stdout.
# These are the regression claims for the tail story — CLIC beats TCP at
# p99 under Poisson/bursty/streaming load, and the incast inversion
# (fixed-RTO CLIC collapsing under synchronized waves) stays visible.
tail_path, tail_ms, tail_par_ms = (
    sys.argv[15], float(sys.argv[16]), float(sys.argv[17]))


def tail_rows(path, stacks):
    out = []
    with open(path) as f:
        for line in f:
            m = re.match(
                r"\s*(rpc-\S+|streaming)\s+(clic-a|clic|tcp)\s+(\d+)\s+(\d+)"
                r"\s+(\d+)\s+(\d+)\s+(\d+)\s+([0-9a-f]{16})", line)
            if not m or m.group(2) not in stacks:
                continue
            out.append({
                "bench": f"traffic_tail {m.group(1)} {m.group(2)}",
                "events_per_sec": None,
                "wall_ms": None,
                "sim_events": None,
                "responses": int(m.group(3)),
                "p50_ns": int(m.group(4)),
                "p99_ns": int(m.group(5)),
                "p999_ns": int(m.group(6)),
            })
    return out


rows += tail_rows(tail_path, {"clic", "tcp"})
rows.append(shard_row("traffic_tail -j1 --shards 1", tail_ms))
rows.append(shard_row(f"traffic_tail -j{nproc} (nproc)", tail_par_ms))

# Adaptive rows: only the clic-a cells (the fixed rows in the --adaptive
# run are cmp-identical to the default run, so they are not re-emitted).
tail_a_path, tail_a_ms, tail_a_par_ms = (
    sys.argv[18], float(sys.argv[19]), float(sys.argv[20]))
rows += tail_rows(tail_a_path, {"clic-a"})
rows.append(shard_row("traffic_tail --adaptive -j1 --shards 1", tail_a_ms))
rows.append(
    shard_row(f"traffic_tail --adaptive -j{nproc} (nproc)", tail_a_par_ms))

with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} rows)")
PY
