// Headline-number table (sections 4 and 5): 0-byte latency, asymptotic
// bandwidth and half-bandwidth message size for CLIC and TCP/IP, plus the
// conclusions' comparison against GAMMA (GA620 and GNIC-II profiles) and
// the VIA polling trade-off.
#include "bench/bench_util.hpp"

using namespace clicsim;

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Headline table — latency / bandwidth / comparisons");

  apps::Scenario s;
  s.cluster.shards = opt.shards;
  s.pingpong_reps = 3;

  apps::Scenario s1500 = s;
  s1500.mtu = 1500;

  // GAMMA ran on its own testbed (Ciaccio's cluster: faster memory path);
  // model that host, per the substitution table in DESIGN.md.
  apps::Scenario g620 = s;
  g620.cluster.nic = hw::NicProfile::ga620();
  g620.cluster.host.mem_bus_bytes_per_s = 400e6;

  apps::Scenario gii = g620;
  gii.cluster.nic = hw::NicProfile::gnic2();
  gii.mtu = 1500;

  // Every measurement is one self-contained simulation; all of them share
  // the worker pool and come back slotted in order.
  apps::SweepRunner<double> runner(opt);
  runner.add([s] { return sim::to_us(apps::clic_one_way(s, 0)); });
  runner.add([s] { return sim::to_us(apps::tcp_one_way(s, 1)); });
  runner.add(
      [s] { return apps::to_mbps(4 << 20, apps::clic_one_way(s, 4 << 20)); });
  runner.add([s1500] {
    return apps::to_mbps(4 << 20, apps::clic_one_way(s1500, 4 << 20));
  });
  runner.add(
      [s] { return apps::to_mbps(4 << 20, apps::tcp_one_way(s, 4 << 20)); });
  runner.add([g620] { return sim::to_us(apps::gamma_one_way(g620, 0)); });
  runner.add([g620] {
    return apps::to_mbps(4 << 20, apps::gamma_one_way(g620, 4 << 20));
  });
  runner.add([gii] { return sim::to_us(apps::gamma_one_way(gii, 0)); });
  runner.add([gii] {
    return apps::to_mbps(4 << 20, apps::gamma_one_way(gii, 4 << 20));
  });
  runner.add([s] { return sim::to_us(apps::via_one_way(s, 0)); });
  // CPU burned while waiting: time a bare 0-byte exchange and look at the
  // receiver's user-mode utilization.
  runner.add([s] {
    apps::ViaBed vb(s.cluster, s.via);
    via::Vi& a = vb.provider(0).create_vi();
    via::Vi& b = vb.provider(1).create_vi();
    a.connect(1, b.id());
    b.connect(0, a.id());
    b.post_recv(4096);
    struct Run {
      static sim::Task tx(via::Vi& vi) {
        vi.post_send(net::Buffer::zeros(64));
        (void)co_await vi.poll_wait();
      }
      static sim::Task rx(via::Vi& vi) { (void)co_await vi.poll_wait(); }
    };
    Run::tx(a);
    Run::rx(b);
    vb.run();
    return vb.cluster.node(1).cpu().utilization();
  });
  const auto rows = runner.run();
  const double clic_lat = rows[0];
  const double tcp_lat = rows[1];
  const double clic_bw9000 = rows[2];
  const double clic_bw1500 = rows[3];
  const double tcp_bw9000 = rows[4];
  const double gamma620_lat = rows[5];
  const double gamma620_bw = rows[6];
  const double gammaII_lat = rows[7];
  const double gammaII_bw = rows[8];
  const double via_lat = rows[9];
  const double poll_cpu = rows[10];

  bench::subheading("CLIC vs TCP/IP (section 4)");
  bench::compare("CLIC 0-byte one-way latency", 36.0, clic_lat, "us", 0.15);
  bench::compare("CLIC asymptotic bandwidth, MTU 9000", 600.0, clic_bw9000,
                 "Mb/s");
  bench::compare("CLIC asymptotic bandwidth, MTU 1500", 450.0, clic_bw1500,
                 "Mb/s");
  bench::claim("CLIC > 2x TCP at MTU 9000", clic_bw9000 > 2.0 * tcp_bw9000);
  std::printf("  (TCP: latency %.1f us, asymptote %.0f Mb/s)\n", tcp_lat,
              tcp_bw9000);

  bench::subheading("GAMMA comparison (section 5)");
  bench::compare("GAMMA latency, GA620", 32.0, gamma620_lat, "us", 0.6);
  bench::compare("GAMMA latency, GNIC-II", 9.5, gammaII_lat, "us", 1.2);
  bench::compare("GAMMA bandwidth, GA620", 824.0, gamma620_bw, "Mb/s");
  bench::compare("GAMMA bandwidth, GNIC-II", 768.0, gammaII_bw, "Mb/s");
  bench::claim("GAMMA latency below CLIC's (the price of CLIC's services)",
               gamma620_lat < clic_lat);
  bench::claim("GAMMA bandwidth above CLIC's", gamma620_bw > clic_bw9000);

  bench::subheading("VIA (user-level, polling) — section 3.2 trade-off");
  std::printf("  VIA 0-byte one-way latency: %.1f us (CLIC %.1f us)\n",
              via_lat, clic_lat);
  std::printf("  receiver CPU while waiting by polling: %.0f%%\n",
              poll_cpu * 100.0);
  bench::claim("polling gives VIA lower latency than interrupt-driven CLIC",
               via_lat < clic_lat);
  bench::claim("but the waiting CPU is fully consumed (>90%)",
               poll_cpu > 0.9);

  // --- OS mediation cost (section 3.1) --------------------------------------------
  bench::subheading("system-call overhead (section 3.1)");
  bench::compare("syscall enter+exit", 0.65,
                 sim::to_us(s.cluster.host.syscall_enter +
                            s.cluster.host.syscall_exit),
                 "us", 0.05);
  bench::claim("syscall cost < 2% of a message send (36 us)",
               sim::to_us(s.cluster.host.syscall_enter +
                          s.cluster.host.syscall_exit) <
                   0.02 * clic_lat);
  return bench::exit_code();
}
