// Engine micro-benchmarks (google-benchmark): the discrete-event core and
// the hot protocol paths, so regressions in simulator performance are
// visible independently of the figure harness.
#include <benchmark/benchmark.h>

#include "apps/testbed.hpp"
#include "net/buffer.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace {

using namespace clicsim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push((i * 7919) % 1000, [] {});
    }
    while (!q.empty()) {
      auto ev = q.pop();
      benchmark::DoNotOptimize(ev.time);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = n;
    std::function<void()> hop = [&] {
      if (--remaining > 0) sim.after(10, hop);
    };
    sim.after(10, hop);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorEventChain)->Arg(10000);

void BM_FifoResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FifoResource bus(sim, "bus");
    for (int i = 0; i < 1000; ++i) bus.submit(100);
    sim.run();
    benchmark::DoNotOptimize(bus.busy_time());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FifoResource);

void BM_CoroutineMailbox(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Mailbox<int> box(sim);
    int sum = 0;
    auto consumer = [](sim::Mailbox<int>& b, int count, int& sum) -> sim::Task {
      for (int i = 0; i < count; ++i) sum += co_await b.pop();
    };
    consumer(box, n, sum);
    for (int i = 0; i < n; ++i) {
      sim.after(i, [&box, i] { box.push(i); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoroutineMailbox)->Arg(4096);

void BM_ClicMessageEndToEnd(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  for (auto _ : state) {
    apps::ClicBed bed;
    clic::Port a(bed.module(0), 1);
    clic::Port b(bed.module(1), 1);
    struct Drive {
      static sim::Task tx(clic::Port& p, std::int64_t n) {
        (void)co_await p.send(1, 1, net::Buffer::zeros(n));
      }
      static sim::Task rx(clic::Port& p) { (void)co_await p.recv(); }
    };
    Drive::tx(a, size);
    Drive::rx(b);
    bed.sim.run();
    benchmark::DoNotOptimize(bed.sim.events_executed());
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_ClicMessageEndToEnd)->Arg(0)->Arg(65536)->Arg(1 << 20);

void BM_BufferPatternChecksum(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  auto buf = net::Buffer::pattern(size, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.checksum());
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_BufferPatternChecksum)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
