// Engine micro-benchmarks (google-benchmark): the discrete-event core and
// the hot protocol paths, so regressions in simulator performance are
// visible independently of the figure harness.
#include <benchmark/benchmark.h>

#include "apps/testbed.hpp"
#include "net/buffer.hpp"
#include "net/buffer_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace {

using namespace clicsim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push((i * 7919) % 1000, [] {});
    }
    while (!q.empty()) {
      auto ev = q.pop();
      benchmark::DoNotOptimize(ev.time);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = n;
    std::function<void()> hop = [&] {
      if (--remaining > 0) sim.after(10, hop);
    };
    sim.after(10, hop);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorEventChain)->Arg(10000);

// The engine tentpole microbench: steady-state schedule + dispatch of
// *capturing* closures through the public Simulator API. A ring of
// `pending` self-rescheduling 72-byte handlers runs 64k dispatches; the
// handler exceeds libstdc++'s std::function small-object buffer, so the
// historical engine paid a heap allocation and free per event while
// InlineFunction keeps it inline in the recycling slab. The pending
// population matches what the figure simulations actually carry (dozens
// to around a thousand events in flight), so this measures the
// schedule/dispatch path rather than DRAM. Source-compatible with older
// engine revisions for before/after comparison.
void BM_ScheduleDispatch(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  static constexpr int kTotal = 1 << 16;
  for (auto _ : state) {
    sim::Simulator sim;
    struct Payload {
      std::uint64_t a, b, c, d, e, f;
    };
    struct Hop {
      sim::Simulator* sim;
      Payload payload;
      std::uint64_t* sum;
      int* remaining;
      void operator()() const {
        *sum += payload.a + payload.f;
        if (--*remaining > 0) sim->after(1000 + payload.a, *this);
      }
    };
    std::uint64_t sum = 0;
    int remaining = kTotal;
    for (int i = 0; i < pending; ++i) {
      const Payload p{static_cast<std::uint64_t>(i % 7), 2, 3, 4, 5, 6};
      sim.after(1 + (i * 7919) % 977, Hop{&sim, p, &sum, &remaining});
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_ScheduleDispatch)->Arg(64)->Arg(1024);

// Pool traffic accumulated across every bed a sweep touches, surfaced as
// benchmark counters: `allocs` is what the packet path still takes from
// the global heap (pool warm-up), `reuses` is what the freelists absorbed.
struct PoolTraffic {
  std::uint64_t allocs = 0;
  std::uint64_t reuses = 0;

  void add(const net::BufferPool::Stats& s) {
    allocs += s.data_heap_allocs + s.header_heap_allocs;
    reuses += s.data_reuses + s.header_reuses;
  }
};

// One fig5-style bandwidth point: a warmed ping-pong of `size`-byte CLIC
// messages on a fresh 2-node cluster. Returns simulated events executed.
std::uint64_t clic_sweep_point(std::int64_t mtu, std::int64_t size,
                               int reps, PoolTraffic* pool = nullptr) {
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(mtu);
  clic::Port a(bed.module(0), 1);
  clic::Port b(bed.module(1), 1);
  struct Drive {
    static sim::Task echo(clic::Port& p, int reps) {
      for (int i = 0; i < reps; ++i) {
        clic::Message m = co_await p.recv();
        (void)co_await p.send(1, 1, std::move(m.data));
      }
    }
    static sim::Task drive(clic::Port& p, std::int64_t n, int reps) {
      for (int i = 0; i < reps; ++i) {
        (void)co_await p.send(1, 1, net::Buffer::zeros(n));
        (void)co_await p.recv();
      }
    }
  };
  Drive::echo(b, reps);
  Drive::drive(a, size, reps);
  bed.sim.run();
  if (pool != nullptr) pool->add(bed.pool.stats());
  return bed.sim.events_executed();
}

std::uint64_t tcp_sweep_point(std::int64_t mtu, std::int64_t size,
                              int reps, PoolTraffic* pool = nullptr) {
  apps::TcpBed bed;
  bed.cluster.set_mtu_all(mtu);
  bed.tcp[1]->listen(7);
  struct Drive {
    static sim::Task echo(tcpip::TcpStack& stack, std::int64_t n,
                          int reps) {
      tcpip::TcpSocket* s = co_await stack.accept(7);
      for (int i = 0; i < reps; ++i) {
        net::Buffer m = co_await s->recv_exact(n);
        (void)co_await s->send(std::move(m));
      }
    }
    static sim::Task drive(tcpip::TcpStack& stack, std::int64_t n,
                           int reps) {
      auto& s = stack.create_socket();
      if (!co_await s.connect(1, 7)) co_return;
      for (int i = 0; i < reps; ++i) {
        (void)co_await s.send(net::Buffer::zeros(n));
        (void)co_await s.recv_exact(n);
      }
      s.close();
    }
  };
  Drive::echo(*bed.tcp[1], size, reps);
  Drive::drive(*bed.tcp[0], size, reps);
  bed.sim.run();
  if (pool != nullptr) pool->add(bed.pool.stats());
  return bed.sim.events_executed();
}

// A fixed, deterministic fig5-style sweep (CLIC + TCP ping-pong bandwidth
// points at both MTUs): wall-clock and simulated-events/sec for the whole
// protocol hot path, surfaced as counters so scripts/bench_report.sh can
// emit BENCH_engine.json.
void BM_Fig5StyleSweep(benchmark::State& state) {
  static constexpr std::int64_t kSizes[] = {16, 4096, 65536, 1 << 20};
  std::uint64_t per_run = 0;
  std::uint64_t total = 0;
  PoolTraffic pool_last;
  for (auto _ : state) {
    per_run = 0;
    pool_last = PoolTraffic{};
    for (const std::int64_t mtu : {std::int64_t{9000}, std::int64_t{1500}}) {
      for (const std::int64_t size : kSizes) {
        per_run += clic_sweep_point(mtu, size, 2, &pool_last);
        per_run += tcp_sweep_point(mtu, size, 2, &pool_last);
      }
    }
    total += per_run;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["sim_events"] =
      benchmark::Counter(static_cast<double>(per_run));
  // Per-sweep packet-path allocator traffic: heap mints vs freelist hits.
  state.counters["pool_heap_allocs"] =
      benchmark::Counter(static_cast<double>(pool_last.allocs));
  state.counters["pool_reuses"] =
      benchmark::Counter(static_cast<double>(pool_last.reuses));
}
BENCHMARK(BM_Fig5StyleSweep)->Unit(benchmark::kMillisecond);

void BM_FifoResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FifoResource bus(sim, "bus");
    for (int i = 0; i < 1000; ++i) bus.submit(100);
    sim.run();
    benchmark::DoNotOptimize(bus.busy_time());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FifoResource);

void BM_CoroutineMailbox(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Mailbox<int> box(sim);
    int sum = 0;
    auto consumer = [](sim::Mailbox<int>& b, int count, int& sum) -> sim::Task {
      for (int i = 0; i < count; ++i) sum += co_await b.pop();
    };
    consumer(box, n, sum);
    for (int i = 0; i < n; ++i) {
      sim.after(i, [&box, i] { box.push(i); });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoroutineMailbox)->Arg(4096);

void BM_ClicMessageEndToEnd(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  for (auto _ : state) {
    apps::ClicBed bed;
    clic::Port a(bed.module(0), 1);
    clic::Port b(bed.module(1), 1);
    struct Drive {
      static sim::Task tx(clic::Port& p, std::int64_t n) {
        (void)co_await p.send(1, 1, net::Buffer::zeros(n));
      }
      static sim::Task rx(clic::Port& p) { (void)co_await p.recv(); }
    };
    Drive::tx(a, size);
    Drive::rx(b);
    bed.sim.run();
    benchmark::DoNotOptimize(bed.sim.events_executed());
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_ClicMessageEndToEnd)->Arg(0)->Arg(65536)->Arg(1 << 20);

void BM_BufferPatternChecksum(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  auto buf = net::Buffer::pattern(size, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.checksum());
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_BufferPatternChecksum)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
