// Section 2 "future work" feature: on-NIC fragmentation (Gilfeather &
// Underwood [11]) — the host hands the card packets larger than the wire
// MTU; firmware fragments on send and reassembles on receive, cutting both
// the per-packet host costs and the interrupt count. Requires a
// programmable card (the GA620-like profile).
#include "bench/bench_util.hpp"

using namespace clicsim;

int main() {
  bench::heading("Ablation — on-NIC fragmentation (paper's future work)");

  std::printf("  %-34s %10s %12s %12s %12s\n", "configuration", "Mb/s",
              "rx CPU %", "rx irqs", "host pkts");

  auto run = [](bool frag, std::int64_t mtu) {
    apps::Scenario s;
    s.cluster.nic = hw::NicProfile::ga620();
    s.mtu = mtu;
    s.clic.use_nic_fragmentation = frag;
    const auto st = apps::clic_stream(s, 256 * 1024, 32 * 1024 * 1024);
    std::printf("  %-34s %10.1f %12.1f %12llu %12llu\n",
                (std::string(frag ? "firmware frag" : "host segmentation") +
                 ", MTU " + std::to_string(mtu))
                    .c_str(),
                st.mbps, st.rx_cpu * 100.0,
                static_cast<unsigned long long>(st.rx_interrupts),
                static_cast<unsigned long long>(st.rx_frames));
    return st;
  };

  const auto off1500 = run(false, 1500);
  const auto on1500 = run(true, 1500);
  const auto off9000 = run(false, 9000);
  const auto on9000 = run(true, 9000);

  bench::subheading("claims ([11]: fragmentation helps most at small MTU)");
  bench::claim("firmware fragmentation beats host segmentation at MTU 1500",
               on1500.mbps > off1500.mbps);
  bench::claim("it slashes host-visible packets and interrupts",
               on1500.rx_frames < off1500.rx_frames / 4 &&
                   on1500.rx_interrupts < off1500.rx_interrupts);
  bench::claim("the win shrinks at MTU 9000 (jumbo already amortizes)",
               (on9000.mbps - off9000.mbps) < (on1500.mbps - off1500.mbps));
  bench::claim("receiver CPU drops with firmware fragmentation",
               on1500.rx_cpu < off1500.rx_cpu);
  return 0;
}
