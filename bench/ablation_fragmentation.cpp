// Section 2 "future work" feature: on-NIC fragmentation (Gilfeather &
// Underwood [11]) — the host hands the card packets larger than the wire
// MTU; firmware fragments on send and reassembles on receive, cutting both
// the per-packet host costs and the interrupt count. Requires a
// programmable card (the GA620-like profile).
#include "bench/bench_util.hpp"

using namespace clicsim;

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Ablation — on-NIC fragmentation (paper's future work)");

  std::printf("  %-34s %10s %12s %12s %12s\n", "configuration", "Mb/s",
              "rx CPU %", "rx irqs", "host pkts");

  struct Cell {
    bool frag;
    std::int64_t mtu;
  };
  const Cell cells[] = {
      {false, 1500}, {true, 1500}, {false, 9000}, {true, 9000}};

  apps::SweepRunner<apps::StreamStats> runner(opt);
  for (const auto& cell : cells) {
    apps::Scenario s;
    s.cluster.shards = opt.shards;
    s.cluster.nic = hw::NicProfile::ga620();
    s.mtu = cell.mtu;
    s.clic.use_nic_fragmentation = cell.frag;
    runner.add(
        [s] { return apps::clic_stream(s, 256 * 1024, 32 * 1024 * 1024); });
  }
  const auto rows = runner.run();

  for (std::size_t i = 0; i < std::size(cells); ++i) {
    const auto& st = rows[i];
    std::printf(
        "  %-34s %10.1f %12.1f %12llu %12llu\n",
        (std::string(cells[i].frag ? "firmware frag" : "host segmentation") +
         ", MTU " + std::to_string(cells[i].mtu))
            .c_str(),
        st.mbps, st.rx_cpu * 100.0,
        static_cast<unsigned long long>(st.rx_interrupts),
        static_cast<unsigned long long>(st.rx_frames));
  }
  const auto& off1500 = rows[0];
  const auto& on1500 = rows[1];
  const auto& off9000 = rows[2];
  const auto& on9000 = rows[3];

  bench::subheading("claims ([11]: fragmentation helps most at small MTU)");
  bench::claim("firmware fragmentation beats host segmentation at MTU 1500",
               on1500.mbps > off1500.mbps);
  bench::claim("it slashes host-visible packets and interrupts",
               on1500.rx_frames < off1500.rx_frames / 4 &&
                   on1500.rx_interrupts < off1500.rx_interrupts);
  bench::claim("the win shrinks at MTU 9000 (jumbo already amortizes)",
               (on9000.mbps - off9000.mbps) < (on1500.mbps - off1500.mbps));
  bench::claim("receiver CPU drops with firmware fragmentation",
               on1500.rx_cpu < off1500.rx_cpu);
  return bench::exit_code();
}
