// Protocol-design ablation: the CLIC reliable channel's window size and
// acknowledgement policy. The paper fixes these implicitly; this sweep
// shows why the chosen sizing works — small windows strangle the pipeline,
// aggressive acking wastes wire and CPU, lazy acking risks stalls.
#include "bench/bench_util.hpp"

using namespace clicsim;

namespace {

std::function<double()> run_job(int window, int ack_every,
                                double ack_delay_us, int shards) {
  apps::Scenario s;
  s.cluster.shards = shards;
  s.mtu = 1500;
  s.clic.window_packets = window;
  s.clic.ack_every = ack_every;
  s.clic.ack_delay = sim::microseconds(ack_delay_us);
  return [s] { return apps::clic_stream(s, 256 * 1024, 8 * 1024 * 1024).mbps; };
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Ablation — CLIC channel window and ack policy (MTU 1500)");

  const int windows[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::pair<int, double> acks[] = {{1, 0},    {2, 25},   {4, 50},
                                         {8, 100},  {16, 200}, {32, 400}};

  apps::SweepRunner<double> runner(opt);
  for (int w : windows) runner.add(run_job(w, 4, 50, opt.shards));
  for (const auto& [every, delay] : acks) {
    runner.add(run_job(64, every, delay, opt.shards));
  }
  runner.add(run_job(128, 4, 50, opt.shards));  // saturation check
  const auto rows = runner.run();

  bench::subheading("window size (ack_every=4, ack_delay=50us)");
  std::printf("  %10s %10s\n", "window", "Mb/s");
  double w1 = 0;
  double w64 = 0;
  for (std::size_t i = 0; i < std::size(windows); ++i) {
    const double bw = rows[i];
    if (windows[i] == 1) w1 = bw;
    if (windows[i] == 64) w64 = bw;
    std::printf("  %10d %10.1f\n", windows[i], bw);
  }

  bench::subheading("ack frequency (window=64)");
  std::printf("  %10s %12s %10s\n", "ack_every", "ack_delay", "Mb/s");
  for (std::size_t i = 0; i < std::size(acks); ++i) {
    std::printf("  %10d %10.0fus %10.1f\n", acks[i].first, acks[i].second,
                rows[std::size(windows) + i]);
  }

  bench::subheading("claims");
  bench::claim("stop-and-wait (window=1) cripples throughput",
               w1 < 0.35 * w64);
  bench::claim("the default window (64) saturates the pipeline",
               rows[std::size(windows) + std::size(acks)] < 1.05 * w64);
  return bench::exit_code();
}
