// Protocol-design ablation: the CLIC reliable channel's window size and
// acknowledgement policy. The paper fixes these implicitly; this sweep
// shows why the chosen sizing works — small windows strangle the pipeline,
// aggressive acking wastes wire and CPU, lazy acking risks stalls.
#include "bench/bench_util.hpp"

using namespace clicsim;

namespace {

double run(int window, int ack_every, double ack_delay_us) {
  apps::Scenario s;
  s.mtu = 1500;
  s.clic.window_packets = window;
  s.clic.ack_every = ack_every;
  s.clic.ack_delay = sim::microseconds(ack_delay_us);
  return apps::clic_stream(s, 256 * 1024, 8 * 1024 * 1024).mbps;
}

}  // namespace

int main() {
  bench::heading("Ablation — CLIC channel window and ack policy (MTU 1500)");

  bench::subheading("window size (ack_every=4, ack_delay=50us)");
  std::printf("  %10s %10s\n", "window", "Mb/s");
  double w1 = 0;
  double w64 = 0;
  for (int w : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double bw = run(w, 4, 50);
    if (w == 1) w1 = bw;
    if (w == 64) w64 = bw;
    std::printf("  %10d %10.1f\n", w, bw);
  }

  bench::subheading("ack frequency (window=64)");
  std::printf("  %10s %12s %10s\n", "ack_every", "ack_delay", "Mb/s");
  for (const auto& [every, delay] : std::initializer_list<
           std::pair<int, double>>{{1, 0}, {2, 25}, {4, 50},
                                   {8, 100}, {16, 200}, {32, 400}}) {
    std::printf("  %10d %10.0fus %10.1f\n", every, delay,
                run(64, every, delay));
  }

  bench::subheading("claims");
  bench::claim("stop-and-wait (window=1) cripples throughput",
               w1 < 0.35 * w64);
  bench::claim("the default window (64) saturates the pipeline",
               run(128, 4, 50) < 1.05 * w64);
  return 0;
}
