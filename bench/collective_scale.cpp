// Collective scaling benchmark: log-depth MPI collectives at 128-1024
// ranks on a 2-level fat-tree, racing three implementations:
//
//   clic-host  host-level trees over CLIC (dissemination barrier, binomial
//              bcast/reduce; bcast uses CLIC's native Ethernet broadcast,
//              which rides the copy-on-write flood path through the fabric)
//   clic-nic   NIC-resident collective offload (hw/nic_collective): the
//              cards run the same binomial tree in firmware — interior
//              hops skip host DMA, interrupts and kernel wakeups
//   tcp-host   the same host trees over the TCP/IP stack (mesh capped at
//              --tcp-max ranks; a 1024-rank socket mesh is outside the
//              protocol's design point, which is itself the finding)
//
// Latency per collective is simulated time from the common start gate to
// the last rank's completion. stdout is deterministic and MUST be
// byte-identical at any --shards value (the sharded fat-tree is the
// engine's flagship case); wall-clock goes to stderr.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "sim/task.hpp"

using namespace clicsim;

namespace {

struct Options {
  bench::ShardArgs shard;
  std::vector<int> nodes_list = {128, 512, 1024};
  std::int64_t bytes = 1024;  // bcast/allreduce payload (one wire MTU max)
  int tcp_max = 128;          // largest rank count for the tcp-host rows
};

[[noreturn]] void usage(const char* prog, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [--shards N] [--shard-stats] [--nodes N[,N...]]"
               " [--bytes N] [--tcp-max N] [-j N]\n"
               "%s"
               "  --nodes L      comma-separated rank counts\n"
               "                 (default 128,512,1024)\n"
               "  --bytes N      bcast/allreduce payload bytes"
               " (default 1024)\n"
               "  --tcp-max N    skip tcp-host rows above N ranks\n"
               "                 (default 128)\n",
               prog, bench::kShardArgsHelp);
  std::exit(code);
}

long parse_long(const char* prog, const char* text, long lo, long hi) {
  long n = 0;
  if (!bench::parse_long_in(text, lo, hi, n)) usage(prog, 2);
  return n;
}

std::vector<int> parse_list(const char* prog, const char* text) {
  std::vector<int> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) {
        out.push_back(
            static_cast<int>(parse_long(prog, item.c_str(), 2, 4096)));
        item.clear();
      }
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  if (out.empty()) usage(prog, 2);
  return out;
}

Options parse_args(int argc, char** argv) {
  Options o;
  const char* prog = argc > 0 ? argv[0] : "collective_scale";
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(prog, 2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    switch (bench::consume_shard_arg(o.shard, argc, argv, i)) {
      case bench::ArgOutcome::kConsumed:
        continue;
      case bench::ArgOutcome::kBad:
        usage(prog, 2);
      case bench::ArgOutcome::kNotMine:
        break;
    }
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      usage(prog, 0);
    } else if (std::strcmp(arg, "--nodes") == 0) {
      o.nodes_list = parse_list(prog, value(i));
    } else if (std::strcmp(arg, "--bytes") == 0) {
      o.bytes = parse_long(prog, value(i), 1, 1400);
    } else if (std::strcmp(arg, "--tcp-max") == 0) {
      o.tcp_max = static_cast<int>(parse_long(prog, value(i), 0, 4096));
    } else {
      usage(prog, 2);
    }
  }
  return o;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= kFnvPrime;
  }
}

// Per-op latencies of one (nodes, stack) cell, in simulated time.
struct Cell {
  sim::SimTime barrier = -1;
  sim::SimTime bcast = -1;
  sim::SimTime allreduce = -1;
  bool complete = false;
};

// Each rank records its own completion slot (one writer per slot: safe in
// sharded runs); the cell latency is the slowest rank.
struct Drive {
  static sim::Task barrier(mpi::Communicator& comm, sim::Simulator& sim,
                           sim::SimTime* slot) {
    (void)co_await comm.barrier();
    *slot = sim.now();
  }
  static sim::Task bcast(mpi::Communicator& comm, sim::Simulator& sim,
                         std::int64_t bytes, sim::SimTime* slot) {
    // The payload is minted inside the coroutine, on the rank's own shard
    // (and from its pool); only the root's buffer carries data.
    net::Buffer data = comm.rank() == 0
                           ? net::Buffer::pattern(bytes, 0xC011u)
                           : net::Buffer::zeros(0);
    (void)co_await comm.bcast(0, std::move(data));
    *slot = sim.now();
  }
  static sim::Task allreduce(mpi::Communicator& comm, sim::Simulator& sim,
                             std::int64_t bytes, sim::SimTime* slot) {
    (void)co_await comm.allreduce_sum(net::Buffer::pattern(bytes, 0xA11Du));
    *slot = sim.now();
  }
};

// Launches `start` on every rank at a common gate, runs to quiescence, and
// returns last-completion - gate (or -1 if a rank never finished).
template <typename Bed, typename Start>
sim::SimTime run_op(Bed& bed, int n, Start start) {
  std::vector<sim::SimTime> done(static_cast<std::size_t>(n), -1);
  const sim::SimTime gate = bed.now() + sim::milliseconds(1.0);
  for (int r = 0; r < n; ++r) {
    sim::SimTime* slot = &done[static_cast<std::size_t>(r)];
    bed.sim_of(r).at(gate, [&bed, r, slot, start] { start(bed, r, slot); });
  }
  bed.run();
  sim::SimTime worst = -1;
  for (const sim::SimTime t : done) {
    if (t < 0) return -1;
    worst = std::max(worst, t - gate);
  }
  return worst;
}

Cell run_clic_cell(int n, int shards, std::int64_t bytes,
                   bool nic_collectives, bench::ShardStats* stats) {
  os::ClusterConfig cc;
  cc.nodes = n;
  cc.shards = shards;
  cc.topology = os::TopologySpec::fat_tree();
  mpi::Config mc;
  // The host contender is the binomial *tree*: CLIC's native Ethernet
  // broadcast is an unreliable datagram whose confirmation protocol has no
  // datagram retry, and at hundreds of ranks a single dropped flood copy
  // would hang the collective.
  mc.use_native_bcast = false;
  apps::MpiClicBed bed(cc, {}, mc, nic_collectives);

  Cell cell;
  cell.barrier = run_op(bed, n, [](apps::MpiClicBed& b, int r,
                                   sim::SimTime* slot) {
    Drive::barrier(b.comm(r), b.sim_of(r), slot);
  });
  cell.bcast =
      run_op(bed, n, [bytes](apps::MpiClicBed& b, int r, sim::SimTime* slot) {
        Drive::bcast(b.comm(r), b.sim_of(r), bytes, slot);
      });
  cell.allreduce =
      run_op(bed, n, [bytes](apps::MpiClicBed& b, int r, sim::SimTime* slot) {
        Drive::allreduce(b.comm(r), b.sim_of(r), bytes, slot);
      });
  cell.complete =
      cell.barrier >= 0 && cell.bcast >= 0 && cell.allreduce >= 0;
  if (stats != nullptr) stats->absorb(bed.bed.shards);
  return cell;
}

// TCP beds pin shards = 1 (TcpTransport writes peer queues directly), so
// sim_of(r) is the one home simulator for every rank.
struct TcpBedView {
  apps::MpiTcpBed& bed;
  [[nodiscard]] sim::SimTime now() const { return bed.bed.now(); }
  [[nodiscard]] sim::Simulator& sim_of(int) { return bed.sim(); }
  [[nodiscard]] mpi::Communicator& comm(int r) { return bed.comm(r); }
  void run() { bed.bed.run(); }
};

sim::Task tcp_connect(apps::MpiTcpBed& bed, bool* ok) {
  *ok = co_await bed.connect();
}

Cell run_tcp_cell(int n, std::int64_t bytes) {
  os::ClusterConfig cc;
  cc.nodes = n;
  cc.topology = os::TopologySpec::fat_tree();
  apps::MpiTcpBed bed(cc);

  bool connected = false;
  tcp_connect(bed, &connected);
  bed.bed.run();
  Cell cell;
  if (!connected) return cell;

  TcpBedView view{bed};
  cell.barrier =
      run_op(view, n, [](TcpBedView& b, int r, sim::SimTime* slot) {
        Drive::barrier(b.comm(r), b.sim_of(r), slot);
      });
  cell.bcast =
      run_op(view, n, [bytes](TcpBedView& b, int r, sim::SimTime* slot) {
        Drive::bcast(b.comm(r), b.sim_of(r), bytes, slot);
      });
  cell.allreduce =
      run_op(view, n, [bytes](TcpBedView& b, int r, sim::SimTime* slot) {
        Drive::allreduce(b.comm(r), b.sim_of(r), bytes, slot);
      });
  cell.complete =
      cell.barrier >= 0 && cell.bcast >= 0 && cell.allreduce >= 0;
  return cell;
}

void print_row(std::uint64_t& digest, int nodes, const char* stack,
               const Cell& cell) {
  std::printf(
      "  nodes=%-5d stack=%-9s barrier_us=%-10.3f bcast_us=%-10.3f"
      " allreduce_us=%.3f\n",
      nodes, stack, sim::to_us(cell.barrier), sim::to_us(cell.bcast),
      sim::to_us(cell.allreduce));
  fnv(digest, static_cast<std::uint64_t>(nodes));
  fnv(digest, static_cast<std::uint64_t>(cell.barrier));
  fnv(digest, static_cast<std::uint64_t>(cell.bcast));
  fnv(digest, static_cast<std::uint64_t>(cell.allreduce));
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  const auto wall_start = std::chrono::steady_clock::now();

  std::printf("collective_scale topology=fat-tree bytes=%lld\n",
              static_cast<long long>(o.bytes));
  std::uint64_t digest = kFnvOffset;
  bool all_complete = true;
  bench::ShardStats stats;
  bench::ShardStats* stats_ptr = o.shard.stats ? &stats : nullptr;
  for (const int n : o.nodes_list) {
    const Cell host =
        run_clic_cell(n, o.shard.shards, o.bytes, false, stats_ptr);
    print_row(digest, n, "clic-host", host);
    all_complete = all_complete && host.complete;

    const Cell nic =
        run_clic_cell(n, o.shard.shards, o.bytes, true, stats_ptr);
    print_row(digest, n, "clic-nic", nic);
    all_complete = all_complete && nic.complete;

    if (n <= o.tcp_max) {
      const Cell tcp = run_tcp_cell(n, o.bytes);
      print_row(digest, n, "tcp-host", tcp);
      all_complete = all_complete && tcp.complete;
    } else {
      std::printf("  nodes=%-5d stack=tcp-host  skipped (above --tcp-max"
                  " %d)\n",
                  n, o.tcp_max);
    }
  }
  std::printf("  digest %016llx\n", static_cast<unsigned long long>(digest));

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  std::fprintf(stderr, "collective_scale: shards=%d wall_ms=%.1f\n",
               o.shard.shards, wall_ms);
  if (o.shard.stats) stats.print("collective_scale", o.shard.shards);
  return all_complete ? 0 : 1;
}
