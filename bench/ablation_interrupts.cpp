// Section 2 ablation: interrupt rates and coalescing.
//
//  * the "one interrupt every ~12 us at MTU 1500" arithmetic, versus what
//    coalescing achieves;
//  * coalescing parameter sweep: bandwidth, receiver CPU and interrupt
//    rate as the frame/usec thresholds vary;
//  * the Fast Ethernet reference point ("90% of 100 Mb/s at 15-20% CPU")
//    and its Gigabit extrapolation, using the TCP/IP stack.
#include "bench/bench_util.hpp"

using namespace clicsim;

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Ablation — interrupt rate and coalescing (section 2)");

  apps::Scenario s;
  s.cluster.shards = opt.shards;
  s.mtu = 1500;

  struct Point {
    int frames;
    double usecs;
  };
  const Point points[] = {{1, 0},   {2, 15},  {4, 30},
                          {8, 30},  {16, 60}, {32, 120}};

  // All simulations of the ablation as one job FIFO: the coalescing sweep,
  // the idle-latency point, and the two TCP streams.
  apps::SweepRunner<apps::StreamStats> runner(opt);
  for (const auto& p : points) {
    apps::Scenario v = s;
    v.cluster.nic.coalesce_frames = p.frames;
    v.cluster.nic.coalesce_usecs = sim::microseconds(p.usecs);
    runner.add([v] { return apps::clic_stream(v, 64 * 1024, 16 * 1024 * 1024); });
  }
  apps::Scenario idle = s;
  idle.cluster.nic.coalesce_frames = 8;
  idle.cluster.nic.coalesce_usecs = sim::microseconds(30);
  runner.add([idle] {
    apps::StreamStats st;
    st.elapsed = apps::clic_one_way(idle, 0);
    return st;
  });
  apps::Scenario fe = s;
  fe.cluster.nic = hw::NicProfile::fast_ether_100();
  fe.cluster.link.bits_per_s = 100e6;
  fe.mtu = 1500;
  runner.add([fe] { return apps::tcp_stream(fe, 8 * 1024 * 1024); });
  apps::Scenario ge = s;
  ge.mtu = 1500;
  runner.add([ge] { return apps::tcp_stream(ge, 16 * 1024 * 1024); });
  const auto rows = runner.run();

  bench::subheading("interrupt arithmetic at wire speed, MTU 1500");
  std::printf(
      "  a saturated Gigabit link delivers one 1500 B frame every ~12 us\n");

  bench::subheading(
      "coalescing sweep (CLIC stream, 16 MB of 64 KB messages, MTU 1500)");
  std::printf("  %10s %10s %10s %12s %12s %14s\n", "frames", "usecs",
              "Mb/s", "rx CPU %", "irqs", "us/interrupt");
  double bw_no_coalesce = 0;
  double cpu_no_coalesce = 0;
  double bw_best = 0;
  double cpu_best = 1.0;
  for (std::size_t i = 0; i < std::size(points); ++i) {
    const auto& p = points[i];
    const auto& st = rows[i];
    const double us_per_irq =
        st.rx_interrupts
            ? sim::to_us(st.elapsed) / static_cast<double>(st.rx_interrupts)
            : 0.0;
    std::printf("  %10d %10.0f %10.1f %12.1f %12llu %14.1f\n", p.frames,
                p.usecs, st.mbps, st.rx_cpu * 100.0,
                static_cast<unsigned long long>(st.rx_interrupts),
                us_per_irq);
    if (p.frames == 1) {
      bw_no_coalesce = st.mbps;
      cpu_no_coalesce = st.rx_cpu;
    }
    if (p.frames == 8) {
      bw_best = st.mbps;
      cpu_best = st.rx_cpu;
    }
  }

  bench::subheading("claims");
  bench::claim("coalescing reduces receiver CPU at equal-or-better bandwidth",
               cpu_best < cpu_no_coalesce && bw_best >= bw_no_coalesce * 0.95);

  // Latency cost of coalescing (the paper's caveat: it delays reception).
  bench::subheading("latency under load vs idle (coalescing delay caveat)");
  const double lat_adaptive = sim::to_us(rows[std::size(points)].elapsed);
  std::printf(
      "  idle 0-byte latency with adaptive coalescing: %.1f us "
      "(drivers fire immediately when the line was quiet)\n",
      lat_adaptive);

  // --- TCP CPU cost scaling (Fast Ethernet -> Gigabit) -----------------------------
  bench::subheading("TCP/IP CPU utilization: Fast Ethernet vs Gigabit");
  const auto& fe_st = rows[std::size(points) + 1];
  std::printf("  Fast Ethernet TCP: %.1f Mb/s at rx CPU %.0f%%\n", fe_st.mbps,
              fe_st.rx_cpu * 100.0);
  bench::compare("FE TCP goodput (90% of 100 Mb/s claim)", 90.0, fe_st.mbps,
                 "Mb/s", 0.25);
  // Expected divergence (explained below): informational, not enforced.
  bench::compare("FE TCP receiver CPU (15-20% claim)", 20.0,
                 fe_st.rx_cpu * 100.0, "%", 0.8, /*enforced=*/false);
  std::printf(
      "  (expected divergence: our TCP per-byte costs are calibrated to the\n"
      "   untuned Gigabit baseline of Figure 5; the 15-20%% figure in [11]\n"
      "   assumes a leaner tuned stack)\n");

  const auto& ge_st = rows[std::size(points) + 2];
  std::printf("  Gigabit TCP (MTU 1500): %.1f Mb/s at rx CPU %.0f%%\n",
              ge_st.mbps, ge_st.rx_cpu * 100.0);
  bench::claim(
      "at Gigabit rates TCP saturates the CPU long before the wire "
      "(the paper's 'would require almost 100% of the processor')",
      ge_st.rx_cpu > 0.85 && ge_st.mbps < 500.0);
  return bench::exit_code();
}
