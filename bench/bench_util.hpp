// Shared helpers for the figure/table reproduction binaries: table
// printing, PAPER vs MEASURED summaries, and the common --shards flag
// family the scaling benches accept.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/sweep.hpp"
#include "apps/workloads.hpp"
#include "net/buffer_pool.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"

namespace clicsim::bench {

// ---- shared --shards / -j argument family ------------------------------
//
// pdes_scale and collective_scale used to re-parse these independently
// (drifting flags and clamp ranges); both now consume them here so the
// spellings, the [1, 4096] clamp and the help text stay consistent.

struct ShardArgs {
  int shards = 1;
  bool stats = false;  // --shard-stats: engine counters to stderr
};

// Help block matching exactly what consume_shard_arg() accepts.
inline constexpr const char* kShardArgsHelp =
    "  --shards N     PDES worker shards for each scenario (default 1;\n"
    "                 stdout is byte-identical at any shard count)\n"
    "  --shard-stats  print engine coordination counters (windows,\n"
    "                 barrier waits, cross-shard posts, COW payload\n"
    "                 mints) to stderr after the run\n"
    "  -j N           accepted for script compatibility; these binaries\n"
    "                 run one scenario at a time\n";

// Parses decimal `text` into [lo, hi]; false on malformed/out-of-range
// (callers turn that into their own usage() exit).
inline bool parse_long_in(const char* text, long lo, long hi, long& out) {
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || n < lo || n > hi) return false;
  out = n;
  return true;
}

enum class ArgOutcome {
  kNotMine,   // argv[i] is some other flag: caller handles it
  kConsumed,  // flag (and any separate value) consumed; i advanced
  kBad,       // matched one of ours but the value is malformed
};

inline ArgOutcome consume_shard_arg(ShardArgs& out, int argc, char** argv,
                                    int& i) {
  const char* arg = argv[i];
  auto value = [&]() -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  auto ok = [&](const char* text, long lo, long hi, long& v) {
    return text != nullptr && parse_long_in(text, lo, hi, v);
  };
  long v = 0;
  if (std::strcmp(arg, "--shards") == 0) {
    if (!ok(value(), 1, 4096, v)) return ArgOutcome::kBad;
    out.shards = static_cast<int>(v);
    return ArgOutcome::kConsumed;
  }
  if (std::strncmp(arg, "--shards=", 9) == 0) {
    if (!ok(arg + 9, 1, 4096, v)) return ArgOutcome::kBad;
    out.shards = static_cast<int>(v);
    return ArgOutcome::kConsumed;
  }
  if (std::strcmp(arg, "--shard-stats") == 0) {
    out.stats = true;
    return ArgOutcome::kConsumed;
  }
  // -j/--jobs: validated and discarded (one scenario per run).
  if (std::strcmp(arg, "-j") == 0 || std::strcmp(arg, "--jobs") == 0) {
    return ok(value(), 1, 4096, v) ? ArgOutcome::kConsumed : ArgOutcome::kBad;
  }
  if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
    return ok(arg + 2, 1, 4096, v) ? ArgOutcome::kConsumed : ArgOutcome::kBad;
  }
  if (std::strncmp(arg, "--jobs=", 7) == 0) {
    return ok(arg + 7, 1, 4096, v) ? ArgOutcome::kConsumed : ArgOutcome::kBad;
  }
  return ArgOutcome::kNotMine;
}

// Accumulates ShardGroup coordination counters across beds (a bench may
// build several) plus the process-wide COW payload accounting; printed to
// stderr so stdout stays byte-identical for the determinism cmp gates.
struct ShardStats {
  std::uint64_t windows = 0;
  std::uint64_t barrier_waits = 0;
  std::uint64_t cross_shard_posts = 0;
  std::uint64_t events_drained = 0;

  void absorb(const sim::ShardGroup& g) {
    windows += g.windows_opened();
    barrier_waits += g.barrier_waits();
    cross_shard_posts += g.cross_shard_posts();
    events_drained += g.events_drained();
  }

  void print(const char* prog, int shards) const {
    std::fprintf(
        stderr,
        "%s: shard-stats shards=%d windows=%llu barrier_waits=%llu"
        " cross_shard_posts=%llu drained=%llu shared_mints=%llu"
        " unpooled_copies=%llu\n",
        prog, shards, static_cast<unsigned long long>(windows),
        static_cast<unsigned long long>(barrier_waits),
        static_cast<unsigned long long>(cross_shard_posts),
        static_cast<unsigned long long>(events_drained),
        static_cast<unsigned long long>(net::detail::shared_data_mints()),
        static_cast<unsigned long long>(net::detail::unpooled_data_copies()));
  }
};

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Shape regressions recorded by compare()/claim(); the binaries return
// exit_code() so scripts/reproduce.sh fails when a row goes [off] or a
// claim prints [VIOLATED].
inline int& failure_count() {
  static int failures = 0;
  return failures;
}

[[nodiscard]] inline int exit_code() { return failure_count() > 0 ? 1 : 0; }

// One PAPER vs MEASURED row with a pass/fail-ish qualitative check. Pass
// `enforced = false` for a row whose divergence is expected and explained
// in the output (it still prints [off] but does not fail the binary).
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& unit, double rel_tolerance = 0.35,
                    bool enforced = true) {
  const double rel =
      paper != 0.0 ? (measured - paper) / paper : 0.0;
  const bool ok = std::abs(rel) <= rel_tolerance;
  if (!ok && enforced) ++failure_count();
  std::printf("  %-46s paper %9.1f %-6s measured %9.1f %-6s (%+5.1f%%) %s\n",
              what.c_str(), paper, unit.c_str(), measured, unit.c_str(),
              rel * 100.0, ok ? "[shape OK]" : "[off]");
}

inline void claim(const std::string& what, bool holds) {
  if (!holds) ++failure_count();
  std::printf("  %-74s %s\n", what.c_str(),
              holds ? "[holds]" : "[VIOLATED]");
}

inline void print_table(const std::vector<const sim::Series*>& series) {
  sim::print_series_table(std::cout, "size(B)", series);
}

// Smallest sweep size from which the curve stays at or above `fraction` of
// its own maximum (a monotone-envelope crossing: robust against the local
// Nagle/delayed-ack dip in the TCP curve).
inline double half_bandwidth_point(const sim::Series& s,
                                   double fraction = 0.5) {
  const double level = fraction * s.max_y();
  const auto& pts = s.points();
  std::size_t first_stable = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].y < level) first_stable = i + 1;
  }
  if (first_stable >= pts.size()) return pts.empty() ? 0.0 : pts.back().x;
  return pts[first_stable].x;
}

}  // namespace clicsim::bench
