// Shared helpers for the figure/table reproduction binaries: table
// printing and PAPER vs MEASURED summaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/sweep.hpp"
#include "apps/workloads.hpp"
#include "sim/stats.hpp"

namespace clicsim::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Shape regressions recorded by compare()/claim(); the binaries return
// exit_code() so scripts/reproduce.sh fails when a row goes [off] or a
// claim prints [VIOLATED].
inline int& failure_count() {
  static int failures = 0;
  return failures;
}

[[nodiscard]] inline int exit_code() { return failure_count() > 0 ? 1 : 0; }

// One PAPER vs MEASURED row with a pass/fail-ish qualitative check. Pass
// `enforced = false` for a row whose divergence is expected and explained
// in the output (it still prints [off] but does not fail the binary).
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& unit, double rel_tolerance = 0.35,
                    bool enforced = true) {
  const double rel =
      paper != 0.0 ? (measured - paper) / paper : 0.0;
  const bool ok = std::abs(rel) <= rel_tolerance;
  if (!ok && enforced) ++failure_count();
  std::printf("  %-46s paper %9.1f %-6s measured %9.1f %-6s (%+5.1f%%) %s\n",
              what.c_str(), paper, unit.c_str(), measured, unit.c_str(),
              rel * 100.0, ok ? "[shape OK]" : "[off]");
}

inline void claim(const std::string& what, bool holds) {
  if (!holds) ++failure_count();
  std::printf("  %-74s %s\n", what.c_str(),
              holds ? "[holds]" : "[VIOLATED]");
}

inline void print_table(const std::vector<const sim::Series*>& series) {
  sim::print_series_table(std::cout, "size(B)", series);
}

// Smallest sweep size from which the curve stays at or above `fraction` of
// its own maximum (a monotone-envelope crossing: robust against the local
// Nagle/delayed-ack dip in the TCP curve).
inline double half_bandwidth_point(const sim::Series& s,
                                   double fraction = 0.5) {
  const double level = fraction * s.max_y();
  const auto& pts = s.points();
  std::size_t first_stable = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].y < level) first_stable = i + 1;
  }
  if (first_stable >= pts.size()) return pts.empty() ? 0.0 : pts.back().x;
  return pts[first_stable].x;
}

}  // namespace clicsim::bench
