// Section 5 feature: channel bonding — CLIC stripes packets across several
// NICs through the switch. Scaling is limited by the shared 33 MHz PCI bus
// all the cards sit on, exactly as on the period hardware.
#include "bench/bench_util.hpp"

using namespace clicsim;

namespace {

struct BondRow {
  double mbps = 0.0;
  double tx_pci_util = 0.0;
  unsigned long long reordered = 0;
};

BondRow bond_point(bool fast_ethernet, int nics, int shards) {
  apps::Scenario s;
  s.cluster.shards = shards;
  s.cluster.nics_per_node = nics;
  s.clic.channel_bonding = nics > 1;
  if (fast_ethernet) {
    s.cluster.nic = hw::NicProfile::fast_ether_100();
    s.cluster.link.bits_per_s = 100e6;
    s.mtu = 1500;
  }

  apps::ClicBed bed(s.cluster, s.clic);
  bed.cluster.set_mtu_all(s.mtu);
  clic::Port a(bed.module(0), 1);
  clic::Port b(bed.module(1), 1);
  const std::int64_t message = 256 * 1024;
  const std::int64_t count = 64;

  struct Drive {
    static sim::Task tx(clic::Port& p, std::int64_t m, std::int64_t c) {
      for (std::int64_t i = 0; i < c; ++i) {
        (void)co_await p.send(1, 1, net::Buffer::zeros(m));
      }
    }
    static sim::Task rx(sim::Simulator& sim, clic::Port& p,
                        std::int64_t c, sim::SimTime& t_end) {
      for (std::int64_t i = 0; i < c; ++i) (void)co_await p.recv();
      t_end = sim.now();
    }
  };
  sim::SimTime t_end = 0;
  Drive::tx(a, message, count);
  Drive::rx(bed.sim_of(1), b, count, t_end);
  bed.run();

  BondRow row;
  row.mbps = static_cast<double>(message * count) * 8e3 /
             static_cast<double>(t_end);
  row.tx_pci_util = bed.cluster.node(0).pci().utilization();
  const auto* ch = bed.module(1).channel_to(0);
  row.reordered =
      static_cast<unsigned long long>(ch ? ch->out_of_order() : 0);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Ablation — channel bonding (several NICs per node)");

  // 2 media x 4 NIC counts, one cluster each.
  apps::SweepRunner<BondRow> runner(opt);
  for (const bool fast_ethernet : {true, false}) {
    for (int nics = 1; nics <= 4; ++nics) {
      runner.add([fast_ethernet, nics, shards = opt.shards] {
        return bond_point(fast_ethernet, nics, shards);
      });
    }
  }
  const auto rows = runner.run();

  std::size_t slot = 0;
  for (const bool fast_ethernet : {true, false}) {
    bench::subheading(fast_ethernet
                          ? "Fast Ethernet (wire-bound: bonding scales)"
                          : "Gigabit (PCI/memory-bound: bonding saturates)");
    std::printf("  %6s %10s %12s %14s %12s\n", "NICs", "Mb/s", "scaling",
                "tx PCI util", "reordered");

    double base = 0.0;
    for (int nics = 1; nics <= 4; ++nics) {
      const auto& row = rows[slot++];
      if (nics == 1) base = row.mbps;
      std::printf("  %6d %10.1f %11.2fx %13.0f%% %12llu\n", nics, row.mbps,
                  row.mbps / base, row.tx_pci_util * 100.0, row.reordered);
    }
  }

  bench::subheading("claims");
  std::printf(
      "  bonding increases bandwidth while the shared PCI bus has headroom;\n"
      "  the reliable channel's reorder buffer absorbs the striping\n"
      "  (out-of-order arrivals above) with zero retransmissions.\n");
  return bench::exit_code();
}
