// Figure 4: CLIC bandwidth vs message size for MTU {9000, 1500} with the
// 0-copy (path 2) and 1-copy (path 3) transmit paths, coalesced interrupts
// on — the jumbo-frames-vs-0-copy study.
#include "bench/bench_util.hpp"

using namespace clicsim;

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading(
      "Figure 4 — CLIC bandwidth: MTU 9000/1500 x 0-copy/1-copy");

  apps::Scenario s;
  s.cluster.shards = opt.shards;
  s.pingpong_reps = 3;
  const auto sizes = apps::sweep_sizes(16, 8 * 1024 * 1024, 3);

  auto spec = [&](std::int64_t mtu, clic::TxPath path) {
    apps::Scenario v = s;
    v.mtu = mtu;
    v.clic.tx_path = path;
    return apps::SeriesSpec{
        (path == clic::TxPath::kZeroCopy ? std::string("0c-mtu") : "1c-mtu") +
            std::to_string(mtu),
        [v](std::int64_t n) { return apps::clic_one_way(v, n); }};
  };

  const auto curves = apps::bandwidth_series_set(
      {spec(9000, clic::TxPath::kZeroCopy), spec(1500, clic::TxPath::kZeroCopy),
       spec(9000, clic::TxPath::kOneCopy), spec(1500, clic::TxPath::kOneCopy)},
      sizes, opt);
  const auto& s0c9000 = curves[0];
  const auto& s0c1500 = curves[1];
  const auto& s1c9000 = curves[2];
  const auto& s1c1500 = curves[3];

  bench::print_table({&s0c9000, &s1c9000, &s0c1500, &s1c1500});

  bench::subheading("paper vs measured (asymptotic bandwidth, Mb/s)");
  bench::compare("CLIC 0-copy MTU 9000", 600, s0c9000.max_y(), "Mb/s");
  bench::compare("CLIC 0-copy MTU 1500", 450, s0c1500.max_y(), "Mb/s");

  bench::subheading("qualitative claims (section 4)");
  bench::claim("jumbo frames and 0-copy both improve bandwidth",
               s0c9000.max_y() > s1c1500.max_y());
  const double jumbo_gain = s0c9000.max_y() - s0c1500.max_y();
  const double copy_gain_1500 = s0c1500.max_y() - s1c1500.max_y();
  const double copy_gain_9000 = s0c9000.max_y() - s1c9000.max_y();
  bench::claim("jumbo improvement exceeds the 0-copy improvement at 1500",
               jumbo_gain > copy_gain_1500);
  std::printf("  (jumbo gain %.0f Mb/s; 0-copy gain %.0f @1500, %.0f @9000)\n",
              jumbo_gain, copy_gain_1500, copy_gain_9000);
  return bench::exit_code();
}
