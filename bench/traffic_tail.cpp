// Open-loop tail-latency race: CLIC vs TCP under the §4j traffic
// workloads (DESIGN.md §4j, EXPERIMENTS.md "traffic_tail").
//
// Eight cells — RPC under Poisson, bursty (on/off) and incast arrivals,
// plus the fixed-cadence streaming workload, each on both stacks — run as
// one SweepRunner figure. Every cell prints one row of HDR-histogram tail
// quantiles (ns), and the per-arrival RPC cells are additionally merged
// per stack into an `rpc-all` row, exercising HdrHistogram::merge the way
// SweepRunner/ShardGroup telemetry folds do.
//
// stdout is fully deterministic: arrivals are precomputed from per-client
// seeded streams, so rows and digests are byte-identical at any `-j` and
// any `--shards`. Wall-clock goes to stderr. Exit status is
// bench::exit_code(): a violated claim (lost requests, deadline misses on
// a clean link, broken quantile ordering, inexact merge) fails the binary
// and scripts/bench_report.sh records the rows as regression gates.
//
// `--adaptive` appends three more RPC cells running the repaired stack
// (adaptive_clic_config, column "clic-a"; DESIGN.md §4k) and gates the
// repair: adaptive-CLIC p99 must beat fixed-CLIC by >=10x under incast and
// stay within 1.5x of fixed-CLIC on Poisson/bursty. Without the flag the
// output is byte-identical to the fixed-clock figure.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/sweep.hpp"
#include "apps/workloads.hpp"
#include "bench/bench_util.hpp"

using namespace clicsim;

namespace {

struct Row {
  std::string name;
  std::string stack;
  bool is_stream = false;
  apps::RpcResult rpc;
  apps::StreamingResult strm;
};

apps::Scenario scenario(int shards) {
  apps::Scenario s;
  s.cluster.shards = shards;
  return s;
}

apps::RpcConfig rpc_config(apps::ArrivalSpec::Process process) {
  apps::RpcConfig cfg;
  cfg.client_nodes = 6;
  cfg.clients_per_node = 48;  // 288 logical clients
  cfg.requests_per_client = 6;
  cfg.request_bytes = 128;
  cfg.response_bytes = 1024;
  // ~10k req/s aggregate (288 clients x 35/s): ~80 Mb/s of responses and
  // roughly a third of the server's per-op CPU budget — real contention in
  // the tail without open-loop queue divergence. Bursty keeps the same
  // average through a 1/3 ON duty cycle; incast fires one 288-request wave
  // (288 KB of responses, ~2.3 ms of wire) every 12 ms.
  cfg.arrivals.process = process;
  cfg.arrivals.rate_per_s =
      process == apps::ArrivalSpec::Process::kBursty ? 105.0 : 35.0;
  cfg.arrivals.on_mean_s = 0.002;
  cfg.arrivals.off_mean_s = 0.004;
  cfg.arrivals.incast_period = sim::milliseconds(12.0);
  cfg.seed = 42;
  return cfg;
}

apps::StreamingConfig stream_config() {
  apps::StreamingConfig cfg;
  cfg.streams = 4;
  cfg.frames_per_stream = 32;
  cfg.frame_bytes = 24000;
  cfg.fragment_bytes = 1200;
  cfg.cadence = sim::milliseconds(5.0);
  cfg.deadline = sim::milliseconds(4.0);
  cfg.seed = 42;
  return cfg;
}

void print_rpc_row(const std::string& name, const std::string& stack,
                   const apps::RpcResult& r) {
  std::printf("  %-14s %-5s %7llu %10lld %10lld %10lld %7llu  %016" PRIx64
              "\n",
              name.c_str(), stack.c_str(),
              static_cast<unsigned long long>(r.responses),
              static_cast<long long>(r.latency.quantile(0.50)),
              static_cast<long long>(r.latency.quantile(0.99)),
              static_cast<long long>(r.latency.quantile(0.999)),
              static_cast<unsigned long long>(r.in_flight), r.digest);
}

}  // namespace

int main(int argc, char** argv) {
  // --adaptive is ours; everything else goes to the sweep parser (which
  // exits on unknown arguments).
  bool adaptive = false;
  std::vector<char*> sweep_argv;
  sweep_argv.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--adaptive") {
      adaptive = true;
      continue;
    }
    sweep_argv.push_back(argv[i]);
  }
  const apps::SweepOptions opts = apps::parse_sweep_args(
      static_cast<int>(sweep_argv.size()), sweep_argv.data());

  struct Cell {
    std::string name;
    std::string stack;
    apps::ArrivalSpec::Process process;
    bool adaptive = false;
  };
  const std::vector<Cell> rpc_cells = {
      {"rpc-poisson", "clic", apps::ArrivalSpec::Process::kPoisson},
      {"rpc-poisson", "tcp", apps::ArrivalSpec::Process::kPoisson},
      {"rpc-bursty", "clic", apps::ArrivalSpec::Process::kBursty},
      {"rpc-bursty", "tcp", apps::ArrivalSpec::Process::kBursty},
      {"rpc-incast", "clic", apps::ArrivalSpec::Process::kIncast},
      {"rpc-incast", "tcp", apps::ArrivalSpec::Process::kIncast},
  };
  // The repaired stack's cells ride after the fixed 8-cell figure so every
  // default row (and the clic/tcp pairing below) keeps its position.
  const std::vector<Cell> adaptive_cells = {
      {"rpc-poisson", "clic-a", apps::ArrivalSpec::Process::kPoisson, true},
      {"rpc-bursty", "clic-a", apps::ArrivalSpec::Process::kBursty, true},
      {"rpc-incast", "clic-a", apps::ArrivalSpec::Process::kIncast, true},
  };

  const auto wall_start = std::chrono::steady_clock::now();

  apps::SweepRunner<Row> runner(opts);
  auto add_rpc_cell = [&opts, &runner](const Cell& cell) {
    runner.add([&opts, cell] {
      Row row;
      row.name = cell.name;
      row.stack = cell.stack;
      const apps::RpcConfig cfg = rpc_config(cell.process);
      apps::Scenario s = scenario(opts.shards);
      if (cell.adaptive) s.clic = apps::adaptive_clic_config();
      row.rpc =
          cell.stack == "tcp" ? rpc_tcp(s, cfg) : rpc_clic(s, cfg);
      return row;
    });
  };
  for (const auto& cell : rpc_cells) add_rpc_cell(cell);
  for (const std::string stack : {"clic", "tcp"}) {
    runner.add([&opts, stack] {
      Row row;
      row.name = "streaming";
      row.stack = stack;
      row.is_stream = true;
      const apps::StreamingConfig cfg = stream_config();
      row.strm = stack == "clic"
                     ? apps::streaming_clic(scenario(opts.shards), cfg)
                     : apps::streaming_tcp(scenario(opts.shards), cfg);
      return row;
    });
  }
  if (adaptive) {
    for (const auto& cell : adaptive_cells) add_rpc_cell(cell);
  }
  const std::vector<Row> rows = runner.run();

  const auto wall_end = std::chrono::steady_clock::now();
  std::fprintf(stderr, "traffic_tail: wall %lld ms (-j %d, --shards %d)\n",
               static_cast<long long>(
                   std::chrono::duration_cast<std::chrono::milliseconds>(
                       wall_end - wall_start)
                       .count()),
               opts.jobs, opts.shards);

  bench::heading("Open-loop traffic: tail latency, CLIC vs TCP");
  std::printf("  %-14s %-5s %7s %10s %10s %10s %7s  %s\n", "workload",
              "stack", "n", "p50(ns)", "p99(ns)", "p999(ns)", "open",
              "digest");
  for (const auto& row : rows) {
    if (row.is_stream) {
      print_rpc_row(row.name, row.stack,
                    apps::RpcResult{.latency = row.strm.latency,
                                    .requests = row.strm.frames,
                                    .responses = row.strm.on_time,
                                    .in_flight = row.strm.in_flight,
                                    .digest = row.strm.digest});
    } else {
      print_rpc_row(row.name, row.stack, row.rpc);
    }
  }

  // Merged per-stack RPC telemetry: the cross-cell fold SweepRunner users
  // do, in fixed cell order.
  for (const std::string stack : {"clic", "tcp"}) {
    sim::HdrHistogram merged(3);
    sim::HdrHistogram reversed(3);
    std::uint64_t total = 0;
    for (const auto& row : rows) {
      if (row.is_stream || row.stack != stack) continue;
      merged.merge(row.rpc.latency);
      total += row.rpc.latency.count();
    }
    for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
      if (it->is_stream || it->stack != stack) continue;
      reversed.merge(it->rpc.latency);
    }
    apps::RpcResult all;
    all.latency = merged;
    all.responses = merged.count();
    print_rpc_row("rpc-all", stack, all);
    bench::claim("rpc-all[" + stack + "]: merge is exact (count == sum)",
                 merged.count() == total);
    bench::claim("rpc-all[" + stack + "]: merge order invariant",
                 merged == reversed);
  }

  bench::subheading("Latency-accounting claims");
  const apps::StreamingResult* strm_by_stack[2] = {nullptr, nullptr};
  for (const auto& row : rows) {
    if (row.is_stream) {
      strm_by_stack[row.stack == "tcp" ? 1 : 0] = &row.strm;
      continue;
    }
    bench::claim(row.name + "[" + row.stack + "]: every request answered",
                 row.rpc.in_flight == 0 &&
                     row.rpc.responses == row.rpc.requests);
    const auto& h = row.rpc.latency;
    bench::claim(row.name + "[" + row.stack + "]: p50 <= p99 <= p999 <= max",
                 h.quantile(0.50) <= h.quantile(0.99) &&
                     h.quantile(0.99) <= h.quantile(0.999) &&
                     h.quantile(0.999) <= h.max());
  }
  for (int i = 0; i < 2; ++i) {
    const char* stack = i == 0 ? "clic" : "tcp";
    const apps::StreamingResult& s = *strm_by_stack[i];
    bench::claim(std::string("streaming[") + stack +
                     "]: zero deadline misses on a clean link",
                 s.deadline_misses == 0 && s.late_fragments == 0);
    bench::claim(std::string("streaming[") + stack +
                     "]: accounting identity on_time + misses + pending == "
                     "expected",
                 s.on_time + s.deadline_misses + s.in_flight == s.frames);
  }

  // The paper's thesis, restated for tails: the lightweight stack beats
  // TCP/IP at the 99th percentile under identical offered load — except
  // under incast, where the race inverts: paper CLIC retransmits on a
  // fixed clock with no backoff or congestion control, so synchronized
  // request waves drive it into a retransmission storm that TCP's adaptive
  // RTO absorbs. Both directions are regression-gated.
  // Only the fixed 8-cell figure pairs clic/tcp by adjacency; the adaptive
  // cells (appended after) are compared by name below.
  const std::size_t paired = std::min<std::size_t>(rows.size(), 8);
  for (std::size_t i = 0; i + 1 < paired; i += 2) {
    const std::int64_t clic_p99 =
        rows[i].is_stream ? rows[i].strm.latency.quantile(0.99)
                          : rows[i].rpc.latency.quantile(0.99);
    const std::int64_t tcp_p99 =
        rows[i + 1].is_stream ? rows[i + 1].strm.latency.quantile(0.99)
                              : rows[i + 1].rpc.latency.quantile(0.99);
    if (rows[i].name == "rpc-incast") {
      bench::claim("rpc-incast: fixed-RTO CLIC collapses, TCP p99 < CLIC p99",
                   tcp_p99 < clic_p99);
    } else {
      bench::claim(rows[i].name + ": CLIC p99 < TCP p99",
                   clic_p99 < tcp_p99);
    }
  }

  if (adaptive) {
    // The repair gates (ISSUE 10): adaptive CLIC must flatten the incast
    // storm by >=10x versus the fixed clock, without regressing the
    // workloads the paper stack already wins (within 1.5x on Poisson and
    // bursty arrivals).
    auto p99_of = [&rows](const std::string& name,
                          const std::string& stack) -> std::int64_t {
      for (const auto& row : rows) {
        if (!row.is_stream && row.name == name && row.stack == stack) {
          return row.rpc.latency.quantile(0.99);
        }
      }
      return -1;
    };
    const std::int64_t fixed_incast = p99_of("rpc-incast", "clic");
    const std::int64_t adapt_incast = p99_of("rpc-incast", "clic-a");
    bench::claim(
        "rpc-incast: adaptive repairs the collapse (p99 <= fixed p99 / 10)",
        adapt_incast > 0 && adapt_incast * 10 <= fixed_incast);
    for (const std::string name : {"rpc-poisson", "rpc-bursty"}) {
      const std::int64_t fixed_p99 = p99_of(name, "clic");
      const std::int64_t adapt_p99 = p99_of(name, "clic-a");
      bench::claim(name + ": adaptive within 1.5x of fixed CLIC p99",
                   adapt_p99 > 0 && 2 * adapt_p99 <= 3 * fixed_p99);
    }
  }

  return bench::exit_code();
}
