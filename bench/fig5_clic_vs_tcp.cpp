// Figure 5: CLIC vs TCP/IP bandwidth for MTU 9000 and 1500 (0-copy CLIC).
// Headline: CLIC gives more than twice TCP's bandwidth even at TCP's best
// MTU, and its curve rises much faster (half-bandwidth at ~4 KB vs ~16 KB).
#include "bench/bench_util.hpp"

using namespace clicsim;

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Figure 5 — CLIC vs TCP/IP, MTU 9000 and 1500");

  apps::Scenario s;
  s.cluster.shards = opt.shards;
  s.pingpong_reps = 3;
  const auto sizes = apps::sweep_sizes(16, 8 * 1024 * 1024, 3);

  auto clic_at = [&](std::int64_t mtu) {
    apps::Scenario v = s;
    v.mtu = mtu;
    return apps::SeriesSpec{
        "clic-" + std::to_string(mtu),
        [v](std::int64_t n) { return apps::clic_one_way(v, n); }};
  };
  auto tcp_at = [&](std::int64_t mtu) {
    apps::Scenario v = s;
    v.mtu = mtu;
    return apps::SeriesSpec{
        "tcp-" + std::to_string(mtu),
        [v](std::int64_t n) { return apps::tcp_one_way(v, n); }};
  };

  const auto curves = apps::bandwidth_series_set(
      {clic_at(9000), clic_at(1500), tcp_at(9000), tcp_at(1500)}, sizes,
      opt);
  const auto& clic9000 = curves[0];
  const auto& clic1500 = curves[1];
  const auto& tcp9000 = curves[2];
  const auto& tcp1500 = curves[3];

  apps::SweepRunner<sim::SimTime> extra(opt);
  extra.add([&s] { return apps::clic_one_way(s, 0); });
  const double zero_byte_us = sim::to_us(extra.run()[0]);

  bench::print_table({&clic9000, &tcp9000, &clic1500, &tcp1500});

  bench::subheading("paper vs measured");
  bench::compare("CLIC asymptote, MTU 9000", 600, clic9000.max_y(), "Mb/s");
  bench::compare("CLIC asymptote, MTU 1500", 450, clic1500.max_y(), "Mb/s");
  bench::compare("CLIC 0-byte one-way latency", 36.0, zero_byte_us, "us",
                 0.15);
  bench::compare("CLIC half-bandwidth message size", 4096.0,
                 bench::half_bandwidth_point(clic9000), "B", 2.0);
  bench::compare("TCP half-bandwidth message size", 16384.0,
                 bench::half_bandwidth_point(tcp9000), "B", 3.0);

  bench::subheading("qualitative claims");
  bench::claim(">2x TCP bandwidth at TCP's best MTU (9000)",
               clic9000.max_y() > 2.0 * tcp9000.max_y());
  bench::claim("CLIC curve rises faster than TCP's",
               bench::half_bandwidth_point(clic9000) <
                   bench::half_bandwidth_point(tcp9000));
  return bench::exit_code();
}
