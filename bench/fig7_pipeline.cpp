// Figure 7: stage timing of a 1400-byte packet through the CLIC pipeline.
//
// (a) stock receive path — driver ISR + sk_buff + bottom half + CLIC_MODULE
// (b) the Figure 8b improvement — the driver calls CLIC_MODULE directly
//     from the ISR, cutting the receive interrupt path from ~20 us to ~5 us.
//
// The per-stage numbers are computed from the calibrated model constants
// (the same constants the simulation charges); the end-to-end one-way time
// is then MEASURED and compared against the sum, and against the paper.
#include "bench/bench_util.hpp"
#include "hw/params.hpp"

using namespace clicsim;

namespace {

struct Stages {
  double module_tx, driver_tx, dma_tx, wire, dma_rx, irq_driver, bh,
      module_rx;
  double sum() const {
    return module_tx + driver_tx + dma_tx + wire + dma_rx + irq_driver + bh +
           module_rx;
  }
};

Stages compute_stages(const apps::Scenario& s, std::int64_t payload,
                      bool direct) {
  const auto& host = s.cluster.host;
  const auto& nic = s.cluster.nic;
  hw::PciParams pci = s.cluster.pci;

  const std::int64_t frame =
      net::kEthHeaderBytes + clic::kClicHeaderBytes + payload +
      net::kEthFcsBytes;
  const double pci_bps =
      pci.peak_bytes_per_s() * nic.pci_efficiency(frame);
  const double dma_us =
      sim::to_us(nic.dma_setup) + static_cast<double>(frame) / pci_bps * 1e6;
  const double wire_us =
      static_cast<double>(frame + net::kEthWireOverhead) * 8.0 / 1e3 +
      sim::to_us(s.cluster.sw.forwarding_latency) +
      2.0 * sim::to_us(s.cluster.link.propagation);
  // Early receive DMA overlaps the wire; only the residual lag remains.
  const double wire_only =
      static_cast<double>(frame + net::kEthWireOverhead) * 8.0 / 1e3;
  const double dma_rx_us = std::max(dma_us - wire_only, 1.0);

  Stages st{};
  st.module_tx = sim::to_us(host.syscall_enter + s.clic.module_tx_cost);
  st.driver_tx = sim::to_us(s.clic.driver_tx_cost);
  st.dma_tx = dma_us + sim::to_us(nic.tx_fifo_latency);
  st.wire = wire_us;
  st.dma_rx = dma_rx_us + sim::to_us(nic.rx_fifo_latency);
  if (direct) {
    st.irq_driver = sim::to_us(host.irq_dispatch + host.isr_entry +
                               host.isr_per_frame);
    st.bh = 0.0;
  } else {
    st.irq_driver = sim::to_us(host.irq_dispatch + host.isr_entry +
                               host.isr_per_frame + host.skbuff_alloc);
    st.bh = sim::to_us(host.bottom_half_dispatch);
  }
  st.module_rx =
      sim::to_us(s.clic.module_rx_cost) +
      static_cast<double>(payload) / host.cpu_copy_bytes_per_s * 1e6 +
      sim::to_us(host.process_wakeup + host.context_switch +
                 host.syscall_exit);
  return st;
}

void print_stages(const char* title, const Stages& st) {
  bench::subheading(title);
  std::printf("  %-34s %8.2f us\n", "CLIC_MODULE + syscall (send)",
              st.module_tx);
  std::printf("  %-34s %8.2f us\n", "driver (send)", st.driver_tx);
  std::printf("  %-34s %8.2f us\n", "memory + PCI buses (tx DMA)",
              st.dma_tx);
  std::printf("  %-34s %8.2f us\n", "flight time (wire + switch)", st.wire);
  std::printf("  %-34s %8.2f us\n", "rx DMA residual (early DMA)",
              st.dma_rx);
  std::printf("  %-34s %8.2f us\n", "interrupt + driver (recv)",
              st.irq_driver);
  std::printf("  %-34s %8.2f us\n", "bottom half", st.bh);
  std::printf("  %-34s %8.2f us\n", "CLIC_MODULE + copy + wake (recv)",
              st.module_rx);
  std::printf("  %-34s %8.2f us\n", "stage sum", st.sum());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Figure 7 — 1400-byte packet pipeline timing");
  const std::int64_t kPayload = 1400;

  apps::Scenario stock;
  stock.cluster.shards = opt.shards;
  stock.pingpong_reps = 8;
  apps::Scenario improved = stock;
  improved.clic.direct_dispatch = true;

  const Stages a = compute_stages(stock, kPayload, false);
  const Stages b = compute_stages(improved, kPayload, true);
  print_stages("(a) stock receive path (model constants)", a);
  print_stages("(b) direct driver->module dispatch (Figure 8b)", b);

  apps::SweepRunner<sim::SimTime> runner(opt);
  runner.add([&] { return apps::clic_one_way(stock, kPayload); });
  runner.add([&] { return apps::clic_one_way(improved, kPayload); });
  const auto measured = runner.run();
  const double measured_a = sim::to_us(measured[0]);
  const double measured_b = sim::to_us(measured[1]);

  bench::subheading("measured end-to-end one-way, 1400 B");
  bench::compare("stock path: stage sum vs measured", a.sum(), measured_a,
                 "us", 0.25);
  bench::compare("direct path: stage sum vs measured", b.sum(), measured_b,
                 "us", 0.25);

  bench::subheading("paper vs measured");
  // Fig. 7a: receive interrupt path ~20 us (driver int ~15 + BH ~2 + entry).
  bench::compare("receive interrupt path, stock", 20.0,
                 a.irq_driver + a.bh + sim::to_us(stock.clic.module_rx_cost),
                 "us", 0.45);
  // Fig. 7b: cut to ~5 us with the direct call.
  bench::compare("receive interrupt path, direct (Fig 8b)", 5.0 + 2.0,
                 b.irq_driver + sim::to_us(improved.clic.module_rx_cost),
                 "us", 0.60);
  bench::claim("direct dispatch lowers 1400 B latency",
               measured_b < measured_a);
  std::printf("  (one-way 1400 B: stock %.1f us, direct %.1f us)\n",
              measured_a, measured_b);
  return bench::exit_code();
}
