// Figure 1 ablation: the four data paths from user memory to the NIC.
//   path 1 — programmed I/O straight to the card
//   path 2 — scatter/gather DMA from user memory (0-copy; Gigabit CLIC)
//   path 3 — one copy to a kernel buffer, DMA from there
//   path 4 — kernel buffer + staging copy (Fast Ethernet CLIC heritage)
#include "bench/bench_util.hpp"

using namespace clicsim;

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Ablation — Figure 1 data paths");

  struct Row {
    clic::TxPath path;
    const char* name;
  };
  const Row rows[] = {
      {clic::TxPath::kDirectPio, "path 1 (PIO)"},
      {clic::TxPath::kZeroCopy, "path 2 (0-copy S/G DMA)"},
      {clic::TxPath::kOneCopy, "path 3 (1 copy + DMA)"},
      {clic::TxPath::kTwoCopy, "path 4 (2 copies)"},
  };
  const std::int64_t mtus[] = {9000, 1500};

  // 2 MTUs x 4 paths, one stream simulation per cell.
  apps::SweepRunner<apps::StreamStats> runner(opt);
  for (const std::int64_t mtu : mtus) {
    for (const auto& row : rows) {
      apps::Scenario s;
      s.cluster.shards = opt.shards;
      s.mtu = mtu;
      s.clic.tx_path = row.path;
      runner.add(
          [s] { return apps::clic_stream(s, 64 * 1024, 16 * 1024 * 1024); });
    }
  }
  const auto stats = runner.run();

  std::size_t slot = 0;
  for (const std::int64_t mtu : mtus) {
    bench::subheading("MTU " + std::to_string(mtu) +
                      " — 16 MB stream of 64 KB messages");
    std::printf("  %-28s %10s %12s %12s\n", "tx path", "Mb/s", "tx CPU %",
                "rx CPU %");
    double results[4] = {};
    int i = 0;
    for (const auto& row : rows) {
      const auto& st = stats[slot++];
      std::printf("  %-28s %10.1f %12.1f %12.1f\n", row.name, st.mbps,
                  st.tx_cpu * 100.0, st.rx_cpu * 100.0);
      results[i++] = st.mbps;
    }
    bench::claim("0-copy (path 2) is the fastest path",
                 results[1] >= results[0] && results[1] >= results[2] &&
                     results[1] >= results[3]);
    bench::claim("PIO (path 1) is the slowest DMA-era choice",
                 results[0] <= results[2] && results[0] <= results[3]);
    bench::claim("each copy costs bandwidth (path 3 >= path 4)",
                 results[2] >= results[3] * 0.98);
  }
  return bench::exit_code();
}
