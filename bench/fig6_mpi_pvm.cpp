// Figure 6: bandwidth of CLIC, MPI-on-CLIC, MPI-on-TCP and PVM-on-TCP.
// Headline: CLIC and MPI-CLIC dominate; even in the worst (large-message)
// case MPI-CLIC keeps >= 1.5x MPI-TCP; PVM trails everything.
#include "bench/bench_util.hpp"

using namespace clicsim;

int main(int argc, char** argv) {
  const auto opt = apps::parse_sweep_args(argc, argv);
  bench::heading("Figure 6 — CLIC, MPI-CLIC, MPI-TCP, PVM-TCP");

  apps::Scenario s;
  s.cluster.shards = opt.shards;
  s.pingpong_reps = 3;
  const auto sizes = apps::sweep_sizes(16, 8 * 1024 * 1024, 3);

  const auto curves = apps::bandwidth_series_set(
      {{"clic",
        [s](std::int64_t n) { return apps::clic_one_way(s, n); }},
       {"mpi-clic",
        [s](std::int64_t n) { return apps::mpi_clic_one_way(s, n); }},
       {"mpi-tcp",
        [s](std::int64_t n) { return apps::mpi_tcp_one_way(s, n); }},
       {"pvm-tcp",
        [s](std::int64_t n) { return apps::pvm_one_way(s, n); }}},
      sizes, opt);
  const auto& clic = curves[0];
  const auto& mpi_clic = curves[1];
  const auto& mpi_tcp = curves[2];
  const auto& pvm = curves[3];

  bench::print_table({&clic, &mpi_clic, &mpi_tcp, &pvm});

  bench::subheading("paper vs measured");
  const double worst_ratio = [&] {
    double w = 1e9;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (sizes[i] < 256 * 1024) continue;  // "for long messages"
      const double a = mpi_clic.points()[i].y;
      const double b = mpi_tcp.points()[i].y;
      if (b > 0) w = std::min(w, a / b);
    }
    return w;
  }();
  std::printf("  worst-case MPI-CLIC / MPI-TCP ratio for long messages: "
              "%.2fx (paper floor: 1.5x)\n", worst_ratio);
  bench::claim("MPI-CLIC >= 1.5x MPI-TCP even in the worst case",
               worst_ratio >= 1.5);

  bench::subheading("qualitative claims");
  bench::claim("CLIC and MPI-CLIC above MPI-TCP and PVM",
               mpi_clic.max_y() > mpi_tcp.max_y() &&
                   clic.max_y() > mpi_tcp.max_y());
  bench::claim("PVM below MPI on TCP", pvm.max_y() < mpi_tcp.max_y());
  bench::claim("curves of CLIC and MPI-CLIC rise faster",
               bench::half_bandwidth_point(mpi_clic) <
                   bench::half_bandwidth_point(mpi_tcp));
  return bench::exit_code();
}
