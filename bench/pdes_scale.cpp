// PDES scaling benchmark: one large CLIC scenario sharded across cores.
//
// A 64-node (configurable) cluster runs a ring-neighbor storm of confirmed
// sends: node n ships `--messages` back-to-back confirmed messages to node
// (n+1) mod N while receiving the same stream from (n-1) mod N. This is
// the shape the intra-scenario shard engine is built for — many nodes,
// all active, one switch — unlike the figure sweeps whose 2-node
// scenarios parallelize across sweep points (-j) instead.
//
// stdout is a deterministic digest of the run (per-node delivery
// counters, total events, final sim clock) and MUST be byte-identical at
// any --shards value; wall-clock timing goes to stderr so the comparison
// `pdes_scale --shards 1` vs `pdes_scale --shards $(nproc)` can diff
// stdout directly while the speedup is read off stderr.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "sim/task.hpp"

using namespace clicsim;

namespace {

struct Options {
  bench::ShardArgs shard;
  int nodes = 64;
  int messages = 48;          // confirmed sends per node
  std::int64_t bytes = 4096;  // payload per message
  const char* topology = "single-star";
  os::TopologySpec spec;
};

[[noreturn]] void usage(const char* prog, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [--shards N] [--shard-stats] [--nodes N]"
               " [--messages N] [--bytes N] [-j N]\n"
               "%s"
               "  --nodes N      cluster size (default 64)\n"
               "  --messages N   confirmed sends per node (default 48)\n"
               "  --bytes N      payload bytes per message (default 4096)\n"
               "  --topology T   fabric shape: single-star (default),\n"
               "                 leaf-spine, ring, or fat-tree (multi-tier\n"
               "                 shapes shard leaf-locally)\n",
               prog, bench::kShardArgsHelp);
  std::exit(code);
}

long parse_long(const char* prog, const char* text, long lo, long hi) {
  long n = 0;
  if (!bench::parse_long_in(text, lo, hi, n)) usage(prog, 2);
  return n;
}

os::TopologySpec parse_topology(const char* prog, const char* text) {
  if (std::strcmp(text, "single-star") == 0) {
    return os::TopologySpec::single_star();
  }
  if (std::strcmp(text, "leaf-spine") == 0) {
    return os::TopologySpec::leaf_spine(0);  // derived leaves, one spine
  }
  if (std::strcmp(text, "ring") == 0) {
    return os::TopologySpec::switch_ring(0);  // derived member count
  }
  if (std::strcmp(text, "fat-tree") == 0) {
    return os::TopologySpec::fat_tree();
  }
  usage(prog, 2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  const char* prog = argc > 0 ? argv[0] : "pdes_scale";
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(prog, 2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    switch (bench::consume_shard_arg(o.shard, argc, argv, i)) {
      case bench::ArgOutcome::kConsumed:
        continue;
      case bench::ArgOutcome::kBad:
        usage(prog, 2);
      case bench::ArgOutcome::kNotMine:
        break;
    }
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      usage(prog, 0);
    } else if (std::strcmp(arg, "--nodes") == 0) {
      o.nodes = static_cast<int>(parse_long(prog, value(i), 2, 4096));
    } else if (std::strcmp(arg, "--messages") == 0) {
      o.messages = static_cast<int>(parse_long(prog, value(i), 1, 1 << 20));
    } else if (std::strcmp(arg, "--bytes") == 0) {
      o.bytes = parse_long(prog, value(i), 1, 16 << 20);
    } else if (std::strcmp(arg, "--topology") == 0) {
      o.topology = value(i);
      o.spec = parse_topology(prog, o.topology);
    } else {
      usage(prog, 2);
    }
  }
  return o;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= kFnvPrime;
  }
}

struct NodeCounters {
  int sent_ok = 0;
  int sent_failed = 0;
  int received = 0;
  int corrupt = 0;
};

struct Drive {
  static sim::Task tx(clic::ClicModule& mod, int dst, int port, int count,
                      std::int64_t bytes, std::uint64_t seed,
                      NodeCounters* c) {
    for (int k = 0; k < count; ++k) {
      net::Buffer data = net::Buffer::pattern(
          bytes, seed ^ (static_cast<std::uint64_t>(k) * 0x9e3779b9u));
      auto status = co_await mod.send(port, dst, port, std::move(data),
                                      clic::SendMode::kConfirmed);
      if (status.ok) {
        ++c->sent_ok;
      } else {
        ++c->sent_failed;
      }
    }
  }
  static sim::Task rx(clic::ClicModule& mod, int port, int count,
                      std::int64_t bytes, std::uint64_t seed,
                      NodeCounters* c) {
    for (int k = 0; k < count; ++k) {
      clic::Message got = co_await mod.recv(port);
      net::Buffer expect = net::Buffer::pattern(
          bytes, seed ^ (static_cast<std::uint64_t>(k) * 0x9e3779b9u));
      if (got.data.size() == expect.size() &&
          got.data.content_equals(expect)) {
        ++c->received;
      } else {
        ++c->corrupt;
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);

  os::ClusterConfig cc;
  cc.nodes = o.nodes;
  cc.shards = o.shard.shards;
  cc.topology = o.spec;
  apps::ClicBed bed(cc);

  const int port = 101;  // CLIC wire ports are 8-bit
  std::vector<NodeCounters> counters(static_cast<std::size_t>(o.nodes));
  for (int n = 0; n < o.nodes; ++n) {
    bed.module(n).bind_port(port);
  }
  for (int n = 0; n < o.nodes; ++n) {
    const int dst = (n + 1) % o.nodes;
    // The stream n -> dst is seeded by the sender index so tx and rx agree
    // on the expected payloads without sharing a Buffer across shards.
    const std::uint64_t seed = 0x5eedu + static_cast<std::uint64_t>(n);
    NodeCounters* c = &counters[static_cast<std::size_t>(n)];
    NodeCounters* cd = &counters[static_cast<std::size_t>(dst)];
    bed.sim_of(n).at(0, [&bed, n, dst, c, &o, seed] {
      Drive::tx(bed.module(n), dst, port, o.messages, o.bytes, seed, c);
    });
    Drive::rx(bed.module(dst), port, o.messages, o.bytes, seed, cd);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  bed.run();
  const auto wall_end = std::chrono::steady_clock::now();

  std::uint64_t digest = kFnvOffset;
  int delivered = 0;
  int failures = 0;
  for (int n = 0; n < o.nodes; ++n) {
    const NodeCounters& c = counters[static_cast<std::size_t>(n)];
    fnv(digest, static_cast<std::uint64_t>(n));
    fnv(digest, static_cast<std::uint64_t>(c.sent_ok));
    fnv(digest, static_cast<std::uint64_t>(c.sent_failed));
    fnv(digest, static_cast<std::uint64_t>(c.received));
    fnv(digest, static_cast<std::uint64_t>(c.corrupt));
    delivered += c.received;
    failures += c.sent_failed + c.corrupt;
  }
  fnv(digest, bed.events_executed());
  fnv(digest, static_cast<std::uint64_t>(bed.now()));

  std::printf("pdes_scale nodes=%d messages=%d bytes=%lld topology=%s\n",
              o.nodes, o.messages, static_cast<long long>(o.bytes),
              o.topology);
  std::printf("  delivered %d/%d  failures %d\n", delivered,
              o.nodes * o.messages, failures);
  std::printf("  events %llu  finished_at_us %.3f\n",
              static_cast<unsigned long long>(bed.events_executed()),
              sim::to_us(bed.now()));
  std::printf("  digest %016llx\n",
              static_cast<unsigned long long>(digest));

  const double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  std::fprintf(stderr, "pdes_scale: shards=%d wall_ms=%.1f\n",
               o.shard.shards, wall_ms);
  if (o.shard.stats) {
    bench::ShardStats stats;
    stats.absorb(bed.shards);
    stats.print("pdes_scale", o.shard.shards);
  }
  return delivered == o.nodes * o.messages && failures == 0 ? 0 : 1;
}
