// Several MPI ranks per node over CLIC: co-located ranks communicate
// through CLIC's intra-node path (kernel memory, no NIC) while remote
// pairs use the wire — the multiprogramming capability of section 5.
#include <gtest/gtest.h>

#include <utility>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

// 2 nodes x 2 ranks: ranks 0,1 on node 0; ranks 2,3 on node 1.
struct ColocatedWorld {
  apps::ClicBed bed;
  std::vector<std::unique_ptr<mpi::ClicTransport>> transports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;

  explicit ColocatedWorld(int nodes = 2, int per_node = 2)
      : bed([&] {
          os::ClusterConfig cc;
          cc.nodes = nodes;
          return cc;
        }()) {
    const int ranks = nodes * per_node;
    for (int r = 0; r < ranks; ++r) {
      transports.push_back(std::make_unique<mpi::ClicTransport>(
          bed.module(r / per_node), r, ranks, per_node, /*base_port=*/200));
      comms.push_back(
          std::make_unique<mpi::Communicator>(*transports.back()));
    }
  }

  mpi::Communicator& comm(int r) {
    return *comms.at(static_cast<std::size_t>(r));
  }
};

TEST(MpiColocated, IntraNodePairUsesKernelPathNotTheWire) {
  ColocatedWorld w;
  bool ok = false;
  struct Run {
    static sim::Task tx(mpi::Communicator& c) {
      (void)co_await c.send(1, 5, net::Buffer::pattern(4000, 9));
    }
    static sim::Task rx(mpi::Communicator& c, bool* ok) {
      mpi::RecvResult r = co_await c.recv(0, 5);
      *ok = r.src == 0 && r.data.content_equals(net::Buffer::pattern(4000, 9));
    }
  };
  const auto wire_before = w.bed.cluster.link(0).frames_sent(0);
  Run::tx(w.comm(0));   // rank 0 -> rank 1, both on node 0
  Run::rx(w.comm(1), &ok);
  w.bed.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.bed.cluster.link(0).frames_sent(0), wire_before);
  EXPECT_GE(w.bed.module(0).intra_node_messages(), 1u);
}

TEST(MpiColocated, CrossNodePairStillUsesTheWire) {
  ColocatedWorld w;
  bool ok = false;
  struct Run {
    static sim::Task tx(mpi::Communicator& c) {
      (void)co_await c.send(3, 5, net::Buffer::pattern(4000, 2));
    }
    static sim::Task rx(mpi::Communicator& c, bool* ok) {
      mpi::RecvResult r = co_await c.recv(1, 5);
      *ok = r.src == 1 && r.data.content_equals(net::Buffer::pattern(4000, 2));
    }
  };
  Run::tx(w.comm(1));   // rank 1 (node 0) -> rank 3 (node 1)
  Run::rx(w.comm(3), &ok);
  w.bed.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GT(w.bed.cluster.link(0).frames_sent(0), 0u);
}

TEST(MpiColocated, SourceRanksAreDisambiguated) {
  // Both ranks of node 0 send to rank 2 with the same tag: the receiver
  // must attribute each message to the right rank, not just the node.
  ColocatedWorld w;
  int from0 = 0;
  int from1 = 0;
  struct Run {
    static sim::Task tx(mpi::Communicator& c, std::int64_t size) {
      (void)co_await c.send(2, 5, net::Buffer::zeros(size));
    }
    static sim::Task rx(mpi::Communicator& c, int* from0, int* from1) {
      for (int i = 0; i < 2; ++i) {
        mpi::RecvResult r = co_await c.recv(mpi::kAnySource, 5);
        if (r.src == 0 && r.data.size() == 1000) ++*from0;
        if (r.src == 1 && r.data.size() == 2000) ++*from1;
      }
    }
  };
  Run::tx(w.comm(0), 1000);
  Run::tx(w.comm(1), 2000);
  Run::rx(w.comm(2), &from0, &from1);
  w.bed.sim.run();
  EXPECT_EQ(from0, 1);
  EXPECT_EQ(from1, 1);
}

TEST(MpiColocated, CollectivesSpanMixedTopology) {
  ColocatedWorld w;  // 4 ranks on 2 nodes
  int ok = 0;
  struct Run {
    static sim::Task go(mpi::Communicator& c, int* ok) {
      (void)co_await c.barrier();
      // The root's payload is built outside the co_await expression on
      // purpose: GCC 12 miscompiles a conditional-operator temporary of a
      // non-trivial type inside a co_await operand (the frame-promoted
      // temporary is destroyed twice), which corrupts any refcounted
      // payload. Hoisting the conditional sidesteps the bug.
      net::Buffer contribution =
          c.rank() == 0 ? net::Buffer::pattern(8000, 1) : net::Buffer{};
      net::Buffer out = co_await c.bcast(0, std::move(contribution));
      auto gathered = co_await c.gather(3, net::Buffer::pattern(64, c.rank()));
      bool fine = out.content_equals(net::Buffer::pattern(8000, 1));
      if (c.rank() == 3) {
        for (int i = 0; i < c.size(); ++i) {
          fine = fine && gathered[static_cast<std::size_t>(i)].content_equals(
                             net::Buffer::pattern(64, i));
        }
      }
      if (fine) ++*ok;
    }
  };
  for (int r = 0; r < 4; ++r) Run::go(w.comm(r), &ok);
  w.bed.sim.run();
  EXPECT_EQ(ok, 4);
}

TEST(MpiColocated, IntraNodeLatencyBeatsWireLatency) {
  ColocatedWorld w;
  sim::SimTime intra = 0;
  sim::SimTime wire = 0;
  struct Run {
    static sim::Task ping(sim::Simulator& s, mpi::Communicator& c, int peer,
                          sim::SimTime* out) {
      const sim::SimTime t0 = s.now();
      (void)co_await c.send(peer, 6, net::Buffer::zeros(0));
      (void)co_await c.recv(peer, 6);
      *out = (s.now() - t0) / 2;
    }
    static sim::Task pong(mpi::Communicator& c, int peer) {
      (void)co_await c.recv(peer, 6);
      (void)co_await c.send(peer, 6, net::Buffer::zeros(0));
    }
  };
  Run::ping(w.bed.sim, w.comm(0), 1, &intra);  // same node
  Run::pong(w.comm(1), 0);
  w.bed.sim.run();
  Run::ping(w.bed.sim, w.comm(0), 2, &wire);  // across the switch
  Run::pong(w.comm(2), 0);
  w.bed.sim.run();
  EXPECT_LT(intra, wire);
}

}  // namespace
}  // namespace clicsim
