// JitterBuffer contract tests: drop-late semantics, deadline-miss and
// duplicate accounting, buffer-depth tracking, and the counter identity
// on_time + misses + pending == expected — first against a bare
// Simulator with hand-scheduled fragments, then end-to-end over a lossy,
// reordering CLIC link (net::FaultInjector Gilbert–Elliott loss plus
// bounded-jitter delay), where retransmission makes every fragment arrive
// eventually but not always before its frame's playout deadline.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "apps/jitter_buffer.hpp"
#include "apps/testbed.hpp"
#include "apps/workloads.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

using apps::JitterBuffer;
using Frag = JitterBuffer::Fragment;

TEST(JitterBuffer, CleanDeliveryPlaysEveryFrameOnTime) {
  sim::Simulator sim;
  JitterBuffer jb(sim);
  for (std::uint32_t f = 0; f < 3; ++f) {
    jb.expect_frame(f, 2, sim::SimTime{1000} * (f + 1),
                    sim::SimTime{1000} * (f + 1) + 500);
  }
  for (std::uint32_t f = 0; f < 3; ++f) {
    // Fragments arrive 100 ns and 200 ns after generation, out of order.
    sim.at(sim::SimTime{1000} * (f + 1) + 100, [&jb, f] {
      EXPECT_EQ(jb.on_fragment(f, 1), Frag::kAccepted);
    });
    sim.at(sim::SimTime{1000} * (f + 1) + 200, [&jb, f] {
      EXPECT_EQ(jb.on_fragment(f, 0), Frag::kCompleted);
    });
  }
  sim.run();
  EXPECT_EQ(jb.frames_expected(), 3u);
  EXPECT_EQ(jb.frames_on_time(), 3u);
  EXPECT_EQ(jb.deadline_misses(), 0u);
  EXPECT_EQ(jb.late_fragments(), 0u);
  EXPECT_EQ(jb.pending_frames(), 0u);
  EXPECT_EQ(jb.depth(), 0);
  EXPECT_EQ(jb.max_depth(), 1);
  EXPECT_EQ(jb.latency().count(), 3u);
  EXPECT_EQ(jb.latency().quantile(1.0), 200);
}

TEST(JitterBuffer, LateFragmentsAreDroppedAndCounted) {
  sim::Simulator sim;
  JitterBuffer jb(sim);
  jb.expect_frame(0, 2, 0, 1000);
  sim.at(100, [&jb] { EXPECT_EQ(jb.on_fragment(0, 0), Frag::kAccepted); });
  // Second fragment arrives after the deadline: the frame expired (miss),
  // and the straggler is dropped late.
  sim.at(1500, [&jb] { EXPECT_EQ(jb.on_fragment(0, 1), Frag::kLate); });
  sim.run();
  EXPECT_EQ(jb.deadline_misses(), 1u);
  EXPECT_EQ(jb.frames_on_time(), 0u);
  EXPECT_EQ(jb.late_fragments(), 1u);
  EXPECT_EQ(jb.latency().count(), 0u);
}

TEST(JitterBuffer, DuplicatesWithinAndAfterCompletion) {
  sim::Simulator sim;
  JitterBuffer jb(sim);
  jb.expect_frame(0, 2, 0, 1000);
  sim.at(10, [&jb] {
    EXPECT_EQ(jb.on_fragment(0, 0), Frag::kAccepted);
    EXPECT_EQ(jb.on_fragment(0, 0), Frag::kDuplicate);  // same piece twice
    EXPECT_EQ(jb.on_fragment(0, 1), Frag::kCompleted);
    EXPECT_EQ(jb.on_fragment(0, 1), Frag::kDuplicate);  // frame already whole
  });
  sim.run();
  EXPECT_EQ(jb.duplicate_fragments(), 2u);
  EXPECT_EQ(jb.frames_on_time(), 1u);
}

TEST(JitterBuffer, DepthTracksBufferedFramesAndIdentityHoldsMidRun) {
  sim::Simulator sim;
  JitterBuffer jb(sim);
  // Two frames complete early and sit buffered together; a third never
  // completes. Deadlines: 1000, 1100, 1200.
  jb.expect_frame(0, 1, 0, 1000);
  jb.expect_frame(1, 1, 0, 1100);
  jb.expect_frame(2, 2, 0, 1200);
  sim.at(50, [&jb] {
    (void)jb.on_fragment(0, 0);
    (void)jb.on_fragment(1, 0);
    (void)jb.on_fragment(2, 0);
  });
  sim.run_until(500);  // both complete, no deadline fired yet
  EXPECT_EQ(jb.depth(), 2);
  EXPECT_EQ(jb.pending_frames(), 3u);  // identity: 3 - 0 - 0
  EXPECT_EQ(jb.frames_on_time() + jb.deadline_misses() + jb.pending_frames(),
            jb.frames_expected());
  sim.run();
  EXPECT_EQ(jb.depth(), 0);
  EXPECT_EQ(jb.max_depth(), 2);
  EXPECT_EQ(jb.frames_on_time(), 2u);
  EXPECT_EQ(jb.deadline_misses(), 1u);
  EXPECT_EQ(jb.pending_frames(), 0u);
}

TEST(JitterBuffer, RejectsBadGeometry) {
  sim::Simulator sim;
  JitterBuffer jb(sim);
  EXPECT_THROW(jb.expect_frame(1, 1, 0, 10), std::logic_error);  // not dense
  EXPECT_THROW(jb.expect_frame(0, 0, 0, 10), std::invalid_argument);
  EXPECT_THROW(jb.expect_frame(0, 1, 10, 10), std::invalid_argument);
  jb.expect_frame(0, 1, 0, 10);
  EXPECT_THROW(jb.expect_frame(0, 1, 0, 10), std::logic_error);  // re-register
}

// --- End-to-end over a faulty CLIC link -------------------------------------

struct LinkTrial {
  std::uint64_t on_time = 0;
  std::uint64_t misses = 0;
  std::uint64_t late = 0;
  std::uint64_t pending = 0;
  std::uint64_t expected = 0;
};

// One sender node streams fixed-cadence frames (5 fragments of 1216 B)
// to a JitterBuffer on node 0 over paper CLIC (infinite retries): every
// fragment arrives eventually, so loss converts cleanly into deadline
// misses and late drops, never lost frames.
LinkTrial run_link_trial(bool faults, sim::SimTime deadline) {
  os::ClusterConfig cc;
  cc.nodes = 2;
  apps::ClicBed bed(cc, apps::paper_clic_config());
  if (faults) {
    for (int d = 0; d < 2; ++d) {
      for (int n = 0; n < 2; ++n) {
        auto& f = bed.cluster.link(n, 0).faults(d);
        f.set_seed(99 * 1000003u + static_cast<std::uint64_t>(2 * n + d));
        f.set_gilbert_elliott(0.05, 0.30, 0.001, 0.50);
        f.set_delay(0.05, sim::microseconds(100.0));  // reordering jitter
      }
    }
  }
  constexpr int kFrames = 24;
  constexpr int kFragments = 5;
  constexpr std::int64_t kFragBytes = 1216;
  constexpr sim::SimTime kCadence = 500'000;  // 0.5 ms
  JitterBuffer jb(bed.sim_of(0), 3);
  for (std::uint32_t k = 0; k < kFrames; ++k) {
    jb.expect_frame(k, kFragments, k * kCadence, k * kCadence + deadline);
  }
  bed.module(0).bind_port(13);
  bed.module(1).bind_port(13);

  struct Drive {
    static sim::Task tx(sim::Simulator& sim, clic::ClicModule& mod) {
      for (int k = 0; k < kFrames; ++k) {
        const sim::SimTime gen = static_cast<sim::SimTime>(k) * kCadence;
        if (gen > sim.now()) co_await sim::Delay{sim, gen - sim.now()};
        for (int f = 0; f < kFragments; ++f) {
          (void)co_await mod.send(
              13, 0, 13,
              net::Buffer::pattern(
                  kFragBytes, static_cast<std::uint64_t>(k * kFragments + f)),
              clic::SendMode::kSync);
        }
      }
    }
    static sim::Task rx(JitterBuffer& jb, clic::ClicModule& mod) {
      for (int i = 0; i < kFrames * kFragments; ++i) {
        clic::Message m = co_await mod.recv(13);
        // Fragment identity rides the payload checksum seed ordering: the
        // reliable channel delivers in order per frame, so index by count.
        (void)jb.on_fragment(static_cast<std::uint32_t>(i / kFragments),
                             static_cast<std::uint32_t>(i % kFragments));
      }
    }
  };
  Drive::rx(jb, bed.module(0));
  bed.sim_of(1).at(0, [&bed] { Drive::tx(bed.sim_of(1), bed.module(1)); });
  bed.run();

  LinkTrial t;
  t.on_time = jb.frames_on_time();
  t.misses = jb.deadline_misses();
  t.late = jb.late_fragments();
  t.pending = jb.pending_frames();
  t.expected = jb.frames_expected();
  return t;
}

TEST(JitterBufferLink, CleanLinkNeverMissesDeadlines) {
  const LinkTrial t = run_link_trial(false, sim::microseconds(400.0));
  EXPECT_EQ(t.expected, 24u);
  EXPECT_EQ(t.on_time, 24u);
  EXPECT_EQ(t.misses, 0u);
  EXPECT_EQ(t.late, 0u);
  EXPECT_EQ(t.pending, 0u);
}

TEST(JitterBufferLink, GilbertElliottLossConvertsToDeadlineMisses) {
  const LinkTrial t = run_link_trial(true, sim::microseconds(400.0));
  EXPECT_EQ(t.expected, 24u);
  // Burst loss makes some frames blow their playout budget (the RTO clock
  // is far coarser than the 400 us deadline), and every expired frame's
  // retransmitted fragments arrive late.
  EXPECT_GT(t.misses, 0u);
  EXPECT_GT(t.late, 0u);
  // Bounded failure accounting: at quiesce every frame resolved one way.
  EXPECT_EQ(t.on_time + t.misses, t.expected);
  EXPECT_EQ(t.pending, 0u);
  // Determinism: the same seeds replay the same storm.
  const LinkTrial again = run_link_trial(true, sim::microseconds(400.0));
  EXPECT_EQ(again.on_time, t.on_time);
  EXPECT_EQ(again.misses, t.misses);
  EXPECT_EQ(again.late, t.late);
}

}  // namespace
}  // namespace clicsim
