// Cross-stack smoke: every protocol stack moves one message and the
// measured one-way times order the way the paper's comparison does.
#include <gtest/gtest.h>

#include "apps/workloads.hpp"

namespace clicsim {
namespace {

TEST(StacksSmoke, OneWayTimesAreOrderedAsInThePaper) {
  apps::Scenario s;

  const auto clic = apps::clic_one_way(s, 0);
  const auto tcp = apps::tcp_one_way(s, 1);
  const auto mpi_clic = apps::mpi_clic_one_way(s, 0);
  const auto mpi_tcp = apps::mpi_tcp_one_way(s, 0);
  const auto pvm = apps::pvm_one_way(s, 0);
  const auto gamma = apps::gamma_one_way(s, 0);
  const auto via = apps::via_one_way(s, 0);

  // Everything produced a sane, positive latency.
  for (auto t : {clic, tcp, mpi_clic, mpi_tcp, pvm, gamma, via}) {
    EXPECT_GT(t, sim::microseconds(3));
    EXPECT_LT(t, sim::milliseconds(2));
  }

  // CLIC ~36 us; the paper's comparisons: GAMMA < CLIC < TCP,
  // MPI-CLIC < MPI-TCP < PVM, and polling VIA below interrupt-driven CLIC.
  EXPECT_NEAR(sim::to_us(clic), 36.0, 5.0);
  EXPECT_LT(gamma, clic);
  EXPECT_LT(clic, tcp);
  EXPECT_LT(mpi_clic, mpi_tcp);
  EXPECT_LT(mpi_tcp, pvm);
  EXPECT_LT(via, clic);
  EXPECT_LT(clic, mpi_clic);  // MPI adds matching + envelope
}

TEST(StacksSmoke, MidSizeBandwidthOrdering) {
  apps::Scenario s;
  const std::int64_t size = 64 * 1024;

  const double clic = apps::to_mbps(size, apps::clic_one_way(s, size));
  const double tcp = apps::to_mbps(size, apps::tcp_one_way(s, size));
  const double mpi_clic =
      apps::to_mbps(size, apps::mpi_clic_one_way(s, size));
  const double mpi_tcp = apps::to_mbps(size, apps::mpi_tcp_one_way(s, size));
  const double pvm = apps::to_mbps(size, apps::pvm_one_way(s, size));

  EXPECT_GT(clic, 2.0 * tcp);      // Figure 5's headline
  EXPECT_GT(mpi_clic, mpi_tcp);    // Figure 6
  EXPECT_GT(mpi_tcp, pvm);         // Figure 6
  EXPECT_GT(clic, mpi_clic * 0.8); // MPI overhead is modest at 64 KB
}

}  // namespace
}  // namespace clicsim
