// Shard-invariance and replay determinism of the open-loop traffic
// workloads: every RpcResult/StreamingResult digest (per-request latency
// rows, jitter-buffer counters, final clock) must be byte-identical at
// --shards 1/2/8 and across repeated runs — including with a seeded
// FaultPlan burst-loss campaign running under the workload. Arrival
// schedules are pure functions of (spec, seed, client) and are pinned
// here too.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/workloads.hpp"
#include "sim/time.hpp"

namespace clicsim {
namespace {

apps::Scenario scenario(int shards) {
  apps::Scenario s;
  s.cluster.shards = shards;
  return s;
}

apps::RpcConfig small_rpc(apps::ArrivalSpec::Process process,
                          std::uint64_t fault_seed = 0) {
  apps::RpcConfig cfg;
  cfg.client_nodes = 3;
  cfg.clients_per_node = 4;
  cfg.requests_per_client = 4;
  cfg.arrivals.process = process;
  cfg.arrivals.rate_per_s = 2000.0;
  cfg.arrivals.incast_period = sim::milliseconds(2.0);
  cfg.seed = 7;
  cfg.fault_seed = fault_seed;
  return cfg;
}

apps::StreamingConfig small_streaming(std::uint64_t fault_seed = 0) {
  apps::StreamingConfig cfg;
  cfg.streams = 2;
  cfg.frames_per_stream = 8;
  cfg.frame_bytes = 6000;
  cfg.fragment_bytes = 1216;
  cfg.cadence = sim::milliseconds(1.0);
  cfg.deadline = sim::milliseconds(0.8);
  cfg.seed = 7;
  cfg.fault_seed = fault_seed;
  return cfg;
}

TEST(ArrivalTimes, PureFunctionStrictlyIncreasingPerClientStreams) {
  apps::ArrivalSpec spec;
  spec.process = apps::ArrivalSpec::Process::kPoisson;
  spec.rate_per_s = 5000.0;
  const auto a = apps::arrival_times(spec, 64, 7, 3);
  const auto again = apps::arrival_times(spec, 64, 7, 3);
  EXPECT_EQ(a, again);  // replayable
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1], a[i]);
  }
  EXPECT_GE(a.front(), spec.start);
  // Distinct clients draw from independent streams.
  EXPECT_NE(a, apps::arrival_times(spec, 64, 7, 4));
  // Distinct seeds perturb every client.
  EXPECT_NE(a, apps::arrival_times(spec, 64, 8, 3));

  spec.process = apps::ArrivalSpec::Process::kBursty;
  const auto b = apps::arrival_times(spec, 64, 7, 3);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);

  // Incast is deterministic lockstep: identical for every client.
  spec.process = apps::ArrivalSpec::Process::kIncast;
  EXPECT_EQ(apps::arrival_times(spec, 8, 7, 0),
            apps::arrival_times(spec, 8, 7, 5));
}

TEST(WorkloadDeterminism, RpcClicShardInvariant) {
  const auto cfg = small_rpc(apps::ArrivalSpec::Process::kPoisson);
  const apps::RpcResult base = apps::rpc_clic(scenario(1), cfg);
  EXPECT_EQ(base.in_flight, 0u);
  EXPECT_EQ(base.responses, base.requests);
  for (const int shards : {2, 8}) {
    const apps::RpcResult r = apps::rpc_clic(scenario(shards), cfg);
    EXPECT_EQ(r.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(r.latency, base.latency) << "shards=" << shards;
    EXPECT_EQ(r.finished_at, base.finished_at) << "shards=" << shards;
  }
  // Same-process replay (pool reuse, RNG stream isolation).
  EXPECT_EQ(apps::rpc_clic(scenario(1), cfg).digest, base.digest);
}

TEST(WorkloadDeterminism, RpcClicIncastShardInvariant) {
  const auto cfg = small_rpc(apps::ArrivalSpec::Process::kIncast);
  const apps::RpcResult base = apps::rpc_clic(scenario(1), cfg);
  EXPECT_EQ(base.in_flight, 0u);
  for (const int shards : {2, 8}) {
    EXPECT_EQ(apps::rpc_clic(scenario(shards), cfg).digest, base.digest)
        << "shards=" << shards;
  }
}

TEST(WorkloadDeterminism, RpcTcpShardInvariant) {
  const auto cfg = small_rpc(apps::ArrivalSpec::Process::kBursty);
  const apps::RpcResult base = apps::rpc_tcp(scenario(1), cfg);
  EXPECT_EQ(base.in_flight, 0u);
  for (const int shards : {2, 8}) {
    EXPECT_EQ(apps::rpc_tcp(scenario(shards), cfg).digest, base.digest)
        << "shards=" << shards;
  }
}

TEST(WorkloadDeterminism, StreamingClicShardInvariant) {
  const auto cfg = small_streaming();
  const apps::StreamingResult base = apps::streaming_clic(scenario(1), cfg);
  EXPECT_EQ(base.frames, 16u);
  EXPECT_EQ(base.deadline_misses, 0u);  // clean link
  EXPECT_EQ(base.in_flight, 0u);
  for (const int shards : {2, 8}) {
    const apps::StreamingResult r = apps::streaming_clic(scenario(shards), cfg);
    EXPECT_EQ(r.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(r.latency, base.latency) << "shards=" << shards;
  }
}

TEST(WorkloadDeterminism, StreamingTcpShardInvariant) {
  const auto cfg = small_streaming();
  const apps::StreamingResult base = apps::streaming_tcp(scenario(1), cfg);
  // TCP handshake + slow-start blow the tight 0.8 ms deadline for early
  // frames; what must hold here is accounting and shard invariance.
  EXPECT_EQ(base.on_time + base.deadline_misses, base.frames);
  EXPECT_EQ(base.in_flight, 0u);
  for (const int shards : {2, 8}) {
    EXPECT_EQ(apps::streaming_tcp(scenario(shards), cfg).digest, base.digest)
        << "shards=" << shards;
  }
}

// The satellite the chaos harness cares about: a seeded burst-loss
// campaign (random carrier/port/DMA outages healed by 10 ms) replays
// byte-identically at any shard count, and paper CLIC's infinite retries
// still answer every request once the faults heal.
TEST(WorkloadDeterminism, FaultCampaignShardInvariant) {
  const auto cfg = small_rpc(apps::ArrivalSpec::Process::kPoisson, 1234);
  const apps::RpcResult base = apps::rpc_clic(scenario(1), cfg);
  EXPECT_EQ(base.in_flight, 0u);  // liveness after the storm heals
  EXPECT_EQ(base.responses, base.requests);
  for (const int shards : {2, 8}) {
    const apps::RpcResult r = apps::rpc_clic(scenario(shards), cfg);
    EXPECT_EQ(r.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(r.latency, base.latency) << "shards=" << shards;
  }
  // A different campaign seed perturbs the rows (the faults really ran).
  const auto other = small_rpc(apps::ArrivalSpec::Process::kPoisson, 4321);
  EXPECT_NE(apps::rpc_clic(scenario(1), other).digest, base.digest);
}

TEST(WorkloadDeterminism, StreamingFaultCampaignShardInvariant) {
  const auto cfg = small_streaming(1234);
  const apps::StreamingResult base = apps::streaming_clic(scenario(1), cfg);
  EXPECT_EQ(base.on_time + base.deadline_misses, base.frames);
  EXPECT_EQ(base.in_flight, 0u);
  for (const int shards : {2, 8}) {
    EXPECT_EQ(apps::streaming_clic(scenario(shards), cfg).digest, base.digest)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace clicsim
