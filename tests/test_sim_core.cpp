// Unit tests for the discrete-event engine: queue determinism, simulator
// control, coroutine primitives, timed resources, RNG and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace clicsim::sim {
namespace {

// --- EventQueue ------------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kNever);
  q.push(50, [] {});
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
}

// --- Simulator --------------------------------------------------------------------

TEST(Simulator, AdvancesTimeMonotonically) {
  Simulator sim;
  SimTime seen = -1;
  for (int i = 0; i < 10; ++i) {
    sim.after(i * 5, [&sim, &seen] {
      EXPECT_GE(sim.now(), seen);
      seen = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(seen, 45);
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.after(100, [] {});
  sim.run();
  EXPECT_THROW(sim.at(50, [] {}), std::logic_error);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.after(10, [&] { ++fired; });
  sim.after(20, [&] { ++fired; });
  sim.after(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.after(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.after(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
}

TEST(Simulator, NestedSchedulingFromEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) sim.after(1, recurse);
  };
  sim.after(1, recurse);
  sim.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), 50);
}

// --- Coroutines --------------------------------------------------------------------

TEST(Coroutines, DelayResumesAtExactTime) {
  Simulator sim;
  SimTime resumed = 0;
  auto task = [](Simulator& s, SimTime& out) -> Task {
    co_await Delay{s, 1234};
    out = s.now();
  };
  task(sim, resumed);
  sim.run();
  EXPECT_EQ(resumed, 1234);
}

TEST(Coroutines, TriggerWakesAllCurrentWaiters) {
  Simulator sim;
  Trigger trig(sim);
  int woken = 0;
  auto waiter = [](Trigger& t, int& count) -> Task {
    co_await t.wait();
    ++count;
  };
  waiter(trig, woken);
  waiter(trig, woken);
  waiter(trig, woken);
  EXPECT_EQ(trig.waiter_count(), 3u);
  sim.after(100, [&] { trig.fire(); });
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(Coroutines, TriggerDoesNotWakeLateWaiters) {
  Simulator sim;
  Trigger trig(sim);
  bool woken = false;
  sim.after(10, [&] { trig.fire(); });
  sim.after(20, [&]() {
    // Waiting after the fire: not released.
    auto waiter = [](Trigger& t, bool& w) -> Task {
      co_await t.wait();
      w = true;
    };
    waiter(trig, woken);
  });
  sim.run();
  EXPECT_FALSE(woken);
}

TEST(Coroutines, GateIsLatched) {
  Simulator sim;
  Gate gate(sim);
  int passed = 0;
  auto waiter = [](Gate& g, int& count) -> Task {
    co_await g.wait();
    ++count;
  };
  waiter(gate, passed);
  sim.after(10, [&] { gate.open(); });
  sim.run();
  EXPECT_EQ(passed, 1);
  // A waiter arriving after open passes straight through.
  waiter(gate, passed);
  sim.run();
  EXPECT_EQ(passed, 2);
}

TEST(Coroutines, MailboxDeliversInFifoOrder) {
  Simulator sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  auto consumer = [](Mailbox<int>& b, std::vector<int>& out) -> Task {
    for (int i = 0; i < 5; ++i) out.push_back(co_await b.pop());
  };
  consumer(box, got);
  for (int i = 0; i < 5; ++i) {
    sim.after(10 * (i + 1), [&box, i] { box.push(i); });
  }
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Coroutines, MailboxHandsOffDirectlyToWaiters) {
  Simulator sim;
  Mailbox<int> box(sim);
  int a = -1;
  int b = -1;
  auto consumer = [](Mailbox<int>& box, int& out) -> Task {
    out = co_await box.pop();
  };
  consumer(box, a);
  consumer(box, b);
  sim.after(5, [&] {
    box.push(1);
    box.push(2);
  });
  sim.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Coroutines, MailboxTryPop) {
  Simulator sim;
  Mailbox<int> box(sim);
  EXPECT_FALSE(box.try_pop().has_value());
  box.push(7);
  auto v = box.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(Coroutines, FutureDeliversValueSetBeforeAndAfterAwait) {
  Simulator sim;
  Future<int> early(sim);
  early.set(11);
  int got_early = 0;
  int got_late = 0;
  Future<int> late(sim);
  auto consumer = [](Future<int> f, int& out) -> Task {
    out = co_await f;
  };
  consumer(early, got_early);
  consumer(late, got_late);
  sim.after(10, [&]() mutable { late.set(22); });
  sim.run();
  EXPECT_EQ(got_early, 11);
  EXPECT_EQ(got_late, 22);
}

// --- Resources ---------------------------------------------------------------------

TEST(FifoResource, SerializesUsages) {
  Simulator sim;
  FifoResource bus(sim, "bus");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    bus.submit(100, [&completions, &sim] { completions.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(bus.busy_time(), 300);
}

TEST(FifoResource, IdleGapsDoNotAccumulate) {
  Simulator sim;
  FifoResource bus(sim, "bus");
  bus.submit(50);
  sim.run();
  sim.after(1000, [] {});
  sim.run();
  SimTime done = 0;
  bus.submit(50, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 1050);  // starts immediately, not at 50+50
  EXPECT_DOUBLE_EQ(bus.utilization(), 100.0 / 1050.0);
}

TEST(PriorityResource, HigherPriorityRunsFirst) {
  Simulator sim;
  PriorityResource cpu(sim, "cpu");
  std::vector<int> order;
  // Occupy the CPU, then queue user before interrupt work.
  cpu.submit(CpuPriority::kUser, 10, [&] { order.push_back(0); });
  cpu.submit(CpuPriority::kUser, 10, [&] { order.push_back(3); });
  cpu.submit(CpuPriority::kInterrupt, 10, [&] { order.push_back(1); });
  cpu.submit(CpuPriority::kSoftirq, 10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PriorityResource, SubmitFrontJumpsItsPriorityClass) {
  Simulator sim;
  PriorityResource cpu(sim, "cpu");
  std::vector<int> order;
  cpu.submit(CpuPriority::kSoftirq, 10, [&] {
    order.push_back(0);
    // Queued from within item 0: must run before items 1 and 2.
    cpu.submit_front(CpuPriority::kSoftirq, 10, [&] { order.push_back(9); });
  });
  cpu.submit(CpuPriority::kSoftirq, 10, [&] { order.push_back(1); });
  cpu.submit(CpuPriority::kSoftirq, 10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 9, 1, 2}));
}

TEST(PriorityResource, TracksBusyTimePerClass) {
  Simulator sim;
  PriorityResource cpu(sim, "cpu");
  cpu.submit(CpuPriority::kInterrupt, 30);
  cpu.submit(CpuPriority::kUser, 70);
  sim.run();
  EXPECT_EQ(cpu.busy_time(CpuPriority::kInterrupt), 30);
  EXPECT_EQ(cpu.busy_time(CpuPriority::kUser), 70);
  EXPECT_EQ(cpu.busy_time(), 100);
}

// --- RNG ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NamedStreamsAreIndependent) {
  Rng a(42, "alpha");
  Rng b(42, "beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(1234);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads, 3000, 200);
}

// --- Stats -------------------------------------------------------------------------

TEST(Stats, SummaryMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 1000u);
  // Coarse power-of-two bounds.
  EXPECT_LE(h.quantile_bound(0.5), 1023);
  EXPECT_GE(h.quantile_bound(0.99), 511);
}

TEST(Stats, SeriesInterpolationAndThresholds) {
  Series s("bw");
  s.add(1, 10);
  s.add(10, 100);
  s.add(100, 200);
  EXPECT_DOUBLE_EQ(s.at(1), 10);
  EXPECT_DOUBLE_EQ(s.at(55), 150);
  EXPECT_DOUBLE_EQ(s.at(1000), 200);
  EXPECT_DOUBLE_EQ(s.first_x_reaching(100), 10);
  EXPECT_DOUBLE_EQ(s.max_y(), 200);
}

}  // namespace
}  // namespace clicsim::sim
