// HdrHistogram contract tests: quantiles against a sorted-vector oracle,
// the documented precision guarantee, exact/associative/commutative
// merges — plus a regression pin on the coarse legacy log2
// Histogram::quantile_bound so the two estimators can't silently drift
// apart.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace clicsim {
namespace {

std::int64_t pow10_int(int d) {
  std::int64_t p = 1;
  for (int i = 0; i < d; ++i) p *= 10;
  return p;
}

// Exact-rank oracle: the ceil(q*n)-th smallest sample.
std::int64_t oracle_quantile(std::vector<std::int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<std::uint64_t>(values.size());
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::max<std::uint64_t>(1, std::min(n, rank));
  return values[static_cast<std::size_t>(rank - 1)];
}

std::vector<std::int64_t> mixed_samples(std::uint64_t seed, int count) {
  sim::Rng rng(seed, "hdr-test");
  std::vector<std::int64_t> v;
  v.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (i % 3) {
      case 0:  // small linear-range values
        v.push_back(rng.uniform_int(0, 2000));
        break;
      case 1:  // mid-range, log-spread
        v.push_back(static_cast<std::int64_t>(
            std::exp(rng.uniform() * 14.0)));  // up to ~1.2M
        break;
      default:  // heavy tail
        v.push_back(rng.uniform_int(1 << 20, 1 << 28));
        break;
    }
  }
  return v;
}

TEST(HdrHistogram, QuantileMatchesSortedOracleWithinPrecision) {
  for (const int digits : {1, 2, 3}) {
    const auto values = mixed_samples(7, 4001);
    sim::HdrHistogram h(digits);
    for (const auto v : values) h.add(v);
    ASSERT_EQ(h.count(), values.size());
    for (const double q : {0.001, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      const std::int64_t oracle = oracle_quantile(values, q);
      const std::int64_t got = h.quantile(q);
      // Exact-rank semantics: never below the true sample, and above it by
      // at most one bucket width (<= max(1, v / 10^digits)).
      EXPECT_GE(got, oracle) << "q=" << q << " digits=" << digits;
      EXPECT_LE(got, oracle + std::max<std::int64_t>(
                                  1, oracle / pow10_int(digits)))
          << "q=" << q << " digits=" << digits;
    }
    // q = 1 reports the recorded max exactly.
    EXPECT_EQ(h.quantile(1.0), *std::max_element(values.begin(), values.end()));
  }
}

TEST(HdrHistogram, PrecisionGuaranteeHolds) {
  for (const int digits : {1, 3, 5}) {
    sim::HdrHistogram h(digits);
    sim::Rng rng(11, "precision");
    std::vector<std::int64_t> probes;
    for (int p = 0; p < 40; ++p) {
      const std::int64_t two = std::int64_t{1} << p;
      probes.insert(probes.end(), {two - 1, two, two + 1});
    }
    for (int i = 0; i < 2000; ++i) {
      probes.push_back(rng.uniform_int(0, h.max_trackable()));
    }
    for (const auto v : probes) {
      const std::int64_t width =
          h.highest_equivalent(v) - h.lowest_equivalent(v) + 1;
      EXPECT_LE(width, std::max<std::int64_t>(1, v / pow10_int(digits)))
          << "v=" << v << " digits=" << digits;
      EXPECT_LE(h.lowest_equivalent(v), v);
      EXPECT_GE(h.highest_equivalent(v), v);
    }
  }
}

TEST(HdrHistogram, MergeIsExactAssociativeAndCommutative) {
  const auto a_vals = mixed_samples(1, 1500);
  const auto b_vals = mixed_samples(2, 900);
  const auto c_vals = mixed_samples(3, 300);
  sim::HdrHistogram a(3), b(3), c(3), all(3);
  for (const auto v : a_vals) a.add(v);
  for (const auto v : b_vals) b.add(v);
  for (const auto v : c_vals) c.add(v);
  for (const auto v : a_vals) all.add(v);
  for (const auto v : b_vals) all.add(v);
  for (const auto v : c_vals) all.add(v);

  // (a + b) + c
  sim::HdrHistogram left(3);
  left.merge(a);
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  sim::HdrHistogram bc(3);
  bc.merge(b);
  bc.merge(c);
  sim::HdrHistogram right(3);
  right.merge(a);
  right.merge(bc);
  // c + b + a
  sim::HdrHistogram rev(3);
  rev.merge(c);
  rev.merge(b);
  rev.merge(a);

  // Merging is exact: any grouping/order equals recording every value
  // into one histogram, bucket for bucket.
  EXPECT_EQ(left, all);
  EXPECT_EQ(right, all);
  EXPECT_EQ(rev, all);
  EXPECT_EQ(left.count(), a_vals.size() + b_vals.size() + c_vals.size());
  EXPECT_EQ(left.quantile(0.99), all.quantile(0.99));
  EXPECT_DOUBLE_EQ(left.mean(), all.mean());
}

TEST(HdrHistogram, MergeRejectsConfigurationMismatch) {
  sim::HdrHistogram d2(2), d3(3);
  EXPECT_THROW(d2.merge(d3), std::invalid_argument);
  sim::HdrHistogram small(3, 1 << 20), big(3, 1 << 30);
  EXPECT_THROW(small.merge(big), std::invalid_argument);
}

TEST(HdrHistogram, EdgeCases) {
  sim::HdrHistogram h(3);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.add(-5);  // clamps to zero
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.quantile(1.0), 0);

  h.add(7, 10);  // weighted add
  EXPECT_EQ(h.count(), 11u);
  EXPECT_EQ(h.quantile(0.5), 7);

  EXPECT_THROW(sim::HdrHistogram(0), std::invalid_argument);
  EXPECT_THROW(sim::HdrHistogram(6), std::invalid_argument);
  EXPECT_THROW(sim::HdrHistogram(3, 1), std::invalid_argument);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(HdrHistogram, SaturatesAboveMaxTrackable) {
  sim::HdrHistogram h(3, 1 << 16);
  h.add(1000);
  h.add((1 << 16) + 5000);
  h.add(std::int64_t{1} << 40);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.saturated(), 2u);
  EXPECT_EQ(h.max(), 1 << 16);
  EXPECT_LE(h.quantile(1.0), 1 << 16);
}

TEST(HdrHistogram, ExactMeanOfClampedValues) {
  sim::HdrHistogram h(3);
  std::int64_t sum = 0;
  const auto values = mixed_samples(5, 777);
  for (const auto v : values) {
    h.add(v);
    sum += v;
  }
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) /
                                 static_cast<double>(values.size()));
}

// The legacy power-of-two Histogram stays the cheap estimator used by
// kernel/NIC telemetry; pin its quantile_bound to the oracle envelope
// [oracle, 2 * oracle + 1] so neither estimator drifts.
TEST(LegacyHistogram, QuantileBoundEnvelopeRegression) {
  const auto values = mixed_samples(9, 3000);
  sim::Histogram h;
  for (const auto v : values) h.add(v);
  EXPECT_EQ(h.count(), values.size());
  for (const double q : {0.01, 0.5, 0.9, 0.99, 1.0}) {
    const std::int64_t oracle = oracle_quantile(values, q);
    const std::int64_t bound = h.quantile_bound(q);
    EXPECT_GE(bound, oracle) << "q=" << q;
    EXPECT_LE(bound, 2 * oracle + 1) << "q=" << q;
  }
  sim::Histogram empty;
  EXPECT_EQ(empty.quantile_bound(0.5), 0);
}

// HdrHistogram at d digits is never coarser than the legacy estimator on
// the same data (sub-buckets subdivide every power-of-two range).
TEST(LegacyHistogram, HdrIsAtLeastAsTight) {
  const auto values = mixed_samples(13, 2000);
  sim::Histogram coarse;
  sim::HdrHistogram fine(3);
  for (const auto v : values) {
    coarse.add(v);
    fine.add(v);
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_LE(fine.quantile(q), coarse.quantile_bound(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace clicsim
