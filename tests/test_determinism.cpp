// Determinism regression: the rebuilt engine (slab event heap,
// InlineFunction closures, timer wheel) must execute the same seeded
// scenario in a bit-identical (time, seq) order every run. Each trial
// rebuilds its cluster from scratch and is fingerprinted by event count,
// final clock and a checksum over protocol/NIC statistics; fingerprints
// must match exactly. Loss injection keeps the retransmit and delayed-ack
// timers churning (armed, cancelled, re-armed), and one variant piles
// explicit kernel-timer cancel/reschedule traffic on top.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/chaos.hpp"
#include "apps/testbed.hpp"
#include "net/buffer_pool.hpp"
#include "os/kernel.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

struct Fingerprint {
  std::uint64_t events;
  sim::SimTime clock;
  std::uint64_t checksum;

  bool operator==(const Fingerprint&) const = default;
};

void mix(std::uint64_t* h, std::uint64_t v) {
  *h ^= v;
  *h *= 0x100000001b3ull;  // FNV-1a step
}

// One fig5-style trial: a seeded lossy 2-node CLIC cluster ping-ponging a
// sweep of message sizes over the reliable channel. Loss forces RTO arms;
// every ack cancels and re-arms them; delayed-ack timers are cancelled by
// piggybacking — exactly the timer churn the wheel must keep deterministic.
Fingerprint clic_trial(bool churn_kernel_timers, int shards = 1) {
  os::ClusterConfig cc;
  cc.shards = shards;
  apps::ClicBed bed(cc);
  bed.cluster.set_mtu_all(1500);
  for (int l = 0; l < 2; ++l) {
    for (int d = 0; d < 2; ++d) {
      bed.cluster.link(l).faults(d).set_seed(17 + l * 2 + d);
      bed.cluster.link(l).faults(d).set_drop_probability(0.03);
    }
  }
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);

  if (churn_kernel_timers) {
    // Extra wheel traffic that never fires: timers armed and then either
    // cancelled or rescheduled (cancel + re-arm) before their deadline.
    for (int node = 0; node < 2; ++node) {
      os::Kernel& k = bed.cluster.node(node).kernel();
      for (int i = 0; i < 64; ++i) {
        const auto id = k.add_timer(sim::milliseconds(5) + i * 977,
                                    [] { ADD_FAILURE(); });
        if (i % 2 == 0) {
          k.cancel_timer(id);
        } else {
          k.cancel_timer(id);
          const auto re = k.add_timer(sim::milliseconds(7) + i * 131,
                                      [] { ADD_FAILURE(); });
          k.cancel_timer(re);
        }
      }
    }
  }

  struct Run {
    static sim::Task pingpong(clic::ClicModule& a, int* done) {
      for (const std::int64_t size :
           {std::int64_t{16}, std::int64_t{1000}, std::int64_t{16000},
            std::int64_t{120000}}) {
        auto st = co_await a.send(1, 1, 1, net::Buffer::zeros(size),
                                  clic::SendMode::kConfirmed);
        if (!st.ok) co_return;
        ++*done;
      }
    }
    static sim::Task sink(clic::ClicModule& m, int n, int* got) {
      for (int i = 0; i < n; ++i) {
        (void)co_await m.recv(1);
        ++*got;
      }
    }
  };
  int sent = 0;
  int received = 0;
  Run::pingpong(bed.module(0), &sent);
  Run::sink(bed.module(1), 4, &received);
  bed.run();  // drain completely: the final clock is the last event

  EXPECT_EQ(sent, 4);
  EXPECT_EQ(received, 4);

  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int node = 0; node < 2; ++node) {
    mix(&h, bed.module(node).messages_sent());
    mix(&h, bed.module(node).messages_received());
    hw::Nic& nic = bed.cluster.node(node).nic(0);
    mix(&h, nic.tx_frames());
    mix(&h, nic.rx_frames());
    mix(&h, nic.interrupts_fired());
    mix(&h, bed.cluster.node(node).kernel().timer_wheel().fired());
    mix(&h, bed.cluster.node(node).kernel().timer_wheel().cancelled());
  }
  return {bed.events_executed(), bed.now(), h};
}

// A lossless TCP transfer: delayed-ack and RTO timers on the wheel, socket
// coroutines, the full two-copy path.
Fingerprint tcp_trial(int shards = 1) {
  os::ClusterConfig cc;
  cc.shards = shards;
  apps::TcpBed bed(cc);
  bed.cluster.set_mtu_all(1500);

  bed.tcp[1]->listen(7);
  struct Run {
    static sim::Task server(tcpip::TcpStack& stack, std::int64_t* got) {
      tcpip::TcpSocket* s = co_await stack.accept(7);
      net::Buffer data = co_await s->recv_exact(300000);
      *got = data.size();
    }
    static sim::Task client(tcpip::TcpStack& stack, int server_node,
                            std::int64_t* pushed) {
      auto& s = stack.create_socket();
      if (!co_await s.connect(server_node, 7)) co_return;
      *pushed = co_await s.send(net::Buffer::zeros(300000));
      s.close();
    }
  };
  std::int64_t got = 0;
  std::int64_t pushed = 0;
  Run::server(*bed.tcp[1], &got);
  Run::client(*bed.tcp[0], 1, &pushed);
  bed.run();

  EXPECT_EQ(got, 300000);
  EXPECT_EQ(pushed, 300000);

  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int node = 0; node < 2; ++node) {
    hw::Nic& nic = bed.cluster.node(node).nic(0);
    mix(&h, nic.tx_frames());
    mix(&h, nic.rx_frames());
    mix(&h, nic.interrupts_fired());
    mix(&h, bed.cluster.node(node).kernel().timer_wheel().fired());
    mix(&h, bed.cluster.node(node).kernel().timer_wheel().cancelled());
  }
  return {bed.events_executed(), bed.now(), h};
}

TEST(Determinism, LossyClicScenarioIsBitIdenticalAcrossRuns) {
  const Fingerprint a = clic_trial(/*churn_kernel_timers=*/false);
  const Fingerprint b = clic_trial(/*churn_kernel_timers=*/false);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.clock, 0);
}

TEST(Determinism, TimerCancelRescheduleChurnStaysBitIdentical) {
  const Fingerprint a = clic_trial(/*churn_kernel_timers=*/true);
  const Fingerprint b = clic_trial(/*churn_kernel_timers=*/true);
  EXPECT_EQ(a, b);
}

TEST(Determinism, TcpScenarioIsBitIdenticalAcrossRuns) {
  const Fingerprint a = tcp_trial();
  const Fingerprint b = tcp_trial();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.checksum, b.checksum);
}

// Pooling regression: buffer-pool recycling is a host-side optimization
// and must be invisible to the simulation. The same trials run with the
// pool active and with the CLICSIM_NO_POOL bypass (here driven through
// set_pooling_enabled, the in-process form of the same switch) must
// produce bitwise-equal fingerprints — event counts, final clocks and
// statistics checksums.
class PoolingDeterminism : public ::testing::Test {
 protected:
  ~PoolingDeterminism() override {
    net::BufferPool::clear_pooling_override();
  }
};

TEST_F(PoolingDeterminism, LossyClicTrialIdenticalPooledAndUnpooled) {
  net::BufferPool::set_pooling_enabled(true);
  const Fingerprint pooled = clic_trial(/*churn_kernel_timers=*/false);
  net::BufferPool::set_pooling_enabled(false);
  const Fingerprint unpooled = clic_trial(/*churn_kernel_timers=*/false);
  EXPECT_EQ(pooled, unpooled);
  EXPECT_GT(pooled.events, 0u);
}

TEST_F(PoolingDeterminism, TimerChurnTrialIdenticalPooledAndUnpooled) {
  net::BufferPool::set_pooling_enabled(true);
  const Fingerprint pooled = clic_trial(/*churn_kernel_timers=*/true);
  net::BufferPool::set_pooling_enabled(false);
  const Fingerprint unpooled = clic_trial(/*churn_kernel_timers=*/true);
  EXPECT_EQ(pooled, unpooled);
}

TEST_F(PoolingDeterminism, TcpTrialIdenticalPooledAndUnpooled) {
  net::BufferPool::set_pooling_enabled(true);
  const Fingerprint pooled = tcp_trial();
  net::BufferPool::set_pooling_enabled(false);
  const Fingerprint unpooled = tcp_trial();
  EXPECT_EQ(pooled, unpooled);
}

// Intra-scenario PDES: sharding one scenario across worker threads is a
// host-side optimization and must be invisible to the simulation. The
// sharded fingerprints (event counts, final clocks, statistics checksums)
// must equal the single-shard run bit for bit. A 2-node cluster clamps
// --shards 8 to 3 (switch shard + one shard per node) — still the maximal
// cross-shard topology for this scenario.
TEST(ShardedDeterminism, ShardsLossyClicTrialBitIdentical) {
  const Fingerprint base = clic_trial(/*churn_kernel_timers=*/false, 1);
  for (const int shards : {2, 8}) {
    const Fingerprint sharded =
        clic_trial(/*churn_kernel_timers=*/false, shards);
    EXPECT_EQ(base, sharded) << "shards=" << shards;
  }
  EXPECT_GT(base.events, 0u);
}

TEST(ShardedDeterminism, ShardsTimerChurnTrialBitIdentical) {
  const Fingerprint base = clic_trial(/*churn_kernel_timers=*/true, 1);
  for (const int shards : {2, 8}) {
    const Fingerprint sharded =
        clic_trial(/*churn_kernel_timers=*/true, shards);
    EXPECT_EQ(base, sharded) << "shards=" << shards;
  }
}

TEST(ShardedDeterminism, ShardsTcpTrialBitIdentical) {
  const Fingerprint base = tcp_trial(1);
  for (const int shards : {2, 8}) {
    EXPECT_EQ(base, tcp_trial(shards)) << "shards=" << shards;
  }
}

// The chaos soak exercises everything at once — an active sim::FaultPlan
// (randomized outages, split carrier targets, the scripted heal), burst
// loss, duplication and reordering — and its one-line digest must be
// byte-identical at any shard count.
TEST(ShardedDeterminism, ShardsChaosCampaignSummaryBitIdentical) {
  apps::ChaosOptions o;
  o.seed = 11;
  o.shards = 1;
  const std::string base = apps::run_chaos_campaign(o).summary();
  for (const int shards : {2, 8}) {
    o.shards = shards;
    EXPECT_EQ(base, apps::run_chaos_campaign(o).summary())
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace clicsim
