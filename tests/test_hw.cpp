// Unit tests for the hardware substrate: buses, DMA, interrupt controller
// and the NIC model (rings, MTU, coalescing, firmware fragmentation).
#include <gtest/gtest.h>

#include "hw/buses.hpp"
#include "hw/cpu.hpp"
#include "hw/interrupt.hpp"
#include "hw/nic.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace clicsim::hw {
namespace {

struct HwRig {
  sim::Simulator sim;
  HostParams host;
  Cpu cpu{sim, host, "cpu"};
  MemoryBus mem{sim, host, "mem"};
  PciBus pci{sim, PciParams{}, "pci"};
  InterruptController intc{sim, cpu};
};

// --- Cost helpers ---------------------------------------------------------------

TEST(Cpu, CopyAndChecksumCosts) {
  HwRig rig;
  EXPECT_EQ(rig.cpu.copy_cost(350'000'000), sim::seconds(1.0));
  EXPECT_EQ(rig.cpu.checksum_cost(500'000'000), sim::seconds(1.0));
  EXPECT_EQ(rig.cpu.copy_cost(0), 0);
}

TEST(PciBus, TransactionTimeScalesWithEfficiency) {
  HwRig rig;
  const auto full = rig.pci.transaction_time(132'000'000, 1.0);
  const auto half = rig.pci.transaction_time(132'000'000, 0.5);
  EXPECT_EQ(full, sim::seconds(1.0));
  EXPECT_EQ(half, sim::seconds(2.0));
}

TEST(NicProfile, EfficiencyGrowsWithBurstSize) {
  NicProfile p;
  EXPECT_LT(p.pci_efficiency(64), p.pci_efficiency(1500));
  EXPECT_LT(p.pci_efficiency(1500), p.pci_efficiency(9000));
  EXPECT_LE(p.pci_efficiency(1 << 20), p.pci_eff_max);
}

// --- DMA -------------------------------------------------------------------------

TEST(DmaEngine, CompletionWaitsForPciAndMemory) {
  HwRig rig;
  NicProfile prof;
  DmaEngine dma(rig.sim, rig.pci, rig.mem, prof);
  sim::SimTime done = -1;
  dma.transfer(9000, 1, [&] { done = rig.sim.now(); });
  rig.sim.run();
  const auto pci_time =
      prof.dma_setup + prof.per_fragment +
      rig.pci.transaction_time(9000, prof.pci_efficiency(9000));
  const auto mem_time = sim::transfer_time(9000, rig.host.mem_bus_bytes_per_s);
  EXPECT_EQ(done, std::max(pci_time, mem_time));
  EXPECT_EQ(dma.transfers(), 1u);
  EXPECT_EQ(dma.bytes_moved(), 9000);
}

TEST(DmaEngine, OverlapCreditAdvancesCompletion) {
  HwRig rig;
  NicProfile prof;
  DmaEngine dma(rig.sim, rig.pci, rig.mem, prof);
  sim::SimTime plain = -1;
  dma.transfer(9000, 1, [&] { plain = rig.sim.now(); });
  rig.sim.run();

  HwRig rig2;
  DmaEngine dma2(rig2.sim, rig2.pci, rig2.mem, prof);
  sim::SimTime credited = -1;
  dma2.transfer(9000, 1, [&] { credited = rig2.sim.now(); },
                sim::microseconds(50));
  rig2.sim.run();
  EXPECT_EQ(credited, plain - sim::microseconds(50));
}

// --- Interrupt controller -----------------------------------------------------------

TEST(InterruptController, DispatchesAfterLatencyAtInterruptPriority) {
  HwRig rig;
  sim::SimTime handled = -1;
  rig.intc.register_handler(3, [&] {
    handled = rig.sim.now();
    rig.intc.eoi(3);
  });
  rig.intc.raise(3);
  rig.sim.run();
  EXPECT_EQ(handled, rig.host.irq_dispatch + rig.host.isr_entry);
  EXPECT_EQ(rig.intc.delivered(3), 1u);
}

TEST(InterruptController, LatchesRaisesWhileActive) {
  HwRig rig;
  int handled = 0;
  rig.intc.register_handler(3, [&] {
    ++handled;
    if (handled == 1) {
      // Two more raises while the ISR is logically active: latched into a
      // single re-delivery.
      rig.intc.raise(3);
      rig.intc.raise(3);
    }
    rig.intc.eoi(3);
  });
  rig.intc.raise(3);
  rig.sim.run();
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(rig.intc.raised(3), 3u);
  EXPECT_EQ(rig.intc.delivered(3), 2u);
}

TEST(InterruptController, UnhandledIrqThrows) {
  HwRig rig;
  EXPECT_THROW(rig.intc.raise(5), std::logic_error);
}

// --- NIC --------------------------------------------------------------------------

struct NicRig : HwRig {
  net::Link link{sim, net::LinkParams{}, "wire"};
  Nic nic{sim, NicProfile{}, pci, mem, intc,
          /*irq=*/3, net::MacAddr::node(0), "eth0"};

  struct Peer : net::FrameSink {
    std::vector<net::Frame> frames;
    void frame_arrived(net::Frame f) override {
      frames.push_back(std::move(f));
    }
  } peer;

  NicRig() {
    nic.attach_link(link, 0);
    link.attach(1, &peer);
    intc.register_handler(3, [this] { intc.eoi(3); });
  }

  Nic::TxRequest request(std::int64_t payload, net::MacAddr dst) {
    Nic::TxRequest req;
    req.frame.dst = dst;
    req.frame.src = nic.mac();
    req.frame.payload = net::Buffer::zeros(payload);
    return req;
  }
};

TEST(Nic, TransmitsPostedFrames) {
  NicRig rig;
  EXPECT_TRUE(rig.nic.post_tx(rig.request(1000, net::MacAddr::node(1))));
  rig.sim.run();
  EXPECT_EQ(rig.peer.frames.size(), 1u);
  EXPECT_EQ(rig.nic.tx_frames(), 1u);
}

TEST(Nic, RejectsOversizeWithoutFragmentation) {
  NicRig rig;
  rig.nic.set_mtu(1500);
  EXPECT_THROW(
      (void)rig.nic.post_tx(rig.request(2000, net::MacAddr::node(1))),
      std::logic_error);
}

TEST(Nic, MtuMustFitCardCapability) {
  NicRig rig;
  EXPECT_THROW(rig.nic.set_mtu(16000), std::invalid_argument);
  EXPECT_THROW(rig.nic.set_mtu(32), std::invalid_argument);
  EXPECT_NO_THROW(rig.nic.set_mtu(1500));
}

TEST(Nic, TxRingFillsUp) {
  NicRig rig;
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    if (rig.nic.post_tx(rig.request(9000, net::MacAddr::node(1)))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, rig.nic.profile().tx_ring);
  EXPECT_TRUE(rig.nic.tx_ring_full());
  rig.sim.run();
  EXPECT_FALSE(rig.nic.tx_ring_full());
}

TEST(Nic, ReceiveFiltersByDestination) {
  NicRig rig;
  net::Frame to_us;
  to_us.dst = rig.nic.mac();
  to_us.src = net::MacAddr::node(1);
  to_us.payload = net::Buffer::zeros(100);
  net::Frame not_us = to_us;
  not_us.dst = net::MacAddr::node(7);
  net::Frame bcast = to_us;
  bcast.dst = net::MacAddr::broadcast();

  rig.link.send(1, to_us);
  rig.link.send(1, not_us);
  rig.link.send(1, bcast);
  rig.sim.run();
  EXPECT_EQ(rig.nic.rx_frames(), 2u);  // unicast to us + broadcast
}

TEST(Nic, DropsBadFcsAndOversize) {
  NicRig rig;
  rig.nic.set_mtu(1500);
  net::Frame bad;
  bad.dst = rig.nic.mac();
  bad.src = net::MacAddr::node(1);
  bad.payload = net::Buffer::zeros(100);
  bad.fcs_ok = false;
  rig.link.send(1, bad);

  net::Frame jumbo;
  jumbo.dst = rig.nic.mac();
  jumbo.src = net::MacAddr::node(1);
  jumbo.payload = net::Buffer::zeros(8000);  // sender used jumbo, we didn't
  rig.link.send(1, jumbo);
  rig.sim.run();

  EXPECT_EQ(rig.nic.rx_frames(), 0u);
  EXPECT_EQ(rig.nic.rx_bad_fcs(), 1u);
  EXPECT_EQ(rig.nic.rx_oversize_drops(), 1u);
}

TEST(Nic, CoalescingBatchesInterruptsUnderLoad) {
  NicRig rig;
  rig.nic.set_coalescing(sim::microseconds(100), 8);
  // 16 back-to-back frames: the first fires immediately (idle), the rest
  // batch in groups of up to 8.
  for (int i = 0; i < 16; ++i) {
    net::Frame f;
    f.dst = rig.nic.mac();
    f.src = net::MacAddr::node(1);
    f.payload = net::Buffer::zeros(1000);
    rig.link.send(1, f);
  }
  rig.sim.run();
  EXPECT_EQ(rig.nic.rx_frames(), 16u);
  EXPECT_LE(rig.nic.interrupts_fired(), 4u);
  EXPECT_GE(rig.nic.interrupts_fired(), 2u);
}

TEST(Nic, CoalescingDisabledMeansInterruptPerFrame) {
  NicRig rig;
  rig.nic.set_coalescing(0, 1);
  for (int i = 0; i < 5; ++i) {
    net::Frame f;
    f.dst = rig.nic.mac();
    f.src = net::MacAddr::node(1);
    f.payload = net::Buffer::zeros(500);
    rig.link.send(1, f);
  }
  rig.sim.run();
  EXPECT_EQ(rig.nic.interrupts_fired(), 5u);
}

TEST(Nic, RxRingOverflowDrops) {
  NicRig rig;
  // Never drain the queue (handler doesn't pop), flood well past the ring.
  for (int i = 0; i < 100; ++i) {
    net::Frame f;
    f.dst = rig.nic.mac();
    f.src = net::MacAddr::node(1);
    f.payload = net::Buffer::zeros(200);
    rig.link.send(1, f);
  }
  rig.sim.run();
  EXPECT_GT(rig.nic.rx_ring_drops(), 0u);
  EXPECT_EQ(rig.nic.rx_frames() + rig.nic.rx_ring_drops(), 100u);
}

TEST(Nic, PioTransmitBypassesDma) {
  NicRig rig;
  net::Frame f;
  f.dst = net::MacAddr::node(1);
  f.src = rig.nic.mac();
  f.payload = net::Buffer::zeros(500);
  rig.nic.post_tx_pio(f);
  rig.sim.run();
  EXPECT_EQ(rig.peer.frames.size(), 1u);
  EXPECT_EQ(rig.pci.transactions(), 0u);  // caller pays PIO separately
}

// --- Firmware fragmentation ---------------------------------------------------------

struct FragRig {
  sim::Simulator sim;
  HostParams host;
  Cpu cpu_a{sim, host, "cpu_a"}, cpu_b{sim, host, "cpu_b"};
  MemoryBus mem_a{sim, host, "mem_a"}, mem_b{sim, host, "mem_b"};
  PciBus pci_a{sim, PciParams{}, "pci_a"}, pci_b{sim, PciParams{}, "pci_b"};
  InterruptController intc_a{sim, cpu_a}, intc_b{sim, cpu_b};
  net::Link link{sim, net::LinkParams{}, "wire"};
  Nic a{sim, NicProfile::ga620(), pci_a, mem_a, intc_a, 3,
        net::MacAddr::node(0), "a"};
  Nic b;

  explicit FragRig(NicProfile b_profile = NicProfile::ga620())
      : b(sim, b_profile, pci_b, mem_b, intc_b, 3, net::MacAddr::node(1),
          "b") {
    a.attach_link(link, 0);
    b.attach_link(link, 1);
    a.set_mtu(1500);
    b.set_mtu(1500);
    intc_a.register_handler(3, [this] { intc_a.eoi(3); });
    intc_b.register_handler(3, [this] { intc_b.eoi(3); });
  }
};

TEST(NicFragmentation, SplitsAndReassemblesLargePackets) {
  FragRig rig;
  Nic::TxRequest req;
  req.frame.dst = rig.b.mac();
  req.frame.src = rig.a.mac();
  req.frame.payload = net::Buffer::pattern(60000, 5);
  ASSERT_TRUE(rig.a.post_tx(std::move(req)));
  rig.sim.run();
  // Many wire frames, ONE host-visible packet at the receiver.
  EXPECT_GT(rig.a.tx_frames(), 30u);
  EXPECT_EQ(rig.b.rx_frames(), 1u);
  auto got = rig.b.rx_pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), 60000);
  EXPECT_TRUE(got->payload.content_equals(net::Buffer::pattern(60000, 5)));
}

TEST(NicFragmentation, PeerWithoutFeatureDropsFragments) {
  NicProfile dumb;  // default profile: no on-NIC fragmentation
  dumb.on_nic_fragmentation = false;
  FragRig rig(dumb);
  Nic::TxRequest req;
  req.frame.dst = rig.b.mac();
  req.frame.src = rig.a.mac();
  req.frame.payload = net::Buffer::zeros(20000);
  ASSERT_TRUE(rig.a.post_tx(std::move(req)));
  rig.sim.run();
  EXPECT_EQ(rig.b.rx_frames(), 0u);
  EXPECT_GT(rig.b.rx_frag_drops(), 0u);
}

}  // namespace
}  // namespace clicsim::hw
