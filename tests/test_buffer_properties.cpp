// Property-style sweeps over Buffer/BufferChain invariants: arbitrary
// (seeded) slice decompositions must reassemble to the original content,
// checksums must be stable under slicing, and size-only semantics must be
// preserved through chains.
#include <gtest/gtest.h>

#include "net/buffer.hpp"
#include "sim/random.hpp"

namespace clicsim::net {
namespace {

class BufferSlicing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferSlicing, RandomDecompositionReassemblesExactly) {
  sim::Rng rng(GetParam(), "slicing");
  const auto size = rng.uniform_int(1, 200000);
  Buffer whole = Buffer::pattern(size, GetParam());

  BufferChain chain;
  std::int64_t offset = 0;
  while (offset < size) {
    const auto len = std::min<std::int64_t>(
        rng.uniform_int(1, 9000), size - offset);
    chain.append(whole.slice(offset, len));
    offset += len;
  }
  Buffer back = chain.flatten();
  EXPECT_EQ(back.size(), whole.size());
  EXPECT_TRUE(back.content_equals(whole));
  EXPECT_EQ(back.checksum(), whole.checksum());
}

TEST_P(BufferSlicing, NestedSlicesEqualDirectSlices) {
  sim::Rng rng(GetParam(), "nested");
  Buffer whole = Buffer::pattern(50000, GetParam() * 3 + 1);
  const auto a = rng.uniform_int(0, 20000);
  const auto alen = rng.uniform_int(1, 20000);
  const auto b = rng.uniform_int(0, alen - 1);
  const auto blen = rng.uniform_int(1, alen - b);
  Buffer nested = whole.slice(a, alen).slice(b, blen);
  Buffer direct = whole.slice(a + b, blen);
  EXPECT_TRUE(nested.content_equals(direct));
  EXPECT_EQ(nested.checksum(), direct.checksum());
}

TEST_P(BufferSlicing, SizeOnlyChainsStaySizeOnly) {
  sim::Rng rng(GetParam(), "size-only");
  BufferChain chain;
  std::int64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    const auto n = rng.uniform_int(0, 5000);
    chain.append(Buffer::zeros(n));
    total += n;
  }
  Buffer flat = chain.flatten();
  EXPECT_EQ(flat.size(), total);
  EXPECT_FALSE(total > 0 && flat.has_data());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferSlicing,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(BufferChecksum, DiffersOnSingleByteFlip) {
  Buffer a = Buffer::pattern(1000, 9);
  std::vector<std::byte> bytes(a.data().begin(), a.data().end());
  bytes[500] ^= std::byte{0x01};
  Buffer b = Buffer::bytes(std::move(bytes));
  EXPECT_NE(a.checksum(), b.checksum());
  EXPECT_FALSE(a.content_equals(b));
}

TEST(BufferChecksum, SizeOnlyTokenEncodesLength) {
  EXPECT_NE(Buffer::zeros(10).checksum(), Buffer::zeros(11).checksum());
  EXPECT_EQ(Buffer::zeros(10).checksum(), Buffer::zeros(10).checksum());
}

}  // namespace
}  // namespace clicsim::net
