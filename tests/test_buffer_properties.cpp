// Property-style sweeps over Buffer/BufferChain invariants: arbitrary
// (seeded) slice decompositions must reassemble to the original content,
// checksums must be stable under slicing, and size-only semantics must be
// preserved through chains. The PooledBuffer suites re-run the same
// invariants with a BufferPool recycling storage underneath, pinning the
// pool's safety contract: a recycled block is never aliased by a live
// handle, and contents survive any slice/release/reacquire interleaving.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/buffer.hpp"
#include "net/buffer_pool.hpp"
#include "sim/random.hpp"

namespace clicsim::net {
namespace {

class BufferSlicing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferSlicing, RandomDecompositionReassemblesExactly) {
  sim::Rng rng(GetParam(), "slicing");
  const auto size = rng.uniform_int(1, 200000);
  Buffer whole = Buffer::pattern(size, GetParam());

  BufferChain chain;
  std::int64_t offset = 0;
  while (offset < size) {
    const auto len = std::min<std::int64_t>(
        rng.uniform_int(1, 9000), size - offset);
    chain.append(whole.slice(offset, len));
    offset += len;
  }
  Buffer back = chain.flatten();
  EXPECT_EQ(back.size(), whole.size());
  EXPECT_TRUE(back.content_equals(whole));
  EXPECT_EQ(back.checksum(), whole.checksum());
}

TEST_P(BufferSlicing, NestedSlicesEqualDirectSlices) {
  sim::Rng rng(GetParam(), "nested");
  Buffer whole = Buffer::pattern(50000, GetParam() * 3 + 1);
  const auto a = rng.uniform_int(0, 20000);
  const auto alen = rng.uniform_int(1, 20000);
  const auto b = rng.uniform_int(0, alen - 1);
  const auto blen = rng.uniform_int(1, alen - b);
  Buffer nested = whole.slice(a, alen).slice(b, blen);
  Buffer direct = whole.slice(a + b, blen);
  EXPECT_TRUE(nested.content_equals(direct));
  EXPECT_EQ(nested.checksum(), direct.checksum());
}

TEST_P(BufferSlicing, SizeOnlyChainsStaySizeOnly) {
  sim::Rng rng(GetParam(), "size-only");
  BufferChain chain;
  std::int64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    const auto n = rng.uniform_int(0, 5000);
    chain.append(Buffer::zeros(n));
    total += n;
  }
  Buffer flat = chain.flatten();
  EXPECT_EQ(flat.size(), total);
  EXPECT_FALSE(total > 0 && flat.has_data());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferSlicing,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(BufferChecksum, DiffersOnSingleByteFlip) {
  Buffer a = Buffer::pattern(1000, 9);
  std::vector<std::byte> bytes(a.data().begin(), a.data().end());
  bytes[500] ^= std::byte{0x01};
  Buffer b = Buffer::bytes(std::move(bytes));
  EXPECT_NE(a.checksum(), b.checksum());
  EXPECT_FALSE(a.content_equals(b));
}

TEST(BufferChecksum, SizeOnlyTokenEncodesLength) {
  EXPECT_NE(Buffer::zeros(10).checksum(), Buffer::zeros(11).checksum());
  EXPECT_EQ(Buffer::zeros(10).checksum(), Buffer::zeros(10).checksum());
}

// ---------------------------------------------------------------------------
// Pool-invariant properties: the same Buffer semantics must hold while a
// BufferPool recycles storage blocks underneath.

class PooledBuffer : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BufferPool pool_;
  BufferPool::Scope scope_{&pool_};
};

// A block parked in a freelist may be handed out again — but never while
// any live Buffer (including slices) still references it. Storage handed
// to a fresh acquisition must be disjoint from every live identity.
TEST_P(PooledBuffer, RecycledBlocksAreNeverAliasedByLiveHandles) {
  sim::Rng rng(GetParam(), "alias");
  std::vector<Buffer> live;
  std::set<const void*> live_ids;
  for (int round = 0; round < 200; ++round) {
    const auto size = rng.uniform_int(1, 4096);
    Buffer b = Buffer::pattern(size, GetParam() * 1000 + round);
    ASSERT_TRUE(b.has_data());
    // The new block must not alias any storage a live handle still sees.
    EXPECT_EQ(live_ids.count(b.storage_identity()), 0u)
        << "round " << round << ": pool handed out a block that a live "
        << "Buffer still references";
    if (rng.uniform_int(0, 1) == 0) {
      // Keep it (sometimes only as a slice — a slice must pin the block
      // exactly like the whole buffer does).
      Buffer kept = rng.uniform_int(0, 1) == 0
                        ? b
                        : b.slice(0, std::max<std::int64_t>(1, size / 2));
      live_ids.insert(kept.storage_identity());
      live.push_back(std::move(kept));
    }
    // Drop a random live handle now and then so its block re-enters the
    // freelist and future rounds can observe legal recycling.
    if (!live.empty() && rng.uniform_int(0, 2) == 0) {
      const auto victim =
          static_cast<std::size_t>(rng.uniform_int(0, live.size() - 1));
      live_ids.erase(live[victim].storage_identity());
      live.erase(live.begin() +
                 static_cast<std::vector<Buffer>::difference_type>(victim));
    }
  }
}

// A slice pins its parent's storage: release the parent, let the pool
// churn through recycled blocks of the same size class, and the slice's
// contents, checksum and content_equals() must be unaffected.
TEST_P(PooledBuffer, SliceSurvivesParentReleaseAndBlockReacquisition) {
  sim::Rng rng(GetParam(), "survive");
  const auto size = rng.uniform_int(256, 50000);
  Buffer whole = Buffer::pattern(size, GetParam() * 7 + 3);
  const auto off = rng.uniform_int(0, size / 2);
  const auto len = rng.uniform_int(1, size - off);
  Buffer part = whole.slice(off, len);
  const std::uint64_t whole_sum = whole.checksum();
  const std::uint64_t expect_sum = part.checksum();
  const std::vector<std::byte> expect_bytes(part.data().begin(),
                                            part.data().end());
  const void* pinned = part.storage_identity();

  whole = Buffer{};  // release the parent; the slice must keep the block

  // Churn: acquire and release many same-sized buffers. None may reuse the
  // pinned block, and the slice must stay byte-identical throughout.
  for (int i = 0; i < 64; ++i) {
    Buffer churn = Buffer::pattern(size, 0xdead0000u + i);
    EXPECT_NE(churn.storage_identity(), pinned);
  }
  EXPECT_EQ(part.checksum(), expect_sum);
  EXPECT_TRUE(part.content_equals(Buffer::bytes(expect_bytes)));

  // Now release the slice too: the block may legally come back recycled —
  // and when it does, pattern() must fully overwrite the stale contents.
  part = Buffer{};
  Buffer again = Buffer::pattern(size, GetParam() * 7 + 3);
  EXPECT_EQ(again.checksum(), whole_sum)
      << "recycled block served stale or partially-initialized contents";
  EXPECT_EQ(again.slice(off, len).checksum(), expect_sum);
}

// The fragmentation/reassembly property test, under an active pool with
// interleaved churn forcing block recycling between fragment operations.
TEST_P(PooledBuffer, FragmentationReassemblyKeepsIntegrityUnderRecycling) {
  sim::Rng rng(GetParam(), "frag-pooled");
  const auto size = rng.uniform_int(1, 120000);
  Buffer whole = Buffer::pattern(size, GetParam());
  const std::uint64_t expect_sum = whole.checksum();

  BufferChain chain;
  std::int64_t offset = 0;
  while (offset < size) {
    const auto len =
        std::min<std::int64_t>(rng.uniform_int(1, 9000), size - offset);
    chain.append(whole.slice(offset, len));
    offset += len;
    // Interleaved churn: transient pooled buffers allocated and released
    // between fragments, recycling blocks while the chain holds slices.
    Buffer::pattern(rng.uniform_int(1, 9000), 0xabc + offset);
  }
  whole = Buffer{};  // only the chain's slices keep the storage alive
  Buffer back = chain.flatten();
  EXPECT_EQ(back.size(), size);
  EXPECT_EQ(back.checksum(), expect_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PooledBuffer,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

// Recycling sanity without randomness: release the only handle, acquire a
// same-class block, and observe actual reuse (this is what makes the
// aliasing tests above meaningful — recycling really happens).
TEST(PooledBufferReuse, ReleasedBlockIsActuallyRecycled) {
  BufferPool pool;
  BufferPool::Scope scope(&pool);
  if (!BufferPool::pooling_enabled()) GTEST_SKIP() << "pooling bypassed";
  Buffer a = Buffer::pattern(1000, 1);
  const void* id = a.storage_identity();
  a = Buffer{};
  Buffer b = Buffer::pattern(1000, 2);
  EXPECT_EQ(b.storage_identity(), id);
  EXPECT_GE(pool.stats().data_reuses, 1u);
}

}  // namespace
}  // namespace clicsim::net
