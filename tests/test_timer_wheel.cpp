// Unit tests for sim::TimerWheel — cancellable hierarchical timers with
// seed-identical determinism: exact deadlines across cascade levels, O(1)
// cancel that destroys the closure, FIFO tie-break among same-tick timers,
// correct interleaving with plain simulator events, and a randomized
// differential check against a naive reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"

namespace clicsim::sim {
namespace {

TEST(TimerWheel, FiresAtExactDeadline) {
  Simulator sim;
  TimerWheel wheel(sim);
  SimTime fired_at = -1;
  wheel.schedule(1234, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 1234);
  EXPECT_EQ(wheel.fired(), 1u);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, FiresAcrossEveryLevelBoundary) {
  // Delays straddling successive 64^k windows exercise cascading from each
  // level back down to level 0.
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<SimTime, SimTime>> observed;  // {want, got}
  observed.reserve(16);  // callbacks keep pointers into the vector
  for (const SimTime delay :
       {SimTime{1}, SimTime{63}, SimTime{64}, SimTime{65}, SimTime{4095},
        SimTime{4096}, SimTime{262144}, SimTime{16777216},
        SimTime{1073741824}, SimTime{68719476736}}) {
    observed.emplace_back(delay, -1);
    auto* slot = &observed.back();
    wheel.schedule(delay, [&sim, slot] { slot->second = sim.now(); });
  }
  sim.run();
  for (const auto& [want, got] : observed) EXPECT_EQ(got, want);
  EXPECT_EQ(wheel.fired(), observed.size());
}

TEST(TimerWheel, CancelPreventsFiringAndDestroysClosure) {
  Simulator sim;
  TimerWheel wheel(sim);
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  bool fired = false;
  const auto id = wheel.schedule(1000, [&fired, token = std::move(token)] {
    fired = true;
  });
  EXPECT_TRUE(wheel.pending(id));
  EXPECT_TRUE(wheel.cancel(id));
  // The closure (and its captures) die at cancel time, not at the deadline.
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(wheel.pending(id));
  EXPECT_FALSE(wheel.cancel(id));  // double-cancel reports failure
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.fired(), 0u);
  EXPECT_EQ(wheel.cancelled(), 1u);
}

TEST(TimerWheel, CancelAfterFireReturnsFalse) {
  Simulator sim;
  TimerWheel wheel(sim);
  const auto id = wheel.schedule(10, [] {});
  sim.run();
  EXPECT_FALSE(wheel.pending(id));
  EXPECT_FALSE(wheel.cancel(id));
}

TEST(TimerWheel, RescheduleAfterCancelUsesNewDeadline) {
  Simulator sim;
  TimerWheel wheel(sim);
  SimTime fired_at = -1;
  const auto id = wheel.schedule(500, [&] { fired_at = sim.now(); });
  EXPECT_TRUE(wheel.cancel(id));
  wheel.schedule(900, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 900);
  EXPECT_EQ(wheel.fired(), 1u);
  EXPECT_EQ(wheel.cancelled(), 1u);
}

TEST(TimerWheel, SameTickTimersFireInArmOrder) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    wheel.schedule(777, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(TimerWheel, SameTickInterleavesWithPlainEventsByArmOrder) {
  // The determinism contract: a wheel timer ranks among same-instant plain
  // events exactly as if it had been Simulator::at-scheduled when armed.
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<int> order;
  wheel.schedule(100, [&] { order.push_back(0); });
  sim.at(100, [&] { order.push_back(1); });
  wheel.schedule(100, [&] { order.push_back(2); });
  sim.at(100, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimerWheel, CancelledHeadStillRunsFollowersInOrder) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<int> order;
  const auto head = wheel.schedule(50, [&] { order.push_back(0); });
  wheel.schedule(50, [&] { order.push_back(1); });
  sim.at(50, [&] { order.push_back(2); });
  wheel.schedule(50, [&] { order.push_back(3); });
  EXPECT_TRUE(wheel.cancel(head));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, CallbackMayArmAndCancelTimers) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<SimTime> fires;
  TimerWheel::TimerId victim = TimerWheel::kInvalidTimer;
  wheel.schedule(10, [&] {
    fires.push_back(sim.now());
    victim = wheel.schedule(100, [&] { fires.push_back(sim.now()); });
    wheel.schedule(20, [&] {
      fires.push_back(sim.now());
      EXPECT_TRUE(wheel.cancel(victim));
    });
  });
  sim.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 30}));
  EXPECT_EQ(wheel.size(), 0u);
}

// Differential check: random arms/cancels from inside the simulation must
// fire in exactly the order a naive "every timer is its own event" model
// produces — i.e. sorted by (deadline, arm sequence), cancelled ones gone.
TEST(TimerWheel, RandomizedDifferentialAgainstReference) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::mt19937_64 rng(0xC11Cu);

  struct Ref {
    std::uint64_t arm_order;
    SimTime deadline;
    int tag;
  };
  std::vector<Ref> reference;
  std::vector<int> fired_tags;
  std::vector<std::pair<TimerWheel::TimerId, int>> live;
  std::uint64_t arm_counter = 0;
  int next_tag = 0;

  // Driver events at randomized times arm and cancel timers while the
  // wheel is running, mixing short, line-crossing and cascade-level delays.
  for (int burst = 0; burst < 40; ++burst) {
    const SimTime when = burst * 137;
    sim.at(when, [&, when] {
      for (int i = 0; i < 6; ++i) {
        static constexpr SimTime kSpans[] = {3, 64, 1000, 5000, 70000};
        const SimTime delay =
            static_cast<SimTime>(rng() % kSpans[rng() % 5]) + 1;
        const int tag = next_tag++;
        reference.push_back(Ref{arm_counter++, when + delay, tag});
        live.emplace_back(
            wheel.schedule(delay, [&fired_tags, tag] {
              fired_tags.push_back(tag);
            }),
            tag);
      }
      // Cancel a random surviving timer about half the time.
      if (!live.empty() && rng() % 2 == 0) {
        const std::size_t pick = rng() % live.size();
        if (wheel.cancel(live[pick].first)) {
          const int tag = live[pick].second;
          std::erase_if(reference, [tag](const Ref& r) { return r.tag == tag; });
        }
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    });
  }
  sim.run();

  std::sort(reference.begin(), reference.end(), [](const Ref& a, const Ref& b) {
    return a.deadline != b.deadline ? a.deadline < b.deadline
                                    : a.arm_order < b.arm_order;
  });
  std::vector<int> want;
  want.reserve(reference.size());
  for (const Ref& r : reference) want.push_back(r.tag);
  EXPECT_EQ(fired_tags, want);
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.fired(), want.size());
}

}  // namespace
}  // namespace clicsim::sim
