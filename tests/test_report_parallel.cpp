// Reporting and parallel-sweep utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/parallel.hpp"
#include "apps/report.hpp"
#include "apps/testbed.hpp"
#include "apps/workloads.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

TEST(Report, ClusterSnapshotContainsAllNodes) {
  os::ClusterConfig cc;
  cc.nodes = 3;
  apps::ClicBed bed(cc);
  bed.module(0).bind_port(1);
  bed.module(2).bind_port(1);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(1, 2, 1, net::Buffer::zeros(50000));
    }
    static sim::Task rx(clic::ClicModule& m) { (void)co_await m.recv(1); }
  };
  Run::tx(bed.module(0));
  Run::rx(bed.module(2));
  bed.sim.run();

  std::ostringstream os;
  apps::report_cluster(os, bed.cluster);
  const std::string s = os.str();
  EXPECT_NE(s.find("cluster: 3 nodes"), std::string::npos);
  EXPECT_NE(s.find("tx-frm"), std::string::npos);
  // Three node rows.
  EXPECT_NE(s.find("\n     0"), std::string::npos);
  EXPECT_NE(s.find("\n     2"), std::string::npos);
}

TEST(Report, ClicSnapshotShowsChannels) {
  apps::ClicBed bed;
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(1, 1, 1, net::Buffer::zeros(20000));
    }
    static sim::Task rx(clic::ClicModule& m) { (void)co_await m.recv(1); }
  };
  Run::tx(bed.module(0));
  Run::rx(bed.module(1));
  bed.sim.run();

  std::ostringstream os;
  apps::report_clic(os, bed.module(1));
  const std::string s = os.str();
  EXPECT_NE(s.find("clic@node1"), std::string::npos);
  EXPECT_NE(s.find("channel -> node0"), std::string::npos);
  EXPECT_NE(s.find("retransmits 0"), std::string::npos);
}

TEST(Parallel, MapMatchesSequentialResults) {
  const std::vector<std::int64_t> inputs{1, 2, 3, 5, 8, 13, 21};
  auto fn = [](std::int64_t n) { return sim::SimTime{n * n}; };
  const auto seq = apps::parallel_map(inputs, fn, 1);
  const auto par = apps::parallel_map(inputs, fn, 4);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq[3], 25);
}

TEST(Parallel, EmptyInputIsFine) {
  EXPECT_TRUE(
      apps::parallel_map({}, [](std::int64_t) { return sim::SimTime{1}; })
          .empty());
}

TEST(Parallel, ConcurrentSimulationsAreIndependent) {
  // The real property: whole simulations running on several threads give
  // bit-identical results to sequential execution.
  apps::Scenario s;
  s.pingpong_reps = 2;
  const std::vector<std::int64_t> sizes{0, 1000, 30000};
  auto fn = [&](std::int64_t n) { return apps::clic_one_way(s, n); };
  const auto seq = apps::parallel_map(sizes, fn, 1);
  const auto par = apps::parallel_map(sizes, fn, 3);
  EXPECT_EQ(seq, par);
}

TEST(Parallel, SeriesParallelEqualsSeriesSequential) {
  apps::Scenario s;
  s.pingpong_reps = 2;
  const auto sizes = apps::sweep_sizes(64, 65536, 2);
  auto fn = [&](std::int64_t n) { return apps::clic_one_way(s, n); };
  const auto a = apps::bandwidth_series("x", sizes, fn);
  const auto b = apps::bandwidth_series_parallel("x", sizes, fn, 4);
  ASSERT_EQ(a.points().size(), b.points().size());
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].y, b.points()[i].y);
  }
}

}  // namespace
}  // namespace clicsim
