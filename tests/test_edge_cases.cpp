// Boundary conditions across the stack: empty and huge messages, exact-MTU
// payloads, tiny windows, and back-to-back message floods.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

// Payloads straddling the fragmentation boundary: chunk = mtu - 12.
class ClicBoundarySizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ClicBoundarySizes, ExactBoundaryPayloadsSurvive) {
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  const std::int64_t size = GetParam();
  net::Buffer payload =
      size > 0 ? net::Buffer::pattern(size, 42) : net::Buffer::zeros(0);
  struct Run {
    static sim::Task tx(clic::ClicModule& m, net::Buffer d) {
      (void)co_await m.send(1, 1, 1, std::move(d));
    }
    static sim::Task rx(clic::ClicModule& m, net::Buffer expect, bool* ok) {
      clic::Message got = co_await m.recv(1);
      *ok = got.data.size() == expect.size() &&
            got.data.content_equals(expect);
    }
  };
  bool ok = false;
  Run::tx(bed.module(0), payload);
  Run::rx(bed.module(1), payload, &ok);
  bed.sim.run();
  EXPECT_TRUE(ok) << "size " << size;
}

// chunk = 1500 - 12 = 1488; test every off-by-one around 1x and 2x.
INSTANTIATE_TEST_SUITE_P(
    AroundMtu, ClicBoundarySizes,
    ::testing::Values(std::int64_t{0}, std::int64_t{1}, std::int64_t{1487},
                      std::int64_t{1488}, std::int64_t{1489},
                      std::int64_t{2975}, std::int64_t{2976},
                      std::int64_t{2977}));

TEST(EdgeCases, TenMegabyteMessageAtStandardMtu) {
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  const std::int64_t size = 10 * 1024 * 1024;
  struct Run {
    static sim::Task tx(clic::ClicModule& m, std::int64_t n) {
      (void)co_await m.send(1, 1, 1, net::Buffer::zeros(n));
    }
    static sim::Task rx(clic::ClicModule& m, std::int64_t n, bool* ok) {
      clic::Message got = co_await m.recv(1);
      *ok = got.data.size() == n;
    }
  };
  bool ok = false;
  Run::tx(bed.module(0), size);
  Run::rx(bed.module(1), size, &ok);
  bed.sim.run();
  EXPECT_TRUE(ok);
  // ~7050 packets at chunk 1488.
  auto* ch = bed.module(1).channel_to(0);
  ASSERT_NE(ch, nullptr);
  EXPECT_GE(ch->rx_next(), 7000u);
}

TEST(EdgeCases, TinyChannelWindowStillMakesProgress) {
  clic::Config cfg;
  cfg.window_packets = 1;  // stop-and-wait degenerate case
  apps::ClicBed bed({}, cfg);
  bed.cluster.set_mtu_all(1500);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(1, 1, 1, net::Buffer::pattern(30000, 1));
    }
    static sim::Task rx(clic::ClicModule& m, bool* ok) {
      clic::Message got = co_await m.recv(1);
      *ok = got.data.content_equals(net::Buffer::pattern(30000, 1));
    }
  };
  bool ok = false;
  Run::tx(bed.module(0));
  Run::rx(bed.module(1), &ok);
  bed.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(ok);
}

TEST(EdgeCases, FloodOfTinyMessagesArrivesInOrder) {
  apps::ClicBed bed;
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  constexpr int kCount = 200;
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      for (int i = 0; i < kCount; ++i) {
        (void)co_await m.send(1, 1, 1, net::Buffer::zeros(8),
                              clic::SendMode::kAsync);
      }
    }
    static sim::Task rx(clic::ClicModule& m, int* in_order) {
      for (int i = 0; i < kCount; ++i) {
        clic::Message got = co_await m.recv(1);
        (void)got;
        ++*in_order;
      }
    }
  };
  int got = 0;
  Run::tx(bed.module(0));
  Run::rx(bed.module(1), &got);
  bed.sim.run();
  EXPECT_EQ(got, kCount);
}

TEST(EdgeCases, TcpOneByteStream) {
  apps::TcpBed bed;
  bed.tcp[1]->listen(5000);
  struct Run {
    static sim::Task tx(tcpip::TcpStack& t) {
      auto& s = t.create_socket();
      (void)co_await s.connect(1, 5000);
      for (int i = 0; i < 20; ++i) {
        (void)co_await s.send(net::Buffer::zeros(1));
      }
      s.close();
    }
    static sim::Task rx(tcpip::TcpStack& t, std::int64_t* total) {
      auto* s = co_await t.accept(5000);
      for (;;) {
        net::Buffer b = co_await s->recv(64);
        if (b.size() == 0) co_return;
        *total += b.size();
      }
    }
  };
  std::int64_t total = 0;
  Run::tx(*bed.tcp[0]);
  Run::rx(*bed.tcp[1], &total);
  bed.sim.run_until(sim::seconds(2));
  EXPECT_EQ(total, 20);
}

TEST(EdgeCases, JumboExactlyAtMtuNine_thousand) {
  apps::ClicBed bed;  // MTU 9000
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  // chunk = 9000 - 12 = 8988: one full packet, then one byte over.
  for (const std::int64_t size : {std::int64_t{8988}, std::int64_t{8989}}) {
    struct Run {
      static sim::Task tx(clic::ClicModule& m, std::int64_t n) {
        (void)co_await m.send(1, 1, 1, net::Buffer::pattern(n, n));
      }
      static sim::Task rx(clic::ClicModule& m, std::int64_t n, bool* ok) {
        clic::Message got = co_await m.recv(1);
        *ok = got.data.content_equals(net::Buffer::pattern(n, n));
      }
    };
    bool ok = false;
    Run::tx(bed.module(0), size);
    Run::rx(bed.module(1), size, &ok);
    bed.sim.run();
    EXPECT_TRUE(ok) << size;
  }
}

}  // namespace
}  // namespace clicsim
