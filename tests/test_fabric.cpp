// Multi-tier fabric tests: TopologyPlan validation, forwarding across
// trunk hops (learning, flood containment, per-port tail drops), the
// copy-on-write flood payload invariant, shard placement (leaf-local
// traffic never crosses a shard boundary), sharded-vs-single determinism
// on every topology, NIC-offloaded collectives, and fault orchestration
// against a spine uplink.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/chaos.hpp"
#include "apps/testbed.hpp"
#include "hw/nic_collective.hpp"
#include "net/buffer_pool.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "os/cluster.hpp"
#include "os/topology.hpp"
#include "sim/fault_plan.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace clicsim {
namespace {

// --- TopologyPlan: derivation and validation ---------------------------------

TEST(TopologyPlan, FatTreeDerivesFullBisection) {
  const auto plan = os::TopologyPlan::resolve(os::TopologySpec::fat_tree(),
                                              /*nodes=*/16,
                                              /*nics_per_node=*/1);
  EXPECT_EQ(plan.leaves(), 2);
  EXPECT_EQ(plan.spines(), 8);  // one uplink per downlink
  EXPECT_EQ(plan.switches(), 10);
  EXPECT_EQ(plan.trunks().size(), 16u);  // every leaf to every spine
  EXPECT_EQ(plan.switch_name(0), "leaf0");
  EXPECT_EQ(plan.switch_name(2), "spine0");
  // Nodes map to leaves contiguously.
  EXPECT_EQ(plan.leaf_of_node(0), 0);
  EXPECT_EQ(plan.leaf_of_node(7), 0);
  EXPECT_EQ(plan.leaf_of_node(8), 1);
  EXPECT_EQ(plan.nodes_on(0), 8);
  EXPECT_EQ(plan.nodes_on(1), 8);
}

TEST(TopologyPlan, PortBudgetViolationNamesTheSwitch) {
  // 8 nodes on 2 leaves: each leaf needs 4 downlinks + 1 trunk = 5 ports.
  os::TopologySpec spec = os::TopologySpec::leaf_spine(2, 1);
  spec.max_switch_ports = 4;
  try {
    (void)os::TopologyPlan::resolve(spec, 8, 1);
    FAIL() << "port budget violation not detected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("max_switch_ports"), std::string::npos) << what;
    EXPECT_NE(what.find("leaf0"), std::string::npos) << what;
  }
  spec.max_switch_ports = 5;
  EXPECT_NO_THROW((void)os::TopologyPlan::resolve(spec, 8, 1));
}

TEST(TopologyPlan, ShapeConstraintsRejected) {
  // A one-switch ring cannot close a cycle.
  EXPECT_THROW(
      (void)os::TopologyPlan::resolve(os::TopologySpec::switch_ring(1), 4, 1),
      std::invalid_argument);
  // The fat-tree derives its spine count; an explicit mismatch is an error.
  os::TopologySpec bad_fat{os::TopologyKind::kFatTree2, 2, 3, 0};
  EXPECT_THROW((void)os::TopologyPlan::resolve(bad_fat, 8, 1),
               std::invalid_argument);
  // The single star takes no shape counts.
  os::TopologySpec bad_star;
  bad_star.leaves = 2;
  EXPECT_THROW((void)os::TopologyPlan::resolve(bad_star, 4, 1),
               std::invalid_argument);
  // Every node-bearing switch must own at least one node.
  EXPECT_THROW(
      (void)os::TopologyPlan::resolve(os::TopologySpec::leaf_spine(5, 1), 4, 1),
      std::invalid_argument);
}

TEST(TopologyPlan, FloodTreePrunesExactlyTheNonTreeTrunks) {
  // Ring of 4: the wrap edge closes a cycle, so exactly one trunk is off
  // the flood tree.
  const auto ring =
      os::TopologyPlan::resolve(os::TopologySpec::switch_ring(4), 8, 1);
  int ring_off = 0;
  for (const os::TrunkEdge& e : ring.trunks()) ring_off += e.on_flood_tree ? 0 : 1;
  EXPECT_EQ(ring.trunks().size(), 4u);
  EXPECT_EQ(ring_off, 1);

  // Leaf-spine with 2 spines: floods ride the spine-0 star; every trunk to
  // another spine is pruned.
  const auto ls =
      os::TopologyPlan::resolve(os::TopologySpec::leaf_spine(2, 2), 8, 1);
  for (const os::TrunkEdge& e : ls.trunks()) {
    EXPECT_EQ(e.on_flood_tree, e.b == ls.leaves()) << "trunk to switch " << e.b;
  }
}

// --- Forwarding across trunk hops --------------------------------------------

struct Catcher : net::FrameSink {
  std::vector<net::Frame> frames;
  void frame_arrived(net::Frame f) override { frames.push_back(std::move(f)); }
};

net::Frame make_frame(net::MacAddr dst, net::MacAddr src, net::Buffer payload) {
  net::Frame f;
  f.dst = dst;
  f.src = src;
  f.payload = std::move(payload);
  return f;
}

// The port of `sw` that carries the trunk to `other`, or -1.
int trunk_port(const os::TopologyPlan& plan, int sw, int other) {
  for (const os::TrunkEdge& e : plan.trunks()) {
    if (e.a == sw && e.b == other) return e.a_port;
    if (e.b == sw && e.a == other) return e.b_port;
  }
  return -1;
}

TEST(Fabric, UnicastCrossesTrunksWithoutFloodingAndLearnsAcrossHops) {
  os::ClusterConfig cc;
  cc.nodes = 4;
  cc.topology = os::TopologySpec::leaf_spine(2, 1);
  sim::Simulator sim;
  os::Cluster cluster(sim, cc);
  const int spine = cluster.topology().leaves();  // switch id 2

  std::vector<Catcher> hosts(static_cast<std::size_t>(cc.nodes));
  for (int n = 0; n < cc.nodes; ++n) {
    cluster.link(n).attach(0, &hosts[static_cast<std::size_t>(n)]);
  }

  // A MAC no switch was pre-loaded with transits leaf0 -> spine -> leaf1;
  // each hop must learn it on its ingress port, and the pre-learned static
  // route for the destination keeps the fabric flood-free end to end.
  const net::MacAddr foreign = net::MacAddr::node(0xBEEF00);
  cluster.link(0).send(
      0, make_frame(os::Cluster::mac_of(3), foreign, net::Buffer::pattern(600, 1)));
  sim.run();

  EXPECT_EQ(hosts[3].frames.size(), 1u);
  EXPECT_EQ(hosts[1].frames.size(), 0u);
  EXPECT_EQ(hosts[2].frames.size(), 0u);
  for (int s = 0; s < cluster.switch_count(); ++s) {
    EXPECT_EQ(cluster.switch_at(s).flooded(), 0u) << "switch " << s;
    EXPECT_EQ(cluster.switch_at(s).forwarded(), 1u) << "switch " << s;
  }
  EXPECT_EQ(cluster.switch_at(spine).learned_port(foreign),
            trunk_port(cluster.topology(), spine, 0));
  EXPECT_EQ(cluster.switch_at(1).learned_port(foreign),
            trunk_port(cluster.topology(), 1, spine));

  // The learned reverse path carries the reply back without a flood.
  cluster.link(3).send(
      0, make_frame(foreign, os::Cluster::mac_of(3), net::Buffer::pattern(600, 2)));
  sim.run();
  EXPECT_EQ(hosts[0].frames.size(), 1u);
  for (int s = 0; s < cluster.switch_count(); ++s) {
    EXPECT_EQ(cluster.switch_at(s).flooded(), 0u) << "switch " << s;
  }
}

// A broadcast must reach every other node exactly once on shapes whose raw
// wiring has cycles (fat-tree, ring) — the pruned flood tree both contains
// the flood and keeps it loop-free.
TEST(Fabric, BroadcastReachesEveryNodeExactlyOnce) {
  for (const auto& spec : {os::TopologySpec::fat_tree(),
                           os::TopologySpec::switch_ring(3)}) {
    os::ClusterConfig cc;
    cc.nodes = 8;
    cc.topology = spec;
    sim::Simulator sim;
    os::Cluster cluster(sim, cc);

    std::vector<Catcher> hosts(static_cast<std::size_t>(cc.nodes));
    for (int n = 0; n < cc.nodes; ++n) {
      cluster.link(n).attach(0, &hosts[static_cast<std::size_t>(n)]);
    }
    const net::Buffer payload = net::Buffer::pattern(800, 7);
    cluster.link(0).send(
        0, make_frame(net::MacAddr::broadcast(), os::Cluster::mac_of(0),
                      payload));
    // A flood loop would never quiesce; bound the run and count copies.
    sim.run_until(sim::seconds(1.0));
    EXPECT_EQ(hosts[0].frames.size(), 0u);  // never back out the ingress
    for (int n = 1; n < cc.nodes; ++n) {
      ASSERT_EQ(hosts[n].frames.size(), 1u)
          << "node " << n << " copies, topology kind "
          << static_cast<int>(spec.kind);
      EXPECT_TRUE(hosts[n].frames[0].payload.content_equals(payload));
    }
  }
}

TEST(Fabric, UplinkCongestionTailDropsChargeTheUplinkPort) {
  os::ClusterConfig cc;
  cc.nodes = 8;
  cc.topology = os::TopologySpec::leaf_spine(2, 1);
  cc.sw.output_queue_frames = 1;
  sim::Simulator sim;
  os::Cluster cluster(sim, cc);
  const int spine = cluster.topology().leaves();
  const int uplink = trunk_port(cluster.topology(), 0, spine);
  ASSERT_GE(uplink, 0);

  std::vector<Catcher> hosts(static_cast<std::size_t>(cc.nodes));
  for (int n = 0; n < cc.nodes; ++n) {
    cluster.link(n).attach(0, &hosts[static_cast<std::size_t>(n)]);
  }
  // All four leaf0 nodes blast node 4 at once: four ingress streams merge
  // into one uplink with a one-frame queue.
  const int per_node = 6;
  for (int n = 0; n < 4; ++n) {
    for (int k = 0; k < per_node; ++k) {
      cluster.link(n).send(0, make_frame(os::Cluster::mac_of(4),
                                         os::Cluster::mac_of(n),
                                         net::Buffer::zeros(1400)));
    }
  }
  sim.run();

  net::Switch& leaf0 = cluster.switch_at(0);
  EXPECT_GT(leaf0.dropped_on(uplink), 0u);
  // Every tail drop happened at the congested uplink, not the downlinks.
  EXPECT_EQ(leaf0.dropped(), leaf0.dropped_on(uplink));
  for (int p = 0; p < uplink; ++p) {
    EXPECT_EQ(leaf0.dropped_on(p), 0u) << "downlink port " << p;
  }
  EXPECT_EQ(hosts[4].frames.size(),
            static_cast<std::size_t>(4 * per_node) - leaf0.dropped());
}

// --- Copy-on-write flood payloads -------------------------------------------

// A flood whose fan-out crosses shard boundaries converts the payload to
// shared-immutable storage exactly once; every copy (local and cross-shard)
// aliases it, so the deep-copy count is O(1) per frame, not O(ports).
TEST(Fabric, FloodAcrossShardsMintsOneSharedPayload) {
  os::ClusterConfig cc;
  cc.nodes = 8;
  cc.topology = os::TopologySpec::fat_tree();

  sim::Simulator home;
  sim::ShardGroup group(home, 4);
  os::Cluster cluster(group, cc);

  std::vector<Catcher> hosts(static_cast<std::size_t>(cc.nodes));
  for (int n = 0; n < cc.nodes; ++n) {
    cluster.link(n).attach(0, &hosts[static_cast<std::size_t>(n)]);
  }
  const net::Buffer payload = net::Buffer::pattern(2000, 11);
  cluster.sim_of_node(0).at(0, [&cluster, payload] {
    cluster.link(0).send(
        0, make_frame(net::MacAddr::broadcast(), os::Cluster::mac_of(0),
                      payload));
  });

  const std::uint64_t mints0 = net::detail::shared_data_mints();
  const std::uint64_t copies0 = net::detail::unpooled_data_copies();
  group.run_until(sim::seconds(1.0));
  EXPECT_EQ(net::detail::shared_data_mints() - mints0, 1u);
  EXPECT_EQ(net::detail::unpooled_data_copies() - copies0, 0u);

  for (int n = 1; n < cc.nodes; ++n) {
    ASSERT_EQ(hosts[n].frames.size(), 1u) << "node " << n;
    EXPECT_TRUE(hosts[n].frames[0].payload.content_equals(payload));
  }

  // Control: the same flood on one shard has no boundary to cross and
  // needs no shared conversion at all.
  sim::Simulator serial;
  os::Cluster flat(serial, cc);
  std::vector<Catcher> flat_hosts(static_cast<std::size_t>(cc.nodes));
  for (int n = 0; n < cc.nodes; ++n) {
    flat.link(n).attach(0, &flat_hosts[static_cast<std::size_t>(n)]);
  }
  const std::uint64_t mints1 = net::detail::shared_data_mints();
  flat.link(0).send(
      0, make_frame(net::MacAddr::broadcast(), os::Cluster::mac_of(0),
                    payload));
  serial.run_until(sim::seconds(1.0));
  EXPECT_EQ(net::detail::shared_data_mints() - mints1, 0u);
  for (int n = 1; n < cc.nodes; ++n) {
    ASSERT_EQ(flat_hosts[n].frames.size(), 1u) << "node " << n;
  }
}

// Cross-shard *unicast* rides the same shared-immutable machinery: the
// data payload is minted once at the first shard boundary and aliased
// through every further hop — the frame path performs zero unpooled
// payload deep-copies.
TEST(Fabric, CrossShardUnicastPerformsZeroPayloadDeepCopies) {
  os::ClusterConfig cc;
  cc.nodes = 2;
  cc.shards = 3;  // switch on shard 0; node 0 -> shard 1, node 1 -> shard 2
  apps::ClicBed bed(cc);
  bed.module(0).bind_port(7);
  bed.module(1).bind_port(7);

  struct Run {
    static sim::Task tx(clic::ClicModule& m, int* ok) {
      auto st = co_await m.send(7, 1, 7, net::Buffer::pattern(600, 5),
                                clic::SendMode::kConfirmed);
      if (st.ok) ++*ok;
    }
    static sim::Task rx(clic::ClicModule& m, int* got) {
      clic::Message msg = co_await m.recv(7);
      if (msg.data.size() == 600) ++*got;
    }
  };
  int ok = 0;
  int got = 0;
  const std::uint64_t mints0 = net::detail::shared_data_mints();
  const std::uint64_t copies0 = net::detail::unpooled_data_copies();
  bed.sim_of(0).at(0, [&bed, &ok] { Run::tx(bed.module(0), &ok); });
  Run::rx(bed.module(1), &got);
  bed.run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(got, 1);
  // The one data frame crossed two boundaries (node 0 -> switch shard,
  // switch shard -> node 1): one shared mint at the first, pass-through at
  // the second. The returning ack carries no data block, so it mints
  // nothing — and nothing anywhere deep-copies.
  EXPECT_EQ(net::detail::shared_data_mints() - mints0, 1u);
  EXPECT_EQ(net::detail::unpooled_data_copies() - copies0, 0u);
}

// --- Shard placement ----------------------------------------------------------

// Leaf switches co-reside with their node groups, so traffic that stays
// behind one leaf never posts a cross-shard mailbox event.
TEST(Fabric, LeafLocalTrafficCrossesNoShardBoundary) {
  os::ClusterConfig cc;
  cc.nodes = 8;
  cc.shards = 3;
  cc.topology = os::TopologySpec::leaf_spine(2, 1);
  apps::ClicBed bed(cc);
  for (int n = 0; n < cc.nodes; ++n) bed.module(n).bind_port(7);

  struct Run {
    static sim::Task tx(clic::ClicModule& m, int dst, int* ok) {
      auto st = co_await m.send(7, dst, 7, net::Buffer::pattern(9000, 3),
                                clic::SendMode::kConfirmed);
      if (st.ok) ++*ok;
    }
    static sim::Task rx(clic::ClicModule& m, int* got) {
      (void)co_await m.recv(7);
      ++*got;
    }
  };

  // Node pairs behind leaf0 (nodes 0-3) and leaf1 (nodes 4-7).
  std::vector<int> ok(static_cast<std::size_t>(cc.nodes), 0);
  std::vector<int> got(static_cast<std::size_t>(cc.nodes), 0);
  for (const auto& [src, dst] : {std::pair{0, 1}, std::pair{4, 5}}) {
    bed.sim_of(src).at(0, [&bed, src, dst, &ok] {
      Run::tx(bed.module(src), dst, &ok[static_cast<std::size_t>(src)]);
    });
    Run::rx(bed.module(dst), &got[static_cast<std::size_t>(dst)]);
  }
  bed.run();
  EXPECT_EQ(ok[0] + ok[4], 2);
  EXPECT_EQ(got[1] + got[5], 2);
  EXPECT_EQ(bed.shards.cross_shard_posts(), 0u);

  // Sanity of the meter itself: one cross-leaf message must cross shards
  // (leaf0 on shard 1, spine on shard 0, leaf1 on shard 2).
  bed.sim_of(0).at(bed.now() + sim::microseconds(1.0), [&bed, &ok] {
    Run::tx(bed.module(0), 4, &ok[0]);
  });
  Run::rx(bed.module(4), &got[4]);
  bed.run();
  EXPECT_GT(bed.shards.cross_shard_posts(), 0u);
}

// --- Sharded determinism on every topology -----------------------------------

TEST(Fabric, ShardedRunMatchesSingleShardOnEveryTopology) {
  struct Result {
    std::uint64_t events = 0;
    sim::SimTime clock = 0;
    int ok = 0;
    int got = 0;
    bool operator==(const Result&) const = default;
  };
  auto trial = [](const os::TopologySpec& spec, int shards) {
    os::ClusterConfig cc;
    cc.nodes = 12;
    cc.shards = shards;
    cc.topology = spec;
    apps::ClicBed bed(cc);
    for (int n = 0; n < cc.nodes; ++n) bed.module(n).bind_port(9);

    struct Run {
      static sim::Task tx(clic::ClicModule& m, int dst, int* ok) {
        auto st = co_await m.send(9, dst, 9, net::Buffer::zeros(20000),
                                  clic::SendMode::kConfirmed);
        if (st.ok) ++*ok;
      }
      static sim::Task rx(clic::ClicModule& m, int* got) {
        (void)co_await m.recv(9);
        ++*got;
      }
    };
    std::vector<int> ok(static_cast<std::size_t>(cc.nodes), 0);
    std::vector<int> got(static_cast<std::size_t>(cc.nodes), 0);
    for (int n = 0; n < cc.nodes; ++n) {
      const int dst = (n + 1) % cc.nodes;
      bed.sim_of(n).at(0, [&bed, n, dst, &ok] {
        Run::tx(bed.module(n), dst, &ok[static_cast<std::size_t>(n)]);
      });
      Run::rx(bed.module(dst), &got[static_cast<std::size_t>(dst)]);
    }
    bed.run();
    Result r{bed.events_executed(), bed.now(), 0, 0};
    for (int n = 0; n < cc.nodes; ++n) {
      r.ok += ok[static_cast<std::size_t>(n)];
      r.got += got[static_cast<std::size_t>(n)];
    }
    return r;
  };

  for (const auto& spec : {os::TopologySpec::leaf_spine(3, 2),
                           os::TopologySpec::switch_ring(3),
                           os::TopologySpec::fat_tree(3)}) {
    const Result base = trial(spec, 1);
    EXPECT_EQ(base.ok, 12);
    EXPECT_EQ(base.got, 12);
    for (const int shards : {2, 5}) {
      EXPECT_EQ(base, trial(spec, shards))
          << "topology kind " << static_cast<int>(spec.kind) << " shards "
          << shards;
    }
  }
}

// --- NIC-offloaded collectives -----------------------------------------------

TEST(Fabric, NicCollectivesCompleteAndCarryPayloadAcrossShardCounts) {
  struct Result {
    std::uint64_t events = 0;
    sim::SimTime clock = 0;
    bool operator==(const Result&) const = default;
  };
  const net::Buffer root_data = net::Buffer::pattern(512, 99);

  auto trial = [&root_data](int shards) {
    os::ClusterConfig cc;
    cc.nodes = 8;
    cc.shards = shards;
    cc.topology = os::TopologySpec::fat_tree();
    apps::MpiClicBed bed(cc, {}, {}, /*nic_collectives=*/true);

    struct Run {
      static sim::Task go(mpi::Communicator& c, int rank,
                          const net::Buffer* root_data, int* complete) {
        (void)co_await c.barrier();
        net::Buffer in = rank == 2 ? *root_data : net::Buffer();
        net::Buffer b = co_await c.bcast(2, std::move(in));
        net::Buffer sum =
            co_await c.allreduce_sum(net::Buffer::pattern(256, rank));
        if (b.content_equals(*root_data) && sum.size() == 256) ++*complete;
      }
    };
    std::vector<int> complete(8, 0);
    for (int r = 0; r < 8; ++r) {
      bed.sim_of(r).at(0, [&bed, r, &root_data, &complete] {
        Run::go(bed.comm(r), r, &root_data,
                &complete[static_cast<std::size_t>(r)]);
      });
    }
    bed.run();
    int done = 0;
    for (const int c : complete) done += c;
    EXPECT_EQ(done, 8) << "shards " << shards;
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(bed.engines[static_cast<std::size_t>(r)]->ops_completed(), 3u)
          << "rank " << r << " shards " << shards;
    }
    // Interior hops ran on the cards: the engines sent tree frames.
    EXPECT_GT(bed.engines[0]->frames_sent(), 0u);
    return Result{bed.bed.events_executed(), bed.now()};
  };

  const Result base = trial(1);
  EXPECT_EQ(base, trial(3));
}

// --- Fault orchestration across tiers ----------------------------------------

TEST(FabricChaos, ClusterTargetsCoverTrunksAndEverySwitchPort) {
  os::ClusterConfig cc;
  cc.nodes = 4;
  cc.topology = os::TopologySpec::leaf_spine(2, 1);
  apps::ClicBed bed(cc);
  sim::FaultPlan plan(bed.sim, 1);
  apps::register_cluster_targets(plan, bed.cluster);
  // 4 node carriers + 4 NIC stalls + 2 trunk carriers
  // + switch ports (leaf0: 3, leaf1: 3, spine0: 2).
  EXPECT_EQ(plan.target_count(), 18);
  std::vector<std::string> names;
  for (int t = 0; t < plan.target_count(); ++t) {
    names.push_back(plan.target_name(t));
  }
  auto has = [&names](const std::string& name) {
    for (const std::string& n : names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("carrier trunk.leaf0.spine0"));
  EXPECT_TRUE(has("carrier trunk.leaf1.spine0"));
  EXPECT_TRUE(has("swport leaf0.2"));
  EXPECT_TRUE(has("swport spine0.1"));
}

// Killing one spine uplink mid-transfer: sends routed over the dead trunk
// must retransmit through the outage and complete once it heals; sends on
// the surviving spine are unaffected; nothing hangs.
TEST(FabricChaos, SpineUplinkOutageRetransmitsToCompletion) {
  os::ClusterConfig cc;
  cc.nodes = 8;
  cc.topology = os::TopologySpec::leaf_spine(2, 2);
  apps::ClicBed bed(cc);
  for (int n = 0; n < cc.nodes; ++n) bed.module(n).bind_port(5);

  sim::FaultPlan plan(bed.sim, 1);
  apps::register_cluster_targets(plan, bed.cluster);
  int uplink_target = -1;
  for (int t = 0; t < plan.target_count(); ++t) {
    if (plan.target_name(t) == "carrier trunk.leaf0.spine0") uplink_target = t;
  }
  ASSERT_GE(uplink_target, 0);
  // Static routes send node 4 (even) via spine0, node 5 (odd) via spine1.
  plan.fail_between(uplink_target, 0, sim::milliseconds(5.0));

  struct Run {
    static sim::Task tx(clic::ClicModule& m, int dst, int* resolved, int* ok) {
      auto st = co_await m.send(5, dst, 5, net::Buffer::pattern(12000, 4),
                                clic::SendMode::kConfirmed);
      ++*resolved;
      if (st.ok) ++*ok;
    }
    static sim::Task rx(clic::ClicModule& m, int* got) {
      (void)co_await m.recv(5);
      ++*got;
    }
  };
  int resolved = 0;
  int ok = 0;
  int got = 0;
  Run::tx(bed.module(0), 4, &resolved, &ok);  // through the dead uplink
  Run::tx(bed.module(1), 5, &resolved, &ok);  // through the live spine
  Run::rx(bed.module(4), &got);
  Run::rx(bed.module(5), &got);
  bed.run_until(sim::seconds(10.0));

  EXPECT_EQ(resolved, 2);  // bounded failure: nothing hangs
  EXPECT_EQ(ok, 2);        // 5 ms outage is inside the retry budget
  EXPECT_EQ(got, 2);
  int trunk = -1;
  for (int t = 0; t < bed.cluster.trunk_count(); ++t) {
    if (bed.cluster.trunk_link(t).name() == "trunk.leaf0.spine0") trunk = t;
  }
  ASSERT_GE(trunk, 0);
  EXPECT_GT(bed.cluster.trunk_link(trunk).carrier_drops(), 0u);
  EXPECT_TRUE(bed.cluster.trunk_link(trunk).carrier_up());  // healed
  EXPECT_FALSE(bed.pending());  // quiesced, no runaway retransmission
}

// A randomized multi-tier campaign (trunk carriers and spine ports in the
// target set) satisfies the liveness contract and replays byte-identically
// at any shard count.
TEST(FabricChaos, MultiTierCampaignIsShardInvariant) {
  apps::ChaosOptions o;
  o.seed = 5;
  o.nodes = 8;
  o.topology = os::TopologySpec::fat_tree();
  o.messages = 16;
  const apps::ChaosReport serial = apps::run_chaos_campaign(o);
  EXPECT_TRUE(serial.liveness_ok()) << serial.summary();
  EXPECT_EQ(serial.resolved, serial.messages);
  EXPECT_GT(serial.fault_events, 0u);

  o.shards = 2;
  const apps::ChaosReport sharded = apps::run_chaos_campaign(o);
  EXPECT_EQ(serial.summary(), sharded.summary());
}

}  // namespace
}  // namespace clicsim
