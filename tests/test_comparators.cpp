// Tests for the comparator stacks: PVM (pack/unpack + daemon routing),
// GAMMA (active ports, lightweight syscalls, optional reliability) and VIA
// (user-level descriptor queues, polling, RDMA, unreliable delivery).
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "apps/workloads.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

// --- PVM ------------------------------------------------------------------------

struct PvmWorld {
  apps::PvmBed bed;
  bool ready = false;

  explicit PvmWorld(int nodes, pvm::Config cfg = {})
      : bed([&] {
          os::ClusterConfig cc;
          cc.nodes = nodes;
          return cc;
        }(), tcpip::Config{}, cfg) {
    connect(*this);
    bed.sim().run();
    EXPECT_TRUE(ready);
  }

  static sim::Task connect(PvmWorld& w) { w.ready = co_await w.bed.connect(); }
};

TEST(Pvm, PackSendRecvUnpackRoundTrip) {
  PvmWorld w(2);
  net::Buffer payload = net::Buffer::pattern(5000, 4);
  struct Run {
    static sim::Task tx(pvm::PvmTask& t, net::Buffer d) {
      t.initsend();
      (void)co_await t.pack(std::move(d));
      (void)co_await t.send(1, 33);
    }
    static sim::Task rx(pvm::PvmTask& t, net::Buffer expect, bool* ok) {
      pvm::PvmMessage m = co_await t.recv(0, 33);
      net::Buffer got = co_await t.unpack(m, expect.size());
      *ok = m.tag == 33 && got.content_equals(expect);
    }
  };
  bool ok = false;
  Run::tx(w.bed.task(0), payload);
  Run::rx(w.bed.task(1), payload, &ok);
  w.bed.sim().run();
  EXPECT_TRUE(ok);
}

TEST(Pvm, MultiplePacksConcatenate) {
  PvmWorld w(2);
  struct Run {
    static sim::Task tx(pvm::PvmTask& t) {
      t.initsend();
      (void)co_await t.pack(net::Buffer::pattern(100, 1));
      (void)co_await t.pack(net::Buffer::pattern(200, 2));
      (void)co_await t.send(1, 1);
    }
    static sim::Task rx(pvm::PvmTask& t, bool* ok) {
      pvm::PvmMessage m = co_await t.recv(-1, -1);
      net::Buffer a = co_await t.unpack(m, 100);
      net::Buffer b = co_await t.unpack(m, 200);
      *ok = a.content_equals(net::Buffer::pattern(100, 1)) &&
            b.content_equals(net::Buffer::pattern(200, 2));
    }
  };
  bool ok = false;
  Run::tx(w.bed.task(0));
  Run::rx(w.bed.task(1), &ok);
  w.bed.sim().run();
  EXPECT_TRUE(ok);
}

TEST(Pvm, DirectRouteIsFasterThanDaemonRoute) {
  apps::Scenario daemon;
  apps::Scenario direct;
  direct.pvm.direct_route = true;
  const auto t_daemon = apps::pvm_one_way(daemon, 10000);
  const auto t_direct = apps::pvm_one_way(direct, 10000);
  EXPECT_LT(t_direct, t_daemon);
  // Two daemon hops + relay copies per direction.
  EXPECT_GT(t_daemon - t_direct, sim::microseconds(30));
}

// --- GAMMA ----------------------------------------------------------------------

TEST(Gamma, ActivePortHandlerRunsOnDelivery) {
  apps::GammaBed bed;
  int handled = 0;
  std::int64_t bytes = 0;
  bed.module(1).register_port(3, [&](gamma::Message m) {
    ++handled;
    bytes = m.data.size();
  });
  struct Run {
    static sim::Task go(gamma::GammaModule& m) {
      (void)co_await m.send(1, 3, net::Buffer::zeros(7000));
    }
  };
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(bytes, 7000);
}

TEST(Gamma, MessageIntegrityAcrossFragments) {
  apps::GammaBed bed;
  bed.cluster.set_mtu_all(1500);
  bed.module(1).open_mailbox_port(3);
  net::Buffer payload = net::Buffer::pattern(30000, 5);
  struct Run {
    static sim::Task tx(gamma::GammaModule& m, net::Buffer d) {
      (void)co_await m.send(1, 3, std::move(d));
    }
    static sim::Task rx(gamma::GammaModule& m, net::Buffer expect,
                        bool* ok) {
      gamma::Message got = co_await m.recv(3);
      *ok = got.data.content_equals(expect);
    }
  };
  bool ok = false;
  Run::tx(bed.module(0), payload);
  Run::rx(bed.module(1), payload, &ok);
  bed.sim.run();
  EXPECT_TRUE(ok);
}

TEST(Gamma, UnreliableModeLosesFramesSilently) {
  apps::GammaBed bed;  // reliable=false by default
  bed.cluster.set_mtu_all(1500);
  bed.cluster.link(0).faults(0).drop_frame_index(1);
  bed.module(1).open_mailbox_port(3);
  struct Run {
    static sim::Task tx(gamma::GammaModule& m) {
      (void)co_await m.send(1, 3, net::Buffer::zeros(5000));
    }
  };
  Run::tx(bed.module(0));
  bed.sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(bed.module(1).messages_received(), 0u);  // message torn apart
}

TEST(Gamma, ReliableModeRecoversFromLoss) {
  gamma::Config cfg;
  cfg.reliable = true;
  apps::GammaBed bed({}, cfg);
  bed.cluster.set_mtu_all(1500);
  bed.cluster.link(0).faults(0).drop_frame_index(1);
  bed.module(1).open_mailbox_port(3);
  net::Buffer payload = net::Buffer::pattern(5000, 6);
  struct Run {
    static sim::Task tx(gamma::GammaModule& m, net::Buffer d) {
      (void)co_await m.send(1, 3, std::move(d));
    }
    static sim::Task rx(gamma::GammaModule& m, net::Buffer expect,
                        bool* ok) {
      gamma::Message got = co_await m.recv(3);
      *ok = got.data.content_equals(expect);
    }
  };
  bool ok = false;
  Run::tx(bed.module(0), payload);
  Run::rx(bed.module(1), payload, &ok);
  bed.sim.run_until(sim::seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_GE(bed.module(0).retransmits(), 1u);
}

TEST(Gamma, UnregisteredPortDrops) {
  apps::GammaBed bed;
  struct Run {
    static sim::Task go(gamma::GammaModule& m) {
      (void)co_await m.send(1, 99, net::Buffer::zeros(100));
    }
  };
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).dropped_no_port(), 1u);
}

// --- VIA ------------------------------------------------------------------------

struct ViaPair {
  apps::ViaBed bed;
  via::Vi* a;
  via::Vi* b;

  ViaPair() : bed() {
    a = &bed.provider(0).create_vi();
    b = &bed.provider(1).create_vi();
    a->connect(1, b->id());
    b->connect(0, a->id());
  }
};

TEST(Via, SendRecvThroughDescriptorsAndPolling) {
  ViaPair p;
  p.b->post_recv(10000);
  net::Buffer payload = net::Buffer::pattern(8000, 2);
  struct Run {
    static sim::Task tx(via::Vi& vi, net::Buffer d, bool* sent) {
      vi.post_send(std::move(d));
      via::Completion c = co_await vi.poll_wait();
      *sent = c.is_send;
    }
    static sim::Task rx(via::Vi& vi, net::Buffer expect, bool* ok) {
      via::Completion c = co_await vi.poll_wait();
      *ok = !c.is_send && c.data.content_equals(expect);
    }
  };
  bool sent = false;
  bool ok = false;
  Run::tx(*p.a, payload, &sent);
  Run::rx(*p.b, payload, &ok);
  p.bed.sim.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(ok);
}

TEST(Via, NoPostedDescriptorMeansSilentLoss) {
  ViaPair p;
  struct Run {
    static sim::Task tx(via::Vi& vi) {
      vi.post_send(net::Buffer::zeros(500));
      (void)co_await vi.poll_wait();  // send completion still arrives
    }
  };
  Run::tx(*p.a);
  p.bed.sim.run_until(sim::milliseconds(10));
  EXPECT_EQ(p.b->completions_pending(), 0u);
  EXPECT_EQ(p.b->rx_dropped_no_descriptor(), 1u);
}

TEST(Via, DescriptorTooSmallDropsInError) {
  ViaPair p;
  p.b->post_recv(100);  // descriptor smaller than the message
  struct Run {
    static sim::Task tx(via::Vi& vi) {
      vi.post_send(net::Buffer::zeros(5000));
      (void)co_await vi.poll_wait();
    }
  };
  Run::tx(*p.a);
  p.bed.sim.run_until(sim::milliseconds(10));
  EXPECT_EQ(p.b->rx_dropped_no_descriptor(), 1u);
}

TEST(Via, RdmaWriteFillsRemoteRegion) {
  ViaPair p;
  p.b->register_region(1 << 20);
  struct Run {
    static sim::Task tx(via::Vi& vi) {
      vi.rdma_write(net::Buffer::zeros(60000), 0);
      (void)co_await vi.poll_wait();
      vi.rdma_write(net::Buffer::zeros(60000), 60000);
      (void)co_await vi.poll_wait();
    }
  };
  Run::tx(*p.a);
  p.bed.sim.run();
  EXPECT_EQ(p.b->region_bytes_written(), 120000);
}

TEST(Via, PollingBurnsCpuWhileWaiting) {
  ViaPair p;
  p.b->post_recv(1000);
  struct Run {
    static sim::Task tx(sim::Simulator& sim, via::Vi& vi) {
      co_await sim::Delay{sim, sim::milliseconds(2)};  // receiver polls idle
      vi.post_send(net::Buffer::zeros(100));
      (void)co_await vi.poll_wait();
    }
    static sim::Task rx(via::Vi& vi) { (void)co_await vi.poll_wait(); }
  };
  Run::tx(p.bed.sim, *p.a);
  Run::rx(*p.b);
  p.bed.sim.run();
  // The receiver's CPU spent essentially the whole wait in user mode.
  EXPECT_GT(p.bed.cluster.node(1).cpu().utilization(), 0.9);
}

}  // namespace
}  // namespace clicsim
