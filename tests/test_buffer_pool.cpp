// BufferPool accounting and lifecycle: high-water mark, outstanding-handle
// tracking, leak detection at teardown, scope nesting, header-record
// recycling and the CLICSIM_NO_POOL bypass switch. These tests pin the
// bookkeeping the per-simulation leak check relies on, plus the safety
// property that a pool may die before the last handle into it does.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/testbed.hpp"
#include "net/buffer.hpp"
#include "net/buffer_pool.hpp"
#include "net/frame.hpp"
#include "sim/task.hpp"

namespace clicsim::net {
namespace {

// Pool accounting is meaningless with pooling bypassed, so the fixture
// forces it on (overriding a CLICSIM_NO_POOL environment) and restores
// the override afterwards, so suites can run in any order without leaking
// process-wide state.
class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() { BufferPool::set_pooling_enabled(true); }
  ~BufferPoolTest() override { BufferPool::clear_pooling_override(); }
};

TEST_F(BufferPoolTest, OutstandingTracksLiveHandles) {
  BufferPool pool;
  BufferPool::Scope scope(&pool);
  EXPECT_EQ(pool.outstanding(), 0);

  Buffer a = Buffer::pattern(100, 1);
  EXPECT_EQ(pool.outstanding(), 1);
  Buffer b = Buffer::pattern(5000, 2);
  EXPECT_EQ(pool.outstanding(), 2);

  // Slices and copies share the block: no new outstanding handle.
  Buffer s = a.slice(10, 50);
  Buffer c = b;
  EXPECT_EQ(pool.outstanding(), 2);

  a = Buffer{};
  EXPECT_EQ(pool.outstanding(), 2) << "slice still pins a's block";
  s = Buffer{};
  EXPECT_EQ(pool.outstanding(), 1);
  b = Buffer{};
  c = Buffer{};
  EXPECT_EQ(pool.outstanding(), 0);
}

TEST_F(BufferPoolTest, HighWaterMarkIsMaxSimultaneousHandles) {
  BufferPool pool;
  BufferPool::Scope scope(&pool);
  {
    std::vector<Buffer> burst;
    for (int i = 0; i < 10; ++i) burst.push_back(Buffer::pattern(64, i));
    EXPECT_EQ(pool.high_water(), 10);
  }
  EXPECT_EQ(pool.outstanding(), 0);
  // Later, smaller peaks never lower the mark.
  Buffer one = Buffer::pattern(64, 99);
  EXPECT_EQ(pool.high_water(), 10);
}

TEST_F(BufferPoolTest, StatsCountReusesAndParkedBlocks) {
  BufferPool::set_pooling_enabled(true);
  BufferPool pool;
  BufferPool::Scope scope(&pool);

  { Buffer warm = Buffer::pattern(1000, 1); }
  const auto after_first = pool.stats();
  EXPECT_EQ(after_first.data_heap_allocs, 1u);
  EXPECT_EQ(after_first.data_reuses, 0u);
  EXPECT_EQ(after_first.parked, 1);

  { Buffer reused = Buffer::pattern(1000, 2); }
  const auto after_second = pool.stats();
  EXPECT_EQ(after_second.data_heap_allocs, 1u) << "second buffer re-hit heap";
  EXPECT_EQ(after_second.data_reuses, 1u);
  EXPECT_EQ(after_second.parked, 1);
}

TEST_F(BufferPoolTest, HeaderRecordsAreRecycled) {
  BufferPool::set_pooling_enabled(true);
  BufferPool pool;
  BufferPool::Scope scope(&pool);

  struct FakeHeader {
    int seq = 7;
    int port = 9;
  };
  { HeaderBlob h = HeaderBlob::of(FakeHeader{}, 8); }
  EXPECT_EQ(pool.stats().header_heap_allocs, 1u);
  {
    HeaderBlob h = HeaderBlob::of(FakeHeader{1, 2}, 8);
    ASSERT_NE(h.get<FakeHeader>(), nullptr);
    EXPECT_EQ(h.get<FakeHeader>()->seq, 1);
    EXPECT_EQ(pool.stats().header_reuses, 1u);
  }
  EXPECT_EQ(pool.outstanding(), 0);
}

TEST_F(BufferPoolTest, CleanTeardownReportsNoLeak) {
  auto pool = std::make_unique<BufferPool>();
  {
    BufferPool::Scope scope(pool.get());
    Buffer a = Buffer::pattern(100, 1);
    Buffer b = a.slice(0, 50);
  }
  EXPECT_EQ(pool->outstanding(), 0)
      << "handles released inside the scope must not count as leaks";
  pool.reset();  // destructor with an empty live list: nothing to orphan
}

// The leak check: handles that outlive the scope show up in outstanding(),
// and a pool destroyed while they live orphans them — the handles stay
// fully usable and release safely to the heap afterwards.
TEST_F(BufferPoolTest, LeakedHandleSurvivesPoolDestruction) {
  Buffer leaked;
  std::uint64_t sum = 0;
  {
    auto pool = std::make_unique<BufferPool>();
    BufferPool::Scope scope(pool.get());
    leaked = Buffer::pattern(3000, 42);
    sum = leaked.checksum();
    EXPECT_EQ(pool->outstanding(), 1) << "the leak check would catch this";
    // Scope ends, then the pool dies with the handle still alive.
  }
  EXPECT_EQ(leaked.checksum(), sum) << "orphaned block lost its contents";
  leaked = Buffer{};  // releases to the heap; must not touch the dead pool
}

// Every testbed owns a pool; a drained simulation must hold no handles.
TEST_F(BufferPoolTest, TestbedTeardownLeakCheck) {
  BufferPool::set_pooling_enabled(true);
  apps::ClicBed bed;
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  struct Run {
    static sim::Task exchange(clic::ClicModule& a, clic::ClicModule& b,
                              bool* ok) {
      auto st = co_await a.send(1, 1, 1, Buffer::pattern(20000, 5),
                                clic::SendMode::kConfirmed);
      if (!st.ok) co_return;
      clic::Message m = co_await b.recv(1);
      *ok = m.data.size() == 20000;
    }
  };
  bool ok = false;
  {
    Run::exchange(bed.module(0), bed.module(1), &ok);
    bed.sim.run();
  }
  EXPECT_TRUE(ok);
  EXPECT_GT(bed.pool.high_water(), 0) << "traffic never touched the pool";
  EXPECT_EQ(bed.pool.outstanding(), 0)
      << "a Buffer or HeaderBlob survived the drained simulation";
}

TEST_F(BufferPoolTest, ScopesNestLifoAndRestore) {
  BufferPool::set_pooling_enabled(true);
  EXPECT_EQ(BufferPool::current(), nullptr);
  BufferPool outer_pool;
  BufferPool inner_pool;
  {
    BufferPool::Scope outer(&outer_pool);
    EXPECT_EQ(BufferPool::current(), &outer_pool);
    {
      BufferPool::Scope inner(&inner_pool);
      EXPECT_EQ(BufferPool::current(), &inner_pool);
      Buffer b = Buffer::pattern(100, 1);
      EXPECT_EQ(inner_pool.outstanding(), 1);
      EXPECT_EQ(outer_pool.outstanding(), 0);
    }
    EXPECT_EQ(BufferPool::current(), &outer_pool);
  }
  EXPECT_EQ(BufferPool::current(), nullptr);
}

// A block always returns to its home pool, even when a different pool is
// current at release time — the property that makes interleaved bed
// lifetimes on one thread safe.
TEST_F(BufferPoolTest, BlocksReturnToTheirHomePool) {
  BufferPool::set_pooling_enabled(true);
  BufferPool home;
  Buffer wanderer;
  {
    BufferPool::Scope scope(&home);
    wanderer = Buffer::pattern(500, 3);
  }
  BufferPool other;
  {
    BufferPool::Scope scope(&other);
    wanderer = Buffer{};  // released while `other` is current
  }
  EXPECT_EQ(home.outstanding(), 0);
  EXPECT_EQ(home.stats().parked, 1) << "block parked in the wrong pool";
  EXPECT_EQ(other.stats().parked, 0);
}

TEST_F(BufferPoolTest, BypassSwitchDisablesPooling) {
  BufferPool::set_pooling_enabled(false);
  BufferPool pool;
  BufferPool::Scope scope(&pool);
  EXPECT_EQ(BufferPool::current(), nullptr)
      << "a Scope must install no pool while pooling is bypassed";
  Buffer b = Buffer::pattern(100, 1);
  EXPECT_EQ(pool.outstanding(), 0);
  EXPECT_EQ(pool.stats().data_heap_allocs, 0u);
  b = Buffer{};

  BufferPool::set_pooling_enabled(true);
  BufferPool::Scope active(&pool);
  Buffer c = Buffer::pattern(100, 2);
  EXPECT_EQ(pool.outstanding(), 1);
}

TEST_F(BufferPoolTest, UnpooledBuffersBehaveIdentically) {
  BufferPool::set_pooling_enabled(false);
  Buffer a = Buffer::pattern(10000, 7);
  Buffer s = a.slice(100, 500);
  BufferPool::set_pooling_enabled(true);
  BufferPool pool;
  BufferPool::Scope scope(&pool);
  Buffer b = Buffer::pattern(10000, 7);
  EXPECT_TRUE(a.content_equals(b));
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_EQ(s.checksum(), b.slice(100, 500).checksum());
}

}  // namespace
}  // namespace clicsim::net
