// Property-style reliability sweeps (TEST_P): for every combination of
// protocol, loss rate, message size and RNG seed, a patterned payload must
// arrive intact and exactly once. This is the "reliable message delivery"
// guarantee the paper claims for CLIC, checked under adversarial networks;
// TCP is held to the same standard, and lossless runs pin determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

struct Case {
  double loss;
  std::int64_t size;
  std::uint64_t seed;
};

class ClicReliability : public ::testing::TestWithParam<Case> {};

TEST_P(ClicReliability, PayloadSurvivesLossyNetwork) {
  const Case c = GetParam();
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  for (int l = 0; l < 2; ++l) {
    for (int d = 0; d < 2; ++d) {
      bed.cluster.link(l).faults(d).set_seed(c.seed + l * 2 + d);
      bed.cluster.link(l).faults(d).set_drop_probability(c.loss);
    }
  }
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);

  net::Buffer payload = net::Buffer::pattern(c.size, c.seed);
  struct Run {
    static sim::Task tx(clic::ClicModule& m, net::Buffer d, bool* done) {
      auto st = co_await m.send(1, 1, 1, std::move(d),
                                clic::SendMode::kConfirmed);
      *done = st.ok;
    }
    static sim::Task rx(clic::ClicModule& m, net::Buffer expect, int* ok) {
      clic::Message got = co_await m.recv(1);
      if (got.data.content_equals(expect) &&
          got.data.size() == expect.size()) {
        ++*ok;
      }
    }
  };
  bool sent = false;
  int delivered = 0;
  Run::tx(bed.module(0), payload, &sent);
  Run::rx(bed.module(1), payload, &delivered);
  bed.sim.run_until(sim::seconds(60));

  EXPECT_TRUE(sent) << "confirmed send never completed";
  EXPECT_EQ(delivered, 1) << "message lost or duplicated";
  EXPECT_EQ(bed.module(1).messages_received(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, ClicReliability,
    ::testing::Values(
        Case{0.00, 100, 1}, Case{0.00, 60000, 2},
        Case{0.02, 1000, 3}, Case{0.02, 30000, 4}, Case{0.02, 120000, 5},
        Case{0.05, 1000, 6}, Case{0.05, 30000, 7}, Case{0.05, 120000, 8},
        Case{0.10, 5000, 9}, Case{0.10, 60000, 10},
        Case{0.20, 3000, 11}, Case{0.20, 20000, 12}),
    [](const auto& info) {
      return "loss" +
             std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_size" + std::to_string(info.param.size) + "_seed" +
             std::to_string(info.param.seed);
    });

class TcpReliability : public ::testing::TestWithParam<Case> {};

TEST_P(TcpReliability, StreamSurvivesLossyNetwork) {
  const Case c = GetParam();
  apps::TcpBed bed;
  bed.cluster.set_mtu_all(1500);
  for (int l = 0; l < 2; ++l) {
    for (int d = 0; d < 2; ++d) {
      bed.cluster.link(l).faults(d).set_seed(c.seed + 100 + l * 2 + d);
      bed.cluster.link(l).faults(d).set_drop_probability(c.loss);
    }
  }
  bed.tcp[1]->listen(5000);

  net::Buffer payload = net::Buffer::pattern(c.size, c.seed);
  struct Run {
    static sim::Task tx(tcpip::TcpStack& t, net::Buffer d) {
      auto& s = t.create_socket();
      (void)co_await s.connect(1, 5000);
      (void)co_await s.send(std::move(d));
      s.close();
    }
    static sim::Task rx(tcpip::TcpStack& t, net::Buffer expect, int* ok) {
      tcpip::TcpSocket* s = co_await t.accept(5000);
      net::Buffer got = co_await s->recv_exact(expect.size());
      if (got.content_equals(expect)) ++*ok;
    }
  };
  int delivered = 0;
  Run::tx(*bed.tcp[0], payload);
  Run::rx(*bed.tcp[1], payload, &delivered);
  bed.sim.run_until(sim::seconds(120));
  EXPECT_EQ(delivered, 1);
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, TcpReliability,
    ::testing::Values(Case{0.02, 30000, 21}, Case{0.05, 30000, 22},
                      Case{0.05, 120000, 23}, Case{0.10, 20000, 24}),
    [](const auto& info) {
      return "loss" +
             std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_size" + std::to_string(info.param.size) + "_seed" +
             std::to_string(info.param.seed);
    });

// Corruption (bad FCS) must behave exactly like loss for reliability.
class ClicCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClicCorruption, CorruptedFramesAreDroppedAndRecovered) {
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  bed.cluster.link(0).faults(0).set_seed(GetParam());
  bed.cluster.link(0).faults(0).set_corrupt_probability(0.15);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);

  net::Buffer payload = net::Buffer::pattern(50000, GetParam());
  struct Run {
    static sim::Task tx(clic::ClicModule& m, net::Buffer d) {
      (void)co_await m.send(1, 1, 1, std::move(d),
                            clic::SendMode::kConfirmed);
    }
    static sim::Task rx(clic::ClicModule& m, net::Buffer expect, int* ok) {
      clic::Message got = co_await m.recv(1);
      if (got.data.content_equals(expect)) ++*ok;
    }
  };
  int delivered = 0;
  Run::tx(bed.module(0), payload);
  Run::rx(bed.module(1), payload, &delivered);
  bed.sim.run_until(sim::seconds(60));
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(bed.cluster.node(1).nic(0).rx_bad_fcs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClicCorruption,
                         ::testing::Values(31u, 32u, 33u, 34u));

// Gilbert–Elliott burst loss: unlike independent Bernoulli drops, bursts
// wipe out whole windows at once (mean burst ~5 frames, 60% loss while in
// the bad state). Reliability must still hold for both stacks.
class ClicBurstLoss : public ::testing::TestWithParam<Case> {};

TEST_P(ClicBurstLoss, PayloadSurvivesBurstLoss) {
  const Case c = GetParam();
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  for (int l = 0; l < 2; ++l) {
    for (int d = 0; d < 2; ++d) {
      auto& f = bed.cluster.link(l).faults(d);
      f.set_seed(c.seed + l * 2 + d);
      // c.loss doubles as the good->bad transition probability.
      f.set_gilbert_elliott(c.loss, 0.2, 0.0, 0.6);
    }
  }
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);

  net::Buffer payload = net::Buffer::pattern(c.size, c.seed);
  struct Run {
    static sim::Task tx(clic::ClicModule& m, net::Buffer d, bool* done) {
      auto st = co_await m.send(1, 1, 1, std::move(d),
                                clic::SendMode::kConfirmed);
      *done = st.ok;
    }
    static sim::Task rx(clic::ClicModule& m, net::Buffer expect, int* ok) {
      clic::Message got = co_await m.recv(1);
      if (got.data.content_equals(expect)) ++*ok;
    }
  };
  bool sent = false;
  int delivered = 0;
  Run::tx(bed.module(0), payload, &sent);
  Run::rx(bed.module(1), payload, &delivered);
  bed.sim.run_until(sim::seconds(60));

  EXPECT_TRUE(sent) << "confirmed send never completed";
  EXPECT_EQ(delivered, 1) << "message lost or duplicated";
  std::uint64_t bursts = 0;
  for (int l = 0; l < 2; ++l) {
    for (int d = 0; d < 2; ++d) {
      bursts += bed.cluster.link(l).faults(d).burst_drops();
    }
  }
  EXPECT_GT(bursts, 0u) << "campaign never entered a burst; weak test";
}

INSTANTIATE_TEST_SUITE_P(
    BurstSweep, ClicBurstLoss,
    ::testing::Values(Case{0.05, 30000, 41}, Case{0.10, 60000, 42},
                      Case{0.05, 30000, 43}, Case{0.05, 120000, 44}),
    [](const auto& info) {
      return "g2b" + std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_size" + std::to_string(info.param.size) + "_seed" +
             std::to_string(info.param.seed);
    });

class TcpBurstLoss : public ::testing::TestWithParam<Case> {};

TEST_P(TcpBurstLoss, StreamSurvivesBurstLoss) {
  const Case c = GetParam();
  apps::TcpBed bed;
  bed.cluster.set_mtu_all(1500);
  for (int l = 0; l < 2; ++l) {
    for (int d = 0; d < 2; ++d) {
      auto& f = bed.cluster.link(l).faults(d);
      f.set_seed(c.seed + 200 + l * 2 + d);
      f.set_gilbert_elliott(c.loss, 0.2, 0.0, 0.6);
    }
  }
  bed.tcp[1]->listen(5000);

  net::Buffer payload = net::Buffer::pattern(c.size, c.seed);
  struct Run {
    static sim::Task tx(tcpip::TcpStack& t, net::Buffer d) {
      auto& s = t.create_socket();
      (void)co_await s.connect(1, 5000);
      (void)co_await s.send(std::move(d));
      s.close();
    }
    static sim::Task rx(tcpip::TcpStack& t, net::Buffer expect, int* ok) {
      tcpip::TcpSocket* s = co_await t.accept(5000);
      net::Buffer got = co_await s->recv_exact(expect.size());
      if (got.content_equals(expect)) ++*ok;
    }
  };
  int delivered = 0;
  Run::tx(*bed.tcp[0], payload);
  Run::rx(*bed.tcp[1], payload, &delivered);
  bed.sim.run_until(sim::seconds(120));
  EXPECT_EQ(delivered, 1);
}

INSTANTIATE_TEST_SUITE_P(
    BurstSweep, TcpBurstLoss,
    ::testing::Values(Case{0.02, 30000, 51}, Case{0.05, 60000, 52}),
    [](const auto& info) {
      return "g2b" + std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_size" + std::to_string(info.param.size) + "_seed" +
             std::to_string(info.param.seed);
    });

// Bounded-failure semantics: a black-holed confirmed send must resolve
// (ok == false, kTimedOut) within the channel's retry budget, not hang.
TEST(BoundedFailure, BlackHoledSendResolvesWithinBudget) {
  apps::ClicBed bed;
  bed.cluster.link(0).faults(0).set_drop_probability(1.0);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);

  bool resolved = false;
  clic::SendStatus status;
  struct Run {
    static sim::Task go(clic::ClicModule& m, bool* done,
                        clic::SendStatus* st) {
      *st = co_await m.send(1, 1, 1, net::Buffer::zeros(2000),
                            clic::SendMode::kConfirmed);
      *done = true;
    }
  };
  Run::go(bed.module(0), &resolved, &status);

  // Worst-case give-up time: sum of the (jittered) geometric RTO ladder.
  const auto& cfg = bed.module(0).config();
  sim::SimTime budget = 0;
  sim::SimTime rto = cfg.rto;
  for (int i = 0; i <= cfg.max_retries; ++i) {
    budget += static_cast<sim::SimTime>(
        static_cast<double>(std::min(rto, cfg.rto_max)) *
        (1.0 + cfg.rto_jitter));
    rto = static_cast<sim::SimTime>(static_cast<double>(rto) *
                                    cfg.rto_backoff);
  }
  bed.sim.run_until(2 * budget);

  EXPECT_TRUE(resolved) << "send hung past twice the retry budget";
  EXPECT_FALSE(status.ok);
  EXPECT_EQ(status.error, clic::SendError::kTimedOut);
  EXPECT_LE(bed.sim.now(), 2 * budget);
}

// A peer that vanishes mid-transfer (carrier down longer than the retry
// budget) must fail cleanly, then resynchronize via the reset handshake
// once the carrier heals: the next confirmed send succeeds.
TEST(BoundedFailure, PartitionedPeerRecoversAfterHeal) {
  apps::ClicBed bed;
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);

  // Isolate node 1 for longer than the worst-case retry ladder (~2 s with
  // full jitter), then heal well before the retry fires at ~4.5 s.
  bed.cluster.link(1).set_carrier_up(false);
  bed.sim.at(sim::seconds(2.5),
             [&] { bed.cluster.link(1).set_carrier_up(true); });

  net::Buffer second = net::Buffer::pattern(4000, 99);
  struct Run {
    static sim::Task go(sim::Simulator& sim, clic::ClicModule& m,
                        net::Buffer payload, clic::SendStatus* first,
                        clic::SendStatus* retry) {
      *first = co_await m.send(1, 1, 1, net::Buffer::zeros(2000),
                               clic::SendMode::kConfirmed);
      // Wait out the partition, then try again over the healed link.
      co_await sim::Delay{sim, sim::seconds(3)};
      *retry = co_await m.send(1, 1, 1, std::move(payload),
                               clic::SendMode::kConfirmed);
    }
    static sim::Task rx(clic::ClicModule& m, net::Buffer expect, int* ok) {
      for (;;) {
        clic::Message got = co_await m.recv(1);
        if (got.data.content_equals(expect)) ++*ok;
      }
    }
  };
  clic::SendStatus first, retry;
  int delivered = 0;
  Run::go(bed.sim, bed.module(0), second, &first, &retry);
  Run::rx(bed.module(1), second, &delivered);
  bed.sim.run_until(sim::seconds(30));

  EXPECT_FALSE(first.ok) << "send into a dead link should fail cleanly";
  EXPECT_EQ(first.error, clic::SendError::kTimedOut);
  EXPECT_TRUE(retry.ok) << "channel did not recover after the heal";
  EXPECT_EQ(delivered, 1);
  auto* ch = bed.module(0).channel_to(1);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->gave_up(), 1u);
  auto* peer = bed.module(1).channel_to(0);
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(peer->resets_accepted(), 1u) << "resync handshake never landed";
}

// Determinism: the same seed and parameters give bit-identical runs.
class Determinism : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Determinism, RepeatRunsAreIdentical) {
  auto run_once = [&](std::uint64_t seed) {
    apps::ClicBed bed;
    bed.cluster.link(0).faults(0).set_seed(seed);
    bed.cluster.link(0).faults(0).set_drop_probability(0.03);
    bed.module(0).bind_port(1);
    bed.module(1).bind_port(1);
    struct Run {
      static sim::Task tx(clic::ClicModule& m, std::int64_t n) {
        (void)co_await m.send(1, 1, 1, net::Buffer::zeros(n),
                              clic::SendMode::kConfirmed);
      }
      static sim::Task rx(clic::ClicModule& m) {
        (void)co_await m.recv(1);
      }
    };
    Run::tx(bed.module(0), GetParam());
    Run::rx(bed.module(1));
    bed.sim.run_until(sim::seconds(10));
    return std::make_tuple(bed.sim.events_executed(),
                           bed.module(0).channel_to(1)->retransmits(),
                           bed.sim.now());
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_EQ(run_once(123), run_once(123));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Determinism,
                         ::testing::Values(std::int64_t{4000},
                                           std::int64_t{40000},
                                           std::int64_t{150000}));

}  // namespace
}  // namespace clicsim
