// Unit tests for the OS substrate: kernel services, drivers, chunked
// copies, nodes and cluster wiring.
#include <gtest/gtest.h>

#include "os/address.hpp"
#include "os/cluster.hpp"
#include "os/driver.hpp"
#include "os/kernel.hpp"
#include "os/node.hpp"
#include "sim/task.hpp"

namespace clicsim::os {
namespace {

struct NodeRig {
  sim::Simulator sim;
  Node node{sim, 0, hw::HostParams{}, hw::PciParams{}, "n0"};
};

// --- Kernel ------------------------------------------------------------------------

TEST(Kernel, BottomHalvesRunInOrderAfterDispatchCost) {
  NodeRig rig;
  std::vector<int> order;
  rig.node.kernel().queue_bottom_half([&] { order.push_back(1); });
  rig.node.kernel().queue_bottom_half([&] { order.push_back(2); });
  rig.sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(rig.node.kernel().bottom_halves_run(), 2u);
  EXPECT_GE(rig.node.cpu().busy_time(sim::CpuPriority::kSoftirq),
            rig.node.cpu().params().bottom_half_dispatch);
}

TEST(Kernel, TimersFireAndCancel) {
  NodeRig rig;
  int fired = 0;
  rig.node.kernel().add_timer(100, [&] { ++fired; });
  auto id = rig.node.kernel().add_timer(200, [&] { ++fired; });
  rig.node.kernel().cancel_timer(id);
  rig.sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Kernel, SyscallChargesKernelEntry) {
  NodeRig rig;
  bool in_kernel = false;
  rig.node.kernel().syscall([&] { in_kernel = true; });
  rig.sim.run();
  EXPECT_TRUE(in_kernel);
  EXPECT_EQ(rig.node.kernel().syscalls(), 1u);
  EXPECT_GE(rig.node.cpu().busy_time(sim::CpuPriority::kKernel),
            rig.node.cpu().params().syscall_enter);
}

TEST(Kernel, LightSyscallIsCheaper) {
  NodeRig a;
  a.node.kernel().syscall([] {});
  a.sim.run();
  NodeRig b;
  b.node.kernel().light_syscall([] {});
  b.sim.run();
  EXPECT_LT(b.node.cpu().busy_time(), a.node.cpu().busy_time());
}

TEST(WaitQueue, SleepAndWakeChargesSchedulerPath) {
  NodeRig rig;
  WaitQueue wq(rig.sim, rig.node.cpu());
  sim::SimTime woke_at = -1;
  auto sleeper = [](sim::Simulator& s, WaitQueue& q,
                    sim::SimTime& out) -> sim::Task {
    co_await q.sleep();
    out = s.now();
  };
  sleeper(rig.sim, wq, woke_at);
  EXPECT_EQ(wq.sleepers(), 1u);
  rig.sim.after(1000, [&] { wq.wake_all(); });
  rig.sim.run();
  const auto& p = rig.node.cpu().params();
  EXPECT_EQ(woke_at, 1000 + p.process_wakeup + p.context_switch);
}

// --- copy_data / CopyChain ------------------------------------------------------------

TEST(Node, CopyDataChargesCorrectTotalTime) {
  NodeRig rig;
  sim::SimTime done = -1;
  rig.node.copy_data(sim::CpuPriority::kKernel, 1 << 20,
                     [&] { done = rig.sim.now(); });
  rig.sim.run();
  const auto expect = sim::transfer_time(
      1 << 20, rig.node.cpu().params().cpu_copy_bytes_per_s);
  EXPECT_NEAR(static_cast<double>(done), static_cast<double>(expect),
              static_cast<double>(expect) * 0.01);
}

TEST(Node, CopyDataChunksAllowInterruptPreemption) {
  NodeRig rig;
  // Start a large copy, then raise interrupt-priority work: it must run
  // long before the copy completes (between chunks).
  sim::SimTime copy_done = -1;
  sim::SimTime isr_done = -1;
  rig.node.copy_data(sim::CpuPriority::kUser, 4 << 20,
                     [&] { copy_done = rig.sim.now(); });
  rig.sim.after(1000, [&] {
    rig.node.cpu().run(sim::CpuPriority::kInterrupt, 100,
                       [&] { isr_done = rig.sim.now(); });
  });
  rig.sim.run();
  EXPECT_GT(copy_done, 0);
  EXPECT_LT(isr_done, copy_done / 4);
}

TEST(CopyChain, FinishRunsAfterAllQueuedWork) {
  NodeRig rig;
  CopyChain chain(rig.node, sim::CpuPriority::kKernel);
  sim::SimTime finished = -1;
  chain.add(100000);
  chain.add(100000);
  chain.finish([&] { finished = rig.sim.now(); });
  chain.add(100000);  // added after finish was requested: still counted
  rig.sim.run();
  const auto expect = sim::transfer_time(
      300000, rig.node.cpu().params().cpu_copy_bytes_per_s);
  EXPECT_GE(finished, expect - 10);
}

TEST(CopyChain, FinishWithNoWorkRunsImmediately) {
  NodeRig rig;
  CopyChain chain(rig.node, sim::CpuPriority::kKernel);
  bool ran = false;
  chain.finish([&] { ran = true; });
  EXPECT_TRUE(ran);
}

// --- Driver ------------------------------------------------------------------------

struct DriverRig {
  sim::Simulator sim;
  Node a{sim, 0, hw::HostParams{}, hw::PciParams{}, "a"};
  Node b{sim, 1, hw::HostParams{}, hw::PciParams{}, "b"};
  net::Link link{sim, net::LinkParams{}, "wire"};

  DriverRig() {
    a.add_nic(hw::NicProfile{}, net::MacAddr::node(0));
    b.add_nic(hw::NicProfile{}, net::MacAddr::node(1));
    a.nic(0).attach_link(link, 0);
    b.nic(0).attach_link(link, 1);
  }

  SkBuff skb(std::int64_t size) {
    SkBuff s;
    s.dst = b.mac(0);
    s.src = a.mac(0);
    s.ethertype = 0x7777;
    s.payload = net::Buffer::zeros(size);
    return s;
  }
};

struct CountingHandler : ProtocolHandler {
  int packets = 0;
  bool last_from_isr = false;
  void packet_received(net::Frame, bool from_isr) override {
    ++packets;
    last_from_isr = from_isr;
  }
};

TEST(Driver, DeliversToRegisteredProtocolViaBottomHalf) {
  DriverRig rig;
  CountingHandler handler;
  rig.b.driver(0).add_protocol(0x7777, &handler);
  EXPECT_TRUE(rig.a.driver(0).try_xmit(rig.skb(500)));
  rig.sim.run();
  EXPECT_EQ(handler.packets, 1);
  EXPECT_FALSE(handler.last_from_isr);
  EXPECT_EQ(rig.b.driver(0).rx_packets(), 1u);
}

TEST(Driver, DirectDispatchRunsFromIsr) {
  DriverRig rig;
  CountingHandler handler;
  rig.b.driver(0).add_protocol(0x7777, &handler);
  rig.b.driver(0).set_direct_dispatch(true);
  EXPECT_TRUE(rig.a.driver(0).try_xmit(rig.skb(500)));
  rig.sim.run();
  EXPECT_EQ(handler.packets, 1);
  EXPECT_TRUE(handler.last_from_isr);
}

TEST(Driver, CountsPacketsWithNoHandler) {
  DriverRig rig;
  EXPECT_TRUE(rig.a.driver(0).try_xmit(rig.skb(500)));
  rig.sim.run();
  EXPECT_EQ(rig.b.driver(0).rx_no_handler(), 1u);
}

TEST(Driver, XmitOrQueueSurvivesRingPressure) {
  DriverRig rig;
  CountingHandler handler;
  rig.b.driver(0).add_protocol(0x7777, &handler);
  const int n = rig.a.nic(0).profile().tx_ring * 3;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    rig.a.driver(0).xmit_or_queue(rig.skb(2000), [&] { ++done; });
  }
  rig.sim.run();
  EXPECT_EQ(done, n);
  EXPECT_EQ(handler.packets, n);
  EXPECT_EQ(rig.a.driver(0).tx_queue_depth(), 0u);
}

TEST(Driver, TryXmitReportsRingFull) {
  DriverRig rig;
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    if (rig.a.driver(0).try_xmit(rig.skb(9000))) ++accepted;
  }
  EXPECT_EQ(accepted, rig.a.nic(0).profile().tx_ring);
}

// --- Cluster / AddressMap --------------------------------------------------------------

TEST(Cluster, WiresNodesThroughTheSwitch) {
  sim::Simulator sim;
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.nics_per_node = 2;
  Cluster cluster(sim, cfg);
  EXPECT_EQ(cluster.size(), 4);
  EXPECT_EQ(cluster.ethernet_switch().ports(), 8);
  EXPECT_EQ(cluster.node(2).nic_count(), 2);
  EXPECT_TRUE(cluster.node(3).mac(1) == Cluster::mac_of(3, 1));
  // Static learning: every mac already known to the switch.
  EXPECT_EQ(cluster.ethernet_switch().learned_port(Cluster::mac_of(3, 1)),
            7);
}

TEST(Cluster, SetMtuAllApplies) {
  sim::Simulator sim;
  Cluster cluster(sim, ClusterConfig{});
  cluster.set_mtu_all(1500);
  EXPECT_EQ(cluster.node(0).nic(0).mtu(), 1500);
  EXPECT_EQ(cluster.node(1).nic(0).mtu(), 1500);
}

TEST(AddressMap, ResolvesBothDirections) {
  sim::Simulator sim;
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(sim, cfg);
  auto map = AddressMap::for_cluster(cluster);
  EXPECT_EQ(map.node_of(Cluster::mac_of(2)), 2);
  EXPECT_TRUE(map.macs_of(1)[0] == Cluster::mac_of(1));
  EXPECT_FALSE(map.knows(net::MacAddr::node(99)));
  EXPECT_THROW((void)map.node_of(net::MacAddr::node(99)), std::out_of_range);
}

}  // namespace
}  // namespace clicsim::os
