// Adaptive reliability mode (DESIGN.md §4k): RFC 6298 estimator oracle
// values, Karn's-rule exclusion of retransmitted samples, the estimator
// feeding the RTO ladder, slow-start/AIMD window motion with timeout
// collapse, deterministic pacing, estimator reset on channel resync, and
// digest-identical adaptive workload runs at --shards 1/2/8 and -j1/-j8.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/workloads.hpp"
#include "clic/channel.hpp"
#include "clic/rtt.hpp"
#include "hw/cpu.hpp"
#include "os/kernel.hpp"
#include "sim/parallel_executor.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::clic {
namespace {

// --- Estimator oracle -------------------------------------------------------

TEST(RttEstimator, FirstSampleSeedsSrttAndHalfVariance) {
  RttEstimator est;
  EXPECT_FALSE(est.primed());
  est.sample(1000);
  EXPECT_TRUE(est.primed());
  EXPECT_EQ(est.srtt(), 1000);
  EXPECT_EQ(est.rttvar(), 500);
  // RTO = SRTT + 4·RTTVAR = 3000, inside the clamp.
  EXPECT_EQ(est.rto(1, 1000000), 3000);
}

TEST(RttEstimator, PinnedUpdateSequence) {
  // Hand-computed RFC 6298 integer arithmetic:
  //   sample 1000: srtt 1000, rttvar 500
  //   sample 2000: rttvar (3·500 + |1000−2000|)/4 = 625
  //                srtt   (7·1000 + 2000)/8       = 1125
  //   sample  500: rttvar (3·625 + |1125−500|)/4  = 625
  //                srtt   (7·1125 + 500)/8        = 1046
  RttEstimator est;
  est.sample(1000);
  est.sample(2000);
  EXPECT_EQ(est.srtt(), 1125);
  EXPECT_EQ(est.rttvar(), 625);
  est.sample(500);
  EXPECT_EQ(est.srtt(), 1046);
  EXPECT_EQ(est.rttvar(), 625);
  EXPECT_EQ(est.samples(), 3u);
}

TEST(RttEstimator, RtoClampsToFloorAndCeiling) {
  RttEstimator est;
  est.sample(10);  // srtt 10, rttvar 5 → raw RTO 30
  EXPECT_EQ(est.rto(1000, 2000), 1000);  // floor
  EXPECT_EQ(est.rto(1, 20), 20);         // ceiling
}

TEST(RttEstimator, ResetForgetsEverything) {
  RttEstimator est;
  est.sample(1000);
  est.reset();
  EXPECT_FALSE(est.primed());
  EXPECT_EQ(est.srtt(), 0);
  EXPECT_EQ(est.rttvar(), 0);
  EXPECT_EQ(est.samples(), 0u);
}

// --- Channel state machine --------------------------------------------------

struct FakeOps : ChannelOps {
  sim::Simulator sim;
  hw::HostParams host;
  hw::Cpu cpu{sim, host, "cpu"};
  os::Kernel kern{sim, cpu};

  std::vector<Packet> emitted;
  std::vector<ClicHeader> acks;
  std::vector<Packet> delivered;

  void emit_data(int, Packet& p) override { emitted.push_back(p); }
  void emit_ack(int, const ClicHeader& h) override { acks.push_back(h); }
  void deliver(int, Packet p) override { delivered.push_back(std::move(p)); }
  os::Kernel& kernel() override { return kern; }
};

Packet data_packet() {
  Packet p;
  p.header.type = PacketType::kUser;
  p.header.flags = flags::kFirstFragment | flags::kLastFragment;
  p.payload = net::Buffer::zeros(100);
  return p;
}

Config adaptive_cfg() {
  Config cfg;
  cfg.adaptive = true;
  cfg.pacing_gap = 0;  // most state-machine tests want instant release
  return cfg;
}

void ack_up_to(Channel& ch, std::uint32_t ack) {
  ClicHeader h;
  h.flags = flags::kPureAck;
  h.ack = ack;
  ch.packet_in(h, {}, net::Buffer::zeros(0));
}

TEST(AdaptiveChannel, EstimatorFeedsTheRtoLadder) {
  FakeOps ops;
  Config cfg = adaptive_cfg();
  Channel ch(cfg, ops, 1);
  // Unprimed: the configured initial RTO seeds the ladder.
  EXPECT_EQ(ch.current_rto(), cfg.rto);
  ch.send(data_packet());
  ops.sim.run_until(sim::microseconds(100));
  ack_up_to(ch, 1);  // sample = 100 us round trip
  ASSERT_EQ(ch.rtt().samples(), 1u);
  EXPECT_EQ(ch.rtt().srtt(), sim::microseconds(100.0));
  // RTO = srtt + 4·rttvar = 300 us, above the 200 us floor.
  EXPECT_EQ(ch.current_rto(), sim::microseconds(300.0));
}

TEST(AdaptiveChannel, BackoffDoublesTheMeasuredRto) {
  FakeOps ops;
  Config cfg = adaptive_cfg();
  Channel ch(cfg, ops, 1);
  ch.send(data_packet());
  ops.sim.run_until(sim::microseconds(100));
  ack_up_to(ch, 1);
  ASSERT_EQ(ch.current_rto(), sim::microseconds(300.0));
  // A lost packet: each consecutive expiry doubles the measured base.
  ch.send(data_packet());
  ops.sim.run_until(sim::milliseconds(1.0));  // expiries at 400, 1000 us
  EXPECT_EQ(ch.timeouts(), 2u);
  EXPECT_EQ(ch.backoff_level(), 2);
  EXPECT_EQ(ch.current_rto(), sim::microseconds(1200.0));  // 300·2²
}

TEST(AdaptiveChannel, KarnExcludesRetransmittedSamples) {
  FakeOps ops;
  Config cfg = adaptive_cfg();
  Channel ch(cfg, ops, 1);
  ch.send(data_packet());
  // Let the packet time out once (cfg.rto = 3 ms seeds the ladder), then
  // ack it: the ack is ambiguous between the two copies, so no sample.
  ops.sim.run_until(sim::milliseconds(3.5));
  ASSERT_EQ(ch.retransmits(), 1u);
  ack_up_to(ch, 1);
  EXPECT_EQ(ch.rtt().samples(), 0u);
  // A clean exchange afterwards does sample.
  ch.send(data_packet());
  ops.sim.run_until(sim::milliseconds(3.6));
  ack_up_to(ch, 2);
  EXPECT_EQ(ch.rtt().samples(), 1u);
}

TEST(AdaptiveChannel, SlowStartOpensAndTimeoutCollapsesTheWindow) {
  FakeOps ops;
  Config cfg = adaptive_cfg();
  cfg.cwnd_init = 2;
  Channel ch(cfg, ops, 1);
  for (int i = 0; i < 12; ++i) ch.send(data_packet());
  // Initial window: cwnd_init packets in flight, the rest queued.
  EXPECT_EQ(ch.cwnd(), 2);
  EXPECT_EQ(ch.in_flight(), 2);
  EXPECT_EQ(ch.pending(), 10u);
  // Two acked packets: slow start adds one per ack and releases more.
  ops.sim.run_until(sim::microseconds(50));
  ack_up_to(ch, 2);
  EXPECT_EQ(ch.cwnd(), 4);
  EXPECT_EQ(ch.in_flight(), 4);
  EXPECT_EQ(ch.window_max(), 4);
  // Timeout: window collapses back to cwnd_init and the collapse is
  // counted.
  ops.sim.run_until(sim::milliseconds(10.0));
  EXPECT_GE(ch.timeouts(), 1u);
  EXPECT_EQ(ch.cwnd(), 2);
  EXPECT_EQ(ch.window_min(), 2);
  EXPECT_GE(ch.window_collapses(), 1u);
}

TEST(AdaptiveChannel, PacingSpacesReleases) {
  FakeOps ops;
  Config cfg;
  cfg.adaptive = true;
  cfg.pacing_gap = sim::microseconds(10.0);
  cfg.cwnd_init = 64;  // window never the limiter here
  Channel ch(cfg, ops, 1);
  for (int i = 0; i < 3; ++i) ch.send(data_packet());
  // Only the first goes out instantly; the rest wait on the pace timer.
  EXPECT_EQ(ops.emitted.size(), 1u);
  ops.sim.run_until(sim::microseconds(15));
  EXPECT_EQ(ops.emitted.size(), 2u);
  ops.sim.run_until(sim::microseconds(25));
  EXPECT_EQ(ops.emitted.size(), 3u);
}

TEST(AdaptiveChannel, GiveUpResetsEstimatorAndWindow) {
  FakeOps ops;
  Config cfg = adaptive_cfg();
  cfg.max_retries = 2;
  Channel ch(cfg, ops, 1);
  // Prime the estimator with one clean exchange.
  ch.send(data_packet());
  ops.sim.run_until(sim::microseconds(100));
  ack_up_to(ch, 1);
  ASSERT_EQ(ch.rtt().samples(), 1u);
  // Black-hole the next packet until the retry budget burns out.
  bool failed = false;
  ch.send(data_packet(), [&](bool ok) { failed = !ok; });
  ops.sim.run_until(sim::seconds(1.0));
  EXPECT_EQ(ch.gave_up(), 1u);
  EXPECT_TRUE(failed);
  // Channel resync forgets the estimator and restarts the window.
  EXPECT_EQ(ch.rtt().samples(), 0u);
  EXPECT_FALSE(ch.rtt().primed());
  EXPECT_EQ(ch.cwnd(), cfg.cwnd_init);
  EXPECT_EQ(ch.in_flight(), 0);
}

TEST(AdaptiveChannel, DisabledModeKeepsFixedWindowSemantics) {
  FakeOps ops;
  Config cfg;  // adaptive off
  cfg.window_packets = 4;
  Channel ch(cfg, ops, 1);
  for (int i = 0; i < 10; ++i) ch.send(data_packet());
  EXPECT_EQ(ops.emitted.size(), 4u);
  EXPECT_EQ(ch.cwnd(), cfg.window_packets);
  EXPECT_EQ(ch.rtt().samples(), 0u);
  ack_up_to(ch, 3);
  EXPECT_EQ(ch.rtt().samples(), 0u);  // no estimator outside adaptive mode
  EXPECT_EQ(ch.window_collapses(), 0u);
}

// --- Workload determinism ---------------------------------------------------

apps::Scenario adaptive_scenario(int shards) {
  apps::Scenario s;
  s.cluster.shards = shards;
  s.clic = apps::adaptive_clic_config();
  return s;
}

apps::RpcConfig small_rpc(apps::ArrivalSpec::Process process) {
  apps::RpcConfig cfg;
  cfg.client_nodes = 3;
  cfg.clients_per_node = 4;
  cfg.requests_per_client = 4;
  cfg.arrivals.process = process;
  cfg.arrivals.rate_per_s = 2000.0;
  cfg.arrivals.incast_period = sim::milliseconds(2.0);
  cfg.seed = 7;
  return cfg;
}

TEST(AdaptiveDeterminism, RpcShardInvariant) {
  const auto cfg = small_rpc(apps::ArrivalSpec::Process::kPoisson);
  const apps::RpcResult base = apps::rpc_clic(adaptive_scenario(1), cfg);
  EXPECT_EQ(base.in_flight, 0u);
  EXPECT_EQ(base.responses, base.requests);
  for (const int shards : {2, 8}) {
    const apps::RpcResult r = apps::rpc_clic(adaptive_scenario(shards), cfg);
    EXPECT_EQ(r.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(r.latency, base.latency) << "shards=" << shards;
    EXPECT_EQ(r.finished_at, base.finished_at) << "shards=" << shards;
  }
  // Same-process replay.
  EXPECT_EQ(apps::rpc_clic(adaptive_scenario(1), cfg).digest, base.digest);
  // The adaptive path really engaged: the schedule differs from the
  // fixed-clock stack's under the same workload.
  apps::Scenario fixed;
  fixed.cluster.shards = 1;
  EXPECT_NE(apps::rpc_clic(fixed, cfg).digest, base.digest);
}

TEST(AdaptiveDeterminism, IncastShardInvariant) {
  const auto cfg = small_rpc(apps::ArrivalSpec::Process::kIncast);
  const apps::RpcResult base = apps::rpc_clic(adaptive_scenario(1), cfg);
  EXPECT_EQ(base.in_flight, 0u);
  for (const int shards : {2, 8}) {
    EXPECT_EQ(apps::rpc_clic(adaptive_scenario(shards), cfg).digest,
              base.digest)
        << "shards=" << shards;
  }
}

TEST(AdaptiveDeterminism, ParallelMatchesSerial) {
  const apps::ArrivalSpec::Process kProcs[] = {
      apps::ArrivalSpec::Process::kPoisson,
      apps::ArrivalSpec::Process::kBursty,
      apps::ArrivalSpec::Process::kIncast,
  };
  constexpr std::size_t kN = std::size(kProcs);
  auto run = [&](std::size_t i) {
    return apps::rpc_clic(adaptive_scenario(1), small_rpc(kProcs[i])).digest;
  };
  std::vector<std::uint64_t> serial(kN);
  for (std::size_t i = 0; i < kN; ++i) serial[i] = run(i);
  for (int threads : {2, 8}) {
    std::vector<std::uint64_t> parallel(kN);
    sim::ParallelExecutor pool(threads);
    pool.run_indexed(kN, [&](std::size_t i) { parallel[i] = run(i); });
    EXPECT_EQ(parallel, serial) << "-j" << threads
                                << " diverged from serial";
  }
}

}  // namespace
}  // namespace clicsim::clic
