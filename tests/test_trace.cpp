// Packet capture and decoding: taps interpose transparently, records are
// time-ordered, and the decoder names every protocol correctly.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/testbed.hpp"
#include "apps/trace.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

TEST(Trace, TapRecordsWithoutDisturbingDelivery) {
  apps::ClicBed bed;
  apps::PacketTrace trace;
  trace.tap_node_rx(bed.cluster, 1);

  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(1, 1, 1, net::Buffer::zeros(3000));
    }
    static sim::Task rx(clic::ClicModule& m, bool* got) {
      (void)co_await m.recv(1);
      *got = true;
    }
  };
  bool got = false;
  Run::tx(bed.module(0));
  Run::rx(bed.module(1), &got);
  bed.sim.run();

  EXPECT_TRUE(got);  // the tap forwarded everything
  EXPECT_GE(trace.frames_captured(), 1u);
}

TEST(Trace, DecodesClicHeaders) {
  apps::ClicBed bed;
  apps::PacketTrace trace;
  trace.tap_all(bed.cluster);
  bed.module(0).bind_port(7);
  bed.module(1).bind_port(7);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(7, 1, 7, net::Buffer::zeros(1000),
                            clic::SendMode::kConfirmed);
    }
    static sim::Task rx(clic::ClicModule& m) { (void)co_await m.recv(7); }
  };
  Run::tx(bed.module(0));
  Run::rx(bed.module(1));
  bed.sim.run();

  std::ostringstream os;
  trace.dump(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("CLIC user"), std::string::npos);
  EXPECT_NE(s.find("flags FLC"), std::string::npos);  // first|last|confirm
  EXPECT_NE(s.find("CLIC internal"), std::string::npos);  // the pure ack
}

TEST(Trace, DecodesTcpAndUdp) {
  apps::TcpBed bed;
  apps::PacketTrace trace;
  trace.tap_all(bed.cluster);
  bed.tcp[1]->listen(5000);
  bed.udp[1]->bind(6000);
  struct Run {
    static sim::Task tcp_tx(tcpip::TcpStack& t) {
      auto& s = t.create_socket();
      (void)co_await s.connect(1, 5000);
      (void)co_await s.send(net::Buffer::zeros(500));
    }
    static sim::Task tcp_rx(tcpip::TcpStack& t) {
      auto* s = co_await t.accept(5000);
      (void)co_await s->recv_exact(500);
    }
    static sim::Task udp_tx(tcpip::UdpStack& u) {
      (void)co_await u.sendto(6001, 1, 6000, net::Buffer::zeros(200));
    }
  };
  Run::tcp_tx(*bed.tcp[0]);
  Run::tcp_rx(*bed.tcp[1]);
  Run::udp_tx(*bed.udp[0]);
  bed.sim.run();

  std::ostringstream os;
  trace.dump(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("IP TCP"), std::string::npos);
  EXPECT_NE(s.find("flags S"), std::string::npos);  // the SYN
  EXPECT_NE(s.find("IP UDP 6001>6000"), std::string::npos);
}

TEST(Trace, MarksCorruptedFrames) {
  apps::ClicBed bed;
  apps::PacketTrace trace;
  trace.tap_node_rx(bed.cluster, 1);
  bed.cluster.link(0).faults(0).set_corrupt_probability(1.0);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(1, 1, 1, net::Buffer::zeros(100),
                            clic::SendMode::kAsync);
    }
  };
  Run::tx(bed.module(0));
  bed.sim.run_until(sim::milliseconds(1));

  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("BAD-FCS"), std::string::npos);
}

TEST(Trace, RecordLimitCapsMemory) {
  sim::Simulator sim;
  net::Link link(sim, net::LinkParams{}, "l");
  net::Tap tap(sim, "t");
  tap.insert(link, 1);
  tap.set_limit(3);
  net::Frame f;
  f.payload = net::Buffer::zeros(100);
  for (int i = 0; i < 10; ++i) link.send(0, f);
  sim.run();
  EXPECT_EQ(tap.records().size(), 3u);
  EXPECT_EQ(tap.frames_seen(), 10u);
}

}  // namespace
}  // namespace clicsim
