// TCP/IP baseline stack smoke tests: handshake, bulk transfer with
// integrity, retransmission under loss, EOF.
#include <gtest/gtest.h>

#include "os/address.hpp"
#include "os/cluster.hpp"
#include "sim/task.hpp"
#include "tcpip/ip.hpp"
#include "tcpip/tcp.hpp"

namespace clicsim {
namespace {

struct TcpFixture {
  sim::Simulator sim;
  os::Cluster cluster;
  os::AddressMap addresses;
  tcpip::IpLayer ip0, ip1;
  tcpip::TcpStack tcp0, tcp1;

  explicit TcpFixture(tcpip::Config cfg = {})
      : cluster(sim, os::ClusterConfig{}),
        addresses(os::AddressMap::for_cluster(cluster)),
        ip0(cluster.node(0), cfg, addresses),
        ip1(cluster.node(1), cfg, addresses),
        tcp0(ip0, cfg),
        tcp1(ip1, cfg) {}
};

TEST(TcpSmoke, HandshakeAndTransfer) {
  TcpFixture f;
  f.tcp1.listen(5000);

  bool client_done = false;
  bool server_done = false;
  net::Buffer payload = net::Buffer::pattern(100000, 7);

  auto client = [](TcpFixture& fx, net::Buffer data,
                   bool& done) -> sim::Task {
    auto& s = fx.tcp0.create_socket();
    const bool ok = co_await s.connect(1, 5000);
    EXPECT_TRUE(ok);
    const auto n = co_await s.send(data);
    EXPECT_EQ(n, data.size());
    s.close();
    done = true;
  };
  auto server = [](TcpFixture& fx, net::Buffer expect,
                   bool& done) -> sim::Task {
    tcpip::TcpSocket* s = co_await fx.tcp1.accept(5000);
    net::Buffer got = co_await s->recv_exact(expect.size());
    EXPECT_EQ(got.size(), expect.size());
    EXPECT_TRUE(got.content_equals(expect));
    // Drain to EOF.
    net::Buffer eof = co_await s->recv(1024);
    EXPECT_EQ(eof.size(), 0);
    EXPECT_TRUE(s->peer_closed());
    done = true;
  };

  client(f, payload, client_done);
  server(f, payload, server_done);
  f.sim.run();

  EXPECT_TRUE(client_done);
  EXPECT_TRUE(server_done);
}

TEST(TcpSmoke, RecoversFromLoss) {
  TcpFixture f;
  f.tcp1.listen(5000);
  // Drop a handful of frames from node0 towards the switch.
  auto& faults = f.cluster.link(0).faults(0);
  faults.drop_frame_index(5);
  faults.drop_frame_index(9);
  faults.drop_frame_index(17);

  bool server_done = false;
  net::Buffer payload = net::Buffer::pattern(200000, 11);

  auto client = [](TcpFixture& fx, net::Buffer data) -> sim::Task {
    auto& s = fx.tcp0.create_socket();
    (void)co_await s.connect(1, 5000);
    (void)co_await s.send(data);
    s.close();
  };
  auto server = [](TcpFixture& fx, net::Buffer expect,
                   bool& done) -> sim::Task {
    tcpip::TcpSocket* s = co_await fx.tcp1.accept(5000);
    net::Buffer got = co_await s->recv_exact(expect.size());
    EXPECT_TRUE(got.content_equals(expect));
    done = true;
  };

  client(f, payload);
  server(f, payload, server_done);
  f.sim.run_until(sim::seconds(5));

  EXPECT_TRUE(server_done);
}

}  // namespace
}  // namespace clicsim
