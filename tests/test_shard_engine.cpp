// Shard-engine unit tests: the conservative-PDES primitives themselves
// (barrier windows, cross-shard mailboxes, lookahead validation) plus the
// topology-level guarantees the testbeds rely on — positive lookahead on
// every cross-shard link and bit-identical sharded execution.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "apps/chaos.hpp"
#include "apps/testbed.hpp"
#include "net/link.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace clicsim {
namespace {

TEST(ShardGroup, DeclareChannelRejectsNonPositiveLookahead) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  EXPECT_THROW(group.declare_channel(0, 1, 0, "test channel"),
               std::logic_error);
  EXPECT_THROW(group.declare_channel(0, 1, -5, "test channel"),
               std::logic_error);
  EXPECT_NO_THROW(group.declare_channel(0, 1, 1, "test channel"));
  // Intra-shard "channels" impose no window constraint and are ignored.
  EXPECT_NO_THROW(group.declare_channel(1, 1, 0, "self channel"));
}

// A link whose propagation cancels the serialization floor would be a
// zero-lookahead channel; the topology builder must refuse to wire it
// across shards rather than let the window collapse.
TEST(ShardGroup, ClusterBuildRejectsZeroLookaheadCrossShardLink) {
  os::ClusterConfig cc;
  cc.nodes = 2;
  cc.shards = 3;
  cc.link.propagation = -net::kDeliveryFloor;
  EXPECT_THROW(apps::ClicBed bed(cc), std::logic_error);
  // The same physics on one shard has no cross-shard channel to violate.
  cc.shards = 1;
  EXPECT_NO_THROW(apps::ClicBed bed(cc));
}

TEST(ShardGroup, SingleShardDelegatesToHomeSimulator) {
  sim::Simulator home;
  sim::ShardGroup group(home, 1);
  int fired = 0;
  home.at(100, [&fired] { ++fired; });
  EXPECT_EQ(group.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(group.now(), 100);
  EXPECT_EQ(group.events_executed(), home.events_executed());
}

TEST(ShardGroup, CrossShardPostsDeliverInsideWindows) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  const sim::SimTime lookahead = 1000;
  group.declare_channel(0, 1, lookahead, "a->b");
  group.declare_channel(1, 0, lookahead, "b->a");

  // Ping-pong across the shard boundary: each hop schedules the next via
  // the mailbox, always exactly `lookahead` ahead of the sending event.
  struct Hop {
    sim::ShardGroup* group = nullptr;
    int count = 0;
    std::vector<sim::SimTime> times;
    void bounce(int from, sim::SimTime at) {
      times.push_back(at);
      if (++count >= 6) return;
      const sim::SimTime next = at + 1000;
      group->post(from, 1 - from, next,
                  [this, to = 1 - from, next] { bounce(to, next); });
    }
  };
  Hop hop;
  hop.group = &group;
  home.at(0, [&hop] { hop.bounce(0, 0); });
  group.run();

  EXPECT_EQ(hop.count, 6);
  EXPECT_EQ(hop.times,
            (std::vector<sim::SimTime>{0, 1000, 2000, 3000, 4000, 5000}));
  EXPECT_EQ(group.events_executed(), 6u);
  EXPECT_EQ(group.now(), 5000);
  EXPECT_FALSE(group.pending());
}

// Two source shards posting to shard 0 for the same instant must inject in
// ascending source-shard order (the (time, src-shard, post-order) merge
// rule) — run repeatedly, the order is structural, not a race winner.
TEST(ShardGroup, SameTimeCrossShardMergeIsSourceOrdered) {
  for (int rep = 0; rep < 16; ++rep) {
    sim::Simulator home;
    sim::ShardGroup group(home, 3);
    group.declare_channel(1, 0, 500, "1->0");
    group.declare_channel(2, 0, 500, "2->0");

    std::vector<int> order;
    // Seed one event on each source shard; both post to shard 0 at the
    // same absolute time.
    group.shard(1).at(0, [&group, &order] {
      group.post(1, 0, 500, [&order] { order.push_back(1); });
      group.post(1, 0, 500, [&order] { order.push_back(10); });
    });
    group.shard(2).at(0, [&group, &order] {
      group.post(2, 0, 500, [&order] { order.push_back(2); });
    });
    group.run();
    EXPECT_EQ(order, (std::vector<int>{1, 10, 2})) << "rep " << rep;
  }
}

TEST(ShardGroup, RunUntilLeavesEveryShardClockAtBound) {
  sim::Simulator home;
  sim::ShardGroup group(home, 3);
  group.declare_channel(0, 1, 500, "a");
  group.declare_channel(0, 2, 500, "b");
  int fired = 0;
  group.shard(1).at(250, [&fired] { ++fired; });
  group.run_until(10000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(group.now(), 10000);
  for (int i = 0; i < group.shards(); ++i) {
    EXPECT_EQ(group.shard(i).now(), 10000) << "shard " << i;
  }
  // And an empty follow-up window is a no-op that stays at the bound.
  EXPECT_EQ(group.run_until(10000), 0u);
  EXPECT_EQ(group.now(), 10000);
}

TEST(ShardGroup, WorkerExceptionPropagatesToCaller) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  group.declare_channel(0, 1, 500, "a");
  group.shard(1).at(100, [] { throw std::runtime_error("shard boom"); });
  EXPECT_THROW(group.run(), std::runtime_error);
}

// End-to-end: a sharded 8-node CLIC all-neighbors run must match the
// single-shard run event for event (count, clock, delivery totals).
TEST(ShardGroup, ShardedClicBedMatchesSingleShardRun) {
  auto trial = [](int shards) {
    os::ClusterConfig cc;
    cc.nodes = 8;
    cc.shards = shards;
    apps::ClicBed bed(cc);
    for (int n = 0; n < cc.nodes; ++n) bed.module(n).bind_port(9);

    struct Run {
      static sim::Task tx(clic::ClicModule& m, int dst, int* ok) {
        auto st = co_await m.send(9, dst, 9, net::Buffer::zeros(20000),
                                  clic::SendMode::kConfirmed);
        if (st.ok) ++*ok;
      }
      static sim::Task rx(clic::ClicModule& m, int* got) {
        (void)co_await m.recv(9);
        ++*got;
      }
    };
    // One counter slot per node: a node's events run on its shard's
    // thread, so shared plain ints here would race under --shards > 1.
    std::vector<int> ok(static_cast<std::size_t>(cc.nodes), 0);
    std::vector<int> got(static_cast<std::size_t>(cc.nodes), 0);
    for (int n = 0; n < cc.nodes; ++n) {
      const int dst = (n + 1) % cc.nodes;
      bed.sim_of(n).at(0, [&bed, n, dst, &ok] {
        Run::tx(bed.module(n), dst, &ok[static_cast<std::size_t>(n)]);
      });
      Run::rx(bed.module(dst), &got[static_cast<std::size_t>(dst)]);
    }
    bed.run();
    int ok_total = 0;
    int got_total = 0;
    for (int n = 0; n < cc.nodes; ++n) {
      ok_total += ok[static_cast<std::size_t>(n)];
      got_total += got[static_cast<std::size_t>(n)];
    }
    EXPECT_EQ(ok_total, cc.nodes);
    EXPECT_EQ(got_total, cc.nodes);
    struct Result {
      std::uint64_t events;
      sim::SimTime clock;
      bool operator==(const Result&) const = default;
    };
    return Result{bed.events_executed(), bed.now()};
  };

  const auto base = trial(1);
  EXPECT_GT(base.events, 0u);
  for (const int shards : {2, 4, 9}) {
    EXPECT_EQ(base, trial(shards)) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace clicsim
