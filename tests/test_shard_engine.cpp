// Shard-engine unit tests: the conservative-PDES primitives themselves
// (barrier windows, cross-shard mailboxes, lookahead validation) plus the
// topology-level guarantees the testbeds rely on — positive lookahead on
// every cross-shard link and bit-identical sharded execution.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/chaos.hpp"
#include "apps/testbed.hpp"
#include "net/link.hpp"
#include "sim/mailbox.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace clicsim {
namespace {

TEST(ShardGroup, DeclareChannelRejectsNonPositiveLookahead) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  EXPECT_THROW(group.declare_channel(0, 1, 0, "test channel"),
               std::logic_error);
  EXPECT_THROW(group.declare_channel(0, 1, -5, "test channel"),
               std::logic_error);
  EXPECT_NO_THROW(group.declare_channel(0, 1, 1, "test channel"));
  // Intra-shard "channels" impose no window constraint and are ignored.
  EXPECT_NO_THROW(group.declare_channel(1, 1, 0, "self channel"));
}

// A link whose propagation cancels the serialization floor would be a
// zero-lookahead channel; the topology builder must refuse to wire it
// across shards rather than let the window collapse.
TEST(ShardGroup, ClusterBuildRejectsZeroLookaheadCrossShardLink) {
  os::ClusterConfig cc;
  cc.nodes = 2;
  cc.shards = 3;
  cc.link.propagation = -net::kDeliveryFloor;
  EXPECT_THROW(apps::ClicBed bed(cc), std::logic_error);
  // The same physics on one shard has no cross-shard channel to violate.
  cc.shards = 1;
  EXPECT_NO_THROW(apps::ClicBed bed(cc));
}

TEST(ShardGroup, SingleShardDelegatesToHomeSimulator) {
  sim::Simulator home;
  sim::ShardGroup group(home, 1);
  int fired = 0;
  home.at(100, [&fired] { ++fired; });
  EXPECT_EQ(group.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(group.now(), 100);
  EXPECT_EQ(group.events_executed(), home.events_executed());
}

TEST(ShardGroup, CrossShardPostsDeliverInsideWindows) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  const sim::SimTime lookahead = 1000;
  group.declare_channel(0, 1, lookahead, "a->b");
  group.declare_channel(1, 0, lookahead, "b->a");

  // Ping-pong across the shard boundary: each hop schedules the next via
  // the mailbox, always exactly `lookahead` ahead of the sending event.
  struct Hop {
    sim::ShardGroup* group = nullptr;
    int count = 0;
    std::vector<sim::SimTime> times;
    void bounce(int from, sim::SimTime at) {
      times.push_back(at);
      if (++count >= 6) return;
      const sim::SimTime next = at + 1000;
      group->post(from, 1 - from, next,
                  [this, to = 1 - from, next] { bounce(to, next); });
    }
  };
  Hop hop;
  hop.group = &group;
  home.at(0, [&hop] { hop.bounce(0, 0); });
  group.run();

  EXPECT_EQ(hop.count, 6);
  EXPECT_EQ(hop.times,
            (std::vector<sim::SimTime>{0, 1000, 2000, 3000, 4000, 5000}));
  EXPECT_EQ(group.events_executed(), 6u);
  EXPECT_EQ(group.now(), 5000);
  EXPECT_FALSE(group.pending());
}

// Two source shards posting to shard 0 for the same instant must inject in
// ascending source-shard order (the (time, src-shard, post-order) merge
// rule) — run repeatedly, the order is structural, not a race winner.
TEST(ShardGroup, SameTimeCrossShardMergeIsSourceOrdered) {
  for (int rep = 0; rep < 16; ++rep) {
    sim::Simulator home;
    sim::ShardGroup group(home, 3);
    group.declare_channel(1, 0, 500, "1->0");
    group.declare_channel(2, 0, 500, "2->0");

    std::vector<int> order;
    // Seed one event on each source shard; both post to shard 0 at the
    // same absolute time.
    group.shard(1).at(0, [&group, &order] {
      group.post(1, 0, 500, [&order] { order.push_back(1); });
      group.post(1, 0, 500, [&order] { order.push_back(10); });
    });
    group.shard(2).at(0, [&group, &order] {
      group.post(2, 0, 500, [&order] { order.push_back(2); });
    });
    group.run();
    EXPECT_EQ(order, (std::vector<int>{1, 10, 2})) << "rep " << rep;
  }
}

// Sources with very different channel lookaheads posting for the same
// instant still inject source-ascending, FIFO within a source: the merge
// rule keys on the source shard, never on how wide its channel is.
TEST(ShardGroup, SameTimeMergeUnderHeterogeneousLookaheads) {
  for (int rep = 0; rep < 8; ++rep) {
    sim::Simulator home;
    sim::ShardGroup group(home, 4);
    group.declare_channel(1, 0, 300, "1->0");
    group.declare_channel(2, 0, 700, "2->0");
    group.declare_channel(3, 0, 500, "3->0");

    std::vector<int> order;
    // All three sources fire at t = 0 in the same window and post for the
    // same arrival instant (each >= its own channel's lookahead).
    group.shard(1).at(0, [&group, &order] {
      group.post(1, 0, 700, [&order] { order.push_back(1); });
      group.post(1, 0, 700, [&order] { order.push_back(10); });
    });
    group.shard(2).at(0, [&group, &order] {
      group.post(2, 0, 700, [&order] { order.push_back(2); });
    });
    group.shard(3).at(0, [&group, &order] {
      group.post(3, 0, 700, [&order] { order.push_back(3); });
    });
    group.run();
    EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 3})) << "rep " << rep;
  }
}

// A burst large enough to regrow the mailbox's backing vector several
// times must still drain in exact post order (same-time events, so the
// order is pure FIFO tie-breaking), and a second burst must reuse the
// retained capacity with the same guarantee.
TEST(ShardGroup, MailboxFifoPreservedAcrossRegrowth) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  group.declare_channel(1, 0, 100, "1->0");

  constexpr int kPosts = 300;
  std::vector<int> order;
  order.reserve(2 * kPosts);
  for (const sim::SimTime start : {sim::SimTime{0}, sim::SimTime{5000}}) {
    group.shard(1).at(start, [&group, &order, start] {
      for (int i = 0; i < kPosts; ++i) {
        group.post(1, 0, start + 100, [&order, i] { order.push_back(i); });
      }
    });
  }
  group.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * kPosts));
  for (int i = 0; i < 2 * kPosts; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i % kPosts) << "slot " << i;
  }
}

TEST(SpscMailbox, DrainReturnsFifoAndLeavesBoxEmpty) {
  sim::SpscMailbox box;
  EXPECT_TRUE(box.empty());
  std::vector<int> seen;
  for (int i = 0; i < 200; ++i) {
    box.post(i, [&seen, i] { seen.push_back(i); });
  }
  EXPECT_EQ(box.size(), 200u);
  std::vector<sim::PostedEvent> out;
  box.drain_into(out);
  EXPECT_TRUE(box.empty());
  ASSERT_EQ(out.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].when, i);
    out[static_cast<std::size_t>(i)].action();
    EXPECT_EQ(seen.back(), i);
  }
}

// Regression for the transitive-wakeup hole: shard 0's only *declared*
// source (shard 2) is idle, but shard 0's own outbound chain 0→1→2 wakes
// it, and it then posts back to shard 0 at t=310 — far earlier than shard
// 0's next queued event at t=1s. The window algebra must hold shard 0 at
// W[0] = E[2] + L[2][0] = 310 via the relaxation E over the lookahead
// graph; bounding it by published next-event times alone would let shard 0
// run to 1s and the returning post would land behind its clock (the
// destination simulator throws "scheduling into the past").
TEST(ShardGroup, TransitiveWakeupBoundsIdleSourceWindows) {
  sim::Simulator home;
  sim::ShardGroup group(home, 3);
  group.declare_channel(0, 1, 100, "0->1");
  group.declare_channel(1, 2, 100, "1->2");
  group.declare_channel(2, 0, 100, "2->0");

  sim::SimTime ring_done = -1;
  home.at(10, [&group, &ring_done] {
    group.post(0, 1, 110, [&group, &ring_done] {
      group.post(1, 2, 210, [&group, &ring_done] {
        group.post(2, 0, 310, [&ring_done] { ring_done = 310; });
      });
    });
  });
  home.at(sim::seconds(1.0), [] {});  // far-future bait on the destination
  EXPECT_NO_THROW(group.run());
  EXPECT_EQ(ring_done, 310);
  EXPECT_EQ(group.now(), sim::seconds(1.0));
}

// Property sweep: random channel graphs (ring + chords, heterogeneous
// lookaheads), random hop chains with idle gaps, and a far-future timer on
// every shard (bait for unbounded run-ahead). The window bound must never
// admit an injection behind a destination clock — Simulator::at throws if
// one does — and every hop must execute at exactly the time it was posted
// for (i.e. no earlier than its channel's lookahead after the sender).
TEST(ShardGroup, WindowBoundNeverAdmitsEventInsideLookahead) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull;
    auto rnd = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    const int k = 2 + static_cast<int>(rnd() % 4);  // 2..5 shards
    sim::Simulator home;
    sim::ShardGroup group(home, k);
    std::vector<std::vector<sim::SimTime>> L(
        static_cast<std::size_t>(k),
        std::vector<sim::SimTime>(static_cast<std::size_t>(k), 0));
    auto declare = [&](int s, int d, sim::SimTime la) {
      if (s == d || L[static_cast<std::size_t>(s)][static_cast<std::size_t>(
                        d)] != 0) {
        return;
      }
      L[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] = la;
      group.declare_channel(s, d, la, "prop");
    };
    for (int s = 0; s < k; ++s) {
      declare(s, (s + 1) % k, 100 + static_cast<sim::SimTime>(rnd() % 900));
    }
    for (int c = 0; c < k; ++c) {
      declare(static_cast<int>(rnd() % static_cast<std::uint64_t>(k)),
              static_cast<int>(rnd() % static_cast<std::uint64_t>(k)),
              100 + static_cast<sim::SimTime>(rnd() % 900));
    }

    // One hop chain per shard; each hop re-rolls its next destination among
    // the current shard's declared out-edges and posts at now + L (+ a
    // random idle gap every third hop). Chains are sequential (each hop
    // happens-before the next via mailbox + barrier), so the per-chain
    // state needs no synchronization.
    struct Chain {
      sim::ShardGroup* group = nullptr;
      std::vector<std::vector<sim::SimTime>>* L = nullptr;
      std::uint64_t rng = 0;
      int hops_left = 0;
      int executed = 0;
      sim::SimTime last_time = -1;
      void hop(int at_shard, sim::SimTime now) {
        EXPECT_GE(now, last_time);
        last_time = now;
        ++executed;
        if (--hops_left <= 0) return;
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const int k2 = group->shards();
        for (int probe = 0; probe < k2; ++probe) {
          const int dst = static_cast<int>((rng + static_cast<std::uint64_t>(
                                                      probe)) %
                                           static_cast<std::uint64_t>(k2));
          const sim::SimTime la =
              (*L)[static_cast<std::size_t>(at_shard)]
                  [static_cast<std::size_t>(dst)];
          if (la == 0) continue;
          const sim::SimTime gap =
              executed % 3 == 0 ? static_cast<sim::SimTime>(rng % 5000) : 0;
          const sim::SimTime when = now + la + gap;
          group->post(at_shard, dst, when,
                      [this, dst, when] { hop(dst, when); });
          return;
        }
        hops_left = 0;  // no out-edge: chain ends
      }
    };
    std::vector<Chain> chains(static_cast<std::size_t>(k));
    int expected_min = 0;
    for (int s = 0; s < k; ++s) {
      Chain& ch = chains[static_cast<std::size_t>(s)];
      ch.group = &group;
      ch.L = &L;
      ch.rng = rnd() | 1;
      ch.hops_left = 8 + static_cast<int>(rnd() % 8);
      expected_min += 1;
      const sim::SimTime start = static_cast<sim::SimTime>(rnd() % 1000);
      group.shard(s).at(start, [&ch, s, start] { ch.hop(s, start); });
      // Far-future bait: with the window algebra unsound, some shard runs
      // to here and a returning post lands behind its clock.
      group.shard(s).at(sim::seconds(1.0) + s, [] {});
    }
    EXPECT_NO_THROW(group.run()) << "seed " << seed;
    int total = 0;
    for (const Chain& ch : chains) total += ch.executed;
    EXPECT_GE(total, expected_min) << "seed " << seed;
  }
}

// Worker threads are spawned once and parked between runs: the same OS
// thread must execute a given shard across consecutive run calls (and it
// is never the controlling thread).
TEST(ShardGroup, PersistentWorkersSurviveAcrossRuns) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  group.declare_channel(0, 1, 500, "a");

  std::thread::id first;
  std::thread::id second;
  group.shard(1).at(100, [&first] { first = std::this_thread::get_id(); });
  group.run_until(1000);
  group.shard(1).at(2000, [&second] { second = std::this_thread::get_id(); });
  group.run_until(3000);

  EXPECT_EQ(first, second);
  EXPECT_NE(first, std::this_thread::get_id());
  EXPECT_EQ(group.now(), 3000);
}

// Engine instrumentation: drained events reconcile with posts, every
// released window is counted, and the final all-quiet barrier round is a
// wait but not a window.
TEST(ShardGroup, InstrumentationCountersTrackWindowsAndDrains) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  group.declare_channel(0, 1, 1000, "a->b");
  group.declare_channel(1, 0, 1000, "b->a");

  struct Hop {
    sim::ShardGroup* group = nullptr;
    int count = 0;
    void bounce(int from, sim::SimTime at) {
      if (++count >= 6) return;
      const sim::SimTime next = at + 1000;
      group->post(from, 1 - from, next,
                  [this, to = 1 - from, next] { bounce(to, next); });
    }
  };
  Hop hop;
  hop.group = &group;
  home.at(0, [&hop] { hop.bounce(0, 0); });
  group.run();

  EXPECT_EQ(group.cross_shard_posts(), 5u);
  EXPECT_EQ(group.events_drained(), group.cross_shard_posts());
  EXPECT_GE(group.windows_opened(), 5u);  // one per hop at minimum
  EXPECT_EQ(group.barrier_waits(), group.windows_opened() + 1);

  // A single-shard group never opens a window at all.
  sim::Simulator solo_home;
  sim::ShardGroup solo(solo_home, 1);
  solo_home.at(10, [] {});
  solo.run();
  EXPECT_EQ(solo.windows_opened(), 0u);
  EXPECT_EQ(solo.barrier_waits(), 0u);
  EXPECT_EQ(solo.events_drained(), 0u);
}

// The per-channel matrix must open strictly fewer windows than a uniform
// worst-case (scalar-equivalent) lookahead bound on a multi-tier fabric:
// declaring every shard pair at the global delivery floor reproduces the
// old scalar algebra inside the new engine, and the same workload then
// pays more barrier rounds.
TEST(ShardGroup, MatrixWindowsBeatUniformLookaheadOnFatTree) {
  auto storm_windows = [](bool uniform_floor) {
    os::ClusterConfig cc;
    cc.nodes = 8;
    cc.shards = 4;
    cc.topology = os::TopologySpec::fat_tree();
    apps::ClicBed bed(cc);
    if (uniform_floor) {
      const int k = bed.shards.shards();
      for (int s = 0; s < k; ++s) {
        for (int d = 0; d < k; ++d) {
          if (s != d) {
            bed.shards.declare_channel(s, d, net::kDeliveryFloor,
                                       "uniform floor");
          }
        }
      }
    }
    for (int n = 0; n < cc.nodes; ++n) bed.module(n).bind_port(9);
    struct Run {
      static sim::Task tx(clic::ClicModule& m, int dst, int* ok) {
        auto st = co_await m.send(9, dst, 9, net::Buffer::zeros(20000),
                                  clic::SendMode::kConfirmed);
        if (st.ok) ++*ok;
      }
      static sim::Task rx(clic::ClicModule& m, int* got) {
        (void)co_await m.recv(9);
        ++*got;
      }
    };
    std::vector<int> ok(static_cast<std::size_t>(cc.nodes), 0);
    std::vector<int> got(static_cast<std::size_t>(cc.nodes), 0);
    for (int n = 0; n < cc.nodes; ++n) {
      const int dst = (n + 1) % cc.nodes;
      bed.sim_of(n).at(0, [&bed, n, dst, &ok] {
        Run::tx(bed.module(n), dst, &ok[static_cast<std::size_t>(n)]);
      });
      Run::rx(bed.module(dst), &got[static_cast<std::size_t>(dst)]);
    }
    bed.run();
    int delivered = 0;
    for (const int g : got) delivered += g;
    EXPECT_EQ(delivered, cc.nodes);
    return bed.shards.windows_opened();
  };

  const std::uint64_t matrix = storm_windows(false);
  const std::uint64_t uniform = storm_windows(true);
  EXPECT_GT(matrix, 0u);
  EXPECT_LT(matrix, uniform);
}

TEST(ShardGroup, RunUntilLeavesEveryShardClockAtBound) {
  sim::Simulator home;
  sim::ShardGroup group(home, 3);
  group.declare_channel(0, 1, 500, "a");
  group.declare_channel(0, 2, 500, "b");
  int fired = 0;
  group.shard(1).at(250, [&fired] { ++fired; });
  group.run_until(10000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(group.now(), 10000);
  for (int i = 0; i < group.shards(); ++i) {
    EXPECT_EQ(group.shard(i).now(), 10000) << "shard " << i;
  }
  // And an empty follow-up window is a no-op that stays at the bound.
  EXPECT_EQ(group.run_until(10000), 0u);
  EXPECT_EQ(group.now(), 10000);
}

TEST(ShardGroup, WorkerExceptionPropagatesToCaller) {
  sim::Simulator home;
  sim::ShardGroup group(home, 2);
  group.declare_channel(0, 1, 500, "a");
  group.shard(1).at(100, [] { throw std::runtime_error("shard boom"); });
  EXPECT_THROW(group.run(), std::runtime_error);
}

// End-to-end: a sharded 8-node CLIC all-neighbors run must match the
// single-shard run event for event (count, clock, delivery totals).
TEST(ShardGroup, ShardedClicBedMatchesSingleShardRun) {
  auto trial = [](int shards) {
    os::ClusterConfig cc;
    cc.nodes = 8;
    cc.shards = shards;
    apps::ClicBed bed(cc);
    for (int n = 0; n < cc.nodes; ++n) bed.module(n).bind_port(9);

    struct Run {
      static sim::Task tx(clic::ClicModule& m, int dst, int* ok) {
        auto st = co_await m.send(9, dst, 9, net::Buffer::zeros(20000),
                                  clic::SendMode::kConfirmed);
        if (st.ok) ++*ok;
      }
      static sim::Task rx(clic::ClicModule& m, int* got) {
        (void)co_await m.recv(9);
        ++*got;
      }
    };
    // One counter slot per node: a node's events run on its shard's
    // thread, so shared plain ints here would race under --shards > 1.
    std::vector<int> ok(static_cast<std::size_t>(cc.nodes), 0);
    std::vector<int> got(static_cast<std::size_t>(cc.nodes), 0);
    for (int n = 0; n < cc.nodes; ++n) {
      const int dst = (n + 1) % cc.nodes;
      bed.sim_of(n).at(0, [&bed, n, dst, &ok] {
        Run::tx(bed.module(n), dst, &ok[static_cast<std::size_t>(n)]);
      });
      Run::rx(bed.module(dst), &got[static_cast<std::size_t>(dst)]);
    }
    bed.run();
    int ok_total = 0;
    int got_total = 0;
    for (int n = 0; n < cc.nodes; ++n) {
      ok_total += ok[static_cast<std::size_t>(n)];
      got_total += got[static_cast<std::size_t>(n)];
    }
    EXPECT_EQ(ok_total, cc.nodes);
    EXPECT_EQ(got_total, cc.nodes);
    struct Result {
      std::uint64_t events;
      sim::SimTime clock;
      bool operator==(const Result&) const = default;
    };
    return Result{bed.events_executed(), bed.now()};
  };

  const auto base = trial(1);
  EXPECT_GT(base.events, 0u);
  for (const int shards : {2, 4, 9}) {
    EXPECT_EQ(base, trial(shards)) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace clicsim
