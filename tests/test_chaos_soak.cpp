// Chaos soak: randomized cluster-wide fault campaigns (carrier flaps,
// switch-port kills, NIC stalls, Gilbert–Elliott bursts, duplication,
// reordering) against both protocol stacks, enforcing bounded-failure
// liveness — every confirmed send resolves, delivery is exactly-once (or
// at-most-once for cleanly failed sends), the simulator quiesces and no
// orphan timers survive. Every assertion message carries the campaign
// seed: `run_chaos_campaign({.seed = N})` replays the exact storm.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "apps/chaos.hpp"
#include "apps/testbed.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_executor.hpp"

namespace clicsim {
namespace {

// --- FaultPlan mechanics ----------------------------------------------------

TEST(FaultPlan, ScriptedOutageFiresFailAndRestoreOnce) {
  sim::Simulator sim;
  sim::FaultPlan plan(sim, 42);
  int fails = 0;
  int restores = 0;
  const int t = plan.add_target(
      "t", [&] { ++fails; }, [&] { ++restores; });
  plan.fail_between(t, sim::milliseconds(1.0), sim::milliseconds(2.0));
  sim.run_until(sim::milliseconds(10.0));
  EXPECT_EQ(fails, 1);
  EXPECT_EQ(restores, 1);
  EXPECT_EQ(plan.active_failures(), 0);
}

TEST(FaultPlan, OverlappingOutagesNestWithoutGlitches) {
  sim::Simulator sim;
  sim::FaultPlan plan(sim, 42);
  std::vector<std::string> events;
  const int t = plan.add_target(
      "t", [&] { events.push_back("down"); },
      [&] { events.push_back("up"); });
  plan.fail_between(t, sim::milliseconds(1.0), sim::milliseconds(5.0));
  plan.fail_between(t, sim::milliseconds(3.0), sim::milliseconds(8.0));
  sim.run_until(sim::milliseconds(10.0));
  // One down at 1 ms, one up at 8 ms — no spurious toggles at 3/5 ms.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "down");
  EXPECT_EQ(events[1], "up");
}

TEST(FaultPlan, RandomCampaignHealsEverythingByEnd) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Simulator sim;
    sim::FaultPlan plan(sim, seed);
    int down = 0;
    for (int i = 0; i < 6; ++i) {
      plan.add_target(std::to_string(i), [&] { ++down; },
                      [&] { --down; });
    }
    sim::FaultPlan::Campaign c;
    c.end = sim::milliseconds(100.0);
    c.outages = 10;
    plan.randomize(c);
    EXPECT_GT(plan.outages_scheduled(), 0u) << "seed " << seed;
    sim.run_until(sim::milliseconds(100.0));
    EXPECT_EQ(down, 0) << "unhealed outage, seed " << seed;
    EXPECT_EQ(plan.active_failures(), 0) << "seed " << seed;
  }
}

TEST(FaultPlan, SameSeedSchedulesIdenticalCampaigns) {
  // (target, time, went_down) triples — the full observable schedule.
  using Event = std::tuple<int, sim::SimTime, bool>;
  auto trace = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultPlan plan(sim, seed);
    std::vector<Event> events;
    for (int i = 0; i < 4; ++i) {
      plan.add_target(
          std::to_string(i),
          [&events, &sim, i] { events.emplace_back(i, sim.now(), true); },
          [&events, &sim, i] { events.emplace_back(i, sim.now(), false); });
    }
    sim::FaultPlan::Campaign c;
    c.outages = 8;
    plan.randomize(c);
    sim.run_until(sim::seconds(2.0));
    return events;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(FaultPlan, ClusterTargetsCoverLinksPortsAndNics) {
  apps::ClicBed bed;
  sim::FaultPlan plan(bed.sim, 1);
  apps::register_cluster_targets(plan, bed.cluster);
  // 2 nodes × 1 NIC: 2 carriers + 2 NIC stalls + 2 switch ports.
  EXPECT_EQ(plan.target_count(), 6);
}

// --- Full campaigns: CLIC ---------------------------------------------------

class ClicChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClicChaos, CampaignSatisfiesBoundedFailureLiveness) {
  apps::ChaosOptions o;
  o.stack = apps::ChaosStack::kClic;
  o.seed = GetParam();
  const apps::ChaosReport r = apps::run_chaos_campaign(o);
  EXPECT_TRUE(r.liveness_ok()) << "campaign seed " << r.seed << ": "
                               << r.summary();
  EXPECT_EQ(r.resolved, r.messages)
      << "hung send, campaign seed " << r.seed;
  // The storm must actually have happened.
  EXPECT_GT(r.fault_events, 0u) << "campaign seed " << r.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClicChaos,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Full campaigns: adaptive CLIC ------------------------------------------

class ClicChaosAdaptive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClicChaosAdaptive, CampaignSatisfiesBoundedFailureLiveness) {
  apps::ChaosOptions o;
  o.stack = apps::ChaosStack::kClic;
  o.adaptive = true;
  o.seed = GetParam();
  const apps::ChaosReport r = apps::run_chaos_campaign(o);
  EXPECT_TRUE(r.liveness_ok()) << "campaign seed " << r.seed << ": "
                               << r.summary();
  EXPECT_EQ(r.resolved, r.messages)
      << "hung send, campaign seed " << r.seed;
  EXPECT_GT(r.fault_events, 0u) << "campaign seed " << r.seed;
  // The adaptive machinery must actually have engaged under the storm.
  EXPECT_TRUE(r.adaptive) << "campaign seed " << r.seed;
  EXPECT_GT(r.rtt_samples, 0u) << "campaign seed " << r.seed;
  // Sharding the same campaign must not change one observable number.
  apps::ChaosOptions sharded = o;
  sharded.shards = 2;
  EXPECT_EQ(apps::run_chaos_campaign(sharded).summary(), r.summary())
      << "campaign seed " << r.seed << " diverged at --shards 2";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClicChaosAdaptive,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Full campaigns: TCP ----------------------------------------------------

class TcpChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpChaos, CampaignSatisfiesBoundedFailureLiveness) {
  apps::ChaosOptions o;
  o.stack = apps::ChaosStack::kTcp;
  o.seed = GetParam();
  o.messages = 12;  // TCP pays a handshake per message; keep the mesh lean
  const apps::ChaosReport r = apps::run_chaos_campaign(o);
  EXPECT_TRUE(r.liveness_ok()) << "campaign seed " << r.seed << ": "
                               << r.summary();
  // TCP never abandons a connection here, so after the faults heal every
  // stream must complete.
  EXPECT_EQ(r.delivered, r.messages)
      << "campaign seed " << r.seed << ": " << r.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpChaos,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Determinism ------------------------------------------------------------

TEST(ChaosDeterminism, SameSeedSameReport) {
  apps::ChaosOptions o;
  o.seed = 99;
  const std::string a = apps::run_chaos_campaign(o).summary();
  const std::string b = apps::run_chaos_campaign(o).summary();
  EXPECT_EQ(a, b);
}

TEST(ChaosDeterminism, AdaptiveSameSeedSameReport) {
  apps::ChaosOptions o;
  o.seed = 99;
  o.adaptive = true;
  const std::string a = apps::run_chaos_campaign(o).summary();
  const std::string b = apps::run_chaos_campaign(o).summary();
  EXPECT_EQ(a, b);
  // The adaptive schedule is a genuinely different (and still
  // deterministic) execution, not a relabeled fixed-clock run.
  apps::ChaosOptions fixed;
  fixed.seed = 99;
  EXPECT_NE(a, apps::run_chaos_campaign(fixed).summary());
}

TEST(ChaosDeterminism, ParallelMatchesSerial) {
  constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14};
  constexpr std::size_t kN = std::size(kSeeds);

  auto campaign = [&](std::size_t i) {
    apps::ChaosOptions o;
    o.seed = kSeeds[i];
    o.messages = 12;
    o.adaptive = (i % 2 == 1);  // mixed fleet: fixed and adaptive stacks
    return apps::run_chaos_campaign(o).summary();
  };

  std::vector<std::string> serial(kN);
  for (std::size_t i = 0; i < kN; ++i) serial[i] = campaign(i);

  for (int threads : {2, 8}) {
    std::vector<std::string> parallel(kN);
    sim::ParallelExecutor pool(threads);
    pool.run_indexed(kN, [&](std::size_t i) { parallel[i] = campaign(i); });
    EXPECT_EQ(parallel, serial) << "-j" << threads
                                << " diverged from serial";
  }
}

}  // namespace
}  // namespace clicsim
