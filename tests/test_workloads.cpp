// Tests for the measurement workloads library and the extra MPI
// collectives (scatter, alltoall).
#include <gtest/gtest.h>

#include "apps/workloads.hpp"

namespace clicsim {
namespace {

// --- Sweep helpers ---------------------------------------------------------------

TEST(Workloads, SweepSizesAreLogSpacedAndCoverRange) {
  const auto sizes = apps::sweep_sizes(16, 1 << 20, 3);
  ASSERT_GE(sizes.size(), 10u);
  EXPECT_EQ(sizes.front(), 16);
  EXPECT_EQ(sizes.back(), 1 << 20);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
}

TEST(Workloads, SweepSizesRejectsBadRanges) {
  EXPECT_THROW((void)apps::sweep_sizes(0, 100, 3), std::invalid_argument);
  EXPECT_THROW((void)apps::sweep_sizes(100, 10, 3), std::invalid_argument);
}

TEST(Workloads, ToMbpsMath) {
  // 1 MB in 1 ms = 8 Gb/s... in our units: bytes*8e3/ns.
  EXPECT_DOUBLE_EQ(apps::to_mbps(125, sim::microseconds(1.0)), 1000.0);
  EXPECT_DOUBLE_EQ(apps::to_mbps(100, 0), 0.0);
}

TEST(Workloads, BandwidthSeriesEvaluatesEachSize) {
  const std::vector<std::int64_t> sizes{100, 1000};
  auto series = apps::bandwidth_series(
      "test", sizes,
      [](std::int64_t n) { return sim::SimTime{n * 10}; });  // 10 ns/B
  ASSERT_EQ(series.points().size(), 2u);
  EXPECT_DOUBLE_EQ(series.points()[0].y, series.points()[1].y);  // flat rate
}

// --- Stream drivers ---------------------------------------------------------------

TEST(Workloads, ClicStreamReportsConsistentStats) {
  apps::Scenario s;
  const auto st = apps::clic_stream(s, 64 * 1024, 2 * 1024 * 1024);
  EXPECT_EQ(st.bytes, 2 * 1024 * 1024);
  EXPECT_GT(st.mbps, 100.0);
  EXPECT_LT(st.mbps, 1000.0);
  EXPECT_GT(st.rx_cpu, 0.0);
  EXPECT_LT(st.rx_cpu, 1.0);
  EXPECT_GT(st.rx_frames, 200u);
  EXPECT_GT(st.rx_interrupts, 0u);
  EXPECT_LE(st.rx_interrupts, st.rx_frames);
  EXPECT_EQ(st.rx_ring_drops, 0u);
}

TEST(Workloads, StreamingBeatsPingPongBandwidth) {
  apps::Scenario s;
  const double stream = apps::clic_stream(s, 64 * 1024, 2 * 1024 * 1024).mbps;
  const double pp =
      apps::to_mbps(64 * 1024, apps::clic_one_way(s, 64 * 1024));
  EXPECT_GT(stream, pp);  // pipelining beats one-outstanding
}

TEST(Workloads, MtuMattersForClicStreams) {
  apps::Scenario jumbo;
  apps::Scenario standard;
  standard.mtu = 1500;
  const double a = apps::clic_stream(jumbo, 256 * 1024, 4 << 20).mbps;
  const double b = apps::clic_stream(standard, 256 * 1024, 4 << 20).mbps;
  EXPECT_GT(a, b);
}

// --- Extra collectives ---------------------------------------------------------------

TEST(MpiCollectives, ScatterDeliversDistinctChunks) {
  os::ClusterConfig cc;
  cc.nodes = 4;
  apps::MpiClicBed bed(cc);
  int ok = 0;
  struct Run {
    static sim::Task go(mpi::Communicator& c, int* ok) {
      std::vector<net::Buffer> chunks;
      if (c.rank() == 0) {
        for (int i = 0; i < c.size(); ++i) {
          chunks.push_back(net::Buffer::pattern(1000 + i, i));
        }
      }
      net::Buffer mine = co_await c.scatter(0, std::move(chunks));
      if (mine.size() == 1000 + c.rank() &&
          mine.content_equals(net::Buffer::pattern(1000 + c.rank(),
                                                   c.rank()))) {
        ++*ok;
      }
    }
  };
  for (int i = 0; i < 4; ++i) Run::go(bed.comm(i), &ok);
  bed.sim().run();
  EXPECT_EQ(ok, 4);
}

TEST(MpiCollectives, AlltoallPersonalizedExchange) {
  os::ClusterConfig cc;
  cc.nodes = 4;
  apps::MpiClicBed bed(cc);
  int ok = 0;
  struct Run {
    static sim::Task go(mpi::Communicator& c, int* ok) {
      // Rank r sends pattern seeded r*10+j to rank j.
      std::vector<net::Buffer> chunks;
      for (int j = 0; j < c.size(); ++j) {
        chunks.push_back(net::Buffer::pattern(500, c.rank() * 10 + j));
      }
      auto got = co_await c.alltoall(std::move(chunks));
      bool all = got.size() == static_cast<std::size_t>(c.size());
      for (int src = 0; all && src < c.size(); ++src) {
        all = got[static_cast<std::size_t>(src)].content_equals(
            net::Buffer::pattern(500, src * 10 + c.rank()));
      }
      if (all) ++*ok;
    }
  };
  for (int i = 0; i < 4; ++i) Run::go(bed.comm(i), &ok);
  bed.sim().run();
  EXPECT_EQ(ok, 4);
}

TEST(MpiCollectives, ScatterOnTcpTransport) {
  os::ClusterConfig cc;
  cc.nodes = 3;
  apps::MpiTcpBed bed(cc);
  int ok = 0;
  struct Run {
    static sim::Task go(apps::MpiTcpBed& bed, int* ok) {
      (void)co_await bed.connect();
      for (int i = 0; i < 3; ++i) body(bed.comm(i), ok);
    }
    static sim::Task body(mpi::Communicator& c, int* ok) {
      std::vector<net::Buffer> chunks;
      if (c.rank() == 1) {
        for (int i = 0; i < c.size(); ++i) {
          chunks.push_back(net::Buffer::zeros(2048));
        }
      }
      net::Buffer mine = co_await c.scatter(1, std::move(chunks));
      if (mine.size() == 2048) ++*ok;
    }
  };
  Run::go(bed, &ok);
  bed.sim().run();
  EXPECT_EQ(ok, 3);
}

}  // namespace
}  // namespace clicsim
