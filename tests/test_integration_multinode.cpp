// Larger integration scenarios: many nodes, many ports, protocol
// coexistence on one driver, switch congestion, and mixed workloads.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "sim/task.hpp"
#include "tcpip/ip.hpp"
#include "tcpip/tcp.hpp"

namespace clicsim {
namespace {

TEST(MultiNode, AllToAllClicIntegrity) {
  constexpr int kNodes = 6;
  os::ClusterConfig cc;
  cc.nodes = kNodes;
  apps::ClicBed bed(cc);
  for (int i = 0; i < kNodes; ++i) bed.module(i).bind_port(1);

  struct Run {
    static sim::Task tx(clic::ClicModule& m, int self, int nodes) {
      for (int dst = 0; dst < nodes; ++dst) {
        if (dst == self) continue;
        (void)co_await m.send(1, dst, 1,
                              net::Buffer::pattern(5000 + self, self));
      }
    }
    static sim::Task rx(clic::ClicModule& m, int nodes, int* ok) {
      for (int i = 0; i < nodes - 1; ++i) {
        clic::Message got = co_await m.recv(1);
        if (got.data.content_equals(
                net::Buffer::pattern(5000 + got.src_node, got.src_node))) {
          ++*ok;
        }
      }
    }
  };
  int ok = 0;
  for (int i = 0; i < kNodes; ++i) {
    Run::tx(bed.module(i), i, kNodes);
    Run::rx(bed.module(i), kNodes, &ok);
  }
  bed.sim.run();
  EXPECT_EQ(ok, kNodes * (kNodes - 1));
}

TEST(MultiNode, ManyPortsArePairwiseIsolated) {
  apps::ClicBed bed;
  constexpr int kPorts = 16;
  for (int p = 1; p <= kPorts; ++p) {
    bed.module(0).bind_port(p);
    bed.module(1).bind_port(p);
  }
  struct Run {
    static sim::Task tx(clic::ClicModule& m, int port) {
      (void)co_await m.send(port, 1, port, net::Buffer::pattern(100 * port,
                                                                port));
    }
    static sim::Task rx(clic::ClicModule& m, int port, int* ok) {
      clic::Message got = co_await m.recv(port);
      if (got.dst_port == port && got.data.size() == 100 * port) ++*ok;
    }
  };
  int ok = 0;
  for (int p = 1; p <= kPorts; ++p) {
    Run::tx(bed.module(0), p);
    Run::rx(bed.module(1), p, &ok);
  }
  bed.sim.run();
  EXPECT_EQ(ok, kPorts);
}

TEST(MultiNode, ClicAndTcpCoexistOnTheSameDriver) {
  // Both stacks register different ethertypes with the same unmodified
  // driver — the portability property the paper stresses.
  sim::Simulator sim;
  os::Cluster cluster(sim, os::ClusterConfig{});
  auto addresses = os::AddressMap::for_cluster(cluster);

  clic::ClicModule clic0(cluster.node(0), {}, addresses);
  clic::ClicModule clic1(cluster.node(1), {}, addresses);
  tcpip::Config tcfg;
  tcpip::IpLayer ip0(cluster.node(0), tcfg, addresses);
  tcpip::IpLayer ip1(cluster.node(1), tcfg, addresses);
  tcpip::TcpStack tcp0(ip0, tcfg);
  tcpip::TcpStack tcp1(ip1, tcfg);

  clic0.bind_port(1);
  clic1.bind_port(1);
  tcp1.listen(5000);

  struct Run {
    static sim::Task clic_side(clic::ClicModule& a, clic::ClicModule& b,
                               bool* ok) {
      (void)co_await a.send(1, 1, 1, net::Buffer::pattern(9000, 1));
      clic::Message m = co_await b.recv(1);
      *ok = m.data.content_equals(net::Buffer::pattern(9000, 1));
    }
    static sim::Task tcp_client(tcpip::TcpStack& t) {
      auto& s = t.create_socket();
      (void)co_await s.connect(1, 5000);
      (void)co_await s.send(net::Buffer::pattern(9000, 2));
    }
    static sim::Task tcp_server(tcpip::TcpStack& t, bool* ok) {
      auto* s = co_await t.accept(5000);
      net::Buffer got = co_await s->recv_exact(9000);
      *ok = got.content_equals(net::Buffer::pattern(9000, 2));
    }
  };
  bool clic_ok = false;
  bool tcp_ok = false;
  Run::clic_side(clic0, clic1, &clic_ok);
  Run::tcp_client(tcp0);
  Run::tcp_server(tcp1, &tcp_ok);
  sim.run();
  EXPECT_TRUE(clic_ok);
  EXPECT_TRUE(tcp_ok);
}

TEST(MultiNode, IncastThroughTheSwitchRecovers) {
  // Many senders converge on one receiver: the switch's bounded output
  // queue tail-drops, and CLIC's reliable channel retransmits. Everything
  // must arrive exactly once.
  constexpr int kSenders = 5;
  os::ClusterConfig cc;
  cc.nodes = kSenders + 1;
  cc.sw.output_queue_frames = 8;  // tight queue to force congestion drops
  apps::ClicBed bed(cc);
  for (int i = 0; i <= kSenders; ++i) bed.module(i).bind_port(1);

  struct Run {
    static sim::Task tx(clic::ClicModule& m, int self) {
      (void)co_await m.send(1, kSenders, 1,
                            net::Buffer::pattern(120000, self),
                            clic::SendMode::kConfirmed);
    }
    static sim::Task rx(clic::ClicModule& m, int* ok) {
      for (int i = 0; i < kSenders; ++i) {
        clic::Message got = co_await m.recv(1);
        if (got.data.content_equals(
                net::Buffer::pattern(120000, got.src_node))) {
          ++*ok;
        }
      }
    }
  };
  int ok = 0;
  for (int i = 0; i < kSenders; ++i) Run::tx(bed.module(i), i);
  Run::rx(bed.module(kSenders), &ok);
  bed.sim.run_until(sim::seconds(30));
  EXPECT_EQ(ok, kSenders);
  EXPECT_GT(bed.cluster.ethernet_switch().dropped(), 0u);
}

TEST(MultiNode, BidirectionalSimultaneousTransfersComplete) {
  apps::ClicBed bed;
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  struct Run {
    static sim::Task both(clic::ClicModule& m, int peer, int* done) {
      // Full-duplex: send 1 MB while receiving 1 MB.
      auto send_future = m.send(1, peer, 1, net::Buffer::zeros(1 << 20));
      clic::Message got = co_await m.recv(1);
      (void)co_await send_future;
      if (got.data.size() == 1 << 20) ++*done;
    }
  };
  int done = 0;
  Run::both(bed.module(0), 1, &done);
  Run::both(bed.module(1), 0, &done);
  bed.sim.run();
  EXPECT_EQ(done, 2);
}

TEST(MultiNode, RemoteWritesFromManyProducers) {
  constexpr int kProducers = 4;
  os::ClusterConfig cc;
  cc.nodes = kProducers + 1;
  apps::ClicBed bed(cc);
  bed.module(kProducers).register_region(9, 10 << 20);

  struct Run {
    static sim::Task go(clic::ClicModule& m) {
      (void)co_await m.remote_write(kProducers, 9,
                                    net::Buffer::zeros(50000));
    }
  };
  for (int i = 0; i < kProducers; ++i) Run::go(bed.module(i));
  bed.sim.run();
  EXPECT_EQ(bed.module(kProducers).region_bytes(9), 4 * 50000);
}

}  // namespace
}  // namespace clicsim
