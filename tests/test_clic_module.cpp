// Integration tests for CLIC_MODULE: send modes, segmentation, integrity,
// intra-node messaging, remote write, broadcast, kernel functions,
// protection, loss recovery and channel bonding.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

using apps::ClicBed;

sim::Task send_one(clic::ClicModule& m, int port, int dst, net::Buffer data,
                   clic::SendMode mode, bool* done) {
  auto st = co_await m.send(port, dst, port, std::move(data), mode);
  EXPECT_TRUE(st.ok);
  if (done) *done = true;
}

sim::Task recv_one(clic::ClicModule& m, int port, clic::Message* out) {
  *out = co_await m.recv(port);
}

// --- Send/recv basics -------------------------------------------------------------

TEST(ClicModule, ZeroByteMessage) {
  ClicBed bed;
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  bool sent = false;
  clic::Message got;
  send_one(bed.module(0), 5, 1, net::Buffer::zeros(0),
           clic::SendMode::kSync, &sent);
  recv_one(bed.module(1), 5, &got);
  bed.sim.run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(got.data.size(), 0);
  EXPECT_EQ(got.src_node, 0);
}

TEST(ClicModule, SegmentsToMtuAndReassembles) {
  ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  // 10 KB over MTU 1500: ceil(10240 / 1488) = 7 packets.
  net::Buffer payload = net::Buffer::pattern(10240, 17);
  bool sent = false;
  clic::Message got;
  send_one(bed.module(0), 5, 1, payload, clic::SendMode::kSync, &sent);
  recv_one(bed.module(1), 5, &got);
  bed.sim.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(got.data.content_equals(payload));
  auto* ch = bed.module(1).channel_to(0);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->rx_next(), 7u);
}

TEST(ClicModule, MessageArrivingBeforeRecvWaitsInSystemMemory) {
  ClicBed bed;
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  send_one(bed.module(0), 5, 1, net::Buffer::pattern(2000, 3),
           clic::SendMode::kSync, nullptr);
  bed.sim.run();
  EXPECT_TRUE(bed.module(1).poll(5));

  clic::Message got;
  recv_one(bed.module(1), 5, &got);
  bed.sim.run();
  EXPECT_TRUE(got.data.content_equals(net::Buffer::pattern(2000, 3)));
  EXPECT_FALSE(bed.module(1).poll(5));
}

TEST(ClicModule, ConfirmedSendCompletesAfterPeerAck) {
  ClicBed bed;
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  sim::SimTime sync_done = 0;
  sim::SimTime confirmed_done = 0;

  struct Run {
    static sim::Task go(ClicBed& bed, clic::SendMode mode,
                        sim::SimTime* out) {
      (void)co_await bed.module(0).send(5, 1, 5, net::Buffer::zeros(4000),
                                        mode);
      *out = bed.sim.now();
    }
  };
  Run::go(bed, clic::SendMode::kSync, &sync_done);
  bed.sim.run();
  const auto t_sync = sync_done;

  ClicBed bed2;
  bed2.module(0).bind_port(5);
  bed2.module(1).bind_port(5);
  Run::go(bed2, clic::SendMode::kConfirmed, &confirmed_done);
  bed2.sim.run();
  // Confirmation needs the round trip; plain sync only the local DMA.
  EXPECT_GT(confirmed_done, t_sync + sim::microseconds(10));
}

TEST(ClicModule, AsyncSendReturnsBeforeDelivery) {
  ClicBed bed;
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  sim::SimTime async_done = 0;
  struct Run {
    static sim::Task go(ClicBed& bed, sim::SimTime* out) {
      (void)co_await bed.module(0).send(5, 1, 5,
                                        net::Buffer::zeros(1 << 20),
                                        clic::SendMode::kAsync);
      *out = bed.sim.now();
    }
  };
  Run::go(bed, &async_done);
  bed.sim.run();
  // 1 MB takes ~14 ms to move; the async call returns in microseconds...
  EXPECT_LT(async_done, sim::milliseconds(2));
  // ...yet the data still arrives.
  EXPECT_EQ(bed.module(1).messages_received(), 1u);
}

TEST(ClicModule, ManyMessagesKeepOrderPerPortPair) {
  ClicBed bed;
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  struct Run {
    static sim::Task tx(ClicBed& bed) {
      for (int i = 0; i < 20; ++i) {
        (void)co_await bed.module(0).send(
            5, 1, 5, net::Buffer::pattern(100 + i, i));
      }
    }
    static sim::Task rx(ClicBed& bed, int* ok) {
      for (int i = 0; i < 20; ++i) {
        clic::Message m = co_await bed.module(1).recv(5);
        if (m.data.size() == 100 + i &&
            m.data.content_equals(net::Buffer::pattern(100 + i, i))) {
          ++*ok;
        }
      }
    }
  };
  int ok = 0;
  Run::tx(bed);
  Run::rx(bed, &ok);
  bed.sim.run();
  EXPECT_EQ(ok, 20);
}

// --- Intra-node --------------------------------------------------------------------

TEST(ClicModule, IntraNodeMessagingWorksWithoutNic) {
  ClicBed bed;
  bed.module(0).bind_port(3);
  bed.module(0).bind_port(4);
  net::Buffer payload = net::Buffer::pattern(5000, 9);
  bool sent = false;
  clic::Message got;

  struct Run {
    static sim::Task go(clic::ClicModule& m, net::Buffer data, bool* sent) {
      auto st = co_await m.send(3, /*dst_node=*/0, /*dst_port=*/4,
                                std::move(data));
      EXPECT_TRUE(st.ok);
      *sent = true;
    }
  };
  Run::go(bed.module(0), payload, &sent);
  recv_one(bed.module(0), 4, &got);
  const auto frames_before = bed.cluster.link(0).frames_sent(0);
  bed.sim.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(got.data.content_equals(payload));
  EXPECT_EQ(bed.module(0).intra_node_messages(), 1u);
  EXPECT_EQ(bed.cluster.link(0).frames_sent(0), frames_before);  // no wire
}

// --- Remote write ------------------------------------------------------------------

TEST(ClicModule, RemoteWriteLandsWithoutRecv) {
  ClicBed bed;
  bed.module(1).register_region(7, 1 << 20);
  net::Buffer data = net::Buffer::pattern(40000, 21);
  bool done = false;
  struct Run {
    static sim::Task go(clic::ClicModule& m, net::Buffer d, bool* done) {
      auto st = co_await m.remote_write(1, 7, std::move(d));
      EXPECT_TRUE(st.ok);
      *done = true;
    }
  };
  Run::go(bed.module(0), data, &done);
  bed.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(bed.module(1).region_bytes(7), 40000);
  EXPECT_TRUE(bed.module(1).region_contents(7).content_equals(data));
}

TEST(ClicModule, RemoteWriteRespectsRegionCapacity) {
  ClicBed bed;
  bed.module(1).register_region(7, 1000);
  struct Run {
    static sim::Task go(clic::ClicModule& m) {
      (void)co_await m.remote_write(1, 7, net::Buffer::zeros(800),
                                    clic::SendMode::kSync);
      (void)co_await m.remote_write(1, 7, net::Buffer::zeros(800),
                                    clic::SendMode::kSync);
    }
  };
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).region_bytes(7), 800);  // second write rejected
}

TEST(ClicModule, RemoteWriteToUnregisteredRegionIsDropped) {
  ClicBed bed;
  struct Run {
    static sim::Task go(clic::ClicModule& m) {
      (void)co_await m.remote_write(1, 99, net::Buffer::zeros(100),
                                    clic::SendMode::kSync);
    }
  };
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).region_bytes(99), 0);
}

// --- Kernel functions ----------------------------------------------------------------

TEST(ClicModule, KernelFunctionPacketsInvokeHandlers) {
  ClicBed bed;
  int invoked = 0;
  std::int64_t got_bytes = 0;
  bed.module(1).register_kernel_fn(12, [&](clic::Message m) {
    ++invoked;
    got_bytes = m.data.size();
  });
  send_one(bed.module(0), 12, 1, net::Buffer::zeros(500),
           clic::SendMode::kSync, nullptr);
  bed.sim.run();
  EXPECT_EQ(invoked, 0);  // kUser type does not hit kernel fns...

  struct Run {
    static sim::Task go(clic::ClicModule& m) {
      (void)co_await m.send(0, 1, 12, net::Buffer::zeros(500),
                            clic::SendMode::kSync,
                            clic::PacketType::kKernelFn);
    }
  };
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(invoked, 1);
  EXPECT_EQ(got_bytes, 500);
}

// --- Broadcast ------------------------------------------------------------------------

TEST(ClicModule, BroadcastReachesAllOtherNodes) {
  os::ClusterConfig cc;
  cc.nodes = 5;
  ClicBed bed(cc);
  for (int i = 0; i < 5; ++i) bed.module(i).bind_port(9);
  net::Buffer payload = net::Buffer::pattern(12000, 30);

  struct Run {
    static sim::Task tx(clic::ClicModule& m, net::Buffer d) {
      auto st = co_await m.broadcast(9, 9, std::move(d));
      EXPECT_TRUE(st.ok);
    }
    static sim::Task rx(clic::ClicModule& m, net::Buffer expect, int* ok) {
      clic::Message got = co_await m.recv(9);
      if (got.data.content_equals(expect) &&
          got.type == clic::PacketType::kBroadcast) {
        ++*ok;
      }
    }
  };
  int ok = 0;
  Run::tx(bed.module(2), payload);
  for (int i = 0; i < 5; ++i) {
    if (i != 2) Run::rx(bed.module(i), payload, &ok);
  }
  bed.sim.run();
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(bed.module(2).messages_received(), 0u);  // not to itself
}

// --- Protection ------------------------------------------------------------------------

TEST(ClicModule, UnboundPortDropsForProtection) {
  ClicBed bed;
  bed.module(0).bind_port(5);
  send_one(bed.module(0), 5, 1, net::Buffer::zeros(100),
           clic::SendMode::kSync, nullptr);
  bed.sim.run();
  EXPECT_EQ(bed.module(1).messages_received(), 1u);  // reassembled...
  EXPECT_FALSE(bed.module(1).poll(5));  // would throw if bound check missing
}

TEST(ClicModule, RecvOnUnboundPortIsAnError) {
  ClicBed bed;
  EXPECT_THROW(
      {
        auto f = bed.module(0).recv(77);
        bed.sim.run();
        (void)f;
      },
      std::logic_error);
}

// --- Loss recovery ---------------------------------------------------------------------

TEST(ClicModule, RecoversFromFrameLoss) {
  ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  auto& faults = bed.cluster.link(0).faults(0);
  faults.drop_frame_index(2);
  faults.drop_frame_index(5);

  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  net::Buffer payload = net::Buffer::pattern(20000, 44);
  clic::Message got;
  send_one(bed.module(0), 5, 1, payload, clic::SendMode::kConfirmed,
           nullptr);
  recv_one(bed.module(1), 5, &got);
  bed.sim.run_until(sim::seconds(1));

  EXPECT_TRUE(got.data.content_equals(payload));
  auto* ch = bed.module(0).channel_to(1);
  ASSERT_NE(ch, nullptr);
  EXPECT_GE(ch->retransmits(), 1u);
}

// --- Channel bonding ----------------------------------------------------------------------

TEST(ClicModule, BondingStripesAndResequences) {
  os::ClusterConfig cc;
  cc.nics_per_node = 2;
  clic::Config cfg;
  cfg.channel_bonding = true;
  ClicBed bed(cc, cfg);
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);

  net::Buffer payload = net::Buffer::pattern(200000, 55);
  clic::Message got;
  send_one(bed.module(0), 5, 1, payload, clic::SendMode::kSync, nullptr);
  recv_one(bed.module(1), 5, &got);
  bed.sim.run();

  EXPECT_TRUE(got.data.content_equals(payload));
  // Both of the sender's links carried traffic.
  EXPECT_GT(bed.cluster.link(0, 0).frames_sent(0), 5u);
  EXPECT_GT(bed.cluster.link(0, 1).frames_sent(0), 5u);
}

// --- Jumbo interoperability ------------------------------------------------------------------

TEST(ClicModule, JumboSenderStandardReceiverLosesFrames) {
  // The paper's interoperability caveat: both ends must enable jumbo.
  ClicBed bed;
  bed.cluster.node(0).nic(0).set_mtu(9000);
  bed.cluster.node(1).nic(0).set_mtu(1500);
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  send_one(bed.module(0), 5, 1, net::Buffer::zeros(8000),
           clic::SendMode::kSync, nullptr);
  bed.sim.run_until(sim::milliseconds(20));
  EXPECT_GT(bed.cluster.node(1).nic(0).rx_oversize_drops(), 0u);
  EXPECT_EQ(bed.module(1).messages_received(), 0u);
}

}  // namespace
}  // namespace clicsim
