// Unit tests for the Ethernet layer: buffers, frames, links (timing and
// fault injection), and the switch.
#include <gtest/gtest.h>

#include "net/buffer.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace clicsim::net {
namespace {

// --- Buffer ------------------------------------------------------------------------

TEST(Buffer, ZerosCarryNoData) {
  auto b = Buffer::zeros(1000);
  EXPECT_EQ(b.size(), 1000);
  EXPECT_FALSE(b.has_data());
  EXPECT_TRUE(b.data().empty());
}

TEST(Buffer, PatternIsDeterministic) {
  auto a = Buffer::pattern(256, 7);
  auto b = Buffer::pattern(256, 7);
  auto c = Buffer::pattern(256, 8);
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_NE(a.checksum(), c.checksum());
  EXPECT_TRUE(a.content_equals(b));
  EXPECT_FALSE(a.content_equals(c));
}

TEST(Buffer, SliceSharesContent) {
  auto b = Buffer::pattern(100, 1);
  auto s = b.slice(10, 20);
  EXPECT_EQ(s.size(), 20);
  ASSERT_TRUE(s.has_data());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s.data()[i], b.data()[10 + i]);
  }
}

TEST(Buffer, SliceBoundsChecked) {
  auto b = Buffer::zeros(10);
  EXPECT_THROW((void)b.slice(5, 6), std::out_of_range);
  EXPECT_THROW((void)b.slice(-1, 2), std::out_of_range);
  EXPECT_NO_THROW((void)b.slice(10, 0));
}

TEST(Buffer, SizeOnlyComparesEqualBySize) {
  EXPECT_TRUE(Buffer::zeros(5).content_equals(Buffer::pattern(5, 1)));
  EXPECT_FALSE(Buffer::zeros(5).content_equals(Buffer::zeros(6)));
}

TEST(BufferChain, FlattenPreservesBytes) {
  auto whole = Buffer::pattern(1000, 3);
  BufferChain chain;
  chain.append(whole.slice(0, 400));
  chain.append(whole.slice(400, 350));
  chain.append(whole.slice(750, 250));
  EXPECT_EQ(chain.size(), 1000);
  EXPECT_EQ(chain.fragments(), 3u);
  auto flat = chain.flatten();
  EXPECT_TRUE(flat.content_equals(whole));
}

TEST(BufferChain, MixedContentFallsBackToSizeOnly) {
  BufferChain chain;
  chain.append(Buffer::pattern(10, 1));
  chain.append(Buffer::zeros(10));
  auto flat = chain.flatten();
  EXPECT_EQ(flat.size(), 20);
  EXPECT_FALSE(flat.has_data());
}

// --- MacAddr / Frame ------------------------------------------------------------------

TEST(MacAddr, NodeAddressesAreUnicastAndUnique) {
  auto a = MacAddr::node(1);
  auto b = MacAddr::node(2);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a.is_multicast());
  EXPECT_FALSE(a.is_broadcast());
}

TEST(MacAddr, BroadcastAndMulticastBits) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_TRUE(MacAddr::multicast(5).is_multicast());
  EXPECT_FALSE(MacAddr::multicast(5).is_broadcast());
}

TEST(Frame, MinimumFramePadding) {
  Frame f;
  f.payload = Buffer::zeros(1);
  // 14 header + max(payload,46) + 4 FCS = 64.
  EXPECT_EQ(f.frame_bytes(), 64);
  EXPECT_EQ(f.wire_bytes(), 64 + kEthWireOverhead);
}

TEST(Frame, HeaderBytesCountTowardPayloadArea) {
  struct Dummy {
    int x;
  };
  Frame f;
  f.header = HeaderBlob::of(Dummy{1}, 12);
  f.payload = Buffer::zeros(100);
  EXPECT_EQ(f.payload_bytes(), 112);
  EXPECT_EQ(f.frame_bytes(), 14 + 112 + 4);
}

TEST(HeaderBlob, TypedAccess) {
  struct A {
    int v;
  };
  struct B {
    int v;
  };
  auto blob = HeaderBlob::of(A{42}, 8);
  ASSERT_NE(blob.get<A>(), nullptr);
  EXPECT_EQ(blob.get<A>()->v, 42);
  EXPECT_EQ(blob.get<B>(), nullptr);
  EXPECT_EQ(blob.wire_bytes(), 8);
}

// --- Link ---------------------------------------------------------------------------

struct Catcher : FrameSink {
  std::vector<Frame> frames;
  std::vector<sim::SimTime> times;
  sim::Simulator* sim = nullptr;
  void frame_arrived(Frame f) override {
    frames.push_back(std::move(f));
    times.push_back(sim->now());
  }
};

TEST(Link, SerializationAndPropagationTiming) {
  sim::Simulator sim;
  LinkParams params;
  params.bits_per_s = 1e9;
  params.propagation = 150;
  Link link(sim, params, "l");
  Catcher rx;
  rx.sim = &sim;
  link.attach(1, &rx);

  Frame f;
  f.payload = Buffer::zeros(1000);
  link.send(0, f);
  sim.run();

  ASSERT_EQ(rx.frames.size(), 1u);
  // 14+1000+4+20 = 1038 B at 1 Gb/s = 8304 ns, + 150 propagation.
  EXPECT_EQ(rx.times[0], 8304 + 150);
}

TEST(Link, BackToBackFramesQueueOnTheWire) {
  sim::Simulator sim;
  Link link(sim, LinkParams{}, "l");
  Catcher rx;
  rx.sim = &sim;
  link.attach(1, &rx);
  Frame f;
  f.payload = Buffer::zeros(1000);
  link.send(0, f);
  link.send(0, f);
  sim.run();
  ASSERT_EQ(rx.frames.size(), 2u);
  EXPECT_EQ(rx.times[1] - rx.times[0], 8304);
}

TEST(Link, DeterministicDropByIndex) {
  sim::Simulator sim;
  Link link(sim, LinkParams{}, "l");
  Catcher rx;
  rx.sim = &sim;
  link.attach(1, &rx);
  link.faults(0).drop_frame_index(1);
  Frame f;
  f.payload = Buffer::zeros(100);
  for (int i = 0; i < 3; ++i) link.send(0, f);
  sim.run();
  EXPECT_EQ(rx.frames.size(), 2u);
  EXPECT_EQ(link.faults(0).dropped(), 1u);
}

TEST(Link, ProbabilisticLossIsSeededAndRoughlyCalibrated) {
  sim::Simulator sim;
  Link link(sim, LinkParams{}, "l");
  Catcher rx;
  rx.sim = &sim;
  link.attach(1, &rx);
  link.faults(0).set_seed(99);
  link.faults(0).set_drop_probability(0.2);
  Frame f;
  f.payload = Buffer::zeros(50);
  for (int i = 0; i < 1000; ++i) link.send(0, f);
  sim.run();
  EXPECT_NEAR(static_cast<double>(link.faults(0).dropped()), 200.0, 50.0);
  EXPECT_EQ(rx.frames.size(), 1000u - link.faults(0).dropped());
}

TEST(Link, CorruptionClearsFcs) {
  sim::Simulator sim;
  Link link(sim, LinkParams{}, "l");
  Catcher rx;
  rx.sim = &sim;
  link.attach(1, &rx);
  link.faults(0).set_corrupt_probability(1.0);
  Frame f;
  f.payload = Buffer::zeros(50);
  link.send(0, f);
  sim.run();
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_FALSE(rx.frames[0].fcs_ok);
}

TEST(Link, DeliveryCreditAdvancesArrivalNotOccupancy) {
  sim::Simulator sim;
  Link link(sim, LinkParams{}, "l");
  Catcher rx;
  rx.sim = &sim;
  link.attach(1, &rx);
  Frame f;
  f.payload = Buffer::zeros(1000);
  link.send(0, f, {}, /*delivery_credit=*/8000);
  sim.run();
  ASSERT_EQ(rx.times.size(), 1u);
  EXPECT_LT(rx.times[0], 1000);       // arrived almost immediately
  EXPECT_GT(link.utilization(0), 0);  // wire still charged in full
}

// --- Switch --------------------------------------------------------------------------

struct SwitchRig {
  sim::Simulator sim;
  net::SwitchParams params;
  Switch sw;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::unique_ptr<Catcher>> hosts;

  explicit SwitchRig(int ports, net::SwitchParams p = {})
      : params(p), sw(sim, ports, p, "sw") {
    for (int i = 0; i < ports; ++i) {
      // Built as an lvalue: GCC 12's -Werror=restrict fires a false positive
      // on operator+(const char*, std::string&&) here.
      std::string link_name = "l";
      link_name += std::to_string(i);
      links.push_back(
          std::make_unique<Link>(sim, LinkParams{}, std::move(link_name)));
      hosts.push_back(std::make_unique<Catcher>());
      hosts.back()->sim = &sim;
      links.back()->attach(0, hosts.back().get());
      sw.connect(i, *links.back(), 1);
    }
  }

  void host_send(int port, Frame f) { links[port]->send(0, std::move(f)); }
};

Frame make_frame(MacAddr dst, MacAddr src, std::int64_t size = 100) {
  Frame f;
  f.dst = dst;
  f.src = src;
  f.payload = Buffer::zeros(size);
  return f;
}

TEST(Switch, LearnsAndForwardsUnicast) {
  SwitchRig rig(3);
  const auto a = MacAddr::node(0);
  const auto b = MacAddr::node(1);
  // b announces itself so the first a->b frame needn't flood.
  rig.host_send(1, make_frame(a, b));
  rig.sim.run();
  EXPECT_EQ(rig.sw.learned_port(b), 1);

  rig.host_send(0, make_frame(b, a));
  rig.sim.run();
  EXPECT_EQ(rig.hosts[1]->frames.size(), 1u);  // forwarded, not flooded
  EXPECT_EQ(rig.hosts[2]->frames.size(), 1u);  // only b's initial flood
  EXPECT_EQ(rig.sw.forwarded(), 1u);
}

TEST(Switch, FloodsUnknownUnicast) {
  SwitchRig rig(4);
  rig.host_send(0, make_frame(MacAddr::node(9), MacAddr::node(0)));
  rig.sim.run();
  EXPECT_EQ(rig.hosts[0]->frames.size(), 0u);  // not back out the ingress
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(rig.hosts[i]->frames.size(), 1u);
  }
}

TEST(Switch, BroadcastReachesEveryOtherPort) {
  SwitchRig rig(4);
  rig.host_send(2, make_frame(MacAddr::broadcast(), MacAddr::node(2)));
  rig.sim.run();
  EXPECT_EQ(rig.hosts[2]->frames.size(), 0u);
  for (int i : {0, 1, 3}) EXPECT_EQ(rig.hosts[i]->frames.size(), 1u);
}

TEST(Switch, StaticLearnPreventsFlooding) {
  SwitchRig rig(3);
  rig.sw.learn(MacAddr::node(1), 1);
  rig.host_send(0, make_frame(MacAddr::node(1), MacAddr::node(0)));
  rig.sim.run();
  EXPECT_EQ(rig.hosts[1]->frames.size(), 1u);
  EXPECT_EQ(rig.hosts[2]->frames.size(), 0u);
}

TEST(Switch, OutputQueueTailDrop) {
  net::SwitchParams p;
  p.output_queue_frames = 4;
  SwitchRig rig(3, p);
  rig.sw.learn(MacAddr::node(2), 2);
  // Two ingress ports blast one egress port far beyond its queue.
  for (int i = 0; i < 64; ++i) {
    rig.host_send(0, make_frame(MacAddr::node(2), MacAddr::node(0), 1400));
    rig.host_send(1, make_frame(MacAddr::node(2), MacAddr::node(1), 1400));
  }
  rig.sim.run();
  EXPECT_GT(rig.sw.dropped(), 0u);
  EXPECT_LT(rig.hosts[2]->frames.size(), 128u);
}

TEST(Switch, StoreAndForwardDropsBadFcs) {
  net::SwitchParams p;
  p.cut_through = false;
  SwitchRig rig(2, p);
  rig.links[0]->faults(0).set_corrupt_probability(1.0);
  rig.host_send(0, make_frame(MacAddr::node(1), MacAddr::node(0)));
  rig.sim.run();
  EXPECT_EQ(rig.hosts[1]->frames.size(), 0u);
  EXPECT_EQ(rig.sw.bad_fcs(), 1u);
}

TEST(Switch, CutThroughPassesBadFcsToTheNic) {
  net::SwitchParams p;
  p.cut_through = true;
  SwitchRig rig(2, p);
  rig.links[0]->faults(0).set_corrupt_probability(1.0);
  rig.host_send(0, make_frame(MacAddr::node(1), MacAddr::node(0)));
  rig.sim.run();
  ASSERT_EQ(rig.hosts[1]->frames.size(), 1u);
  EXPECT_FALSE(rig.hosts[1]->frames[0].fcs_ok);
}

}  // namespace
}  // namespace clicsim::net
