// Barrier and port-lifecycle primitives added on top of the core engine.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

TEST(Barrier, ReleasesOnlyWhenAllArrive) {
  sim::Simulator sim;
  sim::Barrier barrier(sim, 3);
  std::vector<sim::SimTime> released;

  auto party = [](sim::Simulator& s, sim::Barrier& b, sim::SimTime arrive,
                  std::vector<sim::SimTime>* out) -> sim::Task {
    co_await sim::Delay{s, arrive};
    co_await b.arrive_and_wait();
    out->push_back(s.now());
  };
  party(sim, barrier, 10, &released);
  party(sim, barrier, 50, &released);
  party(sim, barrier, 200, &released);
  sim.run();

  ASSERT_EQ(released.size(), 3u);
  for (auto t : released) EXPECT_GE(t, 200);
}

TEST(Barrier, IsReusableAcrossRounds) {
  sim::Simulator sim;
  sim::Barrier barrier(sim, 2);
  int rounds_a = 0;
  int rounds_b = 0;
  auto party = [](sim::Simulator& s, sim::Barrier& b, sim::SimTime pace,
                  int* rounds) -> sim::Task {
    for (int i = 0; i < 5; ++i) {
      co_await sim::Delay{s, pace};
      co_await b.arrive_and_wait();
      ++*rounds;
    }
  };
  party(sim, barrier, 10, &rounds_a);
  party(sim, barrier, 35, &rounds_b);
  sim.run();
  EXPECT_EQ(rounds_a, 5);
  EXPECT_EQ(rounds_b, 5);
}

TEST(PortLifecycle, UnbindDropsQueuedAndFutureTraffic) {
  apps::ClicBed bed;
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);

  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(5, 1, 5, net::Buffer::zeros(1000));
    }
  };
  Run::tx(bed.module(0));
  bed.sim.run();
  EXPECT_TRUE(bed.module(1).poll(5));

  bed.module(1).unbind_port(5);
  EXPECT_FALSE(bed.module(1).poll(5));

  // Traffic after the unbind is protection-dropped, not queued.
  Run::tx(bed.module(0));
  bed.sim.run();
  EXPECT_FALSE(bed.module(1).poll(5));
}

TEST(PortLifecycle, UnbindWakesBlockedReceiverWithClosedMarker) {
  apps::ClicBed bed;
  bed.module(1).bind_port(5);
  int closed_src = 0;
  struct Run {
    static sim::Task rx(clic::ClicModule& m, int* src) {
      clic::Message got = co_await m.recv(5);
      *src = got.src_node;
    }
  };
  Run::rx(bed.module(1), &closed_src);
  bed.sim.after(sim::microseconds(10),
                [&] { bed.module(1).unbind_port(5); });
  bed.sim.run();
  EXPECT_EQ(closed_src, -1);
}

TEST(PortLifecycle, RebindAfterUnbindWorks) {
  apps::ClicBed bed;
  bed.module(0).bind_port(5);
  bed.module(1).bind_port(5);
  bed.module(1).unbind_port(5);
  bed.module(1).bind_port(5);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(5, 1, 5, net::Buffer::pattern(500, 1));
    }
    static sim::Task rx(clic::ClicModule& m, bool* ok) {
      clic::Message got = co_await m.recv(5);
      *ok = got.data.content_equals(net::Buffer::pattern(500, 1));
    }
  };
  bool ok = false;
  Run::tx(bed.module(0));
  Run::rx(bed.module(1), &ok);
  bed.sim.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace clicsim
