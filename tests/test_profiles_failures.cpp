// NIC-profile sweeps (every supported card must run every stack sanely)
// and failure-mode behaviour: black holes, partitions, and misconfigured
// peers must degrade predictably, never crash or hang the simulator.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "apps/workloads.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

// --- Profile sweep ----------------------------------------------------------------

struct ProfileCase {
  const char* name;
  hw::NicProfile (*make)();
  double link_bits_per_s;
  std::int64_t mtu;
};

class NicProfiles : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(NicProfiles, ClicRunsSanelyOnEveryCard) {
  const auto& pc = GetParam();
  apps::Scenario s;
  s.cluster.nic = pc.make();
  s.cluster.link.bits_per_s = pc.link_bits_per_s;
  s.mtu = pc.mtu;
  s.pingpong_reps = 2;

  const auto lat = apps::clic_one_way(s, 0);
  EXPECT_GT(lat, sim::microseconds(10)) << pc.name;
  EXPECT_LT(lat, sim::microseconds(300)) << pc.name;

  const double bw = apps::to_mbps(1 << 20, apps::clic_one_way(s, 1 << 20));
  EXPECT_GT(bw, 0.5 * pc.link_bits_per_s / 1e6 * 0.05) << pc.name;
  EXPECT_LT(bw, pc.link_bits_per_s / 1e6) << pc.name;  // never beats wire
}

INSTANTIATE_TEST_SUITE_P(
    Cards, NicProfiles,
    ::testing::Values(
        ProfileCase{"smc9462", &hw::NicProfile::smc9462, 1e9, 9000},
        ProfileCase{"ga620", &hw::NicProfile::ga620, 1e9, 9000},
        ProfileCase{"gnic2", &hw::NicProfile::gnic2, 1e9, 1500},
        ProfileCase{"fe100", &hw::NicProfile::fast_ether_100, 100e6, 1500}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(NicProfiles, FastEthernetForcesOneCopyPath) {
  // No scatter/gather on the FE card: the 0-copy config silently degrades
  // to the copy path (exactly the Fast Ethernet CLIC of [13]).
  apps::Scenario zero;
  zero.cluster.nic = hw::NicProfile::fast_ether_100();
  zero.cluster.link.bits_per_s = 100e6;
  zero.mtu = 1500;
  zero.clic.tx_path = clic::TxPath::kZeroCopy;
  apps::Scenario one = zero;
  one.clic.tx_path = clic::TxPath::kOneCopy;
  const auto a = apps::clic_one_way(zero, 60000);
  const auto b = apps::clic_one_way(one, 60000);
  EXPECT_EQ(a, b);  // identical: both actually take path 3
}

// --- Failure modes ----------------------------------------------------------------

TEST(FailureModes, TotalBlackHoleFailsCleanlyWithBoundedRetries) {
  apps::ClicBed bed;
  bed.cluster.link(0).faults(0).set_drop_probability(1.0);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  bool completed = false;
  bool ok = true;
  clic::SendError error = clic::SendError::kNone;
  struct Run {
    static sim::Task go(clic::ClicModule& m, bool* done, bool* ok,
                        clic::SendError* error) {
      auto st = co_await m.send(1, 1, 1, net::Buffer::zeros(1000),
                                clic::SendMode::kConfirmed);
      *done = true;
      *ok = st.ok;
      *error = st.error;
    }
  };
  Run::go(bed.module(0), &completed, &ok, &error);
  bed.sim.run_until(sim::seconds(30));
  // Bounded failure: the send *resolves* (with a clean error) instead of
  // retrying forever.
  EXPECT_TRUE(completed);
  EXPECT_FALSE(ok);
  EXPECT_EQ(error, clic::SendError::kTimedOut);
  auto* ch = bed.module(0).channel_to(1);
  ASSERT_NE(ch, nullptr);
  // Retransmission traffic over the 30 s black hole is geometric, not
  // linear: at most the retry budget, not rto-spaced thousands.
  const auto budget =
      static_cast<std::uint64_t>(bed.module(0).config().max_retries);
  EXPECT_GE(ch->retransmits(), 1u);
  EXPECT_LE(ch->retransmits(), budget);
  EXPECT_EQ(ch->gave_up(), 1u);
  // Nothing left ticking afterwards.
  EXPECT_EQ(ch->in_flight(), 0);
}

TEST(FailureModes, AsymmetricLossOnlyAcksDropped) {
  // Data flows fine; all acks vanish. The sender must retransmit, and the
  // receiver must suppress the duplicates.
  apps::ClicBed bed;
  bed.cluster.link(1).faults(0).set_drop_probability(1.0);  // node1 -> switch
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  struct Run {
    static sim::Task tx(clic::ClicModule& m) {
      (void)co_await m.send(1, 1, 1, net::Buffer::pattern(4000, 1),
                            clic::SendMode::kSync);
    }
    static sim::Task rx(clic::ClicModule& m, int* got) {
      for (;;) {
        (void)co_await m.recv(1);
        ++*got;
      }
    }
  };
  int got = 0;
  Run::tx(bed.module(0));
  Run::rx(bed.module(1), &got);
  // Backoff spaces the retries out geometrically, so give it the full
  // retry budget's horizon rather than 100 ms.
  bed.sim.run_until(sim::seconds(2));
  EXPECT_EQ(got, 1);  // delivered exactly once despite retransmissions
  auto* ch = bed.module(1).channel_to(0);
  ASSERT_NE(ch, nullptr);
  EXPECT_GE(ch->duplicates(), 5u);
}

TEST(FailureModes, SimulationDrainsCleanlyAfterAbandonedTransfers) {
  // A transfer that can never finish must not leave the event loop
  // spinning forever once its retry timers are the only activity.
  apps::ClicBed bed;
  bed.cluster.link(0).faults(0).set_drop_probability(1.0);
  bed.module(0).bind_port(1);
  struct Run {
    static sim::Task go(clic::ClicModule& m) {
      (void)co_await m.send(1, 1, 1, net::Buffer::zeros(100),
                            clic::SendMode::kConfirmed);
    }
  };
  Run::go(bed.module(0));
  const auto executed = bed.sim.run_until(sim::milliseconds(50));
  // Bounded activity: retries tick at the RTO, not in a busy loop.
  EXPECT_LT(executed, 5000u);
}

TEST(FailureModes, UdpFloodOverwhelmsNothing) {
  apps::TcpBed bed;
  bed.udp[1]->bind(6000);
  struct Run {
    static sim::Task tx(tcpip::UdpStack& u) {
      for (int i = 0; i < 300; ++i) {
        (void)co_await u.sendto(6001, 1, 6000, net::Buffer::zeros(1200));
      }
    }
    static sim::Task rx(tcpip::UdpStack& u, int* got) {
      for (;;) {
        (void)co_await u.recvfrom(6000);
        ++*got;
      }
    }
  };
  int got = 0;
  Run::tx(*bed.udp[0]);
  Run::rx(*bed.udp[1], &got);
  bed.sim.run_until(sim::seconds(1));
  // Datagram service: whatever survives the rings arrives; no crash, and
  // accounting is consistent.
  EXPECT_GT(got, 200);
  EXPECT_LE(static_cast<std::uint64_t>(got),
            bed.udp[1]->datagrams_received());
}

TEST(FailureModes, GammaHandlerExceptionsAreNotOurProblemButDropsAre) {
  // A GAMMA port with no handler and no mailbox: traffic is counted as
  // dropped, and the module survives a follow-up registration.
  apps::GammaBed bed;
  struct Run {
    static sim::Task go(gamma::GammaModule& m) {
      (void)co_await m.send(1, 4, net::Buffer::zeros(100));
    }
  };
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).dropped_no_port(), 1u);

  bed.module(1).open_mailbox_port(4);
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).messages_received(), 1u);
}

}  // namespace
}  // namespace clicsim
