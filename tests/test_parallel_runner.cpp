// The parallel sweep harness: sim::ParallelExecutor, per-thread log sinks
// and apps::SweepRunner. The load-bearing property is cross-thread
// determinism — the same sweep at any -j yields bitwise-equal result rows
// and identical captured per-simulation trace output.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/sweep.hpp"
#include "apps/testbed.hpp"
#include "apps/workloads.hpp"
#include "net/buffer.hpp"
#include "net/buffer_pool.hpp"
#include "sim/log.hpp"
#include "sim/parallel_executor.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

TEST(ParallelExecutor, RunsEveryIndexExactlyOnce) {
  sim::ParallelExecutor pool(4);
  constexpr std::size_t kJobs = 100;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.run_indexed(kJobs, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelExecutor, SingleThreadRunsInlineInIndexOrder) {
  sim::ParallelExecutor pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.run_indexed(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelExecutor, MoreThreadsThanJobsIsFine) {
  sim::ParallelExecutor pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.run_indexed(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutor, ZeroJobsReturnsImmediately) {
  sim::ParallelExecutor pool(4);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "no job to run"; });
}

TEST(ParallelExecutor, DefaultsToHardwareConcurrency) {
  EXPECT_GE(sim::ParallelExecutor().threads(), 1);
  EXPECT_EQ(sim::ParallelExecutor(3).threads(), 3);
  EXPECT_EQ(sim::ParallelExecutor(0).threads(),
            sim::ParallelExecutor::default_threads());
}

TEST(ParallelExecutor, FirstJobExceptionPropagates) {
  sim::ParallelExecutor pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run_indexed(8,
                       [&](std::size_t i) {
                         if (i == 3) throw std::runtime_error("boom");
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 7);  // the pool drains before rethrowing
}

TEST(LogSink, ThreadSinkCapturesAndRestores) {
  sim::Simulator sim;
  const sim::LogLevel before = sim::log_level();
  sim::set_log_level(sim::LogLevel::kInfo);
  std::string captured;
  {
    const sim::ScopedLogSink sink(&captured);
    EXPECT_EQ(sim::thread_log_sink(), &captured);
    CLICSIM_LOG(sim, sim::LogLevel::kInfo, "test") << "hello " << 42;
  }
  EXPECT_EQ(sim::thread_log_sink(), nullptr);
  sim::set_log_level(before);
  EXPECT_NE(captured.find("INFO test: hello 42"), std::string::npos);
  EXPECT_NE(captured.find("ns]"), std::string::npos);
}

TEST(LogSink, SinksNest) {
  sim::Simulator sim;
  const sim::LogLevel before = sim::log_level();
  sim::set_log_level(sim::LogLevel::kInfo);
  std::string outer;
  std::string inner;
  {
    const sim::ScopedLogSink a(&outer);
    {
      const sim::ScopedLogSink b(&inner);
      CLICSIM_LOG(sim, sim::LogLevel::kInfo, "test") << "inner line";
    }
    CLICSIM_LOG(sim, sim::LogLevel::kInfo, "test") << "outer line";
  }
  sim::set_log_level(before);
  EXPECT_NE(inner.find("inner line"), std::string::npos);
  EXPECT_EQ(inner.find("outer line"), std::string::npos);
  EXPECT_NE(outer.find("outer line"), std::string::npos);
}

// One sweep job: a real simulation that both measures (one-way time) and
// traces (sim-time-stamped log lines emitted from inside event handlers).
struct TracedRow {
  sim::SimTime one_way = 0;
  std::uint64_t events = 0;

  bool operator==(const TracedRow&) const = default;
};

TracedRow traced_point(std::int64_t size) {
  apps::Scenario s;
  s.pingpong_reps = 2;
  TracedRow row;
  row.one_way = apps::clic_one_way(s, size);

  // A second small simulation whose handlers log: exercises the per-sim
  // trace path with real sim-time stamps.
  sim::Simulator sim;
  for (int i = 0; i < 3; ++i) {
    sim.after(100 * (i + 1) + size, [&sim, i, size] {
      CLICSIM_LOG(sim, sim::LogLevel::kInfo, "sweep")
          << "point size=" << size << " step=" << i;
    });
  }
  row.events = sim.run();
  return row;
}

// The acceptance-criterion test: the same 8-point sweep at -j1, -j2 and
// -j8 produces bitwise-equal rows and identical captured per-sim output.
TEST(SweepDeterminism, RowsAndTracesIdenticalAcrossJobCounts) {
  const sim::LogLevel before = sim::log_level();
  sim::set_log_level(sim::LogLevel::kInfo);
  const std::vector<std::int64_t> sizes{0,    64,    512,   4096,
                                        9000, 30000, 65536, 262144};

  auto sweep = [&](int jobs, std::vector<std::string>* logs) {
    apps::SweepRunner<TracedRow> runner(apps::SweepOptions{jobs});
    for (const auto size : sizes) {
      runner.add([size] { return traced_point(size); });
    }
    return runner.run(logs);
  };

  std::vector<std::string> logs1;
  std::vector<std::string> logs2;
  std::vector<std::string> logs8;
  const auto rows1 = sweep(1, &logs1);
  const auto rows2 = sweep(2, &logs2);
  const auto rows8 = sweep(8, &logs8);
  sim::set_log_level(before);

  EXPECT_EQ(rows1, rows2);
  EXPECT_EQ(rows1, rows8);
  EXPECT_EQ(logs1, logs2);
  EXPECT_EQ(logs1, logs8);

  // The traces are non-trivial and per-simulation.
  ASSERT_EQ(logs1.size(), sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_NE(logs1[i].find("size=" + std::to_string(sizes[i])),
              std::string::npos);
    EXPECT_NE(logs1[i].find("step=2"), std::string::npos);
  }
}

// One sweep job carrying real data through the pooled packet path: a
// patterned CLIC message delivered end-to-end, fingerprinted by one-way
// latency, event count and the delivered payload's checksum.
struct PooledRow {
  sim::SimTime one_way = 0;
  std::uint64_t events = 0;
  std::uint64_t payload_sum = 0;

  bool operator==(const PooledRow&) const = default;
};

PooledRow pooled_point(std::int64_t size) {
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);
  PooledRow row;
  struct Run {
    static sim::Task exchange(clic::ClicModule& a, clic::ClicModule& b,
                              std::int64_t size, PooledRow* row) {
      auto st = co_await a.send(1, 1, 1, net::Buffer::pattern(size, 99),
                                clic::SendMode::kConfirmed);
      if (!st.ok) co_return;
      clic::Message m = co_await b.recv(1);
      row->payload_sum = m.data.checksum();
    }
  };
  Run::exchange(bed.module(0), bed.module(1), size, &row);
  row.events = bed.sim.run();
  row.one_way = bed.sim.now();
  return row;
}

// Pooling regression across job counts: per-simulation pools are strictly
// thread-confined, so the same data-carrying sweep must be bitwise equal
// at -j1/-j2/-j8, with pooling active and with the bypass — and across
// the two (recycling is invisible to results).
TEST(SweepDeterminism, PooledRowsIdenticalAcrossJobCountsAndBypass) {
  const std::vector<std::int64_t> sizes{1,    512,   4096,
                                        9000, 30000, 120000};
  auto sweep = [&](int jobs) {
    apps::SweepRunner<PooledRow> runner(apps::SweepOptions{jobs});
    for (const auto size : sizes) {
      runner.add([size] { return pooled_point(size); });
    }
    return runner.run();
  };

  net::BufferPool::set_pooling_enabled(true);
  const auto pooled1 = sweep(1);
  const auto pooled2 = sweep(2);
  const auto pooled8 = sweep(8);
  net::BufferPool::set_pooling_enabled(false);
  const auto plain1 = sweep(1);
  const auto plain8 = sweep(8);
  net::BufferPool::clear_pooling_override();

  EXPECT_EQ(pooled1, pooled2);
  EXPECT_EQ(pooled1, pooled8);
  EXPECT_EQ(pooled1, plain1);
  EXPECT_EQ(plain1, plain8);
  for (const auto& row : pooled1) {
    EXPECT_GT(row.one_way, 0);
    EXPECT_NE(row.payload_sum, 0u);
  }
}

TEST(SweepRunner, RowsComeBackInAddOrder) {
  apps::SweepRunner<int> runner(apps::SweepOptions{4});
  for (int i = 0; i < 32; ++i) {
    runner.add([i] { return i * i; });
  }
  const auto rows = runner.run();
  ASSERT_EQ(rows.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rows[static_cast<std::size_t>(i)], i * i);
}

TEST(SweepRunner, FlushesLogsInJobOrderWhenNotCaptured) {
  // run() without capture flushes to stderr; with capture the per-job
  // buffers arrive index-aligned even though execution interleaves.
  const sim::LogLevel before = sim::log_level();
  sim::set_log_level(sim::LogLevel::kInfo);
  apps::SweepRunner<int> runner(apps::SweepOptions{4});
  for (int i = 0; i < 8; ++i) {
    runner.add([i] {
      sim::Simulator sim;
      sim.after(10, [&sim, i] {
        CLICSIM_LOG(sim, sim::LogLevel::kInfo, "order") << "job " << i;
      });
      sim.run();
      return i;
    });
  }
  std::vector<std::string> logs;
  (void)runner.run(&logs);
  sim::set_log_level(before);
  ASSERT_EQ(logs.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(logs[static_cast<std::size_t>(i)].find(
                  "job " + std::to_string(i)),
              std::string::npos);
  }
}

TEST(SweepArgs, ParsesJobFlagForms) {
  auto parse = [](std::vector<const char*> argv) {
    return apps::parse_sweep_args(static_cast<int>(argv.size()),
                                  const_cast<char**>(argv.data()));
  };
  EXPECT_EQ(parse({"bench"}).jobs, 0);
  EXPECT_EQ(parse({"bench", "-j", "4"}).jobs, 4);
  EXPECT_EQ(parse({"bench", "-j8"}).jobs, 8);
  EXPECT_EQ(parse({"bench", "--jobs", "2"}).jobs, 2);
  EXPECT_EQ(parse({"bench", "--jobs=16"}).jobs, 16);
}

TEST(SweepArgs, RejectsBadInput) {
  auto run = [](std::vector<const char*> argv) {
    apps::parse_sweep_args(static_cast<int>(argv.size()),
                           const_cast<char**>(argv.data()));
  };
  EXPECT_EXIT(run({"bench", "-j", "0"}), testing::ExitedWithCode(2), "usage");
  EXPECT_EXIT(run({"bench", "-j"}), testing::ExitedWithCode(2), "usage");
  EXPECT_EXIT(run({"bench", "-jx"}), testing::ExitedWithCode(2), "usage");
  EXPECT_EXIT(run({"bench", "--frobnicate"}), testing::ExitedWithCode(2),
              "usage");
  // --help prints usage on stdout (the death-test matcher sees stderr only).
  EXPECT_EXIT(run({"bench", "--help"}), testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace clicsim
