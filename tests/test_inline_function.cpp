// Unit tests for sim::InlineFunction — the engine's move-only SBO closure
// type: inline storage, counted heap fallback for oversized captures,
// move-only capture support and emptiness propagation from nullable
// wrappers (std::function, other InlineFunctions).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "sim/inline_function.hpp"

namespace clicsim::sim {
namespace {

TEST(InlineFunction, DefaultConstructedIsEmpty) {
  Action f;
  EXPECT_FALSE(static_cast<bool>(f));
  Action g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, CallsSmallLambdaInline) {
  int hits = 0;
  Action f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(41);
  int result = 0;
  Action f = [p = std::move(p), &result] { result = *p + 1; };
  EXPECT_TRUE(f.is_inline());
  f();
  EXPECT_EQ(result, 42);
}

TEST(InlineFunction, MoveTransfersCallableAndEmptiesSource) {
  int hits = 0;
  Action a = [&hits] { ++hits; };
  Action b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Action c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, CaptureAtCapacityStaysInline) {
  struct Fits {
    std::array<unsigned char, Action::inline_capacity> bytes{};
    void operator()() const {}
  };
  static_assert(sizeof(Fits) == Action::inline_capacity);
  const std::uint64_t before = inline_function_heap_allocs();
  Action f = Fits{};
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(inline_function_heap_allocs(), before);
}

TEST(InlineFunction, OversizedCaptureFallsBackToCountedHeap) {
  struct Big {
    std::array<unsigned char, Action::inline_capacity + 1> bytes{};
    int* counter;
    void operator()() const { ++*counter; }
  };
  int hits = 0;
  const std::uint64_t before = inline_function_heap_allocs();
  {
    Action f = Big{{}, &hits};
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(inline_function_heap_allocs(), before + 1);
    f();
    // A move of a heap-stored callable moves the pointer, not the object.
    Action g = std::move(f);
    EXPECT_FALSE(g.is_inline());
    EXPECT_EQ(inline_function_heap_allocs(), before + 1);
    g();
  }
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, DestructorRunsCaptureDestructors) {
  auto flag = std::make_shared<int>(7);
  std::weak_ptr<int> watch = flag;
  {
    Action f = [flag = std::move(flag)] { (void)*flag; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, EmptyStdFunctionConvertsToEmpty) {
  std::function<void()> none;
  Action f = std::move(none);
  EXPECT_FALSE(static_cast<bool>(f));  // `if (f)` guards must still work

  std::function<void()> some = [] {};
  Action g = std::move(some);
  EXPECT_TRUE(static_cast<bool>(g));
}

TEST(InlineFunction, EmptySmallerInlineFunctionConvertsToEmpty) {
  InlineFunction<48> none;
  InlineFunction<120> f = std::move(none);
  EXPECT_FALSE(static_cast<bool>(f));

  int hits = 0;
  InlineFunction<48> some = [&hits] { ++hits; };
  InlineFunction<120> g = std::move(some);
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace clicsim::sim
