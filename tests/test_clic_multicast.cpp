// CLIC Ethernet multicast groups: NIC-level group filtering, group
// membership dynamics, and multicast datagram delivery with integrity.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

using apps::ClicBed;

sim::Task mcast_send(clic::ClicModule& m, int group, net::Buffer data) {
  auto st = co_await m.multicast(group, 9, 9, std::move(data));
  EXPECT_TRUE(st.ok);
}

sim::Task mcast_recv(clic::ClicModule& m, net::Buffer expect, int* ok) {
  clic::Message got = co_await m.recv(9);
  if (got.data.content_equals(expect)) ++*ok;
}

TEST(ClicMulticast, OnlyGroupMembersReceive) {
  os::ClusterConfig cc;
  cc.nodes = 5;
  ClicBed bed(cc);
  for (int i = 0; i < 5; ++i) bed.module(i).bind_port(9);
  // Nodes 1 and 3 join group 42; 2 and 4 do not.
  bed.module(1).join_group(42);
  bed.module(3).join_group(42);

  net::Buffer payload = net::Buffer::pattern(6000, 11);
  int ok = 0;
  mcast_send(bed.module(0), 42, payload);
  mcast_recv(bed.module(1), payload, &ok);
  mcast_recv(bed.module(3), payload, &ok);
  bed.sim.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(bed.module(1).messages_received(), 1u);
  EXPECT_EQ(bed.module(2).messages_received(), 0u);
  EXPECT_EQ(bed.module(4).messages_received(), 0u);
}

TEST(ClicMulticast, LeaveGroupStopsDelivery) {
  os::ClusterConfig cc;
  cc.nodes = 3;
  ClicBed bed(cc);
  for (int i = 0; i < 3; ++i) bed.module(i).bind_port(9);
  bed.module(1).join_group(7);
  bed.module(2).join_group(7);

  mcast_send(bed.module(0), 7, net::Buffer::zeros(100));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).messages_received(), 1u);
  EXPECT_EQ(bed.module(2).messages_received(), 1u);

  bed.module(2).leave_group(7);
  mcast_send(bed.module(0), 7, net::Buffer::zeros(100));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).messages_received(), 2u);
  EXPECT_EQ(bed.module(2).messages_received(), 1u);
}

TEST(ClicMulticast, DistinctGroupsDoNotCross) {
  os::ClusterConfig cc;
  cc.nodes = 3;
  ClicBed bed(cc);
  for (int i = 0; i < 3; ++i) bed.module(i).bind_port(9);
  bed.module(1).join_group(1);
  bed.module(2).join_group(2);
  mcast_send(bed.module(0), 1, net::Buffer::zeros(64));
  mcast_send(bed.module(0), 2, net::Buffer::zeros(64));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).messages_received(), 1u);
  EXPECT_EQ(bed.module(2).messages_received(), 1u);
}

TEST(ClicMulticast, BroadcastStillPassesNonMembers) {
  os::ClusterConfig cc;
  cc.nodes = 3;
  ClicBed bed(cc);
  for (int i = 0; i < 3; ++i) bed.module(i).bind_port(9);
  struct Run {
    static sim::Task go(clic::ClicModule& m) {
      (void)co_await m.broadcast(9, 9, net::Buffer::zeros(100));
    }
  };
  Run::go(bed.module(0));
  bed.sim.run();
  EXPECT_EQ(bed.module(1).messages_received(), 1u);
  EXPECT_EQ(bed.module(2).messages_received(), 1u);
}

TEST(ClicMulticast, MultiFragmentMulticastReassembles) {
  os::ClusterConfig cc;
  cc.nodes = 3;
  ClicBed bed(cc);
  bed.cluster.set_mtu_all(1500);
  for (int i = 0; i < 3; ++i) bed.module(i).bind_port(9);
  bed.module(1).join_group(5);
  bed.module(2).join_group(5);

  net::Buffer payload = net::Buffer::pattern(30000, 3);
  int ok = 0;
  mcast_send(bed.module(0), 5, payload);
  mcast_recv(bed.module(1), payload, &ok);
  mcast_recv(bed.module(2), payload, &ok);
  bed.sim.run();
  EXPECT_EQ(ok, 2);
}

}  // namespace
}  // namespace clicsim
