// End-to-end smoke tests: two nodes, a switch, the full CLIC path.
#include <gtest/gtest.h>

#include "clic/api.hpp"
#include "os/address.hpp"
#include "os/cluster.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

struct Fixture {
  sim::Simulator sim;
  os::Cluster cluster;
  os::AddressMap addresses;
  clic::ClicModule m0;
  clic::ClicModule m1;

  explicit Fixture(clic::Config cfg = {},
                   os::ClusterConfig cc = os::ClusterConfig{})
      : cluster(sim, cc),
        addresses(os::AddressMap::for_cluster(cluster)),
        m0(cluster.node(0), cfg, addresses),
        m1(cluster.node(1), cfg, addresses) {}
};

TEST(Smoke, SendRecvOneMessage) {
  Fixture f;
  clic::Port tx(f.m0, 1);
  clic::Port rx(f.m1, 1);

  bool sent = false;
  bool received = false;
  net::Buffer payload = net::Buffer::pattern(5000, 42);

  auto sender = [](Fixture& fx, clic::Port& port, net::Buffer data,
                   bool& done) -> sim::Task {
    (void)fx;
    auto st = co_await port.send(1, 1, std::move(data));
    EXPECT_TRUE(st.ok);
    done = true;
  };
  auto receiver = [](clic::Port& port, net::Buffer expect,
                     bool& done) -> sim::Task {
    clic::Message m = co_await port.recv();
    EXPECT_EQ(m.src_node, 0);
    EXPECT_EQ(m.data.size(), expect.size());
    EXPECT_TRUE(m.data.content_equals(expect));
    done = true;
  };

  sender(f, tx, payload, sent);
  receiver(rx, payload, received);
  f.sim.run();

  EXPECT_TRUE(sent);
  EXPECT_TRUE(received);
  EXPECT_EQ(f.m1.messages_received(), 1u);
}

TEST(Smoke, PingPongLatencyIsPlausible) {
  Fixture f;
  clic::Port p0(f.m0, 1);
  clic::Port p1(f.m1, 1);

  sim::SimTime rtt = 0;
  auto ping = [](sim::Simulator& s, clic::Port& port,
                 sim::SimTime& out) -> sim::Task {
    const sim::SimTime start = s.now();
    (void)co_await port.send(1, 1, net::Buffer::zeros(0));
    (void)co_await port.recv();
    out = s.now() - start;
  };
  auto pong = [](clic::Port& port) -> sim::Task {
    (void)co_await port.recv();
    (void)co_await port.send(0, 1, net::Buffer::zeros(0));
  };

  ping(f.sim, p0, rtt);
  pong(p1);
  f.sim.run();

  // One-way latency target is ~36 us (paper); accept a broad band here —
  // the calibration regression test pins it tighter.
  EXPECT_GT(rtt, sim::microseconds(20));
  EXPECT_LT(rtt, sim::microseconds(200));
}

}  // namespace
}  // namespace clicsim
