// Logging and histogram rendering (smoke coverage for the diagnostics).
#include <gtest/gtest.h>

#include <sstream>

#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace clicsim::sim {
namespace {

TEST(Logging, LevelGateSuppressesBelowThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  Simulator sim;
  int evaluated = 0;
  // The streamed expression must not be evaluated when gated off.
  CLICSIM_LOG(sim, LogLevel::kDebug, "test") << ++evaluated;
  EXPECT_EQ(evaluated, 0);
  set_log_level(LogLevel::kTrace);
  CLICSIM_LOG(sim, LogLevel::kDebug, "test") << ++evaluated;
  EXPECT_EQ(evaluated, 1);
  set_log_level(before);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Histogram, PrintRendersBars) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(10);
  for (int i = 0; i < 10; ++i) h.add(1000);
  std::ostringstream os;
  h.print(os, "latency");
  const std::string s = os.str();
  EXPECT_NE(s.find("latency (n=110)"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Histogram, EmptyPrintsHeaderOnly) {
  Histogram h;
  std::ostringstream os;
  h.print(os, "empty");
  EXPECT_NE(os.str().find("(n=0)"), std::string::npos);
}

TEST(SeriesTable, RendersSharedGrid) {
  Series a("alpha");
  Series b("beta");
  a.add(1, 10);
  a.add(2, 20);
  b.add(1, 30);
  b.add(2, 40);
  std::ostringstream os;
  print_series_table(os, "x", {&a, &b});
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("40.0"), std::string::npos);
}

}  // namespace
}  // namespace clicsim::sim
