// Tests for the TCP/IP baseline stack: IP fragmentation, TCP state machine
// behaviours (handshake, flow/congestion control mechanics, Nagle, zero
// windows, retransmission), and UDP.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

using apps::TcpBed;

// --- IP layer ---------------------------------------------------------------------

TEST(IpLayer, FragmentsAndReassemblesAcrossMtu) {
  TcpBed bed;
  bed.cluster.set_mtu_all(1500);

  struct Sink : tcpip::IpTransport {
    std::vector<net::Buffer> datagrams;
    void datagram_received(int, net::HeaderBlob, net::Buffer payload,
                           sim::CpuPriority) override {
      datagrams.push_back(std::move(payload));
    }
  } sink;
  bed.ip[1]->register_transport(200, &sink);

  net::Buffer payload = net::Buffer::pattern(10000, 3);
  bed.ip[0]->send(1, 200, net::HeaderBlob::of(int{0}, 8), 8, payload);
  bed.sim.run();

  ASSERT_EQ(sink.datagrams.size(), 1u);
  EXPECT_TRUE(sink.datagrams[0].content_equals(payload));
  EXPECT_GT(bed.ip[0]->fragments_sent(), 6u);
}

TEST(IpLayer, ReassemblyTimeoutDropsIncompleteDatagrams) {
  tcpip::Config cfg;
  cfg.reassembly_timeout = sim::milliseconds(5);
  TcpBed bed({}, cfg);
  bed.cluster.set_mtu_all(1500);
  // Drop one mid-datagram fragment; no transport retransmits raw IP.
  bed.cluster.link(0).faults(0).drop_frame_index(3);

  struct Sink : tcpip::IpTransport {
    int count = 0;
    void datagram_received(int, net::HeaderBlob, net::Buffer,
                           sim::CpuPriority) override {
      ++count;
    }
  } sink;
  bed.ip[1]->register_transport(200, &sink);
  bed.ip[0]->send(1, 200, net::HeaderBlob::of(int{0}, 8), 8,
                  net::Buffer::zeros(10000));
  bed.sim.run_until(sim::milliseconds(50));
  EXPECT_EQ(sink.count, 0);
  EXPECT_EQ(bed.ip[1]->reassembly_timeouts(), 1u);
}

// --- TCP ---------------------------------------------------------------------------

struct TcpPair {
  TcpBed bed;
  tcpip::TcpSocket* client = nullptr;
  tcpip::TcpSocket* server = nullptr;
  bool connected = false;

  explicit TcpPair(tcpip::Config cfg = {}) : bed({}, cfg) {
    bed.tcp[1]->listen(5000);
    establish(*this);
    bed.sim.run();
    EXPECT_TRUE(connected);
  }

  static sim::Task establish(TcpPair& p) {
    auto& sock = p.bed.tcp[0]->create_socket();
    p.client = &sock;
    const bool ok = co_await sock.connect(1, 5000);
    EXPECT_TRUE(ok);
    p.server = co_await p.bed.tcp[1]->accept(5000);
    p.connected = ok && p.server != nullptr;
  }
};

TEST(Tcp, HandshakeEstablishesBothEnds) {
  TcpPair p;
  EXPECT_TRUE(p.client->established());
  EXPECT_TRUE(p.server->established());
  EXPECT_EQ(p.server->remote_node(), 0);
}

TEST(Tcp, StreamIntegrityAcrossManyWrites) {
  TcpPair p;
  struct Run {
    static sim::Task tx(tcpip::TcpSocket& s) {
      for (int i = 0; i < 10; ++i) {
        (void)co_await s.send(net::Buffer::pattern(3000 + 17 * i, i));
      }
      s.close();
    }
    static sim::Task rx(tcpip::TcpSocket& s, int* ok) {
      for (int i = 0; i < 10; ++i) {
        net::Buffer b = co_await s.recv_exact(3000 + 17 * i);
        if (b.content_equals(net::Buffer::pattern(3000 + 17 * i, i))) ++*ok;
      }
    }
  };
  int ok = 0;
  Run::tx(*p.client);
  Run::rx(*p.server, &ok);
  p.bed.sim.run();
  EXPECT_EQ(ok, 10);
}

TEST(Tcp, EofAfterFin) {
  TcpPair p;
  struct Run {
    static sim::Task tx(tcpip::TcpSocket& s) {
      (void)co_await s.send(net::Buffer::zeros(100));
      s.close();
    }
    static sim::Task rx(tcpip::TcpSocket& s, bool* got_eof) {
      (void)co_await s.recv_exact(100);
      net::Buffer eof = co_await s.recv(1000);
      *got_eof = eof.size() == 0;
    }
  };
  bool got_eof = false;
  Run::tx(*p.client);
  Run::rx(*p.server, &got_eof);
  p.bed.sim.run();
  EXPECT_TRUE(got_eof);
  EXPECT_TRUE(p.server->peer_closed());
}

TEST(Tcp, FastRetransmitOnDupAcks) {
  TcpPair p;
  // Drop one data frame mid-stream; later segments generate dup acks.
  p.bed.cluster.link(0).faults(0).drop_frame_index(8);
  struct Run {
    static sim::Task tx(tcpip::TcpSocket& s) {
      (void)co_await s.send(net::Buffer::zeros(300000));
    }
    static sim::Task rx(tcpip::TcpSocket& s, bool* done) {
      (void)co_await s.recv_exact(300000);
      *done = true;
    }
  };
  bool done = false;
  Run::tx(*p.client);
  Run::rx(*p.server, &done);
  p.bed.sim.run_until(sim::seconds(2));
  EXPECT_TRUE(done);
  EXPECT_GE(p.client->fast_retransmits() + p.client->retransmits(), 1u);
}

TEST(Tcp, SurvivesHeavyRandomLoss) {
  TcpPair p;
  p.bed.cluster.link(0).faults(0).set_seed(5);
  p.bed.cluster.link(0).faults(0).set_drop_probability(0.05);
  p.bed.cluster.link(1).faults(0).set_seed(6);
  p.bed.cluster.link(1).faults(0).set_drop_probability(0.05);
  struct Run {
    static sim::Task tx(tcpip::TcpSocket& s) {
      (void)co_await s.send(net::Buffer::pattern(150000, 77));
    }
    static sim::Task rx(tcpip::TcpSocket& s, bool* ok) {
      net::Buffer b = co_await s.recv_exact(150000);
      *ok = b.content_equals(net::Buffer::pattern(150000, 77));
    }
  };
  bool ok = false;
  Run::tx(*p.client);
  Run::rx(*p.server, &ok);
  p.bed.sim.run_until(sim::seconds(30));
  EXPECT_TRUE(ok);
}

TEST(Tcp, ZeroWindowStallsAndRecovers) {
  tcpip::Config cfg;
  cfg.rcvbuf = 32 * 1024;  // small receive buffer
  TcpPair p(cfg);
  struct Run {
    static sim::Task tx(tcpip::TcpSocket& s, bool* sent) {
      (void)co_await s.send(net::Buffer::zeros(200000));
      *sent = true;
    }
    static sim::Task rx(sim::Simulator& sim, tcpip::TcpSocket& s,
                        bool* got) {
      // Let the window fill and close before draining.
      co_await sim::Delay{sim, sim::milliseconds(20)};
      (void)co_await s.recv_exact(200000);
      *got = true;
    }
  };
  bool sent = false;
  bool got = false;
  Run::tx(*p.client, &sent);
  Run::rx(p.bed.sim, *p.server, &got);
  p.bed.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(sent);
  EXPECT_TRUE(got);
}

TEST(Tcp, NagleHoldsSubMssTail) {
  // With Nagle on, a sub-MSS chunk sent while data is in flight waits; with
  // TCP_NODELAY it goes out immediately. Compare segment counts.
  auto run = [](bool nodelay) {
    tcpip::Config cfg;
    cfg.nodelay = nodelay;
    TcpPair p(cfg);
    struct Run {
      static sim::Task tx(tcpip::TcpSocket& s) {
        (void)co_await s.send(net::Buffer::zeros(9000));
        (void)co_await s.send(net::Buffer::zeros(400));
        (void)co_await s.send(net::Buffer::zeros(400));
      }
      static sim::Task rx(tcpip::TcpSocket& s) {
        (void)co_await s.recv_exact(9800);
      }
    };
    Run::tx(*p.client);
    Run::rx(*p.server);
    p.bed.sim.run_until(sim::milliseconds(100));
    return p.bed.tcp[0]->segments_sent();
  };
  // Nagle coalesces the two 400 B writes into one tail segment.
  EXPECT_LT(run(false), run(true));
}

TEST(Tcp, CwndGrowsFromSlowStart) {
  TcpPair p;
  const auto initial = p.client->cwnd();
  struct Run {
    static sim::Task tx(tcpip::TcpSocket& s) {
      (void)co_await s.send(net::Buffer::zeros(500000));
    }
    static sim::Task rx(tcpip::TcpSocket& s) {
      (void)co_await s.recv_exact(500000);
    }
  };
  Run::tx(*p.client);
  Run::rx(*p.server);
  p.bed.sim.run();
  EXPECT_GT(p.client->cwnd(), 4 * initial);
}

TEST(Tcp, ConnectToNonListeningPortTimesOutWithoutCrash) {
  TcpBed bed;
  bool completed = false;
  struct Run {
    static sim::Task go(tcpip::TcpStack& t, bool* completed) {
      auto& s = t.create_socket();
      (void)co_await s.connect(1, 9999);  // nobody listens: SYN retries
      *completed = true;
    }
  };
  Run::go(*bed.tcp[0], &completed);
  bed.sim.run_until(sim::seconds(2));
  EXPECT_FALSE(completed);  // never established (no RST modelling)
}

// --- UDP ---------------------------------------------------------------------------

TEST(Udp, DatagramRoundTripWithIntegrity) {
  TcpBed bed;
  bed.udp[1]->bind(6000);
  net::Buffer payload = net::Buffer::pattern(800, 2);
  struct Run {
    static sim::Task tx(tcpip::UdpStack& u, net::Buffer d) {
      (void)co_await u.sendto(6001, 1, 6000, std::move(d));
    }
    static sim::Task rx(tcpip::UdpStack& u, net::Buffer expect, bool* ok) {
      tcpip::UdpDatagram d = co_await u.recvfrom(6000);
      *ok = d.src_node == 0 && d.src_port == 6001 &&
            d.data.content_equals(expect);
    }
  };
  bool ok = false;
  Run::tx(*bed.udp[0], payload);
  Run::rx(*bed.udp[1], payload, &ok);
  bed.sim.run();
  EXPECT_TRUE(ok);
}

TEST(Udp, LargeDatagramUsesIpFragmentation) {
  TcpBed bed;
  bed.cluster.set_mtu_all(1500);
  bed.udp[1]->bind(6000);
  net::Buffer payload = net::Buffer::pattern(20000, 8);
  struct Run {
    static sim::Task tx(tcpip::UdpStack& u, net::Buffer d) {
      (void)co_await u.sendto(6001, 1, 6000, std::move(d));
    }
    static sim::Task rx(tcpip::UdpStack& u, net::Buffer expect, bool* ok) {
      tcpip::UdpDatagram d = co_await u.recvfrom(6000);
      *ok = d.data.content_equals(expect);
    }
  };
  bool ok = false;
  Run::tx(*bed.udp[0], payload);
  Run::rx(*bed.udp[1], payload, &ok);
  bed.sim.run();
  EXPECT_TRUE(ok);
}

TEST(Udp, UnboundPortDrops) {
  TcpBed bed;
  struct Run {
    static sim::Task tx(tcpip::UdpStack& u) {
      (void)co_await u.sendto(6001, 1, 6000, net::Buffer::zeros(100));
    }
  };
  Run::tx(*bed.udp[0]);
  bed.sim.run();
  EXPECT_EQ(bed.udp[1]->dropped_unbound(), 1u);
}

TEST(Udp, LossIsSilent) {
  TcpBed bed;
  bed.udp[1]->bind(6000);
  bed.cluster.link(0).faults(0).drop_frame_index(0);
  struct Run {
    static sim::Task tx(tcpip::UdpStack& u) {
      (void)co_await u.sendto(6001, 1, 6000, net::Buffer::zeros(100));
    }
  };
  Run::tx(*bed.udp[0]);
  bed.sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(bed.udp[1]->datagrams_received(), 0u);
}

}  // namespace
}  // namespace clicsim
