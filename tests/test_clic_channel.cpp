// Unit tests for the CLIC reliable channel: windowing, cumulative acks,
// retransmission, reordering, duplicates.
#include <gtest/gtest.h>

#include <vector>

#include "clic/channel.hpp"
#include "hw/cpu.hpp"
#include "os/kernel.hpp"
#include "sim/simulator.hpp"

namespace clicsim::clic {
namespace {

// A ChannelOps that records emissions instead of touching hardware, so the
// channel state machine is tested in isolation.
struct FakeOps : ChannelOps {
  sim::Simulator sim;
  hw::HostParams host;
  hw::Cpu cpu{sim, host, "cpu"};
  os::Kernel kern{sim, cpu};

  std::vector<Packet> emitted;
  std::vector<ClicHeader> acks;
  std::vector<Packet> delivered;

  void emit_data(int, Packet& p) override { emitted.push_back(p); }
  void emit_ack(int, const ClicHeader& h) override { acks.push_back(h); }
  void deliver(int, Packet p) override { delivered.push_back(std::move(p)); }
  os::Kernel& kernel() override { return kern; }
};

Packet data_packet(std::uint8_t flags = flags::kFirstFragment |
                                        flags::kLastFragment) {
  Packet p;
  p.header.type = PacketType::kUser;
  p.header.flags = flags;
  p.payload = net::Buffer::zeros(100);
  return p;
}

TEST(Channel, AssignsConsecutiveSequenceNumbers) {
  FakeOps ops;
  Config cfg;
  Channel ch(cfg, ops, 1);
  for (int i = 0; i < 5; ++i) ch.send(data_packet());
  ASSERT_EQ(ops.emitted.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ops.emitted[i].header.seq, i);
  }
}

TEST(Channel, WindowBlocksExcessAndAcksRelease) {
  FakeOps ops;
  Config cfg;
  cfg.window_packets = 4;
  Channel ch(cfg, ops, 1);
  for (int i = 0; i < 10; ++i) ch.send(data_packet());
  EXPECT_EQ(ops.emitted.size(), 4u);
  EXPECT_EQ(ch.pending(), 6u);

  // Cumulative ack for the first 3: window slides, 3 more go out.
  ClicHeader ack;
  ack.flags = flags::kPureAck;
  ack.ack = 3;
  ch.packet_in(ack, {}, net::Buffer::zeros(0));
  EXPECT_EQ(ops.emitted.size(), 7u);
  EXPECT_EQ(ch.in_flight(), 4);
}

TEST(Channel, OnAckedFiresOnCumulativeAck) {
  FakeOps ops;
  Config cfg;
  Channel ch(cfg, ops, 1);
  int acked = 0;
  ch.send(data_packet(), [&](bool ok) { acked += ok ? 1 : 0; });
  ch.send(data_packet(), [&](bool ok) { acked += ok ? 1 : 0; });
  ch.send(data_packet(), [&](bool ok) { acked += ok ? 1 : 0; });
  ClicHeader ack;
  ack.flags = flags::kPureAck;
  ack.ack = 2;  // acks seq 0 and 1
  ch.packet_in(ack, {}, net::Buffer::zeros(0));
  EXPECT_EQ(acked, 2);
}

TEST(Channel, InOrderDeliveryAndAckAccounting) {
  FakeOps ops;
  Config cfg;
  cfg.ack_every = 2;
  Channel ch(cfg, ops, 1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ClicHeader h;
    h.seq = i;
    h.flags = flags::kFirstFragment | flags::kLastFragment;
    ch.packet_in(h, {}, net::Buffer::zeros(10));
  }
  EXPECT_EQ(ops.delivered.size(), 4u);
  EXPECT_EQ(ch.rx_next(), 4u);
  EXPECT_EQ(ops.acks.size(), 2u);  // one per ack_every=2
  EXPECT_EQ(ops.acks.back().ack, 4u);
}

TEST(Channel, ReordersOutOfOrderArrivals) {
  FakeOps ops;
  Config cfg;
  Channel ch(cfg, ops, 1);
  auto arrive = [&](std::uint32_t seq) {
    ClicHeader h;
    h.seq = seq;
    h.flags = flags::kFirstFragment | flags::kLastFragment;
    ch.packet_in(h, {}, net::Buffer::zeros(10));
  };
  arrive(2);
  arrive(1);
  EXPECT_EQ(ops.delivered.size(), 0u);
  EXPECT_EQ(ch.out_of_order(), 2u);
  arrive(0);
  ASSERT_EQ(ops.delivered.size(), 3u);
  EXPECT_EQ(ops.delivered[0].header.seq, 0u);
  EXPECT_EQ(ops.delivered[1].header.seq, 1u);
  EXPECT_EQ(ops.delivered[2].header.seq, 2u);
}

TEST(Channel, DuplicateTriggersImmediateReAck) {
  FakeOps ops;
  Config cfg;
  cfg.ack_every = 100;  // ensure the re-ack is the dup path, not the count
  Channel ch(cfg, ops, 1);
  ClicHeader h;
  h.seq = 0;
  h.flags = flags::kFirstFragment | flags::kLastFragment;
  ch.packet_in(h, {}, net::Buffer::zeros(10));
  const auto acks_before = ops.acks.size();
  ch.packet_in(h, {}, net::Buffer::zeros(10));  // duplicate
  EXPECT_EQ(ch.duplicates(), 1u);
  EXPECT_EQ(ops.acks.size(), acks_before + 1);
  EXPECT_EQ(ops.delivered.size(), 1u);
}

TEST(Channel, RetransmitsOldestOnTimeout) {
  FakeOps ops;
  Config cfg;
  cfg.rto = sim::milliseconds(1.0);
  Channel ch(cfg, ops, 1);
  ch.send(data_packet());
  ch.send(data_packet());
  EXPECT_EQ(ops.emitted.size(), 2u);
  ops.sim.run_until(sim::milliseconds(1.5));
  EXPECT_EQ(ch.retransmits(), 1u);
  ASSERT_EQ(ops.emitted.size(), 3u);
  EXPECT_EQ(ops.emitted[2].header.seq, 0u);  // oldest unacked
}

TEST(Channel, AckCancelsRetransmitTimer) {
  FakeOps ops;
  Config cfg;
  cfg.rto = sim::milliseconds(1.0);
  Channel ch(cfg, ops, 1);
  ch.send(data_packet());
  ClicHeader ack;
  ack.flags = flags::kPureAck;
  ack.ack = 1;
  ch.packet_in(ack, {}, net::Buffer::zeros(0));
  ops.sim.run_until(sim::milliseconds(10));
  EXPECT_EQ(ch.retransmits(), 0u);
  EXPECT_EQ(ch.in_flight(), 0);
}

TEST(Channel, DelayedAckTimerFiresWithoutMoreTraffic) {
  FakeOps ops;
  Config cfg;
  cfg.ack_every = 8;
  cfg.ack_delay = sim::microseconds(50);
  Channel ch(cfg, ops, 1);
  ClicHeader h;
  h.seq = 0;
  h.flags = flags::kFirstFragment | flags::kLastFragment;
  ch.packet_in(h, {}, net::Buffer::zeros(10));
  EXPECT_EQ(ops.acks.size(), 0u);
  ops.sim.run_until(sim::microseconds(100));
  ASSERT_EQ(ops.acks.size(), 1u);
  EXPECT_EQ(ops.acks[0].ack, 1u);
}

TEST(Channel, AckRequestedForcesImmediatePureAck) {
  FakeOps ops;
  Config cfg;
  cfg.ack_every = 100;
  cfg.ack_delay = sim::seconds(1);
  Channel ch(cfg, ops, 1);
  ClicHeader h;
  h.seq = 0;
  h.flags = flags::kFirstFragment | flags::kLastFragment |
            flags::kAckRequested;
  ch.packet_in(h, {}, net::Buffer::zeros(10));
  EXPECT_EQ(ops.acks.size(), 1u);
}

TEST(Channel, PiggybackAckClearsOwedState) {
  FakeOps ops;
  Config cfg;
  cfg.ack_every = 2;
  Channel ch(cfg, ops, 1);
  ClicHeader h;
  h.seq = 0;
  h.flags = flags::kFirstFragment | flags::kLastFragment;
  ch.packet_in(h, {}, net::Buffer::zeros(10));  // one ack owed
  // Outbound data picks up the ack.
  ch.send(data_packet());
  ASSERT_EQ(ops.emitted.size(), 1u);
  EXPECT_EQ(ops.emitted[0].header.ack, 1u);
  // The owed counter was cleared: the next inbound packet is #1 again.
  ClicHeader h2 = h;
  h2.seq = 1;
  ch.packet_in(h2, {}, net::Buffer::zeros(10));
  EXPECT_EQ(ops.acks.size(), 0u);  // threshold (2) not re-reached
}

TEST(Channel, BackoffGrowsGeometricallyAndCaps) {
  FakeOps ops;
  Config cfg;
  cfg.rto = sim::milliseconds(1.0);
  cfg.rto_backoff = 2.0;
  cfg.rto_max = sim::milliseconds(8.0);
  cfg.rto_jitter = 0.0;  // exact expiry times
  cfg.max_retries = 100;
  Channel ch(cfg, ops, 1);
  ch.send(data_packet());
  // Expiries at 1, 3, 7, 15, 23, 31, 39, 47 ms: geometric up to the cap,
  // then linear at the cap — 8 timeouts in 50 ms instead of 50.
  ops.sim.run_until(sim::milliseconds(50.0));
  EXPECT_EQ(ch.timeouts(), 8u);
  EXPECT_EQ(ch.retransmits(), 8u);
  EXPECT_EQ(ch.current_rto(), cfg.rto_max);
}

TEST(Channel, ProgressResetsBackoff) {
  FakeOps ops;
  Config cfg;
  cfg.rto = sim::milliseconds(1.0);
  cfg.rto_backoff = 2.0;
  cfg.rto_jitter = 0.0;
  Channel ch(cfg, ops, 1);
  ch.send(data_packet());
  ch.send(data_packet());
  ops.sim.run_until(sim::milliseconds(4.5));  // expiries at 1, 3 ms
  EXPECT_EQ(ch.backoff_level(), 2);
  ClicHeader ack;
  ack.flags = flags::kPureAck;
  ack.ack = 1;  // fresh progress, one packet still outstanding
  ch.packet_in(ack, {}, net::Buffer::zeros(0));
  EXPECT_EQ(ch.backoff_level(), 0);
  EXPECT_EQ(ch.current_rto(), cfg.rto);
}

TEST(Channel, GivesUpAfterRetryBudgetAndFailsOutstandingSends) {
  FakeOps ops;
  Config cfg;
  cfg.rto = sim::milliseconds(1.0);
  cfg.rto_backoff = 2.0;
  cfg.rto_max = sim::milliseconds(4.0);
  cfg.rto_jitter = 0.0;
  cfg.max_retries = 3;
  cfg.window_packets = 1;  // second send is window-blocked in pending_
  Channel ch(cfg, ops, 1);
  std::vector<bool> results;
  ch.send(data_packet(), [&](bool ok) { results.push_back(ok); });
  ch.send(data_packet(), [&](bool ok) { results.push_back(ok); });
  ops.sim.run_until(sim::seconds(1.0));
  // Retransmits are budgeted, not endless.
  EXPECT_EQ(ch.retransmits(), 3u);
  EXPECT_EQ(ch.timeouts(), 4u);  // 3 retries + the expiry that gave up
  EXPECT_EQ(ch.gave_up(), 1u);
  // Both sends resolved as failed — transmitted and window-blocked alike.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0]);
  EXPECT_FALSE(results[1]);
  EXPECT_EQ(ch.in_flight(), 0);
  EXPECT_EQ(ch.pending(), 0u);
  // No orphan timer keeps ticking after the give-up.
  EXPECT_EQ(ops.kern.timer_wheel().size(), 0u);
}

TEST(Channel, FirstSendAfterGiveUpCarriesReset) {
  FakeOps ops;
  Config cfg;
  cfg.rto = sim::milliseconds(1.0);
  cfg.rto_jitter = 0.0;
  cfg.max_retries = 0;  // give up on the first expiry
  Channel ch(cfg, ops, 1);
  ch.send(data_packet());
  ops.sim.run_until(sim::milliseconds(10.0));
  EXPECT_EQ(ch.gave_up(), 1u);
  ch.send(data_packet());
  ASSERT_EQ(ops.emitted.size(), 2u);
  EXPECT_NE(ops.emitted[1].header.flags & flags::kReset, 0);
  // Only the first post-give-up packet carries the flag.
  ch.send(data_packet());
  ASSERT_EQ(ops.emitted.size(), 3u);
  EXPECT_EQ(ops.emitted[2].header.flags & flags::kReset, 0);
}

TEST(Channel, ReceiverAdoptsResetForwardOnly) {
  FakeOps ops;
  Config cfg;
  Channel ch(cfg, ops, 1);
  auto arrive = [&](std::uint32_t seq, std::uint8_t extra = 0) {
    ClicHeader h;
    h.seq = seq;
    h.flags = static_cast<std::uint8_t>(flags::kFirstFragment |
                                        flags::kLastFragment | extra);
    ch.packet_in(h, {}, net::Buffer::zeros(10));
  };
  arrive(0);
  EXPECT_EQ(ch.rx_next(), 1u);
  // The sender abandoned [1, 5) during an outage; seq 5 carries the reset.
  arrive(5, flags::kReset);
  EXPECT_EQ(ch.resets_accepted(), 1u);
  EXPECT_EQ(ch.rx_next(), 6u);
  EXPECT_EQ(ops.delivered.size(), 2u);
  // A duplicated/reordered stale reset must not rewind the window.
  arrive(2, flags::kReset);
  EXPECT_EQ(ch.resets_accepted(), 1u);
  EXPECT_EQ(ch.rx_next(), 6u);
  EXPECT_EQ(ch.duplicates(), 1u);
  EXPECT_EQ(ops.delivered.size(), 2u);
}

TEST(Channel, ResetPurgesStaleReorderBuffer) {
  FakeOps ops;
  Config cfg;
  Channel ch(cfg, ops, 1);
  auto arrive = [&](std::uint32_t seq, std::uint8_t extra = 0) {
    ClicHeader h;
    h.seq = seq;
    h.flags = static_cast<std::uint8_t>(flags::kFirstFragment |
                                        flags::kLastFragment | extra);
    ch.packet_in(h, {}, net::Buffer::zeros(10));
  };
  arrive(2);  // buffered out-of-order, then its gap is abandoned
  arrive(7);
  EXPECT_EQ(ops.delivered.size(), 0u);
  arrive(4, flags::kReset);  // sender's new base is 4
  // Seq 2 (below the new base) was purged; 4 delivered; 7 still buffered.
  EXPECT_EQ(ops.delivered.size(), 1u);
  EXPECT_EQ(ops.delivered[0].header.seq, 4u);
  EXPECT_EQ(ch.rx_next(), 5u);
}

TEST(Channel, RetransmissionDoesNotRefireDescriptorCallback) {
  FakeOps ops;
  Config cfg;
  cfg.rto = sim::milliseconds(1.0);
  Channel ch(cfg, ops, 1);
  Packet p = data_packet();
  int descriptor_done = 0;
  p.on_descriptor_done = [&] { ++descriptor_done; };
  ch.send(std::move(p));
  ops.sim.run_until(sim::milliseconds(5));
  EXPECT_GE(ch.retransmits(), 1u);
  // The stored retransmission copy must have a cleared callback.
  for (std::size_t i = 1; i < ops.emitted.size(); ++i) {
    EXPECT_FALSE(static_cast<bool>(ops.emitted[i].on_descriptor_done));
  }
}

}  // namespace
}  // namespace clicsim::clic
