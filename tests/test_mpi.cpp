// Tests for the mini-MPI layer: matching semantics, eager vs rendezvous,
// and collectives — parameterized over both transports (CLIC and TCP).
#include <gtest/gtest.h>

#include <memory>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

// A transport-agnostic harness: builds the bed, returns communicators.
struct MpiWorld {
  std::unique_ptr<apps::MpiClicBed> clic;
  std::unique_ptr<apps::MpiTcpBed> tcp;
  bool ready = false;

  MpiWorld(const std::string& transport, int ranks) {
    os::ClusterConfig cc;
    cc.nodes = ranks;
    if (transport == "clic") {
      clic = std::make_unique<apps::MpiClicBed>(cc);
      ready = true;
    } else {
      tcp = std::make_unique<apps::MpiTcpBed>(cc);
      wait_connect(*this);
      sim().run();
      EXPECT_TRUE(ready);
    }
  }

  static sim::Task wait_connect(MpiWorld& w) {
    w.ready = co_await w.tcp->connect();
  }

  mpi::Communicator& comm(int r) {
    return clic ? clic->comm(r) : tcp->comm(r);
  }
  sim::Simulator& sim() { return clic ? clic->sim() : tcp->sim(); }
};

class MpiBothTransports : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Transports, MpiBothTransports,
                         ::testing::Values("clic", "tcp"));

TEST_P(MpiBothTransports, EagerSendRecvWithIntegrity) {
  MpiWorld w(GetParam(), 2);
  net::Buffer payload = net::Buffer::pattern(4096, 1);
  struct Run {
    static sim::Task tx(mpi::Communicator& c, net::Buffer d) {
      (void)co_await c.send(1, 42, std::move(d));
    }
    static sim::Task rx(mpi::Communicator& c, net::Buffer expect, bool* ok) {
      mpi::RecvResult r = co_await c.recv(0, 42);
      *ok = r.src == 0 && r.tag == 42 && r.data.content_equals(expect);
    }
  };
  bool ok = false;
  Run::tx(w.comm(0), payload);
  Run::rx(w.comm(1), payload, &ok);
  w.sim().run();
  EXPECT_TRUE(ok);
}

TEST_P(MpiBothTransports, RendezvousForLargeMessages) {
  MpiWorld w(GetParam(), 2);
  net::Buffer payload = net::Buffer::pattern(200000, 6);  // > threshold
  struct Run {
    static sim::Task tx(mpi::Communicator& c, net::Buffer d, bool* done) {
      (void)co_await c.send(1, 1, std::move(d));
      *done = true;
    }
    static sim::Task rx(mpi::Communicator& c, net::Buffer expect, bool* ok) {
      mpi::RecvResult r = co_await c.recv(0, 1);
      *ok = r.data.content_equals(expect);
    }
  };
  bool sent = false;
  bool ok = false;
  Run::tx(w.comm(0), payload, &sent);
  Run::rx(w.comm(1), payload, &ok);
  w.sim().run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.comm(0).rendezvous_sends(), 1u);
}

TEST_P(MpiBothTransports, WildcardSourceAndTag) {
  MpiWorld w(GetParam(), 3);
  struct Run {
    static sim::Task tx(mpi::Communicator& c, int tag) {
      (void)co_await c.send(2, tag, net::Buffer::zeros(100));
    }
    static sim::Task rx(mpi::Communicator& c, std::vector<int>* srcs) {
      for (int i = 0; i < 2; ++i) {
        mpi::RecvResult r = co_await c.recv(mpi::kAnySource, mpi::kAnyTag);
        srcs->push_back(r.src);
      }
    }
  };
  std::vector<int> srcs;
  Run::tx(w.comm(0), 1);
  Run::tx(w.comm(1), 2);
  Run::rx(w.comm(2), &srcs);
  w.sim().run();
  ASSERT_EQ(srcs.size(), 2u);
  EXPECT_NE(srcs[0], srcs[1]);
}

TEST_P(MpiBothTransports, TagSelectivityLeavesUnexpectedQueued) {
  MpiWorld w(GetParam(), 2);
  struct Run {
    static sim::Task tx(mpi::Communicator& c) {
      (void)co_await c.send(1, /*tag=*/7, net::Buffer::pattern(100, 7));
      (void)co_await c.send(1, /*tag=*/8, net::Buffer::pattern(100, 8));
    }
    static sim::Task rx(mpi::Communicator& c, bool* ok) {
      // Receive tag 8 first even though 7 arrived first.
      mpi::RecvResult r8 = co_await c.recv(0, 8);
      mpi::RecvResult r7 = co_await c.recv(0, 7);
      *ok = r8.data.content_equals(net::Buffer::pattern(100, 8)) &&
            r7.data.content_equals(net::Buffer::pattern(100, 7));
    }
  };
  bool ok = false;
  Run::tx(w.comm(0));
  Run::rx(w.comm(1), &ok);
  w.sim().run();
  EXPECT_TRUE(ok);
  EXPECT_GE(w.comm(1).unexpected_messages(), 1u);
}

TEST_P(MpiBothTransports, BarrierSynchronizesRanks) {
  const int n = 5;
  MpiWorld w(GetParam(), n);
  std::vector<sim::SimTime> released(n, 0);
  struct Run {
    static sim::Task go(sim::Simulator& sim, mpi::Communicator& c,
                        sim::SimTime delay, sim::SimTime* out) {
      co_await sim::Delay{sim, delay};
      (void)co_await c.barrier();
      *out = sim.now();
    }
  };
  for (int i = 0; i < n; ++i) {
    Run::go(w.sim(), w.comm(i), sim::microseconds(100.0 * i), &released[i]);
  }
  w.sim().run();
  // Nobody leaves before the slowest entered (400 us).
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(released[i], sim::microseconds(400));
  }
}

TEST_P(MpiBothTransports, BcastDeliversPayloadEverywhere) {
  const int n = 6;
  MpiWorld w(GetParam(), n);
  net::Buffer payload = net::Buffer::pattern(30000, 12);
  int ok = 0;
  struct Run {
    static sim::Task go(mpi::Communicator& c, int root, net::Buffer data,
                        net::Buffer expect, int* ok) {
      net::Buffer out = co_await c.bcast(root, std::move(data));
      if (out.size() == expect.size() && out.content_equals(expect)) ++*ok;
    }
  };
  for (int i = 0; i < n; ++i) {
    Run::go(w.comm(i), 2, i == 2 ? payload : net::Buffer{}, payload, &ok);
  }
  w.sim().run();
  EXPECT_EQ(ok, n);
}

TEST_P(MpiBothTransports, GatherCollectsAllContributions) {
  const int n = 4;
  MpiWorld w(GetParam(), n);
  std::vector<net::Buffer> got;
  struct Run {
    static sim::Task go(mpi::Communicator& c, int root,
                        std::vector<net::Buffer>* out) {
      auto v = co_await c.gather(root, net::Buffer::pattern(64, c.rank()));
      if (c.rank() == root) *out = std::move(v);
    }
  };
  for (int i = 0; i < n; ++i) Run::go(w.comm(i), 1, &got);
  w.sim().run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(got[i].content_equals(net::Buffer::pattern(64, i)))
        << "rank " << i;
  }
}

TEST_P(MpiBothTransports, AllreduceReturnsFullSizeEverywhere) {
  const int n = 4;
  MpiWorld w(GetParam(), n);
  int ok = 0;
  struct Run {
    static sim::Task go(mpi::Communicator& c, int* ok) {
      net::Buffer out = co_await c.allreduce_sum(net::Buffer::zeros(1024));
      if (out.size() == 1024) ++*ok;
    }
  };
  for (int i = 0; i < n; ++i) Run::go(w.comm(i), &ok);
  w.sim().run();
  EXPECT_EQ(ok, n);
}

TEST_P(MpiBothTransports, ManyInterleavedMessagesKeepPairOrder) {
  MpiWorld w(GetParam(), 2);
  struct Run {
    static sim::Task tx(mpi::Communicator& c) {
      for (int i = 0; i < 30; ++i) {
        (void)co_await c.send(1, 5, net::Buffer::pattern(64 + i, i));
      }
    }
    static sim::Task rx(mpi::Communicator& c, int* in_order) {
      for (int i = 0; i < 30; ++i) {
        mpi::RecvResult r = co_await c.recv(0, 5);
        if (r.data.size() == 64 + i) ++*in_order;
      }
    }
  };
  int in_order = 0;
  Run::tx(w.comm(0));
  Run::rx(w.comm(1), &in_order);
  w.sim().run();
  EXPECT_EQ(in_order, 30);  // MPI non-overtaking rule
}

// CLIC-only: the native broadcast path must be exercised (>2 ranks).
TEST(MpiClic, NativeBroadcastUsesEthernetBroadcast) {
  os::ClusterConfig cc;
  cc.nodes = 6;
  apps::MpiClicBed bed(cc);
  net::Buffer payload = net::Buffer::pattern(50000, 3);
  int ok = 0;
  struct Run {
    static sim::Task go(mpi::Communicator& c, net::Buffer data,
                        net::Buffer expect, int* ok) {
      net::Buffer out = co_await c.bcast(0, std::move(data));
      if (out.content_equals(expect)) ++*ok;
    }
  };
  for (int i = 0; i < 6; ++i) {
    Run::go(bed.comm(i), i == 0 ? payload : net::Buffer{}, payload, &ok);
  }
  bed.sim().run();
  EXPECT_EQ(ok, 6);
  // Root transmitted the payload once (plus control), not 5 times: frames
  // on its link stay well below the tree's 5x replication.
  const auto frames = bed.bed.cluster.link(0).frames_sent(0);
  EXPECT_LT(frames, 2.5 * 50000 / 1488 + 20);
}

}  // namespace
}  // namespace clicsim
