// Communication patterns over the mini-MPI: nonblocking bursts with
// when_all (MPI_Waitall), ring shifts, and pipelined stages.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim {
namespace {

TEST(MpiPatterns, WaitAllOnABurstOfISends) {
  apps::MpiClicBed bed;
  bool all_sent = false;
  int received = 0;
  struct Run {
    static sim::Task tx(sim::Simulator& sim, mpi::Communicator& c,
                        bool* done) {
      std::vector<sim::Future<bool>> requests;
      for (int i = 0; i < 8; ++i) {
        requests.push_back(c.send(1, 100 + i, net::Buffer::zeros(4000)));
      }
      (void)co_await sim::when_all(sim, std::move(requests));
      *done = true;
    }
    static sim::Task rx(mpi::Communicator& c, int* received) {
      // Post in reverse tag order: matching must still pair correctly.
      for (int i = 7; i >= 0; --i) {
        mpi::RecvResult r = co_await c.recv(0, 100 + i);
        if (r.tag == 100 + i) ++*received;
      }
    }
  };
  Run::tx(bed.sim(), bed.comm(0), &all_sent);
  Run::rx(bed.comm(1), &received);
  bed.sim().run();
  EXPECT_TRUE(all_sent);
  EXPECT_EQ(received, 8);
}

TEST(MpiPatterns, RingShiftCompletesOnEveryRank) {
  constexpr int kRanks = 6;
  os::ClusterConfig cc;
  cc.nodes = kRanks;
  apps::MpiClicBed bed(cc);
  int ok = 0;
  struct Run {
    static sim::Task go(mpi::Communicator& c, int* ok) {
      const int right = (c.rank() + 1) % c.size();
      const int left = (c.rank() - 1 + c.size()) % c.size();
      // Nonblocking send right, blocking receive from the left.
      auto req = c.send(right, 5, net::Buffer::pattern(2048, c.rank()));
      mpi::RecvResult r = co_await c.recv(left, 5);
      (void)co_await req;
      if (r.src == left &&
          r.data.content_equals(net::Buffer::pattern(2048, left))) {
        ++*ok;
      }
    }
  };
  for (int i = 0; i < kRanks; ++i) Run::go(bed.comm(i), &ok);
  bed.sim().run();
  EXPECT_EQ(ok, kRanks);
}

TEST(MpiPatterns, PipelineBottlenecksOnMiddleNodesPci) {
  // rank0 -> rank1 -> rank2 pipeline of 10 blocks. Even with preposted
  // receives, the middle node's single 33 MHz PCI bus carries BOTH the
  // inbound and the outbound transfer, so the pipeline runs at half the
  // point-to-point rate — the 2002-hardware reality the paper's section 1
  // gestures at ("the I/O buses have become the bottleneck").
  os::ClusterConfig cc;
  cc.nodes = 3;
  apps::MpiClicBed bed(cc);
  constexpr int kBlocks = 10;
  constexpr std::int64_t kBlock = 256 * 1024;
  sim::SimTime done_at = 0;

  struct Run {
    static sim::Task src(mpi::Communicator& c) {
      for (int i = 0; i < kBlocks; ++i) {
        (void)co_await c.send(1, i, net::Buffer::zeros(kBlock));
      }
    }
    static sim::Task mid(mpi::Communicator& c) {
      // Prepost the next receive before forwarding the current block, so
      // the inbound transfer overlaps the outbound one (true pipelining).
      auto pending = c.recv(0, 0);
      for (int i = 0; i < kBlocks; ++i) {
        mpi::RecvResult r = co_await pending;
        if (i + 1 < kBlocks) pending = c.recv(0, i + 1);
        (void)co_await c.send(2, i, std::move(r.data));
      }
    }
    static sim::Task sink(sim::Simulator& sim, mpi::Communicator& c,
                          sim::SimTime* done_at) {
      for (int i = 0; i < kBlocks; ++i) (void)co_await c.recv(1, i);
      *done_at = sim.now();
    }
  };
  Run::src(bed.comm(0));
  Run::mid(bed.comm(1));
  Run::sink(bed.sim(), bed.comm(2), &done_at);
  bed.sim().run();

  // One hop of all blocks at the ~600 Mb/s asymptote is ~35 ms; the
  // middle node's shared PCI makes the two-hop chain ~2x that, and the
  // bus should be near-saturated for the duration.
  const double ms = sim::to_ms(done_at);
  EXPECT_GT(ms, 55.0);
  EXPECT_LT(ms, 95.0);
  EXPECT_GT(bed.bed.cluster.node(1).pci().utilization(), 0.75);
}

TEST(MpiPatterns, WhenAllWithEmptySetCompletesImmediately) {
  sim::Simulator sim;
  auto done = sim::when_all(sim, std::vector<sim::Future<bool>>{});
  bool finished = false;
  struct Run {
    static sim::Task go(sim::Future<bool> f, bool* out) {
      *out = co_await f;
    }
  };
  Run::go(done, &finished);
  sim.run();
  EXPECT_TRUE(finished);
}

}  // namespace
}  // namespace clicsim
