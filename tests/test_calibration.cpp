// Calibration regression: pins the reproduced headline numbers so model
// refactors cannot silently break the reproduction. Tolerances are tighter
// than the bench harness's "shape" bands — these are OUR numbers.
#include <gtest/gtest.h>

#include "apps/workloads.hpp"

namespace clicsim {
namespace {

TEST(Calibration, ClicZeroByteLatencyNear36us) {
  apps::Scenario s;
  const double us = sim::to_us(apps::clic_one_way(s, 0));
  EXPECT_NEAR(us, 36.0, 4.0);
}

TEST(Calibration, ClicAsymptoteMtu9000Near600) {
  apps::Scenario s;
  const double mbps = apps::to_mbps(4 << 20, apps::clic_one_way(s, 4 << 20));
  EXPECT_NEAR(mbps, 600.0, 60.0);
}

TEST(Calibration, ClicAsymptoteMtu1500Near450) {
  apps::Scenario s;
  s.mtu = 1500;
  const double mbps = apps::to_mbps(4 << 20, apps::clic_one_way(s, 4 << 20));
  EXPECT_NEAR(mbps, 450.0, 60.0);
}

TEST(Calibration, ClicBeatsTcpByMoreThanTwoX) {
  apps::Scenario s;
  const double clic = apps::to_mbps(4 << 20, apps::clic_one_way(s, 4 << 20));
  const double tcp = apps::to_mbps(4 << 20, apps::tcp_one_way(s, 4 << 20));
  EXPECT_GT(clic, 2.0 * tcp);
  EXPECT_GT(tcp, 120.0);  // TCP is slow, not broken
}

TEST(Calibration, SyscallRoundTripIs650ns) {
  hw::HostParams host;
  EXPECT_EQ(host.syscall_enter + host.syscall_exit, sim::nanoseconds(650));
}

TEST(Calibration, ClicModuleCostsMatchFigure7) {
  clic::Config cfg;
  EXPECT_EQ(cfg.module_tx_cost, sim::nanoseconds(700));   // 0.7 us
  EXPECT_EQ(cfg.driver_tx_cost, sim::microseconds(4.0));  // 4 us
  EXPECT_EQ(cfg.module_rx_cost, sim::microseconds(2.0));  // ~2 us
}

TEST(Calibration, DirectDispatchImprovesLatency) {
  apps::Scenario stock;
  apps::Scenario direct;
  direct.clic.direct_dispatch = true;
  const auto a = apps::clic_one_way(stock, 1400);
  const auto b = apps::clic_one_way(direct, 1400);
  // Fig. 7b projects ~10-15 us off the receive path.
  EXPECT_GT(a - b, sim::microseconds(6));
  EXPECT_LT(a - b, sim::microseconds(20));
}

TEST(Calibration, GammaIsFasterButClicIsClose) {
  apps::Scenario s;
  apps::Scenario g = s;
  g.cluster.nic = hw::NicProfile::ga620();
  const auto clic = apps::clic_one_way(s, 0);
  const auto gamma = apps::gamma_one_way(g, 0);
  EXPECT_LT(gamma, clic);                           // GAMMA wins on latency
  EXPECT_LT(clic, gamma + sim::microseconds(30));   // but not by miles
}

TEST(Calibration, MpiOverClicWithinReachOfRawClic) {
  apps::Scenario s;
  const double raw =
      apps::to_mbps(1 << 20, apps::clic_one_way(s, 1 << 20));
  const double mpi =
      apps::to_mbps(1 << 20, apps::mpi_clic_one_way(s, 1 << 20));
  EXPECT_GT(mpi, 0.85 * raw);
}

TEST(Calibration, MpiClicAtLeast1_5xMpiTcpForLongMessages) {
  apps::Scenario s;
  const double a = apps::to_mbps(1 << 20, apps::mpi_clic_one_way(s, 1 << 20));
  const double b = apps::to_mbps(1 << 20, apps::mpi_tcp_one_way(s, 1 << 20));
  EXPECT_GE(a, 1.5 * b);
}

TEST(Calibration, PvmTrailsMpiTcp) {
  apps::Scenario s;
  const double mpi = apps::to_mbps(256 << 10, apps::mpi_tcp_one_way(s, 256 << 10));
  const double pvm = apps::to_mbps(256 << 10, apps::pvm_one_way(s, 256 << 10));
  EXPECT_LT(pvm, mpi);
}

}  // namespace
}  // namespace clicsim
