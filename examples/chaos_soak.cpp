// Chaos soak: replay a seeded cluster-wide fault campaign against CLIC and
// TCP and print each campaign's digest plus the fault/degradation report.
//
//   ./chaos_soak                       # seeds 1..4, both stacks
//   ./chaos_soak 7                     # one seed, both stacks
//   ./chaos_soak 7 clic                # one seed, one stack
//   ./chaos_soak --shards 4 7 clic     # same campaign, 4 PDES shards
//   ./chaos_soak --adaptive 7 clic     # adaptive reliability mode (§4k)
//
// Every line is deterministic for a given seed — a failing CI campaign is
// reproduced by passing the seed it printed — and is byte-identical at any
// --shards value. Without --adaptive the output is byte-identical to the
// fixed-clock harness.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/chaos.hpp"

int main(int argc, char** argv) {
  using namespace clicsim;

  int shards = 1;
  bool adaptive = false;
  bool parsing_flags = true;
  while (parsing_flags && argc > 1) {
    const std::string flag = argv[1];
    if (flag == "--shards" && argc > 2) {
      shards = std::atoi(argv[2]);
      if (shards < 1) {
        std::cerr << "chaos_soak: --shards needs a positive count\n";
        return 2;
      }
      argv += 2;
      argc -= 2;
    } else if (flag == "--adaptive") {
      adaptive = true;
      argv += 1;
      argc -= 1;
    } else {
      parsing_flags = false;
    }
  }

  std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  if (argc > 1) seeds = {std::strtoull(argv[1], nullptr, 10)};
  std::vector<apps::ChaosStack> stacks = {apps::ChaosStack::kClic,
                                          apps::ChaosStack::kTcp};
  if (argc > 2) {
    stacks = {std::string(argv[2]) == "tcp" ? apps::ChaosStack::kTcp
                                            : apps::ChaosStack::kClic};
  }

  bool all_ok = true;
  for (apps::ChaosStack stack : stacks) {
    for (std::uint64_t seed : seeds) {
      apps::ChaosOptions o;
      o.stack = stack;
      o.seed = seed;
      o.shards = shards;
      o.adaptive = adaptive;
      const apps::ChaosReport r = apps::run_chaos_campaign(o);
      std::cout << r.summary() << '\n';
      if (!r.liveness_ok()) {
        std::cout << "  LIVENESS VIOLATION (replay with seed " << r.seed
                  << ")\n";
        all_ok = false;
      }
    }
  }
  return all_ok ? 0 : 1;
}
