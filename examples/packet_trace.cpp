// Packet trace: watch a confirmed CLIC send and a TCP handshake on the
// simulated wire, decoded tcpdump-style — the observability tooling in
// action, and a side-by-side view of why CLIC's exchange is so much
// shorter than TCP's.
#include <iostream>

#include "apps/testbed.hpp"
#include "apps/trace.hpp"
#include "sim/task.hpp"

using namespace clicsim;

namespace {

sim::Task clic_side(apps::ClicBed& bed) {
  clic::Port tx(bed.module(0), 1);
  clic::Port rx(bed.module(1), 1);
  (void)co_await tx.send_confirmed(1, 1, net::Buffer::zeros(3000));
  (void)co_await rx.recv();
}

sim::Task tcp_client(tcpip::TcpStack& t) {
  auto& s = t.create_socket();
  (void)co_await s.connect(1, 5000);
  (void)co_await s.send(net::Buffer::zeros(3000));
  s.close();
}

sim::Task tcp_server(tcpip::TcpStack& t) {
  auto* s = co_await t.accept(5000);
  (void)co_await s->recv_exact(3000);
}

}  // namespace

int main() {
  std::cout << "=== CLIC: one confirmed 3000 B message ===\n";
  {
    apps::ClicBed bed;
    apps::PacketTrace trace;
    trace.tap_all(bed.cluster);
    clic_side(bed);
    bed.sim.run();
    trace.dump(std::cout);
    std::cout << "frames on the wire: " << trace.frames_captured() / 2
              << "\n\n";
  }

  std::cout << "=== TCP: the same 3000 B (handshake + data + teardown) ===\n";
  {
    apps::TcpBed bed;
    apps::PacketTrace trace;
    trace.tap_all(bed.cluster);
    bed.tcp[1]->listen(5000);
    tcp_client(*bed.tcp[0]);
    tcp_server(*bed.tcp[1]);
    bed.sim.run();
    trace.dump(std::cout);
    std::cout << "frames on the wire: " << trace.frames_captured() / 2
              << '\n';
  }
  return 0;
}
