// Master/worker task farm — the PVM-era workhorse pattern.
//
// A master distributes work units to 7 workers and collects results; each
// work unit carries a 256 KB input and returns a 4 KB result. The same farm
// runs on PVM-over-TCP (pack/unpack + daemon routing) and on raw CLIC
// ports, showing what the lightweight protocol buys a throughput-oriented
// application.
#include <cstdio>

#include "apps/testbed.hpp"

using namespace clicsim;

namespace {

constexpr int kWorkers = 7;
constexpr int kUnits = 42;
constexpr std::int64_t kUnitBytes = 32 * 1024;
constexpr std::int64_t kResultBytes = 4 * 1024;
constexpr sim::SimTime kComputePerUnit = sim::milliseconds(5.0);

// ---- PVM flavour -------------------------------------------------------------

sim::Task pvm_master(apps::PvmBed& bed, sim::SimTime* elapsed) {
  (void)co_await bed.connect();
  auto& master = bed.task(0);
  const sim::SimTime t0 = bed.sim().now();

  int next_unit = 0;
  int done = 0;
  // Prime every worker with one unit.
  for (int w = 1; w <= kWorkers && next_unit < kUnits; ++w, ++next_unit) {
    master.initsend();
    (void)co_await master.pack(net::Buffer::zeros(kUnitBytes));
    (void)co_await master.send(w, /*tag=*/1);
  }
  // Collect results; feed the returning worker the next unit.
  while (done < kUnits) {
    pvm::PvmMessage r = co_await master.recv(-1, /*tag=*/2);
    (void)co_await master.unpack(r, kResultBytes);
    ++done;
    if (next_unit < kUnits) {
      master.initsend();
      (void)co_await master.pack(net::Buffer::zeros(kUnitBytes));
      (void)co_await master.send(r.src_tid, 1);
      ++next_unit;
    }
  }
  // Shut workers down.
  for (int w = 1; w <= kWorkers; ++w) {
    master.initsend();
    (void)co_await master.pack(net::Buffer::zeros(0));
    (void)co_await master.send(w, /*tag=*/9);
  }
  *elapsed = bed.sim().now() - t0;
}

sim::Task pvm_worker(apps::PvmBed& bed, int tid) {
  auto& task = bed.task(tid);
  for (;;) {
    pvm::PvmMessage m = co_await task.recv(0, -1);
    if (m.tag == 9) co_return;
    (void)co_await task.unpack(m, kUnitBytes);
    co_await sim::Delay{bed.sim(), kComputePerUnit};
    task.initsend();
    (void)co_await task.pack(net::Buffer::zeros(kResultBytes));
    (void)co_await task.send(0, 2);
  }
}

sim::Task pvm_workers_after_connect(apps::PvmBed& bed) {
  // Workers must not touch their tasks before the mesh exists; the bed's
  // connect() future is idempotent to await from several places.
  co_await sim::Delay{bed.sim(), sim::milliseconds(1.0)};
  for (int w = 1; w <= kWorkers; ++w) pvm_worker(bed, w);
}

// ---- CLIC flavour -------------------------------------------------------------

sim::Task clic_master(apps::ClicBed& bed, sim::SimTime* elapsed) {
  clic::Port port(bed.module(0), 1);
  const sim::SimTime t0 = bed.sim.now();
  int next_unit = 0;
  int done = 0;
  for (int w = 1; w <= kWorkers && next_unit < kUnits; ++w, ++next_unit) {
    (void)co_await port.send(w, 1, net::Buffer::zeros(kUnitBytes));
  }
  while (done < kUnits) {
    clic::Message r = co_await port.recv();
    ++done;
    if (next_unit < kUnits) {
      (void)co_await port.send(r.src_node, 1,
                               net::Buffer::zeros(kUnitBytes));
      ++next_unit;
    }
  }
  for (int w = 1; w <= kWorkers; ++w) {
    (void)co_await port.send(w, 2, net::Buffer::zeros(0));
  }
  *elapsed = bed.sim.now() - t0;
}

sim::Task clic_worker(apps::ClicBed& bed, int node) {
  clic::Port work(bed.module(node), 1);
  clic::Port quit(bed.module(node), 2);
  for (;;) {
    if (quit.poll()) co_return;
    clic::Message m = co_await work.recv();
    if (m.data.size() == 0) co_return;
    co_await sim::Delay{bed.sim, kComputePerUnit};
    (void)co_await work.send(0, 1, net::Buffer::zeros(kResultBytes));
  }
}

}  // namespace

int main() {
  std::printf("task farm: %d workers, %d units of %lld B, "
              "%.1f ms compute each\n\n",
              kWorkers, kUnits, static_cast<long long>(kUnitBytes),
              sim::to_ms(kComputePerUnit));
  const double ideal_ms =
      sim::to_ms(kComputePerUnit) * kUnits / kWorkers;

  os::ClusterConfig cc;
  cc.nodes = kWorkers + 1;

  sim::SimTime pvm_elapsed = 0;
  {
    apps::PvmBed bed(cc);
    pvm_master(bed, &pvm_elapsed);
    pvm_workers_after_connect(bed);
    bed.sim().run();
  }

  sim::SimTime clic_elapsed = 0;
  {
    apps::ClicBed bed(cc);
    clic_master(bed, &clic_elapsed);
    for (int w = 1; w <= kWorkers; ++w) clic_worker(bed, w);
    bed.sim.run();
  }

  std::printf("  %-16s %12s %14s\n", "stack", "makespan", "farm efficiency");
  std::printf("  %-16s %9.1f ms %13.0f%%\n", "PVM over TCP",
              sim::to_ms(pvm_elapsed), 100.0 * ideal_ms /
                                            sim::to_ms(pvm_elapsed));
  std::printf("  %-16s %9.1f ms %13.0f%%\n", "CLIC ports",
              sim::to_ms(clic_elapsed), 100.0 * ideal_ms /
                                             sim::to_ms(clic_elapsed));
  std::printf("\n(ideal compute-only makespan: %.1f ms)\n", ideal_ms);
  return 0;
}
