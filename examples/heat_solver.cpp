// Distributed 1-D heat diffusion (Jacobi iteration) on MPI-over-CLIC, with
// REAL data: the halo bytes exchanged every step are the actual double
// values, and the distributed result is verified bit-for-bit against a
// serial reference. This is the class of fine-grained parallel code the
// paper's introduction says heavy protocol stacks push into
// "coarse grain only" territory.
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

using namespace clicsim;

namespace {

constexpr int kRanks = 4;
constexpr int kCellsPerRank = 64;
constexpr int kCells = kRanks * kCellsPerRank;
constexpr int kSteps = 50;
constexpr double kAlpha = 0.25;

// Initial condition: a hot spike in the middle.
std::vector<double> initial_grid() {
  std::vector<double> u(kCells, 0.0);
  u[kCells / 2] = 100.0;
  return u;
}

// Serial reference: the exact arithmetic the distributed ranks perform.
std::vector<double> serial_solution() {
  std::vector<double> u = initial_grid();
  std::vector<double> next(u.size());
  for (int s = 0; s < kSteps; ++s) {
    for (int i = 0; i < kCells; ++i) {
      const double left = i > 0 ? u[i - 1] : 0.0;
      const double right = i < kCells - 1 ? u[i + 1] : 0.0;
      next[i] = u[i] + kAlpha * (left - 2.0 * u[i] + right);
    }
    u.swap(next);
  }
  return u;
}

net::Buffer pack_double(double v) {
  std::vector<std::byte> bytes(sizeof(double));
  std::memcpy(bytes.data(), &v, sizeof(double));
  return net::Buffer::bytes(std::move(bytes));
}

double unpack_double(const net::Buffer& b) {
  double v = 0.0;
  std::memcpy(&v, b.data().data(), sizeof(double));
  return v;
}

net::Buffer pack_cells(const std::vector<double>& cells) {
  std::vector<std::byte> bytes(cells.size() * sizeof(double));
  std::memcpy(bytes.data(), cells.data(), bytes.size());
  return net::Buffer::bytes(std::move(bytes));
}

sim::Task rank_body(apps::MpiClicBed& bed, int rank,
                    std::vector<double>* result) {
  mpi::Communicator& comm = bed.comm(rank);
  std::vector<double> u(kCellsPerRank);
  {
    const auto whole = initial_grid();
    for (int i = 0; i < kCellsPerRank; ++i) {
      u[static_cast<std::size_t>(i)] =
          whole[static_cast<std::size_t>(rank * kCellsPerRank + i)];
    }
  }
  std::vector<double> next(u.size());

  for (int s = 0; s < kSteps; ++s) {
    // Exchange boundary cells with both neighbours (domain edges see 0).
    double halo_left = 0.0;
    double halo_right = 0.0;
    if (rank > 0) {
      (void)co_await comm.send(rank - 1, 1000 + s, pack_double(u.front()));
    }
    if (rank < kRanks - 1) {
      (void)co_await comm.send(rank + 1, 2000 + s, pack_double(u.back()));
    }
    if (rank < kRanks - 1) {
      mpi::RecvResult r = co_await comm.recv(rank + 1, 1000 + s);
      halo_right = unpack_double(r.data);
    }
    if (rank > 0) {
      mpi::RecvResult r = co_await comm.recv(rank - 1, 2000 + s);
      halo_left = unpack_double(r.data);
    }

    for (int i = 0; i < kCellsPerRank; ++i) {
      const double left = i > 0 ? u[i - 1] : halo_left;
      const double right = i < kCellsPerRank - 1 ? u[i + 1] : halo_right;
      next[i] = u[i] + kAlpha * (left - 2.0 * u[i] + right);
    }
    u.swap(next);
  }

  // Gather the distributed result on rank 0 — as bytes, through the wire.
  auto gathered = co_await comm.gather(0, pack_cells(u));
  if (rank == 0) {
    result->resize(kCells);
    for (int r = 0; r < kRanks; ++r) {
      std::memcpy(result->data() + r * kCellsPerRank,
                  gathered[static_cast<std::size_t>(r)].data().data(),
                  kCellsPerRank * sizeof(double));
    }
  }
}

}  // namespace

int main() {
  os::ClusterConfig cc;
  cc.nodes = kRanks;
  apps::MpiClicBed bed(cc);

  std::vector<double> distributed;
  for (int r = 0; r < kRanks; ++r) rank_body(bed, r, &distributed);
  bed.sim().run();

  const auto reference = serial_solution();
  int mismatches = 0;
  for (int i = 0; i < kCells; ++i) {
    if (distributed[static_cast<std::size_t>(i)] !=
        reference[static_cast<std::size_t>(i)]) {
      ++mismatches;
    }
  }

  double total = 0.0;
  for (double v : distributed) total += v;
  std::printf("heat solver: %d ranks x %d cells, %d steps over MPI-CLIC\n",
              kRanks, kCellsPerRank, kSteps);
  std::printf("  simulated wall time: %.2f ms\n",
              sim::to_ms(bed.sim().now()));
  std::printf("  conserved energy:    %.6f (initial 100)\n", total);
  std::printf("  vs serial reference: %s (%d/%d cells differ)\n",
              mismatches == 0 ? "bit-identical" : "MISMATCH", mismatches,
              kCells);
  return mismatches == 0 ? 0 : 1;
}
