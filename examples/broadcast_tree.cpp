// Broadcast: CLIC's native Ethernet broadcast (one frame reaches every
// node through the switch) versus the binomial software tree MPI must use
// on TCP. Section 5: CLIC "takes advantage of the multicast/broadcast
// capabilities offered by the Ethernet data-link layer".
#include <cstdio>

#include "apps/testbed.hpp"

using namespace clicsim;

namespace {

constexpr int kNodes = 8;
constexpr std::int64_t kPayload = 1024 * 1024;

sim::SimTime g_done_at = 0;

sim::Task mpi_root(mpi::Communicator& comm, sim::Simulator& sim,
                   sim::SimTime* out) {
  (void)co_await comm.barrier();
  const sim::SimTime t0 = sim.now();
  (void)co_await comm.bcast(0, net::Buffer::zeros(kPayload));
  (void)co_await comm.barrier();
  *out = sim.now() - t0;
}

sim::Task mpi_leaf(mpi::Communicator& comm) {
  (void)co_await comm.barrier();
  (void)co_await comm.bcast(0, {});
  (void)co_await comm.barrier();
}

sim::Task mpi_tcp_all(apps::MpiTcpBed& bed, sim::SimTime* out) {
  (void)co_await bed.connect();
  mpi_root(bed.comm(0), bed.sim(), out);
  for (int i = 1; i < kNodes; ++i) mpi_leaf(bed.comm(i));
}

}  // namespace

int main() {
  std::printf("broadcast of %lld B to %d nodes\n\n",
              static_cast<long long>(kPayload), kNodes);

  os::ClusterConfig cc;
  cc.nodes = kNodes;

  // MPI over CLIC: the transport uses the Ethernet broadcast natively.
  sim::SimTime clic_time = 0;
  {
    apps::MpiClicBed bed(cc);
    mpi_root(bed.comm(0), bed.sim(), &clic_time);
    for (int i = 1; i < kNodes; ++i) mpi_leaf(bed.comm(i));
    bed.sim().run();
    std::printf("  %-28s %10.2f ms  (%llu frames on root's wire)\n",
                "CLIC Ethernet broadcast", sim::to_ms(clic_time),
                static_cast<unsigned long long>(
                    bed.bed.cluster.link(0).frames_sent(0)));
  }

  // MPI over TCP: binomial tree, log2(n) stages, payload sent ~n-1 times.
  sim::SimTime tcp_time = 0;
  {
    apps::MpiTcpBed bed(cc);
    mpi_tcp_all(bed, &tcp_time);
    bed.sim().run();
    std::printf("  %-28s %10.2f ms  (%llu frames on root's wire)\n",
                "TCP binomial tree", sim::to_ms(tcp_time),
                static_cast<unsigned long long>(
                    bed.bed.cluster.link(0).frames_sent(0)));
  }

  std::printf("\nnative broadcast advantage: %.2fx\n",
              static_cast<double>(tcp_time) /
                  static_cast<double>(clic_time));
  (void)g_done_at;
  return 0;
}
