// Running CLIC over a misbehaving network: 5% random loss and 2% frame
// corruption in both directions. The reliable channel retransmits until
// everything lands intact; the report and channel statistics show what it
// cost — the "reliable message delivery" service the paper lists among
// CLIC's requirements, demonstrated under fire.
#include <iostream>

#include "apps/report.hpp"
#include "apps/testbed.hpp"
#include "sim/task.hpp"

using namespace clicsim;

namespace {

constexpr std::int64_t kMessage = 256 * 1024;
constexpr int kMessages = 16;

sim::Task sender(clic::ClicModule& m, bool* done) {
  for (int i = 0; i < kMessages; ++i) {
    (void)co_await m.send(1, 1, 1, net::Buffer::pattern(kMessage, i),
                          clic::SendMode::kConfirmed);
  }
  *done = true;
}

sim::Task receiver(clic::ClicModule& m, int* intact) {
  for (int i = 0; i < kMessages; ++i) {
    clic::Message got = co_await m.recv(1);
    if (got.data.content_equals(net::Buffer::pattern(kMessage, i))) {
      ++*intact;
    }
  }
}

}  // namespace

int main() {
  apps::ClicBed bed;
  bed.cluster.set_mtu_all(1500);
  for (int link = 0; link < 2; ++link) {
    for (int dir = 0; dir < 2; ++dir) {
      auto& f = bed.cluster.link(link).faults(dir);
      f.set_seed(2026 + link * 2 + dir);
      f.set_drop_probability(0.05);
      f.set_corrupt_probability(0.02);
    }
  }
  bed.module(0).bind_port(1);
  bed.module(1).bind_port(1);

  bool sent = false;
  int intact = 0;
  sender(bed.module(0), &sent);
  receiver(bed.module(1), &intact);
  bed.sim.run();

  std::cout << "transferred " << kMessages << " x " << kMessage
            << " B over a 5%-loss / 2%-corruption network\n"
            << "confirmed sends completed: " << (sent ? "yes" : "NO")
            << ", intact messages: " << intact << '/' << kMessages << "\n\n";

  std::cout << "--- what reliability cost ---\n";
  apps::report_clic(std::cout, bed.module(0));
  apps::report_clic(std::cout, bed.module(1));
  std::cout << '\n';
  apps::report_cluster(std::cout, bed.cluster);

  const auto& nic1 = bed.cluster.node(1).nic(0);
  std::cout << "\nreceiver NIC dropped " << nic1.rx_bad_fcs()
            << " corrupted frames; the channel retransmitted around them.\n";
  return intact == kMessages && sent ? 0 : 1;
}
