// Quickstart: build a two-node simulated cluster, run CLIC on it, and move
// a few messages — the "hello world" of the library.
//
//   $ ./build/examples/quickstart
//
// Shows: cluster construction, port binding, blocking send/recv from
// coroutine application code, payload integrity, and the measured one-way
// latency and bandwidth on the calibrated hardware model.
#include <cstdio>

#include "clic/api.hpp"
#include "os/address.hpp"
#include "os/cluster.hpp"
#include "sim/task.hpp"

using namespace clicsim;

namespace {

sim::Task pinger(sim::Simulator& sim, clic::Port& port) {
  // 1. A tiny message with real bytes: integrity is checked end to end.
  net::Buffer hello = net::Buffer::pattern(64, /*seed=*/2026);
  std::printf("[node0 %8.1f us] sending 64 B hello (checksum %016llx)\n",
              sim::to_us(sim.now()),
              static_cast<unsigned long long>(hello.checksum()));
  (void)co_await port.send(1, 1, hello);

  clic::Message reply = co_await port.recv();
  std::printf("[node0 %8.1f us] got %lld B reply from node%d (checksum %s)\n",
              sim::to_us(sim.now()),
              static_cast<long long>(reply.data.size()), reply.src_node,
              reply.data.content_equals(hello) ? "matches" : "MISMATCH");

  // 2. Latency: 0-byte ping-pong.
  const sim::SimTime t0 = sim.now();
  (void)co_await port.send(1, 1, net::Buffer::zeros(0));
  (void)co_await port.recv();
  std::printf("[node0 %8.1f us] 0-byte round trip: %.1f us (one-way %.1f)\n",
              sim::to_us(sim.now()), sim::to_us(sim.now() - t0),
              sim::to_us(sim.now() - t0) / 2.0);

  // 3. Bandwidth: one 4 MB message.
  const std::int64_t big = 4 * 1024 * 1024;
  const sim::SimTime t1 = sim.now();
  (void)co_await port.send(1, 1, net::Buffer::zeros(big));
  (void)co_await port.recv();  // peer confirms when it has everything
  const double mbps = static_cast<double>(big) * 8e3 /
                      static_cast<double>(sim.now() - t1);
  std::printf("[node0 %8.1f us] 4 MB delivered: %.0f Mb/s effective\n",
              sim::to_us(sim.now()), mbps);
}

sim::Task ponger(sim::Simulator& sim, clic::Port& port) {
  // Echo the hello back.
  clic::Message hello = co_await port.recv();
  std::printf("[node1 %8.1f us] echoing %lld B from node%d\n",
              sim::to_us(sim.now()),
              static_cast<long long>(hello.data.size()), hello.src_node);
  (void)co_await port.send(0, 1, hello.data);

  // Latency pong.
  (void)co_await port.recv();
  (void)co_await port.send(0, 1, net::Buffer::zeros(0));

  // Bandwidth: confirm reception of the big message.
  clic::Message big = co_await port.recv();
  std::printf("[node1 %8.1f us] received %lld B\n", sim::to_us(sim.now()),
              static_cast<long long>(big.data.size()));
  (void)co_await port.send(0, 1, net::Buffer::zeros(0));
}

}  // namespace

int main() {
  sim::Simulator sim;

  // Two nodes, one Gigabit switch, SMC9462-class NICs — the paper's rig.
  os::ClusterConfig config;
  config.nodes = 2;
  os::Cluster cluster(sim, config);
  os::AddressMap addresses = os::AddressMap::for_cluster(cluster);

  clic::Config clic_config;  // 0-copy, jumbo, coalesced interrupts
  clic::ClicModule clic0(cluster.node(0), clic_config, addresses);
  clic::ClicModule clic1(cluster.node(1), clic_config, addresses);

  clic::Port port0(clic0, 1);
  clic::Port port1(clic1, 1);

  pinger(sim, port0);
  ponger(sim, port1);
  sim.run();

  std::printf("\nsimulation drained after %.2f ms of simulated time, "
              "%llu events\n",
              sim::to_ms(sim.now()),
              static_cast<unsigned long long>(sim.events_executed()));
  return 0;
}
