// Two CLIC-specific capabilities from section 5 in one demo:
//
//  1. Channel bonding — a node with two NICs stripes one stream across
//     both links through the switch; the reliable channel's reorder buffer
//     re-sequences whatever arrives out of order.
//  2. Remote write — the asynchronous receive: a producer deposits data
//     directly into a consumer's registered region; no receive call is
//     ever posted, the consumer just watches the region fill.
#include <cstdio>

#include "apps/testbed.hpp"

using namespace clicsim;

namespace {

sim::Task bonded_sender(clic::Port& port, std::int64_t message, int count) {
  for (int i = 0; i < count; ++i) {
    (void)co_await port.send(1, 1, net::Buffer::zeros(message));
  }
}

sim::Task bonded_receiver(sim::Simulator& sim, clic::Port& port, int count,
                          sim::SimTime* t_end) {
  for (int i = 0; i < count; ++i) (void)co_await port.recv();
  *t_end = sim.now();
}

double run_bonding(int nics, bool fast_ethernet) {
  os::ClusterConfig cc;
  cc.nodes = 2;
  cc.nics_per_node = nics;
  if (fast_ethernet) {
    // Channel bonding is a Fast Ethernet-era CLIC feature: there the wire
    // is the bottleneck, so a second NIC nearly doubles throughput. On
    // Gigabit the shared PCI/memory buses cap the node first.
    cc.nic = hw::NicProfile::fast_ether_100();
    cc.link.bits_per_s = 100e6;
  }
  clic::Config cfg;
  cfg.channel_bonding = nics > 1;

  apps::ClicBed bed(cc, cfg);
  clic::Port tx(bed.module(0), 1);
  clic::Port rx(bed.module(1), 1);

  const std::int64_t message = 512 * 1024;
  const int count = 32;
  sim::SimTime t_end = 0;
  bonded_sender(tx, message, count);
  bonded_receiver(bed.sim, rx, count, &t_end);
  bed.sim.run();

  const auto* ch = bed.module(1).channel_to(0);
  std::printf("  %d NIC(s): %7.1f Mb/s   out-of-order arrivals: %llu, "
              "retransmits: %llu\n",
              nics,
              static_cast<double>(message) * count * 8e3 /
                  static_cast<double>(t_end),
              static_cast<unsigned long long>(ch ? ch->out_of_order() : 0),
              static_cast<unsigned long long>(ch ? ch->retransmits() : 0));
  return static_cast<double>(message) * count * 8e3 /
         static_cast<double>(t_end);
}

sim::Task producer(clic::ClicModule& m, int chunks, std::int64_t chunk) {
  for (int i = 0; i < chunks; ++i) {
    (void)co_await m.remote_write(1, /*region=*/42,
                                  net::Buffer::pattern(chunk, 100 + i));
  }
}

sim::Task consumer(sim::Simulator& sim, clic::ClicModule& m,
                   std::int64_t expect) {
  // No receive call anywhere: just watch the region fill up.
  while (m.region_bytes(42) < expect) {
    co_await m.region_trigger(42).wait();
  }
  std::printf("  consumer saw the region complete at %.1f us "
              "(%lld bytes, checksum %016llx) — zero receive calls\n",
              sim::to_us(sim.now()),
              static_cast<long long>(m.region_bytes(42)),
              static_cast<unsigned long long>(
                  m.region_contents(42).checksum()));
}

}  // namespace

int main() {
  std::printf("--- channel bonding, Fast Ethernet (wire-bound) ---\n");
  const double fe1 = run_bonding(1, true);
  const double fe2 = run_bonding(2, true);
  std::printf("  scaling with the second NIC: %.2fx\n\n", fe2 / fe1);

  std::printf("--- channel bonding, Gigabit (node-bound) ---\n");
  const double ge1 = run_bonding(1, false);
  const double ge2 = run_bonding(2, false);
  std::printf("  scaling with the second NIC: %.2fx "
              "(the shared PCI/memory buses cap the node)\n\n",
              ge2 / ge1);

  std::printf("--- remote write (asynchronous receive) ---\n");
  apps::ClicBed bed;
  bed.module(1).register_region(42, 1 << 20);
  constexpr int kChunks = 8;
  constexpr std::int64_t kChunk = 64 * 1024;
  producer(bed.module(0), kChunks, kChunk);
  consumer(bed.sim, bed.module(1), kChunks * kChunk);
  bed.sim.run();
  return 0;
}
