// Halo exchange: the communication kernel of stencil/CFD codes — the kind
// of fine-grained parallel application the paper's introduction says
// clusters fail at when the protocol stack is heavy.
//
// A 1-D domain decomposition over 8 ranks; every step each rank exchanges
// halo rows with both neighbours and joins an allreduce (the residual
// check). Run on MPI-over-CLIC and MPI-over-TCP and compare step times.
#include <cstdio>

#include "apps/testbed.hpp"

using namespace clicsim;

namespace {

constexpr int kRanks = 8;
constexpr int kSteps = 20;
constexpr std::int64_t kHaloBytes = 16 * 1024;   // one halo row
constexpr sim::SimTime kComputeTime = sim::microseconds(150);

struct Result {
  sim::SimTime total = 0;
  int steps_done = 0;
};

sim::Task rank_body(sim::Simulator& sim, mpi::Communicator& comm,
                    Result* result) {
  const int up = (comm.rank() + 1) % comm.size();
  const int down = (comm.rank() - 1 + comm.size()) % comm.size();

  (void)co_await comm.barrier();
  const sim::SimTime t0 = sim.now();

  for (int step = 0; step < kSteps; ++step) {
    // Local stencil compute.
    co_await sim::Delay{sim, kComputeTime};

    // Exchange halos with both neighbours (send both, then receive both —
    // the classic deadlock-free ordering relies on buffered sends).
    (void)co_await comm.send(up, 10 + step, net::Buffer::zeros(kHaloBytes));
    (void)co_await comm.send(down, 10 + step, net::Buffer::zeros(kHaloBytes));
    (void)co_await comm.recv(down, 10 + step);
    (void)co_await comm.recv(up, 10 + step);

    // Global residual: one allreduce of a small vector.
    (void)co_await comm.allreduce_sum(net::Buffer::zeros(64));
    if (result) ++result->steps_done;
  }

  (void)co_await comm.barrier();
  if (result) result->total = sim.now() - t0;
}

Result run_clic() {
  os::ClusterConfig cc;
  cc.nodes = kRanks;
  apps::MpiClicBed bed(cc);
  Result r;
  for (int i = 0; i < kRanks; ++i) {
    rank_body(bed.sim(), bed.comm(i), i == 0 ? &r : nullptr);
  }
  bed.sim().run();
  r.steps_done /= 1;  // rank 0 only
  return r;
}

sim::Task run_tcp_body(apps::MpiTcpBed& bed, Result* r) {
  (void)co_await bed.connect();
  for (int i = 0; i < kRanks; ++i) {
    rank_body(bed.sim(), bed.comm(i), i == 0 ? r : nullptr);
  }
}

Result run_tcp() {
  os::ClusterConfig cc;
  cc.nodes = kRanks;
  apps::MpiTcpBed bed(cc);
  Result r;
  run_tcp_body(bed, &r);
  bed.sim().run();
  return r;
}

}  // namespace

int main() {
  std::printf("halo exchange: %d ranks, %d steps, %lld B halos, "
              "%.0f us compute per step\n\n",
              kRanks, kSteps, static_cast<long long>(kHaloBytes),
              sim::to_us(kComputeTime));

  const Result clic = run_clic();
  const Result tcp = run_tcp();

  const double clic_step = sim::to_us(clic.total) / kSteps;
  const double tcp_step = sim::to_us(tcp.total) / kSteps;

  std::printf("  %-14s %10s %14s %16s\n", "stack", "steps", "us/step",
              "comm us/step");
  std::printf("  %-14s %10d %14.1f %16.1f\n", "MPI over CLIC",
              clic.steps_done, clic_step,
              clic_step - sim::to_us(kComputeTime));
  std::printf("  %-14s %10d %14.1f %16.1f\n", "MPI over TCP",
              tcp.steps_done, tcp_step,
              tcp_step - sim::to_us(kComputeTime));
  std::printf("\ncommunication speedup from CLIC: %.2fx\n",
              (tcp_step - sim::to_us(kComputeTime)) /
                  (clic_step - sim::to_us(kComputeTime)));
  return 0;
}
