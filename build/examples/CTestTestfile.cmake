# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_halo_exchange "/root/repo/build/examples/halo_exchange")
set_tests_properties(example_halo_exchange PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_task_farm "/root/repo/build/examples/task_farm")
set_tests_properties(example_task_farm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_broadcast_tree "/root/repo/build/examples/broadcast_tree")
set_tests_properties(example_broadcast_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bonding_remote_write "/root/repo/build/examples/bonding_remote_write")
set_tests_properties(example_bonding_remote_write PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_trace "/root/repo/build/examples/packet_trace")
set_tests_properties(example_packet_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lossy_network "/root/repo/build/examples/lossy_network")
set_tests_properties(example_lossy_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;16;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_solver "/root/repo/build/examples/heat_solver")
set_tests_properties(example_heat_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;17;clicsim_example;/root/repo/examples/CMakeLists.txt;0;")
