# Empty dependencies file for lossy_network.
# This may be replaced when dependencies are built.
