file(REMOVE_RECURSE
  "CMakeFiles/lossy_network.dir/lossy_network.cpp.o"
  "CMakeFiles/lossy_network.dir/lossy_network.cpp.o.d"
  "lossy_network"
  "lossy_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
