
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/clicsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/via/CMakeFiles/clicsim_via.dir/DependInfo.cmake"
  "/root/repo/build/src/gamma/CMakeFiles/clicsim_gamma.dir/DependInfo.cmake"
  "/root/repo/build/src/pvm/CMakeFiles/clicsim_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/clicsim_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpip/CMakeFiles/clicsim_tcpip.dir/DependInfo.cmake"
  "/root/repo/build/src/clic/CMakeFiles/clicsim_clic.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/clicsim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/clicsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clicsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clicsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
