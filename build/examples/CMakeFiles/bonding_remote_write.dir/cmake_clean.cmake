file(REMOVE_RECURSE
  "CMakeFiles/bonding_remote_write.dir/bonding_remote_write.cpp.o"
  "CMakeFiles/bonding_remote_write.dir/bonding_remote_write.cpp.o.d"
  "bonding_remote_write"
  "bonding_remote_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bonding_remote_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
