# Empty dependencies file for bonding_remote_write.
# This may be replaced when dependencies are built.
