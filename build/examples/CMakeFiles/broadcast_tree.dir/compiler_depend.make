# Empty compiler generated dependencies file for broadcast_tree.
# This may be replaced when dependencies are built.
