file(REMOVE_RECURSE
  "CMakeFiles/broadcast_tree.dir/broadcast_tree.cpp.o"
  "CMakeFiles/broadcast_tree.dir/broadcast_tree.cpp.o.d"
  "broadcast_tree"
  "broadcast_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
