# Empty compiler generated dependencies file for heat_solver.
# This may be replaced when dependencies are built.
