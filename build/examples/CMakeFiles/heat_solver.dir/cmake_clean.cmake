file(REMOVE_RECURSE
  "CMakeFiles/heat_solver.dir/heat_solver.cpp.o"
  "CMakeFiles/heat_solver.dir/heat_solver.cpp.o.d"
  "heat_solver"
  "heat_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
