# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_stacks_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim_core[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_clic_channel[1]_include.cmake")
include("/root/repo/build/tests/test_clic_module[1]_include.cmake")
include("/root/repo/build/tests/test_tcpip[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_comparators[1]_include.cmake")
include("/root/repo/build/tests/test_property_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_clic_multicast[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_integration_multinode[1]_include.cmake")
include("/root/repo/build/tests/test_report_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_buffer_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_profiles_failures[1]_include.cmake")
include("/root/repo/build/tests/test_sync_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_colocated[1]_include.cmake")
