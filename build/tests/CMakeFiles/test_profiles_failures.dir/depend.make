# Empty dependencies file for test_profiles_failures.
# This may be replaced when dependencies are built.
