file(REMOVE_RECURSE
  "CMakeFiles/test_profiles_failures.dir/test_profiles_failures.cpp.o"
  "CMakeFiles/test_profiles_failures.dir/test_profiles_failures.cpp.o.d"
  "test_profiles_failures"
  "test_profiles_failures.pdb"
  "test_profiles_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiles_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
