file(REMOVE_RECURSE
  "CMakeFiles/test_sync_primitives.dir/test_sync_primitives.cpp.o"
  "CMakeFiles/test_sync_primitives.dir/test_sync_primitives.cpp.o.d"
  "test_sync_primitives"
  "test_sync_primitives.pdb"
  "test_sync_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
