# Empty dependencies file for test_sync_primitives.
# This may be replaced when dependencies are built.
