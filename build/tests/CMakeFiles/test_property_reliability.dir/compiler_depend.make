# Empty compiler generated dependencies file for test_property_reliability.
# This may be replaced when dependencies are built.
