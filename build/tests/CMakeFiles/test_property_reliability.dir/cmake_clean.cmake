file(REMOVE_RECURSE
  "CMakeFiles/test_property_reliability.dir/test_property_reliability.cpp.o"
  "CMakeFiles/test_property_reliability.dir/test_property_reliability.cpp.o.d"
  "test_property_reliability"
  "test_property_reliability.pdb"
  "test_property_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
