# Empty compiler generated dependencies file for test_mpi_colocated.
# This may be replaced when dependencies are built.
