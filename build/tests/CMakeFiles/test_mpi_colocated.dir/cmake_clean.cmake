file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_colocated.dir/test_mpi_colocated.cpp.o"
  "CMakeFiles/test_mpi_colocated.dir/test_mpi_colocated.cpp.o.d"
  "test_mpi_colocated"
  "test_mpi_colocated.pdb"
  "test_mpi_colocated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_colocated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
