# Empty compiler generated dependencies file for test_integration_multinode.
# This may be replaced when dependencies are built.
