file(REMOVE_RECURSE
  "CMakeFiles/test_integration_multinode.dir/test_integration_multinode.cpp.o"
  "CMakeFiles/test_integration_multinode.dir/test_integration_multinode.cpp.o.d"
  "test_integration_multinode"
  "test_integration_multinode.pdb"
  "test_integration_multinode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
