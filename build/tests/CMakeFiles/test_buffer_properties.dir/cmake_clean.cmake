file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_properties.dir/test_buffer_properties.cpp.o"
  "CMakeFiles/test_buffer_properties.dir/test_buffer_properties.cpp.o.d"
  "test_buffer_properties"
  "test_buffer_properties.pdb"
  "test_buffer_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
