# Empty dependencies file for test_buffer_properties.
# This may be replaced when dependencies are built.
