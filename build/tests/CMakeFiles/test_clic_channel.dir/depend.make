# Empty dependencies file for test_clic_channel.
# This may be replaced when dependencies are built.
