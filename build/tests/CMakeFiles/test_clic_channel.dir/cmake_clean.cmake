file(REMOVE_RECURSE
  "CMakeFiles/test_clic_channel.dir/test_clic_channel.cpp.o"
  "CMakeFiles/test_clic_channel.dir/test_clic_channel.cpp.o.d"
  "test_clic_channel"
  "test_clic_channel.pdb"
  "test_clic_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clic_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
