# Empty dependencies file for test_clic_multicast.
# This may be replaced when dependencies are built.
