file(REMOVE_RECURSE
  "CMakeFiles/test_clic_multicast.dir/test_clic_multicast.cpp.o"
  "CMakeFiles/test_clic_multicast.dir/test_clic_multicast.cpp.o.d"
  "test_clic_multicast"
  "test_clic_multicast.pdb"
  "test_clic_multicast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clic_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
