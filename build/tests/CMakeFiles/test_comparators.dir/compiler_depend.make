# Empty compiler generated dependencies file for test_comparators.
# This may be replaced when dependencies are built.
