file(REMOVE_RECURSE
  "CMakeFiles/test_comparators.dir/test_comparators.cpp.o"
  "CMakeFiles/test_comparators.dir/test_comparators.cpp.o.d"
  "test_comparators"
  "test_comparators.pdb"
  "test_comparators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comparators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
