# Empty dependencies file for test_sim_core.
# This may be replaced when dependencies are built.
