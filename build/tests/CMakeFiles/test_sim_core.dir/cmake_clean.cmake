file(REMOVE_RECURSE
  "CMakeFiles/test_sim_core.dir/test_sim_core.cpp.o"
  "CMakeFiles/test_sim_core.dir/test_sim_core.cpp.o.d"
  "test_sim_core"
  "test_sim_core.pdb"
  "test_sim_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
