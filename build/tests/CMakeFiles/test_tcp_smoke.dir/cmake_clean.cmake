file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_smoke.dir/test_tcp_smoke.cpp.o"
  "CMakeFiles/test_tcp_smoke.dir/test_tcp_smoke.cpp.o.d"
  "test_tcp_smoke"
  "test_tcp_smoke.pdb"
  "test_tcp_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
