# Empty dependencies file for test_tcp_smoke.
# This may be replaced when dependencies are built.
