file(REMOVE_RECURSE
  "CMakeFiles/test_clic_module.dir/test_clic_module.cpp.o"
  "CMakeFiles/test_clic_module.dir/test_clic_module.cpp.o.d"
  "test_clic_module"
  "test_clic_module.pdb"
  "test_clic_module[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clic_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
