# Empty compiler generated dependencies file for test_clic_module.
# This may be replaced when dependencies are built.
