file(REMOVE_RECURSE
  "CMakeFiles/test_tcpip.dir/test_tcpip.cpp.o"
  "CMakeFiles/test_tcpip.dir/test_tcpip.cpp.o.d"
  "test_tcpip"
  "test_tcpip.pdb"
  "test_tcpip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcpip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
