# Empty dependencies file for test_tcpip.
# This may be replaced when dependencies are built.
