# Empty dependencies file for test_mpi_patterns.
# This may be replaced when dependencies are built.
