file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_patterns.dir/test_mpi_patterns.cpp.o"
  "CMakeFiles/test_mpi_patterns.dir/test_mpi_patterns.cpp.o.d"
  "test_mpi_patterns"
  "test_mpi_patterns.pdb"
  "test_mpi_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
