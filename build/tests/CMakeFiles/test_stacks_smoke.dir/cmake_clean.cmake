file(REMOVE_RECURSE
  "CMakeFiles/test_stacks_smoke.dir/test_stacks_smoke.cpp.o"
  "CMakeFiles/test_stacks_smoke.dir/test_stacks_smoke.cpp.o.d"
  "test_stacks_smoke"
  "test_stacks_smoke.pdb"
  "test_stacks_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stacks_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
