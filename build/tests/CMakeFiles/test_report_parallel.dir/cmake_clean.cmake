file(REMOVE_RECURSE
  "CMakeFiles/test_report_parallel.dir/test_report_parallel.cpp.o"
  "CMakeFiles/test_report_parallel.dir/test_report_parallel.cpp.o.d"
  "test_report_parallel"
  "test_report_parallel.pdb"
  "test_report_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
