# Empty dependencies file for test_report_parallel.
# This may be replaced when dependencies are built.
