# Empty compiler generated dependencies file for fig4_mtu_copy.
# This may be replaced when dependencies are built.
