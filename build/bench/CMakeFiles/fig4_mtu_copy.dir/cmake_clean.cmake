file(REMOVE_RECURSE
  "CMakeFiles/fig4_mtu_copy.dir/fig4_mtu_copy.cpp.o"
  "CMakeFiles/fig4_mtu_copy.dir/fig4_mtu_copy.cpp.o.d"
  "fig4_mtu_copy"
  "fig4_mtu_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mtu_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
