# Empty dependencies file for fig6_mpi_pvm.
# This may be replaced when dependencies are built.
