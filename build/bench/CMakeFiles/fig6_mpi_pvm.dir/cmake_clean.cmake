file(REMOVE_RECURSE
  "CMakeFiles/fig6_mpi_pvm.dir/fig6_mpi_pvm.cpp.o"
  "CMakeFiles/fig6_mpi_pvm.dir/fig6_mpi_pvm.cpp.o.d"
  "fig6_mpi_pvm"
  "fig6_mpi_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mpi_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
