file(REMOVE_RECURSE
  "CMakeFiles/ablation_fragmentation.dir/ablation_fragmentation.cpp.o"
  "CMakeFiles/ablation_fragmentation.dir/ablation_fragmentation.cpp.o.d"
  "ablation_fragmentation"
  "ablation_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
