# Empty compiler generated dependencies file for fig5_clic_vs_tcp.
# This may be replaced when dependencies are built.
