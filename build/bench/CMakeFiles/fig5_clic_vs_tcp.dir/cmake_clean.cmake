file(REMOVE_RECURSE
  "CMakeFiles/fig5_clic_vs_tcp.dir/fig5_clic_vs_tcp.cpp.o"
  "CMakeFiles/fig5_clic_vs_tcp.dir/fig5_clic_vs_tcp.cpp.o.d"
  "fig5_clic_vs_tcp"
  "fig5_clic_vs_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_clic_vs_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
