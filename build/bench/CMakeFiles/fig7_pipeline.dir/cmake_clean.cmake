file(REMOVE_RECURSE
  "CMakeFiles/fig7_pipeline.dir/fig7_pipeline.cpp.o"
  "CMakeFiles/fig7_pipeline.dir/fig7_pipeline.cpp.o.d"
  "fig7_pipeline"
  "fig7_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
