# Empty dependencies file for fig7_pipeline.
# This may be replaced when dependencies are built.
