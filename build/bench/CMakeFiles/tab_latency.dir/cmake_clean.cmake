file(REMOVE_RECURSE
  "CMakeFiles/tab_latency.dir/tab_latency.cpp.o"
  "CMakeFiles/tab_latency.dir/tab_latency.cpp.o.d"
  "tab_latency"
  "tab_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
