# Empty dependencies file for tab_latency.
# This may be replaced when dependencies are built.
