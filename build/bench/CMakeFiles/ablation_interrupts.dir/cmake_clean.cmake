file(REMOVE_RECURSE
  "CMakeFiles/ablation_interrupts.dir/ablation_interrupts.cpp.o"
  "CMakeFiles/ablation_interrupts.dir/ablation_interrupts.cpp.o.d"
  "ablation_interrupts"
  "ablation_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
