# Empty dependencies file for ablation_interrupts.
# This may be replaced when dependencies are built.
