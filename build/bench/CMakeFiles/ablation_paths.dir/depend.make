# Empty dependencies file for ablation_paths.
# This may be replaced when dependencies are built.
