file(REMOVE_RECURSE
  "CMakeFiles/ablation_paths.dir/ablation_paths.cpp.o"
  "CMakeFiles/ablation_paths.dir/ablation_paths.cpp.o.d"
  "ablation_paths"
  "ablation_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
