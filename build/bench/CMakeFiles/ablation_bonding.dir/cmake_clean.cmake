file(REMOVE_RECURSE
  "CMakeFiles/ablation_bonding.dir/ablation_bonding.cpp.o"
  "CMakeFiles/ablation_bonding.dir/ablation_bonding.cpp.o.d"
  "ablation_bonding"
  "ablation_bonding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bonding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
