# Empty compiler generated dependencies file for ablation_bonding.
# This may be replaced when dependencies are built.
