# Empty dependencies file for clicsim_apps.
# This may be replaced when dependencies are built.
