file(REMOVE_RECURSE
  "libclicsim_apps.a"
)
