file(REMOVE_RECURSE
  "CMakeFiles/clicsim_apps.dir/parallel.cpp.o"
  "CMakeFiles/clicsim_apps.dir/parallel.cpp.o.d"
  "CMakeFiles/clicsim_apps.dir/report.cpp.o"
  "CMakeFiles/clicsim_apps.dir/report.cpp.o.d"
  "CMakeFiles/clicsim_apps.dir/testbed.cpp.o"
  "CMakeFiles/clicsim_apps.dir/testbed.cpp.o.d"
  "CMakeFiles/clicsim_apps.dir/trace.cpp.o"
  "CMakeFiles/clicsim_apps.dir/trace.cpp.o.d"
  "CMakeFiles/clicsim_apps.dir/workloads.cpp.o"
  "CMakeFiles/clicsim_apps.dir/workloads.cpp.o.d"
  "libclicsim_apps.a"
  "libclicsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
