# Empty dependencies file for clicsim_gamma.
# This may be replaced when dependencies are built.
