file(REMOVE_RECURSE
  "CMakeFiles/clicsim_gamma.dir/gamma.cpp.o"
  "CMakeFiles/clicsim_gamma.dir/gamma.cpp.o.d"
  "libclicsim_gamma.a"
  "libclicsim_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
