file(REMOVE_RECURSE
  "libclicsim_gamma.a"
)
