
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/cluster.cpp" "src/os/CMakeFiles/clicsim_os.dir/cluster.cpp.o" "gcc" "src/os/CMakeFiles/clicsim_os.dir/cluster.cpp.o.d"
  "/root/repo/src/os/driver.cpp" "src/os/CMakeFiles/clicsim_os.dir/driver.cpp.o" "gcc" "src/os/CMakeFiles/clicsim_os.dir/driver.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/clicsim_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/clicsim_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/node.cpp" "src/os/CMakeFiles/clicsim_os.dir/node.cpp.o" "gcc" "src/os/CMakeFiles/clicsim_os.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/clicsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clicsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/clicsim_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
