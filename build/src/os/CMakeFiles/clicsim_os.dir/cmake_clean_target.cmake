file(REMOVE_RECURSE
  "libclicsim_os.a"
)
