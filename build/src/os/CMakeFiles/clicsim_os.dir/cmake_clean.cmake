file(REMOVE_RECURSE
  "CMakeFiles/clicsim_os.dir/cluster.cpp.o"
  "CMakeFiles/clicsim_os.dir/cluster.cpp.o.d"
  "CMakeFiles/clicsim_os.dir/driver.cpp.o"
  "CMakeFiles/clicsim_os.dir/driver.cpp.o.d"
  "CMakeFiles/clicsim_os.dir/kernel.cpp.o"
  "CMakeFiles/clicsim_os.dir/kernel.cpp.o.d"
  "CMakeFiles/clicsim_os.dir/node.cpp.o"
  "CMakeFiles/clicsim_os.dir/node.cpp.o.d"
  "libclicsim_os.a"
  "libclicsim_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
