# Empty dependencies file for clicsim_os.
# This may be replaced when dependencies are built.
