# Empty compiler generated dependencies file for clicsim_via.
# This may be replaced when dependencies are built.
