file(REMOVE_RECURSE
  "CMakeFiles/clicsim_via.dir/via.cpp.o"
  "CMakeFiles/clicsim_via.dir/via.cpp.o.d"
  "libclicsim_via.a"
  "libclicsim_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
