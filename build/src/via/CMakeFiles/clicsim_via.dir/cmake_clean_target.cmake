file(REMOVE_RECURSE
  "libclicsim_via.a"
)
