file(REMOVE_RECURSE
  "CMakeFiles/clicsim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/clicsim_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/clicsim_sim.dir/log.cpp.o"
  "CMakeFiles/clicsim_sim.dir/log.cpp.o.d"
  "CMakeFiles/clicsim_sim.dir/resource.cpp.o"
  "CMakeFiles/clicsim_sim.dir/resource.cpp.o.d"
  "CMakeFiles/clicsim_sim.dir/simulator.cpp.o"
  "CMakeFiles/clicsim_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/clicsim_sim.dir/stats.cpp.o"
  "CMakeFiles/clicsim_sim.dir/stats.cpp.o.d"
  "libclicsim_sim.a"
  "libclicsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
