# Empty compiler generated dependencies file for clicsim_sim.
# This may be replaced when dependencies are built.
