file(REMOVE_RECURSE
  "libclicsim_sim.a"
)
