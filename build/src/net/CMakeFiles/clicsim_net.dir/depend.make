# Empty dependencies file for clicsim_net.
# This may be replaced when dependencies are built.
