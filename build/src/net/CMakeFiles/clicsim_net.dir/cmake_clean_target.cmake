file(REMOVE_RECURSE
  "libclicsim_net.a"
)
