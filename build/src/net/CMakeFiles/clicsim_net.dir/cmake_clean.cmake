file(REMOVE_RECURSE
  "CMakeFiles/clicsim_net.dir/buffer.cpp.o"
  "CMakeFiles/clicsim_net.dir/buffer.cpp.o.d"
  "CMakeFiles/clicsim_net.dir/frame.cpp.o"
  "CMakeFiles/clicsim_net.dir/frame.cpp.o.d"
  "CMakeFiles/clicsim_net.dir/link.cpp.o"
  "CMakeFiles/clicsim_net.dir/link.cpp.o.d"
  "CMakeFiles/clicsim_net.dir/switch.cpp.o"
  "CMakeFiles/clicsim_net.dir/switch.cpp.o.d"
  "libclicsim_net.a"
  "libclicsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
