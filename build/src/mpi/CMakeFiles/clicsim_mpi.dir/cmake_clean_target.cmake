file(REMOVE_RECURSE
  "libclicsim_mpi.a"
)
