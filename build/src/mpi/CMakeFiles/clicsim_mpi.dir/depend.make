# Empty dependencies file for clicsim_mpi.
# This may be replaced when dependencies are built.
