file(REMOVE_RECURSE
  "CMakeFiles/clicsim_mpi.dir/comm.cpp.o"
  "CMakeFiles/clicsim_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/clicsim_mpi.dir/transport.cpp.o"
  "CMakeFiles/clicsim_mpi.dir/transport.cpp.o.d"
  "libclicsim_mpi.a"
  "libclicsim_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
