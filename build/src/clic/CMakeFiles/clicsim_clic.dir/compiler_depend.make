# Empty compiler generated dependencies file for clicsim_clic.
# This may be replaced when dependencies are built.
