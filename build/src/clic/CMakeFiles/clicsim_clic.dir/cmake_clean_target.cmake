file(REMOVE_RECURSE
  "libclicsim_clic.a"
)
