file(REMOVE_RECURSE
  "CMakeFiles/clicsim_clic.dir/channel.cpp.o"
  "CMakeFiles/clicsim_clic.dir/channel.cpp.o.d"
  "CMakeFiles/clicsim_clic.dir/module.cpp.o"
  "CMakeFiles/clicsim_clic.dir/module.cpp.o.d"
  "libclicsim_clic.a"
  "libclicsim_clic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_clic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
