file(REMOVE_RECURSE
  "libclicsim_pvm.a"
)
