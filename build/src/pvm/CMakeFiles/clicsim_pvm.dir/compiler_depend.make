# Empty compiler generated dependencies file for clicsim_pvm.
# This may be replaced when dependencies are built.
