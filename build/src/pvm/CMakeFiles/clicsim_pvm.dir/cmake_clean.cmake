file(REMOVE_RECURSE
  "CMakeFiles/clicsim_pvm.dir/pvm.cpp.o"
  "CMakeFiles/clicsim_pvm.dir/pvm.cpp.o.d"
  "libclicsim_pvm.a"
  "libclicsim_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
