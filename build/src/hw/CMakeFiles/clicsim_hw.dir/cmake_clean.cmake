file(REMOVE_RECURSE
  "CMakeFiles/clicsim_hw.dir/buses.cpp.o"
  "CMakeFiles/clicsim_hw.dir/buses.cpp.o.d"
  "CMakeFiles/clicsim_hw.dir/interrupt.cpp.o"
  "CMakeFiles/clicsim_hw.dir/interrupt.cpp.o.d"
  "CMakeFiles/clicsim_hw.dir/nic.cpp.o"
  "CMakeFiles/clicsim_hw.dir/nic.cpp.o.d"
  "libclicsim_hw.a"
  "libclicsim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
