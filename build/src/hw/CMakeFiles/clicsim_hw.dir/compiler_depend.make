# Empty compiler generated dependencies file for clicsim_hw.
# This may be replaced when dependencies are built.
