file(REMOVE_RECURSE
  "libclicsim_hw.a"
)
