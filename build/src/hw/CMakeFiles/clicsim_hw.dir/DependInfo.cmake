
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/buses.cpp" "src/hw/CMakeFiles/clicsim_hw.dir/buses.cpp.o" "gcc" "src/hw/CMakeFiles/clicsim_hw.dir/buses.cpp.o.d"
  "/root/repo/src/hw/interrupt.cpp" "src/hw/CMakeFiles/clicsim_hw.dir/interrupt.cpp.o" "gcc" "src/hw/CMakeFiles/clicsim_hw.dir/interrupt.cpp.o.d"
  "/root/repo/src/hw/nic.cpp" "src/hw/CMakeFiles/clicsim_hw.dir/nic.cpp.o" "gcc" "src/hw/CMakeFiles/clicsim_hw.dir/nic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/clicsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clicsim_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
