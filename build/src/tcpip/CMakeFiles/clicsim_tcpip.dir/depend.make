# Empty dependencies file for clicsim_tcpip.
# This may be replaced when dependencies are built.
