file(REMOVE_RECURSE
  "CMakeFiles/clicsim_tcpip.dir/ip.cpp.o"
  "CMakeFiles/clicsim_tcpip.dir/ip.cpp.o.d"
  "CMakeFiles/clicsim_tcpip.dir/tcp.cpp.o"
  "CMakeFiles/clicsim_tcpip.dir/tcp.cpp.o.d"
  "CMakeFiles/clicsim_tcpip.dir/udp.cpp.o"
  "CMakeFiles/clicsim_tcpip.dir/udp.cpp.o.d"
  "libclicsim_tcpip.a"
  "libclicsim_tcpip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clicsim_tcpip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
