# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clicsim_tcpip.
