file(REMOVE_RECURSE
  "libclicsim_tcpip.a"
)
