// Declarative cluster fabric topologies.
//
// A TopologySpec names the wiring shape (one star switch, a leaf-spine
// fabric, a ring of switches, a 2-level fat-tree); TopologyPlan::resolve()
// validates it against the node count — port budgets, loop-free flood
// wiring, every node reachable — and computes the concrete wiring the
// Cluster builder executes: which leaf owns which nodes, which ports are
// trunks, the static unicast route from every switch to every node, and
// the spanning-tree edge set floods are confined to.
//
// Shard placement follows the topology: a node-bearing (leaf/ring) switch
// co-resides on the shard of its node group, so leaf-local traffic never
// crosses a shard boundary; only trunk frames pay the mailbox hop. Spine
// switches, which carry only trunk traffic, live on shard 0.
#pragma once

#include <string>
#include <vector>

namespace clicsim::os {

enum class TopologyKind {
  kSingleStar,  // every NIC on one switch (the legacy shape)
  kLeafSpine,   // L leaves, each uplinked to every one of S spines
  kSwitchRing,  // R node-bearing switches in a cycle
  kFatTree2,    // 2-level fat-tree: full-bisection leaf-spine
};

struct TopologySpec {
  TopologyKind kind = TopologyKind::kSingleStar;
  // Node-bearing switches (leaves for leaf-spine/fat-tree, ring members
  // for the ring). 0 = derive (~32 nodes per leaf, minimum 2 switches).
  int leaves = 0;
  // Spine switches. Leaf-spine: 0 derives 1 (oversubscribed by design);
  // the fat-tree derives nodes-per-leaf spines (full bisection: one uplink
  // per downlink) and rejects an explicit mismatch.
  int spines = 0;
  // Port budget per switch, enforced at resolve time; 0 = unconstrained.
  int max_switch_ports = 0;

  static TopologySpec single_star() { return {}; }
  static TopologySpec leaf_spine(int leaves, int spines = 1) {
    return {TopologyKind::kLeafSpine, leaves, spines, 0};
  }
  static TopologySpec switch_ring(int switches) {
    return {TopologyKind::kSwitchRing, switches, 0, 0};
  }
  static TopologySpec fat_tree(int leaves = 0) {
    return {TopologyKind::kFatTree2, leaves, 0, 0};
  }

  // Total switches this spec builds for `nodes` nodes (after deriving
  // defaulted counts); does not validate beyond what derivation needs.
  [[nodiscard]] int switch_count(int nodes) const;
};

// One inter-switch cable: `a`'s port `a_port` to `b`'s port `b_port`.
// `on_flood_tree` marks spanning-tree membership — the builder disables
// flooding on both end ports of every edge where it is false.
struct TrunkEdge {
  int a = 0;
  int a_port = 0;
  int b = 0;
  int b_port = 0;
  bool on_flood_tree = true;
};

// The resolved wiring for one (spec, nodes, nics_per_node) triple. Switch
// ids: node-bearing switches first (0..leaves-1), then spines
// (leaves..leaves+spines-1). Node ids map to leaves contiguously; a node's
// NIC j sits on its leaf at port local_index * nics_per_node + j.
class TopologyPlan {
 public:
  // Validates and resolves; throws std::invalid_argument with a message
  // naming the violated budget/shape constraint.
  static TopologyPlan resolve(const TopologySpec& spec, int nodes,
                              int nics_per_node);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int leaves() const { return leaves_; }
  [[nodiscard]] int spines() const { return spines_; }
  [[nodiscard]] int switches() const { return leaves_ + spines_; }
  [[nodiscard]] bool single_star() const {
    return kind_ == TopologyKind::kSingleStar;
  }

  [[nodiscard]] int leaf_of_node(int node) const {
    return node_leaf_.at(static_cast<std::size_t>(node));
  }
  // Position of `node` among its leaf's nodes (port bases derive from it).
  [[nodiscard]] int local_index(int node) const {
    return local_index_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] int nodes_on(int leaf) const {
    return leaf_nodes_.at(static_cast<std::size_t>(leaf));
  }
  // Ports on switch `s`: node-facing downlinks first, then trunk ports.
  [[nodiscard]] int ports_of(int s) const {
    return ports_.at(static_cast<std::size_t>(s));
  }

  [[nodiscard]] const std::vector<TrunkEdge>& trunks() const {
    return trunks_;
  }

  // Static unicast egress: the port of switch `s` a frame for `node`
  // leaves through, or -1 when `s` owns the node (frames for local nodes
  // use the node-facing port directly). Pre-learned into every switch so
  // a cold fabric never unknown-unicast floods.
  [[nodiscard]] int route(int s, int node) const {
    return routes_.at(static_cast<std::size_t>(s) *
                          static_cast<std::size_t>(nodes_) +
                      static_cast<std::size_t>(node));
  }

  // Human-readable switch name ("switch0" for the star, "leaf3"/"spine1"/
  // "ring2" otherwise) — stable, fault-target names build on it.
  [[nodiscard]] std::string switch_name(int s) const;

 private:
  TopologyPlan() = default;

  void place_nodes();
  void wire_leaf_spine();
  void wire_ring();
  void compute_routes();
  void check_ports(int limit) const;
  void check_flood_tree() const;
  void check_reachability() const;

  TopologyKind kind_ = TopologyKind::kSingleStar;
  int nodes_ = 0;
  int nics_per_node_ = 1;
  int leaves_ = 1;
  int spines_ = 0;
  std::vector<int> node_leaf_;
  std::vector<int> local_index_;
  std::vector<int> leaf_nodes_;
  std::vector<int> ports_;
  std::vector<TrunkEdge> trunks_;
  std::vector<int> routes_;  // switches x nodes, -1 == local
};

}  // namespace clicsim::os
