// Per-node kernel services: bottom halves (softirqs), kernel timers,
// system-call cost accounting and process wait queues.
#pragma once

#include <cstdint>

#include "hw/cpu.hpp"
#include "sim/inline_function.hpp"
#include "sim/ring_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/timer_wheel.hpp"

namespace clicsim::os {

class Kernel {
 public:
  Kernel(sim::Simulator& sim, hw::Cpu& cpu)
      : sim_(&sim), cpu_(&cpu), wheel_(sim) {}

  // --- Bottom halves -------------------------------------------------------
  // Queues `fn` to run in softirq context: after the ISR completes, the
  // kernel pays the dispatch cost at softirq priority and invokes `fn`
  // (which charges its own processing time at softirq priority).
  void queue_bottom_half(sim::Action fn);

  [[nodiscard]] std::uint64_t bottom_halves_run() const { return bh_run_; }

  // --- Timers ---------------------------------------------------------------
  // Backed by a hierarchical timer wheel: cancel_timer() destroys the
  // closure in O(1) instead of leaving a tombstone event in the heap.
  using TimerId = sim::TimerWheel::TimerId;
  static constexpr TimerId kInvalidTimer = sim::TimerWheel::kInvalidTimer;

  TimerId add_timer(sim::SimTime delay, sim::Action fn) {
    return wheel_.schedule(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) { wheel_.cancel(id); }
  [[nodiscard]] bool timer_pending(TimerId id) const {
    return wheel_.pending(id);
  }
  [[nodiscard]] const sim::TimerWheel& timer_wheel() const { return wheel_; }

  // --- System calls ----------------------------------------------------------
  // Charges the kernel-entry cost (INT 80h path) at kernel priority, then
  // runs `body` in kernel context. The matching exit cost is charged by
  // syscall_return.
  void syscall(sim::Action body);
  void syscall_return(sim::Action back_in_user = {});

  // Lightweight system call (GAMMA-style): reduced entry cost and no
  // scheduler involvement on return.
  void light_syscall(sim::Action body);

  [[nodiscard]] std::uint64_t syscalls() const { return syscalls_; }

  [[nodiscard]] hw::Cpu& cpu() { return *cpu_; }
  [[nodiscard]] sim::Simulator& sim() { return *sim_; }

 private:
  void run_bottom_halves();

  sim::Simulator* sim_;
  hw::Cpu* cpu_;
  sim::TimerWheel wheel_;
  sim::RingQueue<sim::Action> bh_queue_;  // recycled slots, no deque churn
  bool bh_scheduled_ = false;
  std::uint64_t bh_run_ = 0;
  std::uint64_t syscalls_ = 0;
};

// A queue of blocked simulated processes. Waking charges the wakeup cost in
// kernel context plus a context switch before the woken coroutine resumes —
// the scheduler mediation CLIC deliberately keeps (section 3.2(a)).
class WaitQueue {
 public:
  WaitQueue(sim::Simulator& sim, hw::Cpu& cpu)
      : sim_(&sim), cpu_(&cpu), trigger_(sim) {}

  // co_await sleep(): parks the calling coroutine until woken.
  [[nodiscard]] sim::Trigger::Awaiter sleep() { return trigger_.wait(); }

  // Wakes every sleeper: wakeup cost at kernel priority, then a context
  // switch, then the coroutines resume.
  void wake_all();

  [[nodiscard]] std::size_t sleepers() const {
    return trigger_.waiter_count();
  }

 private:
  sim::Simulator* sim_;
  hw::Cpu* cpu_;
  sim::Trigger trigger_;
};

}  // namespace clicsim::os
