// Per-node kernel services: bottom halves (softirqs), kernel timers,
// system-call cost accounting and process wait queues.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "hw/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace clicsim::os {

class Kernel {
 public:
  Kernel(sim::Simulator& sim, hw::Cpu& cpu) : sim_(&sim), cpu_(&cpu) {}

  // --- Bottom halves -------------------------------------------------------
  // Queues `fn` to run in softirq context: after the ISR completes, the
  // kernel pays the dispatch cost at softirq priority and invokes `fn`
  // (which charges its own processing time at softirq priority).
  void queue_bottom_half(std::function<void()> fn);

  [[nodiscard]] std::uint64_t bottom_halves_run() const { return bh_run_; }

  // --- Timers ---------------------------------------------------------------
  using TimerId = std::uint64_t;
  TimerId add_timer(sim::SimTime delay, std::function<void()> fn);
  void cancel_timer(TimerId id);

  // --- System calls ----------------------------------------------------------
  // Charges the kernel-entry cost (INT 80h path) at kernel priority, then
  // runs `body` in kernel context. The matching exit cost is charged by
  // syscall_return.
  void syscall(std::function<void()> body);
  void syscall_return(std::function<void()> back_in_user = {});

  // Lightweight system call (GAMMA-style): reduced entry cost and no
  // scheduler involvement on return.
  void light_syscall(std::function<void()> body);

  [[nodiscard]] std::uint64_t syscalls() const { return syscalls_; }

  [[nodiscard]] hw::Cpu& cpu() { return *cpu_; }
  [[nodiscard]] sim::Simulator& sim() { return *sim_; }

 private:
  void run_bottom_halves();

  sim::Simulator* sim_;
  hw::Cpu* cpu_;
  std::deque<std::function<void()>> bh_queue_;
  bool bh_scheduled_ = false;
  std::uint64_t bh_run_ = 0;
  std::uint64_t next_timer_ = 1;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t syscalls_ = 0;
};

// A queue of blocked simulated processes. Waking charges the wakeup cost in
// kernel context plus a context switch before the woken coroutine resumes —
// the scheduler mediation CLIC deliberately keeps (section 3.2(a)).
class WaitQueue {
 public:
  WaitQueue(sim::Simulator& sim, hw::Cpu& cpu)
      : sim_(&sim), cpu_(&cpu), trigger_(sim) {}

  // co_await sleep(): parks the calling coroutine until woken.
  [[nodiscard]] sim::Trigger::Awaiter sleep() { return trigger_.wait(); }

  // Wakes every sleeper: wakeup cost at kernel priority, then a context
  // switch, then the coroutines resume.
  void wake_all();

  [[nodiscard]] std::size_t sleepers() const {
    return trigger_.waiter_count();
  }

 private:
  sim::Simulator* sim_;
  hw::Cpu* cpu_;
  sim::Trigger trigger_;
};

}  // namespace clicsim::os
