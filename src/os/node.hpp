// A cluster node: CPU, memory bus, PCI bus, interrupt controller, kernel,
// and one or more NIC+driver pairs (several NICs enable channel bonding).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/buses.hpp"
#include "hw/cpu.hpp"
#include "hw/interrupt.hpp"
#include "hw/nic.hpp"
#include "hw/params.hpp"
#include "os/driver.hpp"
#include "os/kernel.hpp"
#include "sim/simulator.hpp"

namespace clicsim::os {

class Node {
 public:
  Node(sim::Simulator& sim, int id, hw::HostParams host, hw::PciParams pci,
       std::string name);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Adds a NIC (plus its driver) on the node's PCI bus; returns the index.
  int add_nic(hw::NicProfile profile, net::MacAddr mac);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulator& sim() { return *sim_; }
  [[nodiscard]] hw::Cpu& cpu() { return cpu_; }
  [[nodiscard]] hw::MemoryBus& mem() { return mem_; }
  [[nodiscard]] hw::PciBus& pci() { return pci_; }
  [[nodiscard]] hw::InterruptController& intc() { return intc_; }
  [[nodiscard]] Kernel& kernel() { return kernel_; }

  // Charges a kernel memcpy of `bytes` at `prio`, split into bounded chunks
  // so interrupts and DMA interleave with long copies (a single multi-MB
  // CPU work item would block the ISR and starve the memory bus, which no
  // real preemptible kernel does). `done` fires after the last chunk.
  void copy_data(sim::CpuPriority prio, std::int64_t bytes,
                 std::function<void()> done = {});

  friend class CopyChain;

  [[nodiscard]] int nic_count() const {
    return static_cast<int>(nics_.size());
  }
  [[nodiscard]] hw::Nic& nic(int i = 0) { return *nics_.at(i); }
  [[nodiscard]] Driver& driver(int i = 0) { return *drivers_.at(i); }
  [[nodiscard]] net::MacAddr mac(int i = 0) { return nic(i).mac(); }

 private:
  sim::Simulator* sim_;
  int id_;
  std::string name_;
  hw::Cpu cpu_;
  hw::MemoryBus mem_;
  hw::PciBus pci_;
  hw::InterruptController intc_;
  Kernel kernel_;
  std::vector<std::unique_ptr<hw::Nic>> nics_;
  std::vector<std::unique_ptr<Driver>> drivers_;
};

// Serializes incremental copy work for one logical transfer: bytes may be
// added as data trickles in (e.g. TCP segments filling a blocked recv), and
// the final action runs only after every queued byte has been copied.
class CopyChain {
 public:
  CopyChain(Node& node, sim::CpuPriority prio) : node_(&node), prio_(prio) {}

  void add(std::int64_t bytes) {
    queued_ += bytes;
    kick();
  }

  // Runs `done` once all copy work (queued now or still being processed)
  // completes. Call at most once.
  void finish(std::function<void()> done) {
    done_ = std::move(done);
    kick();
  }

 private:
  void kick() {
    if (copying_) return;
    if (queued_ == 0) {
      if (done_) {
        auto d = std::move(done_);
        done_ = {};
        d();
      }
      return;
    }
    copying_ = true;
    const std::int64_t chunk = queued_;
    queued_ = 0;
    node_->copy_data(prio_, chunk, [this] {
      copying_ = false;
      kick();
    });
  }

  Node* node_;
  sim::CpuPriority prio_;
  std::int64_t queued_ = 0;
  bool copying_ = false;
  std::function<void()> done_;
};

}  // namespace clicsim::os
