// Topology builder: N nodes wired into the fabric a TopologySpec declares —
// one star switch (the legacy shape), a leaf-spine fabric, a ring of
// switches, or a 2-level fat-tree (see os/topology.hpp).
//
// Every NIC j of node i connects to node i's owning switch at port
// local_index(i)*nics_per_node + j (for the single star this is switch port
// i*nics_per_node + j). MAC addresses encode (node, nic) and every switch
// is pre-loaded with static routes for every NIC — multi-hop unicast works
// from t=0 with no unknown-unicast flood storm. Inter-switch trunks carry a
// spanning-tree flag: non-tree edges have flooding disabled on both end
// ports, so broadcasts reach every node exactly once and cannot loop.
//
// Sharded builds (`shards` > 1 through the ShardGroup constructor): a
// node-bearing switch co-resides on the shard of its node group, so
// leaf-local traffic never crosses a shard boundary — only trunk frames pay
// the mailbox + Frame::detach hop. Spine switches (trunk-only) live on
// shard 0. The legacy single star keeps its PR 5 placement: switch on shard
// 0, nodes spread contiguously over shards 1..K-1. Every cross-shard link
// (node-to-switch or trunk) is declared as a PDES channel with lookahead =
// delivery floor + propagation, validated positive at build time.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hw/params.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "os/node.hpp"
#include "os/topology.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace clicsim::os {

struct ClusterConfig {
  int nodes = 2;
  int nics_per_node = 1;
  // Worker shards for intra-scenario PDES (1 = classic single-threaded
  // run). Only honoured by the ShardGroup constructor; testbeds clamp it
  // to [1, nodes + switches].
  int shards = 1;
  TopologySpec topology;
  hw::HostParams host;
  hw::PciParams pci;
  hw::NicProfile nic = hw::NicProfile::smc9462();
  net::LinkParams link;
  net::SwitchParams sw;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config);

  // Sharded topology: group.shards() must equal 1 (equivalent to the
  // plain constructor) or be >= 2, in which case switches and nodes are
  // placed as described in the file comment.
  Cluster(sim::ShardGroup& group, ClusterConfig config);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int i) { return *nodes_.at(i); }
  [[nodiscard]] const TopologyPlan& topology() const { return *plan_; }

  // Switch access. ethernet_switch() is the single star switch (id 0) —
  // still the right handle for legacy single-switch scenarios.
  [[nodiscard]] int switch_count() const {
    return static_cast<int>(switches_.size());
  }
  [[nodiscard]] net::Switch& switch_at(int s) {
    return *switches_.at(static_cast<std::size_t>(s));
  }
  [[nodiscard]] net::Switch& ethernet_switch() { return *switches_.at(0); }
  [[nodiscard]] net::Switch& switch_of_node(int i) {
    return switch_at(plan_->leaf_of_node(i));
  }

  [[nodiscard]] net::Link& link(int node, int nic = 0) {
    return *links_.at(static_cast<std::size_t>(
        node * config_.nics_per_node + nic));
  }
  // Inter-switch trunk cables, in TopologyPlan::trunks() order.
  [[nodiscard]] int trunk_count() const {
    return static_cast<int>(trunk_links_.size());
  }
  [[nodiscard]] net::Link& trunk_link(int t) {
    return *trunk_links_.at(static_cast<std::size_t>(t));
  }

  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  // Shard placement (all zero for non-sharded clusters).
  [[nodiscard]] int shard_of_node(int i) const {
    return node_shards_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int shard_of_switch(int s) const {
    return switch_shards_.at(static_cast<std::size_t>(s));
  }
  [[nodiscard]] int switch_shard() const { return shard_of_switch(0); }
  [[nodiscard]] sim::Simulator& sim_of_node(int i) {
    return nodes_.at(static_cast<std::size_t>(i))->sim();
  }
  [[nodiscard]] sim::Simulator& sim_of_switch(int s) {
    return group_ != nullptr ? group_->shard(shard_of_switch(s)) : *sim_;
  }
  // The simulator that owns switch 0 (the home simulator for the star).
  [[nodiscard]] sim::Simulator& switch_sim() { return sim_of_switch(0); }

  [[nodiscard]] static net::MacAddr mac_of(int node, int nic = 0) {
    return net::MacAddr::node(
        static_cast<std::uint32_t>(node) << 8 |
        static_cast<std::uint32_t>(nic));
  }

  // Sets the MTU on every NIC in the cluster (jumbo on/off sweeps).
  void set_mtu_all(std::int64_t mtu);

  // Adjusts interrupt coalescing on every NIC.
  void set_coalescing_all(sim::SimTime usecs, int frames);

 private:
  void build(sim::Simulator& home);

  sim::Simulator* sim_;
  sim::ShardGroup* group_ = nullptr;
  ClusterConfig config_;
  std::optional<TopologyPlan> plan_;
  std::vector<int> node_shards_;
  std::vector<int> switch_shards_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<net::Link>> trunk_links_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
};

}  // namespace clicsim::os
