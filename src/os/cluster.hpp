// Topology builder: N nodes star-wired to one Ethernet switch.
//
// Every NIC j of node i connects to switch port i*nics_per_node + j. MAC
// addresses encode (node, nic) so protocol address tables are static — the
// single-LAN cluster assumption under which CLIC drops the IP layer.
//
// Sharded builds (`shards` > 1 through the ShardGroup constructor) place
// the switch and its ports on shard 0 and spread the nodes contiguously
// over shards 1..K-1; each node's kernel, NICs and timers live entirely on
// its shard's simulator, and every node-to-switch link becomes a
// cross-shard PDES channel (lookahead = delivery floor + propagation,
// validated at build time).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/params.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "os/node.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace clicsim::os {

struct ClusterConfig {
  int nodes = 2;
  int nics_per_node = 1;
  // Worker shards for intra-scenario PDES (1 = classic single-threaded
  // run). Only honoured by the ShardGroup constructor; testbeds clamp it
  // to [1, nodes + 1].
  int shards = 1;
  hw::HostParams host;
  hw::PciParams pci;
  hw::NicProfile nic = hw::NicProfile::smc9462();
  net::LinkParams link;
  net::SwitchParams sw;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config);

  // Sharded topology: group.shards() must equal 1 (equivalent to the
  // plain constructor) or be >= 2, in which case the switch occupies
  // shard 0 and nodes are distributed over shards 1..K-1.
  Cluster(sim::ShardGroup& group, ClusterConfig config);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int i) { return *nodes_.at(i); }
  [[nodiscard]] net::Switch& ethernet_switch() { return *switch_; }
  [[nodiscard]] net::Link& link(int node, int nic = 0) {
    return *links_.at(static_cast<std::size_t>(
        node * config_.nics_per_node + nic));
  }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  // Shard placement (all zero for non-sharded clusters).
  [[nodiscard]] int shard_of_node(int i) const {
    return node_shards_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int switch_shard() const { return 0; }
  [[nodiscard]] sim::Simulator& sim_of_node(int i) {
    return nodes_.at(static_cast<std::size_t>(i))->sim();
  }
  // The simulator that owns the switch (the home/shard-0 simulator).
  [[nodiscard]] sim::Simulator& switch_sim() { return *sim_; }

  [[nodiscard]] static net::MacAddr mac_of(int node, int nic = 0) {
    return net::MacAddr::node(
        static_cast<std::uint32_t>(node) << 8 |
        static_cast<std::uint32_t>(nic));
  }

  // Sets the MTU on every NIC in the cluster (jumbo on/off sweeps).
  void set_mtu_all(std::int64_t mtu);

  // Adjusts interrupt coalescing on every NIC.
  void set_coalescing_all(sim::SimTime usecs, int frames);

 private:
  void build(sim::Simulator& home);

  sim::Simulator* sim_;
  sim::ShardGroup* group_ = nullptr;
  ClusterConfig config_;
  std::vector<int> node_shards_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::unique_ptr<net::Switch> switch_;
};

}  // namespace clicsim::os
