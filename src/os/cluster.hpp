// Topology builder: N nodes star-wired to one Ethernet switch.
//
// Every NIC j of node i connects to switch port i*nics_per_node + j. MAC
// addresses encode (node, nic) so protocol address tables are static — the
// single-LAN cluster assumption under which CLIC drops the IP layer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/params.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "os/node.hpp"
#include "sim/simulator.hpp"

namespace clicsim::os {

struct ClusterConfig {
  int nodes = 2;
  int nics_per_node = 1;
  hw::HostParams host;
  hw::PciParams pci;
  hw::NicProfile nic = hw::NicProfile::smc9462();
  net::LinkParams link;
  net::SwitchParams sw;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int i) { return *nodes_.at(i); }
  [[nodiscard]] net::Switch& ethernet_switch() { return *switch_; }
  [[nodiscard]] net::Link& link(int node, int nic = 0) {
    return *links_.at(static_cast<std::size_t>(
        node * config_.nics_per_node + nic));
  }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  [[nodiscard]] static net::MacAddr mac_of(int node, int nic = 0) {
    return net::MacAddr::node(
        static_cast<std::uint32_t>(node) << 8 |
        static_cast<std::uint32_t>(nic));
  }

  // Sets the MTU on every NIC in the cluster (jumbo on/off sweeps).
  void set_mtu_all(std::int64_t mtu);

  // Adjusts interrupt coalescing on every NIC.
  void set_coalescing_all(sim::SimTime usecs, int frames);

 private:
  sim::Simulator* sim_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::unique_ptr<net::Switch> switch_;
};

}  // namespace clicsim::os
