// Static cluster address map: node id <-> MAC addresses.
//
// CLIC's single-LAN assumption (no IP, no routing) makes the address table
// static configuration, distributed out of band — exactly what clusters of
// the period did. Nodes with several NICs list one MAC per card (channel
// bonding picks among them).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "os/cluster.hpp"

namespace clicsim::os {

class AddressMap {
 public:
  void add(int node, net::MacAddr mac) {
    macs_[node].push_back(mac);
    nodes_[mac] = node;
  }

  [[nodiscard]] int node_of(const net::MacAddr& mac) const {
    auto it = nodes_.find(mac);
    if (it == nodes_.end()) {
      throw std::out_of_range("AddressMap: unknown MAC " + mac.str());
    }
    return it->second;
  }

  [[nodiscard]] bool knows(const net::MacAddr& mac) const {
    return nodes_.count(mac) > 0;
  }

  [[nodiscard]] const std::vector<net::MacAddr>& macs_of(int node) const {
    auto it = macs_.find(node);
    if (it == macs_.end()) {
      throw std::out_of_range("AddressMap: unknown node");
    }
    return it->second;
  }

  [[nodiscard]] static AddressMap for_cluster(Cluster& cluster) {
    AddressMap map;
    for (int i = 0; i < cluster.size(); ++i) {
      auto& node = cluster.node(i);
      for (int j = 0; j < node.nic_count(); ++j) {
        map.add(i, node.mac(j));
      }
    }
    return map;
  }

 private:
  std::unordered_map<int, std::vector<net::MacAddr>> macs_;
  std::unordered_map<net::MacAddr, int, net::MacAddrHash> nodes_;
};

}  // namespace clicsim::os
