// The socket-buffer equivalent: the structure drivers consume on transmit.
//
// Mirrors the property of Linux SK_BUFFs the paper relies on: a fragmented
// send — pointers to headers plus non-contiguous data — so CLIC can hand the
// driver a descriptor that references user memory directly (0-copy) instead
// of first copying into system memory.
#pragma once

#include <cstdint>
#include <utility>

#include "net/buffer.hpp"
#include "net/frame.hpp"

namespace clicsim::os {

struct SkBuff {
  net::MacAddr dst;
  net::MacAddr src;
  std::uint16_t ethertype = 0;
  net::HeaderBlob header;   // upper-protocol header (CLIC / IP+TCP / ...)
  net::Buffer payload;      // data; may reference user memory (0-copy)

  // Scatter/gather elements the DMA descriptor describes (header block +
  // each non-contiguous data piece). 1 means contiguous kernel memory.
  int sg_fragments = 1;

  // True while `payload` references user pages rather than kernel memory
  // (requires a scatter/gather capable NIC to transmit directly).
  bool references_user_memory = false;

  [[nodiscard]] net::Frame to_frame() const& {
    net::Frame f;
    f.dst = dst;
    f.src = src;
    f.ethertype = ethertype;
    f.header = header;
    f.payload = payload;
    return f;
  }

  // Consuming conversion for the transmit hot path: hands the pooled
  // header record and buffer reference to the frame instead of bumping
  // refcounts for a copy that is dropped a moment later.
  [[nodiscard]] net::Frame to_frame() && {
    net::Frame f;
    f.dst = dst;
    f.src = src;
    f.ethertype = ethertype;
    f.header = std::move(header);
    f.payload = std::move(payload);
    return f;
  }
};

}  // namespace clicsim::os
