#include "os/kernel.hpp"

#include <utility>

namespace clicsim::os {

void Kernel::queue_bottom_half(sim::Action fn) {
  bh_queue_.push_back(std::move(fn));
  if (!bh_scheduled_) {
    bh_scheduled_ = true;
    cpu_->run(sim::CpuPriority::kSoftirq,
              cpu_->params().bottom_half_dispatch, [this] {
                run_bottom_halves();
              });
  }
}

void Kernel::run_bottom_halves() {
  if (bh_queue_.empty()) {
    bh_scheduled_ = false;
    return;
  }
  auto fn = std::move(bh_queue_.front());
  bh_queue_.pop_front();
  ++bh_run_;
  fn();
  // Chain the next item through the CPU so softirq work stays serialized
  // behind whatever processing `fn` charged.
  cpu_->run(sim::CpuPriority::kSoftirq, 0, [this] { run_bottom_halves(); });
}

void Kernel::syscall(sim::Action body) {
  ++syscalls_;
  cpu_->run(sim::CpuPriority::kKernel, cpu_->params().syscall_enter,
            std::move(body));
}

void Kernel::syscall_return(sim::Action back_in_user) {
  cpu_->run(sim::CpuPriority::kKernel, cpu_->params().syscall_exit,
            std::move(back_in_user));
}

void Kernel::light_syscall(sim::Action body) {
  ++syscalls_;
  // GAMMA-style: roughly a third of the full trap cost, no scheduler pass.
  cpu_->run(sim::CpuPriority::kKernel, cpu_->params().syscall_enter / 3,
            std::move(body));
}

void WaitQueue::wake_all() {
  if (trigger_.waiter_count() == 0) return;
  cpu_->run(sim::CpuPriority::kKernel, cpu_->params().process_wakeup, [this] {
    cpu_->run(sim::CpuPriority::kUser, cpu_->params().context_switch,
              [this] { trigger_.fire(); });
  });
}

}  // namespace clicsim::os
