#include "os/cluster.hpp"

#include <string>
#include <utility>

namespace clicsim::os {

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config)
    : sim_(&sim), config_(std::move(config)) {
  const int ports = config_.nodes * config_.nics_per_node;
  switch_ = std::make_unique<net::Switch>(sim, ports, config_.sw, "switch0");

  for (int i = 0; i < config_.nodes; ++i) {
    auto node = std::make_unique<Node>(sim, i, config_.host, config_.pci,
                                       "node" + std::to_string(i));
    for (int j = 0; j < config_.nics_per_node; ++j) {
      node->add_nic(config_.nic, mac_of(i, j));

      const int port = i * config_.nics_per_node + j;
      auto link = std::make_unique<net::Link>(
          sim, config_.link,
          "link.n" + std::to_string(i) + ".e" + std::to_string(j));
      node->nic(j).attach_link(*link, 0);
      switch_->connect(port, *link, 1);
      // Boot-time gratuitous learning: every NIC announces itself.
      switch_->learn(mac_of(i, j), port);
      links_.push_back(std::move(link));
    }
    nodes_.push_back(std::move(node));
  }
}

void Cluster::set_mtu_all(std::int64_t mtu) {
  for (auto& n : nodes_) {
    for (int j = 0; j < n->nic_count(); ++j) n->nic(j).set_mtu(mtu);
  }
}

void Cluster::set_coalescing_all(sim::SimTime usecs, int frames) {
  for (auto& n : nodes_) {
    for (int j = 0; j < n->nic_count(); ++j) {
      n->nic(j).set_coalescing(usecs, frames);
    }
  }
}

}  // namespace clicsim::os
