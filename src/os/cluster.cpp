#include "os/cluster.hpp"

#include <string>
#include <utility>

namespace clicsim::os {

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config)
    : sim_(&sim), config_(std::move(config)) {
  build(sim);
}

Cluster::Cluster(sim::ShardGroup& group, ClusterConfig config)
    : sim_(&group.shard(0)), group_(&group), config_(std::move(config)) {
  build(group.shard(0));
}

void Cluster::build(sim::Simulator& home) {
  const int ports = config_.nodes * config_.nics_per_node;
  // The switch (and hence every switch port) lives on shard 0, next to the
  // controlling thread; a sharded run keeps all forwarding state there.
  switch_ = std::make_unique<net::Switch>(home, ports, config_.sw, "switch0");

  const int k = group_ != nullptr ? group_->shards() : 1;
  node_shards_.resize(static_cast<std::size_t>(config_.nodes), 0);
  if (k >= 2) {
    // Contiguous blocks over worker shards 1..K-1, monotone in node index
    // (neighbouring node ids co-locate — ring/neighbour workloads keep
    // most traffic on-shard even though the switch hop crosses anyway).
    for (int i = 0; i < config_.nodes; ++i) {
      node_shards_[static_cast<std::size_t>(i)] =
          1 + static_cast<int>((static_cast<std::int64_t>(i) * (k - 1)) /
                               config_.nodes);
    }
  }

  for (int i = 0; i < config_.nodes; ++i) {
    const int shard = node_shards_[static_cast<std::size_t>(i)];
    sim::Simulator& node_sim =
        group_ != nullptr ? group_->shard(shard) : home;
    auto node = std::make_unique<Node>(node_sim, i, config_.host, config_.pci,
                                       "node" + std::to_string(i));
    for (int j = 0; j < config_.nics_per_node; ++j) {
      node->add_nic(config_.nic, mac_of(i, j));

      const int port = i * config_.nics_per_node + j;
      const std::string link_name =
          "link.n" + std::to_string(i) + ".e" + std::to_string(j);
      // Link end 0 is the node's NIC (on the node's shard), end 1 the
      // switch port (shard 0). The shard-aware constructor declares the
      // PDES channels and validates positive lookahead.
      auto link =
          group_ != nullptr
              ? std::make_unique<net::Link>(*group_, shard, switch_shard(),
                                            config_.link, link_name)
              : std::make_unique<net::Link>(home, config_.link, link_name);
      node->nic(j).attach_link(*link, 0);
      switch_->connect(port, *link, 1);
      // Boot-time gratuitous learning: every NIC announces itself.
      switch_->learn(mac_of(i, j), port);
      links_.push_back(std::move(link));
    }
    nodes_.push_back(std::move(node));
  }
}

void Cluster::set_mtu_all(std::int64_t mtu) {
  for (auto& n : nodes_) {
    for (int j = 0; j < n->nic_count(); ++j) n->nic(j).set_mtu(mtu);
  }
}

void Cluster::set_coalescing_all(sim::SimTime usecs, int frames) {
  for (auto& n : nodes_) {
    for (int j = 0; j < n->nic_count(); ++j) {
      n->nic(j).set_coalescing(usecs, frames);
    }
  }
}

}  // namespace clicsim::os
