#include "os/cluster.hpp"

#include <string>
#include <utility>

namespace clicsim::os {

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config)
    : sim_(&sim), config_(std::move(config)) {
  build(sim);
}

Cluster::Cluster(sim::ShardGroup& group, ClusterConfig config)
    : sim_(&group.shard(0)), group_(&group), config_(std::move(config)) {
  build(group.shard(0));
}

void Cluster::build(sim::Simulator& home) {
  plan_ = TopologyPlan::resolve(config_.topology, config_.nodes,
                                config_.nics_per_node);
  const TopologyPlan& plan = *plan_;
  const int k = group_ != nullptr ? group_->shards() : 1;

  // Shard placement. The single star keeps the PR 5 rule verbatim (switch
  // on shard 0, nodes contiguous over shards 1..K-1). Multi-tier fabrics
  // place each node-bearing switch on a worker shard and its node group on
  // the *same* shard, so leaf-local frames never touch a mailbox; spines,
  // which only ever see trunk frames, stay on shard 0.
  switch_shards_.assign(static_cast<std::size_t>(plan.switches()), 0);
  node_shards_.assign(static_cast<std::size_t>(config_.nodes), 0);
  if (k >= 2) {
    if (plan.single_star()) {
      for (int i = 0; i < config_.nodes; ++i) {
        node_shards_[static_cast<std::size_t>(i)] =
            1 + static_cast<int>((static_cast<std::int64_t>(i) * (k - 1)) /
                                 config_.nodes);
      }
    } else {
      for (int g = 0; g < plan.leaves(); ++g) {
        switch_shards_[static_cast<std::size_t>(g)] =
            1 + static_cast<int>((static_cast<std::int64_t>(g) * (k - 1)) /
                                 plan.leaves());
      }
      for (int i = 0; i < config_.nodes; ++i) {
        node_shards_[static_cast<std::size_t>(i)] =
            switch_shards_[static_cast<std::size_t>(plan.leaf_of_node(i))];
      }
    }
  }

  auto sim_for_shard = [&](int shard) -> sim::Simulator& {
    return group_ != nullptr ? group_->shard(shard) : home;
  };

  switches_.reserve(static_cast<std::size_t>(plan.switches()));
  for (int s = 0; s < plan.switches(); ++s) {
    switches_.push_back(std::make_unique<net::Switch>(
        sim_for_shard(shard_of_switch(s)), plan.ports_of(s), config_.sw,
        plan.switch_name(s)));
  }

  for (int i = 0; i < config_.nodes; ++i) {
    const int shard = node_shards_[static_cast<std::size_t>(i)];
    sim::Simulator& node_sim = sim_for_shard(shard);
    auto node = std::make_unique<Node>(node_sim, i, config_.host, config_.pci,
                                       "node" + std::to_string(i));
    const int leaf = plan.leaf_of_node(i);
    net::Switch& leaf_switch = *switches_[static_cast<std::size_t>(leaf)];
    for (int j = 0; j < config_.nics_per_node; ++j) {
      node->add_nic(config_.nic, mac_of(i, j));

      const int port = plan.local_index(i) * config_.nics_per_node + j;
      const std::string link_name =
          "link.n" + std::to_string(i) + ".e" + std::to_string(j);
      // Link end 0 is the node's NIC, end 1 the switch port. The
      // shard-aware constructor declares the PDES channels and validates
      // positive lookahead; node and leaf sharing a shard declare nothing.
      auto link = group_ != nullptr
                      ? std::make_unique<net::Link>(*group_, shard,
                                                    shard_of_switch(leaf),
                                                    config_.link, link_name)
                      : std::make_unique<net::Link>(home, config_.link,
                                                    link_name);
      node->nic(j).attach_link(*link, 0);
      leaf_switch.connect(port, *link, 1);
      // Boot-time gratuitous learning: every NIC announces itself to its
      // own switch.
      leaf_switch.learn(mac_of(i, j), port);
      links_.push_back(std::move(link));
    }
    nodes_.push_back(std::move(node));
  }

  // Inter-switch trunks. Every cross-shard trunk is itself a PDES channel
  // (same lookahead law as node links — the constructor throws if the
  // switch-to-switch hop would not have strictly positive lookahead).
  // Non-spanning-tree edges get flooding disabled on both end ports:
  // unicast still uses them via the static routes below, floods never do.
  for (const TrunkEdge& e : plan.trunks()) {
    const std::string trunk_name =
        "trunk." + plan.switch_name(e.a) + "." + plan.switch_name(e.b);
    auto link = group_ != nullptr
                    ? std::make_unique<net::Link>(
                          *group_, shard_of_switch(e.a), shard_of_switch(e.b),
                          config_.link, trunk_name)
                    : std::make_unique<net::Link>(home, config_.link,
                                                  trunk_name);
    switches_[static_cast<std::size_t>(e.a)]->connect(e.a_port, *link, 0);
    switches_[static_cast<std::size_t>(e.b)]->connect(e.b_port, *link, 1);
    if (!e.on_flood_tree) {
      switches_[static_cast<std::size_t>(e.a)]->set_flood_enabled(e.a_port,
                                                                  false);
      switches_[static_cast<std::size_t>(e.b)]->set_flood_enabled(e.b_port,
                                                                  false);
    }
    trunk_links_.push_back(std::move(link));
  }

  // Static multi-hop routes: every switch knows the egress port for every
  // remote NIC before the first frame flows, so a cold 1024-node fabric
  // pays zero unknown-unicast flooding (local NICs were learned above).
  for (int s = 0; s < plan.switches(); ++s) {
    for (int n = 0; n < config_.nodes; ++n) {
      const int out = plan.route(s, n);
      if (out < 0) continue;
      for (int j = 0; j < config_.nics_per_node; ++j) {
        switches_[static_cast<std::size_t>(s)]->learn(mac_of(n, j), out);
      }
    }
  }
}

void Cluster::set_mtu_all(std::int64_t mtu) {
  for (auto& n : nodes_) {
    for (int j = 0; j < n->nic_count(); ++j) n->nic(j).set_mtu(mtu);
  }
}

void Cluster::set_coalescing_all(sim::SimTime usecs, int frames) {
  for (auto& n : nodes_) {
    for (int j = 0; j < n->nic_count(); ++j) {
      n->nic(j).set_coalescing(usecs, frames);
    }
  }
}

}  // namespace clicsim::os
