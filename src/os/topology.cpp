#include "os/topology.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace clicsim::os {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("TopologySpec: " + what);
}

// ~32 nodes per node-bearing switch, at least 2 switches, never more
// switches than nodes.
int derived_group_count(int nodes) {
  const int by_size = (nodes + 31) / 32;
  const int want = by_size < 2 ? 2 : by_size;
  return want > nodes ? nodes : want;
}

}  // namespace

int TopologySpec::switch_count(int nodes) const {
  switch (kind) {
    case TopologyKind::kSingleStar:
      return 1;
    case TopologyKind::kSwitchRing:
      return leaves > 0 ? leaves : derived_group_count(nodes);
    case TopologyKind::kLeafSpine: {
      const int l = leaves > 0 ? leaves : derived_group_count(nodes);
      return l + (spines > 0 ? spines : 1);
    }
    case TopologyKind::kFatTree2: {
      const int l = leaves > 0 ? leaves : derived_group_count(nodes);
      // Full bisection: one uplink per leaf downlink → spines = the
      // largest per-leaf node count.
      const int per_leaf = (nodes + l - 1) / l;
      return l + (spines > 0 ? spines : per_leaf);
    }
  }
  return 1;
}

TopologyPlan TopologyPlan::resolve(const TopologySpec& spec, int nodes,
                                   int nics_per_node) {
  if (nodes < 1) fail("cluster needs >= 1 node");
  if (nics_per_node < 1) fail("cluster needs >= 1 NIC per node");

  TopologyPlan plan;
  plan.kind_ = spec.kind;
  plan.nodes_ = nodes;
  plan.nics_per_node_ = nics_per_node;

  if (spec.kind == TopologyKind::kSingleStar) {
    plan.leaves_ = 1;
    plan.spines_ = 0;
    if (spec.leaves > 1 || spec.spines > 0) {
      fail("single-star takes no leaf/spine counts");
    }
  } else {
    plan.leaves_ = spec.leaves > 0 ? spec.leaves : derived_group_count(nodes);
    if (plan.leaves_ > nodes) {
      std::ostringstream msg;
      msg << "more node-bearing switches (" << plan.leaves_
          << ") than nodes (" << nodes << ") — every switch needs a node";
      fail(msg.str());
    }
    switch (spec.kind) {
      case TopologyKind::kSwitchRing:
        if (spec.spines > 0) fail("a switch ring has no spines");
        if (plan.leaves_ < 2) fail("switch ring needs >= 2 switches");
        plan.spines_ = 0;
        break;
      case TopologyKind::kLeafSpine:
        plan.spines_ = spec.spines > 0 ? spec.spines : 1;
        break;
      case TopologyKind::kFatTree2: {
        const int per_leaf = (nodes + plan.leaves_ - 1) / plan.leaves_;
        if (spec.spines > 0 && spec.spines != per_leaf) {
          std::ostringstream msg;
          msg << "2-level fat-tree with " << plan.leaves_
              << " leaves over " << nodes << " nodes needs exactly "
              << per_leaf << " spines for full bisection, got "
              << spec.spines;
          fail(msg.str());
        }
        plan.spines_ = per_leaf;
        break;
      }
      case TopologyKind::kSingleStar:
        break;  // unreachable
    }
  }

  plan.place_nodes();
  switch (plan.kind_) {
    case TopologyKind::kSingleStar:
      plan.ports_ = {nodes * nics_per_node};
      break;
    case TopologyKind::kLeafSpine:
    case TopologyKind::kFatTree2:
      plan.wire_leaf_spine();
      break;
    case TopologyKind::kSwitchRing:
      plan.wire_ring();
      break;
  }
  plan.compute_routes();

  plan.check_ports(spec.max_switch_ports);
  plan.check_flood_tree();
  plan.check_reachability();
  return plan;
}

void TopologyPlan::place_nodes() {
  node_leaf_.resize(static_cast<std::size_t>(nodes_));
  local_index_.resize(static_cast<std::size_t>(nodes_));
  leaf_nodes_.assign(static_cast<std::size_t>(leaves_), 0);
  for (int i = 0; i < nodes_; ++i) {
    // Contiguous blocks, monotone in node id — the same mapping rule the
    // shard placement uses, so a leaf's node group is one shard's nodes.
    const int leaf = static_cast<int>(
        (static_cast<std::int64_t>(i) * leaves_) / nodes_);
    node_leaf_[static_cast<std::size_t>(i)] = leaf;
    local_index_[static_cast<std::size_t>(i)] =
        leaf_nodes_[static_cast<std::size_t>(leaf)]++;
  }
}

void TopologyPlan::wire_leaf_spine() {
  ports_.assign(static_cast<std::size_t>(switches()), 0);
  for (int l = 0; l < leaves_; ++l) {
    ports_[static_cast<std::size_t>(l)] =
        nodes_on(l) * nics_per_node_ + spines_;
  }
  for (int s = 0; s < spines_; ++s) {
    ports_[static_cast<std::size_t>(leaves_ + s)] = leaves_;
  }
  // Every leaf uplinks to every spine; only the spine-0 star is on the
  // flood tree (it alone spans all leaves without a cycle).
  for (int l = 0; l < leaves_; ++l) {
    const int uplink_base = nodes_on(l) * nics_per_node_;
    for (int s = 0; s < spines_; ++s) {
      trunks_.push_back(TrunkEdge{l, uplink_base + s, leaves_ + s, l,
                                  /*on_flood_tree=*/s == 0});
    }
  }
}

void TopologyPlan::wire_ring() {
  ports_.assign(static_cast<std::size_t>(leaves_), 0);
  for (int r = 0; r < leaves_; ++r) {
    // Two trunk ports per ring member: base+0 toward next, base+1 from prev.
    ports_[static_cast<std::size_t>(r)] = nodes_on(r) * nics_per_node_ + 2;
  }
  for (int r = 0; r < leaves_; ++r) {
    const int next = (r + 1) % leaves_;
    const int a_port = nodes_on(r) * nics_per_node_ + 0;
    const int b_port = nodes_on(next) * nics_per_node_ + 1;
    // Breaking the wrap-around edge out of the flood tree turns the ring
    // into a line for floods (exactly-once delivery, no circulating storm).
    trunks_.push_back(
        TrunkEdge{r, a_port, next, b_port, /*on_flood_tree=*/r != leaves_ - 1});
  }
}

void TopologyPlan::compute_routes() {
  routes_.assign(
      static_cast<std::size_t>(switches()) * static_cast<std::size_t>(nodes_),
      -1);
  if (single_star()) return;
  auto route_ref = [this](int s, int node) -> int& {
    return routes_[static_cast<std::size_t>(s) *
                       static_cast<std::size_t>(nodes_) +
                   static_cast<std::size_t>(node)];
  };
  for (int n = 0; n < nodes_; ++n) {
    const int home = leaf_of_node(n);
    if (kind_ == TopologyKind::kSwitchRing) {
      for (int r = 0; r < leaves_; ++r) {
        if (r == home) continue;
        // Shortest direction; every member routes monotonically toward the
        // owner, so per-destination paths cannot loop even though the ring
        // itself has a cycle.
        const int d = (home - r + leaves_) % leaves_;
        const int trunk_base = nodes_on(r) * nics_per_node_;
        route_ref(r, n) = d <= leaves_ / 2 ? trunk_base : trunk_base + 1;
      }
    } else {
      // Per-destination spine spread: every leaf sends node n's traffic via
      // spine n % spines, so the two-hop leaf→spine→leaf path is unique per
      // destination (loop-free) and destinations stripe across spines.
      const int via = n % spines_;
      for (int l = 0; l < leaves_; ++l) {
        if (l == home) continue;
        route_ref(l, n) = nodes_on(l) * nics_per_node_ + via;
      }
      for (int s = 0; s < spines_; ++s) {
        route_ref(leaves_ + s, n) = home;
      }
    }
  }
}

void TopologyPlan::check_ports(int limit) const {
  if (limit <= 0) return;
  for (int s = 0; s < switches(); ++s) {
    if (ports_of(s) > limit) {
      std::ostringstream msg;
      msg << switch_name(s) << " needs " << ports_of(s) << " ports ("
          << (s < leaves_ ? nodes_on(s) * nics_per_node_ : 0)
          << " node-facing + "
          << ports_of(s) -
                 (s < leaves_ ? nodes_on(s) * nics_per_node_ : 0)
          << " trunk) but max_switch_ports = " << limit
          << "; add switches or raise the budget";
      fail(msg.str());
    }
  }
}

// The flood-enabled trunk edges must form a forest (no cycle — a flooded
// frame would otherwise circulate forever) that connects every node-bearing
// switch (otherwise some broadcast receivers are unreachable).
void TopologyPlan::check_flood_tree() const {
  std::vector<int> parent(static_cast<std::size_t>(switches()));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (const TrunkEdge& e : trunks_) {
    if (!e.on_flood_tree) continue;
    const int ra = find(e.a);
    const int rb = find(e.b);
    if (ra == rb) {
      std::ostringstream msg;
      msg << "flood-tree cycle through trunk " << switch_name(e.a) << " port "
          << e.a_port << " <-> " << switch_name(e.b) << " port " << e.b_port
          << "; a broadcast would circulate forever";
      fail(msg.str());
    }
    parent[static_cast<std::size_t>(ra)] = rb;
  }
  const int root = find(0);
  for (int l = 1; l < leaves_; ++l) {
    if (find(l) != root) {
      std::ostringstream msg;
      msg << "flood tree does not connect " << switch_name(l)
          << " to " << switch_name(0)
          << "; broadcasts would never reach its nodes";
      fail(msg.str());
    }
  }
}

// Self-check: walk every (switch, node) static route to the owning leaf.
// Guards the route/wiring tables against drift — a broken entry here means
// a 1024-node run would silently fall back to unknown-unicast flooding.
void TopologyPlan::check_reachability() const {
  for (int s = 0; s < switches(); ++s) {
    for (int n = 0; n < nodes_; ++n) {
      int cur = s;
      int hops = 0;
      while (route(cur, n) != -1) {
        const int out = route(cur, n);
        int next = -1;
        for (const TrunkEdge& e : trunks_) {
          if (e.a == cur && e.a_port == out) next = e.b;
          if (e.b == cur && e.b_port == out) next = e.a;
        }
        if (next < 0) {
          std::ostringstream msg;
          msg << "route from " << switch_name(cur) << " to node " << n
              << " exits port " << out << " which carries no trunk";
          fail(msg.str());
        }
        cur = next;
        if (++hops > switches()) {
          std::ostringstream msg;
          msg << "route from " << switch_name(s) << " to node " << n
              << " loops";
          fail(msg.str());
        }
      }
      if (cur >= leaves_ || leaf_of_node(n) != cur) {
        std::ostringstream msg;
        msg << "route from " << switch_name(s) << " to node " << n
            << " terminates at " << switch_name(cur)
            << " which does not own the node";
        fail(msg.str());
      }
    }
  }
}

std::string TopologyPlan::switch_name(int s) const {
  if (single_star()) return "switch0";
  if (kind_ == TopologyKind::kSwitchRing) return "ring" + std::to_string(s);
  if (s < leaves_) return "leaf" + std::to_string(s);
  return "spine" + std::to_string(s - leaves_);
}

}  // namespace clicsim::os
