// The NIC device driver.
//
// CLIC's defining constraint is that drivers are NOT modified: the driver
// here exposes exactly the stock interface (hard_start_xmit on transmit, a
// protocol-handler registry a la dev_add_pack on receive, an RX ISR that
// drains the ring into sk_buffs and defers to bottom halves). Protocols
// (CLIC, the TCP/IP stack, GAMMA) sit on top of this interface.
//
// The Figure 8b "direct dispatch" improvement — the driver calling the
// protocol module straight from the ISR, skipping sk_buff creation and the
// bottom-half hop — is available behind set_direct_dispatch(true); it is the
// one experiment that *does* modify the driver, exactly as the paper frames
// it (a projected improvement, Fig. 7b).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "hw/interrupt.hpp"
#include "hw/nic.hpp"
#include "os/kernel.hpp"
#include "os/skbuff.hpp"
#include "sim/inline_function.hpp"
#include "sim/ring_queue.hpp"

namespace clicsim::os {

// Upper protocol entry point. `from_isr` distinguishes the direct-dispatch
// path (handler work must be charged at interrupt priority) from the normal
// bottom-half path (softirq priority).
class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;
  virtual void packet_received(net::Frame frame, bool from_isr) = 0;
};

class Driver {
 public:
  Driver(sim::Simulator& sim, Kernel& kernel, hw::Nic& nic,
         hw::InterruptController& intc);

  // Registers the handler for an ethertype (dev_add_pack equivalent).
  void add_protocol(std::uint16_t ethertype, ProtocolHandler* handler);

  // Transmit without internal queueing: returns false when the card's ring
  // is full — the caller decides what to do (CLIC stages the data in system
  // memory; see section 3.1). `on_done` fires when the descriptor completes
  // and the skb's memory is reusable.
  bool try_xmit(SkBuff skb, sim::Action on_done = {});

  // Transmit with driver-level queueing (the qdisc path TCP/IP uses):
  // always accepts, retries queued skbs as descriptors complete.
  void xmit_or_queue(SkBuff skb, sim::Action on_done = {});

  void set_direct_dispatch(bool enabled) { direct_dispatch_ = enabled; }
  [[nodiscard]] bool direct_dispatch() const { return direct_dispatch_; }

  [[nodiscard]] hw::Nic& nic() { return *nic_; }
  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t rx_packets() const { return rx_packets_; }
  [[nodiscard]] std::uint64_t rx_no_handler() const { return rx_no_handler_; }
  [[nodiscard]] std::size_t tx_queue_depth() const { return tx_queue_.size(); }

 private:
  void rx_isr();
  void drain_one();
  void kick_tx_queue();
  bool post(SkBuff&& skb, sim::Action on_done);

  sim::Simulator* sim_;
  Kernel* kernel_;
  hw::Nic* nic_;
  hw::InterruptController* intc_;
  std::unordered_map<std::uint16_t, ProtocolHandler*> protocols_;
  bool direct_dispatch_ = false;

  // Queued skbs ride in recycled ring slots (the sk_buff freelist): the
  // qdisc path allocates nothing per frame once the ring has grown.
  struct PendingTx {
    SkBuff skb;
    sim::Action on_done;
  };
  sim::RingQueue<PendingTx> tx_queue_;

  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_no_handler_ = 0;
};

}  // namespace clicsim::os
