#include "os/driver.hpp"

#include <stdexcept>
#include <utility>

namespace clicsim::os {

Driver::Driver(sim::Simulator& sim, Kernel& kernel, hw::Nic& nic,
               hw::InterruptController& intc)
    : sim_(&sim), kernel_(&kernel), nic_(&nic), intc_(&intc) {
  intc_->register_handler(nic_->irq(), [this] { rx_isr(); });
}

void Driver::add_protocol(std::uint16_t ethertype, ProtocolHandler* handler) {
  protocols_[ethertype] = handler;
}

bool Driver::post(SkBuff&& skb, sim::Action on_done) {
  if (nic_->tx_ring_full()) return false;
  hw::Nic::TxRequest req;
  req.sg_fragments = skb.sg_fragments;
  req.frame = std::move(skb).to_frame();
  req.on_descriptor_done = [this, on_done = std::move(on_done)]() mutable {
    if (on_done) on_done();
    kick_tx_queue();
  };
  const bool accepted = nic_->post_tx(std::move(req));
  if (!accepted) {
    throw std::logic_error("Driver::post: ring filled despite space check");
  }
  ++tx_packets_;
  return true;
}

bool Driver::try_xmit(SkBuff skb, sim::Action on_done) {
  return post(std::move(skb), std::move(on_done));
}

void Driver::xmit_or_queue(SkBuff skb, sim::Action on_done) {
  if (!tx_queue_.empty() || nic_->tx_ring_full()) {
    tx_queue_.push_back(PendingTx{std::move(skb), std::move(on_done)});
    return;
  }
  post(std::move(skb), std::move(on_done));
}

void Driver::kick_tx_queue() {
  while (!tx_queue_.empty() && !nic_->tx_ring_full()) {
    auto front = std::move(tx_queue_.front());
    tx_queue_.pop_front();
    post(std::move(front.skb), std::move(front.on_done));
  }
}

void Driver::rx_isr() {
  // Entered at interrupt priority (entry cost already charged by the
  // controller). Drain every frame the card has made host-visible.
  drain_one();
}

void Driver::drain_one() {
  auto frame = nic_->rx_pop();
  if (!frame.has_value()) {
    intc_->eoi(nic_->irq());
    return;
  }
  ++rx_packets_;

  auto it = protocols_.find(frame->ethertype);
  ProtocolHandler* handler =
      it == protocols_.end() ? nullptr : it->second;
  if (handler == nullptr) ++rx_no_handler_;

  const auto& p = kernel_->cpu().params();
  if (direct_dispatch_ && handler != nullptr) {
    // Fig. 8b: no sk_buff, no bottom half — the module is called from the
    // ISR and copies straight towards user memory.
    kernel_->cpu().run(
        sim::CpuPriority::kInterrupt, p.isr_per_frame_direct,
        [this, handler, f = std::move(*frame)]() mutable {
          handler->packet_received(std::move(f), /*from_isr=*/true);
          drain_one();
        });
    return;
  }

  // Stock path: per-frame driver work + sk_buff allocation at interrupt
  // priority, then hand the packet to the protocol via a bottom half.
  kernel_->cpu().run(
      sim::CpuPriority::kInterrupt, p.isr_per_frame + p.skbuff_alloc,
      [this, handler, f = std::move(*frame)]() mutable {
        if (handler != nullptr) {
          kernel_->queue_bottom_half(
              [handler, f = std::move(f)]() mutable {
                handler->packet_received(std::move(f), /*from_isr=*/false);
              });
        }
        drain_one();
      });
}

}  // namespace clicsim::os
