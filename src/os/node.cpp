#include "os/node.hpp"

#include <utility>

namespace clicsim::os {

Node::Node(sim::Simulator& sim, int id, hw::HostParams host,
           hw::PciParams pci, std::string name)
    : sim_(&sim),
      id_(id),
      name_(std::move(name)),
      cpu_(sim, host, name_ + ".cpu"),
      mem_(sim, host, name_ + ".mem"),
      pci_(sim, pci, name_ + ".pci"),
      intc_(sim, cpu_),
      kernel_(sim, cpu_) {}

namespace {
// Copy chunk granularity: ~46 us of CPU at the default copy rate, short
// enough that interrupt work never waits long behind a copy.
constexpr std::int64_t kCopyChunkBytes = 16 * 1024;
}  // namespace

void Node::copy_data(sim::CpuPriority prio, std::int64_t bytes,
                     std::function<void()> done) {
  const std::int64_t chunk = std::min(bytes, kCopyChunkBytes);
  if (bytes <= 0) {
    cpu_.run(prio, 0, std::move(done));
    return;
  }
  mem_.copy_pressure(chunk);
  cpu_.run(prio, cpu_.copy_cost(chunk),
           [this, prio, rest = bytes - chunk, done = std::move(done)]() mutable {
             if (rest > 0) {
               copy_data(prio, rest, std::move(done));
             } else if (done) {
               done();
             }
           });
}

int Node::add_nic(hw::NicProfile profile, net::MacAddr mac) {
  const int index = nic_count();
  const int irq = 9 + index;  // PCI INTA.. lines, one per card
  auto nic = std::make_unique<hw::Nic>(*sim_, std::move(profile), pci_, mem_,
                                       intc_, irq, mac,
                                       name_ + ".eth" + std::to_string(index));
  auto driver = std::make_unique<Driver>(*sim_, kernel_, *nic, intc_);
  nics_.push_back(std::move(nic));
  drivers_.push_back(std::move(driver));
  return index;
}

}  // namespace clicsim::os
