// Mini-PVM: the second TCP/IP-hosted baseline of Figure 6.
//
// What makes PVM slower than MPI on the same TCP transport is modelled
// explicitly:
//  * typed pack/unpack buffers — every payload byte is copied into the
//    send buffer before transmission and out of the receive buffer after
//    (two extra copies MPI avoids for contiguous data);
//  * daemon-mediated default routing — messages hop through the pvmd on
//    each host (extra latency plus CPU per message) unless the task
//    requests PvmRouteDirect;
//  * per-call bookkeeping overheads.
//
// Tasks are identified by tid == rank on the underlying transport mesh.
#pragma once

#include <cstdint>
#include <memory>

#include "mpi/comm.hpp"
#include "mpi/transport.hpp"

namespace clicsim::pvm {

struct Config {
  sim::SimTime pack_overhead = sim::microseconds(1.0);    // per pack call
  sim::SimTime unpack_overhead = sim::microseconds(1.0);  // per unpack call
  sim::SimTime send_overhead = sim::microseconds(3.0);    // pvm_send body
  bool direct_route = false;  // PvmRouteDirect skips the daemons
  sim::SimTime daemon_latency = sim::microseconds(20.0);  // per pvmd hop
};

struct PvmMessage {
  int src_tid = -1;
  int tag = 0;
  net::Buffer data;
};

class PvmTask {
 public:
  // `transport` must already be mesh-connected.
  PvmTask(mpi::TcpTransport& transport, Config config = {});

  [[nodiscard]] int tid() const { return comm_.rank(); }
  [[nodiscard]] int ntasks() const { return comm_.size(); }

  // pvm_initsend: resets the active send buffer.
  void initsend();

  // pvm_pk*: copies `data` into the send buffer (charged).
  [[nodiscard]] sim::Future<bool> pack(net::Buffer data);

  // pvm_send: transmits the packed buffer to `dst_tid` with `tag`.
  [[nodiscard]] sim::Future<bool> send(int dst_tid, int tag);

  // pvm_recv: blocks for a matching message (-1 wildcards).
  [[nodiscard]] sim::Future<PvmMessage> recv(int src_tid = -1, int tag = -1);

  // pvm_upk*: copies `bytes` out of a received buffer (charged); returns
  // the slice.
  [[nodiscard]] sim::Future<net::Buffer> unpack(PvmMessage& message,
                                                std::int64_t bytes);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }

 private:
  sim::Task send_task(int dst_tid, int tag, net::Buffer payload,
                      sim::Future<bool> done);
  sim::Task recv_task(int src_tid, int tag, sim::Future<PvmMessage> done);

  mpi::Communicator comm_;
  Config config_;
  net::BufferChain send_buffer_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace clicsim::pvm
