#include "pvm/pvm.hpp"

#include <algorithm>
#include <utility>

namespace clicsim::pvm {

PvmTask::PvmTask(mpi::TcpTransport& transport, Config config)
    : comm_(transport, mpi::Config{
                           // PVM fragments large messages itself but has no
                           // rendezvous mode; everything ships eagerly.
                           .eager_threshold = INT64_MAX,
                           .match_cost = sim::nanoseconds(800),
                           .reduce_ns_per_byte = 1.0,
                       }),
      config_(config) {}

void PvmTask::initsend() { send_buffer_.clear(); }

sim::Future<bool> PvmTask::pack(net::Buffer data) {
  sim::Future<bool> done(comm_.transport().sim());
  auto& node = comm_.transport().node();
  const std::int64_t bytes = data.size();
  send_buffer_.append(std::move(data));
  node.cpu().run(sim::CpuPriority::kUser, config_.pack_overhead);
  // The defining PVM cost: data is copied into the pack buffer.
  node.copy_data(sim::CpuPriority::kUser, bytes,
                 [done]() mutable { done.set(true); });
  return done;
}

sim::Future<bool> PvmTask::send(int dst_tid, int tag) {
  sim::Future<bool> done(comm_.transport().sim());
  net::Buffer payload = send_buffer_.flatten();
  send_buffer_.clear();
  send_task(dst_tid, tag, std::move(payload), done);
  return done;
}

sim::Task PvmTask::send_task(int dst_tid, int tag, net::Buffer payload,
                             sim::Future<bool> done) {
  ++sent_;
  auto& node = comm_.transport().node();
  node.cpu().run(sim::CpuPriority::kUser, config_.send_overhead);

  if (!config_.direct_route) {
    // Default route: the message first hops through the local pvmd (a
    // separate process: context switch + a copy into the daemon), and the
    // remote pvmd relays it to the destination task. The hops are charged
    // as latency plus copy pressure at the sender; the receiving side's
    // daemon copy is charged in recv_task.
    sim::Future<bool> staged(comm_.transport().sim());
    node.copy_data(sim::CpuPriority::kUser, payload.size(),
                   [staged]() mutable { staged.set(true); });
    (void)co_await staged;
    co_await sim::Delay{comm_.transport().sim(), config_.daemon_latency};
  }

  (void)co_await comm_.send(dst_tid, tag, std::move(payload));
  done.set(true);
}

sim::Future<PvmMessage> PvmTask::recv(int src_tid, int tag) {
  sim::Future<PvmMessage> done(comm_.transport().sim());
  recv_task(src_tid, tag, done);
  return done;
}

sim::Task PvmTask::recv_task(int src_tid, int tag,
                             sim::Future<PvmMessage> done) {
  mpi::RecvResult r = co_await comm_.recv(
      src_tid < 0 ? mpi::kAnySource : src_tid,
      tag < 0 ? mpi::kAnyTag : tag);
  ++received_;

  if (!config_.direct_route) {
    // Remote pvmd relay: one more hop and copy before the task sees it.
    auto& node = comm_.transport().node();
    sim::Future<bool> relayed(comm_.transport().sim());
    node.copy_data(sim::CpuPriority::kUser, r.data.size(),
                   [relayed]() mutable { relayed.set(true); });
    (void)co_await relayed;
    co_await sim::Delay{comm_.transport().sim(), config_.daemon_latency};
  }

  PvmMessage m;
  m.src_tid = r.src;
  m.tag = r.tag;
  m.data = std::move(r.data);
  done.set(std::move(m));
}

sim::Future<net::Buffer> PvmTask::unpack(PvmMessage& message,
                                         std::int64_t bytes) {
  sim::Future<net::Buffer> done(comm_.transport().sim());
  auto& node = comm_.transport().node();
  node.cpu().run(sim::CpuPriority::kUser, config_.unpack_overhead);
  const std::int64_t take = std::min(bytes, message.data.size());
  net::Buffer out = take > 0 ? message.data.slice(0, take)
                             : net::Buffer::zeros(0);
  message.data = message.data.slice(take, message.data.size() - take);
  node.copy_data(sim::CpuPriority::kUser, take,
                 [done, out = std::move(out)]() mutable {
                   done.set(std::move(out));
                 });
  return done;
}

}  // namespace clicsim::pvm
