#include "net/frame.hpp"

#include <algorithm>
#include <cstdio>

namespace clicsim::net {

MacAddr MacAddr::node(std::uint32_t id) {
  // 02:xx:xx:xx:xx:xx — locally administered, unicast.
  return MacAddr{{0x02, 0x00,
                  static_cast<std::uint8_t>(id >> 24),
                  static_cast<std::uint8_t>(id >> 16),
                  static_cast<std::uint8_t>(id >> 8),
                  static_cast<std::uint8_t>(id)}};
}

MacAddr MacAddr::broadcast() {
  return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
}

MacAddr MacAddr::multicast(std::uint32_t id) {
  return MacAddr{{0x01, 0x00,
                  static_cast<std::uint8_t>(id >> 24),
                  static_cast<std::uint8_t>(id >> 16),
                  static_cast<std::uint8_t>(id >> 8),
                  static_cast<std::uint8_t>(id)}};
}

bool MacAddr::is_broadcast() const {
  return std::all_of(octets.begin(), octets.end(),
                     [](std::uint8_t o) { return o == 0xff; });
}

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

std::int64_t Frame::frame_bytes() const {
  const std::int64_t payload = std::max(payload_bytes(), kEthMinPayload);
  return kEthHeaderBytes + payload + kEthFcsBytes;
}

}  // namespace clicsim::net
