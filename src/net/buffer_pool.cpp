#include "net/buffer_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>

namespace clicsim::net {

namespace {

// Thread-current pool: installed by BufferPool::Scope while a simulation
// (or test fixture) owns the thread. Per-thread by design — parallel sweep
// workers each drive their own simulation and therefore their own pool.
thread_local BufferPool* tls_current_pool = nullptr;

// Pooling override: -1 follows the environment, 0 forced off, 1 forced on.
std::atomic<int> pooling_override{-1};

// Payload-copy accounting (see buffer_pool.hpp): minted from any thread.
std::atomic<std::uint64_t> unpooled_data_mints{0};
std::atomic<std::uint64_t> shared_data_mint_count{0};

bool env_pooling_enabled() {
  static const bool enabled = std::getenv("CLICSIM_NO_POOL") == nullptr;
  return enabled;
}

template <typename Rec>
void live_link(Rec** head, Rec* rec) noexcept {
  rec->live_prev = nullptr;
  rec->live_next = *head;
  if (*head != nullptr) (*head)->live_prev = rec;
  *head = rec;
}

template <typename Rec>
void live_unlink(Rec** head, Rec* rec) noexcept {
  if (rec->live_prev != nullptr) {
    rec->live_prev->live_next = rec->live_next;
  } else {
    *head = rec->live_next;
  }
  if (rec->live_next != nullptr) rec->live_next->live_prev = rec->live_prev;
  rec->live_prev = nullptr;
  rec->live_next = nullptr;
}

std::size_t class_bytes(int size_class) noexcept {
  return std::size_t{64} << size_class;
}

void destroy_header_payload(detail::HeaderRec* rec) noexcept {
  if (rec->destroy != nullptr) {
    rec->destroy(rec->payload());
    rec->destroy = nullptr;
  }
  rec->clone = nullptr;
  rec->type = nullptr;
}

void delete_header_rec(detail::HeaderRec* rec) noexcept {
  rec->~HeaderRec();
  ::operator delete(rec, std::align_val_t{alignof(detail::HeaderRec)});
}

detail::HeaderRec* new_header_rec(std::size_t capacity) {
  void* raw = ::operator new(sizeof(detail::HeaderRec) + capacity,
                             std::align_val_t{alignof(detail::HeaderRec)});
  return new (raw) detail::HeaderRec;
}

}  // namespace

// --- Class mapping ----------------------------------------------------------

int BufferPool::data_class_of(std::int64_t size) noexcept {
  int c = 0;
  auto bytes = static_cast<std::uint64_t>(size < 0 ? 0 : size);
  while (c < kDataClasses - 1 && class_bytes(c) < bytes) ++c;
  return c;
}

int BufferPool::header_class_of(std::size_t size) noexcept {
  for (int c = 0; c < kHeaderClasses; ++c) {
    if (class_bytes(c) >= size) return c;
  }
  return kHeaderClasses;  // oversized: unpooled
}

// --- Data blocks ------------------------------------------------------------

detail::DataBlock* BufferPool::get_data(std::int64_t size) {
  const int c = data_class_of(size);
  detail::DataBlock* b;
  if (!data_free_[c].empty()) {
    b = data_free_[c].back();
    data_free_[c].pop_back();
    ++data_reuses_;
  } else {
    b = new detail::DataBlock;
    b->size_class = static_cast<std::uint8_t>(c);
    b->bytes.reserve(class_bytes(c));
    ++data_heap_allocs_;
  }
  b->bytes.resize(static_cast<std::size_t>(size));
  b->pool = this;
  b->refs = 1;
  live_link(&live_data_, b);
  track_acquire();
  return b;
}

detail::DataBlock* BufferPool::adopt_data(std::vector<std::byte> bytes) {
  auto* b = new detail::DataBlock;
  // Class by capacity, rounded down, so the block honours the freelist
  // promise (capacity >= class bytes) once it is recycled.
  int c = 0;
  while (c + 1 < kDataClasses && class_bytes(c + 1) <= bytes.capacity()) ++c;
  b->size_class = static_cast<std::uint8_t>(c);
  b->bytes = std::move(bytes);
  b->pool = this;
  b->refs = 1;
  ++data_heap_allocs_;
  live_link(&live_data_, b);
  track_acquire();
  return b;
}

void BufferPool::put_data(detail::DataBlock* block) noexcept {
  live_unlink(&live_data_, block);
  --outstanding_;
  auto& freelist = data_free_[block->size_class];
  if (freelist.size() >= kMaxParkedPerClass) {
    delete block;
    return;
  }
  block->pool = nullptr;
  freelist.push_back(block);
}

// --- Header records ---------------------------------------------------------

detail::HeaderRec* BufferPool::get_header(std::size_t payload_bytes) {
  const int c = header_class_of(payload_bytes);
  if (c >= kHeaderClasses) {
    // Oversized header: plain heap, not tracked (none exist in practice).
    auto* rec = new_header_rec(payload_bytes);
    rec->size_class = static_cast<std::uint8_t>(kHeaderClasses);
    rec->refs = 1;
    return rec;
  }
  detail::HeaderRec* rec;
  if (!header_free_[c].empty()) {
    rec = header_free_[c].back();
    header_free_[c].pop_back();
    ++header_reuses_;
  } else {
    rec = new_header_rec(class_bytes(c));
    rec->size_class = static_cast<std::uint8_t>(c);
    ++header_heap_allocs_;
  }
  rec->pool = this;
  rec->refs = 1;
  live_link(&live_headers_, rec);
  track_acquire();
  return rec;
}

void BufferPool::put_header(detail::HeaderRec* rec) noexcept {
  live_unlink(&live_headers_, rec);
  --outstanding_;
  auto& freelist = header_free_[rec->size_class];
  if (freelist.size() >= kMaxParkedPerClass) {
    delete_header_rec(rec);
    return;
  }
  rec->pool = nullptr;
  freelist.push_back(rec);
}

// --- Mint / release entry points --------------------------------------------

namespace detail {

DataBlock* acquire_data_block(std::int64_t size) {
  if (BufferPool* pool = BufferPool::current()) return pool->get_data(size);
  auto* b = new DataBlock;
  b->bytes.resize(static_cast<std::size_t>(size));
  b->refs = 1;
  return b;
}

DataBlock* adopt_data_block(std::vector<std::byte> bytes) {
  if (BufferPool* pool = BufferPool::current()) {
    return pool->adopt_data(std::move(bytes));
  }
  auto* b = new DataBlock;
  b->bytes = std::move(bytes);
  b->refs = 1;
  return b;
}

HeaderRec* acquire_header_rec(std::size_t payload_bytes) {
  if (BufferPool* pool = BufferPool::current()) {
    return pool->get_header(payload_bytes);
  }
  auto* rec = new_header_rec(payload_bytes);
  rec->size_class =
      static_cast<std::uint8_t>(BufferPool::header_class_of(payload_bytes));
  rec->refs = 1;
  return rec;
}

DataBlock* acquire_data_block_unpooled(std::int64_t size) {
  auto* b = new DataBlock;
  b->bytes.resize(static_cast<std::size_t>(size));
  b->refs = 1;
  unpooled_data_mints.fetch_add(1, std::memory_order_relaxed);
  return b;
}

DataBlock* acquire_data_block_shared(std::int64_t size) {
  auto* b = new DataBlock;
  b->bytes.resize(static_cast<std::size_t>(size));
  b->shared = true;
  b->shared_refs.store(1, std::memory_order_relaxed);
  shared_data_mint_count.fetch_add(1, std::memory_order_relaxed);
  return b;
}

std::uint64_t unpooled_data_copies() noexcept {
  return unpooled_data_mints.load(std::memory_order_relaxed);
}

std::uint64_t shared_data_mints() noexcept {
  return shared_data_mint_count.load(std::memory_order_relaxed);
}

HeaderRec* acquire_header_rec_unpooled(std::size_t payload_bytes) {
  auto* rec = new_header_rec(payload_bytes);
  rec->size_class =
      static_cast<std::uint8_t>(BufferPool::header_class_of(payload_bytes));
  rec->refs = 1;
  return rec;
}

void free_data_block(DataBlock* block) noexcept {
  if (block->pool != nullptr) {
    block->pool->put_data(block);
  } else {
    delete block;
  }
}

void free_header_rec(HeaderRec* rec) noexcept {
  // The payload may itself hold Buffers/HeaderBlobs (e.g. a WireHeader's
  // upper blob): destroy it first so nested releases happen while the
  // record is still considered live.
  destroy_header_payload(rec);
  if (rec->pool != nullptr) {
    rec->pool->put_header(rec);
  } else {
    delete_header_rec(rec);
  }
}

}  // namespace detail

// --- Pool lifecycle ---------------------------------------------------------

BufferPool::~BufferPool() {
  // Orphan any still-live blocks (a Buffer outliving its simulation): their
  // final release then frees to the heap instead of touching this pool.
  for (detail::DataBlock* b = live_data_; b != nullptr;) {
    detail::DataBlock* next = b->live_next;
    b->pool = nullptr;
    b->live_prev = nullptr;
    b->live_next = nullptr;
    b = next;
  }
  for (detail::HeaderRec* r = live_headers_; r != nullptr;) {
    detail::HeaderRec* next = r->live_next;
    r->pool = nullptr;
    r->live_prev = nullptr;
    r->live_next = nullptr;
    r = next;
  }
  for (auto& freelist : data_free_) {
    for (detail::DataBlock* b : freelist) delete b;
  }
  for (auto& freelist : header_free_) {
    for (detail::HeaderRec* r : freelist) delete_header_rec(r);
  }
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.data_heap_allocs = data_heap_allocs_;
  s.data_reuses = data_reuses_;
  s.header_heap_allocs = header_heap_allocs_;
  s.header_reuses = header_reuses_;
  s.outstanding = outstanding_;
  s.high_water = high_water_;
  for (const auto& freelist : data_free_) {
    s.parked += static_cast<std::int64_t>(freelist.size());
  }
  for (const auto& freelist : header_free_) {
    s.parked += static_cast<std::int64_t>(freelist.size());
  }
  return s;
}

BufferPool* BufferPool::current() noexcept { return tls_current_pool; }

bool BufferPool::pooling_enabled() noexcept {
  const int forced = pooling_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return env_pooling_enabled();
}

void BufferPool::set_pooling_enabled(bool enabled) noexcept {
  pooling_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void BufferPool::clear_pooling_override() noexcept {
  pooling_override.store(-1, std::memory_order_relaxed);
}

BufferPool::Scope::Scope(BufferPool* pool) noexcept
    : prev_(tls_current_pool) {
  tls_current_pool = pooling_enabled() ? pool : nullptr;
}

BufferPool::Scope::~Scope() { tls_current_pool = prev_; }

}  // namespace clicsim::net
