// Full-duplex point-to-point Ethernet link.
//
// Each direction serializes frames at line rate (including preamble/IFG),
// then delivers to the far-end FrameSink after the propagation delay.
// A per-direction FaultInjector supports probabilistic drop/corruption and
// deterministic drop lists (nth-frame) for reproducible loss tests.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "net/frame.hpp"
#include "sim/inline_function.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace clicsim::net {

struct LinkParams {
  double bits_per_s = 1e9;                    // Gigabit Ethernet
  sim::SimTime propagation = sim::nanoseconds(150);  // ~30 m of copper
};

class FaultInjector {
 public:
  enum class Verdict { kDeliver, kDrop, kCorrupt };

  explicit FaultInjector(std::uint64_t seed = 1) : rng_(seed, "link-fault") {}

  void set_drop_probability(double p) { drop_prob_ = p; }
  void set_corrupt_probability(double p) { corrupt_prob_ = p; }
  void set_seed(std::uint64_t seed) { rng_ = sim::Rng(seed, "link-fault"); }

  // Drop exactly the frame with this 0-based send index (repeatable tests).
  void drop_frame_index(std::uint64_t index) { drop_list_.insert(index); }

  Verdict judge();

  [[nodiscard]] std::uint64_t seen() const { return count_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }

 private:
  double drop_prob_ = 0.0;
  double corrupt_prob_ = 0.0;
  sim::Rng rng_;
  std::set<std::uint64_t> drop_list_;
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
};

class Link {
 public:
  Link(sim::Simulator& sim, LinkParams params, std::string name);

  // Attaches the receiver for frames arriving at `end` (0 or 1).
  void attach(int end, FrameSink* sink);

  // The sink currently attached at `end` (taps interpose through this).
  [[nodiscard]] FrameSink* sink(int end) const {
    return sinks_[check_end(end)];
  }

  // Transmits `frame` from `end` toward the other end. `on_serialized`
  // (optional) fires when the frame has left the sender (used by the switch
  // to bound its output queues).
  //
  // `delivery_credit` models cut-through forwarding: the wire stays
  // occupied for the full serialization time, but delivery to the far end
  // is advanced by up to the credit (never before the send could have
  // started).
  void send(int end, Frame frame, sim::Action on_serialized = {},
            sim::SimTime delivery_credit = 0);

  // Serialization time of `frame` at this link's line rate.
  [[nodiscard]] sim::SimTime transmission_time(const Frame& frame) const {
    return sim::transmission_time(frame.wire_bytes(), params_.bits_per_s);
  }

  [[nodiscard]] FaultInjector& faults(int from_end) {
    return directions_[check_end(from_end)].faults;
  }

  [[nodiscard]] std::uint64_t frames_sent(int from_end) const {
    return directions_[from_end].frames;
  }
  [[nodiscard]] std::int64_t bytes_sent(int from_end) const {
    return directions_[from_end].bytes;
  }
  [[nodiscard]] double utilization(int from_end) const {
    return directions_[from_end].wire.utilization();
  }
  [[nodiscard]] const LinkParams& params() const { return params_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  static int check_end(int end);

  struct Direction {
    Direction(sim::Simulator& sim, const std::string& name)
        : wire(sim, name), faults() {}
    sim::FifoResource wire;   // serialization at line rate
    FaultInjector faults;
    std::uint64_t frames = 0;
    std::int64_t bytes = 0;
  };

  sim::Simulator* sim_;
  LinkParams params_;
  std::string name_;
  Direction directions_[2];
  FrameSink* sinks_[2] = {nullptr, nullptr};
};

}  // namespace clicsim::net
