// Full-duplex point-to-point Ethernet link.
//
// Each direction serializes frames at line rate (including preamble/IFG),
// then delivers to the far-end FrameSink after the propagation delay.
// A per-direction FaultInjector supports probabilistic drop/corruption,
// deterministic drop lists (nth-frame), Gilbert–Elliott two-state bursty
// loss, frame duplication and bounded-jitter delay (reordering). The link
// itself models carrier: while the carrier is down (a cable pull / port
// flap) frames still occupy the wire but never reach the far end.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "net/frame.hpp"
#include "sim/inline_function.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace clicsim::net {

struct LinkParams {
  double bits_per_s = 1e9;                    // Gigabit Ethernet
  sim::SimTime propagation = sim::nanoseconds(150);  // ~30 m of copper
};

// Minimum sender-to-receiver latency on any link, independent of length or
// rate: delivery never precedes now + kDeliveryFloor + propagation (see
// Link::send). This floor is also what makes every cross-shard link a
// positive-lookahead channel for the conservative PDES engine.
inline constexpr sim::SimTime kDeliveryFloor = sim::nanoseconds(500);

class FaultInjector {
 public:
  enum class Verdict { kDeliver, kDrop, kCorrupt, kDuplicate, kDelay };

  // A per-frame fault decision. `delay` is only meaningful for kDelay: the
  // extra time the frame spends "in the weeds" before arriving (causing
  // reordering against later frames).
  struct Outcome {
    Verdict verdict = Verdict::kDeliver;
    sim::SimTime delay = 0;
  };

  explicit FaultInjector(std::uint64_t seed = 1) : rng_(seed, "link-fault") {}

  void set_drop_probability(double p) { drop_prob_ = p; }
  void set_corrupt_probability(double p) { corrupt_prob_ = p; }
  void set_seed(std::uint64_t seed) { rng_ = sim::Rng(seed, "link-fault"); }

  // Gilbert–Elliott two-state bursty loss: per-frame transitions between a
  // good state (loss `loss_good`) and a bad state (loss `loss_bad`), with
  // transition probabilities `good_to_bad` / `bad_to_good`. Replaces the
  // Bernoulli drop coin while enabled; the mean burst length is
  // 1 / bad_to_good frames.
  void set_gilbert_elliott(double good_to_bad, double bad_to_good,
                           double loss_good, double loss_bad) {
    ge_enabled_ = good_to_bad > 0.0 || loss_bad > 0.0;
    ge_good_to_bad_ = good_to_bad;
    ge_bad_to_good_ = bad_to_good;
    ge_loss_good_ = loss_good;
    ge_loss_bad_ = loss_bad;
    ge_bad_ = false;
  }
  void clear_gilbert_elliott() { ge_enabled_ = false; }

  // Frame duplication: the frame arrives twice (second copy right behind
  // the first).
  void set_duplicate_probability(double p) { dup_prob_ = p; }

  // Bounded-jitter delay: with probability `p` a frame is held back an
  // extra uniform [0, max_jitter) before delivery, reordering it against
  // frames sent after it.
  void set_delay(double p, sim::SimTime max_jitter) {
    delay_prob_ = p;
    delay_jitter_ = max_jitter;
  }

  // Drop exactly the frame with this 0-based send index (repeatable tests).
  void drop_frame_index(std::uint64_t index) { drop_list_.insert(index); }

  Outcome judge();

  [[nodiscard]] std::uint64_t seen() const { return count_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t delayed() const { return delayed_; }
  [[nodiscard]] std::uint64_t burst_drops() const { return burst_drops_; }
  [[nodiscard]] bool in_burst() const { return ge_enabled_ && ge_bad_; }

 private:
  double drop_prob_ = 0.0;
  double corrupt_prob_ = 0.0;
  double dup_prob_ = 0.0;
  double delay_prob_ = 0.0;
  sim::SimTime delay_jitter_ = 0;
  bool ge_enabled_ = false;
  bool ge_bad_ = false;
  double ge_good_to_bad_ = 0.0;
  double ge_bad_to_good_ = 0.0;
  double ge_loss_good_ = 0.0;
  double ge_loss_bad_ = 0.0;
  sim::Rng rng_;
  std::set<std::uint64_t> drop_list_;
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t burst_drops_ = 0;
};

class Link {
 public:
  Link(sim::Simulator& sim, LinkParams params, std::string name);

  // Shard-aware link: end 0 lives on `shard0`, end 1 on `shard1` of
  // `group`. When the ends differ, each direction's serialization resource
  // and fault injector live on the *sending* shard, deliveries cross via
  // the group's mailboxes (the frame is detached first), and the
  // constructor declares both directions as PDES channels with lookahead
  // kDeliveryFloor + propagation — throwing if that is not positive.
  Link(sim::ShardGroup& group, int shard0, int shard1, LinkParams params,
       std::string name);

  // Attaches the receiver for frames arriving at `end` (0 or 1).
  void attach(int end, FrameSink* sink);

  // The sink currently attached at `end` (taps interpose through this).
  [[nodiscard]] FrameSink* sink(int end) const {
    return sinks_[check_end(end)];
  }

  // Transmits `frame` from `end` toward the other end. `on_serialized`
  // (optional) fires when the frame has left the sender (used by the switch
  // to bound its output queues).
  //
  // `delivery_credit` models cut-through forwarding: the wire stays
  // occupied for the full serialization time, but delivery to the far end
  // is advanced by up to the credit (never before the send could have
  // started).
  void send(int end, Frame frame, sim::Action on_serialized = {},
            sim::SimTime delivery_credit = 0);

  // Serialization time of `frame` at this link's line rate.
  [[nodiscard]] sim::SimTime transmission_time(const Frame& frame) const {
    return sim::transmission_time(frame.wire_bytes(), params_.bits_per_s);
  }

  // Carrier state (link flaps): while down, transmissions in both
  // directions still occupy the wire (the sender's PHY keeps clocking) but
  // nothing reaches the far end. Carrier is tracked per sending end so a
  // sharded fault plan can flip each half from the shard that owns it;
  // set_carrier_up() flips both halves (the single-shard/legacy form) and
  // carrier_up() reports the cable as up only when both halves are.
  void set_carrier_up(bool up) { carrier_up_[0] = carrier_up_[1] = up; }
  void set_carrier_up_from(int end, bool up) {
    carrier_up_[check_end(end)] = up;
  }
  [[nodiscard]] bool carrier_up() const {
    return carrier_up_[0] && carrier_up_[1];
  }
  [[nodiscard]] std::uint64_t carrier_drops() const {
    return carrier_drops_[0] + carrier_drops_[1];
  }

  // The simulator driving `end` (the home simulator for non-sharded links).
  [[nodiscard]] sim::Simulator& end_sim(int end) {
    return *end_sims_[check_end(end)];
  }

  // True when the two ends live on different PDES shards: deliveries pay a
  // mailbox hop plus Frame::detach. The switch flood path uses this to
  // decide whether converting the payload to shared-immutable storage buys
  // anything.
  [[nodiscard]] bool crosses_shards() const {
    return group_ != nullptr && end_shards_[0] != end_shards_[1];
  }

  [[nodiscard]] FaultInjector& faults(int from_end) {
    return directions_[check_end(from_end)].faults;
  }

  [[nodiscard]] std::uint64_t frames_sent(int from_end) const {
    return directions_[from_end].frames;
  }
  [[nodiscard]] std::int64_t bytes_sent(int from_end) const {
    return directions_[from_end].bytes;
  }
  [[nodiscard]] double utilization(int from_end) const {
    return directions_[from_end].wire.utilization();
  }
  [[nodiscard]] const LinkParams& params() const { return params_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  static int check_end(int end);

  struct Direction {
    Direction(sim::Simulator& sim, const std::string& name)
        : wire(sim, name), faults() {}
    sim::FifoResource wire;   // serialization at line rate
    FaultInjector faults;
    std::uint64_t frames = 0;
    std::int64_t bytes = 0;
  };

  // Schedules arrival at `to_end`; crosses the shard boundary through the
  // group mailbox (detaching the frame) when the ends live on different
  // shards.
  void deliver_at(int to_end, sim::SimTime when, Frame frame);

  LinkParams params_;
  std::string name_;
  sim::ShardGroup* group_ = nullptr;   // null for single-simulator links
  sim::Simulator* end_sims_[2];
  int end_shards_[2] = {0, 0};
  Direction directions_[2];
  FrameSink* sinks_[2] = {nullptr, nullptr};
  bool carrier_up_[2] = {true, true};
  std::uint64_t carrier_drops_[2] = {0, 0};
};

}  // namespace clicsim::net
