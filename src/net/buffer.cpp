#include "net/buffer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/random.hpp"

namespace clicsim::net {

Buffer Buffer::zeros(std::int64_t size) {
  if (size < 0) throw std::invalid_argument("Buffer::zeros: negative size");
  return Buffer{{}, 0, size};
}

Buffer Buffer::pattern(std::int64_t size, std::uint64_t seed) {
  if (size < 0) throw std::invalid_argument("Buffer::pattern: negative size");
  // Fill the (possibly recycled) block in place — no intermediate vector.
  auto storage = detail::BlockRef::adopt(detail::acquire_data_block(size));
  sim::Rng rng(seed);
  for (auto& b : storage->bytes) {
    b = static_cast<std::byte>(rng.next() & 0xff);
  }
  return Buffer{std::move(storage), 0, size};
}

Buffer Buffer::bytes(std::vector<std::byte> data) {
  const auto len = static_cast<std::int64_t>(data.size());
  auto storage =
      detail::BlockRef::adopt(detail::adopt_data_block(std::move(data)));
  return Buffer{std::move(storage), 0, len};
}

std::span<const std::byte> Buffer::data() const {
  if (!storage_) return {};
  return std::span<const std::byte>(storage_->bytes.data() + offset_,
                                    static_cast<std::size_t>(len_));
}

Buffer Buffer::slice(std::int64_t offset, std::int64_t length) const {
  if (offset < 0 || length < 0 || offset + length > len_) {
    throw std::out_of_range("Buffer::slice: range outside buffer");
  }
  return Buffer{storage_, offset_ + offset, length};
}

std::uint64_t Buffer::checksum() const {
  if (!storage_) {
    // Size-derived token so size-only flows still detect length corruption.
    std::uint64_t x = 0x517cc1b727220a95ULL ^
                      static_cast<std::uint64_t>(len_);
    return sim::splitmix64(x);
  }
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data()) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Buffer Buffer::detached() const {
  if (!storage_) return *this;
  // Shared-immutable storage is already safe to cross shards (atomic
  // refcount, no home pool): keep aliasing instead of copying.
  if (storage_->shared) return *this;
  auto copy =
      detail::BlockRef::adopt(detail::acquire_data_block_unpooled(len_));
  const auto src = data();
  std::copy(src.begin(), src.end(), copy->bytes.data());
  return Buffer{std::move(copy), 0, len_};
}

Buffer Buffer::shared() const {
  if (!storage_ || storage_->shared) return *this;
  auto copy =
      detail::BlockRef::adopt(detail::acquire_data_block_shared(len_));
  const auto src = data();
  std::copy(src.begin(), src.end(), copy->bytes.data());
  return Buffer{std::move(copy), 0, len_};
}

bool Buffer::content_equals(const Buffer& other) const {
  if (len_ != other.len_) return false;
  if (!has_data() || !other.has_data()) return true;
  const auto a = data();
  const auto b = other.data();
  for (std::int64_t i = 0; i < len_; ++i) {
    if (a[static_cast<std::size_t>(i)] != b[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

void BufferChain::append(Buffer b) {
  total_ += b.size();
  parts_.push_back(std::move(b));
}

Buffer BufferChain::flatten() const {
  bool all_data = !parts_.empty();
  for (const auto& p : parts_) {
    if (!p.has_data() && p.size() > 0) {
      all_data = false;
      break;
    }
  }
  if (!all_data) return Buffer::zeros(total_);

  // Assemble straight into a (possibly recycled) block.
  auto storage = detail::BlockRef::adopt(detail::acquire_data_block(total_));
  std::byte* out = storage->bytes.data();
  for (const auto& p : parts_) {
    const auto d = p.data();
    std::copy(d.begin(), d.end(), out);
    out += d.size();
  }
  return Buffer{std::move(storage), 0, total_};
}

void BufferChain::clear() {
  parts_.clear();
  total_ = 0;
}

}  // namespace clicsim::net
