#include "net/switch.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::net {

Switch::Switch(sim::Simulator& sim, int ports, SwitchParams params,
               std::string name)
    : sim_(&sim), params_(params), name_(std::move(name)) {
  if (ports < 1) throw std::invalid_argument("Switch: need >= 1 port");
  ports_.reserve(static_cast<std::size_t>(ports));
  for (int i = 0; i < ports; ++i) {
    auto p = std::make_unique<Port>();
    p->owner = this;
    p->index = i;
    ports_.push_back(std::move(p));
  }
}

void Switch::connect(int port, Link& link, int link_end) {
  auto& p = *ports_.at(static_cast<std::size_t>(port));
  p.link = &link;
  p.link_end = link_end;
  link.attach(link_end, &p);
}

void Switch::Port::frame_arrived(Frame frame) {
  owner->ingress(index, std::move(frame));
}

int Switch::learned_port(const MacAddr& mac) const {
  auto it = table_.find(mac);
  return it == table_.end() ? -1 : it->second;
}

void Switch::ingress(int port, Frame frame) {
  // A killed port is electrically dead: frames arriving on it vanish.
  if (!ports_[static_cast<std::size_t>(port)]->up) {
    ++port_down_drops_;
    return;
  }

  // Store-and-forward switches verify the FCS and discard bad frames.
  if (!frame.fcs_ok && !params_.cut_through) {
    ++bad_fcs_;
    return;
  }

  if (!frame.src.is_multicast()) table_[frame.src] = port;

  if (frame.dst.is_multicast()) {  // includes broadcast
    flood_from(port, frame);
    return;
  }

  const int out = learned_port(frame.dst);
  if (out == port) return;  // destination is behind the ingress port
  if (out >= 0) {
    ++forwarded_;
    egress(out, frame);
    return;
  }
  // Unknown unicast: flood.
  flood_from(port, frame);
}

void Switch::flood_from(int port, Frame& frame) {
  // Copy-on-write fan-out: if any flooded copy will cross a shard boundary
  // (where Frame::detach would deep-copy the payload per crossing), convert
  // the payload to a shared-immutable block once — every per-port copy and
  // every boundary crossing then aliases that one block, so a flood costs
  // O(1) payload copies instead of O(ports). Sharing is host-side memory
  // management only; simulated times and contents are unchanged, keeping
  // sharded runs bit-identical to --shards 1.
  if (!frame.payload.is_shared()) {
    for (const auto& p : ports_) {
      if (p->index != port && p->link != nullptr && p->flood &&
          p->link->crosses_shards()) {
        frame.payload = frame.payload.shared();
        break;
      }
    }
  }
  for (const auto& p : ports_) {
    if (p->index != port && p->link != nullptr && p->flood) {
      ++flooded_;
      egress(p->index, frame);
    }
  }
}

void Switch::egress(int port, const Frame& frame) {
  auto& p = *ports_[static_cast<std::size_t>(port)];
  if (!p.up) {
    ++port_down_drops_;
    return;
  }
  if (p.queued >= params_.output_queue_frames) {
    ++dropped_;
    ++p.drops;
    return;
  }
  ++p.queued;
  sim_->after(params_.forwarding_latency, [this, port, frame]() {
    auto& out = *ports_[static_cast<std::size_t>(port)];
    // Cut-through: the egress wire started re-serializing while the frame
    // was still arriving on the ingress port, so delivery leads by almost
    // the full transmission time (occupancy is charged in full).
    const sim::SimTime credit =
        params_.cut_through
            ? std::max<sim::SimTime>(
                  out.link->transmission_time(frame) -
                      params_.forwarding_latency,
                  0)
            : 0;
    out.link->send(out.link_end, frame, [&out] { --out.queued; }, credit);
  });
}

}  // namespace clicsim::net
