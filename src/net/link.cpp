#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::net {

FaultInjector::Verdict FaultInjector::judge() {
  const std::uint64_t index = count_++;
  if (drop_list_.erase(index) > 0) {
    ++dropped_;
    return Verdict::kDrop;
  }
  if (drop_prob_ > 0.0 && rng_.bernoulli(drop_prob_)) {
    ++dropped_;
    return Verdict::kDrop;
  }
  if (corrupt_prob_ > 0.0 && rng_.bernoulli(corrupt_prob_)) {
    ++corrupted_;
    return Verdict::kCorrupt;
  }
  return Verdict::kDeliver;
}

Link::Link(sim::Simulator& sim, LinkParams params, std::string name)
    : sim_(&sim),
      params_(params),
      name_(std::move(name)),
      directions_{Direction(sim, name_ + ".d0"), Direction(sim, name_ + ".d1")} {}

int Link::check_end(int end) {
  if (end != 0 && end != 1) throw std::invalid_argument("Link: end must be 0/1");
  return end;
}

void Link::attach(int end, FrameSink* sink) { sinks_[check_end(end)] = sink; }

void Link::send(int end, Frame frame, sim::Action on_serialized,
                sim::SimTime delivery_credit) {
  check_end(end);
  Direction& dir = directions_[end];
  FrameSink* dest = sinks_[1 - end];

  ++dir.frames;
  dir.bytes += frame.frame_bytes();

  // A dropped frame still occupies the wire for its transmission time; it
  // just never reaches the far end. Corrupted frames arrive with a bad FCS
  // and are discarded by the receiving NIC.
  bool deliver = true;
  switch (dir.faults.judge()) {
    case FaultInjector::Verdict::kDrop:
      deliver = false;
      break;
    case FaultInjector::Verdict::kCorrupt:
      frame.fcs_ok = false;
      break;
    case FaultInjector::Verdict::kDeliver:
      break;
  }

  const sim::SimTime tx_time =
      sim::transmission_time(frame.wire_bytes(), params_.bits_per_s);

  const sim::SimTime serialized = dir.wire.submit(
      tx_time, std::move(on_serialized));
  if (!deliver || dest == nullptr) return;

  const sim::SimTime floor = sim_->now() + sim::nanoseconds(500);
  const sim::SimTime arrive =
      std::max(floor, serialized - delivery_credit) + params_.propagation;
  sim_->at(arrive, [dest, frame = std::move(frame)]() mutable {
    dest->frame_arrived(std::move(frame));
  });
}

}  // namespace clicsim::net
