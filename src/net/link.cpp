#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::net {

FaultInjector::Outcome FaultInjector::judge() {
  const std::uint64_t index = count_++;
  if (drop_list_.erase(index) > 0) {
    ++dropped_;
    return {Verdict::kDrop};
  }
  // Loss: Gilbert–Elliott burst model when enabled, Bernoulli coin
  // otherwise. The draw order is fixed so configurations that leave a
  // feature disabled consume exactly the same RNG stream as before the
  // feature existed.
  if (ge_enabled_) {
    ge_bad_ = ge_bad_ ? !rng_.bernoulli(ge_bad_to_good_)
                      : rng_.bernoulli(ge_good_to_bad_);
    const double loss = ge_bad_ ? ge_loss_bad_ : ge_loss_good_;
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      ++dropped_;
      if (ge_bad_) ++burst_drops_;
      return {Verdict::kDrop};
    }
  } else if (drop_prob_ > 0.0 && rng_.bernoulli(drop_prob_)) {
    ++dropped_;
    return {Verdict::kDrop};
  }
  if (corrupt_prob_ > 0.0 && rng_.bernoulli(corrupt_prob_)) {
    ++corrupted_;
    return {Verdict::kCorrupt};
  }
  if (dup_prob_ > 0.0 && rng_.bernoulli(dup_prob_)) {
    ++duplicated_;
    return {Verdict::kDuplicate};
  }
  if (delay_prob_ > 0.0 && rng_.bernoulli(delay_prob_)) {
    ++delayed_;
    const sim::SimTime jitter =
        delay_jitter_ > 0 ? rng_.uniform_int(0, delay_jitter_ - 1) : 0;
    return {Verdict::kDelay, jitter};
  }
  return {Verdict::kDeliver};
}

Link::Link(sim::Simulator& sim, LinkParams params, std::string name)
    : params_(params),
      name_(std::move(name)),
      end_sims_{&sim, &sim},
      directions_{Direction(sim, name_ + ".d0"), Direction(sim, name_ + ".d1")} {}

Link::Link(sim::ShardGroup& group, int shard0, int shard1, LinkParams params,
           std::string name)
    : params_(params),
      name_(std::move(name)),
      group_(&group),
      end_sims_{&group.shard(shard0), &group.shard(shard1)},
      end_shards_{shard0, shard1},
      directions_{Direction(*end_sims_[0], name_ + ".d0"),
                  Direction(*end_sims_[1], name_ + ".d1")} {
  if (shard0 != shard1) {
    // Both directions are conservative-PDES channels; the lookahead is the
    // guaranteed minimum sender-to-receiver latency (see send()). The
    // group rejects non-positive lookahead with the link named.
    const sim::SimTime lookahead = kDeliveryFloor + params_.propagation;
    group.declare_channel(shard0, shard1, lookahead, "link " + name_);
    group.declare_channel(shard1, shard0, lookahead, "link " + name_);
  }
}

int Link::check_end(int end) {
  if (end != 0 && end != 1) throw std::invalid_argument("Link: end must be 0/1");
  return end;
}

void Link::attach(int end, FrameSink* sink) { sinks_[check_end(end)] = sink; }

void Link::deliver_at(int to_end, sim::SimTime when, Frame frame) {
  FrameSink* dest = sinks_[to_end];
  const int from_end = 1 - to_end;
  if (group_ != nullptr && end_shards_[to_end] != end_shards_[from_end]) {
    // Shard boundary: confine the frame's storage to the receiving thread,
    // then hand it over through the group mailbox.
    frame.detach();
    group_->post(end_shards_[from_end], end_shards_[to_end], when,
                 [dest, frame = std::move(frame)]() mutable {
                   dest->frame_arrived(std::move(frame));
                 });
    return;
  }
  end_sims_[to_end]->at(when, [dest, frame = std::move(frame)]() mutable {
    dest->frame_arrived(std::move(frame));
  });
}

void Link::send(int end, Frame frame, sim::Action on_serialized,
                sim::SimTime delivery_credit) {
  check_end(end);
  Direction& dir = directions_[end];
  FrameSink* dest = sinks_[1 - end];

  ++dir.frames;
  dir.bytes += frame.frame_bytes();

  // A dropped frame still occupies the wire for its transmission time; it
  // just never reaches the far end. Corrupted frames arrive with a bad FCS
  // and are discarded by the receiving NIC. A downed carrier black-holes
  // the frame before the injector even sees it (and consumes no RNG, so
  // flap-free runs replay identically).
  bool deliver = true;
  bool duplicate = false;
  sim::SimTime extra_delay = 0;
  if (!carrier_up_[end]) {
    ++carrier_drops_[end];
    deliver = false;
  } else {
    const FaultInjector::Outcome out = dir.faults.judge();
    switch (out.verdict) {
      case FaultInjector::Verdict::kDrop:
        deliver = false;
        break;
      case FaultInjector::Verdict::kCorrupt:
        frame.fcs_ok = false;
        break;
      case FaultInjector::Verdict::kDuplicate:
        duplicate = true;
        break;
      case FaultInjector::Verdict::kDelay:
        extra_delay = out.delay;
        break;
      case FaultInjector::Verdict::kDeliver:
        break;
    }
  }

  const sim::SimTime tx_time =
      sim::transmission_time(frame.wire_bytes(), params_.bits_per_s);

  const sim::SimTime serialized = dir.wire.submit(
      tx_time, std::move(on_serialized));
  if (!deliver || dest == nullptr) return;

  // `serialized >= now + tx_time`, so even with full cut-through credit the
  // arrival is never earlier than now + kDeliveryFloor + propagation — the
  // lookahead the shard engine relies on (jitter and duplication only add).
  const sim::SimTime floor = end_sims_[end]->now() + kDeliveryFloor;
  const sim::SimTime arrive =
      std::max(floor, serialized - delivery_credit) + params_.propagation +
      extra_delay;
  if (duplicate) {
    // The copy trails the original by one serialization time, as if the
    // frame had been put on the wire twice back to back.
    deliver_at(1 - end, arrive + tx_time, frame);
  }
  deliver_at(1 - end, arrive, std::move(frame));
}

}  // namespace clicsim::net
