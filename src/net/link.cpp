#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::net {

FaultInjector::Outcome FaultInjector::judge() {
  const std::uint64_t index = count_++;
  if (drop_list_.erase(index) > 0) {
    ++dropped_;
    return {Verdict::kDrop};
  }
  // Loss: Gilbert–Elliott burst model when enabled, Bernoulli coin
  // otherwise. The draw order is fixed so configurations that leave a
  // feature disabled consume exactly the same RNG stream as before the
  // feature existed.
  if (ge_enabled_) {
    ge_bad_ = ge_bad_ ? !rng_.bernoulli(ge_bad_to_good_)
                      : rng_.bernoulli(ge_good_to_bad_);
    const double loss = ge_bad_ ? ge_loss_bad_ : ge_loss_good_;
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      ++dropped_;
      if (ge_bad_) ++burst_drops_;
      return {Verdict::kDrop};
    }
  } else if (drop_prob_ > 0.0 && rng_.bernoulli(drop_prob_)) {
    ++dropped_;
    return {Verdict::kDrop};
  }
  if (corrupt_prob_ > 0.0 && rng_.bernoulli(corrupt_prob_)) {
    ++corrupted_;
    return {Verdict::kCorrupt};
  }
  if (dup_prob_ > 0.0 && rng_.bernoulli(dup_prob_)) {
    ++duplicated_;
    return {Verdict::kDuplicate};
  }
  if (delay_prob_ > 0.0 && rng_.bernoulli(delay_prob_)) {
    ++delayed_;
    const sim::SimTime jitter =
        delay_jitter_ > 0 ? rng_.uniform_int(0, delay_jitter_ - 1) : 0;
    return {Verdict::kDelay, jitter};
  }
  return {Verdict::kDeliver};
}

Link::Link(sim::Simulator& sim, LinkParams params, std::string name)
    : sim_(&sim),
      params_(params),
      name_(std::move(name)),
      directions_{Direction(sim, name_ + ".d0"), Direction(sim, name_ + ".d1")} {}

int Link::check_end(int end) {
  if (end != 0 && end != 1) throw std::invalid_argument("Link: end must be 0/1");
  return end;
}

void Link::attach(int end, FrameSink* sink) { sinks_[check_end(end)] = sink; }

void Link::deliver_at(FrameSink* dest, sim::SimTime when, Frame frame) {
  sim_->at(when, [dest, frame = std::move(frame)]() mutable {
    dest->frame_arrived(std::move(frame));
  });
}

void Link::send(int end, Frame frame, sim::Action on_serialized,
                sim::SimTime delivery_credit) {
  check_end(end);
  Direction& dir = directions_[end];
  FrameSink* dest = sinks_[1 - end];

  ++dir.frames;
  dir.bytes += frame.frame_bytes();

  // A dropped frame still occupies the wire for its transmission time; it
  // just never reaches the far end. Corrupted frames arrive with a bad FCS
  // and are discarded by the receiving NIC. A downed carrier black-holes
  // the frame before the injector even sees it (and consumes no RNG, so
  // flap-free runs replay identically).
  bool deliver = true;
  bool duplicate = false;
  sim::SimTime extra_delay = 0;
  if (!carrier_up_) {
    ++carrier_drops_;
    deliver = false;
  } else {
    const FaultInjector::Outcome out = dir.faults.judge();
    switch (out.verdict) {
      case FaultInjector::Verdict::kDrop:
        deliver = false;
        break;
      case FaultInjector::Verdict::kCorrupt:
        frame.fcs_ok = false;
        break;
      case FaultInjector::Verdict::kDuplicate:
        duplicate = true;
        break;
      case FaultInjector::Verdict::kDelay:
        extra_delay = out.delay;
        break;
      case FaultInjector::Verdict::kDeliver:
        break;
    }
  }

  const sim::SimTime tx_time =
      sim::transmission_time(frame.wire_bytes(), params_.bits_per_s);

  const sim::SimTime serialized = dir.wire.submit(
      tx_time, std::move(on_serialized));
  if (!deliver || dest == nullptr) return;

  const sim::SimTime floor = sim_->now() + sim::nanoseconds(500);
  const sim::SimTime arrive =
      std::max(floor, serialized - delivery_credit) + params_.propagation +
      extra_delay;
  if (duplicate) {
    // The copy trails the original by one serialization time, as if the
    // frame had been put on the wire twice back to back.
    deliver_at(dest, arrive + tx_time, frame);
  }
  deliver_at(dest, arrive, std::move(frame));
}

}  // namespace clicsim::net
