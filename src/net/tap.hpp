// Packet capture: a Tap interposes on a link endpoint and records every
// frame delivered there (with its arrival time) before forwarding to the
// original sink — tcpdump for the simulated wire. Decoding of protocol
// headers lives in apps/trace.hpp (the only layer that knows every stack).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace clicsim::net {

class Tap : public FrameSink {
 public:
  struct Record {
    sim::SimTime time;
    Frame frame;
  };

  Tap(sim::Simulator& sim, std::string name)
      : sim_(&sim), name_(std::move(name)) {}

  // Interposes this tap at `end` of `link`: recorded frames are forwarded
  // to whatever sink was attached there.
  void insert(Link& link, int end) {
    inner_ = link.sink(end);
    link.attach(end, this);
  }

  // Caps memory for long runs; 0 keeps everything.
  void set_limit(std::size_t max_records) { limit_ = max_records; }

  void frame_arrived(Frame frame) override {
    ++seen_;
    if (limit_ == 0 || records_.size() < limit_) {
      records_.push_back(Record{sim_->now(), frame});
    }
    if (inner_ != nullptr) inner_->frame_arrived(std::move(frame));
  }

  [[nodiscard]] const std::vector<Record>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t frames_seen() const { return seen_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void clear() { records_.clear(); }

 private:
  sim::Simulator* sim_;
  std::string name_;
  FrameSink* inner_ = nullptr;
  std::vector<Record> records_;
  std::size_t limit_ = 0;
  std::uint64_t seen_ = 0;
};

}  // namespace clicsim::net
