// Store-and-forward Ethernet switch.
//
// MAC learning on ingress; unicast frames forward to the learned port or
// flood when unknown; broadcast/multicast frames flood every port except the
// ingress. Output queues are bounded in frames (tail drop), matching the
// "finite buffering capabilities" the paper cites as a reason applications
// need a reliability layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace clicsim::net {

struct SwitchParams {
  sim::SimTime forwarding_latency = sim::microseconds(1.0);
  int output_queue_frames = 128;  // per-port bound, in frames
  // Cut-through forwarding: egress serialization overlaps ingress, so a
  // frame adds ~forwarding_latency instead of a full store-and-forward
  // serialization. Store-and-forward (false) verifies the FCS first.
  bool cut_through = true;
};

class Switch {
 public:
  Switch(sim::Simulator& sim, int ports, SwitchParams params,
         std::string name);

  // Wires switch port `port` to `link` end `link_end`. The other link end
  // belongs to a NIC (or another switch).
  void connect(int port, Link& link, int link_end);

  [[nodiscard]] int ports() const { return static_cast<int>(ports_.size()); }

  // Port kill/restore (fault orchestration): a downed port neither accepts
  // ingress frames nor forwards egress frames; both are counted.
  void set_port_up(int port, bool up) {
    ports_.at(static_cast<std::size_t>(port))->up = up;
  }
  [[nodiscard]] bool port_up(int port) const {
    return ports_.at(static_cast<std::size_t>(port))->up;
  }

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t flooded() const { return flooded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bad_fcs() const { return bad_fcs_; }
  [[nodiscard]] std::uint64_t port_down_drops() const {
    return port_down_drops_;
  }
  // Tail drops charged to one egress port (uplink congestion shows up here
  // long before the global dropped() counter tells you where).
  [[nodiscard]] std::uint64_t dropped_on(int port) const {
    return ports_.at(static_cast<std::size_t>(port))->drops;
  }
  [[nodiscard]] std::size_t mac_table_size() const { return table_.size(); }

  // Flood pruning (the fabric's spanning tree): a port with flooding
  // disabled never receives flooded copies, but unicast frames with a
  // learned or static table entry still egress through it. The topology
  // builder disables non-tree inter-switch edges on both ends so a
  // broadcast reaches every node exactly once and can never loop.
  void set_flood_enabled(int port, bool enabled) {
    ports_.at(static_cast<std::size_t>(port))->flood = enabled;
  }
  [[nodiscard]] bool flood_enabled(int port) const {
    return ports_.at(static_cast<std::size_t>(port))->flood;
  }

  // The port a MAC was learned on; -1 when unknown.
  [[nodiscard]] int learned_port(const MacAddr& mac) const;

  // Static table entry (equivalent to the gratuitous learning frames real
  // hosts emit at link-up; keeps rarely-transmitting NICs — e.g. the
  // secondary cards of a bonded pair — from causing unknown-unicast
  // flooding).
  void learn(const MacAddr& mac, int port) { table_[mac] = port; }

 private:
  struct Port : FrameSink {
    Switch* owner = nullptr;
    int index = -1;
    Link* link = nullptr;
    int link_end = -1;
    int queued = 0;
    bool up = true;
    bool flood = true;
    std::uint64_t drops = 0;

    void frame_arrived(Frame frame) override;
  };

  void ingress(int port, Frame frame);
  void flood_from(int port, Frame& frame);
  void egress(int port, const Frame& frame);

  sim::Simulator* sim_;
  SwitchParams params_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<MacAddr, int, MacAddrHash> table_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t flooded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bad_fcs_ = 0;
  std::uint64_t port_down_drops_ = 0;
};

}  // namespace clicsim::net
