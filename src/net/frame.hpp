// Ethernet framing: MAC addresses, ethertypes, frames and the type-erased
// protocol-header blob that rides on a frame.
//
// Protocol headers are modelled structurally (typed C++ structs) rather than
// as serialized bytes; each header declares the number of on-wire bytes it
// represents so frame sizes and transmission times stay faithful.
#pragma once

#include <array>
#include <cstdint>
#include <new>
#include <string>
#include <typeinfo>
#include <utility>

#include "net/buffer.hpp"

namespace clicsim::net {

struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  // Locally-administered unicast address for cluster node `id`.
  static MacAddr node(std::uint32_t id);
  static MacAddr broadcast();
  // Multicast group address (01:xx:...) for group `id`.
  static MacAddr multicast(std::uint32_t id);

  [[nodiscard]] bool is_broadcast() const;
  [[nodiscard]] bool is_multicast() const {
    return (octets[0] & 0x01) != 0;
  }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const MacAddr&, const MacAddr&) = default;
};

struct MacAddrHash {
  std::size_t operator()(const MacAddr& m) const {
    std::size_t h = 1469598103934665603ULL;
    for (auto o : m.octets) {
      h ^= o;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

// Ethertypes: IP as standardized; CLIC and GAMMA use experimental values
// (the real CLIC also registers its own packet type with dev_add_pack).
inline constexpr std::uint16_t kEtherTypeIp = 0x0800;
inline constexpr std::uint16_t kEtherTypeClic = 0x88B5;
inline constexpr std::uint16_t kEtherTypeGamma = 0x88B6;

// Type-erased protocol header carried by a frame (e.g. clic::ClicHeader,
// tcpip::Ipv4Header). Tracks the on-wire byte count it represents.
//
// The header object lives in an intrusively refcounted record recycled by
// the simulation's net::BufferPool — building one per emitted frame (the
// hot path: every data packet, ack and retransmission constructs a fresh
// wire header) costs no heap allocation in steady state.
class HeaderBlob {
 public:
  HeaderBlob() = default;

  template <typename T>
  static HeaderBlob of(T header, std::int64_t wire_bytes) {
    static_assert(alignof(T) <= alignof(detail::HeaderRec),
                  "over-aligned protocol headers are not supported");
    detail::HeaderRec* rec = detail::acquire_header_rec(sizeof(T));
    new (rec->payload()) T(std::move(header));
    rec->destroy = [](void* p) { static_cast<T*>(p)->~T(); };
    // Deep copy into an unpooled record, for frames crossing a shard
    // boundary (see Frame::detach). Headers that embed refcounted parts
    // (a nested HeaderBlob or Buffer) expose detach_shared() to confine
    // those too; plain structs need nothing beyond the copy.
    rec->clone = [](const detail::HeaderRec* src) -> detail::HeaderRec* {
      detail::HeaderRec* copy = detail::acquire_header_rec_unpooled(sizeof(T));
      new (copy->payload()) T(*static_cast<const T*>(src->payload()));
      copy->destroy = src->destroy;
      copy->clone = src->clone;
      copy->type = src->type;
      if constexpr (requires(T& t) { t.detach_shared(); }) {
        static_cast<T*>(copy->payload())->detach_shared();
      }
      return copy;
    };
    rec->type = &typeid(T);
    HeaderBlob b;
    b.rec_ = detail::HeaderRef::adopt(rec);
    b.wire_bytes_ = wire_bytes;
    return b;
  }

  template <typename T>
  [[nodiscard]] const T* get() const {
    if (!rec_ || *rec_->type != typeid(T)) return nullptr;
    return static_cast<const T*>(rec_->payload());
  }

  [[nodiscard]] std::int64_t wire_bytes() const { return wire_bytes_; }
  [[nodiscard]] bool empty() const { return !rec_; }

  // Copy backed by a fresh unpooled record (deep, including any nested
  // blobs/buffers via the header's detach_shared hook): safe to release on
  // a different thread than the original. Empty blobs return themselves.
  [[nodiscard]] HeaderBlob detached() const {
    if (!rec_) return *this;
    HeaderBlob b;
    b.rec_ = detail::HeaderRef::adopt(rec_->clone(rec_.get()));
    b.wire_bytes_ = wire_bytes_;
    return b;
  }

 private:
  detail::HeaderRef rec_;
  std::int64_t wire_bytes_ = 0;
};

// Ethernet constants (level-1 header, as used by CLIC: 6+6+2 bytes).
inline constexpr std::int64_t kEthHeaderBytes = 14;
inline constexpr std::int64_t kEthFcsBytes = 4;
inline constexpr std::int64_t kEthMinPayload = 46;
inline constexpr std::int64_t kEthMtuStandard = 1500;
inline constexpr std::int64_t kEthMtuJumbo = 9000;
// Preamble + SFD + inter-frame gap, charged per frame on the wire.
inline constexpr std::int64_t kEthWireOverhead = 20;

struct Frame {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = 0;
  HeaderBlob header;  // upper-protocol header riding in the payload area
  Buffer payload;     // user data portion
  bool fcs_ok = true; // cleared by corruption injection; receivers drop

  // Bytes inside the Ethernet payload area (upper header + data).
  [[nodiscard]] std::int64_t payload_bytes() const {
    return header.wire_bytes() + payload.size();
  }

  // Frame size from destination MAC through FCS (payload padded to 46).
  [[nodiscard]] std::int64_t frame_bytes() const;

  // Bytes occupying the wire, including preamble/SFD/IFG.
  [[nodiscard]] std::int64_t wire_bytes() const {
    return frame_bytes() + kEthWireOverhead;
  }

  // Severs all sharing with pool-backed storage, called once per frame at
  // a shard boundary so pooled blocks and their non-atomic refcounts are
  // touched by exactly one thread on each side of the crossing. The header
  // becomes a self-owned heap copy (small, and its blob record is pooled);
  // the payload — where the bytes are — converts to a shared-immutable
  // block instead of deep-copying: one mint per distinct payload, atomic
  // refcount, safe to alias and release across threads, and a payload
  // already shared (the copy-on-write flood path, or a unicast detached
  // at an earlier hop) passes through with zero copies.
  void detach() {
    header = header.detached();
    payload = payload.shared();
  }
};

// Anything that accepts delivered frames: a NIC's receive side, a switch
// port, a monitoring tap.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void frame_arrived(Frame frame) = 0;
};

}  // namespace clicsim::net
