// Simulated message payloads.
//
// A Buffer always knows its size; it optionally carries real bytes.
// Benchmarks run size-only buffers (copies cost simulated time but move no
// host memory); integrity tests run patterned buffers whose contents are
// verified after every fragmentation / reassembly / retransmission path.
// Slices share the underlying storage (zero host-copy, like sk_buff clones).
//
// Storage blocks are intrusively reference-counted and recycled through the
// simulation's net::BufferPool when one is current (see buffer_pool.hpp):
// in steady state a data-carrying packet costs no heap allocation. Without
// a pool, blocks fall back to plain heap allocation with identical
// semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/buffer_pool.hpp"

namespace clicsim::net {

class Buffer {
 public:
  Buffer() = default;

  // Size-only payload: occupies `size` simulated bytes, carries no data.
  static Buffer zeros(std::int64_t size);

  // Payload carrying a deterministic byte pattern derived from `seed`.
  static Buffer pattern(std::int64_t size, std::uint64_t seed);

  // Payload wrapping caller-provided bytes.
  static Buffer bytes(std::vector<std::byte> data);

  [[nodiscard]] std::int64_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] bool has_data() const { return static_cast<bool>(storage_); }

  // View of the carried bytes; empty span for size-only buffers.
  [[nodiscard]] std::span<const std::byte> data() const;

  // Sub-range [offset, offset+length); shares storage with *this.
  [[nodiscard]] Buffer slice(std::int64_t offset, std::int64_t length) const;

  // FNV-1a over contents (or a size-derived token for size-only buffers);
  // used by integrity tests to verify end-to-end delivery.
  [[nodiscard]] std::uint64_t checksum() const;

  // True when both buffers have the same size and identical contents
  // (size-only buffers compare equal to anything of equal size).
  [[nodiscard]] bool content_equals(const Buffer& other) const;

  // Copy whose storage (if any) is a fresh unpooled heap block owned only
  // by the result: safe to hand to another shard's thread (the original's
  // refcount and home pool are never touched again through the copy).
  // Size-only buffers return themselves — nothing to confine — and buffers
  // backed by shared-immutable storage (see shared()) keep aliasing it:
  // their refcount is atomic, so no copy is needed at a shard boundary.
  [[nodiscard]] Buffer detached() const;

  // Copy-on-write fan-out handle: a buffer backed by a shared-immutable
  // block (atomic refcount, plain heap, never mutated) that any number of
  // frames on any shards may alias. Pays one payload copy on first call;
  // size-only and already-shared buffers return themselves. The switch
  // flood path converts a frame's payload once, so a 1024-port flood costs
  // one copy instead of one per egress port — and Frame::detach rides the
  // same block for cross-shard *unicast*, so a payload crossing any number
  // of shard boundaries is minted at most once and never deep-copied.
  [[nodiscard]] Buffer shared() const;

  // True when the storage is a shared-immutable block.
  [[nodiscard]] bool is_shared() const {
    return storage_ && storage_->shared;
  }

  // Identity of the backing storage block (nullptr for size-only buffers);
  // the pool-invariant tests use it to prove recycled blocks are never
  // aliased by live handles.
  [[nodiscard]] const void* storage_identity() const {
    return storage_.get();
  }

 private:
  friend class BufferChain;  // flatten() assembles into a pooled block

  Buffer(detail::BlockRef storage, std::int64_t offset, std::int64_t len)
      : storage_(std::move(storage)), offset_(offset), len_(len) {}

  detail::BlockRef storage_;
  std::int64_t offset_ = 0;
  std::int64_t len_ = 0;
};

// Accumulates fragments in order and flattens them into one Buffer
// (reassembly on the receive side of IP fragmentation, CLIC segmentation,
// TCP streams).
class BufferChain {
 public:
  void append(Buffer b);
  [[nodiscard]] std::int64_t size() const { return total_; }
  [[nodiscard]] std::size_t fragments() const { return parts_.size(); }

  // Concatenates all fragments. Data is materialized only when every
  // fragment carries data; otherwise the result is size-only.
  [[nodiscard]] Buffer flatten() const;

  void clear();

 private:
  std::vector<Buffer> parts_;
  std::int64_t total_ = 0;
};

}  // namespace clicsim::net
