// Simulated message payloads.
//
// A Buffer always knows its size; it optionally carries real bytes.
// Benchmarks run size-only buffers (copies cost simulated time but move no
// host memory); integrity tests run patterned buffers whose contents are
// verified after every fragmentation / reassembly / retransmission path.
// Slices share the underlying storage (zero host-copy, like sk_buff clones).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace clicsim::net {

class Buffer {
 public:
  Buffer() = default;

  // Size-only payload: occupies `size` simulated bytes, carries no data.
  static Buffer zeros(std::int64_t size);

  // Payload carrying a deterministic byte pattern derived from `seed`.
  static Buffer pattern(std::int64_t size, std::uint64_t seed);

  // Payload wrapping caller-provided bytes.
  static Buffer bytes(std::vector<std::byte> data);

  [[nodiscard]] std::int64_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] bool has_data() const { return storage_ != nullptr; }

  // View of the carried bytes; empty span for size-only buffers.
  [[nodiscard]] std::span<const std::byte> data() const;

  // Sub-range [offset, offset+length); shares storage with *this.
  [[nodiscard]] Buffer slice(std::int64_t offset, std::int64_t length) const;

  // FNV-1a over contents (or a size-derived token for size-only buffers);
  // used by integrity tests to verify end-to-end delivery.
  [[nodiscard]] std::uint64_t checksum() const;

  // True when both buffers have the same size and identical contents
  // (size-only buffers compare equal to anything of equal size).
  [[nodiscard]] bool content_equals(const Buffer& other) const;

 private:
  Buffer(std::shared_ptr<const std::vector<std::byte>> storage,
         std::int64_t offset, std::int64_t len)
      : storage_(std::move(storage)), offset_(offset), len_(len) {}

  std::shared_ptr<const std::vector<std::byte>> storage_;
  std::int64_t offset_ = 0;
  std::int64_t len_ = 0;
};

// Accumulates fragments in order and flattens them into one Buffer
// (reassembly on the receive side of IP fragmentation, CLIC segmentation,
// TCP streams).
class BufferChain {
 public:
  void append(Buffer b);
  [[nodiscard]] std::int64_t size() const { return total_; }
  [[nodiscard]] std::size_t fragments() const { return parts_.size(); }

  // Concatenates all fragments. Data is materialized only when every
  // fragment carries data; otherwise the result is size-only.
  [[nodiscard]] Buffer flatten() const;

  void clear();

 private:
  std::vector<Buffer> parts_;
  std::int64_t total_ = 0;
};

}  // namespace clicsim::net
