// Per-simulation packet-buffer arena.
//
// The paper's core claim is that CLIC wins by stripping per-packet protocol
// work; the simulator must not re-introduce it on the host side. A
// BufferPool recycles the two allocations the packet path makes per frame —
// the byte storage behind a data-carrying net::Buffer and the type-erased
// protocol-header record behind a net::HeaderBlob — through size-class
// freelists, so steady-state traffic touches the global heap only while the
// pool is warming up.
//
// Ownership model:
//   * Blocks are intrusively reference-counted (non-atomic: a block never
//     leaves the simulation that allocated it, and a Simulator is
//     single-threaded by contract — the same confinement argument the
//     parallel sweep harness relies on for TSan cleanliness).
//   * Each block records its home pool; the final release returns it to
//     that pool's freelist no matter which pool is "current" by then.
//   * Pools are strictly per-simulation: testbeds own one and install it
//     as the thread-current pool for their lifetime (BufferPool::Scope,
//     LIFO nesting). Two concurrently-running simulations on different
//     threads therefore never share a freelist.
//   * Live blocks are tracked on an intrusive list: outstanding() exposes
//     handles still alive (the leak check at Simulator teardown), and a
//     dying pool orphans any survivors (their final release then falls
//     back to the global heap instead of touching freed pool memory).
//
// Bypass: setting CLICSIM_NO_POOL in the environment (or
// BufferPool::set_pooling_enabled(false) from tests) makes every Scope
// install no pool, so all allocations take the plain heap path. Simulation
// results are bitwise identical either way — the determinism suite pins
// that invariant.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <typeinfo>
#include <vector>

namespace clicsim::net {

class BufferPool;

namespace detail {

// Storage behind a data-carrying net::Buffer. The vector keeps its
// capacity while parked in a freelist, so a recycled block is handed out
// without touching the allocator.
struct DataBlock {
  std::uint32_t refs = 0;
  std::uint8_t size_class = 0;
  // Shared-immutable variant (copy-on-write flood fan-out): refcounted
  // through `shared_refs` (atomic) instead of `refs`, never pooled, never
  // mutated after mint, freed with a plain delete by whichever thread drops
  // the last reference. The flag itself is written once before the block is
  // published (the shard barrier provides the happens-before edge).
  bool shared = false;
  std::atomic<std::uint32_t> shared_refs{0};
  BufferPool* pool = nullptr;  // home pool; nullptr == plain heap block
  DataBlock* live_prev = nullptr;
  DataBlock* live_next = nullptr;
  std::vector<std::byte> bytes;
};

// Storage behind a net::HeaderBlob: an intrusive header followed by the
// in-place protocol-header object (alignment guaranteed by alignas +
// sizeof being a multiple of max_align_t).
struct alignas(std::max_align_t) HeaderRec {
  std::uint32_t refs = 0;
  std::uint8_t size_class = 0;
  BufferPool* pool = nullptr;
  HeaderRec* live_prev = nullptr;
  HeaderRec* live_next = nullptr;
  void (*destroy)(void*) = nullptr;
  // Deep-copies the record into a fresh unpooled one (net::HeaderBlob::of
  // installs it alongside destroy). Used by Frame::detach() when a frame
  // crosses a shard boundary: the copy's final release goes through the
  // global heap, so it may safely die on a different thread than the
  // (thread-confined, non-atomic-refcounted) original.
  HeaderRec* (*clone)(const HeaderRec*) = nullptr;
  const std::type_info* type = nullptr;

  [[nodiscard]] void* payload() { return this + 1; }
  [[nodiscard]] const void* payload() const { return this + 1; }
};

// Mint/recycle entry points (pool-aware via BufferPool::current()).
[[nodiscard]] DataBlock* acquire_data_block(std::int64_t size);
[[nodiscard]] DataBlock* adopt_data_block(std::vector<std::byte> bytes);
[[nodiscard]] HeaderRec* acquire_header_rec(std::size_t payload_bytes);

// Pool-bypassing mints for cross-shard detach copies: the block/record is a
// plain heap allocation with no home pool, so its final release (possibly
// on another thread) never touches a thread-confined freelist.
[[nodiscard]] DataBlock* acquire_data_block_unpooled(std::int64_t size);
[[nodiscard]] HeaderRec* acquire_header_rec_unpooled(std::size_t payload_bytes);

// Shared-immutable mint (see DataBlock::shared): one payload copy that any
// number of frames on any shards may alias — the copy-on-write flood path
// and, via Frame::detach, every cross-shard unicast payload.
[[nodiscard]] DataBlock* acquire_data_block_shared(std::int64_t size);

// Payload-copy accounting (process-wide, atomic): how many byte-carrying
// blocks were deep-copied into unpooled confinement (Buffer::detached —
// now only explicit thread-crossing snapshots, never the frame path) and
// how many shared-immutable conversions happened. The COW accounting tests
// read deltas to prove floods copy O(1) per frame, not O(ports), and that
// cross-shard unicast performs zero payload deep-copies.
[[nodiscard]] std::uint64_t unpooled_data_copies() noexcept;
[[nodiscard]] std::uint64_t shared_data_mints() noexcept;

// Final-release paths (refcount hit zero).
void free_data_block(DataBlock* block) noexcept;
void free_header_rec(HeaderRec* rec) noexcept;

inline void ref(DataBlock* b) noexcept {
  if (b == nullptr) return;
  if (b->shared) {
    b->shared_refs.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++b->refs;
  }
}
inline void ref(HeaderRec* r) noexcept {
  if (r != nullptr) ++r->refs;
}
inline void unref(DataBlock* b) noexcept {
  if (b == nullptr) return;
  if (b->shared) {
    if (b->shared_refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      free_data_block(b);
    }
    return;
  }
  if (--b->refs == 0) free_data_block(b);
}
inline void unref(HeaderRec* r) noexcept {
  if (r != nullptr && --r->refs == 0) free_header_rec(r);
}

// Intrusive refcounted handle shared by Buffer (DataBlock) and HeaderBlob
// (HeaderRec). adopt() takes over a reference the mint already counted.
template <typename Rec>
class Ref {
 public:
  Ref() = default;
  static Ref adopt(Rec* rec) noexcept {
    Ref r;
    r.rec_ = rec;
    return r;
  }
  Ref(const Ref& o) noexcept : rec_(o.rec_) { ref(rec_); }
  Ref(Ref&& o) noexcept : rec_(o.rec_) { o.rec_ = nullptr; }
  Ref& operator=(const Ref& o) noexcept {
    if (this != &o) {
      Rec* old = rec_;
      rec_ = o.rec_;
      ref(rec_);
      unref(old);
    }
    return *this;
  }
  Ref& operator=(Ref&& o) noexcept {
    if (this != &o) {
      Rec* old = rec_;
      rec_ = o.rec_;
      o.rec_ = nullptr;
      unref(old);
    }
    return *this;
  }
  ~Ref() { unref(rec_); }

  [[nodiscard]] Rec* get() const noexcept { return rec_; }
  [[nodiscard]] Rec* operator->() const noexcept { return rec_; }
  explicit operator bool() const noexcept { return rec_ != nullptr; }

 private:
  Rec* rec_ = nullptr;
};

using BlockRef = Ref<DataBlock>;
using HeaderRef = Ref<HeaderRec>;

}  // namespace detail

class BufferPool {
 public:
  struct Stats {
    std::uint64_t data_heap_allocs = 0;   // data blocks minted from the heap
    std::uint64_t data_reuses = 0;        // data blocks served from freelists
    std::uint64_t header_heap_allocs = 0; // header records minted
    std::uint64_t header_reuses = 0;      // header records served recycled
    std::int64_t outstanding = 0;         // live handles (data + header)
    std::int64_t high_water = 0;          // max simultaneous live handles
    std::int64_t parked = 0;              // blocks waiting in freelists
  };

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  [[nodiscard]] Stats stats() const;
  // Handles still alive; nonzero at simulation teardown means a Buffer or
  // HeaderBlob escaped its simulation (the accounting tests fail on it).
  [[nodiscard]] std::int64_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::int64_t high_water() const { return high_water_; }

  // The pool new allocations on this thread are served from (may be null).
  [[nodiscard]] static BufferPool* current() noexcept;

  // Pool-bypass debug switch: CLICSIM_NO_POOL in the environment disables
  // pooling process-wide; set_pooling_enabled() overrides the environment
  // (tests use it to compare pooled vs unpooled runs in one process).
  [[nodiscard]] static bool pooling_enabled() noexcept;
  static void set_pooling_enabled(bool enabled) noexcept;
  static void clear_pooling_override() noexcept;

  // Installs `pool` as the thread-current pool for the scope's lifetime
  // (no-op when pooling is bypassed). Scopes must nest LIFO per thread —
  // the testbeds hold one as their first member, which guarantees it.
  class Scope {
   public:
    explicit Scope(BufferPool* pool) noexcept;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    BufferPool* prev_;
  };

 private:
  friend detail::DataBlock* detail::acquire_data_block(std::int64_t);
  friend detail::DataBlock* detail::adopt_data_block(std::vector<std::byte>);
  friend detail::HeaderRec* detail::acquire_header_rec(std::size_t);
  friend detail::HeaderRec* detail::acquire_header_rec_unpooled(std::size_t);
  friend void detail::free_data_block(detail::DataBlock*) noexcept;
  friend void detail::free_header_rec(detail::HeaderRec*) noexcept;

  // Size classes are powers of two starting at 64 bytes. Data blocks span
  // 64 B .. 1 GiB; header records 64 .. 512 B (larger headers go straight
  // to the heap — none exist today).
  static constexpr int kDataClasses = 25;
  static constexpr int kHeaderClasses = 4;
  static constexpr std::size_t kClassBase = 64;
  // Freelists are capped per class so a burst does not pin memory forever.
  static constexpr std::size_t kMaxParkedPerClass = 64;

  static int data_class_of(std::int64_t size) noexcept;
  static int header_class_of(std::size_t size) noexcept;

  detail::DataBlock* get_data(std::int64_t size);
  detail::DataBlock* adopt_data(std::vector<std::byte> bytes);
  void put_data(detail::DataBlock* block) noexcept;
  detail::HeaderRec* get_header(std::size_t payload_bytes);
  void put_header(detail::HeaderRec* rec) noexcept;

  void track_acquire() noexcept {
    ++outstanding_;
    high_water_ = std::max(high_water_, outstanding_);
  }

  std::vector<detail::DataBlock*> data_free_[kDataClasses];
  std::vector<detail::HeaderRec*> header_free_[kHeaderClasses];
  detail::DataBlock* live_data_ = nullptr;
  detail::HeaderRec* live_headers_ = nullptr;

  std::uint64_t data_heap_allocs_ = 0;
  std::uint64_t data_reuses_ = 0;
  std::uint64_t header_heap_allocs_ = 0;
  std::uint64_t header_reuses_ = 0;
  std::int64_t outstanding_ = 0;
  std::int64_t high_water_ = 0;
};

}  // namespace clicsim::net
