// Per-node CPU: a priority-ordered serial resource plus data-touch cost
// helpers. Interrupt work preempts (runs ahead of) softirq work, which runs
// ahead of kernel work, which runs ahead of user work — non-preemptively
// within an item (see sim::PriorityResource).
#pragma once

#include <string>

#include "hw/params.hpp"
#include "sim/inline_function.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace clicsim::hw {

class Cpu {
 public:
  Cpu(sim::Simulator& sim, const HostParams& params, std::string name)
      : params_(params), res_(sim, std::move(name)) {}

  // Queues `duration` of work at `prio`; `done` runs when it completes.
  void run(sim::CpuPriority prio, sim::SimTime duration,
           sim::Action done = {}) {
    res_.submit(prio, duration, std::move(done));
  }

  // Runs ahead of everything already queued at `prio` — a continuation of
  // the currently-executing item (inline ack emission and the like).
  void run_next(sim::CpuPriority prio, sim::SimTime duration,
                sim::Action done = {}) {
    res_.submit_front(prio, duration, std::move(done));
  }

  // CPU time to memcpy `bytes` (user<->kernel or kernel<->kernel).
  [[nodiscard]] sim::SimTime copy_cost(std::int64_t bytes) const {
    return sim::transfer_time(bytes, params_.cpu_copy_bytes_per_s);
  }

  // CPU time to checksum `bytes` (TCP/IP software checksum).
  [[nodiscard]] sim::SimTime checksum_cost(std::int64_t bytes) const {
    return sim::transfer_time(bytes, params_.cpu_checksum_bytes_per_s);
  }

  [[nodiscard]] const HostParams& params() const { return params_; }

  [[nodiscard]] double utilization() const { return res_.utilization(); }
  [[nodiscard]] sim::SimTime busy_time() const { return res_.busy_time(); }
  [[nodiscard]] sim::SimTime busy_time(sim::CpuPriority p) const {
    return res_.busy_time(p);
  }

 private:
  HostParams params_;
  sim::PriorityResource res_;
};

}  // namespace clicsim::hw
