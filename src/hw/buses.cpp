#include "hw/buses.hpp"

#include <algorithm>
#include <utility>

namespace clicsim::hw {

void DmaEngine::transfer(std::int64_t bytes, int fragments, sim::Action done,
                         sim::SimTime overlap_credit) {
  ++transfers_;
  bytes_ += bytes;

  const sim::SimTime pci_time =
      profile_->dma_setup + fragments * profile_->per_fragment +
      pci_->transaction_time(bytes, profile_->pci_efficiency(bytes));

  // The busses are occupied for the full durations (throughput is
  // conserved); only the completion instant is advanced by the credit.
  const sim::SimTime pci_done = pci_->occupy(pci_time);
  const sim::SimTime mem_done = mem_->traffic(bytes);
  const sim::SimTime floor = sim_->now() + sim::nanoseconds(500);
  const sim::SimTime fire =
      std::max(floor, std::max(pci_done, mem_done) - overlap_credit);
  if (done) sim_->at(fire, std::move(done));
}

}  // namespace clicsim::hw
