// Gigabit Ethernet NIC model.
//
// Transmit: the driver posts a frame described by a scatter/gather list;
// the card bus-masters the bytes across PCI into its TX FIFO and serializes
// onto the attached link. Receive: frames DMA autonomously into pre-posted
// host ring buffers; the card raises its interrupt line under a coalescing
// policy (N frames or T microseconds, firing immediately when the line has
// been idle — the adaptive behaviour of period drivers).
//
// Capabilities per NicProfile: jumbo MTU, scatter/gather (0-copy), dynamic
// coalescing, and optional firmware fragmentation/reassembly — the paper's
// "future work" feature from Gilfeather & Underwood [11]: the host hands
// the card a packet larger than the wire MTU, firmware splits it, and the
// peer's firmware reassembles before a single DMA + interrupt to the host.
//
// Interoperability caveats the paper notes are modelled: a frame whose
// payload exceeds the receiver's configured MTU is dropped (jumbo must be
// enabled on both ends), and fragmented wire frames are dropped by cards
// without the fragmentation feature.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hw/buses.hpp"
#include "hw/interrupt.hpp"
#include "hw/params.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "sim/inline_function.hpp"
#include "sim/ring_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"

namespace clicsim::hw {

// Wire header prepended by firmware fragmentation (8 bytes on fragment >0;
// fragment 0 also carries the original upper-protocol header).
struct NicFragHeader {
  std::uint64_t id = 0;
  std::int32_t index = 0;
  std::int32_t count = 0;
  std::int64_t total_payload = 0;
  net::HeaderBlob inner;  // upper-protocol header of the original packet

  // Cross-shard confinement hook (see net::Frame::detach).
  void detach_shared() { inner = inner.detached(); }
};
inline constexpr std::int64_t kNicFragHeaderBytes = 8;

class Nic : public net::FrameSink {
 public:
  struct TxRequest {
    net::Frame frame;
    int sg_fragments = 1;  // scatter/gather elements describing host memory
    // Fires when the descriptor completes (host buffers reusable). 120 bytes
    // of inline room: the driver's completion wrapper captures `this` plus a
    // full-size sim::Action and must not spill to the heap per frame.
    sim::InlineFunction<120> on_descriptor_done;
  };

  Nic(sim::Simulator& sim, NicProfile profile, PciBus& pci, MemoryBus& mem,
      InterruptController& intc, int irq, net::MacAddr mac, std::string name);

  void attach_link(net::Link& link, int end);

  // --- Driver-facing API -------------------------------------------------

  // Posts a frame for transmission. Returns false when the TX ring is full
  // (the driver requeues — CLIC then stages data in system memory).
  bool post_tx(TxRequest request);

  [[nodiscard]] bool tx_ring_full() const {
    return tx_in_flight_ >= profile_.tx_ring;
  }

  // Programmed-I/O transmit (Figure 1, path 1): the host CPU has already
  // pushed the bytes across PCI itself (the caller charges that CPU time
  // and PCI occupancy); the card only forwards the frame from its FIFO.
  void post_tx_pio(net::Frame frame);

  // Pops the next received frame from the host-visible RX ring.
  std::optional<net::Frame> rx_pop();
  [[nodiscard]] int rx_pending() const {
    return static_cast<int>(rx_queue_.size());
  }

  // Dynamic coalescing adjustment (usecs == 0 / frames <= 1 disables).
  void set_coalescing(sim::SimTime usecs, int frames);

  // Kernel-bypass receive (user-level NICs a la VIA): DMAed frames go
  // straight to `sink` — the card wrote them into registered user memory —
  // instead of the ring + interrupt path.
  void set_rx_bypass(std::function<void(net::Frame)> sink) {
    rx_bypass_ = std::move(sink);
  }

  // Multicast filter (the card's hash table): broadcast always passes;
  // other group addresses only after join_multicast().
  void join_multicast(const net::MacAddr& group) {
    multicast_groups_.insert(group);
  }
  void leave_multicast(const net::MacAddr& group) {
    multicast_groups_.erase(group);
  }

  // Configured MTU (payload bytes per wire frame); <= profile.max_mtu.
  void set_mtu(std::int64_t mtu);
  [[nodiscard]] std::int64_t mtu() const { return mtu_; }

  // --- Firmware-resident protocols (hw/nic_collective) --------------------

  // Terminates `ethertype` inside the card: matching RX frames are handed
  // to `sink` after the firmware's per-byte processing charge — they never
  // consume a ring slot, host DMA, or interrupt. One ethertype per card.
  void set_fw_sink(std::uint16_t ethertype,
                   std::function<void(net::Frame)> sink) {
    fw_ethertype_ = ethertype;
    fw_sink_ = std::move(sink);
  }

  // Firmware-originated transmit: the bytes are already in card memory, so
  // the frame enters the wire path directly (no descriptor, no PCI DMA).
  // Stall faults still apply — a wedged card loses the frame in its FIFO.
  void fw_transmit(net::Frame frame);

  [[nodiscard]] sim::Simulator& sim() const { return *sim_; }

  // Fault orchestration: a stalled card is wedged — frames arriving off the
  // wire are lost (no buffer posting) and frames reaching the TX FIFO never
  // make it onto the wire. Host-side rings and descriptors keep working, so
  // drivers stay oblivious, exactly like a real firmware hang. resume()
  // (set_stalled(false)) brings the card back; recovery is the protocol's
  // problem.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] std::uint64_t stall_drops() const { return stall_drops_; }

  [[nodiscard]] const net::MacAddr& mac() const { return mac_; }
  [[nodiscard]] const NicProfile& profile() const { return profile_; }
  [[nodiscard]] int irq() const { return irq_; }

  // --- Statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t tx_frames() const { return tx_frames_; }
  [[nodiscard]] std::uint64_t rx_frames() const { return rx_frames_; }
  [[nodiscard]] std::uint64_t rx_ring_drops() const { return rx_ring_drops_; }
  [[nodiscard]] std::uint64_t rx_bad_fcs() const { return rx_bad_fcs_; }
  [[nodiscard]] std::uint64_t rx_oversize_drops() const {
    return rx_oversize_drops_;
  }
  [[nodiscard]] std::uint64_t rx_frag_drops() const { return rx_frag_drops_; }
  [[nodiscard]] std::uint64_t interrupts_fired() const { return irqs_fired_; }

  // net::FrameSink
  void frame_arrived(net::Frame frame) override;

 private:
  void transmit_wire_frames(net::Frame frame);
  void tx_dma_complete();
  void accept_rx(net::Frame frame);
  void coalesce_on_frame();
  void fire_interrupt();
  void handle_frag_frame(net::Frame frame);

  sim::Simulator* sim_;
  NicProfile profile_;
  DmaEngine dma_;
  InterruptController* intc_;
  int irq_;
  net::MacAddr mac_;
  std::string name_;
  net::Link* link_ = nullptr;
  int link_end_ = -1;

  std::int64_t mtu_;
  bool stalled_ = false;
  std::uint64_t stall_drops_ = 0;
  int tx_in_flight_ = 0;
  int rx_ring_used_ = 0;
  sim::RingQueue<net::Frame> rx_queue_;  // recycled slots: no deque churn
  std::function<void(net::Frame)> rx_bypass_;
  std::function<void(net::Frame)> fw_sink_;
  std::uint16_t fw_ethertype_ = 0;
  std::unordered_set<net::MacAddr, net::MacAddrHash> multicast_groups_;

  // Frames whose descriptor DMA is in flight, in posting order. PCI and
  // memory-bus service are FIFO, so DMA completions arrive in posting order
  // too and the completion event needs to capture only `this`.
  struct TxInFlight {
    net::Frame frame;
    sim::InlineFunction<120> done;
  };
  sim::RingQueue<TxInFlight> tx_inflight_;

  // Coalescing state. The hold-off timer lives on a wheel so re-arming
  // after every interrupt does not strand tombstone events in the heap.
  sim::TimerWheel coalesce_wheel_;
  sim::SimTime coalesce_usecs_;
  int coalesce_frames_;
  int pending_frames_ = 0;
  sim::SimTime last_fire_ = -1;
  sim::TimerWheel::TimerId coalesce_timer_ = sim::TimerWheel::kInvalidTimer;

  // Firmware reassembly state.
  struct Reassembly {
    std::vector<net::Buffer> parts;
    int received = 0;
    net::HeaderBlob inner;
    net::MacAddr src;
    std::uint16_t ethertype = 0;
  };
  std::unordered_map<std::uint64_t, Reassembly> reassembly_;
  std::uint64_t next_frag_id_ = 1;

  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t rx_ring_drops_ = 0;
  std::uint64_t rx_bad_fcs_ = 0;
  std::uint64_t rx_oversize_drops_ = 0;
  std::uint64_t rx_frag_drops_ = 0;
  std::uint64_t irqs_fired_ = 0;
};

}  // namespace clicsim::hw
