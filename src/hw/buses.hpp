// Memory bus and PCI bus models, and the DMA engine that couples them.
//
// MemoryBus is the shared bandwidth pool DMA data and CPU copy traffic flow
// through; it is what makes TCP/IP's extra copies expensive beyond their
// CPU time (the paper's section 2 argument). CPU copies post their traffic
// (2 bytes of bus traffic per byte copied) fire-and-forget; DMA transfers
// wait for both the PCI transaction and their memory traffic, so heavy copy
// pressure slows DMA — the direction of coupling that matters for the
// reproduced results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "hw/params.hpp"
#include "sim/inline_function.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::hw {

// Invokes `done` once `count` completions have arrived. Returns a copyable
// std::function on purpose — the join is handed to several parties; each
// copy converts to a sim::Action (16-byte shared_ptr capture) at the point
// of use.
inline std::function<void()> make_join(int count, sim::Action done) {
  struct State {
    int remaining;
    sim::Action done;
  };
  auto state = std::make_shared<State>(State{count, std::move(done)});
  return [state] {
    if (--state->remaining == 0 && state->done) state->done();
  };
}

class MemoryBus {
 public:
  MemoryBus(sim::Simulator& sim, const HostParams& params, std::string name)
      : bytes_per_s_(params.mem_bus_bytes_per_s),
        res_(sim, std::move(name)) {}

  // Occupies the bus for `bytes` of raw traffic; optional completion.
  sim::SimTime traffic(std::int64_t bytes, sim::Action done = {}) {
    return res_.submit(sim::transfer_time(bytes, bytes_per_s_),
                       std::move(done));
  }

  [[nodiscard]] double bytes_per_s() const { return bytes_per_s_; }

  // Bus pressure of a CPU copy: every copied byte is read and written.
  void copy_pressure(std::int64_t bytes) { traffic(2 * bytes); }

  // Bus pressure of a CPU checksum pass: every byte is read once.
  void checksum_pressure(std::int64_t bytes) { traffic(bytes); }

  [[nodiscard]] double utilization() const { return res_.utilization(); }
  [[nodiscard]] sim::SimTime busy_time() const { return res_.busy_time(); }

 private:
  double bytes_per_s_;
  sim::FifoResource res_;
};

class PciBus {
 public:
  PciBus(sim::Simulator& sim, PciParams params, std::string name)
      : params_(params), res_(sim, std::move(name)) {}

  // Bus occupancy of one transaction moving `bytes` at `efficiency` of peak.
  [[nodiscard]] sim::SimTime transaction_time(std::int64_t bytes,
                                              double efficiency) const {
    return sim::transfer_time(bytes,
                              params_.peak_bytes_per_s() * efficiency);
  }

  // Queues a bus transaction; `done` fires when it completes.
  void transfer(sim::SimTime occupancy, sim::Action done = {}) {
    res_.submit(occupancy, std::move(done));
  }

  // Queues occupancy only; returns the completion time.
  sim::SimTime occupy(sim::SimTime occupancy) {
    return res_.submit(occupancy);
  }

  [[nodiscard]] const PciParams& params() const { return params_; }
  [[nodiscard]] double utilization() const { return res_.utilization(); }
  [[nodiscard]] sim::SimTime busy_time() const { return res_.busy_time(); }
  [[nodiscard]] std::uint64_t transactions() const { return res_.uses(); }

 private:
  PciParams params_;
  sim::FifoResource res_;
};

// Bus-master DMA engine of one NIC: moves data between host memory and the
// card across the shared PCI bus, touching the memory bus for every byte.
class DmaEngine {
 public:
  DmaEngine(sim::Simulator& sim, PciBus& pci, MemoryBus& mem,
            const NicProfile& profile)
      : sim_(&sim), pci_(&pci), mem_(&mem), profile_(&profile) {}

  // Transfers `bytes` described by `fragments` scatter/gather elements.
  // `done` fires when both the PCI transaction and the memory traffic have
  // completed.
  //
  // `overlap_credit` models transfers that proceed concurrently with
  // another pipeline stage (a receiving card DMAs the frame to host memory
  // while it is still arriving off the wire): the busses stay occupied for
  // the full durations, but completion is advanced by up to `credit`.
  void transfer(std::int64_t bytes, int fragments, sim::Action done,
                sim::SimTime overlap_credit = 0);

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::int64_t bytes_moved() const { return bytes_; }

 private:
  sim::Simulator* sim_;
  PciBus* pci_;
  MemoryBus* mem_;
  const NicProfile* profile_;
  std::uint64_t transfers_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace clicsim::hw
