#include "hw/nic.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::hw {

Nic::Nic(sim::Simulator& sim, NicProfile profile, PciBus& pci, MemoryBus& mem,
         InterruptController& intc, int irq, net::MacAddr mac,
         std::string name)
    : sim_(&sim),
      profile_(std::move(profile)),
      dma_(sim, pci, mem, profile_),
      intc_(&intc),
      irq_(irq),
      mac_(mac),
      name_(std::move(name)),
      mtu_(profile_.max_mtu),
      coalesce_wheel_(sim),
      coalesce_usecs_(profile_.coalesce_usecs),
      coalesce_frames_(profile_.coalesce_frames) {}

void Nic::attach_link(net::Link& link, int end) {
  link_ = &link;
  link_end_ = end;
  link.attach(end, this);
}

void Nic::set_mtu(std::int64_t mtu) {
  if (mtu < 64 || mtu > profile_.max_mtu) {
    throw std::invalid_argument("Nic::set_mtu: outside card capability");
  }
  mtu_ = mtu;
}

void Nic::set_coalescing(sim::SimTime usecs, int frames) {
  coalesce_usecs_ = std::max<sim::SimTime>(usecs, 0);
  coalesce_frames_ = std::max(frames, 1);
}

bool Nic::post_tx(TxRequest request) {
  if (link_ == nullptr) {
    throw std::logic_error("Nic::post_tx: no link attached");
  }
  const bool oversize = request.frame.payload_bytes() > mtu_;
  if (oversize && !profile_.on_nic_fragmentation) {
    throw std::logic_error(
        "Nic::post_tx: frame exceeds MTU and card cannot fragment");
  }
  if (request.sg_fragments > 1 && !profile_.scatter_gather) {
    throw std::logic_error(
        "Nic::post_tx: scatter/gather list on a card without S/G support");
  }
  if (tx_in_flight_ >= profile_.tx_ring) return false;

  ++tx_in_flight_;
  const std::int64_t dma_bytes = request.frame.frame_bytes();
  tx_inflight_.push_back(TxInFlight{std::move(request.frame),
                                    std::move(request.on_descriptor_done)});
  dma_.transfer(dma_bytes, request.sg_fragments,
                [this] { tx_dma_complete(); });
  return true;
}

void Nic::tx_dma_complete() {
  TxInFlight tx = std::move(tx_inflight_.front());
  tx_inflight_.pop_front();
  --tx_in_flight_;
  if (tx.done) tx.done();
  sim_->after(profile_.tx_fifo_latency,
              [this, frame = std::move(tx.frame)]() mutable {
                transmit_wire_frames(std::move(frame));
              });
}

void Nic::post_tx_pio(net::Frame frame) {
  if (link_ == nullptr) {
    throw std::logic_error("Nic::post_tx_pio: no link attached");
  }
  sim_->after(profile_.tx_fifo_latency,
              [this, frame = std::move(frame)]() mutable {
                transmit_wire_frames(std::move(frame));
              });
}

void Nic::fw_transmit(net::Frame frame) {
  if (link_ == nullptr) {
    throw std::logic_error("Nic::fw_transmit: no link attached");
  }
  transmit_wire_frames(std::move(frame));
}

void Nic::transmit_wire_frames(net::Frame frame) {
  if (stalled_) {
    // The TX FIFO is wedged: the frame is lost inside the card.
    ++stall_drops_;
    return;
  }
  if (frame.payload_bytes() <= mtu_) {
    ++tx_frames_;
    sim::SimTime credit = 0;
    if (profile_.early_transmit) {
      credit = std::max<sim::SimTime>(
          link_->transmission_time(frame) - profile_.early_tx_tail, 0);
    }
    link_->send(link_end_, std::move(frame), {}, credit);
    return;
  }

  // Firmware fragmentation: split the payload into MTU-sized wire frames.
  // Fragment 0 carries the original upper-protocol header; all fragments
  // carry the 8-byte firmware header. Firmware processing time is charged
  // per fragment and does not touch the host CPU.
  const std::uint64_t id = next_frag_id_++;
  const std::int64_t total = frame.payload.size();
  const std::int64_t first_room =
      mtu_ - kNicFragHeaderBytes - frame.header.wire_bytes();
  const std::int64_t rest_room = mtu_ - kNicFragHeaderBytes;
  if (first_room <= 0 || rest_room <= 0) {
    throw std::logic_error("Nic: MTU too small for fragmentation headers");
  }

  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;  // offset, len
  std::int64_t off = 0;
  ranges.emplace_back(0, std::min(first_room, total));
  off = ranges.back().second;
  while (off < total) {
    const std::int64_t len = std::min(rest_room, total - off);
    ranges.emplace_back(off, len);
    off += len;
  }

  const auto count = static_cast<std::int32_t>(ranges.size());
  sim::SimTime firmware_clock = 0;
  for (std::int32_t i = 0; i < count; ++i) {
    NicFragHeader fh;
    fh.id = id;
    fh.index = i;
    fh.count = count;
    fh.total_payload = total;
    if (i == 0) fh.inner = frame.header;

    net::Frame wire;
    wire.dst = frame.dst;
    wire.src = frame.src;
    wire.ethertype = frame.ethertype;
    wire.payload = frame.payload.slice(ranges[static_cast<std::size_t>(i)].first,
                                       ranges[static_cast<std::size_t>(i)].second);
    const std::int64_t hdr_bytes =
        kNicFragHeaderBytes + (i == 0 ? frame.header.wire_bytes() : 0);
    wire.header = net::HeaderBlob::of(std::move(fh), hdr_bytes);

    firmware_clock += sim::transfer_time(wire.payload.size(),
                                         profile_.nic_proc_bytes_per_s);
    ++tx_frames_;
    sim_->after(firmware_clock, [this, wire = std::move(wire)]() mutable {
      link_->send(link_end_, std::move(wire));
    });
  }
}

void Nic::frame_arrived(net::Frame frame) {
  if (stalled_) {
    // A wedged card posts no RX buffers: the wire-side frame is lost.
    ++stall_drops_;
    return;
  }
  if (!frame.fcs_ok) {
    ++rx_bad_fcs_;
    return;
  }
  if (!(frame.dst == mac_) && !frame.dst.is_multicast()) {
    return;  // not for us (flooded unknown unicast)
  }
  if (frame.dst.is_multicast() && !frame.dst.is_broadcast() &&
      multicast_groups_.count(frame.dst) == 0) {
    return;  // multicast group we have not joined
  }
  if (fw_sink_ && frame.ethertype == fw_ethertype_) {
    // Firmware-terminated protocol (NIC-resident collectives): consumed
    // inside the card after per-byte firmware processing.
    const sim::SimTime proc = sim::transfer_time(
        frame.payload.size(), profile_.nic_proc_bytes_per_s);
    sim_->after(proc, [this, frame = std::move(frame)]() mutable {
      fw_sink_(std::move(frame));
    });
    return;
  }
  if (frame.payload_bytes() > mtu_) {
    // Jumbo interoperability: the receiver must also run the larger MTU.
    ++rx_oversize_drops_;
    return;
  }
  if (frame.header.get<NicFragHeader>() != nullptr) {
    if (!profile_.on_nic_fragmentation) {
      ++rx_frag_drops_;
      return;
    }
    handle_frag_frame(std::move(frame));
    return;
  }
  accept_rx(std::move(frame));
}

void Nic::handle_frag_frame(net::Frame frame) {
  const auto* fh = frame.header.get<NicFragHeader>();
  auto& re = reassembly_[fh->id];
  if (re.parts.empty()) {
    re.parts.resize(static_cast<std::size_t>(fh->count));
    re.src = frame.src;
    re.ethertype = frame.ethertype;
  }
  if (fh->index == 0) re.inner = fh->inner;
  auto& slot = re.parts[static_cast<std::size_t>(fh->index)];
  if (slot.size() == 0) {
    slot = frame.payload;
    ++re.received;
  }

  // Firmware reassembly cost per fragment.
  const sim::SimTime proc = sim::transfer_time(
      frame.payload.size(), profile_.nic_proc_bytes_per_s);

  if (re.received < fh->count) {
    (void)proc;  // partial fragments cost firmware time only
    return;
  }

  net::BufferChain chain;
  for (auto& p : re.parts) chain.append(std::move(p));
  net::Frame whole;
  whole.dst = mac_;
  whole.src = re.src;
  whole.ethertype = re.ethertype;
  whole.header = re.inner;
  whole.payload = chain.flatten();
  reassembly_.erase(fh->id);

  sim_->after(proc, [this, whole = std::move(whole)]() mutable {
    // Reassembled packets bypass the per-frame MTU check: the host sees one
    // large packet, which is the feature's entire point.
    accept_rx(std::move(whole));
  });
}

void Nic::accept_rx(net::Frame frame) {
  if (rx_ring_used_ >= profile_.rx_ring) {
    ++rx_ring_drops_;
    return;
  }
  ++rx_ring_used_;
  const std::int64_t bytes = frame.frame_bytes();
  // Early receive DMA: the card moves data to the host ring while the frame
  // is still arriving off the wire, so at frame-complete only the residual
  // lag of the (slower) PCI transfer remains.
  const sim::SimTime credit =
      link_ != nullptr
          ? sim::transmission_time(frame.wire_bytes(),
                                   link_->params().bits_per_s)
          : 0;
  sim_->after(profile_.rx_fifo_latency, [this, bytes, credit,
                                         frame = std::move(frame)]() mutable {
    dma_.transfer(
        bytes, 1,
        [this, frame = std::move(frame)]() mutable {
          ++rx_frames_;
          if (rx_bypass_) {
            --rx_ring_used_;  // user descriptor, not a ring slot
            rx_bypass_(std::move(frame));
            return;
          }
          rx_queue_.push_back(std::move(frame));
          coalesce_on_frame();
        },
        credit);
  });
}

std::optional<net::Frame> Nic::rx_pop() {
  if (rx_queue_.empty()) return std::nullopt;
  net::Frame f = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  --rx_ring_used_;
  return f;
}

void Nic::coalesce_on_frame() {
  ++pending_frames_;
  if (coalesce_frames_ <= 1 || coalesce_usecs_ <= 0) {
    fire_interrupt();
    return;
  }
  if (pending_frames_ >= coalesce_frames_) {
    fire_interrupt();
    return;
  }
  // Fire immediately when the line has been quiet for a full coalescing
  // window (keeps single-packet latency low); otherwise batch.
  const sim::SimTime due = last_fire_ + coalesce_usecs_;
  if (last_fire_ < 0 || due <= sim_->now()) {
    fire_interrupt();
    return;
  }
  if (coalesce_timer_ == sim::TimerWheel::kInvalidTimer) {
    coalesce_timer_ = coalesce_wheel_.schedule_at(due, [this] {
      coalesce_timer_ = sim::TimerWheel::kInvalidTimer;
      if (pending_frames_ > 0) fire_interrupt();
    });
  }
}

void Nic::fire_interrupt() {
  pending_frames_ = 0;
  if (coalesce_timer_ != sim::TimerWheel::kInvalidTimer) {
    coalesce_wheel_.cancel(coalesce_timer_);
    coalesce_timer_ = sim::TimerWheel::kInvalidTimer;
  }
  last_fire_ = sim_->now();
  ++irqs_fired_;
  intc_->raise(irq_);
}

}  // namespace clicsim::hw
