// Interrupt controller: routes device interrupts to CPU interrupt-priority
// work with a dispatch latency, and latches re-raises while a line's handler
// is active (level-triggered semantics: the handler re-runs once after EOI
// if the device raised again meanwhile).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/cpu.hpp"
#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"

namespace clicsim::hw {

class InterruptController {
 public:
  static constexpr int kMaxIrqs = 16;

  InterruptController(sim::Simulator& sim, Cpu& cpu)
      : sim_(&sim), cpu_(&cpu), lines_(kMaxIrqs) {}

  // The handler runs at interrupt priority after the dispatch latency and
  // the ISR prologue cost. It must call `eoi(irq)` when the ISR logically
  // completes (possibly after charging further CPU work).
  void register_handler(int irq, sim::Action handler);

  void raise(int irq);
  void eoi(int irq);

  [[nodiscard]] std::uint64_t raised(int irq) const {
    return lines_[static_cast<std::size_t>(irq)].raised;
  }
  [[nodiscard]] std::uint64_t delivered(int irq) const {
    return lines_[static_cast<std::size_t>(irq)].delivered;
  }

 private:
  struct Line {
    sim::Action handler;
    bool active = false;   // ISR dispatched, EOI not yet received
    bool pending = false;  // raised while active
    std::uint64_t raised = 0;
    std::uint64_t delivered = 0;
  };

  void dispatch(int irq);

  sim::Simulator* sim_;
  Cpu* cpu_;
  std::vector<Line> lines_;
};

}  // namespace clicsim::hw
