// Central calibration constants for the hardware and OS substrate.
//
// Defaults reproduce the paper's testbed: ~1.5 GHz Pentium-class PCs,
// 33 MHz/32-bit PCI, PC133-era memory, SMC9462TX / 3C996-T Gigabit NICs.
// Timing constants the paper states explicitly (0.65 us syscall round trip,
// 0.7 us CLIC_MODULE send, 4 us driver send, ~20 us receive interrupt path)
// appear either here or in the protocol configs; everything else is
// calibrated so the headline results land near the published values (see
// EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace clicsim::hw {

struct HostParams {
  double cpu_ghz = 1.5;

  // System call: enter + leave ~= 0.65 us total (paper, section 3.1).
  sim::SimTime syscall_enter = sim::nanoseconds(300);
  sim::SimTime syscall_exit = sim::nanoseconds(350);

  // Interrupt path: controller/kernel dispatch until the ISR starts, ISR
  // prologue, and per-frame driver receive handling.
  sim::SimTime irq_dispatch = sim::microseconds(2.2);
  sim::SimTime isr_entry = sim::microseconds(1.0);
  sim::SimTime isr_per_frame = sim::microseconds(4.0);
  // Fig. 8b direct-dispatch path: the driver does only ring bookkeeping
  // before calling the protocol module straight from the ISR.
  sim::SimTime isr_per_frame_direct = sim::microseconds(1.0);

  sim::SimTime skbuff_alloc = sim::microseconds(4.5);
  sim::SimTime bottom_half_dispatch = sim::microseconds(3.5);
  sim::SimTime context_switch = sim::microseconds(1.3);
  sim::SimTime process_wakeup = sim::microseconds(0.8);

  // Effective CPU data-touch rates (already include cache effects).
  double cpu_copy_bytes_per_s = 350e6;
  double cpu_checksum_bytes_per_s = 500e6;

  // Shared memory-bus budget for DMA traffic plus copy pressure.
  double mem_bus_bytes_per_s = 225e6;
};

struct PciParams {
  double clock_hz = 33e6;  // PCI 2.1, 33 MHz
  int width_bytes = 4;     // 32-bit

  [[nodiscard]] double peak_bytes_per_s() const {
    return clock_hz * width_bytes;  // 132 MB/s
  }
};

// Per-NIC capabilities and costs. Presets model the cards named in the
// paper; the exact silicon is irrelevant — what matters is which features
// (jumbo, scatter/gather, coalescing, on-NIC fragmentation) each provides
// and at what per-transaction cost.
struct NicProfile {
  std::string name = "smc9462";

  std::int64_t max_mtu = 9000;        // jumbo-capable
  bool scatter_gather = true;         // S/G bus-master DMA (enables 0-copy)
  bool on_nic_fragmentation = false;  // firmware frag/reassembly (future work)

  // Per-DMA-transaction fixed cost: descriptor fetch, doorbell, bus
  // acquisition and completion write-back — several non-burst PCI accesses
  // at 33 MHz.
  sim::SimTime dma_setup = sim::microseconds(1.0);
  sim::SimTime per_fragment = sim::nanoseconds(250);
  sim::SimTime tx_fifo_latency = sim::microseconds(0.2);
  sim::SimTime rx_fifo_latency = sim::microseconds(0.2);

  int tx_ring = 64;
  int rx_ring = 64;

  // Early transmit: the card starts serializing onto the wire once a FIFO
  // threshold is buffered, so the wire overlaps the (slower) tx DMA and a
  // frame reaches the far end shortly after its DMA completes. Wire
  // occupancy is charged in full either way.
  bool early_transmit = true;
  sim::SimTime early_tx_tail = sim::microseconds(2.0);

  // Interrupt coalescing defaults (drivers can adjust at runtime, as the
  // paper notes modern drivers allow).
  sim::SimTime coalesce_usecs = sim::microseconds(30.0);
  int coalesce_frames = 8;

  // PCI burst efficiency grows with transfer size (longer bursts amortize
  // arbitration and address phases): eff(n) = max * n / (n + halfpoint).
  double pci_eff_max = 0.63;
  std::int64_t pci_burst_halfpoint = 300;  // bytes

  [[nodiscard]] double pci_efficiency(std::int64_t bytes) const {
    if (bytes <= 0) return pci_eff_max;
    const double n = static_cast<double>(bytes);
    return pci_eff_max * n / (n + static_cast<double>(pci_burst_halfpoint));
  }

  // Firmware processing rate for on-NIC fragmentation/reassembly.
  double nic_proc_bytes_per_s = 400e6;

  // The paper's Gigabit cards (SMC9462TX / 3C996-T class).
  static NicProfile smc9462();
  // Alteon AceNIC GA620 (GAMMA's faster card: two MIPS cores, 2 MB DRAM).
  static NicProfile ga620();
  // Packet Engines GNIC-II (GAMMA's 9.5 us / 768 Mb/s configuration).
  static NicProfile gnic2();
  // 100 Mb/s Fast Ethernet card without S/G or jumbo (first CLIC version).
  static NicProfile fast_ether_100();
};

inline NicProfile NicProfile::smc9462() { return NicProfile{}; }

inline NicProfile NicProfile::ga620() {
  NicProfile p;
  p.name = "ga620";
  p.pci_eff_max = 0.92;  // on-card CPUs sustain long bursts
  p.pci_burst_halfpoint = 200;
  p.dma_setup = sim::microseconds(0.8);
  p.on_nic_fragmentation = true;  // firmware is programmable ([11])
  // The AceNIC's MIPS firmware adds noticeable per-frame store-and-forward
  // latency (why GAMMA measured 32 us on it vs 9.5 us on the dumb GNIC-II).
  p.tx_fifo_latency = sim::microseconds(5.0);
  p.rx_fifo_latency = sim::microseconds(5.0);
  return p;
}

inline NicProfile NicProfile::gnic2() {
  NicProfile p;
  p.name = "gnic2";
  p.max_mtu = 1500;  // no jumbo frames
  p.pci_eff_max = 0.88;
  p.pci_burst_halfpoint = 250;
  p.dma_setup = sim::microseconds(0.6);
  return p;
}

inline NicProfile NicProfile::fast_ether_100() {
  NicProfile p;
  p.name = "fe100";
  p.max_mtu = 1500;
  p.scatter_gather = false;  // forces the copy-through-system-memory path
  p.coalesce_frames = 1;     // no coalescing support
  p.coalesce_usecs = 0;
  p.pci_eff_max = 0.50;
  p.early_transmit = false;  // strict store-and-forward FIFO
  return p;
}

}  // namespace clicsim::hw
