// NIC-resident collective offload.
//
// One engine rides each NIC's firmware. The engines of a job arrange
// themselves into the same binomial tree the host-level MPI collectives
// use, but run it entirely on the cards: a child's contribution frame is
// combined and forwarded by firmware the moment it arrives off the wire —
// no host DMA, no interrupt, no kernel scheduling on the interior hops.
// The host posts one descriptor per collective and gets one completion
// callback; everything between is card-to-card traffic on a reserved
// ethertype (0x88B7) that the NIC terminates inside the firmware
// (Nic::set_fw_sink), so interior ranks' CPUs never wake up.
//
// This is the "contender" bench/collective_scale races against the
// host-tree collectives: at large node counts the per-hop saving (two PCI
// crossings + interrupt + wakeup per tree level) compounds with tree
// depth, and the crossover against host trees over CLIC/TCP is the
// figure's point.
//
// Ops are keyed by (op, root, seq); every rank must issue the same
// collectives in the same order (the usual MPI contract), but frames for a
// rank's op may arrive before the local host posts it — early arrivals
// park in the op state. All inter-rank communication is frame traffic over
// links, so sharded (PDES) runs stay bit-identical to single-shard runs.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "hw/nic.hpp"
#include "net/buffer.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace clicsim::hw {

inline constexpr std::uint16_t kCollectiveEtherType = 0x88B7;

enum class CollOp : std::uint8_t { kBarrier = 0, kBcast = 1, kAllreduce = 2 };

// Wire header of a collective frame (8 bytes on the wire).
struct CollHeader {
  std::uint8_t op = 0;
  std::uint8_t phase = 0;  // 0 = up (fan-in toward root), 1 = down (fan-out)
  std::uint16_t root = 0;
  std::uint32_t seq = 0;

  // Cross-shard confinement hook (see net::Frame::detach): plain data.
  void detach_shared() {}
};
inline constexpr std::int64_t kCollHeaderBytes = 8;

// Firmware handling charge per originated frame (tree hop): descriptor
// decode + header build inside the card.
struct NicCollectiveParams {
  sim::SimTime fw_op_latency = sim::microseconds(2.0);
};

class NicCollectiveEngine {
 public:
  using Params = NicCollectiveParams;

  // `rank_macs[r]` is rank r's NIC MAC (rank_macs.size() == job size).
  // Registers the engine as the NIC's firmware sink for the collective
  // ethertype; the NIC must outlive the engine.
  NicCollectiveEngine(Nic& nic, int rank, std::vector<net::MacAddr> rank_macs,
                      Params params = {});

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(macs_.size()); }

  // --- Host-facing descriptors -------------------------------------------
  // Each posts one collective; `done` fires (on this NIC's simulator) when
  // the op completes at this rank. Ranks must agree on `seq` per op — a
  // per-communicator monotone counter satisfies this.

  void barrier(std::uint32_t seq, std::function<void()> done);

  // Root passes the payload (must fit one wire MTU); other ranks receive it.
  void bcast(std::uint32_t seq, int root, net::Buffer payload,
             std::function<void(net::Buffer)> done);

  // Element-wise-sum semantics, modelled as the host collectives do (the
  // combined buffer is zeros of the widest contribution); the cost model —
  // firmware combine at wire arrival, log-depth fan-in to rank 0, fan-out
  // down the same tree — is what the benchmark measures.
  void allreduce(std::uint32_t seq, net::Buffer contribution,
                 std::function<void(net::Buffer)> done);

  // --- Statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t combines() const { return combines_; }
  [[nodiscard]] std::uint64_t ops_completed() const { return ops_completed_; }

 private:
  struct Op {
    bool host_posted = false;
    bool released = false;    // down phase reached this rank
    int up_seen = 0;          // child contributions arrived
    std::int64_t acc_bytes = 0;
    net::Buffer payload;      // bcast/allreduce result travelling down
    std::function<void(net::Buffer)> done;
  };

  static std::uint64_t key(CollOp op, int root, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(op) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(root))
            << 32) |
           seq;
  }

  // Binomial-tree shape relative to `root` (matches the host bcast tree).
  [[nodiscard]] int relative(int root) const {
    return (rank_ - root + size()) % size();
  }
  [[nodiscard]] int parent_of(int root) const;
  [[nodiscard]] std::vector<int> children_of(int root) const;

  void on_frame(net::Frame frame);
  void post_up(CollOp op, int root, std::uint32_t seq, net::Buffer data,
               std::function<void(net::Buffer)> done);
  void advance_up(CollOp op, int root, std::uint32_t seq, Op& op_state);
  void release(CollOp op, int root, std::uint32_t seq, Op& op_state);
  void finish(CollOp op, int root, std::uint32_t seq, Op& op_state);
  void send_frame(int dst_rank, CollOp op, std::uint8_t phase, int root,
                  std::uint32_t seq, net::Buffer payload);

  Nic* nic_;
  sim::Simulator* sim_;
  int rank_;
  std::vector<net::MacAddr> macs_;
  Params params_;
  std::unordered_map<std::uint64_t, Op> ops_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t combines_ = 0;
  std::uint64_t ops_completed_ = 0;
};

}  // namespace clicsim::hw
