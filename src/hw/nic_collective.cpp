#include "hw/nic_collective.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::hw {

namespace {

// Lowest set bit of the relative rank; for the root (relative 0) the
// smallest power of two covering the whole job, so children_of yields every
// power-of-two offset below n — the host binomial tree's shape exactly.
int low_bit_span(int relative, int n) {
  if (relative != 0) return relative & -relative;
  int span = 1;
  while (span < n) span <<= 1;
  return span;
}

}  // namespace

NicCollectiveEngine::NicCollectiveEngine(Nic& nic, int rank,
                                         std::vector<net::MacAddr> rank_macs,
                                         Params params)
    : nic_(&nic),
      sim_(&nic.sim()),
      rank_(rank),
      macs_(std::move(rank_macs)),
      params_(params) {
  if (macs_.empty() || rank_ < 0 || rank_ >= size()) {
    throw std::invalid_argument("NicCollectiveEngine: bad rank/job size");
  }
  nic_->set_fw_sink(kCollectiveEtherType,
                    [this](net::Frame f) { on_frame(std::move(f)); });
}

int NicCollectiveEngine::parent_of(int root) const {
  const int rel = relative(root);
  if (rel == 0) return -1;
  const int parent_rel = rel & (rel - 1);  // clear the lowest set bit
  return (parent_rel + root) % size();
}

std::vector<int> NicCollectiveEngine::children_of(int root) const {
  const int rel = relative(root);
  const int n = size();
  std::vector<int> out;
  // Largest subtree first, matching the host tree's send order.
  for (int m = low_bit_span(rel, n) >> 1; m > 0; m >>= 1) {
    if (rel + m < n) out.push_back((rel + m + root) % n);
  }
  return out;
}

void NicCollectiveEngine::barrier(std::uint32_t seq,
                                  std::function<void()> done) {
  post_up(CollOp::kBarrier, 0, seq, net::Buffer::zeros(0),
          [done = std::move(done)](net::Buffer) { done(); });
}

void NicCollectiveEngine::allreduce(std::uint32_t seq,
                                    net::Buffer contribution,
                                    std::function<void(net::Buffer)> done) {
  if (contribution.size() + kCollHeaderBytes > nic_->mtu()) {
    throw std::invalid_argument(
        "NicCollectiveEngine: contribution exceeds one wire MTU");
  }
  post_up(CollOp::kAllreduce, 0, seq, std::move(contribution),
          std::move(done));
}

void NicCollectiveEngine::bcast(std::uint32_t seq, int root,
                                net::Buffer payload,
                                std::function<void(net::Buffer)> done) {
  if (payload.size() + kCollHeaderBytes > nic_->mtu()) {
    throw std::invalid_argument(
        "NicCollectiveEngine: payload exceeds one wire MTU");
  }
  Op& st = ops_[key(CollOp::kBcast, root, seq)];
  st.host_posted = true;
  st.done = std::move(done);
  if (rank_ == root) {
    st.payload = std::move(payload);
    release(CollOp::kBcast, root, seq, st);
  } else if (st.released) {
    // The down frame beat the host's descriptor (firmware cut-through kept
    // forwarding regardless).
    finish(CollOp::kBcast, root, seq, st);
  }
}

void NicCollectiveEngine::post_up(CollOp op, int root, std::uint32_t seq,
                                  net::Buffer data,
                                  std::function<void(net::Buffer)> done) {
  Op& st = ops_[key(op, root, seq)];
  st.host_posted = true;
  st.done = std::move(done);
  st.acc_bytes = std::max(st.acc_bytes, data.size());
  advance_up(op, root, seq, st);
}

void NicCollectiveEngine::advance_up(CollOp op, int root, std::uint32_t seq,
                                     Op& op_state) {
  if (!op_state.host_posted) return;
  if (op_state.up_seen <
      static_cast<int>(children_of(root).size())) {
    return;
  }
  if (rank_ != root) {
    // Subtree complete: one combined contribution continues toward the
    // root; this rank now waits for the down wave.
    send_frame(parent_of(root), op, 0, root, seq,
               op == CollOp::kAllreduce
                   ? net::Buffer::zeros(op_state.acc_bytes)
                   : net::Buffer::zeros(0));
    return;
  }
  if (op == CollOp::kAllreduce) {
    op_state.payload = net::Buffer::zeros(op_state.acc_bytes);
  }
  release(op, root, seq, op_state);
}

void NicCollectiveEngine::release(CollOp op, int root, std::uint32_t seq,
                                  Op& op_state) {
  op_state.released = true;
  for (int child : children_of(root)) {
    send_frame(child, op, 1, root, seq, op_state.payload);
  }
  if (op_state.host_posted) finish(op, root, seq, op_state);
}

void NicCollectiveEngine::finish(CollOp op, int root, std::uint32_t seq,
                                 Op& op_state) {
  // Detach the completion from the map before running it: the callback may
  // immediately post the next collective and touch ops_.
  auto done = std::move(op_state.done);
  net::Buffer result = std::move(op_state.payload);
  ops_.erase(key(op, root, seq));
  ++ops_completed_;
  if (done) done(std::move(result));
}

void NicCollectiveEngine::send_frame(int dst_rank, CollOp op,
                                     std::uint8_t phase, int root,
                                     std::uint32_t seq, net::Buffer payload) {
  CollHeader h;
  h.op = static_cast<std::uint8_t>(op);
  h.phase = phase;
  h.root = static_cast<std::uint16_t>(root);
  h.seq = seq;

  net::Frame f;
  f.dst = macs_.at(static_cast<std::size_t>(dst_rank));
  f.src = nic_->mac();
  f.ethertype = kCollectiveEtherType;
  f.header = net::HeaderBlob::of(std::move(h), kCollHeaderBytes);
  f.payload = std::move(payload);

  ++frames_sent_;
  sim_->after(params_.fw_op_latency, [this, f = std::move(f)]() mutable {
    nic_->fw_transmit(std::move(f));
  });
}

void NicCollectiveEngine::on_frame(net::Frame frame) {
  const auto* h = frame.header.get<CollHeader>();
  if (h == nullptr) return;
  const auto op = static_cast<CollOp>(h->op);
  const int root = h->root;
  const std::uint32_t seq = h->seq;
  Op& st = ops_[key(op, root, seq)];

  if (h->phase == 0) {
    // Fan-in: combine the child's contribution in firmware.
    ++st.up_seen;
    ++combines_;
    st.acc_bytes = std::max(st.acc_bytes, frame.payload.size());
    advance_up(op, root, seq, st);
    return;
  }

  // Fan-out: forward down the tree immediately (cut-through — the local
  // host's descriptor, if any, is serviced independently).
  st.payload = std::move(frame.payload);
  release(op, root, seq, st);
}

}  // namespace clicsim::hw
