#include "hw/interrupt.hpp"

#include <stdexcept>
#include <utility>

namespace clicsim::hw {

void InterruptController::register_handler(int irq, sim::Action handler) {
  lines_.at(static_cast<std::size_t>(irq)).handler = std::move(handler);
}

void InterruptController::raise(int irq) {
  Line& line = lines_.at(static_cast<std::size_t>(irq));
  ++line.raised;
  if (line.active) {
    line.pending = true;
    return;
  }
  line.active = true;
  dispatch(irq);
}

void InterruptController::dispatch(int irq) {
  Line& line = lines_[static_cast<std::size_t>(irq)];
  if (!line.handler) {
    throw std::logic_error("InterruptController: raise on unhandled IRQ");
  }
  ++line.delivered;
  sim_->after(cpu_->params().irq_dispatch, [this, irq] {
    // The registered handler is move-only and stays on the line; invoke it
    // by reference when the ISR prologue finishes.
    cpu_->run(sim::CpuPriority::kInterrupt, cpu_->params().isr_entry,
              [this, irq] { lines_[static_cast<std::size_t>(irq)].handler(); });
  });
}

void InterruptController::eoi(int irq) {
  Line& line = lines_.at(static_cast<std::size_t>(irq));
  line.active = false;
  if (line.pending) {
    line.pending = false;
    line.active = true;
    dispatch(irq);
  }
}

}  // namespace clicsim::hw
