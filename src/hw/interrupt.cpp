#include "hw/interrupt.hpp"

#include <stdexcept>
#include <utility>

namespace clicsim::hw {

void InterruptController::register_handler(int irq,
                                           std::function<void()> handler) {
  lines_.at(static_cast<std::size_t>(irq)).handler = std::move(handler);
}

void InterruptController::raise(int irq) {
  Line& line = lines_.at(static_cast<std::size_t>(irq));
  ++line.raised;
  if (line.active) {
    line.pending = true;
    return;
  }
  line.active = true;
  dispatch(irq);
}

void InterruptController::dispatch(int irq) {
  Line& line = lines_[static_cast<std::size_t>(irq)];
  if (!line.handler) {
    throw std::logic_error("InterruptController: raise on unhandled IRQ");
  }
  ++line.delivered;
  sim_->after(cpu_->params().irq_dispatch, [this, irq] {
    Line& l = lines_[static_cast<std::size_t>(irq)];
    cpu_->run(sim::CpuPriority::kInterrupt, cpu_->params().isr_entry,
              [handler = l.handler] { handler(); });
  });
}

void InterruptController::eoi(int irq) {
  Line& line = lines_.at(static_cast<std::size_t>(irq));
  line.active = false;
  if (line.pending) {
    line.pending = false;
    line.active = true;
    dispatch(irq);
  }
}

}  // namespace clicsim::hw
