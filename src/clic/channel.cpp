#include "clic/channel.hpp"

#include <utility>

namespace clicsim::clic {

Channel::Channel(const Config& config, ChannelOps& ops, int peer)
    : config_(&config), ops_(&ops), peer_(peer) {}

void Channel::send(Packet packet, std::function<void()> on_acked) {
  packet.header.seq = next_seq_++;
  Unacked entry{std::move(packet), std::move(on_acked)};
  if (pending_.empty() && in_flight() < config_->window_packets) {
    transmit(entry.packet);
    unacked_.emplace(entry.packet.header.seq, std::move(entry));
    arm_rto();
  } else {
    pending_.push_back(std::move(entry));
  }
}

void Channel::transmit(Packet& packet) {
  packet.header.ack = take_piggyback_ack();
  ops_->emit_data(peer_, packet);
}

std::uint32_t Channel::take_piggyback_ack() {
  acks_owed_ = 0;
  // Cancel any pending delayed pure ack — this packet carries it.
  if (ack_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(ack_timer_);
    ack_timer_ = os::Kernel::kInvalidTimer;
  }
  return rx_next_;
}

void Channel::drain_pending() {
  while (!pending_.empty() && in_flight() < config_->window_packets) {
    Unacked entry = std::move(pending_.front());
    pending_.pop_front();
    transmit(entry.packet);
    const std::uint32_t seq = entry.packet.header.seq;
    unacked_.emplace(seq, std::move(entry));
  }
  if (!unacked_.empty()) arm_rto();
}

void Channel::process_ack(std::uint32_t ack) {
  bool advanced = false;
  while (!unacked_.empty() && unacked_.begin()->first < ack) {
    auto node = unacked_.extract(unacked_.begin());
    if (node.mapped().on_acked) node.mapped().on_acked();
    advanced = true;
  }
  if (!advanced) return;
  tx_base_ = ack;
  // Fresh progress: restart the retransmission clock.
  if (rto_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(rto_timer_);
    rto_timer_ = os::Kernel::kInvalidTimer;
  }
  if (!unacked_.empty()) arm_rto();
  drain_pending();
}

void Channel::arm_rto() {
  if (rto_timer_ != os::Kernel::kInvalidTimer) return;
  rto_timer_ = ops_->kernel().add_timer(config_->rto, [this] { rto_expired(); });
}

void Channel::rto_expired() {
  rto_timer_ = os::Kernel::kInvalidTimer;
  if (unacked_.empty()) return;
  // Selective repeat of the oldest outstanding packet; the reorder buffer
  // on the far side keeps later arrivals.
  ++retransmits_;
  Packet& oldest = unacked_.begin()->second.packet;
  // Retransmission must not re-trigger the caller's descriptor callback.
  oldest.on_descriptor_done = {};
  transmit(oldest);
  arm_rto();
}

void Channel::packet_in(const ClicHeader& header, net::HeaderBlob upper,
                        net::Buffer payload) {
  process_ack(header.ack);
  if (header.flags & flags::kPureAck) return;

  const bool wants_immediate_ack = (header.flags & flags::kAckRequested) != 0;

  if (header.seq < rx_next_) {
    // Duplicate (our ack was lost): re-ack right away so the sender stops.
    ++duplicates_;
    note_ack_owed(/*immediate=*/true);
    return;
  }

  if (header.seq > rx_next_) {
    ++out_of_order_;
    Packet p;
    p.header = header;
    p.upper = std::move(upper);
    p.payload = std::move(payload);
    reorder_.emplace(header.seq, std::move(p));
    note_ack_owed(wants_immediate_ack);
    return;
  }

  // In-order: deliver, then drain any consecutive buffered packets.
  Packet p;
  p.header = header;
  p.upper = std::move(upper);
  p.payload = std::move(payload);
  ++rx_next_;
  ops_->deliver(peer_, std::move(p));
  while (!reorder_.empty() && reorder_.begin()->first == rx_next_) {
    auto node = reorder_.extract(reorder_.begin());
    ++rx_next_;
    ops_->deliver(peer_, std::move(node.mapped()));
  }
  note_ack_owed(wants_immediate_ack);
}

void Channel::note_ack_owed(bool immediate) {
  ++acks_owed_;
  if (immediate || acks_owed_ >= config_->ack_every) {
    send_pure_ack();
    return;
  }
  if (ack_timer_ == os::Kernel::kInvalidTimer) {
    ack_timer_ = ops_->kernel().add_timer(config_->ack_delay, [this] {
      ack_timer_ = os::Kernel::kInvalidTimer;
      if (acks_owed_ > 0) send_pure_ack();
    });
  }
}

void Channel::send_pure_ack() {
  acks_owed_ = 0;
  if (ack_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(ack_timer_);
    ack_timer_ = os::Kernel::kInvalidTimer;
  }
  ++acks_sent_;
  ClicHeader h;
  h.type = PacketType::kInternal;
  h.flags = flags::kPureAck;
  h.ack = rx_next_;
  ops_->emit_ack(peer_, h);
}

}  // namespace clicsim::clic
