#include "clic/channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace clicsim::clic {

Channel::Channel(const Config& config, ChannelOps& ops, int peer)
    : config_(&config),
      ops_(&ops),
      peer_(peer),
      rto_rng_(config.seed ^ (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(peer)) *
                              0x9e3779b97f4a7c15ULL),
               "clic-rto") {
  if (config.adaptive) {
    cwnd_pkts_ = static_cast<double>(std::max(1, config.cwnd_init));
    ssthresh_ = config.window_packets;
    window_min_ = window_max_ = cwnd();
  }
}

int Channel::cwnd() const {
  if (!config_->adaptive) return config_->window_packets;
  return std::clamp(static_cast<int>(cwnd_pkts_), 1, config_->window_packets);
}

void Channel::send(Packet packet, SendCallback on_result) {
  packet.header.seq = next_seq_++;
  if (pending_reset_) {
    // First data after a give-up: tell the peer to skip the abandoned gap.
    packet.header.flags |= flags::kReset;
    pending_reset_ = false;
  }
  Unacked entry{std::move(packet), std::move(on_result)};
  if (config_->adaptive) {
    // Every adaptive send goes through the paced release path so the
    // congestion window and pacing gap apply uniformly.
    pending_.push_back(std::move(entry));
    pump_adaptive();
    return;
  }
  if (pending_.empty() && in_flight() < config_->window_packets) {
    transmit(entry.packet);
    unacked_.emplace(entry.packet.header.seq, std::move(entry));
    arm_rto();
  } else {
    pending_.push_back(std::move(entry));
  }
}

void Channel::pump_adaptive() {
  const sim::SimTime now = ops_->kernel().sim().now();
  // Congestion-window validation (RFC 2861): a window that was opened by a
  // previous burst says nothing about the path *now*. After an idle gap
  // longer than the RTO, restart from cwnd_init and let slow start re-probe
  // — under periodic incast this is what stops every wave from blasting the
  // stale window of the previous one into the same shallow queue.
  if (unacked_.empty() && !pending_.empty() && last_activity_ > 0 &&
      now - last_activity_ > current_rto() &&
      cwnd_pkts_ > static_cast<double>(config_->cwnd_init)) {
    cwnd_pkts_ = static_cast<double>(std::max(1, config_->cwnd_init));
  }
  while (!pending_.empty() && in_flight() < cwnd()) {
    if (now < pace_next_) {
      // Too soon after the previous release: wake up exactly at the pace
      // boundary. One timer at a time — the wake re-enters this pump.
      if (pace_timer_ == os::Kernel::kInvalidTimer) {
        pace_timer_ = ops_->kernel().add_timer(pace_next_ - now, [this] {
          pace_timer_ = os::Kernel::kInvalidTimer;
          pump_adaptive();
        });
      }
      break;
    }
    Unacked entry = std::move(pending_.front());
    pending_.pop_front();
    entry.sent_at = now;
    last_activity_ = now;
    transmit(entry.packet);
    const std::uint32_t seq = entry.packet.header.seq;
    unacked_.emplace(seq, std::move(entry));
    pace_next_ = now + config_->pacing_gap;
  }
  if (!unacked_.empty()) arm_rto();
}

void Channel::grow_window() {
  const int limit = config_->window_packets;
  if (cwnd_pkts_ >= static_cast<double>(limit)) return;
  if (static_cast<int>(cwnd_pkts_) < ssthresh_) {
    cwnd_pkts_ += 1.0;  // slow start: one packet per acked packet
  } else {
    cwnd_pkts_ += 1.0 / cwnd_pkts_;  // congestion avoidance: ~+1 per RTT
  }
  cwnd_pkts_ = std::min(cwnd_pkts_, static_cast<double>(limit));
  window_max_ = std::max(window_max_, cwnd());
}

void Channel::collapse_window() {
  ++window_collapses_;
  ssthresh_ = std::max(cwnd() / 2, 2);
  cwnd_pkts_ = static_cast<double>(std::max(1, config_->cwnd_init));
  window_min_ = std::min(window_min_, cwnd());
}

void Channel::retransmit_window() {
  // Go-back-N inside the send window: resend the cwnd oldest unacked
  // packets back-to-back. After an incast burst drops a run of consecutive
  // packets, resending only the head heals one sequence number per RTO —
  // N losses cost N×RTO. Resending a window per round (and a further
  // window on every partial ack) heals the whole run in ~one RTO.
  int budget = cwnd();
  for (auto& [seq, entry] : unacked_) {
    if (budget-- <= 0) break;
    entry.retransmitted = true;  // Karn: its ack yields no sample
    // Retransmission must not re-trigger the caller's descriptor callback.
    entry.packet.on_descriptor_done = {};
    ++retransmits_;
    transmit(entry.packet);
  }
}

void Channel::transmit(Packet& packet) {
  packet.header.ack = take_piggyback_ack();
  ops_->emit_data(peer_, packet);
}

std::uint32_t Channel::take_piggyback_ack() {
  acks_owed_ = 0;
  // Cancel any pending delayed pure ack — this packet carries it.
  if (ack_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(ack_timer_);
    ack_timer_ = os::Kernel::kInvalidTimer;
  }
  return rx_next_;
}

void Channel::drain_pending() {
  while (!pending_.empty() && in_flight() < config_->window_packets) {
    Unacked entry = std::move(pending_.front());
    pending_.pop_front();
    transmit(entry.packet);
    const std::uint32_t seq = entry.packet.header.seq;
    unacked_.emplace(seq, std::move(entry));
  }
  if (!unacked_.empty()) arm_rto();
}

void Channel::process_ack(std::uint32_t ack) {
  bool advanced = false;
  bool sampled = false;
  while (!unacked_.empty() && unacked_.begin()->first < ack) {
    auto node = unacked_.extract(unacked_.begin());
    if (config_->adaptive) {
      // Karn's rule: only packets transmitted exactly once yield samples —
      // a retransmitted packet's ack is ambiguous about which copy it acks.
      // Packets that waited in the peer's reorder buffer still sample:
      // their ack delay includes loss-recovery wait, which overestimates —
      // raising the RTO exactly when the path is struggling.
      if (!node.mapped().retransmitted) {
        rtt_.sample(ops_->kernel().sim().now() - node.mapped().sent_at);
        sampled = true;
      }
      grow_window();
    }
    if (node.mapped().on_result) node.mapped().on_result(true);
    advanced = true;
  }
  if (!advanced) return;
  tx_base_ = ack;
  if (config_->adaptive) last_activity_ = ops_->kernel().sim().now();
  // Fresh progress restarts the retransmission clock. The second half of
  // Karn's algorithm governs the backoff: in adaptive mode the backed-off
  // RTO is RETAINED until a never-retransmitted packet is acked (a valid
  // sample). During heavy recovery every ack covers retransmitted packets,
  // so resetting on mere progress would pin the RTO below the true
  // (queue-inflated) RTT and every window would time out spuriously
  // forever; retaining the backoff lets the RTO double past the real RTT,
  // after which a clean exchange samples it and re-bases the estimator.
  if (!config_->adaptive || sampled) backoff_level_ = 0;
  if (rto_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(rto_timer_);
    rto_timer_ = os::Kernel::kInvalidTimer;
  }
  if (config_->adaptive && in_recovery_) {
    if (ack >= recover_point_) {
      in_recovery_ = false;  // the whole loss episode is acknowledged
    } else {
      // NewReno-style partial ack: the cumulative ack advanced but stopped
      // short of the recovery point, so the next packets in the run are
      // also missing. Resend the next window now instead of idling until
      // another RTO expires.
      retransmit_window();
    }
  }
  if (!unacked_.empty()) arm_rto();
  if (config_->adaptive) {
    pump_adaptive();
  } else {
    drain_pending();
  }
}

sim::SimTime Channel::current_rto() const {
  if (config_->adaptive) {
    // The estimator replaces the fixed clock as the ladder's base; until
    // the first sample the configured rto seeds it. Consecutive expiries
    // double the deadline (classic RFC 6298 backoff) regardless of
    // rto_backoff, which exists to shape the fixed-clock ladder.
    double rto = static_cast<double>(
        rtt_.primed() ? rtt_.rto(config_->rto_min, config_->rto_max)
                      : config_->rto);
    for (int i = 0; i < backoff_level_; ++i) {
      rto *= 2.0;
      if (rto >= static_cast<double>(config_->rto_max)) break;
    }
    return std::min<sim::SimTime>(static_cast<sim::SimTime>(rto),
                                  config_->rto_max);
  }
  double rto = static_cast<double>(config_->rto);
  if (config_->rto_backoff > 1.0) {  // 1.0 = fixed clock, level-independent
    for (int i = 0; i < backoff_level_; ++i) {
      rto *= config_->rto_backoff;
      if (rto >= static_cast<double>(config_->rto_max)) break;
    }
  }
  return std::min<sim::SimTime>(static_cast<sim::SimTime>(rto),
                                config_->rto_max);
}

void Channel::arm_rto() {
  if (rto_timer_ != os::Kernel::kInvalidTimer) return;
  sim::SimTime rto = current_rto();
  if (config_->rto_jitter > 0.0) {
    // Deterministic jitter in ±rto_jitter, from the per-channel stream.
    const double spread =
        config_->rto_jitter * (2.0 * rto_rng_.uniform() - 1.0);
    rto = std::max<sim::SimTime>(
        1, static_cast<sim::SimTime>(static_cast<double>(rto) *
                                     (1.0 + spread)));
  }
  rto_timer_ = ops_->kernel().add_timer(rto, [this] { rto_expired(); });
}

void Channel::rto_expired() {
  rto_timer_ = os::Kernel::kInvalidTimer;
  if (unacked_.empty()) {
    backoff_level_ = 0;
    return;
  }
  ++timeouts_;
  if (backoff_level_ >= config_->max_retries) {
    give_up();
    return;
  }
  ++backoff_level_;
  if (config_->adaptive) {
    // Timeout response: halve ssthresh, collapse the window, and enter
    // loss recovery — everything up to next_seq_ is suspect, so resend a
    // window of it and let partial acks clock out the rest.
    collapse_window();
    in_recovery_ = true;
    recover_point_ = next_seq_;
    retransmit_window();
    arm_rto();
    return;
  }
  // Selective repeat of the oldest outstanding packet; the reorder buffer
  // on the far side keeps later arrivals.
  ++retransmits_;
  Unacked& head = unacked_.begin()->second;
  head.retransmitted = true;  // Karn: this packet's ack yields no sample
  Packet& oldest = head.packet;
  // Retransmission must not re-trigger the caller's descriptor callback.
  oldest.on_descriptor_done = {};
  transmit(oldest);
  arm_rto();
}

void Channel::give_up() {
  // Retry budget exhausted with zero ack progress: resolve every
  // outstanding send as failed rather than retrying forever. The sequence
  // space moves past the abandoned packets; the next data packet carries
  // kReset so a peer that comes back resynchronizes.
  ++gave_up_;
  backoff_level_ = 0;
  pending_reset_ = true;
  tx_base_ = next_seq_;
  if (config_->adaptive) {
    // Channel resync point: the path (and peer state) that produced the
    // samples may be gone. Forget the estimator, restart from cwnd_init,
    // and drop any scheduled paced release — there is nothing left to pace.
    rtt_.reset();
    cwnd_pkts_ = static_cast<double>(std::max(1, config_->cwnd_init));
    ssthresh_ = config_->window_packets;
    in_recovery_ = false;
    recover_point_ = 0;
    pace_next_ = 0;
    last_activity_ = 0;
    if (pace_timer_ != os::Kernel::kInvalidTimer) {
      ops_->kernel().cancel_timer(pace_timer_);
      pace_timer_ = os::Kernel::kInvalidTimer;
    }
  }
  auto unacked = std::move(unacked_);
  auto pending = std::move(pending_);
  unacked_.clear();
  pending_.clear();
  // Containers are detached first: a callback may immediately send() again.
  for (auto& [seq, entry] : unacked) {
    if (entry.on_result) entry.on_result(false);
  }
  for (auto& entry : pending) {
    // Window-blocked packets were never handed to the driver; release any
    // sync sender waiting on their DMA so it does not block forever on a
    // descriptor that will never be posted.
    if (entry.packet.on_descriptor_done) entry.packet.on_descriptor_done();
    if (entry.on_result) entry.on_result(false);
  }
}

void Channel::packet_in(const ClicHeader& header, net::HeaderBlob upper,
                        net::Buffer payload) {
  process_ack(header.ack);
  if (header.flags & flags::kPureAck) return;

  if ((header.flags & flags::kReset) && header.seq > rx_next_) {
    // The sender abandoned [rx_next_, seq) during an outage; adopt its new
    // base (forward only — a duplicated or reordered reset must not rewind).
    ++resets_accepted_;
    rx_next_ = header.seq;
    while (!reorder_.empty() && reorder_.begin()->first < rx_next_) {
      reorder_.erase(reorder_.begin());
    }
  }

  const bool wants_immediate_ack = (header.flags & flags::kAckRequested) != 0;

  if (header.seq < rx_next_) {
    // Duplicate (our ack was lost): re-ack right away so the sender stops.
    ++duplicates_;
    note_ack_owed(/*immediate=*/true);
    return;
  }

  if (header.seq > rx_next_) {
    ++out_of_order_;
    Packet p;
    p.header = header;
    p.upper = std::move(upper);
    p.payload = std::move(payload);
    reorder_.emplace(header.seq, std::move(p));
    // Adaptive mode acks a gap immediately: during loss recovery the
    // sender's retransmissions are clocked by arriving acks (each partial
    // ack releases the next window), so a promptly reported gap-fill is
    // what keeps recovery at RTT timescale instead of ack-delay timescale.
    note_ack_owed(wants_immediate_ack || config_->adaptive);
    return;
  }

  // In-order: deliver, then drain any consecutive buffered packets.
  Packet p;
  p.header = header;
  p.upper = std::move(upper);
  p.payload = std::move(payload);
  ++rx_next_;
  ops_->deliver(peer_, std::move(p));
  while (!reorder_.empty() && reorder_.begin()->first == rx_next_) {
    auto node = reorder_.extract(reorder_.begin());
    ++rx_next_;
    ops_->deliver(peer_, std::move(node.mapped()));
  }
  note_ack_owed(wants_immediate_ack);
}

void Channel::note_ack_owed(bool immediate) {
  ++acks_owed_;
  if (immediate || acks_owed_ >= config_->ack_every) {
    send_pure_ack();
    return;
  }
  if (ack_timer_ == os::Kernel::kInvalidTimer) {
    ack_timer_ = ops_->kernel().add_timer(config_->ack_delay, [this] {
      ack_timer_ = os::Kernel::kInvalidTimer;
      if (acks_owed_ > 0) send_pure_ack();
    });
  }
}

void Channel::send_pure_ack() {
  acks_owed_ = 0;
  if (ack_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(ack_timer_);
    ack_timer_ = os::Kernel::kInvalidTimer;
  }
  ++acks_sent_;
  ClicHeader h;
  h.type = PacketType::kInternal;
  h.flags = flags::kPureAck;
  h.ack = rx_next_;
  ops_->emit_ack(peer_, h);
}

}  // namespace clicsim::clic
