#include "clic/channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace clicsim::clic {

Channel::Channel(const Config& config, ChannelOps& ops, int peer)
    : config_(&config),
      ops_(&ops),
      peer_(peer),
      rto_rng_(config.seed ^ (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(peer)) *
                              0x9e3779b97f4a7c15ULL),
               "clic-rto") {}

void Channel::send(Packet packet, SendCallback on_result) {
  packet.header.seq = next_seq_++;
  if (pending_reset_) {
    // First data after a give-up: tell the peer to skip the abandoned gap.
    packet.header.flags |= flags::kReset;
    pending_reset_ = false;
  }
  Unacked entry{std::move(packet), std::move(on_result)};
  if (pending_.empty() && in_flight() < config_->window_packets) {
    transmit(entry.packet);
    unacked_.emplace(entry.packet.header.seq, std::move(entry));
    arm_rto();
  } else {
    pending_.push_back(std::move(entry));
  }
}

void Channel::transmit(Packet& packet) {
  packet.header.ack = take_piggyback_ack();
  ops_->emit_data(peer_, packet);
}

std::uint32_t Channel::take_piggyback_ack() {
  acks_owed_ = 0;
  // Cancel any pending delayed pure ack — this packet carries it.
  if (ack_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(ack_timer_);
    ack_timer_ = os::Kernel::kInvalidTimer;
  }
  return rx_next_;
}

void Channel::drain_pending() {
  while (!pending_.empty() && in_flight() < config_->window_packets) {
    Unacked entry = std::move(pending_.front());
    pending_.pop_front();
    transmit(entry.packet);
    const std::uint32_t seq = entry.packet.header.seq;
    unacked_.emplace(seq, std::move(entry));
  }
  if (!unacked_.empty()) arm_rto();
}

void Channel::process_ack(std::uint32_t ack) {
  bool advanced = false;
  while (!unacked_.empty() && unacked_.begin()->first < ack) {
    auto node = unacked_.extract(unacked_.begin());
    if (node.mapped().on_result) node.mapped().on_result(true);
    advanced = true;
  }
  if (!advanced) return;
  tx_base_ = ack;
  // Fresh progress: restart the retransmission clock and its backoff.
  backoff_level_ = 0;
  if (rto_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(rto_timer_);
    rto_timer_ = os::Kernel::kInvalidTimer;
  }
  if (!unacked_.empty()) arm_rto();
  drain_pending();
}

sim::SimTime Channel::current_rto() const {
  double rto = static_cast<double>(config_->rto);
  if (config_->rto_backoff > 1.0) {  // 1.0 = fixed clock, level-independent
    for (int i = 0; i < backoff_level_; ++i) {
      rto *= config_->rto_backoff;
      if (rto >= static_cast<double>(config_->rto_max)) break;
    }
  }
  return std::min<sim::SimTime>(static_cast<sim::SimTime>(rto),
                                config_->rto_max);
}

void Channel::arm_rto() {
  if (rto_timer_ != os::Kernel::kInvalidTimer) return;
  sim::SimTime rto = current_rto();
  if (config_->rto_jitter > 0.0) {
    // Deterministic jitter in ±rto_jitter, from the per-channel stream.
    const double spread =
        config_->rto_jitter * (2.0 * rto_rng_.uniform() - 1.0);
    rto = std::max<sim::SimTime>(
        1, static_cast<sim::SimTime>(static_cast<double>(rto) *
                                     (1.0 + spread)));
  }
  rto_timer_ = ops_->kernel().add_timer(rto, [this] { rto_expired(); });
}

void Channel::rto_expired() {
  rto_timer_ = os::Kernel::kInvalidTimer;
  if (unacked_.empty()) {
    backoff_level_ = 0;
    return;
  }
  ++timeouts_;
  if (backoff_level_ >= config_->max_retries) {
    give_up();
    return;
  }
  ++backoff_level_;
  // Selective repeat of the oldest outstanding packet; the reorder buffer
  // on the far side keeps later arrivals.
  ++retransmits_;
  Packet& oldest = unacked_.begin()->second.packet;
  // Retransmission must not re-trigger the caller's descriptor callback.
  oldest.on_descriptor_done = {};
  transmit(oldest);
  arm_rto();
}

void Channel::give_up() {
  // Retry budget exhausted with zero ack progress: resolve every
  // outstanding send as failed rather than retrying forever. The sequence
  // space moves past the abandoned packets; the next data packet carries
  // kReset so a peer that comes back resynchronizes.
  ++gave_up_;
  backoff_level_ = 0;
  pending_reset_ = true;
  tx_base_ = next_seq_;
  auto unacked = std::move(unacked_);
  auto pending = std::move(pending_);
  unacked_.clear();
  pending_.clear();
  // Containers are detached first: a callback may immediately send() again.
  for (auto& [seq, entry] : unacked) {
    if (entry.on_result) entry.on_result(false);
  }
  for (auto& entry : pending) {
    // Window-blocked packets were never handed to the driver; release any
    // sync sender waiting on their DMA so it does not block forever on a
    // descriptor that will never be posted.
    if (entry.packet.on_descriptor_done) entry.packet.on_descriptor_done();
    if (entry.on_result) entry.on_result(false);
  }
}

void Channel::packet_in(const ClicHeader& header, net::HeaderBlob upper,
                        net::Buffer payload) {
  process_ack(header.ack);
  if (header.flags & flags::kPureAck) return;

  if ((header.flags & flags::kReset) && header.seq > rx_next_) {
    // The sender abandoned [rx_next_, seq) during an outage; adopt its new
    // base (forward only — a duplicated or reordered reset must not rewind).
    ++resets_accepted_;
    rx_next_ = header.seq;
    while (!reorder_.empty() && reorder_.begin()->first < rx_next_) {
      reorder_.erase(reorder_.begin());
    }
  }

  const bool wants_immediate_ack = (header.flags & flags::kAckRequested) != 0;

  if (header.seq < rx_next_) {
    // Duplicate (our ack was lost): re-ack right away so the sender stops.
    ++duplicates_;
    note_ack_owed(/*immediate=*/true);
    return;
  }

  if (header.seq > rx_next_) {
    ++out_of_order_;
    Packet p;
    p.header = header;
    p.upper = std::move(upper);
    p.payload = std::move(payload);
    reorder_.emplace(header.seq, std::move(p));
    note_ack_owed(wants_immediate_ack);
    return;
  }

  // In-order: deliver, then drain any consecutive buffered packets.
  Packet p;
  p.header = header;
  p.upper = std::move(upper);
  p.payload = std::move(payload);
  ++rx_next_;
  ops_->deliver(peer_, std::move(p));
  while (!reorder_.empty() && reorder_.begin()->first == rx_next_) {
    auto node = reorder_.extract(reorder_.begin());
    ++rx_next_;
    ops_->deliver(peer_, std::move(node.mapped()));
  }
  note_ack_owed(wants_immediate_ack);
}

void Channel::note_ack_owed(bool immediate) {
  ++acks_owed_;
  if (immediate || acks_owed_ >= config_->ack_every) {
    send_pure_ack();
    return;
  }
  if (ack_timer_ == os::Kernel::kInvalidTimer) {
    ack_timer_ = ops_->kernel().add_timer(config_->ack_delay, [this] {
      ack_timer_ = os::Kernel::kInvalidTimer;
      if (acks_owed_ > 0) send_pure_ack();
    });
  }
}

void Channel::send_pure_ack() {
  acks_owed_ = 0;
  if (ack_timer_ != os::Kernel::kInvalidTimer) {
    ops_->kernel().cancel_timer(ack_timer_);
    ack_timer_ = os::Kernel::kInvalidTimer;
  }
  ++acks_sent_;
  ClicHeader h;
  h.type = PacketType::kInternal;
  h.flags = flags::kPureAck;
  h.ack = rx_next_;
  ops_->emit_ack(peer_, h);
}

}  // namespace clicsim::clic
