// The per-node-pair reliable channel: sliding window, cumulative
// acknowledgements with piggybacking, retransmission on timeout, in-order
// delivery with an out-of-order reorder buffer (needed under channel
// bonding, which stripes packets across NICs).
//
// Bounded-failure semantics: consecutive retransmission timeouts back off
// geometrically (with deterministic jitter) and are budgeted — after
// `Config::max_retries` expiries with no ack progress the channel gives up,
// resolving every outstanding send as failed instead of retrying forever.
// The next data packet then carries a reset flag so a peer that recovers
// later resynchronizes its receive sequence past the abandoned gap.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "clic/config.hpp"
#include "clic/header.hpp"
#include "clic/rtt.hpp"
#include "net/buffer.hpp"
#include "os/kernel.hpp"
#include "sim/random.hpp"

namespace clicsim::clic {

// One CLIC packet plus its simulation-side bookkeeping.
struct Packet {
  ClicHeader header;
  net::HeaderBlob upper;  // upper-layer header (first fragment only)
  net::Buffer payload;
  bool user_memory = false;  // payload still references user pages (0-copy)
  bool pio = false;          // Figure 1 path 1: CPU pushes the bytes itself
  int sg_fragments = 1;
  // Fires once, when the packet's first DMA descriptor completes.
  std::function<void()> on_descriptor_done;
};

// How the channel reaches the module's transmit machinery and delivery path.
class ChannelOps {
 public:
  virtual ~ChannelOps() = default;

  // Hands a data packet to the driver of the right NIC (charges driver
  // cost; sets the piggybacked ack before building the frame).
  virtual void emit_data(int peer, Packet& packet) = 0;

  // Emits a pure acknowledgement (minimum-size internal packet).
  virtual void emit_ack(int peer, const ClicHeader& header) = 0;

  // In-order data arrival.
  virtual void deliver(int peer, Packet packet) = 0;

  virtual os::Kernel& kernel() = 0;
};

class Channel {
 public:
  Channel(const Config& config, ChannelOps& ops, int peer);

  // --- Transmit side --------------------------------------------------------

  // Fires with true when the packet is cumulatively acknowledged, with
  // false when the channel exhausts its retry budget and abandons it.
  using SendCallback = std::function<void(bool acked)>;

  // Queues `packet` (sequence number assigned here); transmits immediately
  // when the window allows.
  void send(Packet packet, SendCallback on_result = {});

  // Current cumulative ack to piggyback on outgoing data; marks owed acks
  // as satisfied.
  std::uint32_t take_piggyback_ack();

  // --- Receive side ---------------------------------------------------------

  // Processes any incoming packet for this peer (data, dup, out-of-order,
  // or pure ack).
  void packet_in(const ClicHeader& header, net::HeaderBlob upper,
                 net::Buffer payload);

  // --- Introspection ----------------------------------------------------------
  [[nodiscard]] int in_flight() const {
    return static_cast<int>(unacked_.size());
  }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t out_of_order() const { return out_of_order_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint32_t rx_next() const { return rx_next_; }

  // Degradation counters (fault telemetry).
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] int backoff_level() const { return backoff_level_; }
  [[nodiscard]] std::uint64_t gave_up() const { return gave_up_; }
  [[nodiscard]] std::uint64_t resets_accepted() const {
    return resets_accepted_;
  }
  // The RTO the next expiry would be armed with (before jitter).
  [[nodiscard]] sim::SimTime current_rto() const;

  // Adaptive-mode telemetry (all zero/defaults unless Config::adaptive).
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] int cwnd() const;  // current effective in-flight limit
  [[nodiscard]] int window_min() const { return window_min_; }
  [[nodiscard]] int window_max() const { return window_max_; }
  [[nodiscard]] std::uint64_t window_collapses() const {
    return window_collapses_;
  }

 private:
  struct Unacked {
    Packet packet;
    SendCallback on_result;
    sim::SimTime sent_at = 0;     // adaptive: RTT-sample timestamp
    bool retransmitted = false;   // adaptive: Karn's rule — never sample
  };

  void transmit(Packet& packet);
  void drain_pending();
  void process_ack(std::uint32_t ack);
  void arm_rto();
  void rto_expired();
  void give_up();
  void note_ack_owed(bool immediate);
  void send_pure_ack();

  // Adaptive mode (all no-ops when Config::adaptive is off).
  void pump_adaptive();   // paced, window-limited release of pending_
  void grow_window();     // slow start below ssthresh, +1/cwnd above
  void collapse_window();  // timeout response: ssthresh = inflight/2
  void retransmit_window();  // loss recovery: resend cwnd oldest unacked

  const Config* config_;
  ChannelOps* ops_;
  int peer_;

  // TX state. The retransmit timer is a cancellable kernel (wheel) timer:
  // fresh ack progress cancels and re-arms it instead of bumping a
  // generation counter and stranding the superseded closure.
  std::uint32_t next_seq_ = 0;
  std::uint32_t tx_base_ = 0;  // oldest unacknowledged sequence
  std::map<std::uint32_t, Unacked> unacked_;
  std::deque<Unacked> pending_;  // waiting for window space
  os::Kernel::TimerId rto_timer_ = os::Kernel::kInvalidTimer;
  int backoff_level_ = 0;       // consecutive expiries with no progress
  bool pending_reset_ = false;  // next data packet carries flags::kReset
  sim::Rng rto_rng_;            // deterministic jitter stream

  // Adaptive-mode TX state (DESIGN.md §4k). cwnd_pkts_ is fractional so
  // congestion avoidance can add 1/cwnd per ack; the effective window is
  // its integer part clamped to [1, window_packets].
  RttEstimator rtt_;
  double cwnd_pkts_ = 0.0;
  int ssthresh_ = 0;
  // Loss recovery (NewReno-style): an RTO enters recovery and resends a
  // window of the oldest unacked packets; each partial ack (progress short
  // of recover_point_) immediately resends the next window instead of
  // waiting out another full RTO — a burst of consecutive losses heals in
  // ~one RTO plus a few RTTs rather than one RTO *per packet*. No RTT
  // samples are taken during recovery: cumulative acks that fill a gap
  // report ack-delay, not path RTT, and would poison the estimator.
  bool in_recovery_ = false;
  std::uint32_t recover_point_ = 0;
  sim::SimTime last_activity_ = 0;  // last transmit or ack progress
                                    // (feeds RFC 2861 idle restart)
  sim::SimTime pace_next_ = 0;  // earliest next paced transmission
  os::Kernel::TimerId pace_timer_ = os::Kernel::kInvalidTimer;
  int window_min_ = 0;
  int window_max_ = 0;
  std::uint64_t window_collapses_ = 0;

  // RX state.
  std::uint32_t rx_next_ = 0;
  std::map<std::uint32_t, Packet> reorder_;
  int acks_owed_ = 0;
  os::Kernel::TimerId ack_timer_ = os::Kernel::kInvalidTimer;

  std::uint64_t retransmits_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t out_of_order_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t gave_up_ = 0;
  std::uint64_t resets_accepted_ = 0;
};

}  // namespace clicsim::clic
