// RFC 6298-style round-trip-time estimator for the adaptive CLIC channel
// (DESIGN.md §4k).
//
// The paper's CLIC retransmits on a fixed clock sized for a 2003-era
// single-sender Gigabit link; under synchronized fan-in the queueing delay
// exceeds that clock and every wave retransmission-storms. The estimator
// replaces the fixed clock with the classic SRTT/RTTVAR filter:
//
//   first sample R:  SRTT = R, RTTVAR = R / 2
//   later samples:   RTTVAR = (3·RTTVAR + |SRTT − R|) / 4
//                    SRTT   = (7·SRTT + R) / 8
//   RTO = clamp(SRTT + 4·RTTVAR, rto_min, rto_max)
//
// All arithmetic is 64-bit integer nanoseconds, so every run — at any
// sweep -j and any --shards — produces bit-identical estimator state.
// Karn's rule (no samples from retransmitted packets) is enforced by the
// caller: the channel only feeds samples for packets transmitted exactly
// once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "sim/time.hpp"

namespace clicsim::clic {

class RttEstimator {
 public:
  // Feeds one measured round-trip time (send -> cumulative ack).
  void sample(sim::SimTime rtt) {
    rtt = std::max<sim::SimTime>(rtt, 1);
    if (samples_ == 0) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      rttvar_ = (3 * rttvar_ + std::abs(srtt_ - rtt)) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
    ++samples_;
  }

  // Forgets everything — used when the channel resynchronizes (give-up /
  // reset): the path that produced the old samples may be gone.
  void reset() {
    srtt_ = 0;
    rttvar_ = 0;
    samples_ = 0;
  }

  // True once at least one sample has been absorbed; before that the
  // channel falls back to its configured initial RTO.
  [[nodiscard]] bool primed() const { return samples_ > 0; }

  [[nodiscard]] sim::SimTime srtt() const { return srtt_; }
  [[nodiscard]] sim::SimTime rttvar() const { return rttvar_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

  // The base retransmission timeout (before the exponential backoff
  // ladder), clamped into [rto_min, rto_max].
  [[nodiscard]] sim::SimTime rto(sim::SimTime rto_min,
                                 sim::SimTime rto_max) const {
    return std::clamp(srtt_ + 4 * rttvar_, rto_min, rto_max);
  }

 private:
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace clicsim::clic
