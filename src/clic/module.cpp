#include "clic/module.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/log.hpp"

namespace clicsim::clic {

namespace {

// Reassembly key: one in-flight message per (peer, src_port, dst_port) —
// the module serializes each port pair's fragments on the in-order channel.
std::uint64_t reassembly_key(int peer, std::uint8_t src_port,
                             std::uint8_t dst_port, bool broadcast) {
  return (static_cast<std::uint64_t>(broadcast) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer))
          << 16) |
         (static_cast<std::uint64_t>(src_port) << 8) | dst_port;
}

}  // namespace

ClicModule::ClicModule(os::Node& node, Config config,
                       const os::AddressMap& addresses)
    : node_(&node), config_(config), addresses_(&addresses) {
  for (int i = 0; i < node_->nic_count(); ++i) {
    node_->driver(i).add_protocol(net::kEtherTypeClic, this);
    node_->driver(i).set_direct_dispatch(config_.direct_dispatch);
  }
}

ClicModule::~ClicModule() = default;

void ClicModule::bind_port(int port) { ports_[port]; }

void ClicModule::unbind_port(int port) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;
  auto waiting = std::move(it->second.waiting);
  ports_.erase(it);
  for (auto& future : waiting) {
    Message closed;
    closed.src_node = -1;
    future.set(std::move(closed));
  }
}

bool ClicModule::poll(int port) const {
  auto it = ports_.find(port);
  return it != ports_.end() && !it->second.ready.empty();
}

ClicModule::PortState& ClicModule::port_state(int port) {
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    throw std::logic_error("ClicModule: port not bound");
  }
  return it->second;
}

Channel& ClicModule::channel(int peer) {
  auto it = channels_.find(peer);
  if (it == channels_.end()) {
    // The ChannelOps base is private; the upcast is only accessible here.
    ChannelOps& ops = *this;
    it = channels_.emplace(peer, std::make_unique<Channel>(config_, ops, peer))
             .first;
  }
  return *it->second;
}

Channel* ClicModule::channel_to(int peer) {
  auto it = channels_.find(peer);
  return it == channels_.end() ? nullptr : it->second.get();
}

ClicModule::AdaptiveStats ClicModule::adaptive_stats() const {
  AdaptiveStats stats;
  bool first = true;
  for (const auto& [peer, ch] : channels_) {
    stats.rtt_samples += ch->rtt().samples();
    stats.window_collapses += ch->window_collapses();
    stats.srtt_max = std::max(stats.srtt_max, ch->rtt().srtt());
    stats.rttvar_max = std::max(stats.rttvar_max, ch->rtt().rttvar());
    if (first) {
      stats.window_min = ch->window_min();
      stats.window_max = ch->window_max();
      first = false;
    } else {
      stats.window_min = std::min(stats.window_min, ch->window_min());
      stats.window_max = std::max(stats.window_max, ch->window_max());
    }
  }
  return stats;
}

std::int64_t ClicModule::chunk_bytes() const {
  if (config_.use_nic_fragmentation &&
      node_->nic(0).profile().on_nic_fragmentation) {
    return config_.nic_frag_super_bytes - kClicHeaderBytes;
  }
  return node_->nic(0).mtu() - kClicHeaderBytes;
}

// --- Send path ---------------------------------------------------------------

sim::Future<SendStatus> ClicModule::send(int src_port, int dst_node,
                                         int dst_port, net::Buffer data,
                                         SendMode mode, PacketType type,
                                         net::HeaderBlob meta) {
  sim::Future<SendStatus> result(sim());
  ++messages_sent_;
  bytes_sent_ += data.size();

  if (dst_node == node_->id()) {
    send_intra_node(src_port, dst_port, std::move(data), type,
                    std::move(meta), result);
    return result;
  }

  kernel().syscall([this, src_port, dst_node, dst_port,
                    data = std::move(data), mode, type,
                    meta = std::move(meta), result]() mutable {
    const std::int64_t chunk = chunk_bytes();
    std::deque<Packet> packets;
    std::int64_t offset = 0;
    bool first = true;
    do {
      // The upper-layer header rides on the first fragment and counts
      // against its payload budget.
      const std::int64_t budget =
          first ? std::max<std::int64_t>(chunk - meta.wire_bytes(), 1)
                : chunk;
      const std::int64_t len = std::min(budget, data.size() - offset);
      Packet p;
      p.header.type = type;
      if (first) p.upper = meta;
      p.header.src_port = static_cast<std::uint8_t>(src_port);
      p.header.dst_port = static_cast<std::uint8_t>(dst_port);
      if (first) p.header.flags |= flags::kFirstFragment;
      if (offset + len >= data.size()) {
        p.header.flags |= flags::kLastFragment;
        if (mode == SendMode::kConfirmed) {
          p.header.flags |= flags::kAckRequested;
        }
      }
      p.payload = len > 0 ? data.slice(offset, len) : net::Buffer::zeros(0);
      packets.push_back(std::move(p));
      offset += len;
      first = false;
    } while (offset < data.size());
    send_packets(dst_node, std::move(packets), mode, result);
  });
  return result;
}

void ClicModule::send_packets(int dst_node, std::deque<Packet> packets,
                              SendMode mode,
                              sim::Future<SendStatus> result) {
  struct State {
    std::deque<Packet> packets;
    int dma_remaining = 0;
    bool aborted = false;   // channel gave up on an earlier fragment
    bool finished = false;  // result future already resolved
  };
  auto state = std::make_shared<State>();
  state->packets = std::move(packets);
  state->dma_remaining = static_cast<int>(state->packets.size());

  auto finish = [this, result](bool ok) mutable {
    kernel().syscall_return([result, ok]() mutable {
      result.set(SendStatus{ok, ok ? SendError::kNone : SendError::kTimedOut});
    });
  };

  // Completion wiring by mode.
  if (mode == SendMode::kSync) {
    for (auto& p : state->packets) {
      p.on_descriptor_done = [state, finish]() mutable {
        if (--state->dma_remaining == 0) finish(true);
      };
    }
  }

  // Per-packet kernel processing: CLIC_MODULE header build + data-path
  // preparation, then the packet enters the reliable channel. Packets are
  // processed sequentially, so emission overlaps DMA of earlier packets.
  auto process_next = std::make_shared<std::function<void()>>();
  *process_next = [this, state, dst_node, mode, finish,
                   process_next]() mutable {
    if (state->aborted) {
      // The channel abandoned an earlier fragment of this message (retry
      // budget exhausted). Submitting the rest would hand the peer a
      // message with a hole, so the remainder is dropped here; the result
      // future already resolved as failed.
      *process_next = nullptr;
      return;
    }
    if (state->packets.empty()) {
      if (mode == SendMode::kAsync) finish(true);
      // Break the shared_ptr cycle now that processing is complete.
      *process_next = nullptr;
      return;
    }
    Packet p = std::move(state->packets.front());
    state->packets.pop_front();
    const bool last = state->packets.empty();

    node_->cpu().run(
        sim::CpuPriority::kKernel, config_.module_tx_cost,
        [this, state, p = std::move(p), dst_node, mode, last, finish,
         process_next]() mutable {
          // prepare_packet_data needs a stable Packet; keep it in a shared
          // holder across the asynchronous cost charge.
          auto holder = std::make_shared<Packet>(std::move(p));
          prepare_packet_data(*holder,
                              [this, state, holder, dst_node, mode, last,
                               finish, process_next]() mutable {
                                Channel::SendCallback on_result;
                                if (mode == SendMode::kConfirmed) {
                                  // Every fragment reports back: the last
                                  // one resolves the send, and any
                                  // abandoned fragment fails it early and
                                  // stops the rest of the message.
                                  on_result = [state, finish,
                                               last](bool ok) mutable {
                                    if (!ok) state->aborted = true;
                                    if (state->finished) return;
                                    if (last || !ok) {
                                      state->finished = true;
                                      finish(ok);
                                    }
                                  };
                                }
                                channel(dst_node)
                                    .send(std::move(*holder),
                                          std::move(on_result));
                                (*process_next)();
                              });
        });
  };
  (*process_next)();
}

void ClicModule::prepare_packet_data(Packet& packet,
                                     std::function<void()> next) {
  auto& cpu = node_->cpu();
  TxPath path = config_.tx_path;
  if (path == TxPath::kZeroCopy && !node_->nic(0).profile().scatter_gather) {
    path = TxPath::kOneCopy;  // card cannot DMA from scattered user pages
  }

  switch (path) {
    case TxPath::kZeroCopy:
      // Path 2: the SK_BUFF points at user memory; no CPU copy at all.
      packet.user_memory = true;
      packet.sg_fragments = 2;  // header block + user data
      cpu.run(sim::CpuPriority::kKernel, 0, std::move(next));
      return;

    case TxPath::kOneCopy: {
      // Path 3: one copy into a kernel buffer, DMA from there.
      const std::int64_t n = packet.payload.size();
      node_->mem().copy_pressure(n);
      packet.sg_fragments = 1;
      cpu.run(sim::CpuPriority::kKernel, cpu.copy_cost(n), std::move(next));
      return;
    }

    case TxPath::kTwoCopy: {
      // Path 4 (Fast Ethernet CLIC): kernel buffer plus a staging copy
      // towards the card's output buffer.
      const std::int64_t n = packet.payload.size();
      node_->mem().copy_pressure(n);
      node_->mem().copy_pressure(n);
      packet.sg_fragments = 1;
      cpu.run(sim::CpuPriority::kKernel, 2 * cpu.copy_cost(n),
              std::move(next));
      return;
    }

    case TxPath::kDirectPio: {
      // Path 1: the CPU itself pushes the bytes across PCI (programmed
      // I/O) — extremely slow per byte, which is why nobody uses it.
      packet.pio = true;
      const std::int64_t wire = packet.payload.size() + kClicHeaderBytes +
                                net::kEthHeaderBytes + net::kEthFcsBytes;
      const sim::SimTime pio_time =
          node_->pci().transaction_time(wire, /*efficiency=*/0.15);
      node_->pci().transfer(pio_time);
      cpu.run(sim::CpuPriority::kKernel, pio_time, std::move(next));
      return;
    }
  }
}

void ClicModule::emit_data(int peer, Packet& packet) {
  // Snapshot everything needed for the asynchronous emission; the stored
  // Packet in the channel keeps the authoritative copy for retransmission.
  const int nic_index =
      (!config_.channel_bonding || node_->nic_count() == 1)
          ? 0
          : (rr_nic_ = (rr_nic_ + 1) % node_->nic_count());

  const auto& peer_macs = addresses_->macs_of(peer);
  os::SkBuff skb;
  skb.dst = peer_macs[static_cast<std::size_t>(nic_index) % peer_macs.size()];
  skb.src = node_->mac(nic_index);
  skb.ethertype = net::kEtherTypeClic;
  skb.header = net::HeaderBlob::of(
      WireHeader{packet.header, packet.upper},
      kClicHeaderBytes + packet.upper.wire_bytes());
  skb.payload = packet.payload;
  skb.sg_fragments = packet.sg_fragments;
  skb.references_user_memory = packet.user_memory;

  auto on_done = packet.on_descriptor_done;
  const bool pio = packet.pio;

  node_->cpu().run(
      sim::CpuPriority::kKernel, config_.driver_tx_cost,
      [this, nic_index, skb = std::move(skb), on_done = std::move(on_done),
       pio]() mutable {
        auto& driver = node_->driver(nic_index);
        if (pio) {
          driver.nic().post_tx_pio(std::move(skb).to_frame());
          if (on_done) on_done();
          return;
        }
        if (driver.nic().tx_ring_full() && skb.references_user_memory) {
          // Ring full: the module stages the data in system memory so the
          // user buffer is released, and the driver sends it later
          // (section 3.1). The copy overlaps other packets' DMA.
          const std::int64_t n = skb.payload.size();
          node_->mem().copy_pressure(n);
          skb.references_user_memory = false;
          skb.sg_fragments = 1;
          node_->cpu().run(sim::CpuPriority::kKernel,
                           node_->cpu().copy_cost(n),
                           [this, nic_index, skb = std::move(skb),
                            on_done = std::move(on_done)]() mutable {
                             node_->driver(nic_index).xmit_or_queue(
                                 std::move(skb), std::move(on_done));
                           });
          return;
        }
        driver.xmit_or_queue(std::move(skb), std::move(on_done));
      });
}

void ClicModule::emit_ack(int peer, const ClicHeader& header) {
  os::SkBuff skb;
  skb.dst = addresses_->macs_of(peer)[0];
  skb.src = node_->mac(0);
  skb.ethertype = net::kEtherTypeClic;
  skb.header = net::HeaderBlob::of(WireHeader{header, {}}, kClicHeaderBytes);
  skb.payload = net::Buffer::zeros(0);

  // Pure acks are emitted inline from the receive context that owed them
  // (the bottom half), ahead of the remaining packet backlog.
  node_->cpu().run_next(rx_prio_, config_.ack_tx_cost,
                        [this, skb = std::move(skb)]() mutable {
                          node_->driver(0).xmit_or_queue(std::move(skb));
                        });
}

// --- Intra-node path ----------------------------------------------------------

void ClicModule::send_intra_node(int src_port, int dst_port,
                                 net::Buffer data, PacketType type,
                                 net::HeaderBlob meta,
                                 sim::Future<SendStatus> result) {
  ++intra_node_;
  kernel().syscall([this, src_port, dst_port, data = std::move(data), type,
                    meta = std::move(meta), result]() mutable {
    // One copy user -> system memory; the receive side copies system ->
    // user as with any queued message. No NIC involved.
    node_->cpu().run(sim::CpuPriority::kKernel, config_.module_tx_cost);
    node_->copy_data(sim::CpuPriority::kKernel, data.size(),
            [this, src_port, dst_port, data = std::move(data), type,
             meta = std::move(meta), result]() mutable {
              Message m;
              m.src_node = node_->id();
              m.src_port = static_cast<std::uint8_t>(src_port);
              m.dst_port = static_cast<std::uint8_t>(dst_port);
              m.type = type;
              m.meta = std::move(meta);
              m.data = std::move(data);
              ++messages_received_;
              bytes_received_ += m.data.size();
              if (m.type == PacketType::kRemoteWrite) {
                finish_remote_write(std::move(m), sim::CpuPriority::kKernel);
              } else if (m.type == PacketType::kKernelFn) {
                auto fit = kernel_fns_.find(m.dst_port);
                if (fit != kernel_fns_.end()) fit->second(std::move(m));
              } else {
                deliver_message(std::move(m), sim::CpuPriority::kKernel);
              }
              kernel().syscall_return(
                  [result]() mutable { result.set({true}); });
            });
  });
}

// --- Broadcast ------------------------------------------------------------------

sim::Future<SendStatus> ClicModule::broadcast(int src_port, int dst_port,
                                              net::Buffer data,
                                              net::HeaderBlob meta) {
  return datagram_to(net::MacAddr::broadcast(), src_port, dst_port,
                     std::move(data), std::move(meta));
}

void ClicModule::join_group(int group_id) {
  for (int i = 0; i < node_->nic_count(); ++i) {
    node_->nic(i).join_multicast(
        net::MacAddr::multicast(static_cast<std::uint32_t>(group_id)));
  }
}

void ClicModule::leave_group(int group_id) {
  for (int i = 0; i < node_->nic_count(); ++i) {
    node_->nic(i).leave_multicast(
        net::MacAddr::multicast(static_cast<std::uint32_t>(group_id)));
  }
}

sim::Future<SendStatus> ClicModule::multicast(int group_id, int src_port,
                                              int dst_port, net::Buffer data,
                                              net::HeaderBlob meta) {
  return datagram_to(
      net::MacAddr::multicast(static_cast<std::uint32_t>(group_id)),
      src_port, dst_port, std::move(data), std::move(meta));
}

sim::Future<SendStatus> ClicModule::datagram_to(net::MacAddr dst,
                                                int src_port, int dst_port,
                                                net::Buffer data,
                                                net::HeaderBlob meta) {
  sim::Future<SendStatus> result(sim());
  ++messages_sent_;
  bytes_sent_ += data.size();

  kernel().syscall([this, dst, src_port, dst_port, data = std::move(data),
                    meta = std::move(meta), result]() mutable {
    const std::int64_t chunk = chunk_bytes();
    struct State {
      int dma_remaining = 0;
    };
    auto state = std::make_shared<State>();
    // Fragment count: the first fragment's budget is reduced by the upper
    // header; count conservatively by construction below.
    state->dma_remaining = [&] {
      std::int64_t off = 0;
      int count = 0;
      bool head = true;
      do {
        const std::int64_t budget =
            head ? std::max<std::int64_t>(chunk - meta.wire_bytes(), 1)
                 : chunk;
        off += std::min(budget, data.size() - off);
        head = false;
        ++count;
      } while (off < data.size());
      return count;
    }();

    auto finish = [this, result]() mutable {
      kernel().syscall_return([result]() mutable { result.set({true}); });
    };

    std::int64_t offset = 0;
    bool first = true;
    std::uint32_t seq = 0;
    do {
      // The upper-layer header rides on the first fragment and counts
      // against its payload budget.
      const std::int64_t budget =
          first ? std::max<std::int64_t>(chunk - meta.wire_bytes(), 1)
                : chunk;
      const std::int64_t len = std::min(budget, data.size() - offset);
      ClicHeader h;
      h.type = PacketType::kBroadcast;
      h.src_port = static_cast<std::uint8_t>(src_port);
      h.dst_port = static_cast<std::uint8_t>(dst_port);
      h.seq = seq++;
      if (first) h.flags |= flags::kFirstFragment;
      if (offset + len >= data.size()) h.flags |= flags::kLastFragment;

      os::SkBuff skb;
      skb.dst = dst;
      skb.src = node_->mac(0);
      skb.ethertype = net::kEtherTypeClic;
      const net::HeaderBlob upper = first ? meta : net::HeaderBlob{};
      skb.header = net::HeaderBlob::of(WireHeader{h, upper},
                                       kClicHeaderBytes + upper.wire_bytes());
      skb.payload =
          len > 0 ? data.slice(offset, len) : net::Buffer::zeros(0);
      skb.sg_fragments = node_->nic(0).profile().scatter_gather ? 2 : 1;

      node_->cpu().run(
          sim::CpuPriority::kKernel,
          config_.module_tx_cost + config_.driver_tx_cost,
          [this, skb = std::move(skb), state, finish]() mutable {
            node_->driver(0).xmit_or_queue(std::move(skb),
                                           [state, finish]() mutable {
                                             if (--state->dma_remaining == 0) {
                                               finish();
                                             }
                                           });
          });
      offset += len;
      first = false;
    } while (offset < data.size());
  });
  return result;
}

void ClicModule::handle_broadcast(int peer, const ClicHeader& header,
                                  net::HeaderBlob upper, net::Buffer payload,
                                  sim::CpuPriority prio) {
  const std::uint64_t key = reassembly_key(peer, header.src_port,
                                           header.dst_port, true);
  auto& re = reassembly_[key];
  if (header.flags & flags::kFirstFragment) {
    re.chain.clear();
    re.meta = std::move(upper);
    re.copy.reset();
    re.copied = 0;
  }
  re.chain.append(std::move(payload));
  if (!(header.flags & flags::kLastFragment)) return;

  Message m;
  m.src_node = peer;
  m.src_port = header.src_port;
  m.dst_port = header.dst_port;
  m.type = PacketType::kBroadcast;
  m.meta = std::move(re.meta);
  m.data = re.chain.flatten();
  reassembly_.erase(key);
  ++messages_received_;
  bytes_received_ += m.data.size();
  deliver_message(std::move(m), prio);
}

// --- Remote write ----------------------------------------------------------------

void ClicModule::register_region(int region_id, std::int64_t capacity) {
  auto& r = regions_[region_id];
  r.capacity = capacity;
  if (!r.trigger) r.trigger = std::make_unique<sim::Trigger>(sim());
}

sim::Future<SendStatus> ClicModule::remote_write(int dst_node, int region_id,
                                                 net::Buffer data,
                                                 SendMode mode) {
  return send(/*src_port=*/0, dst_node, /*dst_port=*/region_id,
              std::move(data), mode, PacketType::kRemoteWrite);
}

std::int64_t ClicModule::region_bytes(int region_id) const {
  auto it = regions_.find(region_id);
  return it == regions_.end() ? 0 : it->second.data.size();
}

net::Buffer ClicModule::region_contents(int region_id) const {
  auto it = regions_.find(region_id);
  if (it == regions_.end()) return net::Buffer::zeros(0);
  return it->second.data.flatten();
}

sim::Trigger& ClicModule::region_trigger(int region_id) {
  auto it = regions_.find(region_id);
  if (it == regions_.end()) {
    throw std::logic_error("ClicModule: region not registered");
  }
  return *it->second.trigger;
}

void ClicModule::finish_remote_write(Message message,
                                     sim::CpuPriority prio) {
  auto it = regions_.find(message.dst_port);
  if (it == regions_.end()) return;  // unregistered region: protection drop
  Region& region = it->second;
  if (region.data.size() + message.data.size() > region.capacity) return;

  // The module moves the data straight into the registered user region —
  // no receive call involved (step 7 of Figure 3).
  const int region_id = message.dst_port;
  node_->copy_data(prio, message.data.size(),
                   [this, region_id, data = std::move(message.data)]() mutable {
                     auto rit = regions_.find(region_id);
                     if (rit == regions_.end()) return;
                     rit->second.data.append(std::move(data));
                     rit->second.trigger->fire();
                   });
}

// --- Kernel functions ---------------------------------------------------------

void ClicModule::register_kernel_fn(int fn_id,
                                    std::function<void(Message)> fn) {
  kernel_fns_[fn_id] = std::move(fn);
}

// --- Receive path -----------------------------------------------------------------

void ClicModule::packet_received(net::Frame frame, bool from_isr) {
  const auto prio =
      from_isr ? sim::CpuPriority::kInterrupt : sim::CpuPriority::kSoftirq;
  const auto* wire = frame.header.get<WireHeader>();
  if (wire == nullptr) return;
  if (!addresses_->knows(frame.src)) return;
  const int peer = addresses_->node_of(frame.src);

  node_->cpu().run(prio, config_.module_rx_cost,
                   [this, peer, h = wire->clic, upper = wire->upper,
                    payload = std::move(frame.payload), prio]() mutable {
                     rx_prio_ = prio;
                     if (h.type == PacketType::kBroadcast) {
                       handle_broadcast(peer, h, std::move(upper),
                                        std::move(payload), prio);
                       return;
                     }
                     channel(peer).packet_in(h, std::move(upper),
                                             std::move(payload));
                   });
}

void ClicModule::deliver(int peer, Packet packet) {
  const std::int64_t frag_bytes = packet.payload.size();
  bytes_received_ += frag_bytes;
  const std::uint64_t key = reassembly_key(peer, packet.header.src_port,
                                           packet.header.dst_port, false);
  auto& re = reassembly_[key];
  if (packet.header.flags & flags::kFirstFragment) {
    re.chain.clear();
    re.meta = std::move(packet.upper);
    re.copy.reset();
    re.copied = 0;
  }
  re.chain.append(std::move(packet.payload));

  // If a process is already blocked in recv on this port, the module copies
  // each packet straight to its user memory as it arrives — the copy then
  // overlaps the DMA of later packets.
  const bool to_port = packet.header.type != PacketType::kRemoteWrite &&
                       packet.header.type != PacketType::kKernelFn;
  if (to_port && frag_bytes > 0) {
    auto pit = ports_.find(packet.header.dst_port);
    if (pit != ports_.end() && !pit->second.waiting.empty()) {
      if (!re.copy) {
        re.copy = std::make_shared<os::CopyChain>(*node_, rx_prio_);
      }
      re.copy->add(frag_bytes);
      re.copied += frag_bytes;
    }
  }

  if (!(packet.header.flags & flags::kLastFragment)) return;

  Message m;
  m.src_node = peer;
  m.src_port = packet.header.src_port;
  m.dst_port = packet.header.dst_port;
  m.type = packet.header.type;
  m.meta = std::move(re.meta);
  m.data = re.chain.flatten();
  auto copy = std::move(re.copy);
  const std::int64_t copied = re.copied;
  reassembly_.erase(key);
  ++messages_received_;

  switch (m.type) {
    case PacketType::kRemoteWrite:
      finish_remote_write(std::move(m), rx_prio_);
      return;
    case PacketType::kKernelFn: {
      auto it = kernel_fns_.find(m.dst_port);
      if (it != kernel_fns_.end()) it->second(std::move(m));
      return;
    }
    default:
      deliver_message(std::move(m), rx_prio_, std::move(copy), copied);
  }
}

// --- Port delivery / receive --------------------------------------------------

void ClicModule::deliver_message(Message message, sim::CpuPriority prio,
                                 std::shared_ptr<os::CopyChain> chain,
                                 std::int64_t copied) {
  auto it = ports_.find(message.dst_port);
  if (it == ports_.end()) {
    CLICSIM_LOG(sim(), sim::LogLevel::kDebug, "clic")
        << "drop to unbound port " << int{message.dst_port};
    return;  // protection: nothing listens on this port
  }
  PortState& ps = it->second;
  if (!ps.waiting.empty()) {
    auto future = std::move(ps.waiting.front());
    ps.waiting.pop_front();
    complete_recv(std::move(future), std::move(message), prio,
                  /*wake_process=*/true, std::move(chain), copied);
    return;
  }
  // No receive posted: the packet stays in system memory until one arrives.
  ps.ready.push_back(std::move(message));
}

void ClicModule::complete_recv(sim::Future<Message> future, Message message,
                               sim::CpuPriority prio, bool wake_process,
                               std::shared_ptr<os::CopyChain> chain,
                               std::int64_t copied) {
  if (!chain) chain = std::make_shared<os::CopyChain>(*node_, prio);
  chain->add(message.data.size() - copied);
  chain->finish([this, chain, future = std::move(future),
                 message = std::move(message), wake_process]() mutable {
    auto& cpu = node_->cpu();
    if (wake_process) {
      cpu.run(sim::CpuPriority::kKernel, cpu.params().process_wakeup,
              [this, future = std::move(future),
               message = std::move(message)]() mutable {
                node_->cpu().run(sim::CpuPriority::kUser,
                                 node_->cpu().params().context_switch,
                                 [future = std::move(future),
                                  message = std::move(message)]() mutable {
                                   future.set(std::move(message));
                                 });
              });
    } else {
      kernel().syscall_return([future = std::move(future),
                               message = std::move(message)]() mutable {
        future.set(std::move(message));
      });
    }
  });
}

sim::Future<Message> ClicModule::recv(int port) {
  sim::Future<Message> future(sim());
  kernel().syscall([this, port, future]() mutable {
    PortState& ps = port_state(port);
    if (!ps.ready.empty()) {
      Message m = std::move(ps.ready.front());
      ps.ready.pop_front();
      complete_recv(std::move(future), std::move(m),
                    sim::CpuPriority::kKernel, /*wake_process=*/false);
      return;
    }
    ps.waiting.push_back(std::move(future));
  });
  return future;
}

}  // namespace clicsim::clic
