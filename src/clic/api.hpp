// Thin user-level handle over a bound CLIC port — the interface application
// processes program against (Figure 2: user processes sit directly on
// CLIC's syscall interface).
//
//   clic::Port port(module, 7);
//   co_await port.send(peer_node, peer_port, msg);      // blocking send
//   clic::Message m = co_await port.recv();             // blocking receive
#pragma once

#include "clic/module.hpp"

namespace clicsim::clic {

class Port {
 public:
  Port(ClicModule& module, int port) : module_(&module), port_(port) {
    module_->bind_port(port_);
  }

  // Blocking send (completes when every packet's DMA finished).
  [[nodiscard]] sim::Future<SendStatus> send(
      int dst_node, int dst_port, net::Buffer data,
      SendMode mode = SendMode::kSync) {
    return module_->send(port_, dst_node, dst_port, std::move(data), mode);
  }

  // Send with confirmation of reception (section 5: "primitives to send
  // messages with confirmation of reception").
  [[nodiscard]] sim::Future<SendStatus> send_confirmed(int dst_node,
                                                       int dst_port,
                                                       net::Buffer data) {
    return module_->send(port_, dst_node, dst_port, std::move(data),
                         SendMode::kConfirmed);
  }

  // Asynchronous send (returns as soon as the kernel accepted the message).
  [[nodiscard]] sim::Future<SendStatus> send_async(int dst_node, int dst_port,
                                                   net::Buffer data) {
    return module_->send(port_, dst_node, dst_port, std::move(data),
                         SendMode::kAsync);
  }

  [[nodiscard]] sim::Future<Message> recv() { return module_->recv(port_); }

  // Non-blocking probe ("if the message has not arrived, _MODULE does
  // nothing and returns").
  [[nodiscard]] bool poll() const { return module_->poll(port_); }

  [[nodiscard]] sim::Future<SendStatus> broadcast(int dst_port,
                                                  net::Buffer data) {
    return module_->broadcast(port_, dst_port, std::move(data));
  }

  [[nodiscard]] int number() const { return port_; }
  [[nodiscard]] ClicModule& module() { return *module_; }

 private:
  ClicModule* module_;
  int port_;
};

}  // namespace clicsim::clic
