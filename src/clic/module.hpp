// CLIC_MODULE: the kernel-resident protocol engine (section 3.1).
//
// Send: a system call enters the kernel; the module builds the 12-byte CLIC
// header over a level-1 Ethernet header, segments the message to the wire
// MTU, and hands SK_BUFF-equivalents to the *unmodified* driver. Data moves
// by one of the four paths of Figure 1 (path 2 — scatter/gather DMA from
// user memory, "0-copy" — is the Gigabit default; path 4 is the Fast
// Ethernet heritage). If the card's ring is full the module stages the data
// in system memory and the driver sends it later, exactly as described.
//
// Receive: the driver's ISR + bottom half hand packets up; the module
// ack-processes them on the per-peer reliable channel, reassembles
// messages, and either copies straight into the memory of a process blocked
// in recv (then wakes it through the scheduler) or leaves the packet in
// system memory until a receive arrives. Remote writes land in registered
// regions without any receive call. Intra-node messages short-circuit
// through kernel memory — a capability the paper contrasts against
// user-level interfaces that cannot address local processes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "clic/channel.hpp"
#include "clic/config.hpp"
#include "clic/header.hpp"
#include "net/buffer.hpp"
#include "os/address.hpp"
#include "os/driver.hpp"
#include "os/node.hpp"
#include "sim/task.hpp"

namespace clicsim::clic {

struct Message {
  int src_node = -1;
  std::uint8_t src_port = 0;
  std::uint8_t dst_port = 0;
  PacketType type = PacketType::kUser;
  net::HeaderBlob meta;  // upper-layer header (e.g. an MPI envelope)
  net::Buffer data;
};

enum class SendMode {
  kAsync,      // returns once the message is queued in the kernel
  kSync,       // returns when every packet's DMA descriptor completed
  kConfirmed,  // returns when the peer acknowledged reception
};

// Why a send resolved the way it did. kTimedOut is the bounded-failure
// outcome: the reliable channel exhausted its retry budget (peer down,
// black-holed path) and abandoned the message instead of hanging forever.
enum class SendError : std::uint8_t {
  kNone = 0,
  kTimedOut = 1,  // retry budget exhausted, message abandoned
};

struct SendStatus {
  bool ok = true;
  SendError error = SendError::kNone;
};

class ClicModule : public os::ProtocolHandler, private ChannelOps {
 public:
  ClicModule(os::Node& node, Config config, const os::AddressMap& addresses);
  ~ClicModule() override;

  ClicModule(const ClicModule&) = delete;
  ClicModule& operator=(const ClicModule&) = delete;

  // --- User primitives (each entered through a system call) ---------------

  void bind_port(int port);

  // Closes a port: queued messages are discarded and later traffic to the
  // port is dropped (the protection behaviour); blocked receivers complete
  // with an empty message from src_node -1.
  void unbind_port(int port);

  [[nodiscard]] sim::Future<SendStatus> send(
      int src_port, int dst_node, int dst_port, net::Buffer data,
      SendMode mode = SendMode::kSync, PacketType type = PacketType::kUser,
      net::HeaderBlob meta = {});

  [[nodiscard]] sim::Future<Message> recv(int port);

  // Non-blocking receive probe (the "module does nothing and returns" path).
  [[nodiscard]] bool poll(int port) const;

  // Ethernet broadcast/multicast datagram to `dst_port` on every node
  // (unreliable; upper layers add confirmation where needed).
  [[nodiscard]] sim::Future<SendStatus> broadcast(int src_port, int dst_port,
                                                  net::Buffer data,
                                                  net::HeaderBlob meta = {});

  // Ethernet multicast groups (section 5: CLIC exploits the data-link
  // layer's multicast capability): members join a group id; multicast()
  // sends one datagram that only member NICs accept.
  void join_group(int group_id);
  void leave_group(int group_id);
  [[nodiscard]] sim::Future<SendStatus> multicast(int group_id, int src_port,
                                                  int dst_port,
                                                  net::Buffer data,
                                                  net::HeaderBlob meta = {});

  // --- Remote write (asynchronous receive) --------------------------------

  void register_region(int region_id, std::int64_t capacity);
  [[nodiscard]] sim::Future<SendStatus> remote_write(
      int dst_node, int region_id, net::Buffer data,
      SendMode mode = SendMode::kConfirmed);
  [[nodiscard]] std::int64_t region_bytes(int region_id) const;
  [[nodiscard]] net::Buffer region_contents(int region_id) const;
  [[nodiscard]] sim::Trigger& region_trigger(int region_id);

  // --- Kernel-function packets ---------------------------------------------
  void register_kernel_fn(int fn_id, std::function<void(Message)> fn);

  // --- os::ProtocolHandler --------------------------------------------------
  void packet_received(net::Frame frame, bool from_isr) override;

  // --- Introspection ----------------------------------------------------------
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] os::Node& node() { return *node_; }
  [[nodiscard]] Channel* channel_to(int peer);
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_received() const {
    return messages_received_;
  }
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::int64_t bytes_received() const {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t intra_node_messages() const {
    return intra_node_;
  }

  // Aggregate adaptive telemetry across every instantiated channel (all
  // zeros when Config::adaptive is off). Sums and min/max are
  // order-invariant, so the unordered channel map cannot perturb them.
  struct AdaptiveStats {
    std::uint64_t rtt_samples = 0;
    std::uint64_t window_collapses = 0;
    sim::SimTime srtt_max = 0;    // largest final smoothed RTT
    sim::SimTime rttvar_max = 0;  // largest final RTT variance
    int window_min = 0;           // smallest window any channel fell to
    int window_max = 0;           // largest window any channel opened
  };
  [[nodiscard]] AdaptiveStats adaptive_stats() const;

 private:
  struct PortState {
    std::deque<Message> ready;                  // in system memory
    std::deque<sim::Future<Message>> waiting;   // blocked receivers
  };

  struct Region {
    std::int64_t capacity = 0;
    net::BufferChain data;
    std::unique_ptr<sim::Trigger> trigger;
  };

  // ChannelOps
  void emit_data(int peer, Packet& packet) override;
  void emit_ack(int peer, const ClicHeader& header) override;
  void deliver(int peer, Packet packet) override;
  os::Kernel& kernel() override { return node_->kernel(); }

  sim::Simulator& sim() { return node_->sim(); }
  Channel& channel(int peer);
  PortState& port_state(int port);
  [[nodiscard]] std::int64_t chunk_bytes() const;

  // Charges the per-packet TX-path cost (Figure 1) and prepares `packet`'s
  // copy semantics, then runs `next` (still in kernel context).
  void prepare_packet_data(Packet& packet, std::function<void()> next);

  void send_packets(int dst_node, std::deque<Packet> packets, SendMode mode,
                    sim::Future<SendStatus> result);
  sim::Future<SendStatus> datagram_to(net::MacAddr dst, int src_port,
                                      int dst_port, net::Buffer data,
                                      net::HeaderBlob meta);
  void send_intra_node(int src_port, int dst_port, net::Buffer data,
                       PacketType type, net::HeaderBlob meta,
                       sim::Future<SendStatus> result);
  void deliver_message(Message message, sim::CpuPriority prio,
                       std::shared_ptr<os::CopyChain> chain = nullptr,
                       std::int64_t copied = 0);
  void complete_recv(sim::Future<Message> future, Message message,
                     sim::CpuPriority prio, bool wake_process,
                     std::shared_ptr<os::CopyChain> chain = nullptr,
                     std::int64_t copied = 0);
  void handle_broadcast(int peer, const ClicHeader& header,
                        net::HeaderBlob upper, net::Buffer payload,
                        sim::CpuPriority prio);
  void finish_remote_write(Message message, sim::CpuPriority prio);

  os::Node* node_;
  Config config_;
  const os::AddressMap* addresses_;

  // A message being reassembled. When a process is already blocked in recv
  // on the destination port, each arriving packet's payload is copied to
  // user memory immediately (Figure 3: "_MODULE moves the data to the user
  // memory of that process"), so copies overlap later packets' DMA.
  struct Reassembly {
    net::BufferChain chain;
    net::HeaderBlob meta;  // upper header from the first fragment
    std::shared_ptr<os::CopyChain> copy;
    std::int64_t copied = 0;
  };

  std::unordered_map<int, std::unique_ptr<Channel>> channels_;
  std::unordered_map<int, PortState> ports_;
  std::unordered_map<std::uint64_t, Reassembly> reassembly_;
  std::unordered_map<int, Region> regions_;
  std::unordered_map<int, std::function<void(Message)>> kernel_fns_;

  int rr_nic_ = 0;
  sim::CpuPriority rx_prio_ = sim::CpuPriority::kSoftirq;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::int64_t bytes_sent_ = 0;
  std::int64_t bytes_received_ = 0;
  std::uint64_t intra_node_ = 0;
};

}  // namespace clicsim::clic
