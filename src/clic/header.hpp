// The CLIC packet header: 12 bytes riding directly on a level-1 Ethernet
// header (6 dst + 6 src + 2 ethertype) — no LLC, no IP (section 3.1: in a
// single-LAN cluster the IP layer is unnecessary).
//
// The paper specifies the header size (12 bytes) and that it encodes the
// packet class ("an MPI packet, an internal packet, a kernel function
// packet, etc."); the exact field layout is ours:
//
//   type(1) flags(1) src_port(1) dst_port(1) seq(4) ack(4)  = 12 bytes
//
// seq/ack run per node-pair channel (cumulative acknowledgement with
// piggybacking); message framing uses the first/last-fragment flag bits on
// the in-order reliable channel.
#pragma once

#include <cstdint>

#include "net/frame.hpp"

namespace clicsim::clic {

enum class PacketType : std::uint8_t {
  kUser = 0,         // application message
  kMpi = 1,          // MPI layer message (tagged matching done above CLIC)
  kInternal = 2,     // protocol-internal (pure acknowledgements)
  kKernelFn = 3,     // kernel-function invocation packets
  kRemoteWrite = 4,  // asynchronous remote write into a registered region
  kBroadcast = 5,    // Ethernet broadcast/multicast datagram (unreliable)
};

namespace flags {
inline constexpr std::uint8_t kFirstFragment = 0x01;
inline constexpr std::uint8_t kLastFragment = 0x02;
inline constexpr std::uint8_t kAckRequested = 0x04;  // confirmation of reception
inline constexpr std::uint8_t kPureAck = 0x08;       // carries no data
// Sender abandoned every sequence before this packet's (a retry budget was
// exhausted during an outage): the receiver adopts this packet's sequence
// as its new expected base instead of waiting forever for the gap.
inline constexpr std::uint8_t kReset = 0x10;
}  // namespace flags

struct ClicHeader {
  PacketType type = PacketType::kUser;
  std::uint8_t flags = 0;
  std::uint8_t src_port = 0;
  std::uint8_t dst_port = 0;
  std::uint32_t seq = 0;  // packet sequence on the (src,dst) node channel
  std::uint32_t ack = 0;  // cumulative: all packets < ack received
};

inline constexpr std::int64_t kClicHeaderBytes = 12;

// What actually rides in a CLIC frame: the 12-byte protocol header plus an
// optional upper-layer header (e.g. the MPI envelope) on a message's first
// fragment. The upper header's wire bytes count against the fragment's
// payload budget.
struct WireHeader {
  ClicHeader clic;
  net::HeaderBlob upper;

  // Cross-shard confinement hook (see net::Frame::detach): the nested
  // upper blob must be deep-copied along with the wire header.
  void detach_shared() { upper = upper.detached(); }
};

}  // namespace clicsim::clic
