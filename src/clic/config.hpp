// CLIC protocol configuration.
//
// Processing costs the paper measures directly (Figure 7: CLIC_MODULE
// 0.7 us on send, ~2 us on receive; driver ~4 us on send) are defaults
// here; everything else (window, ack policy, retransmission) is sized for
// a Gigabit LAN.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace clicsim::clic {

// The four data paths of Figure 1.
enum class TxPath {
  kDirectPio = 1,  // path 1: CPU writes user data straight to the card (PIO)
  kZeroCopy = 2,   // path 2: S/G DMA from user memory (Gigabit CLIC default)
  kOneCopy = 3,    // path 3: copy to a kernel buffer, DMA from there
  kTwoCopy = 4,    // path 4: kernel buffer + staging copy (Fast Ethernet CLIC)
};

struct Config {
  TxPath tx_path = TxPath::kZeroCopy;

  // Fig. 8b receiver improvement: the driver calls CLIC_MODULE directly
  // from the ISR (no sk_buff, no bottom half). Requires a driver change,
  // which is why the paper leaves it as a projection.
  bool direct_dispatch = false;

  // Reliable-channel sizing.
  int window_packets = 64;          // per node-pair sliding window
  sim::SimTime rto = sim::milliseconds(3.0);
  int ack_every = 4;                // pure ack after N unacked data packets
  sim::SimTime ack_delay = sim::microseconds(50.0);

  // Retransmission policy (bounded-failure semantics): consecutive RTO
  // expiries back off geometrically from `rto` by `rto_backoff` up to
  // `rto_max`, each armed deadline optionally scaled by a deterministic
  // jitter of up to ±`rto_jitter` drawn from a per-channel stream of
  // `seed` (so two channels that black-hole together do not retransmit in
  // lockstep, and every run replays byte-identically). Jitter defaults
  // off: the paper-reproduction figures pin the exact seed retransmission
  // schedule; chaos campaigns turn it on. After `max_retries` consecutive
  // expiries with no ack progress the channel gives up: every outstanding
  // send resolves with ok=false instead of retrying forever, and the next
  // transmission carries a reset so a recovered peer resynchronizes.
  double rto_backoff = 2.0;
  sim::SimTime rto_max = sim::milliseconds(200.0);
  double rto_jitter = 0.0;
  int max_retries = 12;
  std::uint64_t seed = 1;           // RTO-jitter stream seed

  // Adaptive reliability mode (DESIGN.md §4k). Off by default: the paper
  // fixes its retransmission clock, and every figure reproduction pins the
  // fixed-clock schedule byte-for-byte. When on:
  //  - an RFC 6298 SRTT/RTTVAR estimator replaces `rto` as the base of the
  //    backoff ladder (the ladder then doubles per consecutive expiry
  //    regardless of `rto_backoff`). Karn's rule in both halves:
  //    retransmitted packets never sample, and a backed-off RTO is retained
  //    until a never-retransmitted packet is acked;
  //  - a slow-start/AIMD congestion window bounds in-flight packets below
  //    `window_packets`: a timeout collapses it to `cwnd_init` (ssthresh =
  //    half) and enters go-back-N loss recovery — the cwnd oldest unacked
  //    packets are resent at once, and each partial ack resends the next
  //    window, so a burst of consecutive losses heals in ~one RTO;
  //  - a window idle for more than one RTO restarts from `cwnd_init`
  //    (RFC 2861): yesterday's window says nothing about today's queue;
  //  - transmissions are paced `pacing_gap` apart, and receivers ack
  //    out-of-order arrivals immediately so recovery is clocked by fresh
  //    information rather than the delayed-ack timer.
  bool adaptive = false;
  sim::SimTime rto_min = sim::microseconds(200.0);  // estimator RTO floor
  int cwnd_init = 2;                // post-collapse / initial window
  sim::SimTime pacing_gap = sim::microseconds(8.0);  // per-packet spacing

  // Kernel processing costs (Figure 7 measurements).
  sim::SimTime module_tx_cost = sim::microseconds(0.7);
  sim::SimTime module_rx_cost = sim::microseconds(2.0);
  sim::SimTime driver_tx_cost = sim::microseconds(4.0);
  sim::SimTime ack_tx_cost = sim::microseconds(1.5);

  // Use every NIC on the node round-robin (channel bonding, section 5).
  bool channel_bonding = false;

  // Hand packets larger than the wire MTU to the card and let firmware
  // fragment (requires a NicProfile with on_nic_fragmentation).
  bool use_nic_fragmentation = false;
  std::int64_t nic_frag_super_bytes = 65536;  // host-side packet size then

  int max_ports = 256;
};

}  // namespace clicsim::clic
