#include "sim/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/log.hpp"

namespace clicsim::sim {

FaultPlan::FaultPlan(Simulator& sim, std::uint64_t seed)
    : sim_(&sim), seed_(seed), rng_(seed, "fault-plan") {}

int FaultPlan::add_target(std::string name, Hook fail, Hook restore) {
  targets_.push_back(
      Target{std::move(name), std::move(fail), std::move(restore), 0});
  return static_cast<int>(targets_.size()) - 1;
}

void FaultPlan::script_at(SimTime t, Hook action) {
  sim_->at(t, [this, action = std::move(action)] {
    ++fired_;
    action();
  });
}

void FaultPlan::fail_between(int target, SimTime from, SimTime to) {
  if (target < 0 || target >= target_count()) {
    throw std::invalid_argument("FaultPlan: unknown target");
  }
  if (to <= from) throw std::invalid_argument("FaultPlan: empty outage");
  ++outages_;
  sim_->at(from, [this, target] { enter_failure(target); });
  sim_->at(to, [this, target] { leave_failure(target); });
}

void FaultPlan::randomize(const Campaign& campaign) {
  if (targets_.empty() || campaign.outages <= 0) return;
  const SimTime span = campaign.end - campaign.start;
  if (span <= 0) throw std::invalid_argument("FaultPlan: empty campaign");
  const SimTime min_down = std::max<SimTime>(campaign.min_down, 1);
  const SimTime max_down = std::max<SimTime>(campaign.max_down, min_down);
  for (int i = 0; i < campaign.outages; ++i) {
    const int target = static_cast<int>(
        rng_.uniform_int(0, target_count() - 1));
    const SimTime down = rng_.uniform_int(min_down, max_down);
    // Start early enough that the outage always heals by campaign.end.
    const SimTime latest_start =
        std::max<SimTime>(campaign.end - down, campaign.start);
    const SimTime start =
        rng_.uniform_int(campaign.start, latest_start);
    const SimTime end = std::min<SimTime>(start + down, campaign.end);
    if (end <= start) continue;
    fail_between(target, start, end);
  }
}

void FaultPlan::enter_failure(int target) {
  Target& t = targets_[static_cast<std::size_t>(target)];
  ++fired_;
  if (t.depth++ > 0) return;  // already down: outages nest
  ++active_;
  CLICSIM_LOG(*sim_, LogLevel::kDebug, "fault")
      << "fail " << t.name << " (seed " << seed_ << ")";
  if (t.fail) t.fail();
}

void FaultPlan::leave_failure(int target) {
  Target& t = targets_[static_cast<std::size_t>(target)];
  ++fired_;
  if (--t.depth > 0) return;  // an overlapping outage still holds it down
  --active_;
  CLICSIM_LOG(*sim_, LogLevel::kDebug, "fault")
      << "restore " << t.name << " (seed " << seed_ << ")";
  if (t.restore) t.restore();
}

}  // namespace clicsim::sim
