#include "sim/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/log.hpp"

namespace clicsim::sim {

FaultPlan::FaultPlan(Simulator& sim, std::uint64_t seed)
    : sim_(&sim), seed_(seed), rng_(seed, "fault-plan") {}

int FaultPlan::add_target(std::string name, Hook fail, Hook restore) {
  std::vector<Part> parts(1);
  parts[0].sim = sim_;
  parts[0].fail = std::move(fail);
  parts[0].restore = std::move(restore);
  return add_target(std::move(name), std::move(parts));
}

int FaultPlan::add_target(std::string name, std::vector<Part> parts) {
  if (parts.empty()) {
    throw std::invalid_argument("FaultPlan: target needs at least one part");
  }
  for (Part& p : parts) {
    if (p.sim == nullptr) p.sim = sim_;
    p.depth = 0;
  }
  targets_.push_back(Target{std::move(name), std::move(parts)});
  return static_cast<int>(targets_.size()) - 1;
}

void FaultPlan::script_at(SimTime t, Hook action) {
  sim_->at(t, [this, action = std::move(action)] {
    fired_.fetch_add(1, std::memory_order_relaxed);
    action();
  });
}

void FaultPlan::script_parts(SimTime t,
                             std::vector<std::pair<Simulator*, Hook>> parts) {
  bool first = true;
  for (auto& [sim, hook] : parts) {
    Simulator* s = sim != nullptr ? sim : sim_;
    s->at(t, [this, first, hook = std::move(hook)] {
      if (first) fired_.fetch_add(1, std::memory_order_relaxed);
      if (hook) hook();
    });
    first = false;
  }
}

void FaultPlan::fail_between(int target, SimTime from, SimTime to) {
  if (target < 0 || target >= target_count()) {
    throw std::invalid_argument("FaultPlan: unknown target");
  }
  if (to <= from) throw std::invalid_argument("FaultPlan: empty outage");
  ++outages_;
  // Every part gets the same schedule on its own simulator; identical
  // interval sets mean identical per-part depth transitions, so the halves
  // of a split target always agree on when they are down.
  Target& t = targets_[static_cast<std::size_t>(target)];
  for (int p = 0; p < static_cast<int>(t.parts.size()); ++p) {
    Simulator* s = t.parts[static_cast<std::size_t>(p)].sim;
    s->at(from, [this, target, p] { enter_failure(target, p); });
    s->at(to, [this, target, p] { leave_failure(target, p); });
  }
}

void FaultPlan::randomize(const Campaign& campaign) {
  if (targets_.empty() || campaign.outages <= 0) return;
  const SimTime span = campaign.end - campaign.start;
  if (span <= 0) throw std::invalid_argument("FaultPlan: empty campaign");
  const SimTime min_down = std::max<SimTime>(campaign.min_down, 1);
  const SimTime max_down = std::max<SimTime>(campaign.max_down, min_down);
  for (int i = 0; i < campaign.outages; ++i) {
    const int target = static_cast<int>(
        rng_.uniform_int(0, target_count() - 1));
    const SimTime down = rng_.uniform_int(min_down, max_down);
    // Start early enough that the outage always heals by campaign.end.
    const SimTime latest_start =
        std::max<SimTime>(campaign.end - down, campaign.start);
    const SimTime start =
        rng_.uniform_int(campaign.start, latest_start);
    const SimTime end = std::min<SimTime>(start + down, campaign.end);
    if (end <= start) continue;
    fail_between(target, start, end);
  }
}

void FaultPlan::enter_failure(int target, int part) {
  Target& t = targets_[static_cast<std::size_t>(target)];
  Part& p = t.parts[static_cast<std::size_t>(part)];
  if (part == 0) fired_.fetch_add(1, std::memory_order_relaxed);
  if (p.depth++ > 0) return;  // already down: outages nest
  if (part == 0) {
    active_.fetch_add(1, std::memory_order_relaxed);
    CLICSIM_LOG(*p.sim, LogLevel::kDebug, "fault")
        << "fail " << t.name << " (seed " << seed_ << ")";
  }
  if (p.fail) p.fail();
}

void FaultPlan::leave_failure(int target, int part) {
  Target& t = targets_[static_cast<std::size_t>(target)];
  Part& p = t.parts[static_cast<std::size_t>(part)];
  if (part == 0) fired_.fetch_add(1, std::memory_order_relaxed);
  if (--p.depth > 0) return;  // an overlapping outage still holds it down
  if (part == 0) {
    active_.fetch_sub(1, std::memory_order_relaxed);
    CLICSIM_LOG(*p.sim, LogLevel::kDebug, "fault")
        << "restore " << t.name << " (seed " << seed_ << ")";
  }
  if (p.restore) p.restore();
}

}  // namespace clicsim::sim
