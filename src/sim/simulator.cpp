#include "sim/simulator.hpp"

namespace clicsim::sim {

std::uint64_t Simulator::run() { return run_until(kNever); }

std::uint64_t Simulator::run_before(SimTime bound) {
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() < bound) {
    now_ = queue_.next_time();
    queue_.run_earliest();
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    now_ = queue_.next_time();
    queue_.run_earliest();
    ++n;
  }
  if (!stopped_ && t != kNever && now_ < t) now_ = t;
  executed_ += n;
  return n;
}

}  // namespace clicsim::sim
