#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace clicsim::sim {

void Simulator::at(SimTime t, std::function<void()> action) {
  if (t < now_) {
    throw std::logic_error("Simulator::at: scheduling into the past");
  }
  queue_.push(t, std::move(action));
}

std::uint64_t Simulator::run() { return run_until(kNever); }

std::uint64_t Simulator::run_until(SimTime t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++n;
  }
  if (!stopped_ && t != kNever && now_ < t) now_ = t;
  executed_ += n;
  return n;
}

}  // namespace clicsim::sim
