#include "sim/parallel_executor.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace clicsim::sim {

ParallelExecutor::ParallelExecutor(int threads)
    : threads_(threads > 0 ? threads : default_threads()) {}

int ParallelExecutor::default_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelExecutor::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& job) const {
  if (count == 0) return;

  const auto workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), count);
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace clicsim::sim
