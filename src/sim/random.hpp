// Deterministic pseudo-random streams (xoshiro256**).
//
// Every stochastic element of a simulation (loss injection, workload think
// times, random payload patterns) draws from a named Rng stream derived from
// the run seed, so adding a new consumer never perturbs existing streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace clicsim::sim {

// SplitMix64: seeds the xoshiro state and hashes stream names.
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) s = splitmix64(x);
  }

  // Independent stream for (run seed, component name).
  Rng(std::uint64_t seed, std::string_view stream)
      : Rng(seed ^ hash_name(stream)) {}

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with the given mean (> 0).
  double exponential(double mean) {
    // uniform() < 1 guarantees the log argument is positive.
    return -mean * std::log(1.0 - uniform());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace clicsim::sim
