// A FIFO over a recycled circular slot array: the deque replacement for the
// packet-path rings (driver TX queue, kernel bottom halves, NIC RX ring and
// TX in-flight list).
//
// std::deque allocates and frees a chunk every few hundred push/pop cycles
// as the ring wraps; RingQueue grows its slot array geometrically and then
// never touches the allocator again, so steady-state frame traffic is
// allocation-free. Fully deterministic: growth depends only on the queue's
// own history.
//
// T must be default-constructible and move-assignable. pop_front() resets
// the vacated slot to T{} so resources held by the element (pooled buffers,
// header records, closures) are released eagerly, exactly as a deque's
// element destruction would.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace clicsim::sim {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  [[nodiscard]] T& front() { return slots_[head_]; }
  [[nodiscard]] const T& front() const { return slots_[head_]; }

  void push_back(T value) {
    if (count_ == slots_.size()) grow();
    slots_[index_of(count_)] = std::move(value);
    ++count_;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  void pop_front() {
    slots_[head_] = T{};  // release the element's resources now
    head_ = (head_ + 1) % slots_.size();
    --count_;
  }

  void clear() {
    while (!empty()) pop_front();
  }

 private:
  [[nodiscard]] std::size_t index_of(std::size_t i) const {
    return (head_ + i) % slots_.size();
  }

  void grow() {
    std::vector<T> bigger(slots_.empty() ? 8 : slots_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(slots_[index_of(i)]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace clicsim::sim
