#include "sim/shard.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace clicsim::sim {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

// t + d without wrapping past kNever (t may be kNever itself).
inline SimTime saturating_add(SimTime t, SimTime d) {
  return (t > kNever - d) ? kNever : t + d;
}

}  // namespace

void SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    completion_();
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
  } else {
    // Bounded busy-wait, then yield: on an oversubscribed (or single-core)
    // host the last arriver may be descheduled, and pure spinning would
    // stall the whole group for a timeslice.
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins < 1024) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
  }
}

ShardGroup::ShardGroup(Simulator& home, int shards)
    : home_(home), barrier_(std::max(shards, 1), [this] { serial_phase(); }) {
  const int k = std::max(shards, 1);
  sims_.reserve(static_cast<std::size_t>(k));
  sims_.push_back(&home_);
  owned_.reserve(static_cast<std::size_t>(k - 1));
  for (int i = 1; i < k; ++i) {
    owned_.push_back(std::make_unique<Simulator>());
    sims_.push_back(owned_.back().get());
  }
  const auto kk = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);
  mailboxes_.resize(kk);
  lookahead_.assign(kk, kNever);
  sources_of_.resize(static_cast<std::size_t>(k));
  lanes_ = std::vector<Lane>(static_cast<std::size_t>(k));
  dst_buckets_.resize(static_cast<std::size_t>(k));
  earliest_.assign(static_cast<std::size_t>(k), kNever);
  windows_.assign(static_cast<std::size_t>(k), 0);
}

ShardGroup::~ShardGroup() {
  if (threads_.empty()) return;
  {
    const std::scoped_lock lock(run_mu_);
    shutdown_ = true;
  }
  run_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardGroup::declare_channel(int src, int dst, SimTime lookahead,
                                 const std::string& what) {
  if (src == dst) return;  // intra-shard: no window constraint
  if (lookahead <= 0) {
    std::ostringstream msg;
    msg << "ShardGroup::declare_channel: cross-shard channel " << what
        << " (shard " << src << " -> " << dst << ") has non-positive "
        << "lookahead " << lookahead
        << " ns; propagation + serialization floor must be > 0 or the "
        << "conservative window collapses";
    throw std::logic_error(msg.str());
  }
  SimTime& cell = lookahead_[static_cast<std::size_t>(src) *
                                 static_cast<std::size_t>(shards()) +
                             static_cast<std::size_t>(dst)];
  if (cell == kNever) {
    // First channel for this (src, dst) pair: src now bounds dst's window.
    auto& sources = sources_of_[static_cast<std::size_t>(dst)];
    sources.insert(std::lower_bound(sources.begin(), sources.end(), src),
                   src);
  }
  cell = std::min(cell, lookahead);
}

bool ShardGroup::pending() const {
  for (const Simulator* s : sims_) {
    if (s->pending()) return true;
  }
  // Undrained mailbox traffic: every post is injected exactly once, so the
  // grid holds events iff the monotone counters disagree — no k² walk.
  std::uint64_t posts = 0;
  for (const Lane& lane : lanes_) posts += lane.posts;
  return posts != events_drained_;
}

SimTime ShardGroup::now() const {
  SimTime t = 0;
  for (const Simulator* s : sims_) t = std::max(t, s->now());
  return t;
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t n = 0;
  for (const Simulator* s : sims_) n += s->events_executed();
  return n;
}

std::uint64_t ShardGroup::cross_shard_posts() const {
  std::uint64_t n = 0;
  for (const Lane& lane : lanes_) n += lane.posts;
  return n;
}

void ShardGroup::record_error() {
  const std::scoped_lock lock(error_mu_);
  if (!first_error_) first_error_ = std::current_exception();
  failed_.store(true, std::memory_order_release);
}

// Runs between windows on whichever thread reached the barrier last; all
// shard state is quiescent (happens-before via the barrier).
void ShardGroup::serial_phase() {
  try {
    ++barrier_waits_;
    const int k = shards();

    // Inject the dirty mailboxes first — even when stopping — so pending()
    // and the destination queues are accurate at exit. The per-source
    // dirty lists are merged into per-destination buckets and walked
    // destination-major, source ascending, FIFO within a mailbox: with the
    // event heap's insertion-seq tie-break this is the (time, src-shard,
    // post-order) merge rule. Work is proportional to the mailboxes that
    // were actually posted to, not to the k² grid.
    for (int src = 0; src < k; ++src) {
      Lane& lane = lanes_[static_cast<std::size_t>(src)];
      for (const int dst : lane.dirty_dsts) {
        auto& bucket = dst_buckets_[static_cast<std::size_t>(dst)];
        if (bucket.empty()) touched_dsts_.push_back(dst);
        bucket.push_back(src);  // src ascends: outer loop order
      }
      lane.dirty_dsts.clear();
    }
    std::sort(touched_dsts_.begin(), touched_dsts_.end());
    for (const int dst : touched_dsts_) {
      Simulator& dst_sim = *sims_[static_cast<std::size_t>(dst)];
      SimTime earliest = kNever;
      auto& bucket = dst_buckets_[static_cast<std::size_t>(dst)];
      for (const int src : bucket) {
        mailbox(src, dst).drain_into(drain_scratch_);
        for (PostedEvent& ev : drain_scratch_) {
          earliest = std::min(earliest, ev.when);
          dst_sim.at(ev.when, std::move(ev.action));
          ++events_drained_;
        }
        drain_scratch_.clear();
      }
      bucket.clear();
      // The injections may precede the time the worker published before
      // arriving; fold them in so the window algebra below sees the true
      // head of the destination's queue without re-peeking the heap.
      Lane& lane = lanes_[static_cast<std::size_t>(dst)];
      lane.published_next = std::min(lane.published_next, earliest);
    }
    touched_dsts_.clear();

    if (failed_.load(std::memory_order_acquire)) {
      done_ = true;
      return;
    }
    for (const Simulator* s : sims_) {
      if (s->stop_requested()) {
        done_ = true;
        return;
      }
    }

    SimTime t_min = kNever;
    for (const Lane& lane : lanes_) {
      t_min = std::min(t_min, lane.published_next);
    }
    if (t_min == kNever || (bound_ != kNever && t_min > bound_)) {
      done_ = true;
      return;
    }

    // Per-destination window bounds. A shard's own published next-event
    // time is not a safe lower bound on when it might *send*: an idle shard
    // (published kNever) can be woken transitively — x posts into s, whose
    // handler posts into d at a time far behind d's clock if d was allowed
    // to run ahead. So first relax the published times over the lookahead
    // graph to the earliest instant each shard could possibly execute
    // *anything*, including chains of future injections:
    //   E[s] = min(next_event[s], min over x (E[x] + L[x][s])).
    // Every declared lookahead is > 0, so a cycle can never lower E and
    // Bellman-Ford converges in <= k passes over the declared edges. Then
    //   W[d] = min over src of (E[src] + L[src][d])
    // clamped to the run bound; a destination no channel chain can reach
    // runs to the bound in one window. Progress: the globally earliest
    // shard m has E[m] = t_min and every L > 0, so W[m] > t_min and m
    // executes its head event. Determinism: E and W depend only on
    // published next-event times and the declared matrix — a pure function
    // of simulation state, never of thread scheduling.
    ++windows_opened_;
    for (int s = 0; s < k; ++s) {
      earliest_[static_cast<std::size_t>(s)] =
          lanes_[static_cast<std::size_t>(s)].published_next;
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (int dst = 0; dst < k; ++dst) {
        SimTime& e = earliest_[static_cast<std::size_t>(dst)];
        for (const int src : sources_of_[static_cast<std::size_t>(dst)]) {
          const SimTime cand = saturating_add(
              earliest_[static_cast<std::size_t>(src)], lookahead(src, dst));
          if (cand < e) {
            e = cand;
            changed = true;
          }
        }
      }
    }
    for (int dst = 0; dst < k; ++dst) {
      SimTime w = kNever;
      for (const int src : sources_of_[static_cast<std::size_t>(dst)]) {
        w = std::min(w, saturating_add(earliest_[static_cast<std::size_t>(src)],
                                       lookahead(src, dst)));
      }
      if (bound_ != kNever && (w == kNever || w > bound_ + 1)) {
        w = bound_ + 1;
      }
      windows_[static_cast<std::size_t>(dst)] = w;
    }
  } catch (...) {
    record_error();
    done_ = true;
  }
}

void ShardGroup::worker_loop(int shard) {
  Simulator& sim = *sims_[static_cast<std::size_t>(shard)];
  Lane& lane = lanes_[static_cast<std::size_t>(shard)];
  for (;;) {
    // Publish the head of this shard's queue for the coordinator's window
    // algebra; the barrier's release is the happens-before edge.
    lane.published_next = sim.next_event_time();
    barrier_.arrive_and_wait();
    if (done_) break;
    try {
      sim.run_before(windows_[static_cast<std::size_t>(shard)]);
    } catch (...) {
      record_error();
      // Keep arriving at barriers so the group can agree to stop; the
      // serial phase sees failed_ and raises done_.
    }
  }
}

void ShardGroup::worker_body(int shard) {
  if (worker_wrapper_) {
    worker_wrapper_(shard, [this, shard] { worker_loop(shard); });
  } else {
    worker_loop(shard);
  }
}

void ShardGroup::persistent_worker(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      run_cv_.wait(lock, [&] { return shutdown_ || run_seq_ > seen; });
      if (shutdown_) return;
      seen = run_seq_;
    }
    worker_body(shard);
    {
      const std::scoped_lock lock(run_mu_);
      if (--running_workers_ == 0) idle_cv_.notify_all();
    }
  }
}

void ShardGroup::start_workers() {
  threads_.reserve(static_cast<std::size_t>(shards() - 1));
  for (int i = 1; i < shards(); ++i) {
    threads_.emplace_back([this, i] { persistent_worker(i); });
  }
}

std::uint64_t ShardGroup::run_bounded(SimTime bound) {
  if (shards() == 1) {
    return bound == kNever ? home_.run() : home_.run_until(bound);
  }

  const std::uint64_t before = events_executed();
  for (Simulator* s : sims_) s->clear_stop();
  bound_ = bound;
  done_ = false;
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  // Release the (lazily spawned, persistent) workers into this run; the
  // mutexed run_seq_ bump publishes all the state written above.
  if (threads_.empty()) start_workers();
  {
    const std::scoped_lock lock(run_mu_);
    running_workers_ = shards() - 1;
    ++run_seq_;
  }
  run_cv_.notify_all();

  worker_body(0);  // shard 0 runs on the calling thread

  {
    std::unique_lock<std::mutex> lock(run_mu_);
    idle_cv_.wait(lock, [&] { return running_workers_ == 0; });
  }

  if (first_error_) std::rethrow_exception(first_error_);

  // Match the single-Simulator clock at exit: a bounded run that ends
  // quiet leaves every shard at the bound (as run_until does), and an
  // unbounded run leaves every shard at the time of the globally last
  // executed event (as run does). Without the latter, a shard that went
  // idle early keeps a stale clock and anything derived from its sim's
  // now() — resource utilization above all — diverges from --shards 1.
  bool any_stop = false;
  for (const Simulator* s : sims_) any_stop |= s->stop_requested();
  if (!any_stop) {
    SimTime final_clock = bound;
    if (final_clock == kNever) {
      final_clock = 0;
      for (const Simulator* s : sims_) {
        final_clock = std::max(final_clock, s->now());
      }
    }
    for (Simulator* s : sims_) s->advance_now(final_clock);
  }
  return events_executed() - before;
}

}  // namespace clicsim::sim
