#include "sim/shard.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace clicsim::sim {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

void SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    completion_();
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
  } else {
    // Bounded busy-wait, then yield: on an oversubscribed (or single-core)
    // host the last arriver may be descheduled, and pure spinning would
    // stall the whole group for a timeslice.
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins < 1024) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
  }
}

ShardGroup::ShardGroup(Simulator& home, int shards)
    : home_(home), barrier_(std::max(shards, 1), [this] { serial_phase(); }) {
  const int k = std::max(shards, 1);
  sims_.reserve(static_cast<std::size_t>(k));
  sims_.push_back(&home_);
  owned_.reserve(static_cast<std::size_t>(k - 1));
  for (int i = 1; i < k; ++i) {
    owned_.push_back(std::make_unique<Simulator>());
    sims_.push_back(owned_.back().get());
  }
  mailboxes_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
}

void ShardGroup::declare_channel(int src, int dst, SimTime lookahead,
                                 const std::string& what) {
  if (src == dst) return;  // intra-shard: no window constraint
  if (lookahead <= 0) {
    std::ostringstream msg;
    msg << "ShardGroup::declare_channel: cross-shard channel " << what
        << " (shard " << src << " -> " << dst << ") has non-positive "
        << "lookahead " << lookahead
        << " ns; propagation + serialization floor must be > 0 or the "
        << "conservative window collapses";
    throw std::logic_error(msg.str());
  }
  min_lookahead_ = std::min(min_lookahead_, lookahead);
}

bool ShardGroup::pending() const {
  for (const Simulator* s : sims_) {
    if (s->pending()) return true;
  }
  for (const SpscMailbox& m : mailboxes_) {
    if (!m.empty()) return true;
  }
  return false;
}

SimTime ShardGroup::now() const {
  SimTime t = 0;
  for (const Simulator* s : sims_) t = std::max(t, s->now());
  return t;
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t n = 0;
  for (const Simulator* s : sims_) n += s->events_executed();
  return n;
}

std::uint64_t ShardGroup::cross_shard_posts() const {
  std::uint64_t n = 0;
  for (const SpscMailbox& m : mailboxes_) n += m.posts();
  return n;
}

void ShardGroup::record_error() {
  const std::scoped_lock lock(error_mu_);
  if (!first_error_) first_error_ = std::current_exception();
  failed_.store(true, std::memory_order_release);
}

// Runs between windows on whichever thread reached the barrier last; all
// shard state is quiescent (happens-before via the barrier).
void ShardGroup::serial_phase() {
  try {
    // Inject every mailbox first — even when stopping — so pending() and
    // the destination queues are accurate at exit. Destination-major,
    // source ascending, FIFO within a mailbox: with the event heap's
    // insertion-seq tie-break this is the (time, src-shard, post-order)
    // merge rule.
    const int k = shards();
    for (int dst = 0; dst < k; ++dst) {
      for (int src = 0; src < k; ++src) {
        if (src == dst) continue;
        SpscMailbox& box = mailbox(src, dst);
        if (box.empty()) continue;
        box.drain_into(drain_scratch_);
        for (PostedEvent& ev : drain_scratch_) {
          sims_[static_cast<std::size_t>(dst)]->at(ev.when,
                                                   std::move(ev.action));
        }
        drain_scratch_.clear();
      }
    }

    if (failed_.load(std::memory_order_acquire)) {
      done_ = true;
      return;
    }
    for (const Simulator* s : sims_) {
      if (s->stop_requested()) {
        done_ = true;
        return;
      }
    }

    SimTime t_min = kNever;
    for (const Simulator* s : sims_) {
      t_min = std::min(t_min, s->next_event_time());
    }
    if (t_min == kNever || (bound_ != kNever && t_min > bound_)) {
      done_ = true;
      return;
    }

    // Window bound: min(T + L, bound + 1), saturating. With no declared
    // cross-shard channel (L == kNever) the shards are independent and one
    // window runs them to the bound.
    SimTime w = kNever;
    if (min_lookahead_ != kNever) {
      w = (t_min > kNever - min_lookahead_) ? kNever : t_min + min_lookahead_;
    }
    if (bound_ != kNever && (w == kNever || w > bound_ + 1)) {
      w = bound_ + 1;
    }
    window_ = w;
  } catch (...) {
    record_error();
    done_ = true;
  }
}

void ShardGroup::worker_loop(int shard) {
  Simulator& sim = *sims_[static_cast<std::size_t>(shard)];
  for (;;) {
    barrier_.arrive_and_wait();
    if (done_) break;
    try {
      sim.run_before(window_);
    } catch (...) {
      record_error();
      // Keep arriving at barriers so the group can agree to stop; the
      // serial phase sees failed_ and raises done_.
    }
  }
}

std::uint64_t ShardGroup::run_bounded(SimTime bound) {
  if (shards() == 1) {
    return bound == kNever ? home_.run() : home_.run_until(bound);
  }

  const std::uint64_t before = events_executed();
  for (Simulator* s : sims_) s->clear_stop();
  bound_ = bound;
  done_ = false;
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  auto body_for = [this](int shard) {
    return [this, shard] {
      if (worker_wrapper_) {
        worker_wrapper_(shard, [this, shard] { worker_loop(shard); });
      } else {
        worker_loop(shard);
      }
    };
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(shards() - 1));
  for (int i = 1; i < shards(); ++i) {
    workers.emplace_back(body_for(i));
  }
  body_for(0)();  // shard 0 runs on the calling thread
  for (std::thread& t : workers) t.join();

  if (first_error_) std::rethrow_exception(first_error_);

  // Match the single-Simulator clock at exit: a bounded run that ends
  // quiet leaves every shard at the bound (as run_until does), and an
  // unbounded run leaves every shard at the time of the globally last
  // executed event (as run does). Without the latter, a shard that went
  // idle early keeps a stale clock and anything derived from its sim's
  // now() — resource utilization above all — diverges from --shards 1.
  bool any_stop = false;
  for (const Simulator* s : sims_) any_stop |= s->stop_requested();
  if (!any_stop) {
    SimTime final_clock = bound;
    if (final_clock == kNever) {
      final_clock = 0;
      for (const Simulator* s : sims_) {
        final_clock = std::max(final_clock, s->now());
      }
    }
    for (Simulator* s : sims_) s->advance_now(final_clock);
  }
  return events_executed() - before;
}

}  // namespace clicsim::sim
