#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace clicsim::sim {

std::uint32_t EventQueue::acquire_slot_slow() {
  if (slab_size_ > kSlotMask) {
    throw std::length_error("EventQueue: more than 2^24 pending events");
  }
  if ((slab_size_ >> kChunkBits) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Action[]>(kChunkSize));
  }
  return slab_size_++;
}

void EventQueue::do_push(SimTime t, std::uint64_t seq, Action action) {
  const std::uint32_t slot = acquire_slot();
  slot_ref(slot) = std::move(action);
  insert_handle(t, seq, slot);
}

EventQueue::Event EventQueue::pop() {
  const Handle top = heap_[0];
  const auto slot = static_cast<std::uint32_t>(top.seq_slot & kSlotMask);
  Event ev{top.time, std::move(slot_ref(slot))};
  free_.push_back(slot);

  const Handle last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, last);
  return ev;
}

}  // namespace clicsim::sim
