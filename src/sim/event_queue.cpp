#include "sim/event_queue.hpp"

#include <utility>

namespace clicsim::sim {

void EventQueue::push(SimTime t, Action action) {
  heap_.push(Entry{t, next_seq_++, std::move(action)});
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kNever : heap_.top().time;
}

EventQueue::Event EventQueue::pop() {
  // std::priority_queue::top() is const; the action must be moved out, so we
  // cast away constness of the popped entry. The entry is removed right
  // after, so no observer can see the moved-from state.
  auto& top = const_cast<Entry&>(heap_.top());
  Event ev{top.time, std::move(top.action)};
  heap_.pop();
  return ev;
}

}  // namespace clicsim::sim
