// Cluster-wide fault orchestration: a time-scripted + seeded-random
// campaign driver.
//
// A FaultPlan owns a set of named, toggleable fault *targets* (a link's
// carrier, a switch port, a NIC's DMA engine — anything with a fail/restore
// pair) and schedules outages against them on the owning Simulator's clock.
// Outages come from two sources that compose freely:
//
//   * scripts  — fail_between()/script_at() place exact, reviewable events
//                ("kill port 3 from 10 ms to 25 ms");
//   * campaigns — randomize() draws (target, start, duration) tuples from a
//                 named Rng stream seeded by the campaign seed, so an entire
//                 cluster-wide fault storm replays byte-identically from one
//                 integer and is independent of every other RNG consumer.
//
// Overlapping outages on one target nest (a depth counter): the target's
// restore hook runs only when the last overlapping outage ends, so hooks
// never see spurious up/down glitches. Campaign outages are clamped to end
// by Campaign::end — the bounded-failure contract the chaos soak relies on:
// after the fault window closes, every target is back up and the protocol's
// liveness obligations (resolve every confirmed send, quiesce, no orphan
// timers) become enforceable.
//
// The plan is strictly per-Simulator state: parallel sweep workers each own
// their plan, keeping PR 2's any-`-j` determinism intact.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

class FaultPlan {
 public:
  using Hook = std::function<void()>;

  FaultPlan(Simulator& sim, std::uint64_t seed);

  // Registers a toggleable target; returns its index. `fail` puts the
  // target into its failed state, `restore` brings it back.
  int add_target(std::string name, Hook fail, Hook restore);

  [[nodiscard]] int target_count() const {
    return static_cast<int>(targets_.size());
  }
  [[nodiscard]] const std::string& target_name(int index) const {
    return targets_.at(static_cast<std::size_t>(index)).name;
  }

  // --- Scripted faults -----------------------------------------------------

  // Schedules an arbitrary scripted action (e.g. "clear all loss at t").
  void script_at(SimTime t, Hook action);

  // Fails `target` over [from, to): fail hook at `from`, restore at `to`.
  void fail_between(int target, SimTime from, SimTime to);

  // --- Seeded-random campaigns --------------------------------------------

  struct Campaign {
    SimTime start = 0;
    SimTime end = seconds(1.0);
    int outages = 4;                       // random outages to schedule
    SimTime min_down = milliseconds(1.0);  // outage duration bounds
    SimTime max_down = milliseconds(20.0);
  };

  // Draws `outages` random (target, start, duration) tuples and schedules
  // them. Every outage ends by `campaign.end` (bounded failure). No-op when
  // no targets are registered.
  void randomize(const Campaign& campaign);

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t outages_scheduled() const { return outages_; }
  [[nodiscard]] std::uint64_t faults_fired() const { return fired_; }
  // Targets currently in the failed state (0 once a campaign has healed).
  [[nodiscard]] int active_failures() const { return active_; }

 private:
  struct Target {
    std::string name;
    Hook fail;
    Hook restore;
    int depth = 0;  // overlapping outages currently holding the target down
  };

  void enter_failure(int target);
  void leave_failure(int target);

  Simulator* sim_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<Target> targets_;
  std::uint64_t outages_ = 0;
  std::uint64_t fired_ = 0;
  int active_ = 0;
};

}  // namespace clicsim::sim
