// Cluster-wide fault orchestration: a time-scripted + seeded-random
// campaign driver.
//
// A FaultPlan owns a set of named, toggleable fault *targets* (a link's
// carrier, a switch port, a NIC's DMA engine — anything with a fail/restore
// pair) and schedules outages against them on the owning Simulator's clock.
// Outages come from two sources that compose freely:
//
//   * scripts  — fail_between()/script_at() place exact, reviewable events
//                ("kill port 3 from 10 ms to 25 ms");
//   * campaigns — randomize() draws (target, start, duration) tuples from a
//                 named Rng stream seeded by the campaign seed, so an entire
//                 cluster-wide fault storm replays byte-identically from one
//                 integer and is independent of every other RNG consumer.
//
// Overlapping outages on one target nest (a depth counter): the target's
// restore hook runs only when the last overlapping outage ends, so hooks
// never see spurious up/down glitches. Campaign outages are clamped to end
// by Campaign::end — the bounded-failure contract the chaos soak relies on:
// after the fault window closes, every target is back up and the protocol's
// liveness obligations (resolve every confirmed send, quiesce, no orphan
// timers) become enforceable.
//
// The plan is strictly per-Simulator state: parallel sweep workers each own
// their plan, keeping PR 2's any-`-j` determinism intact. Under the shard
// engine a target may span simulators (a cross-shard link's carrier has a
// half on each side): such targets register one Part per simulator, each
// part's hooks run on its own shard's clock, and only the first part
// counts toward the plan's statistics — so a sharded campaign reports the
// same numbers as the identical single-shard campaign.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

class FaultPlan {
 public:
  using Hook = std::function<void()>;

  FaultPlan(Simulator& sim, std::uint64_t seed);

  // One simulator's slice of a target. Every part of a target receives the
  // same outage schedule (on its own simulator); part 0 is the primary —
  // it alone drives faults_fired()/active_failures() and the debug log.
  struct Part {
    Simulator* sim = nullptr;
    Hook fail;
    Hook restore;
    int depth = 0;  // overlapping outages currently holding this part down
  };

  // Registers a toggleable target; returns its index. `fail` puts the
  // target into its failed state, `restore` brings it back, both on the
  // plan's own simulator.
  int add_target(std::string name, Hook fail, Hook restore);

  // Multi-simulator target (sharded topologies). `parts` must be
  // non-empty; depth bookkeeping is per part, so hooks still never see
  // nested up/down glitches.
  int add_target(std::string name, std::vector<Part> parts);

  [[nodiscard]] int target_count() const {
    return static_cast<int>(targets_.size());
  }
  [[nodiscard]] const std::string& target_name(int index) const {
    return targets_.at(static_cast<std::size_t>(index)).name;
  }

  // --- Scripted faults -----------------------------------------------------

  // Schedules an arbitrary scripted action (e.g. "clear all loss at t").
  void script_at(SimTime t, Hook action);

  // Scripted action split across simulators: each piece runs at `t` on its
  // own simulator, but the set counts as ONE fired fault (the first piece
  // carries the count), mirroring what one script_at() would report.
  void script_parts(SimTime t, std::vector<std::pair<Simulator*, Hook>> parts);

  // Fails `target` over [from, to): fail hook at `from`, restore at `to`.
  void fail_between(int target, SimTime from, SimTime to);

  // --- Seeded-random campaigns --------------------------------------------

  struct Campaign {
    SimTime start = 0;
    SimTime end = seconds(1.0);
    int outages = 4;                       // random outages to schedule
    SimTime min_down = milliseconds(1.0);  // outage duration bounds
    SimTime max_down = milliseconds(20.0);
  };

  // Draws `outages` random (target, start, duration) tuples and schedules
  // them. Every outage ends by `campaign.end` (bounded failure). No-op when
  // no targets are registered.
  void randomize(const Campaign& campaign);

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t outages_scheduled() const { return outages_; }
  [[nodiscard]] std::uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  // Targets currently in the failed state (0 once a campaign has healed).
  [[nodiscard]] int active_failures() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Target {
    std::string name;
    std::vector<Part> parts;
  };

  void enter_failure(int target, int part);
  void leave_failure(int target, int part);

  Simulator* sim_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<Target> targets_;
  std::uint64_t outages_ = 0;
  // Atomic: primary parts of different targets may fire concurrently on
  // different shard threads. The counters are only *read* after the run
  // joins (or between windows), so relaxed ordering suffices.
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<int> active_{0};
};

}  // namespace clicsim::sim
