// Cross-shard event mailboxes for the conservative PDES engine.
//
// A mailbox carries events posted by one shard (the producer) for another
// (the consumer). The sharded run loop is barrier-synchronized: producers
// only append during the parallel window, and the coordinator drains the
// posted-to mailboxes in the serial phase between windows, after all
// workers have hit the barrier. The barrier provides the happens-before
// edge in both directions, so the mailbox itself is a plain vector — no
// atomics, no locks, and (unlike a lock-free ring) no capacity limit to
// tune. Post/drain accounting lives in the ShardGroup's per-shard lanes
// (one cache line per producer), not here: the group finds work through
// its dirty lists rather than scanning the k² mailbox grid, and a mailbox
// that was never posted to is never touched at all.
//
// Determinism contract: the coordinator injects drained events into the
// consumer's event queue in (destination, source-shard, post-order) order;
// the event heap's insertion-sequence tie-break then realizes the global
// (time, src-shard, seq) merge rule (DESIGN.md §4g/§4i).
#pragma once

#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

// One event in flight between shards: an absolute delivery time plus the
// closure to run on the destination shard at that time.
struct PostedEvent {
  SimTime when = 0;
  Action action;
};

// Single-producer single-consumer mailbox; see file comment for why a bare
// vector is sufficient (and deterministic) under barrier-window sync.
class SpscMailbox {
 public:
  template <typename F>
  void post(SimTime when, F&& action) {
    posted_.push_back(PostedEvent{when, Action(std::forward<F>(action))});
  }

  [[nodiscard]] bool empty() const { return posted_.empty(); }
  [[nodiscard]] std::size_t size() const { return posted_.size(); }

  // Moves out the posted events in FIFO order and leaves the mailbox empty
  // (capacity retained, so steady-state draining does not allocate).
  std::vector<PostedEvent>& drain_into(std::vector<PostedEvent>& out) {
    out.clear();
    out.swap(posted_);
    return out;
  }

 private:
  std::vector<PostedEvent> posted_;
};

}  // namespace clicsim::sim
