// Sim-time-stamped component logging.
//
//   CLICSIM_LOG(sim, LogLevel::kDebug, "clic") << "tx seq=" << seq;
//
// Messages below the global level are dropped with near-zero cost (the
// stream expression is never evaluated). Benchmarks run with kWarn.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/simulator.hpp"

namespace clicsim::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

LogLevel log_level();
void set_log_level(LogLevel level);
std::string_view log_level_name(LogLevel level);

// Per-thread log sink. By default log lines go to stderr; a worker thread
// running one simulation of a parallel sweep redirects its output into a
// string buffer instead, so concurrent simulations never interleave and the
// harness can flush buffers in job order. Returns the previous sink
// (nullptr meaning stderr) so scopes can nest.
std::string* set_thread_log_sink(std::string* sink);
[[nodiscard]] std::string* thread_log_sink();

// RAII redirection of this thread's log output into `sink` (nullptr
// restores stderr for the scope).
class ScopedLogSink {
 public:
  explicit ScopedLogSink(std::string* sink)
      : previous_(set_thread_log_sink(sink)) {}
  ~ScopedLogSink() { set_thread_log_sink(previous_); }
  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  std::string* previous_;
};

// One log statement; flushes to the thread's sink on destruction.
class LogLine {
 public:
  LogLine(const Simulator& sim, LogLevel level, std::string_view component);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace clicsim::sim

#define CLICSIM_LOG(simulator_, level_, component_)        \
  if ((level_) < ::clicsim::sim::log_level()) {            \
  } else                                                   \
    ::clicsim::sim::LogLine((simulator_), (level_), (component_))
