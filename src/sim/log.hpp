// Sim-time-stamped component logging.
//
//   CLICSIM_LOG(sim, LogLevel::kDebug, "clic") << "tx seq=" << seq;
//
// Messages below the global level are dropped with near-zero cost (the
// stream expression is never evaluated). Benchmarks run with kWarn.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string_view>

#include "sim/simulator.hpp"

namespace clicsim::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

LogLevel log_level();
void set_log_level(LogLevel level);
std::string_view log_level_name(LogLevel level);

// One log statement; flushes to stderr on destruction.
class LogLine {
 public:
  LogLine(const Simulator& sim, LogLevel level, std::string_view component);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace clicsim::sim

#define CLICSIM_LOG(simulator_, level_, component_)        \
  if ((level_) < ::clicsim::sim::log_level()) {            \
  } else                                                   \
    ::clicsim::sim::LogLine((simulator_), (level_), (component_))
