// Simulated time: 64-bit signed nanoseconds since simulation start.
//
// All model constants and measurements in clicsim are expressed in SimTime.
// Helper factories (nanoseconds/microseconds/...) keep call sites readable;
// to_us/to_ms convert back for reporting.
#pragma once

#include <cstdint>

namespace clicsim::sim {

using SimTime = std::int64_t;  // nanoseconds

inline constexpr SimTime kNever = INT64_MAX;

constexpr SimTime nanoseconds(std::int64_t n) { return n; }
constexpr SimTime microseconds(double us) {
  return static_cast<SimTime>(us * 1e3);
}
constexpr SimTime milliseconds(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}
constexpr SimTime seconds(double s) { return static_cast<SimTime>(s * 1e9); }

constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(SimTime t) { return static_cast<double>(t) / 1e9; }

// Time to serialize `bytes` at `bits_per_second` (rounded up to whole ns).
constexpr SimTime transmission_time(std::int64_t bytes,
                                    double bits_per_second) {
  const double ns = static_cast<double>(bytes) * 8.0 * 1e9 / bits_per_second;
  return static_cast<SimTime>(ns + 0.999999);
}

// Time to move `bytes` at `bytes_per_second` (rounded up to whole ns).
constexpr SimTime transfer_time(std::int64_t bytes, double bytes_per_second) {
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_second;
  return static_cast<SimTime>(ns + 0.999999);
}

}  // namespace clicsim::sim
