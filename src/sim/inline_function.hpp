// Small-buffer-optimized, move-only callable: the event engine's closure
// type.
//
// Every simulated event is a callback; with std::function each capture
// larger than the library's tiny internal buffer costs a heap allocation
// and a matching free on the hot path. InlineFunction<N> stores any
// callable of up to N bytes inline (the default sim::Action gives 104
// bytes, enough for the per-frame closures that carry a net::Frame by
// value) and only falls back to the heap for oversized captures. The
// fallback is counted per thread so tests and benchmarks can assert the
// steady-state hot path allocates nothing.
//
// Move-only by design: event callbacks execute once and are never shared,
// so requiring movability (not copyability) both avoids accidental capture
// duplication and admits move-only captures (e.g. a net::Buffer moved into
// the closure).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace clicsim::sim {

template <std::size_t N>
class InlineFunction;

namespace detail {

// Wrapper types whose own emptiness must carry over when converted to an
// InlineFunction: wrapping an empty std::function would otherwise produce a
// non-empty InlineFunction that throws when invoked, defeating the
// `if (cb) cb();` guards callers rely on.
template <typename T>
struct is_nullable_callable : std::false_type {};
template <typename Sig>
struct is_nullable_callable<std::function<Sig>> : std::true_type {};
template <std::size_t M>
struct is_nullable_callable<InlineFunction<M>> : std::true_type {};

// Per-thread tallies of InlineFunction heap fallbacks. A Simulator is
// single-threaded, so a thread-local (rather than atomic) counter is exact
// for the simulation that owns the thread and costs nothing when unused.
struct InlineFunctionStats {
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_frees = 0;
};

inline thread_local InlineFunctionStats inline_function_stats;

}  // namespace detail

[[nodiscard]] inline std::uint64_t inline_function_heap_allocs() {
  return detail::inline_function_stats.heap_allocs;
}

template <std::size_t N>
class InlineFunction {
  struct VTable {
    void (*call)(void* storage);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    // sizeof(F) when F is inline, trivially copyable and trivially
    // destructible — the dominant case for event closures. Moves then
    // memcpy and destruction is a no-op, skipping the indirect calls.
    std::uint32_t trivial_size;
    bool inline_stored;
  };

  template <typename F, bool Inline>
  struct Manager {
    static F* object(void* storage) noexcept {
      if constexpr (Inline) {
        return std::launder(reinterpret_cast<F*>(storage));
      } else {
        return *static_cast<F**>(storage);
      }
    }
    static void call(void* storage) { (*object(storage))(); }
    static void relocate(void* dst, void* src) noexcept {
      if constexpr (Inline) {
        ::new (dst) F(std::move(*object(src)));
        object(src)->~F();
      } else {
        *static_cast<F**>(dst) = object(src);
      }
    }
    static void destroy(void* storage) noexcept {
      if constexpr (Inline) {
        object(storage)->~F();
      } else {
        delete object(storage);
        ++detail::inline_function_stats.heap_frees;
      }
    }
    static constexpr VTable vtable{
        &call, &relocate, &destroy,
        Inline && std::is_trivially_copyable_v<F> &&
                std::is_trivially_destructible_v<F>
            ? static_cast<std::uint32_t>(sizeof(F))
            : 0u,
        Inline};
  };

  void destroy_stored() noexcept {
    if (vtable_ != nullptr && vtable_->trivial_size == 0) {
      vtable_->destroy(storage_);
    }
  }

  void adopt(InlineFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->trivial_size != 0) {
        // A stateless callable (empty lambda) never wrote its storage;
        // copying those indeterminate bytes is harmless but trips GCC's
        // -Wmaybe-uninitialized.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
        std::memcpy(storage_, other.storage_, vtable_->trivial_size);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      } else {
        vtable_->relocate(storage_, other.storage_);
      }
      other.vtable_ = nullptr;
    }
  }

 public:
  static constexpr std::size_t inline_capacity = N;

  // User-provided (not `= default`) so that value-initialization — the
  // ubiquitous `Action done = {}` default argument — does not zero the
  // inline buffer on every call.
  InlineFunction() noexcept {}
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    construct_from(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { adopt(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      destroy_stored();
      adopt(other);
    }
    return *this;
  }

  // Assigning a callable directly constructs it in place — the event slab
  // overwrites recycled slots this way without materializing and moving a
  // temporary InlineFunction.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  InlineFunction& operator=(F&& f) {
    destroy_stored();
    vtable_ = nullptr;
    construct_from(std::forward<F>(f));
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    destroy_stored();
    vtable_ = nullptr;
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { destroy_stored(); }

  void operator()() { vtable_->call(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  // True when the callable lives in the inline buffer (test observability).
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_stored;
  }

 private:
  template <typename F>
  void construct_from(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (detail::is_nullable_callable<D>::value) {
      if (!f) return;  // an empty wrapper converts to an empty InlineFunction
    }
    constexpr bool fits = sizeof(D) <= N &&
                          alignof(D) <= alignof(std::max_align_t) &&
                          std::is_nothrow_move_constructible_v<D>;
    if constexpr (fits) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ++detail::inline_function_stats.heap_allocs;
    }
    vtable_ = &Manager<D, fits>::vtable;
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[N];
};

// The engine-wide event callback type. 104 bytes holds the largest hot
// closures (this + handler + a net::Frame by value); anything bigger takes
// the counted heap fallback.
using Action = InlineFunction<104>;

}  // namespace clicsim::sim
