// Deterministic time-ordered event queue.
//
// Events scheduled for the same instant execute in insertion order (a
// monotonically increasing sequence number breaks ties), which makes every
// simulation run bit-reproducible for a given seed and parameter set.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace clicsim::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `t`.
  void push(SimTime t, Action action);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; kNever when empty.
  [[nodiscard]] SimTime next_time() const;

  // Removes and returns the earliest event. Precondition: !empty().
  struct Event {
    SimTime time;
    Action action;
  };
  Event pop();

  // Total events ever pushed (for engine micro-benchmarks / diagnostics).
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace clicsim::sim
