// Deterministic time-ordered event queue.
//
// Events scheduled for the same instant execute in insertion order (a
// monotonically increasing sequence number breaks ties), which makes every
// simulation run bit-reproducible for a given seed and parameter set.
//
// Layout: the heap orders 16-byte POD handles {time, seq|slot} in an
// index-based 4-ary min-heap, while the callbacks live in a recycling slab
// addressed by the handle's slot bits. Sift operations therefore move two
// machine words per level instead of entries carrying a type-erased
// callable, and slab slots are reused through a free list so a simulation
// in steady state performs no allocation per event.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

class EventQueue {
 public:
  using Action = sim::Action;

  // Schedules `action` at absolute time `t`.
  void push(SimTime t, Action action) { do_push(t, next_seq_++, std::move(action)); }

  // Emplace variants: the callable is constructed directly in its slab
  // slot, avoiding the intermediate InlineFunction materialization and
  // relocation that the by-value `push` overloads pay per hand-off.
  template <typename F>
  void emplace(SimTime t, F&& f) {
    emplace_reserved(t, next_seq_++, std::forward<F>(f));
  }

  template <typename F>
  void emplace_reserved(SimTime t, std::uint64_t seq, F&& f) {
    const std::uint32_t slot = acquire_slot();
    slot_ref(slot) = std::forward<F>(f);
    insert_handle(t, seq, slot);
  }

  // Draws the sequence number the next push would use without scheduling
  // anything. The timer wheel reserves a sequence per timer at arm time and
  // replays it through push_reserved at dispatch, so a timer fires with the
  // same same-instant tie-break rank as a plain event scheduled when the
  // timer was armed.
  [[nodiscard]] std::uint64_t reserve_seq() { return next_seq_++; }

  // Schedules `action` at `t` with a sequence from reserve_seq(). Each
  // reserved sequence may be in the queue at most once at a time.
  void push_reserved(SimTime t, std::uint64_t seq, Action action) {
    do_push(t, seq, std::move(action));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; kNever when empty.
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? kNever : heap_[0].time;
  }

  // Removes and returns the earliest event. Precondition: !empty().
  struct Event {
    SimTime time;
    Action action;
  };
  Event pop();

  // Removes the earliest event and runs its callback *in place* in the
  // slab — the simulator's dispatch path. Skipping the move-out saves a
  // relocation + destruction per event; it is safe because slab chunks
  // never move, so callbacks pushed from inside the running callback cannot
  // invalidate its storage. Precondition: !empty().
  void run_earliest() {
    const Handle top = heap_[0];
    const auto slot = static_cast<std::uint32_t>(top.seq_slot & kSlotMask);

    const Handle last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, last);

    // The slot is recycled only after the callback returns, so a push from
    // inside the callback cannot overwrite the executing closure.
    Action& action = slot_ref(slot);
    action();
    action = nullptr;
    free_.push_back(slot);
  }

  // Total events ever pushed (for engine micro-benchmarks / diagnostics).
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

 private:
  // 16-byte heap handle. The low kSlotBits of `seq_slot` address the slab
  // slot holding the callback; the high bits carry the insertion sequence.
  // Sequence numbers are unique, so comparing the packed word compares the
  // sequence (slot bits can never decide), which keeps the same-time
  // tie-break a single integer comparison. The packing bounds one queue at
  // 2^40 (~10^12) lifetime events and 2^24 concurrently pending ones.
  struct Handle {
    SimTime time;
    std::uint64_t seq_slot;
  };
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  static bool earlier(const Handle& a, const Handle& b) {
#ifdef __SIZEOF_INT128__
    // Branch-free lexicographic (time, seq) compare: fold the handle into
    // one signed 128-bit key. Event times are effectively random, so the
    // short-circuit form mispredicts on nearly every sift step; the folded
    // compare is a cmp/sbb pair with no branch at all.
    const auto ka = (static_cast<__int128>(a.time) << 64) |
                    static_cast<unsigned __int128>(a.seq_slot);
    const auto kb = (static_cast<__int128>(b.time) << 64) |
                    static_cast<unsigned __int128>(b.seq_slot);
    return ka < kb;
#else
    return a.time < b.time ||
           (a.time == b.time && a.seq_slot < b.seq_slot);
#endif
  }

  // The slab is chunked so slots have stable addresses: growth appends a
  // chunk instead of reallocating (which would relocate every pending
  // callback — and dangle the one executing in place in run_earliest).
  static constexpr unsigned kChunkBits = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;

  [[nodiscard]] Action& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkBits][slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return acquire_slot_slow();
  }
  std::uint32_t acquire_slot_slow();  // grows the slab (cold path)

  void do_push(SimTime t, std::uint64_t seq, Action action);

  void insert_handle(SimTime t, std::uint64_t seq, std::uint32_t slot) {
    const std::uint64_t seq_slot = (seq << kSlotBits) | slot;
    heap_.emplace_back();  // hole; sift_up fills it
    sift_up(heap_.size() - 1, Handle{t, seq_slot});
  }

  void sift_up(std::size_t i, Handle h) {
    Handle* a = heap_.data();
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(h, a[parent])) break;
      a[i] = a[parent];
      i = parent;
    }
    a[i] = h;
  }

  void sift_down(std::size_t i, Handle h) {
    const std::size_t n = heap_.size();
    Handle* a = heap_.data();
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      std::size_t best;
      if (first + 3 < n) {
        // Full fan-out: pairwise min keeps the scan short-circuit-free.
        const std::size_t b0 = first + (earlier(a[first + 1], a[first]) ? 1 : 0);
        const std::size_t b1 =
            first + 2 + (earlier(a[first + 3], a[first + 2]) ? 1 : 0);
        best = earlier(a[b1], a[b0]) ? b1 : b0;
      } else if (first < n) {
        best = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (earlier(a[c], a[best])) best = c;
        }
      } else {
        break;
      }
      if (!earlier(a[best], h)) break;
      a[i] = a[best];
      i = best;
    }
    a[i] = h;
  }

  std::vector<Handle> heap_;  // 4-ary min-heap of handles
  std::vector<std::unique_ptr<Action[]>> chunks_;  // slab, by slot
  std::uint32_t slab_size_ = 0;       // slots handed out so far
  std::vector<std::uint32_t> free_;   // recycled slab slots
  std::uint64_t next_seq_ = 0;
};

}  // namespace clicsim::sim
