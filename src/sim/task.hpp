// C++20 coroutine support for simulated processes.
//
// A `Task` is an eagerly-started, detached coroutine: protocol users
// (benchmark drivers, example applications, simulated processes) are written
// as ordinary sequential code that `co_await`s simulated delays and events.
//
//   sim::Task sender(sim::Simulator& sim, clic::Endpoint& ep) {
//     co_await sim::Delay{sim, sim::microseconds(10)};
//     co_await ep.send(peer, port, msg);
//   }
//
// Synchronization primitives:
//   Trigger  — multi-waiter pulse; fire() wakes every current waiter.
//   Gate     — latched trigger; once open(), waiters pass immediately.
//   Mailbox  — typed FIFO queue with awaitable pop().
//
// Waiter resumption always goes through the event queue (at now()+0), never
// inline, so firing a trigger from arbitrary model code cannot reenter the
// waiter's stack.
#pragma once

#include <coroutine>
#include <cstdio>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

// Detached coroutine task. The frame frees itself when the coroutine runs to
// completion; an unhandled exception terminates the simulation (model code
// reports errors through results, not exceptions).
class Task {
 public:
  struct promise_type {
    Task get_return_object() noexcept { return Task{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      std::fputs("clicsim: unhandled exception escaped a sim::Task\n", stderr);
      std::terminate();
    }
  };
};

// Awaitable pause of `delay` ns of simulated time.
struct Delay {
  Simulator& sim;
  SimTime delay;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim.after(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

// Multi-waiter pulse event. fire() wakes every coroutine currently waiting;
// coroutines that start waiting after the fire wait for the next one.
class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(&sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  struct Awaiter {
    Trigger& t;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { t.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter wait() noexcept { return Awaiter{*this}; }

  void fire() {
    std::vector<std::coroutine_handle<>> woken;
    woken.swap(waiters_);
    for (auto h : woken) sim_->after(0, [h] { h.resume(); });
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Latched event: once open, all present and future waiters pass through.
class Gate {
 public:
  explicit Gate(Simulator& sim) : sim_(&sim) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  struct Awaiter {
    Gate& g;
    bool await_ready() const noexcept { return g.open_; }
    void await_suspend(std::coroutine_handle<> h) { g.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter wait() noexcept { return Awaiter{*this}; }

  void open() {
    if (open_) return;
    open_ = true;
    std::vector<std::coroutine_handle<>> woken;
    woken.swap(waiters_);
    for (auto h : woken) sim_->after(0, [h] { h.resume(); });
  }

  [[nodiscard]] bool is_open() const noexcept { return open_; }

 private:
  friend struct Awaiter;

  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
  bool open_ = false;
};

// Typed FIFO with awaitable pop(). A push() hands its value directly to the
// oldest waiter (if any); otherwise the value queues. Direct handoff avoids
// the wake/steal race between a woken waiter and a concurrent ready pop.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(&sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(T value) {
    if (!waiters_.empty()) {
      PopAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(value));
      auto h = w->handle;
      sim_->after(0, [h] { h.resume(); });
    } else {
      queue_.push_back(std::move(value));
    }
  }

  struct PopAwaiter {
    Mailbox& m;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() const noexcept { return !m.queue_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      m.waiters_.push_back(this);
    }
    T await_resume() {
      if (slot.has_value()) return std::move(*slot);
      T v = std::move(m.queue_.front());
      m.queue_.pop_front();
      return v;
    }
  };

  [[nodiscard]] PopAwaiter pop() noexcept { return PopAwaiter{*this, {}, {}}; }

  // Non-blocking variant; empty optional when nothing is queued.
  std::optional<T> try_pop() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  friend struct PopAwaiter;

  Simulator* sim_;
  std::deque<T> queue_;
  std::deque<PopAwaiter*> waiters_;
};

// Single-value handoff between callback-driven model internals and a
// coroutine consumer: the model calls set(), the consumer co_awaits the
// Future. Copyable handle; at most one awaiter.
template <typename T>
class Future {
  struct State {
    Simulator* sim;
    std::optional<T> value;
    std::coroutine_handle<> waiter;
  };

 public:
  explicit Future(Simulator& sim)
      : state_(std::make_shared<State>(State{&sim, {}, {}})) {}

  void set(T value) {
    state_->value.emplace(std::move(value));
    if (state_->waiter) {
      auto h = state_->waiter;
      state_->waiter = {};
      state_->sim->after(0, [h] { h.resume(); });
    }
  }

  [[nodiscard]] bool ready() const { return state_->value.has_value(); }

  struct Awaiter {
    std::shared_ptr<State> state;
    bool await_ready() const noexcept { return state->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
    T await_resume() { return std::move(*state->value); }
  };

  [[nodiscard]] Awaiter operator co_await() const { return Awaiter{state_}; }

 private:
  std::shared_ptr<State> state_;
};

// N-party rendezvous: the first (parties-1) arrivals park; the last one
// releases everybody. Reusable across rounds (a generation counter keeps
// late wakers from consuming the next round).
class Barrier {
 public:
  Barrier(Simulator& sim, int parties)
      : sim_(&sim), parties_(parties), trigger_(sim) {}

  struct Awaiter {
    Trigger::Awaiter inner;
    bool release_now;
    bool await_ready() const noexcept { return release_now; }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter arrive_and_wait() {
    if (++arrived_ >= parties_) {
      arrived_ = 0;
      trigger_.fire();
      return Awaiter{trigger_.wait(), true};
    }
    return Awaiter{trigger_.wait(), false};
  }

  [[nodiscard]] int waiting() const {
    return static_cast<int>(trigger_.waiter_count());
  }

 private:
  Simulator* sim_;
  int parties_;
  int arrived_ = 0;
  Trigger trigger_;
};

namespace detail {
template <typename T>
Task await_all(std::vector<Future<T>> futures, Future<bool> done) {
  for (auto& f : futures) (void)co_await f;
  done.set(true);
}
}  // namespace detail

// Completes once every future in the set has a value — MPI_Waitall for a
// burst of nonblocking operations (our Futures double as requests).
template <typename T>
[[nodiscard]] Future<bool> when_all(Simulator& sim,
                                    std::vector<Future<T>> futures) {
  Future<bool> done(sim);
  detail::await_all(std::move(futures), done);
  return done;
}

}  // namespace clicsim::sim
