// Fixed-size worker pool for running independent simulations concurrently.
//
// A simulation is single-threaded and deterministic; the only concurrency in
// the library is *between* simulations. ParallelExecutor owns that: jobs are
// taken from an indexed FIFO (a single atomic cursor — no work stealing, no
// reordering of claims), each job writes only to its own result slot, and
// run_indexed() returns once every job has finished. With one thread the
// jobs run inline on the calling thread in index order, which is exactly the
// historical sequential behavior.
#pragma once

#include <cstddef>
#include <functional>

namespace clicsim::sim {

class ParallelExecutor {
 public:
  // `threads` <= 0 picks the hardware concurrency (at least 1).
  explicit ParallelExecutor(int threads = 0);

  [[nodiscard]] int threads() const { return threads_; }

  // Invokes job(i) for every i in [0, count), possibly concurrently, and
  // blocks until all have completed. `job` must be safe to call from
  // several threads at once for distinct indices. If a job throws, the
  // first exception (by completion order) is rethrown after the pool
  // drains; remaining queued jobs still run.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& job) const;

  // Hardware concurrency with a floor of 1 (what `threads = 0` resolves to).
  [[nodiscard]] static int default_threads();

 private:
  int threads_ = 1;
};

}  // namespace clicsim::sim
