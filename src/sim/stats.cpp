#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace clicsim::sim {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Histogram::add(std::int64_t value) {
  int b = 0;
  if (value > 0) {
    b = 63 - std::countl_zero(static_cast<std::uint64_t>(value));
  }
  b = std::clamp(b, 0, kBuckets - 1);
  ++buckets_[b];
  ++total_;
}

std::int64_t Histogram::quantile_bound(double q) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t acc = 0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += buckets_[i];
    if (acc >= target) {
      return i >= 62 ? INT64_MAX : (std::int64_t{1} << (i + 1)) - 1;
    }
  }
  return INT64_MAX;
}

void Histogram::print(std::ostream& os, const std::string& label) const {
  os << label << " (n=" << total_ << ")\n";
  if (total_ == 0) return;
  std::uint64_t maxb = 0;
  for (auto b : buckets_) maxb = std::max(maxb, b);
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const auto lo = std::int64_t{1} << i;
    const int bar = static_cast<int>(
        50.0 * static_cast<double>(buckets_[i]) / static_cast<double>(maxb));
    os << std::setw(14) << lo << " | " << std::string(bar, '#') << ' '
       << buckets_[i] << '\n';
  }
}

HdrHistogram::HdrHistogram(int significant_digits, std::int64_t max_trackable)
    : sig_digits_(significant_digits), max_trackable_(max_trackable) {
  if (significant_digits < 1 || significant_digits > 5) {
    throw std::invalid_argument("HdrHistogram: significant_digits in [1,5]");
  }
  if (max_trackable < 2) {
    throw std::invalid_argument("HdrHistogram: max_trackable < 2");
  }
  // Smallest power of two >= 2 * 10^digits: guarantees every sub-bucket is
  // narrower than one part in 10^digits of any value in its bucket.
  std::int64_t needed = 2;
  for (int d = 0; d < significant_digits; ++d) needed *= 10;
  sub_bucket_mag_ = std::bit_width(static_cast<std::uint64_t>(needed - 1));
  sub_bucket_half_ = 1 << (sub_bucket_mag_ - 1);
  const int top_bucket = bucket_of(max_trackable);
  counts_.assign(
      static_cast<std::size_t>(top_bucket + 2) *
          static_cast<std::size_t>(sub_bucket_half_),
      0);
}

int HdrHistogram::bucket_of(std::int64_t value) const {
  const int bit_len =
      64 - std::countl_zero(static_cast<std::uint64_t>(value) | 1u);
  return std::max(0, bit_len - sub_bucket_mag_);
}

std::int64_t HdrHistogram::clamp(std::int64_t value) const {
  return std::clamp<std::int64_t>(value, 0, max_trackable_);
}

std::size_t HdrHistogram::index_of(std::int64_t value) const {
  const int bucket = bucket_of(value);
  const std::int64_t sub = value >> bucket;
  return static_cast<std::size_t>(bucket + 1) *
             static_cast<std::size_t>(sub_bucket_half_) +
         static_cast<std::size_t>(sub - sub_bucket_half_);
}

std::int64_t HdrHistogram::value_at(std::size_t index) const {
  const auto half = static_cast<std::size_t>(sub_bucket_half_);
  if (index < 2 * half) return static_cast<std::int64_t>(index);
  const int bucket = static_cast<int>(index / half) - 1;
  const auto sub = static_cast<std::int64_t>(index - half * static_cast<std::size_t>(bucket));
  return sub << bucket;
}

std::int64_t HdrHistogram::lowest_equivalent(std::int64_t value) const {
  value = clamp(value);
  const int bucket = bucket_of(value);
  return (value >> bucket) << bucket;
}

std::int64_t HdrHistogram::highest_equivalent(std::int64_t value) const {
  value = clamp(value);
  const int bucket = bucket_of(value);
  return (((value >> bucket) + 1) << bucket) - 1;
}

void HdrHistogram::add(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value > max_trackable_) saturated_ += count;
  const std::int64_t v = clamp(value);
  counts_[index_of(v)] += count;
  total_ += count;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  sum_ += static_cast<std::uint64_t>(v) * count;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (other.sig_digits_ != sig_digits_ ||
      other.max_trackable_ != max_trackable_) {
    throw std::invalid_argument("HdrHistogram::merge: configuration mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  saturated_ += other.saturated_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double HdrHistogram::mean() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(total_);
}

std::int64_t HdrHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(
             total_, static_cast<std::uint64_t>(
                         std::ceil(q * static_cast<double>(total_)))));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= rank) {
      // Never report beyond the recorded max: q = 1 is exact.
      return std::min(highest_equivalent(value_at(i)), max_);
    }
  }
  return max_;
}

void HdrHistogram::print(std::ostream& os, const std::string& label) const {
  os << label << " n=" << total_ << " mean=" << std::fixed
     << std::setprecision(1) << mean() << " p50=" << quantile(0.50)
     << " p99=" << quantile(0.99) << " p999=" << quantile(0.999)
     << " max=" << max() << '\n';
  os.unsetf(std::ios::fixed);
}

void HdrHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  saturated_ = 0;
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = 0;
  sum_ = 0;
}

double Series::at(double x) const {
  if (points_.empty()) return 0.0;
  if (x <= points_.front().x) return points_.front().y;
  if (x >= points_.back().x) return points_.back().y;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].x >= x) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double t = (x - a.x) / (b.x - a.x);
      return a.y + t * (b.y - a.y);
    }
  }
  return points_.back().y;
}

double Series::first_x_reaching(double level) const {
  for (const auto& p : points_) {
    if (p.y >= level) return p.x;
  }
  return std::nan("");
}

double Series::max_y() const {
  double m = 0.0;
  for (const auto& p : points_) m = std::max(m, p.y);
  return m;
}

void print_series_table(std::ostream& os, const std::string& x_label,
                        const std::vector<const Series*>& series) {
  os << std::setw(12) << x_label;
  for (const auto* s : series) os << std::setw(16) << s->name();
  os << '\n';
  if (series.empty()) return;
  const auto& grid = series.front()->points();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    os << std::setw(12) << static_cast<std::int64_t>(grid[i].x);
    for (const auto* s : series) {
      os << std::setw(16) << std::fixed << std::setprecision(1)
         << (i < s->points().size() ? s->points()[i].y : 0.0);
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace clicsim::sim
