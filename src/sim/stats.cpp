#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace clicsim::sim {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Histogram::add(std::int64_t value) {
  int b = 0;
  if (value > 0) {
    b = 63 - std::countl_zero(static_cast<std::uint64_t>(value));
  }
  b = std::clamp(b, 0, kBuckets - 1);
  ++buckets_[b];
  ++total_;
}

std::int64_t Histogram::quantile_bound(double q) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t acc = 0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += buckets_[i];
    if (acc >= target) {
      return i >= 62 ? INT64_MAX : (std::int64_t{1} << (i + 1)) - 1;
    }
  }
  return INT64_MAX;
}

void Histogram::print(std::ostream& os, const std::string& label) const {
  os << label << " (n=" << total_ << ")\n";
  if (total_ == 0) return;
  std::uint64_t maxb = 0;
  for (auto b : buckets_) maxb = std::max(maxb, b);
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const auto lo = std::int64_t{1} << i;
    const int bar = static_cast<int>(
        50.0 * static_cast<double>(buckets_[i]) / static_cast<double>(maxb));
    os << std::setw(14) << lo << " | " << std::string(bar, '#') << ' '
       << buckets_[i] << '\n';
  }
}

double Series::at(double x) const {
  if (points_.empty()) return 0.0;
  if (x <= points_.front().x) return points_.front().y;
  if (x >= points_.back().x) return points_.back().y;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].x >= x) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double t = (x - a.x) / (b.x - a.x);
      return a.y + t * (b.y - a.y);
    }
  }
  return points_.back().y;
}

double Series::first_x_reaching(double level) const {
  for (const auto& p : points_) {
    if (p.y >= level) return p.x;
  }
  return std::nan("");
}

double Series::max_y() const {
  double m = 0.0;
  for (const auto& p : points_) m = std::max(m, p.y);
  return m;
}

void print_series_table(std::ostream& os, const std::string& x_label,
                        const std::vector<const Series*>& series) {
  os << std::setw(12) << x_label;
  for (const auto* s : series) os << std::setw(16) << s->name();
  os << '\n';
  if (series.empty()) return;
  const auto& grid = series.front()->points();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    os << std::setw(12) << static_cast<std::int64_t>(grid[i].x);
    for (const auto* s : series) {
      os << std::setw(16) << std::fixed << std::setprecision(1)
         << (i < s->points().size() ? s->points()[i].y : 0.0);
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace clicsim::sim
