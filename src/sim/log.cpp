#include "sim/log.hpp"

#include <atomic>
#include <cstdio>
#include <iomanip>

namespace clicsim::sim {

namespace {
// Atomic so a sweep worker reading the gate never races a main-thread
// set_log_level(); the level itself is process-wide policy.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
thread_local std::string* t_sink = nullptr;
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

std::string* set_thread_log_sink(std::string* sink) {
  std::string* previous = t_sink;
  t_sink = sink;
  return previous;
}

std::string* thread_log_sink() { return t_sink; }

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLine::LogLine(const Simulator& sim, LogLevel level,
                 std::string_view component) {
  stream_ << '[' << std::setw(12) << sim.now() << "ns] "
          << log_level_name(level) << ' ' << component << ": ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  if (t_sink != nullptr) {
    t_sink->append(stream_.str());
  } else {
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace clicsim::sim
