#include "sim/log.hpp"

#include <cstdio>
#include <iomanip>

namespace clicsim::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLine::LogLine(const Simulator& sim, LogLevel level,
                 std::string_view component) {
  stream_ << '[' << std::setw(12) << sim.now() << "ns] "
          << log_level_name(level) << ' ' << component << ": ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace clicsim::sim
