// Conservative parallel discrete-event simulation within one scenario.
//
// A ShardGroup partitions a scenario across K Simulator instances (shard 0
// is the caller-owned "home" simulator; shards 1..K-1 are owned by the
// group) and runs them on K threads in lockstep barrier windows:
//
//   serial phase    inject the dirty cross-shard mailboxes, relax the
//                   published per-shard next-event times over the lookahead
//                   graph into earliest-possible-execution times
//                     E[s] = min(next_event[s], min over x (E[x] + L[x][s]))
//                   (an idle shard can be woken transitively, so its own
//                   queue head alone is not a safe send bound), then open a
//                   per-destination window: shard d may advance to
//                     W[d] = min over src of (E[src] + L[src][d])
//                   where L is the per-channel lookahead matrix filled in
//                   by declare_channel (kNever where no channel exists);
//   parallel phase  every shard executes its own events with time < W[d].
//
// L[src][d] comes from the physical link parameters: a frame sent at time t
// over a cross-shard link arrives no earlier than t + lookahead (propagation
// plus the serialization floor, see net::Link), so no event executed inside
// shard src's window can produce an effect on shard d before W[d]. Only the
// channels that actually exist constrain a shard: on a leaf-sharded fabric
// a worker shard is bounded by shard 0's clock alone (its one trunk), and a
// shard with no incoming channel runs straight to the bound in one window —
// strictly wider windows, and strictly fewer barrier rounds, than the old
// single global min-lookahead bound. Mailboxes are only appended during the
// parallel phase and only drained in the serial phase — null-message-free
// conservative PDES.
//
// Determinism: the serial phase injects mailbox events destination-major,
// source-shard ascending, FIFO within each mailbox; the destination event
// heap breaks time ties by insertion sequence, which realizes a global
// (time, src-shard, post-order) merge rule. Window bounds are a pure
// function of simulation state (published next-event times and the declared
// matrix), never of thread scheduling, so a K-shard run is bit-identical
// to the same scenario on one shard (K == 1 delegates to the plain
// single-threaded Simulator verbatim).
//
// The serial phase is O(active): producers record the first post to a
// mailbox per window in a per-source dirty list, and the coordinator walks
// only those — never the k² (mostly never-declared) mailbox grid. Worker
// threads are spawned once, on the first multi-shard run, and persist
// across run()/run_until() calls (the chaos soak and sweep runners call
// run_bounded repeatedly; respawning K threads per call would dominate
// short runs), parked on a condition variable between runs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

// Spinning generation barrier. Windows are microseconds of simulated time
// and often only a handful of events, so futex-based std::barrier wakeups
// dominate the runtime; spinning with a bounded busy phase (then yielding,
// which keeps single-core hosts live) is the right trade. The last arriver
// runs the completion function before releasing the generation.
class SpinBarrier {
 public:
  SpinBarrier(int parties, std::function<void()> completion)
      : parties_(parties), completion_(std::move(completion)) {}

  void arrive_and_wait();

 private:
  int parties_;
  std::function<void()> completion_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

class ShardGroup {
 public:
  // `home` becomes shard 0; `shards - 1` additional simulators are created
  // and owned by the group. `shards` < 1 is clamped to 1.
  ShardGroup(Simulator& home, int shards);
  ~ShardGroup();

  [[nodiscard]] int shards() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] Simulator& shard(int i) { return *sims_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Simulator& shard(int i) const {
    return *sims_[static_cast<std::size_t>(i)];
  }

  // Registers a communication channel from shard `src` to shard `dst` whose
  // deliveries always trail the sending event by at least `lookahead` ns.
  // The (src, dst) entry of the lookahead matrix is the minimum over all
  // channels declared for that pair; shard `dst`'s window is bounded only
  // by the shards with a declared channel into it. Throws std::logic_error
  // when `lookahead` <= 0 (a zero-lookahead channel would shrink every
  // window to nothing — a silent deadlock); `what` names the offending
  // channel in the message. Posting on an undeclared channel is undefined:
  // the window algebra would not know to hold the destination back.
  void declare_channel(int src, int dst, SimTime lookahead,
                       const std::string& what);

  // Posts `action` for execution on shard `dst` at absolute time `when`.
  // Must be called from shard `src`'s worker during the parallel phase (or
  // from the controlling thread while the group is not running). `when`
  // must respect the declared lookahead of the (src, dst) channel.
  template <typename F>
  void post(int src, int dst, SimTime when, F&& action) {
    SpscMailbox& box = mailbox(src, dst);
    // First post into this box since the last drain: record it in the
    // producer's dirty list so the serial phase can find it without
    // scanning the k² grid. The list is owned by shard `src`'s thread.
    Lane& lane = lanes_[static_cast<std::size_t>(src)];
    if (box.empty()) lane.dirty_dsts.push_back(dst);
    box.post(when, std::forward<F>(action));
    ++lane.posts;
  }

  // Installs a wrapper around each shard worker's run loop, e.g. to enter
  // a per-thread buffer-pool scope. Called as wrapper(shard, body) once per
  // run; the wrapper must invoke body() exactly once. Shard 0's body runs
  // on the thread that called run(). Must be installed before the first
  // multi-shard run.
  void set_worker_wrapper(
      std::function<void(int, const std::function<void()>&)> wrapper) {
    worker_wrapper_ = std::move(wrapper);
  }

  // Lockstep execution across all shards; semantics match the Simulator
  // methods of the same name (run_until leaves every shard clock at `t`
  // unless some shard stopped). Return the number of events executed
  // across all shards by this call. With one shard these delegate to the
  // home simulator unmodified.
  std::uint64_t run() { return run_bounded(kNever); }
  std::uint64_t run_until(SimTime t) { return run_bounded(t); }
  std::uint64_t run_for(SimTime d) { return run_bounded(now() + d); }

  // Aggregate views over the shard set. Only valid while the group is not
  // running (the run-completion handshake is the happens-before edge).
  [[nodiscard]] bool pending() const;
  [[nodiscard]] SimTime now() const;  // max over shard clocks
  [[nodiscard]] std::uint64_t events_executed() const;  // sum over shards

  // Total events ever posted through the cross-shard mailboxes (monotone
  // across runs). This is the fabric's shard-boundary traffic meter: a
  // workload whose frames all stay behind their shard-local leaf switch
  // leaves it untouched. Backed by per-source counters, not a mailbox-grid
  // scan. Only valid while the group is not running.
  [[nodiscard]] std::uint64_t cross_shard_posts() const;

  // Engine instrumentation (monotone across runs; only valid while the
  // group is not running; all stay 0 with one shard, which never opens
  // windows). windows_opened() counts barrier rounds that released the
  // shards into a parallel window; barrier_waits() counts every completed
  // barrier round including the final round that raised done; drained
  // events equal cross_shard_posts() once a run has finished (every post
  // is injected exactly once).
  [[nodiscard]] std::uint64_t windows_opened() const {
    return windows_opened_;
  }
  [[nodiscard]] std::uint64_t barrier_waits() const { return barrier_waits_; }
  [[nodiscard]] std::uint64_t events_drained() const {
    return events_drained_;
  }

 private:
  // Per-shard coordination lane, owned by that shard's worker thread during
  // a run (and by the controlling thread between runs). Cache-line aligned
  // so one worker's post bookkeeping never false-shares with another's.
  struct alignas(64) Lane {
    SimTime published_next = kNever;  // next_event_time at barrier arrival
    std::vector<int> dirty_dsts;      // mailboxes first-posted this window
    std::uint64_t posts = 0;          // total cross-shard posts by this src
  };

  std::uint64_t run_bounded(SimTime bound);
  void serial_phase();
  void worker_loop(int shard);
  void worker_body(int shard);
  void persistent_worker(int shard);
  void start_workers();
  void record_error();

  SpscMailbox& mailbox(int src, int dst) {
    return mailboxes_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(shards()) +
                      static_cast<std::size_t>(dst)];
  }

  [[nodiscard]] SimTime lookahead(int src, int dst) const {
    return lookahead_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(shards()) +
                      static_cast<std::size_t>(dst)];
  }

  Simulator& home_;
  std::vector<std::unique_ptr<Simulator>> owned_;
  std::vector<Simulator*> sims_;
  std::vector<SpscMailbox> mailboxes_;
  std::vector<PostedEvent> drain_scratch_;

  // Per-channel lookahead matrix (k × k, kNever where undeclared) and, per
  // destination, the ascending list of source shards with a channel into
  // it — the only shards whose clocks bound that destination's window.
  std::vector<SimTime> lookahead_;
  std::vector<std::vector<int>> sources_of_;

  std::vector<Lane> lanes_;
  // Serial-phase scratch: per-destination source buckets, the list of
  // destinations touched this round, and the relaxed earliest-execution
  // times E[] the window algebra computes (kept allocated across rounds).
  std::vector<std::vector<int>> dst_buckets_;
  std::vector<int> touched_dsts_;
  std::vector<SimTime> earliest_;

  std::function<void(int, const std::function<void()>&)> worker_wrapper_;

  // Per-run coordination state. `windows_` and `done_` are written only in
  // the serial phase and read by workers after the barrier release; the
  // barrier's acquire/release pair is the happens-before edge.
  SpinBarrier barrier_;
  SimTime bound_ = kNever;
  std::vector<SimTime> windows_;
  bool done_ = false;
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;

  // Instrumentation (coordinator-owned; see accessors above).
  std::uint64_t windows_opened_ = 0;
  std::uint64_t barrier_waits_ = 0;
  std::uint64_t events_drained_ = 0;

  // Persistent worker pool. Threads are spawned on the first multi-shard
  // run and parked on `run_cv_` between runs; `run_seq_` increments release
  // one run, `idle_cv_` signals its completion back to the controller, and
  // the mutex hand-offs provide the happens-before edges for all the
  // single-threaded state above.
  std::vector<std::thread> threads_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  std::condition_variable idle_cv_;
  std::uint64_t run_seq_ = 0;
  int running_workers_ = 0;
  bool shutdown_ = false;
};

}  // namespace clicsim::sim
