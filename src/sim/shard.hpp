// Conservative parallel discrete-event simulation within one scenario.
//
// A ShardGroup partitions a scenario across K Simulator instances (shard 0
// is the caller-owned "home" simulator; shards 1..K-1 are owned by the
// group) and runs them on K threads in lockstep barrier windows:
//
//   serial phase    inject all cross-shard mailboxes, then compute
//                   T = min over shards of next_event_time() and the
//                   window bound W = min(T + L, run-bound), where L is the
//                   smallest declared cross-shard lookahead;
//   parallel phase  every shard executes its own events with time < W.
//
// L comes from the physical link parameters: a frame sent at time t over a
// cross-shard link arrives no earlier than t + lookahead (propagation plus
// the serialization floor, see net::Link), so no event executed inside the
// window [T, W) can produce a cross-shard effect before W. Mailboxes are
// therefore only appended during the parallel phase and only drained in the
// serial phase — null-message-free conservative PDES.
//
// Determinism: the serial phase injects mailbox events destination-major,
// source-shard ascending, FIFO within each mailbox; the destination event
// heap breaks time ties by insertion sequence, which realizes a global
// (time, src-shard, post-order) merge rule. A K-shard run is bit-identical
// to the same scenario on one shard (K == 1 delegates to the plain
// single-threaded Simulator verbatim).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

// Spinning generation barrier. Windows are microseconds of simulated time
// and often only a handful of events, so futex-based std::barrier wakeups
// dominate the runtime; spinning with a bounded busy phase (then yielding,
// which keeps single-core hosts live) is the right trade. The last arriver
// runs the completion function before releasing the generation.
class SpinBarrier {
 public:
  SpinBarrier(int parties, std::function<void()> completion)
      : parties_(parties), completion_(std::move(completion)) {}

  void arrive_and_wait();

 private:
  int parties_;
  std::function<void()> completion_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

class ShardGroup {
 public:
  // `home` becomes shard 0; `shards - 1` additional simulators are created
  // and owned by the group. `shards` < 1 is clamped to 1.
  ShardGroup(Simulator& home, int shards);

  [[nodiscard]] int shards() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] Simulator& shard(int i) { return *sims_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Simulator& shard(int i) const {
    return *sims_[static_cast<std::size_t>(i)];
  }

  // Registers a communication channel from shard `src` to shard `dst` whose
  // deliveries always trail the sending event by at least `lookahead` ns.
  // The group's window size is the minimum declared lookahead. Throws
  // std::logic_error when `lookahead` <= 0 (a zero-lookahead channel would
  // shrink every window to nothing — a silent deadlock); `what` names the
  // offending channel in the message.
  void declare_channel(int src, int dst, SimTime lookahead,
                       const std::string& what);

  // Posts `action` for execution on shard `dst` at absolute time `when`.
  // Must be called from shard `src`'s worker during the parallel phase (or
  // from the controlling thread while the group is not running). `when`
  // must respect the declared lookahead of the (src, dst) channel.
  template <typename F>
  void post(int src, int dst, SimTime when, F&& action) {
    mailbox(src, dst).post(when, std::forward<F>(action));
  }

  // Installs a wrapper around each shard worker's run loop, e.g. to enter
  // a per-thread buffer-pool scope. Called as wrapper(shard, body); the
  // wrapper must invoke body() exactly once. Shard 0's body runs on the
  // thread that called run().
  void set_worker_wrapper(
      std::function<void(int, const std::function<void()>&)> wrapper) {
    worker_wrapper_ = std::move(wrapper);
  }

  // Lockstep execution across all shards; semantics match the Simulator
  // methods of the same name (run_until leaves every shard clock at `t`
  // unless some shard stopped). Return the number of events executed
  // across all shards by this call. With one shard these delegate to the
  // home simulator unmodified.
  std::uint64_t run() { return run_bounded(kNever); }
  std::uint64_t run_until(SimTime t) { return run_bounded(t); }
  std::uint64_t run_for(SimTime d) { return run_bounded(now() + d); }

  // Aggregate views over the shard set.
  [[nodiscard]] bool pending() const;
  [[nodiscard]] SimTime now() const;  // max over shard clocks
  [[nodiscard]] std::uint64_t events_executed() const;  // sum over shards

  // Total events ever posted through the cross-shard mailboxes (monotone
  // across runs). This is the fabric's shard-boundary traffic meter: a
  // workload whose frames all stay behind their shard-local leaf switch
  // leaves it untouched. Only valid while the group is not running.
  [[nodiscard]] std::uint64_t cross_shard_posts() const;

 private:
  std::uint64_t run_bounded(SimTime bound);
  void serial_phase();
  void worker_loop(int shard);
  void record_error();

  SpscMailbox& mailbox(int src, int dst) {
    return mailboxes_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(shards()) +
                      static_cast<std::size_t>(dst)];
  }

  Simulator& home_;
  std::vector<std::unique_ptr<Simulator>> owned_;
  std::vector<Simulator*> sims_;
  std::vector<SpscMailbox> mailboxes_;
  std::vector<PostedEvent> drain_scratch_;
  SimTime min_lookahead_ = kNever;
  std::function<void(int, const std::function<void()>&)> worker_wrapper_;

  // Per-run coordination state. `window_` and `done_` are written only in
  // the serial phase and read by workers after the barrier release; the
  // barrier's acquire/release pair is the happens-before edge.
  SpinBarrier barrier_;
  SimTime bound_ = kNever;
  SimTime window_ = 0;
  bool done_ = false;
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace clicsim::sim
