// The discrete-event simulator: owns the clock and the event queue.
//
// A Simulator instance is single-threaded and deterministic. Independent
// simulations (e.g. the points of a parameter sweep) may run concurrently on
// different threads as long as each owns its Simulator.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `action` at absolute simulated time `t` (>= now()).
  void at(SimTime t, std::function<void()> action);

  // Schedules `action` `delay` ns from now (delay >= 0).
  void after(SimTime delay, std::function<void()> action) {
    at(now_ + delay, std::move(action));
  }

  // Runs until the event queue drains or stop() is called.
  // Returns the number of events executed.
  std::uint64_t run();

  // Runs events with time <= `t`; afterwards now() == t unless stopped
  // earlier or the queue drained past t.
  std::uint64_t run_until(SimTime t);

  std::uint64_t run_for(SimTime d) { return run_until(now_ + d); }

  // Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool pending() const { return !queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace clicsim::sim
