// The discrete-event simulator: owns the clock and the event queue.
//
// A Simulator instance is single-threaded and deterministic. Independent
// simulations (e.g. the points of a parameter sweep) may run concurrently on
// different threads as long as each owns its Simulator.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `action` at absolute simulated time `t` (>= now()).
  // Templated so a lambda argument is constructed directly in the event
  // slab rather than moved through an intermediate Action.
  template <typename F>
  void at(SimTime t, F&& action) {
    if (t < now_) {
      throw std::logic_error("Simulator::at: scheduling into the past");
    }
    queue_.emplace(t, std::forward<F>(action));
  }

  // Schedules `action` `delay` ns from now (delay >= 0).
  template <typename F>
  void after(SimTime delay, F&& action) {
    at(now_ + delay, std::forward<F>(action));
  }

  // Reserved-sequence scheduling (see EventQueue::reserve_seq): lets the
  // timer wheel give a timer the tie-break rank of its arming instant even
  // though the dispatching event is pushed later.
  [[nodiscard]] std::uint64_t reserve_seq() { return queue_.reserve_seq(); }

  template <typename F>
  void at_reserved(SimTime t, std::uint64_t seq, F&& action) {
    if (t < now_) {
      throw std::logic_error(
          "Simulator::at_reserved: scheduling into the past");
    }
    queue_.emplace_reserved(t, seq, std::forward<F>(action));
  }

  // Runs until the event queue drains or stop() is called.
  // Returns the number of events executed.
  std::uint64_t run();

  // Runs events with time <= `t`; afterwards now() == t unless stopped
  // earlier or the queue drained past t.
  std::uint64_t run_until(SimTime t);

  std::uint64_t run_for(SimTime d) { return run_until(now_ + d); }

  // Window execution for the sharded engine (sim/shard.hpp): runs events
  // with time strictly < `bound` and does NOT advance the clock to the
  // bound afterwards — between barrier windows a shard's clock must stay
  // on its last executed event so cross-shard injections at earlier times
  // inside the window remain schedulable. Unlike run_until() this does not
  // clear a pending stop(): a stop raised inside one window has to stay
  // visible to the coordinator at the next barrier.
  std::uint64_t run_before(SimTime bound);

  // Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  // Shard-engine hooks: the coordinator clears stops once per group run,
  // reads stop/next-event state at each barrier, and advances idle shards'
  // clocks when a bounded group run ends quiet.
  void clear_stop() { stopped_ = false; }
  [[nodiscard]] bool stop_requested() const { return stopped_; }
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }
  void advance_now(SimTime t) {
    if (t != kNever && t > now_) now_ = t;
  }

  [[nodiscard]] bool pending() const { return !queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace clicsim::sim
