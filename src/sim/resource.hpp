// Timed exclusive resources.
//
// FifoResource models a serial device with known occupancy per use (a link
// direction, a PCI bus, a memory bus approximated as a serial bandwidth
// pool). PriorityResource adds priority classes and models a CPU: interrupt
// work runs before softirq work runs before kernel work runs before user
// work, each item non-preemptively for its stated duration.
//
// Both track cumulative busy time so benchmarks can report utilization.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

// Serializes usages in submission order. O(1) per use: because service is
// FIFO and durations are known at submission, only the time the device next
// becomes free must be tracked.
class FifoResource {
 public:
  FifoResource(Simulator& sim, std::string name)
      : sim_(&sim), name_(std::move(name)) {}

  // Occupies the resource for `duration` starting when it becomes free;
  // `done` (optional) runs at completion.
  // Returns the completion time.
  SimTime submit(SimTime duration, Action done = {});

  [[nodiscard]] SimTime free_at() const { return free_at_; }
  [[nodiscard]] bool idle() const { return free_at_ <= sim_->now(); }
  [[nodiscard]] SimTime busy_time() const { return busy_ns_; }
  [[nodiscard]] std::uint64_t uses() const { return uses_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // Fraction of [0, now] the resource spent busy.
  [[nodiscard]] double utilization() const;

 private:
  Simulator* sim_;
  std::string name_;
  SimTime free_at_ = 0;
  SimTime busy_ns_ = 0;
  std::uint64_t uses_ = 0;
};

// Priority classes for PriorityResource (lower value = runs first).
enum class CpuPriority : int {
  kInterrupt = 0,
  kSoftirq = 1,
  kKernel = 2,
  kUser = 3,
};
inline constexpr int kCpuPriorityCount = 4;

// Non-preemptive priority-ordered serial resource (the per-node CPU).
// When the resource is free the highest-priority pending item starts and
// runs to completion; same-priority items run in submission order.
//
// One FIFO deque per priority class replaces the former fat-entry
// priority_queue: dispatch picks the highest non-empty class in O(1), and
// the queued completion closures are never sifted, only moved once in and
// once out. The running item's closure parks in a member slot so the
// simulator event that completes it captures nothing but `this`.
class PriorityResource {
 public:
  PriorityResource(Simulator& sim, std::string name)
      : sim_(&sim), name_(std::move(name)) {}

  // Queues `duration` of work at `prio`; `done` runs when the work item
  // finishes executing.
  void submit(CpuPriority prio, SimTime duration, Action done = {});

  // Queues work that runs BEFORE anything already queued at the same
  // priority — a continuation of the currently-executing work item (e.g.
  // the ack a protocol sends inline while processing a segment, which must
  // not queue behind the rest of the softirq backlog).
  void submit_front(CpuPriority prio, SimTime duration, Action done = {});

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queued() const {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
  }
  [[nodiscard]] SimTime busy_time() const { return total_busy_ns_; }
  [[nodiscard]] SimTime busy_time(CpuPriority prio) const {
    return busy_ns_[static_cast<int>(prio)];
  }
  [[nodiscard]] double utilization() const;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Item {
    SimTime duration;
    Action done;
  };

  void start_next();
  void finish_current();

  Simulator* sim_;
  std::string name_;
  std::deque<Item> queues_[kCpuPriorityCount];
  bool busy_ = false;
  Action running_done_;
  SimTime total_busy_ns_ = 0;
  SimTime busy_ns_[kCpuPriorityCount] = {0, 0, 0, 0};
};

}  // namespace clicsim::sim
