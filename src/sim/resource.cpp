#include "sim/resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::sim {

SimTime FifoResource::submit(SimTime duration, std::function<void()> done) {
  if (duration < 0) {
    throw std::logic_error("FifoResource::submit: negative duration");
  }
  const SimTime start = std::max(sim_->now(), free_at_);
  free_at_ = start + duration;
  busy_ns_ += duration;
  ++uses_;
  if (done) sim_->at(free_at_, std::move(done));
  return free_at_;
}

double FifoResource::utilization() const {
  const SimTime elapsed = sim_->now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(std::min(busy_ns_, elapsed)) /
         static_cast<double>(elapsed);
}

void PriorityResource::submit(CpuPriority prio, SimTime duration,
                              std::function<void()> done) {
  if (duration < 0) {
    throw std::logic_error("PriorityResource::submit: negative duration");
  }
  queue_.push(Item{static_cast<int>(prio), next_seq_++, duration,
                   std::move(done)});
  if (!busy_) start_next();
}

void PriorityResource::submit_front(CpuPriority prio, SimTime duration,
                                    std::function<void()> done) {
  if (duration < 0) {
    throw std::logic_error("PriorityResource::submit_front: negative duration");
  }
  queue_.push(Item{static_cast<int>(prio), front_seq_--, duration,
                   std::move(done)});
  if (!busy_) start_next();
}

void PriorityResource::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // Move the item out of the const top (removed immediately after).
  auto& top = const_cast<Item&>(queue_.top());
  Item item{top.prio, top.seq, top.duration, std::move(top.done)};
  queue_.pop();

  total_busy_ns_ += item.duration;
  busy_ns_[item.prio] += item.duration;

  sim_->after(item.duration,
              [this, done = std::move(item.done)]() mutable {
                if (done) done();
                start_next();
              });
}

double PriorityResource::utilization() const {
  const SimTime elapsed = sim_->now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(std::min(total_busy_ns_, elapsed)) /
         static_cast<double>(elapsed);
}

}  // namespace clicsim::sim
