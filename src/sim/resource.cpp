#include "sim/resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::sim {

SimTime FifoResource::submit(SimTime duration, Action done) {
  if (duration < 0) {
    throw std::logic_error("FifoResource::submit: negative duration");
  }
  const SimTime start = std::max(sim_->now(), free_at_);
  free_at_ = start + duration;
  busy_ns_ += duration;
  ++uses_;
  if (done) sim_->at(free_at_, std::move(done));
  return free_at_;
}

double FifoResource::utilization() const {
  const SimTime elapsed = sim_->now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(std::min(busy_ns_, elapsed)) /
         static_cast<double>(elapsed);
}

void PriorityResource::submit(CpuPriority prio, SimTime duration,
                              Action done) {
  if (duration < 0) {
    throw std::logic_error("PriorityResource::submit: negative duration");
  }
  queues_[static_cast<int>(prio)].push_back(Item{duration, std::move(done)});
  if (!busy_) start_next();
}

void PriorityResource::submit_front(CpuPriority prio, SimTime duration,
                                    Action done) {
  if (duration < 0) {
    throw std::logic_error("PriorityResource::submit_front: negative duration");
  }
  queues_[static_cast<int>(prio)].push_front(Item{duration, std::move(done)});
  if (!busy_) start_next();
}

void PriorityResource::start_next() {
  int prio = 0;
  while (prio < kCpuPriorityCount && queues_[prio].empty()) ++prio;
  if (prio == kCpuPriorityCount) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Item item = std::move(queues_[prio].front());
  queues_[prio].pop_front();

  total_busy_ns_ += item.duration;
  busy_ns_[prio] += item.duration;

  running_done_ = std::move(item.done);
  sim_->after(item.duration, [this] { finish_current(); });
}

void PriorityResource::finish_current() {
  Action done = std::move(running_done_);
  if (done) done();
  start_next();
}

double PriorityResource::utilization() const {
  const SimTime elapsed = sim_->now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(std::min(total_busy_ns_, elapsed)) /
         static_cast<double>(elapsed);
}

}  // namespace clicsim::sim
