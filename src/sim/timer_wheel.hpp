// Cancellable hierarchical timer wheel at nanosecond resolution.
//
// Protocol timers (retransmission, delayed acks, interrupt coalescing) are
// overwhelmingly cancelled or rescheduled before they expire. Scheduling
// each one as its own simulator event means a cancelled timer leaves a
// tombstone closure in the event heap until its deadline drains; the wheel
// instead keeps pending timers in intrusive per-bucket FIFO lists (64 slots
// per level, 6 bits of the deadline each, 11 levels covering the full
// SimTime range), so cancel() unlinks and destroys the closure in O(1).
//
// Determinism contract: a timer fires at its exact nanosecond deadline with
// the same same-instant tie-break rank as a plain Simulator::at scheduled
// at arming time. Each arm reserves a heap sequence number; the wheel's
// anchor events are pushed with the sequence of the timer they intend to
// dispatch (via Simulator::at_reserved) and dispatch exactly one timer per
// pop, so the (time, seq) execution order is identical to scheduling every
// timer as its own event — while cancelled timers vanish without a trace.
// Anchors that merely cascade buckets or discover they are stale are
// model-invisible no-ops.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace clicsim::sim {

class TimerWheel {
 public:
  // 0 is never a valid id.
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  explicit TimerWheel(Simulator& sim) : sim_(&sim) {}
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms `cb` to fire `delay` ns from now (delay >= 0).
  TimerId schedule(SimTime delay, Action cb) {
    return schedule_at(sim_->now() + delay, std::move(cb));
  }

  // Arms `cb` to fire at absolute time `deadline` (>= now()).
  TimerId schedule_at(SimTime deadline, Action cb);

  // Disarms a pending timer, destroying its closure immediately.
  // Returns false when the timer already fired or was already cancelled.
  bool cancel(TimerId id);

  [[nodiscard]] bool pending(TimerId id) const;
  [[nodiscard]] std::size_t size() const { return pending_count_; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 1 << kLevelBits;        // 64
  static constexpr int kLevels = 11;                    // 66 bits >= SimTime
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint64_t kNoAnchor = ~0ull;

  struct Timer {
    std::uint64_t deadline = 0;
    std::uint64_t seq = 0;  // heap sequence reserved at arm time
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t gen = 1;
    std::int16_t bucket = -1;  // level * kSlots + slot while linked
    bool linked = false;
    Action cb;
  };

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  struct Due {
    std::uint64_t time;
    std::uint64_t head_seq;  // seq of the FIFO head of the due bucket
  };

  [[nodiscard]] int level_for(std::uint64_t deadline) const;
  void link(std::uint32_t index);
  void unlink(std::uint32_t index);
  [[nodiscard]] bool next_due(Due* out) const;
  void cascade_containing(std::uint64_t t);
  void rearm();
  void on_anchor(std::uint64_t seq_tag);

  Simulator* sim_;
  std::vector<Timer> timers_;
  std::vector<std::uint32_t> free_;
  Bucket buckets_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};
  std::uint64_t cursor_ = 0;
  std::uint64_t armed_at_ = kNoAnchor;
  std::uint64_t armed_seq_ = 0;
  std::size_t pending_count_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace clicsim::sim
