// Lightweight measurement primitives used throughout the models and the
// benchmark harness: counters, running summaries, log2-bucketed histograms
// and (x, y) series for figure reproduction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace clicsim::sim {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

// Running min/max/mean/stddev (Welford).
class Summary {
 public:
  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  void reset() { *this = Summary{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over power-of-two buckets: bucket i counts values in
// [2^i, 2^(i+1)). Values < 1 land in bucket 0. Intended for latency (ns)
// and size distributions where relative resolution suffices.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::int64_t value);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bucket(int i) const { return buckets_[i]; }

  // Upper bound of the bucket containing quantile q (0 < q <= 1);
  // 0 when empty. Coarse (power-of-two) by construction.
  [[nodiscard]] std::int64_t quantile_bound(double q) const;

  void print(std::ostream& os, const std::string& label) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

// Ordered (x, y) samples; used by benches to emit figure series.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }
  [[nodiscard]] const std::string& name() const { return name_; }

  struct Point {
    double x;
    double y;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  // Linear interpolation of y at x (clamped to the sampled range);
  // requires points sorted by x.
  [[nodiscard]] double at(double x) const;

  // Smallest sampled x whose y reaches `level`; NaN when never reached.
  [[nodiscard]] double first_x_reaching(double level) const;

  [[nodiscard]] double max_y() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Prints a fixed-width table of several series sharing x values.
// Every series must have the same x grid (the sweep sizes).
void print_series_table(std::ostream& os, const std::string& x_label,
                        const std::vector<const Series*>& series);

}  // namespace clicsim::sim
