// Lightweight measurement primitives used throughout the models and the
// benchmark harness: counters, running summaries, log2-bucketed histograms,
// HDR-style log-linear histograms for tail-latency telemetry, and (x, y)
// series for figure reproduction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace clicsim::sim {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

// Running min/max/mean/stddev (Welford).
class Summary {
 public:
  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  void reset() { *this = Summary{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over power-of-two buckets: bucket i counts values in
// [2^i, 2^(i+1)). Values < 1 land in bucket 0. Intended for latency (ns)
// and size distributions where relative resolution suffices.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::int64_t value);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bucket(int i) const { return buckets_[i]; }

  // Upper bound of the bucket containing quantile q (0 < q <= 1);
  // 0 when empty. Coarse (power-of-two) by construction.
  [[nodiscard]] std::int64_t quantile_bound(double q) const;

  void print(std::ostream& os, const std::string& label) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

// HDR-style log-linear histogram for tail-latency telemetry (p99/p999
// claims need far finer resolution than the power-of-two Histogram above).
//
// Values are bucketed with a guaranteed relative precision: within each
// power-of-two range the range is subdivided into `sub_bucket_count`
// linear sub-buckets, where sub_bucket_count is the smallest power of two
// >= 2 * 10^significant_digits. Every recorded value v therefore lands in
// a bucket whose width w satisfies w <= max(1, v / 10^significant_digits).
//
// quantile(q) uses exact rank semantics: it locates the sample of rank
// ceil(q * count()) in the recorded (bucketed) distribution and returns
// the highest value equivalent to it — so the result is >= the true
// sample quantile and overshoots by at most one part in
// 10^significant_digits (and never beyond the recorded max).
//
// Histograms with equal configuration merge exactly (bucket-wise counter
// addition, wrapping sums): merge() is associative and commutative, but
// callers that fold many parts (sweep cells, per-client telemetry from
// ShardGroup shards) should still do so in index order — the fixed order
// is what makes whole-report digests byte-identical at any parallelism.
//
// Values above max_trackable() are clamped into the top bucket (and
// counted by saturated()); negative values clamp to zero.
class HdrHistogram {
 public:
  explicit HdrHistogram(int significant_digits = 3,
                        std::int64_t max_trackable =
                            std::int64_t{1} << 40);  // ~18 min in ns

  void add(std::int64_t value, std::uint64_t count = 1);

  // Adds every bucket of `other` (same significant digits and max
  // trackable required; throws std::invalid_argument otherwise).
  void merge(const HdrHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t saturated() const { return saturated_; }
  [[nodiscard]] std::int64_t min() const { return total_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return total_ ? max_ : 0; }
  // Exact mean of the recorded (clamped) values; sums wrap at 2^64, far
  // beyond any realistic latency total.
  [[nodiscard]] double mean() const;

  // Value at quantile q (0 < q <= 1) under exact rank semantics (see file
  // comment); 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  // Bounds of the bucket containing `value` (precision introspection).
  [[nodiscard]] std::int64_t lowest_equivalent(std::int64_t value) const;
  [[nodiscard]] std::int64_t highest_equivalent(std::int64_t value) const;

  [[nodiscard]] int significant_digits() const { return sig_digits_; }
  [[nodiscard]] std::int64_t max_trackable() const { return max_trackable_; }

  // One-line summary (count, mean, p50/p99/p999, max) for reports.
  void print(std::ostream& os, const std::string& label) const;

  void reset();

  // Equal configuration and bucket-for-bucket identical contents.
  bool operator==(const HdrHistogram& other) const = default;

 private:
  [[nodiscard]] int bucket_of(std::int64_t value) const;
  [[nodiscard]] std::size_t index_of(std::int64_t value) const;
  [[nodiscard]] std::int64_t value_at(std::size_t index) const;
  [[nodiscard]] std::int64_t clamp(std::int64_t value) const;

  int sig_digits_ = 3;
  int sub_bucket_mag_ = 0;   // log2(sub_bucket_count)
  int sub_bucket_half_ = 0;  // sub_bucket_count / 2
  std::int64_t max_trackable_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t saturated_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = 0;
  std::uint64_t sum_ = 0;  // wrapping
};

// Ordered (x, y) samples; used by benches to emit figure series.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }
  [[nodiscard]] const std::string& name() const { return name_; }

  struct Point {
    double x;
    double y;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  // Linear interpolation of y at x (clamped to the sampled range);
  // requires points sorted by x.
  [[nodiscard]] double at(double x) const;

  // Smallest sampled x whose y reaches `level`; NaN when never reached.
  [[nodiscard]] double first_x_reaching(double level) const;

  [[nodiscard]] double max_y() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Prints a fixed-width table of several series sharing x values.
// Every series must have the same x grid (the sweep sizes).
void print_series_table(std::ostream& os, const std::string& x_label,
                        const std::vector<const Series*>& series);

}  // namespace clicsim::sim
