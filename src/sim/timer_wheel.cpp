#include "sim/timer_wheel.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace clicsim::sim {

namespace {

constexpr std::uint64_t low_bits(int n) { return (1ull << n) - 1; }

}  // namespace

int TimerWheel::level_for(std::uint64_t deadline) const {
  const std::uint64_t diff = deadline ^ cursor_;
  if (diff == 0) return 0;
  const int high = 63 - std::countl_zero(diff);
  const int level = high / kLevelBits;
  return level < kLevels ? level : kLevels - 1;
}

void TimerWheel::link(std::uint32_t index) {
  Timer& t = timers_[index];
  const int level = level_for(t.deadline);
  const int slot =
      static_cast<int>((t.deadline >> (level * kLevelBits)) & low_bits(kLevelBits));
  Bucket& b = buckets_[level][slot];
  t.bucket = static_cast<std::int16_t>(level * kSlots + slot);
  t.prev = b.tail;
  t.next = kNil;
  if (b.tail != kNil) {
    timers_[b.tail].next = index;
  } else {
    b.head = index;
  }
  b.tail = index;
  occupied_[level] |= 1ull << slot;
}

void TimerWheel::unlink(std::uint32_t index) {
  Timer& t = timers_[index];
  const int level = t.bucket / kSlots;
  const int slot = t.bucket % kSlots;
  Bucket& b = buckets_[level][slot];
  if (t.prev != kNil) {
    timers_[t.prev].next = t.next;
  } else {
    b.head = t.next;
  }
  if (t.next != kNil) {
    timers_[t.next].prev = t.prev;
  } else {
    b.tail = t.prev;
  }
  if (b.head == kNil) occupied_[level] &= ~(1ull << slot);
  t.prev = t.next = kNil;
  t.bucket = -1;
  t.linked = false;
}

TimerWheel::TimerId TimerWheel::schedule_at(SimTime deadline, Action cb) {
  if (deadline < sim_->now()) {
    throw std::logic_error("TimerWheel::schedule_at: deadline in the past");
  }
  std::uint32_t index;
  if (free_.empty()) {
    index = static_cast<std::uint32_t>(timers_.size());
    timers_.emplace_back();
  } else {
    index = free_.back();
    free_.pop_back();
  }
  Timer& t = timers_[index];
  t.deadline = static_cast<std::uint64_t>(deadline);
  t.seq = sim_->reserve_seq();
  t.linked = true;
  t.cb = std::move(cb);
  // The cursor only moves inside anchor events; with nothing pending it may
  // be pulled straight to now so the level math sees fresh relative offsets.
  if (static_cast<std::uint64_t>(sim_->now()) > cursor_ &&
      pending_count_ == 0) {
    cursor_ = static_cast<std::uint64_t>(sim_->now());
  }
  link(index);
  ++pending_count_;
  rearm();
  return (static_cast<std::uint64_t>(index) << 32) | t.gen;
}

bool TimerWheel::cancel(TimerId id) {
  const auto index = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (index >= timers_.size()) return false;
  Timer& t = timers_[index];
  if (t.gen != gen || !t.linked) return false;
  unlink(index);
  t.cb = Action{};
  ++t.gen;
  free_.push_back(index);
  --pending_count_;
  ++cancelled_;
  // The anchor that was armed for this timer (if any) discovers the
  // cancellation lazily and re-arms itself; no event is retracted.
  return true;
}

bool TimerWheel::pending(TimerId id) const {
  const auto index = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (index >= timers_.size()) return false;
  const Timer& t = timers_[index];
  return t.gen == gen && t.linked;
}

bool TimerWheel::next_due(Due* out) const {
  for (int level = 0; level < kLevels; ++level) {
    const std::uint64_t occ = occupied_[level];
    if (occ == 0) continue;
    const int slot = std::countr_zero(occ);
    const int shift = level * kLevelBits;
    std::uint64_t t;
    if (level == 0) {
      // Level-0 slots hold exact deadlines within the cursor's 64 ns line.
      t = (cursor_ & ~low_bits(kLevelBits)) |
          static_cast<std::uint64_t>(slot);
    } else {
      // Higher buckets only bound their earliest deadline from below: the
      // anchor lands on the bucket's start, cascades it, and looks again.
      t = (cursor_ >> (shift + kLevelBits) << (shift + kLevelBits)) |
          (static_cast<std::uint64_t>(slot) << shift);
    }
    if (out->time == kNoAnchor || t < out->time) {
      out->time = t;
      out->head_seq = timers_[buckets_[level][slot].head].seq;
    }
  }
  return out->time != kNoAnchor;
}

void TimerWheel::cascade_containing(std::uint64_t t) {
  // Empty every level>=1 bucket whose window contains t, highest level
  // first so timers re-bucket into the finer levels relative to the new
  // cursor. Bucket lists are FIFO in arming order (== reserved-seq order)
  // and relinking preserves that order, so every destination bucket stays
  // seq-sorted — the property dispatch relies on.
  for (int level = kLevels - 1; level >= 1; --level) {
    const int shift = level * kLevelBits;
    const int slot = static_cast<int>((t >> shift) & low_bits(kLevelBits));
    if ((occupied_[level] & (1ull << slot)) == 0) continue;
    Bucket& b = buckets_[level][slot];
    std::uint32_t cur = b.head;
    b.head = b.tail = kNil;
    occupied_[level] &= ~(1ull << slot);
    while (cur != kNil) {
      const std::uint32_t next = timers_[cur].next;
      timers_[cur].prev = timers_[cur].next = kNil;
      link(cur);
      cur = next;
    }
  }
}

void TimerWheel::rearm() {
  if (pending_count_ == 0) return;
  Due due{kNoAnchor, 0};
  if (!next_due(&due)) return;  // unreachable while pending_count_ > 0
  // A freshly armed timer can land in a bucket whose window already began
  // (the cursor only advances inside anchors); the anchor still must not be
  // scheduled into the past.
  const auto now = static_cast<std::uint64_t>(sim_->now());
  std::uint64_t due_t = due.time < now ? now : due.time;
  // An anchor at or before this due time is already in flight; it will
  // dispatch or re-arm when it pops (discovering cancellations lazily).
  if (armed_at_ <= due_t) return;
  armed_at_ = due_t;
  armed_seq_ = due.head_seq;
  // The anchor is pushed with the due timer's reserved sequence, placing it
  // exactly where the seed would have placed that timer's own event among
  // same-instant events. Anchors that turn out to be bookkeeping (cascade
  // only / stale) are no-ops and model-invisible, so reusing the timer's
  // sequence for them is harmless.
  sim_->at_reserved(static_cast<SimTime>(due_t), due.head_seq,
                    [this, seq = due.head_seq] { on_anchor(seq); });
}

void TimerWheel::on_anchor(std::uint64_t seq_tag) {
  const auto now = static_cast<std::uint64_t>(sim_->now());
  // Superseded anchors (an earlier deadline armed after us, or our timer
  // was cancelled and the wheel re-armed) are inert.
  if (armed_at_ != now || armed_seq_ != seq_tag) return;
  armed_at_ = kNoAnchor;
  cursor_ = now;
  cascade_containing(now);

  // Dispatch at most ONE timer: the FIFO head of now's level-0 slot, and
  // only if this anchor was armed for exactly that timer. Any same-instant
  // followers re-arm below with their own reserved sequences, so plain
  // events interleave between them exactly as in per-event scheduling.
  const int slot0 = static_cast<int>(now & low_bits(kLevelBits));
  const Bucket& due = buckets_[0][slot0];
  if (due.head != kNil && timers_[due.head].deadline == now &&
      timers_[due.head].seq == seq_tag) {
    const std::uint32_t index = due.head;
    unlink(index);
    Timer& timer = timers_[index];
    Action cb = std::move(timer.cb);
    ++timer.gen;
    free_.push_back(index);
    --pending_count_;
    ++fired_;
    // No references held across the call: cb may arm or cancel timers on
    // this wheel (and timers_ may reallocate).
    cb();
  }
  rearm();
}

}  // namespace clicsim::sim
