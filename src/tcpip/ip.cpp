#include "tcpip/ip.hpp"

#include <algorithm>
#include <utility>

#include "os/skbuff.hpp"

namespace clicsim::tcpip {

namespace {
std::uint64_t reassembly_key(IpAddr src, std::uint16_t id) {
  return (static_cast<std::uint64_t>(src) << 16) | id;
}
}  // namespace

IpLayer::IpLayer(os::Node& node, Config config,
                 const os::AddressMap& addresses)
    : node_(&node), config_(config), addresses_(&addresses) {
  for (int i = 0; i < node_->nic_count(); ++i) {
    node_->driver(i).add_protocol(net::kEtherTypeIp, this);
  }
}

void IpLayer::register_transport(std::uint8_t protocol,
                                 IpTransport* transport) {
  transports_[protocol] = transport;
}

void IpLayer::send(int dst_node, std::uint8_t protocol, net::HeaderBlob l4,
                   std::int64_t l4_header_bytes, net::Buffer payload,
                   std::function<void()> on_done, sim::CpuPriority prio,
                   bool front) {
  ++tx_;
  const std::uint16_t id = next_id_++;
  const std::int64_t mtu = node_->nic(0).mtu();
  const std::int64_t room = mtu - kIpHeaderBytes;  // per-fragment L4 bytes
  const std::int64_t total = l4_header_bytes + payload.size();

  // Fragment boundaries are computed over the L4 datagram (header + data);
  // only the first fragment carries the transport header, as in real IP.
  struct Frag {
    std::int64_t offset;  // within the L4 datagram
    std::int64_t data_off;
    std::int64_t data_len;
    bool first;
    bool last;
  };
  std::vector<Frag> frags;
  std::int64_t off = 0;
  while (off < total || frags.empty()) {
    const std::int64_t len = std::min(room, total - off);
    Frag f;
    f.offset = off;
    f.first = off == 0;
    f.data_off = f.first ? 0 : off - l4_header_bytes;
    f.data_len = f.first ? len - l4_header_bytes : len;
    f.last = off + len >= total;
    frags.push_back(f);
    off += len;
    if (len <= 0) break;  // zero-length datagram: single fragment
  }
  tx_frags_ += frags.size();

  const std::size_t n = frags.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Frag& f = frags[i];
    Ipv4Header h;
    h.src = ip_of_node(node_->id());
    h.dst = ip_of_node(dst_node);
    h.protocol = protocol;
    h.id = id;
    h.frag_offset = static_cast<std::uint16_t>(f.offset);
    h.more_fragments = !f.last;
    h.total_len = total;
    if (f.first) h.l4 = l4;

    os::SkBuff skb;
    skb.dst = addresses_->macs_of(dst_node)[0];
    skb.src = node_->mac(0);
    skb.ethertype = net::kEtherTypeIp;
    const std::int64_t hdr_bytes =
        kIpHeaderBytes + (f.first ? l4_header_bytes : 0);
    skb.header = net::HeaderBlob::of(h, hdr_bytes);
    skb.payload = f.data_len > 0 ? payload.slice(f.data_off, f.data_len)
                                 : net::Buffer::zeros(0);
    skb.sg_fragments = 1;  // the stock stack sends from kernel memory

    // IP header build + checksum (cheap, header-only).
    auto work = [this, skb = std::move(skb),
                 done = f.last ? std::move(on_done)
                               : std::function<void()>{}]() mutable {
      node_->driver(0).xmit_or_queue(std::move(skb), std::move(done));
    };
    if (front) {
      node_->cpu().run_next(prio, config_.ip_tx_cost, std::move(work));
    } else {
      node_->cpu().run(prio, config_.ip_tx_cost, std::move(work));
    }
  }
}

void IpLayer::packet_received(net::Frame frame, bool from_isr) {
  const auto prio =
      from_isr ? sim::CpuPriority::kInterrupt : sim::CpuPriority::kSoftirq;
  const auto* header = frame.header.get<Ipv4Header>();
  if (header == nullptr) return;
  if (header->dst != ip_of_node(node_->id())) return;

  node_->cpu().run(prio, config_.ip_rx_cost,
                   [this, h = *header, payload = std::move(frame.payload),
                    prio]() mutable {
                     handle_fragment(h, std::move(payload), prio);
                   });
}

void IpLayer::handle_fragment(const Ipv4Header& header, net::Buffer payload,
                              sim::CpuPriority prio) {
  auto deliver = [this, prio](std::uint8_t protocol, int src_node,
                              net::HeaderBlob l4, net::Buffer data) {
    ++rx_;
    auto it = transports_.find(protocol);
    if (it == transports_.end()) return;
    it->second->datagram_received(src_node, std::move(l4), std::move(data),
                                  prio);
  };

  const int src_node = node_of_ip(header.src);

  // Unfragmented fast path.
  if (header.frag_offset == 0 && !header.more_fragments) {
    deliver(header.protocol, src_node, header.l4, std::move(payload));
    return;
  }

  const std::uint64_t key = reassembly_key(header.src, header.id);
  auto& re = reassembly_[key];
  if (header.frag_offset == 0) re.l4 = header.l4;
  if (!header.more_fragments) re.total_len = header.total_len;

  re.fragments.emplace(header.frag_offset, std::move(payload));

  // Arm/refresh the reassembly timeout.
  const std::uint64_t generation = ++re.timer_generation;
  node_->kernel().add_timer(config_.reassembly_timeout,
                            [this, key, generation] {
                              auto it = reassembly_.find(key);
                              if (it == reassembly_.end()) return;
                              if (it->second.timer_generation != generation) {
                                return;
                              }
                              ++reassembly_timeouts_;
                              reassembly_.erase(it);
                            });

  // Complete when the last fragment arrived (total_len known), fragment 0
  // arrived (it carries the L4 header, whose bytes count towards
  // total_len), and the data bytes fill the rest. Offsets are unique, so a
  // sum check suffices.
  if (re.total_len < 0 || re.fragments.count(0) == 0) return;
  const std::int64_t l4_bytes = re.l4.wire_bytes();
  std::int64_t have = 0;
  for (auto& [o, b] : re.fragments) have += b.size();
  if (l4_bytes + have < re.total_len) return;

  net::BufferChain chain;
  for (auto& [o, b] : re.fragments) chain.append(std::move(b));
  auto l4 = re.l4;
  const std::uint8_t protocol = header.protocol;
  reassembly_.erase(key);
  deliver(protocol, src_node, std::move(l4), chain.flatten());
}

}  // namespace clicsim::tcpip
