#include "tcpip/udp.hpp"

#include <utility>

namespace clicsim::tcpip {

UdpStack::UdpStack(IpLayer& ip, Config config) : ip_(&ip), config_(config) {
  ip_->register_transport(kProtoUdp, this);
}

void UdpStack::bind(int port) { ports_[port]; }

sim::Future<bool> UdpStack::sendto(int src_port, int dst_node, int dst_port,
                                   net::Buffer data) {
  sim::Future<bool> result(node().sim());
  ++tx_;
  node().kernel().syscall([this, src_port, dst_node, dst_port,
                           data = std::move(data), result]() mutable {
    UdpHeader h;
    h.src_port = static_cast<std::uint16_t>(src_port);
    h.dst_port = static_cast<std::uint16_t>(dst_port);
    h.length = kUdpHeaderBytes + data.size();

    // One copy user -> kernel, checksum, then hand to IP.
    auto& n = node();
    const std::int64_t bytes = data.size();
    n.mem().copy_pressure(bytes);
    n.mem().checksum_pressure(bytes);
    n.cpu().run(
        sim::CpuPriority::kKernel,
        config_.udp_tx_cost + n.cpu().copy_cost(bytes) +
            n.cpu().checksum_cost(bytes),
        [this, h, dst_node, data = std::move(data), result]() mutable {
          ip_->send(dst_node, kProtoUdp,
                    net::HeaderBlob::of(h, kUdpHeaderBytes),
                    kUdpHeaderBytes, std::move(data),
                    [this, result]() mutable {
                      node().kernel().syscall_return(
                          [result]() mutable { result.set(true); });
                    });
        });
  });
  return result;
}

void UdpStack::datagram_received(int src_node, net::HeaderBlob l4,
                                 net::Buffer payload,
                                 sim::CpuPriority prio) {
  const auto* h = l4.get<UdpHeader>();
  if (h == nullptr) return;
  ++rx_;

  auto& n = node();
  const std::int64_t bytes = payload.size();
  n.mem().checksum_pressure(bytes);
  n.cpu().run(prio,
              config_.udp_rx_cost + n.cpu().checksum_cost(bytes),
              [this, src_node, header = *h,
               payload = std::move(payload), prio]() mutable {
                auto it = ports_.find(header.dst_port);
                if (it == ports_.end()) {
                  ++dropped_unbound_;
                  return;
                }
                UdpDatagram d;
                d.src_node = src_node;
                d.src_port = header.src_port;
                d.data = std::move(payload);

                PortState& ps = it->second;
                if (!ps.waiting.empty()) {
                  auto future = ps.waiting.front();
                  ps.waiting.pop_front();
                  // Copy to user memory + wake.
                  auto& nn = node();
                  nn.mem().copy_pressure(d.data.size());
                  nn.cpu().run(
                      prio, nn.cpu().copy_cost(d.data.size()),
                      [this, future, d = std::move(d)]() mutable {
                        auto& cpu = node().cpu();
                        cpu.run(sim::CpuPriority::kKernel,
                                cpu.params().process_wakeup,
                                [this, future, d = std::move(d)]() mutable {
                                  auto& c = node().cpu();
                                  c.run(sim::CpuPriority::kUser,
                                        c.params().context_switch,
                                        [future,
                                         d = std::move(d)]() mutable {
                                          future.set(std::move(d));
                                        });
                                });
                      });
                } else {
                  ps.ready.push_back(std::move(d));
                }
              });
}

sim::Future<UdpDatagram> UdpStack::recvfrom(int port) {
  sim::Future<UdpDatagram> result(node().sim());
  node().kernel().syscall([this, port, result]() mutable {
    auto it = ports_.find(port);
    if (it == ports_.end()) {
      ports_[port];
      it = ports_.find(port);
    }
    PortState& ps = it->second;
    if (!ps.ready.empty()) {
      UdpDatagram d = std::move(ps.ready.front());
      ps.ready.pop_front();
      auto& n = node();
      n.mem().copy_pressure(d.data.size());
      n.cpu().run(sim::CpuPriority::kKernel,
                  n.cpu().copy_cost(d.data.size()),
                  [this, result, d = std::move(d)]() mutable {
                    node().kernel().syscall_return(
                        [result, d = std::move(d)]() mutable {
                          result.set(std::move(d));
                        });
                  });
      return;
    }
    ps.waiting.push_back(result);
  });
  return result;
}

}  // namespace clicsim::tcpip
