// IPv4 layer: 20-byte header, software fragmentation/reassembly to the
// link MTU, header checksum cost, and protocol demultiplexing to the
// transports. This is the layer CLIC argues is pure overhead inside a
// single-LAN cluster — here it is implemented fully so the comparison is
// honest.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "net/buffer.hpp"
#include "os/address.hpp"
#include "os/driver.hpp"
#include "os/node.hpp"
#include "tcpip/config.hpp"

namespace clicsim::tcpip {

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

struct Ipv4Header {
  IpAddr src = 0;
  IpAddr dst = 0;
  std::uint8_t protocol = 0;
  std::uint16_t id = 0;           // datagram id for reassembly
  std::uint16_t frag_offset = 0;  // in bytes (model; real IP uses 8B units)
  bool more_fragments = false;
  std::int64_t total_len = 0;     // L4 header + data bytes of the datagram
  net::HeaderBlob l4;             // transport header (first fragment only)

  // Cross-shard confinement hook (see net::Frame::detach).
  void detach_shared() { l4 = l4.detached(); }
};

// A transport protocol sitting on IP (TCP, UDP).
class IpTransport {
 public:
  virtual ~IpTransport() = default;
  virtual void datagram_received(int src_node, net::HeaderBlob l4,
                                 net::Buffer payload,
                                 sim::CpuPriority prio) = 0;
};

class IpLayer : public os::ProtocolHandler {
 public:
  IpLayer(os::Node& node, Config config, const os::AddressMap& addresses);

  void register_transport(std::uint8_t protocol, IpTransport* transport);

  // Sends one L4 datagram (header + payload), fragmenting to the MTU.
  // `on_done` fires when the last fragment's DMA descriptor completes.
  // `prio`/`front` locate the IP-layer processing in the caller's CPU
  // context: an ack emitted from softirq segment processing must not queue
  // behind the softirq backlog at kernel priority.
  void send(int dst_node, std::uint8_t protocol, net::HeaderBlob l4,
            std::int64_t l4_header_bytes, net::Buffer payload,
            std::function<void()> on_done = {},
            sim::CpuPriority prio = sim::CpuPriority::kKernel,
            bool front = false);

  // os::ProtocolHandler
  void packet_received(net::Frame frame, bool from_isr) override;

  [[nodiscard]] std::uint64_t datagrams_sent() const { return tx_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return rx_; }
  [[nodiscard]] std::uint64_t fragments_sent() const { return tx_frags_; }
  [[nodiscard]] std::uint64_t reassembly_timeouts() const {
    return reassembly_timeouts_;
  }
  [[nodiscard]] os::Node& node() { return *node_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Reassembly {
    std::map<std::int64_t, net::Buffer> fragments;  // offset -> data
    net::HeaderBlob l4;
    std::int64_t total_len = -1;  // unknown until the last fragment
    std::uint64_t timer_generation = 0;
  };

  void handle_fragment(const Ipv4Header& header, net::Buffer payload,
                       sim::CpuPriority prio);

  os::Node* node_;
  Config config_;
  const os::AddressMap* addresses_;
  std::unordered_map<std::uint8_t, IpTransport*> transports_;
  std::unordered_map<std::uint64_t, Reassembly> reassembly_;
  std::uint16_t next_id_ = 1;
  std::uint64_t tx_ = 0;
  std::uint64_t rx_ = 0;
  std::uint64_t tx_frags_ = 0;
  std::uint64_t reassembly_timeouts_ = 0;
};

}  // namespace clicsim::tcpip
