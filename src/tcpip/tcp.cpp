#include "tcpip/tcp.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::tcpip {

namespace {

// 32-bit sequence-space comparisons (wraparound-safe).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }

}  // namespace

// ============================== TcpSocket ====================================

TcpSocket::TcpSocket(TcpStack& stack, int local_port)
    : stack_(&stack), local_port_(local_port) {}

std::int64_t TcpSocket::mss() const {
  return stack_->node().nic(0).mtu() - kIpHeaderBytes - kTcpHeaderBytes;
}

std::int64_t TcpSocket::in_flight() const {
  return static_cast<std::int64_t>(snd_nxt_ - snd_una_);
}

std::int64_t TcpSocket::sndbuf_bytes_used() const {
  return unsent_bytes_ + in_flight();
}

std::int64_t TcpSocket::rcv_window() const {
  const std::int64_t used = rcv_queued_bytes_;
  return std::max<std::int64_t>(stack_->config().rcvbuf - used, 0);
}

void TcpSocket::become_established() {
  state_ = State::kEstablished;
  cwnd_ = stack_->config().init_cwnd_segments * mss();
  if (connect_future_) {
    auto f = *connect_future_;
    connect_future_.reset();
    f.set(true);
  }
  pump_send_requests();
  try_output();
}

sim::Future<bool> TcpSocket::connect(int dst_node, int dst_port) {
  sim::Future<bool> result(stack_->node().sim());
  if (state_ != State::kClosed) {
    result.set(false);
    return result;
  }
  remote_node_ = dst_node;
  remote_port_ = dst_port;
  connect_future_ = result;
  stack_->register_connection(this);

  stack_->node().kernel().syscall([this] {
    state_ = State::kSynSent;
    SentSegment syn;
    syn.flags = tcpflags::kSyn;
    syn.virtual_len = 1;
    unacked_.emplace(0u, syn);
    snd_nxt_ = 1;
    emit_segment(0, syn);
    arm_rto();
    stack_->node().kernel().syscall_return();
  });
  return result;
}

// --- Send side ---------------------------------------------------------------

sim::Future<std::int64_t> TcpSocket::send(net::Buffer data) {
  sim::Future<std::int64_t> result(stack_->node().sim());
  stack_->node().kernel().syscall([this, data = std::move(data),
                                   result]() mutable {
    send_requests_.push_back(SendRequest{std::move(data), 0, result});
    pump_send_requests();
  });
  return result;
}

void TcpSocket::pump_send_requests() {
  if (send_requests_.empty()) return;
  SendRequest& req = send_requests_.front();

  if (req.offset == req.data.size()) {
    auto future = req.future;
    const std::int64_t n = req.data.size();
    send_requests_.pop_front();
    stack_->node().kernel().syscall_return(
        [future, n]() mutable { future.set(n); });
    pump_send_requests();
    return;
  }

  const std::int64_t space =
      stack_->config().sndbuf - sndbuf_bytes_used();
  if (space <= 0) return;  // resumed from process_ack when space opens

  const std::int64_t take =
      std::min(space, req.data.size() - req.offset);
  net::Buffer chunk = req.data.slice(req.offset, take);
  req.offset += take;

  // The copy into kernel socket memory — TCP's first copy.
  stack_->node().copy_data(sim::CpuPriority::kKernel, take,
                           [this, chunk = std::move(chunk)]() mutable {
                             unsent_bytes_ += chunk.size();
                             unsent_.push_back(std::move(chunk));
                             try_output();
                             pump_send_requests();
                           });
}

void TcpSocket::try_output() {
  if (state_ != State::kEstablished && state_ != State::kFinSent &&
      state_ != State::kSynRcvd) {
    return;
  }

  while (unsent_bytes_ > 0) {
    const std::int64_t wnd = std::min(snd_wnd_, cwnd_);
    const std::int64_t budget = wnd - in_flight();
    if (budget <= 0) {
      if (snd_wnd_ == 0 && in_flight() == 0) arm_zero_window_probe();
      return;
    }
    // Nagle: hold a sub-MSS segment while data is outstanding.
    if (!stack_->config().nodelay && unsent_bytes_ < mss() &&
        in_flight() > 0) {
      return;
    }
    const std::int64_t len =
        std::min({mss(), unsent_bytes_, budget});

    net::BufferChain chain;
    std::int64_t remaining = len;
    while (remaining > 0) {
      net::Buffer& front = unsent_.front();
      if (front.size() <= remaining) {
        remaining -= front.size();
        chain.append(std::move(front));
        unsent_.pop_front();
      } else {
        chain.append(front.slice(0, remaining));
        front = front.slice(remaining, front.size() - remaining);
        remaining = 0;
      }
    }
    unsent_bytes_ -= len;

    SentSegment seg;
    seg.data = chain.flatten();
    seg.flags = tcpflags::kAck;
    if (unsent_bytes_ == 0) seg.flags |= tcpflags::kPsh;
    seg.virtual_len = len;

    const std::uint32_t seq = snd_nxt_;
    snd_nxt_ += static_cast<std::uint32_t>(len);
    emit_segment(seq, seg);
    unacked_.emplace(seq, std::move(seg));
    arm_rto();
  }

  if (fin_pending_ && !fin_sent_ && unsent_bytes_ == 0) {
    SentSegment fin;
    fin.flags = tcpflags::kFin | tcpflags::kAck;
    fin.virtual_len = 1;
    const std::uint32_t seq = snd_nxt_;
    snd_nxt_ += 1;
    emit_segment(seq, fin);
    unacked_.emplace(seq, std::move(fin));
    fin_sent_ = true;
    state_ = State::kFinSent;
    arm_rto();
  }
}

void TcpSocket::emit_segment(std::uint32_t seq, const SentSegment& segment) {
  TcpHeader h;
  h.src_port = static_cast<std::uint16_t>(local_port_);
  h.dst_port = static_cast<std::uint16_t>(remote_port_);
  h.seq = seq;
  h.ack = rcv_nxt_;
  h.flags = segment.flags;
  h.window = rcv_window();

  // Sending any segment piggybacks the current ack.
  segs_since_ack_ = 0;
  cancel_delack();
  last_advertised_zero_ = h.window == 0;

  const auto& cfg = stack_->config();
  auto& node = stack_->node();
  const std::int64_t bytes = segment.data.size();
  const sim::SimTime charge =
      cfg.tcp_tx_cost + node.cpu().checksum_cost(bytes) +
      static_cast<sim::SimTime>(static_cast<double>(bytes) *
                                cfg.tcp_tx_per_byte_ns);
  node.mem().checksum_pressure(bytes);
  node.cpu().run(sim::CpuPriority::kKernel, charge,
                 [this, h, data = segment.data]() mutable {
                   stack_->emit(remote_node_, h, std::move(data));
                 });
}

void TcpSocket::send_ack_now(sim::CpuPriority prio) {
  TcpHeader h;
  h.src_port = static_cast<std::uint16_t>(local_port_);
  h.dst_port = static_cast<std::uint16_t>(remote_port_);
  h.seq = snd_nxt_;
  h.ack = rcv_nxt_;
  h.flags = tcpflags::kAck;
  h.window = rcv_window();

  segs_since_ack_ = 0;
  cancel_delack();
  last_advertised_zero_ = h.window == 0;

  // The ack is emitted inline as part of the segment processing that owed
  // it (run_next): queueing it behind the rest of the softirq backlog
  // would batch acks and stall the sender's window.
  auto& node = stack_->node();
  node.cpu().run_next(prio, stack_->config().tcp_tx_cost, [this, h, prio] {
    stack_->emit(remote_node_, h, net::Buffer::zeros(0), prio, /*front=*/true);
  });
}

void TcpSocket::note_ack_owed(bool push, sim::CpuPriority prio) {
  ++segs_since_ack_;
  if (push || segs_since_ack_ >= stack_->config().delack_segments) {
    send_ack_now(prio);
    return;
  }
  if (delack_timer_ == os::Kernel::kInvalidTimer) {
    delack_timer_ = stack_->node().kernel().add_timer(
        stack_->config().delack_timeout, [this] {
          delack_timer_ = os::Kernel::kInvalidTimer;
          if (segs_since_ack_ > 0) send_ack_now();
        });
  }
}

void TcpSocket::cancel_delack() {
  if (delack_timer_ != os::Kernel::kInvalidTimer) {
    stack_->node().kernel().cancel_timer(delack_timer_);
    delack_timer_ = os::Kernel::kInvalidTimer;
  }
}

void TcpSocket::arm_rto() {
  if (rto_timer_ != os::Kernel::kInvalidTimer || unacked_.empty()) return;
  const auto& cfg = stack_->config();
  sim::SimTime rto = std::max(cfg.rto_initial, cfg.rto_min);
  for (int i = 0; i < rto_backoff_; ++i) rto *= 2;
  rto_timer_ =
      stack_->node().kernel().add_timer(rto, [this] { rto_expired(); });
}

void TcpSocket::cancel_rto() {
  if (rto_timer_ != os::Kernel::kInvalidTimer) {
    stack_->node().kernel().cancel_timer(rto_timer_);
    rto_timer_ = os::Kernel::kInvalidTimer;
  }
}

void TcpSocket::rto_expired() {
  rto_timer_ = os::Kernel::kInvalidTimer;
  if (unacked_.empty()) return;

  ++retransmits_;
  rto_backoff_ = std::min(rto_backoff_ + 1, 6);
  ssthresh_ = std::max<std::int64_t>(in_flight() / 2, 2 * mss());
  cwnd_ = mss();
  emit_segment(unacked_.begin()->first, unacked_.begin()->second);
  arm_rto();
}

void TcpSocket::arm_zero_window_probe() {
  if (probe_timer_ != os::Kernel::kInvalidTimer) return;
  probe_timer_ = stack_->node().kernel().add_timer(
      stack_->config().rto_initial, [this] {
        probe_timer_ = os::Kernel::kInvalidTimer;
        if (snd_wnd_ == 0 && unsent_bytes_ > 0 && in_flight() == 0) {
          // 1-byte window probe.
          net::Buffer& front = unsent_.front();
          SentSegment probe;
          probe.data = front.slice(0, 1);
          probe.flags = tcpflags::kAck;
          probe.virtual_len = 1;
          front = front.slice(1, front.size() - 1);
          if (front.size() == 0) unsent_.pop_front();
          unsent_bytes_ -= 1;
          const std::uint32_t seq = snd_nxt_;
          snd_nxt_ += 1;
          emit_segment(seq, probe);
          unacked_.emplace(seq, std::move(probe));
          arm_rto();
        }
      });
}

// --- Receive side ---------------------------------------------------------------

void TcpSocket::segment_received(const TcpHeader& header, net::Buffer payload,
                                 sim::CpuPriority prio) {
  switch (state_) {
    case State::kClosed:
      return;

    case State::kSynSent:
      if ((header.flags & tcpflags::kSyn) &&
          (header.flags & tcpflags::kAck) && header.ack == snd_nxt_) {
        unacked_.clear();
        cancel_rto();
        snd_una_ = header.ack;
        rcv_nxt_ = header.seq + 1;
        snd_wnd_ = header.window;
        become_established();
        send_ack_now();
      }
      return;

    case State::kSynRcvd:
      if ((header.flags & tcpflags::kAck) && header.ack == snd_nxt_) {
        unacked_.clear();
        cancel_rto();
        snd_una_ = header.ack;
        snd_wnd_ = header.window;
        become_established();
        stack_->handshake_complete(this);
        // The completing ACK may carry data.
        if (payload.size() > 0 || (header.flags & tcpflags::kFin)) {
          accept_data(header, std::move(payload), prio);
        }
      }
      return;

    case State::kEstablished:
    case State::kFinSent:
      process_ack(header);
      if (payload.size() > 0 || (header.flags & tcpflags::kFin)) {
        accept_data(header, std::move(payload), prio);
      }
      return;
  }
}

void TcpSocket::process_ack(const TcpHeader& header) {
  if (!(header.flags & tcpflags::kAck)) return;

  if (seq_gt(header.ack, snd_una_)) {
    // New data acknowledged.
    while (!unacked_.empty()) {
      const auto it = unacked_.begin();
      const std::uint32_t end =
          it->first + static_cast<std::uint32_t>(it->second.virtual_len);
      if (seq_gt(end, header.ack)) break;
      unacked_.erase(it);
    }
    snd_una_ = header.ack;
    snd_wnd_ = header.window;
    dup_acks_ = 0;
    rto_backoff_ = 0;

    // Congestion window growth per ack.
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss();
    } else if (cwnd_ > 0) {
      cwnd_ += std::max<std::int64_t>(mss() * mss() / cwnd_, 1);
    }

    cancel_rto();
    arm_rto();  // no-op when nothing outstanding

    pump_send_requests();
    try_output();
    return;
  }

  if (header.ack == snd_una_) {
    snd_wnd_ = header.window;  // window update / duplicate
    if (!unacked_.empty()) {
      ++dup_acks_;
      if (dup_acks_ == stack_->config().dupack_threshold) {
        ++fast_retransmits_;
        ssthresh_ = std::max<std::int64_t>(in_flight() / 2, 2 * mss());
        cwnd_ = ssthresh_;
        emit_segment(unacked_.begin()->first, unacked_.begin()->second);
      }
    }
    pump_send_requests();
    try_output();
  }
}

void TcpSocket::accept_data(const TcpHeader& header, net::Buffer payload,
                            sim::CpuPriority prio) {
  const std::uint32_t seq = header.seq;
  const bool fin = (header.flags & tcpflags::kFin) != 0;

  if (seq_lt(seq, rcv_nxt_)) {
    // Entirely old duplicate: re-ack so the sender advances.
    send_ack_now(prio);
    return;
  }

  if (seq_gt(seq, rcv_nxt_)) {
    if (payload.size() > 0) ooo_.emplace(seq, std::move(payload));
    if (fin) ooo_fin_seq_ = seq + static_cast<std::uint32_t>(payload.size());
    send_ack_now(prio);  // duplicate ack signals the gap
    return;
  }

  // In order.
  if (payload.size() > 0) {
    rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
    rcv_queued_bytes_ += payload.size();
    rcv_queue_.push_back(std::move(payload));
  }
  if (fin) {
    rcv_nxt_ += 1;
    peer_fin_ = true;
  }

  // Drain any now-contiguous out-of-order data.
  while (!ooo_.empty() && ooo_.begin()->first == rcv_nxt_) {
    auto node = ooo_.extract(ooo_.begin());
    rcv_nxt_ += static_cast<std::uint32_t>(node.mapped().size());
    rcv_queued_bytes_ += node.mapped().size();
    rcv_queue_.push_back(std::move(node.mapped()));
  }
  if (ooo_fin_seq_ && *ooo_fin_seq_ == rcv_nxt_) {
    rcv_nxt_ += 1;
    peer_fin_ = true;
    ooo_fin_seq_.reset();
  }

  pump_recv_requests(prio);
  // Delayed acks run on the segment counter/timer only; PSH does not force
  // an immediate ack (as in Linux), which is what exposes the classic
  // Nagle + delayed-ack stall of the untuned baseline.
  note_ack_owed(fin, prio);
}

net::Buffer TcpSocket::take_from_rcv_queue(std::int64_t max_bytes) {
  net::BufferChain chain;
  std::int64_t remaining = std::min(max_bytes, rcv_queued_bytes_);
  while (remaining > 0) {
    net::Buffer& front = rcv_queue_.front();
    if (front.size() <= remaining) {
      remaining -= front.size();
      rcv_queued_bytes_ -= front.size();
      chain.append(std::move(front));
      rcv_queue_.pop_front();
    } else {
      chain.append(front.slice(0, remaining));
      front = front.slice(remaining, front.size() - remaining);
      rcv_queued_bytes_ -= remaining;
      remaining = 0;
    }
  }
  return chain.flatten();
}

void TcpSocket::pump_recv_requests(sim::CpuPriority prio) {
  (void)prio;  // user copies run in process (kernel) context via the chain
  const bool was_zero = last_advertised_zero_;

  while (!recv_requests_.empty()) {
    RecvRequest& req = recv_requests_.front();

    // Drain whatever is available into the request's accumulator; the
    // socket-queue -> user-memory copy (TCP's second copy) is charged
    // incrementally through the request's copy chain.
    const std::int64_t want = req.max_bytes - req.acc.size();
    net::Buffer chunk = take_from_rcv_queue(want);
    if (chunk.size() > 0) {
      req.chain->add(chunk.size());
      req.acc.append(std::move(chunk));
    }

    const bool eof = peer_fin_ && rcv_queued_bytes_ == 0;
    if (req.acc.size() < req.min_bytes && !eof) break;

    // Logically complete: wake the process once the copy work drains.
    net::Buffer out = req.acc.flatten();
    auto future = req.future;
    auto chain = req.chain;
    recv_requests_.pop_front();
    chain->finish([this, chain, future, out = std::move(out)]() mutable {
      auto& cpu = stack_->node().cpu();
      cpu.run(sim::CpuPriority::kKernel, cpu.params().process_wakeup,
              [this, future, out = std::move(out)]() mutable {
                auto& c = stack_->node().cpu();
                c.run(sim::CpuPriority::kUser, c.params().context_switch,
                      [future = std::move(future),
                       out = std::move(out)]() mutable {
                        future.set(std::move(out));
                      });
              });
    });
  }

  // Draining freed buffer space: reopen the window if we had closed it.
  if (was_zero && rcv_window() >= mss()) send_ack_now();
}

sim::Future<net::Buffer> TcpSocket::recv(std::int64_t max_bytes) {
  sim::Future<net::Buffer> result(stack_->node().sim());
  stack_->node().kernel().syscall([this, max_bytes, result]() mutable {
    recv_requests_.push_back(RecvRequest{
        1, max_bytes, {},
        std::make_shared<os::CopyChain>(stack_->node(),
                                        sim::CpuPriority::kKernel),
        result});
    pump_recv_requests(sim::CpuPriority::kKernel);
  });
  return result;
}

sim::Future<net::Buffer> TcpSocket::recv_exact(std::int64_t n) {
  sim::Future<net::Buffer> result(stack_->node().sim());
  stack_->node().kernel().syscall([this, n, result]() mutable {
    recv_requests_.push_back(RecvRequest{
        n, n, {},
        std::make_shared<os::CopyChain>(stack_->node(),
                                        sim::CpuPriority::kKernel),
        result});
    pump_recv_requests(sim::CpuPriority::kKernel);
  });
  return result;
}

void TcpSocket::close() {
  if (state_ != State::kEstablished && state_ != State::kSynRcvd) return;
  stack_->node().kernel().syscall([this] {
    fin_pending_ = true;
    try_output();
    stack_->node().kernel().syscall_return();
  });
}

// ============================== TcpStack =====================================

TcpStack::TcpStack(IpLayer& ip, Config config)
    : ip_(&ip), config_(config) {
  ip_->register_transport(kProtoTcp, this);
}

TcpSocket& TcpStack::create_socket() {
  sockets_.push_back(std::make_unique<TcpSocket>(*this, next_ephemeral_++));
  return *sockets_.back();
}

void TcpStack::listen(int port) { listeners_[port]; }

sim::Future<TcpSocket*> TcpStack::accept(int port) {
  sim::Future<TcpSocket*> result(node().sim());
  auto it = listeners_.find(port);
  if (it == listeners_.end()) {
    throw std::logic_error("TcpStack::accept: port not listening");
  }
  if (!it->second.ready.empty()) {
    result.set(it->second.ready.front());
    it->second.ready.pop_front();
  } else {
    it->second.waiting.push_back(result);
  }
  return result;
}

void TcpStack::register_connection(TcpSocket* socket) {
  connections_[connection_key(socket->local_port_, socket->remote_node_,
                              socket->remote_port_)] = socket;
}

void TcpStack::handshake_complete(TcpSocket* socket) {
  auto it = listeners_.find(socket->local_port_);
  if (it == listeners_.end()) return;
  if (!it->second.waiting.empty()) {
    auto future = it->second.waiting.front();
    it->second.waiting.pop_front();
    future.set(socket);
  } else {
    it->second.ready.push_back(socket);
  }
}

void TcpStack::emit(int dst_node, const TcpHeader& header,
                    net::Buffer payload, sim::CpuPriority prio, bool front) {
  ++segments_tx_;
  ip_->send(dst_node, kProtoTcp,
            net::HeaderBlob::of(header, kTcpHeaderBytes), kTcpHeaderBytes,
            std::move(payload), {}, prio, front);
}

void TcpStack::datagram_received(int src_node, net::HeaderBlob l4,
                                 net::Buffer payload,
                                 sim::CpuPriority prio) {
  const auto* h = l4.get<TcpHeader>();
  if (h == nullptr) return;
  ++segments_rx_;

  // Per-segment receive processing: demux, checksum, stack traversal.
  auto& n = node();
  const std::int64_t bytes = payload.size();
  const sim::SimTime charge =
      config_.tcp_rx_cost + n.cpu().checksum_cost(bytes) +
      static_cast<sim::SimTime>(static_cast<double>(bytes) *
                                config_.tcp_rx_per_byte_ns);
  n.mem().checksum_pressure(bytes);
  n.cpu().run(prio, charge, [this, src_node, header = *h,
                             payload = std::move(payload), prio]() mutable {
    const std::uint64_t key =
        connection_key(header.dst_port, src_node, header.src_port);
    auto it = connections_.find(key);
    if (it != connections_.end()) {
      it->second->segment_received(header, std::move(payload), prio);
      return;
    }

    // No connection: a SYN to a listening port creates one (passive open).
    if ((header.flags & tcpflags::kSyn) &&
        listeners_.count(header.dst_port) > 0) {
      sockets_.push_back(
          std::make_unique<TcpSocket>(*this, header.dst_port));
      TcpSocket* s = sockets_.back().get();
      s->remote_node_ = src_node;
      s->remote_port_ = header.src_port;
      s->state_ = TcpSocket::State::kSynRcvd;
      s->rcv_nxt_ = header.seq + 1;
      s->snd_wnd_ = header.window;
      register_connection(s);

      TcpSocket::SentSegment synack;
      synack.flags = tcpflags::kSyn | tcpflags::kAck;
      synack.virtual_len = 1;
      s->unacked_.emplace(0u, synack);
      s->snd_nxt_ = 1;
      s->emit_segment(0, synack);
      s->arm_rto();
    }
    // Otherwise: drop (no RST modelling).
  });
}

}  // namespace clicsim::tcpip
