// TCP/IP stack configuration: protocol processing costs and transport
// sizing. Fixed per-packet costs model header processing, demux, socket
// locking and skb queue management of a period (Linux 2.4-class) stack;
// per-byte costs beyond copy+checksum model the additional data touching
// (skb bookkeeping, segmentation accounting) that made TCP/IP the paper's
// expensive baseline.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace clicsim::tcpip {

struct Config {
  // --- IP layer -------------------------------------------------------------
  sim::SimTime ip_tx_cost = sim::microseconds(2.5);
  sim::SimTime ip_rx_cost = sim::microseconds(3.0);
  sim::SimTime reassembly_timeout = sim::milliseconds(500);

  // --- TCP ------------------------------------------------------------------
  // Per-byte costs are calibrated so the TCP asymptotes land near the
  // paper's measurements (~270 Mb/s at MTU 9000, ~200 at 1500): the period
  // stack touches each byte several times beyond the copy and checksum
  // (skb management, segmentation bookkeeping, socket accounting).
  sim::SimTime tcp_tx_cost = sim::microseconds(7.0);
  sim::SimTime tcp_rx_cost = sim::microseconds(9.0);
  double tcp_tx_per_byte_ns = 12.0;
  double tcp_rx_per_byte_ns = 23.0;

  std::int64_t sndbuf = 256 * 1024;
  std::int64_t rcvbuf = 256 * 1024;
  std::int64_t init_cwnd_segments = 2;
  // Nagle's algorithm (on by default, as in an untuned period stack: the
  // paper's TCP baseline is the stock configuration).
  bool nodelay = false;
  int delack_segments = 2;
  sim::SimTime delack_timeout = sim::microseconds(500.0);
  sim::SimTime rto_initial = sim::milliseconds(20.0);
  sim::SimTime rto_min = sim::milliseconds(5.0);
  int dupack_threshold = 3;

  // --- UDP ------------------------------------------------------------------
  sim::SimTime udp_tx_cost = sim::microseconds(3.0);
  sim::SimTime udp_rx_cost = sim::microseconds(4.0);
};

inline constexpr std::int64_t kIpHeaderBytes = 20;
inline constexpr std::int64_t kTcpHeaderBytes = 20;
inline constexpr std::int64_t kUdpHeaderBytes = 8;

// Static single-subnet addressing: node i owns 10.0.0.i (the cluster runs
// one LAN; ARP is a static table, see os::AddressMap).
using IpAddr = std::uint32_t;
constexpr IpAddr ip_of_node(int node) {
  return 0x0A000000u | static_cast<std::uint32_t>(node);
}
constexpr int node_of_ip(IpAddr ip) { return static_cast<int>(ip & 0xFFFFFF); }

}  // namespace clicsim::tcpip
