// UDP: unreliable datagrams over IP (8-byte header). Large datagrams rely
// on IP fragmentation. Used by the PVM-style layer's control traffic and as
// the unreliable baseline in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "sim/task.hpp"
#include "tcpip/ip.hpp"

namespace clicsim::tcpip {

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::int64_t length = 0;
};

struct UdpDatagram {
  int src_node = -1;
  std::uint16_t src_port = 0;
  net::Buffer data;
};

class UdpStack : public IpTransport {
 public:
  UdpStack(IpLayer& ip, Config config);

  void bind(int port);

  // Fire-and-forget datagram; the future completes when the last
  // fragment's DMA descriptor finished (local send completion).
  [[nodiscard]] sim::Future<bool> sendto(int src_port, int dst_node,
                                         int dst_port, net::Buffer data);

  [[nodiscard]] sim::Future<UdpDatagram> recvfrom(int port);

  // IpTransport
  void datagram_received(int src_node, net::HeaderBlob l4,
                         net::Buffer payload, sim::CpuPriority prio) override;

  [[nodiscard]] std::uint64_t datagrams_sent() const { return tx_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return rx_; }
  [[nodiscard]] std::uint64_t dropped_unbound() const {
    return dropped_unbound_;
  }
  [[nodiscard]] os::Node& node() { return ip_->node(); }

 private:
  struct PortState {
    std::deque<UdpDatagram> ready;
    std::deque<sim::Future<UdpDatagram>> waiting;
  };

  IpLayer* ip_;
  Config config_;
  std::unordered_map<int, PortState> ports_;
  std::uint64_t tx_ = 0;
  std::uint64_t rx_ = 0;
  std::uint64_t dropped_unbound_ = 0;
};

}  // namespace clicsim::tcpip
