// TCP-like reliable byte-stream transport over the IP layer.
//
// Implements what the throughput/latency shape of the paper's baseline
// depends on: 20-byte header, three-way handshake, MSS from the MTU,
// sliding window with receiver-advertised flow control, slow start and
// congestion avoidance, cumulative + delayed acknowledgements, retransmit
// timeout with backoff, fast retransmit on duplicate ACKs, zero-window
// probing, FIN teardown, and the two-copy data path with software
// checksums charged to the CPU. No SACK or header timestamps (documented
// simplification — period stacks often ran without them on LANs).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "os/kernel.hpp"
#include "sim/task.hpp"
#include "tcpip/ip.hpp"

namespace clicsim::tcpip {

namespace tcpflags {
inline constexpr std::uint8_t kSyn = 0x01;
inline constexpr std::uint8_t kAck = 0x02;
inline constexpr std::uint8_t kFin = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
}  // namespace tcpflags

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::int64_t window = 0;  // advertised receive window, bytes
};

class TcpStack;

class TcpSocket {
 public:
  TcpSocket(TcpStack& stack, int local_port);

  // Active open; completes (true) when the handshake finishes.
  [[nodiscard]] sim::Future<bool> connect(int dst_node, int dst_port);

  // Copies `data` into the send buffer, blocking for space; returns the
  // byte count. Transmission proceeds asynchronously under the windows.
  [[nodiscard]] sim::Future<std::int64_t> send(net::Buffer data);

  // Returns between 1 and `max_bytes` bytes, or an empty buffer at EOF.
  [[nodiscard]] sim::Future<net::Buffer> recv(std::int64_t max_bytes);

  // Returns exactly `n` bytes (shorter only at EOF).
  [[nodiscard]] sim::Future<net::Buffer> recv_exact(std::int64_t n);

  // Half-close: FIN after any queued data.
  void close();

  [[nodiscard]] bool established() const {
    return state_ == State::kEstablished;
  }
  [[nodiscard]] bool peer_closed() const { return peer_fin_; }
  [[nodiscard]] int local_port() const { return local_port_; }
  [[nodiscard]] int remote_node() const { return remote_node_; }
  [[nodiscard]] int remote_port() const { return remote_port_; }

  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return fast_retransmits_;
  }
  [[nodiscard]] std::int64_t cwnd() const { return cwnd_; }

 private:
  friend class TcpStack;

  enum class State {
    kClosed,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinSent,
  };

  struct SentSegment {
    net::Buffer data;
    std::uint8_t flags = 0;
    std::int64_t virtual_len = 0;  // data + SYN/FIN sequence space
  };

  // Receive requests drain the socket queue incrementally (so a
  // recv_exact() larger than rcvbuf keeps the window open) and complete
  // once `min_bytes` accumulated or at EOF.
  struct RecvRequest {
    std::int64_t min_bytes;
    std::int64_t max_bytes;
    net::BufferChain acc;
    std::shared_ptr<os::CopyChain> chain;  // sequences the user-copy work
    sim::Future<net::Buffer> future;
  };

  struct SendRequest {
    net::Buffer data;
    std::int64_t offset;
    sim::Future<std::int64_t> future;
  };

  void segment_received(const TcpHeader& header, net::Buffer payload,
                        sim::CpuPriority prio);
  void process_ack(const TcpHeader& header);
  void accept_data(const TcpHeader& header, net::Buffer payload,
                   sim::CpuPriority prio);
  void try_output();
  void emit_segment(std::uint32_t seq, const SentSegment& segment);
  void send_ack_now(sim::CpuPriority prio = sim::CpuPriority::kSoftirq);
  void note_ack_owed(bool push, sim::CpuPriority prio);
  void cancel_delack();
  void arm_rto();
  void cancel_rto();
  void rto_expired();
  void arm_zero_window_probe();
  void pump_send_requests();
  void pump_recv_requests(sim::CpuPriority prio);
  net::Buffer take_from_rcv_queue(std::int64_t max_bytes);
  [[nodiscard]] std::int64_t sndbuf_bytes_used() const;
  [[nodiscard]] std::int64_t rcv_window() const;
  [[nodiscard]] std::int64_t in_flight() const;
  [[nodiscard]] std::int64_t mss() const;
  void become_established();

  TcpStack* stack_;
  State state_ = State::kClosed;
  int local_port_;
  int remote_node_ = -1;
  int remote_port_ = -1;

  // --- Transmit ---------------------------------------------------------------
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::int64_t snd_wnd_ = 0;
  std::int64_t cwnd_ = 0;
  std::int64_t ssthresh_ = 1 << 30;
  int dup_acks_ = 0;
  std::map<std::uint32_t, SentSegment> unacked_;
  std::deque<net::Buffer> unsent_;
  std::int64_t unsent_bytes_ = 0;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::deque<SendRequest> send_requests_;
  // Retransmit / probe timers are cancellable kernel (wheel) timers: ack
  // progress cancels them outright instead of bumping a generation counter
  // and stranding the superseded closure in the event heap.
  os::Kernel::TimerId rto_timer_ = os::Kernel::kInvalidTimer;
  int rto_backoff_ = 0;
  os::Kernel::TimerId probe_timer_ = os::Kernel::kInvalidTimer;

  // --- Receive -----------------------------------------------------------------
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, net::Buffer> ooo_;
  std::optional<std::uint32_t> ooo_fin_seq_;  // FIN that arrived out of order
  std::deque<net::Buffer> rcv_queue_;
  std::int64_t rcv_queued_bytes_ = 0;
  bool peer_fin_ = false;
  int segs_since_ack_ = 0;
  bool last_advertised_zero_ = false;
  os::Kernel::TimerId delack_timer_ = os::Kernel::kInvalidTimer;
  std::deque<RecvRequest> recv_requests_;

  std::optional<sim::Future<bool>> connect_future_;

  std::uint64_t retransmits_ = 0;
  std::uint64_t fast_retransmits_ = 0;
};

class TcpStack : public IpTransport {
 public:
  TcpStack(IpLayer& ip, Config config);

  // Creates an unbound socket with an ephemeral local port.
  TcpSocket& create_socket();

  // Passive open: accept() completes when a handshake finishes on `port`.
  void listen(int port);
  [[nodiscard]] sim::Future<TcpSocket*> accept(int port);

  // IpTransport
  void datagram_received(int src_node, net::HeaderBlob l4,
                         net::Buffer payload, sim::CpuPriority prio) override;

  [[nodiscard]] IpLayer& ip() { return *ip_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] os::Node& node() { return ip_->node(); }
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_tx_; }
  [[nodiscard]] std::uint64_t segments_received() const {
    return segments_rx_;
  }

 private:
  friend class TcpSocket;

  // Called by a socket leaving kSynRcvd: hands it to accept().
  void handshake_complete(TcpSocket* socket);

  struct Listener {
    std::deque<TcpSocket*> ready;
    std::deque<sim::Future<TcpSocket*>> waiting;
  };

  static std::uint64_t connection_key(int local_port, int remote_node,
                                      int remote_port) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                remote_node))
            << 32) |
           (static_cast<std::uint64_t>(local_port) << 16) |
           static_cast<std::uint64_t>(remote_port);
  }

  void register_connection(TcpSocket* socket);
  void emit(int dst_node, const TcpHeader& header, net::Buffer payload,
            sim::CpuPriority prio = sim::CpuPriority::kKernel,
            bool front = false);

  IpLayer* ip_;
  Config config_;
  std::vector<std::unique_ptr<TcpSocket>> sockets_;
  std::unordered_map<std::uint64_t, TcpSocket*> connections_;
  std::unordered_map<int, Listener> listeners_;
  int next_ephemeral_ = 10000;
  std::uint64_t segments_tx_ = 0;
  std::uint64_t segments_rx_ = 0;
};

}  // namespace clicsim::tcpip
