// Message transports under the mini-MPI layer.
//
// A Transport moves (envelope, payload) pairs reliably and in order between
// ranks. Two implementations reproduce Figure 6's contenders:
//   ClicTransport — MPI-CLIC: envelopes ride as the upper header of CLIC
//                   kMpi messages; native Ethernet broadcast is available.
//   TcpTransport  — MPI over the TCP/IP stack: a socket mesh; each message
//                   is a 16-byte envelope frame plus the payload bytes on
//                   the stream.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "clic/api.hpp"
#include "net/buffer.hpp"
#include "sim/task.hpp"
#include "tcpip/tcp.hpp"

namespace clicsim::mpi {

enum class MsgKind : std::uint8_t {
  kEager = 0,  // envelope + data in one message
  kRts = 1,    // rendezvous request (no data)
  kCts = 2,    // rendezvous clear-to-send
  kData = 3,   // rendezvous payload
  kBcast = 4,  // broadcast payload (CLIC native)
};

struct Envelope {
  MsgKind kind = MsgKind::kEager;
  std::int32_t tag = 0;
  std::int32_t context = 0;      // source rank (disambiguates co-located ranks)
  std::uint64_t msg_id = 0;      // rendezvous pairing
  std::int64_t total_bytes = 0;  // full message size (for RTS)
};
inline constexpr std::int64_t kEnvelopeBytes = 16;

class Transport {
 public:
  using Receiver =
      std::function<void(int src_rank, Envelope, net::Buffer)>;

  virtual ~Transport() = default;

  // Reliable ordered delivery of one message; `on_complete` fires at local
  // send completion (buffer reusable).
  virtual void send(int dst_rank, Envelope envelope, net::Buffer data,
                    std::function<void()> on_complete) = 0;

  virtual void set_receiver(Receiver receiver) = 0;

  // Native broadcast (CLIC only): delivers to every other rank.
  [[nodiscard]] virtual bool has_native_bcast() const { return false; }
  virtual void bcast(Envelope envelope, net::Buffer data,
                     std::function<void()> on_complete);

  [[nodiscard]] virtual sim::Simulator& sim() = 0;
  [[nodiscard]] virtual os::Node& node() = 0;
  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;
};

// --- MPI over CLIC ------------------------------------------------------------

class ClicTransport : public Transport {
 public:
  // Rank i lives on cluster node i and binds CLIC port `port`.
  ClicTransport(clic::ClicModule& module, int rank, int size,
                int port = 200);

  // Several ranks per node: rank r lives on node r / ranks_per_node and
  // binds port base_port + r % ranks_per_node. Co-located ranks talk over
  // CLIC's intra-node path (kernel memory, no NIC) — the multiprogramming
  // capability section 5 highlights.
  ClicTransport(clic::ClicModule& module, int rank, int size,
                int ranks_per_node, int base_port);

  void send(int dst_rank, Envelope envelope, net::Buffer data,
            std::function<void()> on_complete) override;
  void set_receiver(Receiver receiver) override;
  // Ethernet broadcast addresses nodes, not ports: with several ranks per
  // node only one co-located rank would hear it, so fall back to the tree.
  [[nodiscard]] bool has_native_bcast() const override {
    return ranks_per_node_ == 1;
  }
  void bcast(Envelope envelope, net::Buffer data,
             std::function<void()> on_complete) override;

  [[nodiscard]] sim::Simulator& sim() override {
    return module_->node().sim();
  }
  [[nodiscard]] os::Node& node() override { return module_->node(); }
  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }

 private:
  sim::Task recv_loop();
  [[nodiscard]] int node_of(int rank) const {
    return rank / ranks_per_node_;
  }
  [[nodiscard]] int port_of(int rank) const {
    return base_port_ + rank % ranks_per_node_;
  }

  clic::ClicModule* module_;
  int rank_;
  int size_;
  int ranks_per_node_;
  int base_port_;
  int port_;
  Receiver receiver_;
};

// --- MPI over TCP/IP ------------------------------------------------------------

class TcpTransport : public Transport {
 public:
  TcpTransport(tcpip::TcpStack& stack, int rank, int size,
               int base_port = 7000);

  void send(int dst_rank, Envelope envelope, net::Buffer data,
            std::function<void()> on_complete) override;
  void set_receiver(Receiver receiver) override;

  [[nodiscard]] sim::Simulator& sim() override {
    return stack_->node().sim();
  }
  [[nodiscard]] os::Node& node() override { return stack_->node(); }
  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }

 private:
  friend sim::Future<bool> connect_tcp_mesh(
      std::vector<std::unique_ptr<TcpTransport>>& transports);

  struct Peer {
    tcpip::TcpSocket* socket = nullptr;
    TcpTransport* remote = nullptr;
    // Out-of-band envelope metadata, in stream order (wire bytes for the
    // envelope are carried on the stream; the structured fields travel
    // here because payload bytes are simulated).
    std::deque<Envelope> inbound_envelopes;
  };

  sim::Task recv_loop(int src_rank);
  static sim::Task mesh_connect_task(
      std::vector<std::unique_ptr<TcpTransport>>* transports,
      sim::Future<bool> done);

  tcpip::TcpStack* stack_;
  int rank_;
  int size_;
  int base_port_;
  std::vector<Peer> peers_;
  Receiver receiver_;
};

// Builds and connects a full TCP transport mesh for `ranks` stacks.
[[nodiscard]] sim::Future<bool> connect_tcp_mesh(
    std::vector<std::unique_ptr<TcpTransport>>& transports);

}  // namespace clicsim::mpi
