#include "mpi/comm.hpp"

#include <algorithm>
#include <utility>

#include "hw/nic_collective.hpp"

namespace clicsim::mpi {

Communicator::Communicator(Transport& transport, Config config)
    : transport_(&transport), config_(config) {
  transport_->set_receiver(
      [this](int src, Envelope env, net::Buffer data) {
        on_message(src, std::move(env), std::move(data));
      });
}

void Communicator::charge_match() {
  transport_->node().cpu().run(sim::CpuPriority::kUser, config_.match_cost);
}

bool Communicator::matches(const PostedRecv& posted, int src, int tag) {
  return (posted.src == kAnySource || posted.src == src) &&
         (posted.tag == kAnyTag || posted.tag == tag);
}

// --- Point to point -------------------------------------------------------------

sim::Future<bool> Communicator::send(int dst, int tag, net::Buffer data) {
  sim::Future<bool> result(transport_->sim());
  ++sent_;
  charge_match();

  Envelope env;
  env.tag = tag;
  env.total_bytes = data.size();

  if (data.size() <= config_.eager_threshold) {
    env.kind = MsgKind::kEager;
    transport_->send(dst, env, std::move(data),
                     [result]() mutable { result.set(true); });
    return result;
  }

  // Rendezvous: announce, wait for clear-to-send, then move the payload.
  ++rndv_;
  env.kind = MsgKind::kRts;
  env.msg_id = (static_cast<std::uint64_t>(rank()) << 40) | next_msg_id_++;
  rndv_sends_.emplace(env.msg_id,
                      PendingRndvSend{dst, std::move(data), result});
  transport_->send(dst, env, net::Buffer::zeros(0), {});
  return result;
}

sim::Future<RecvResult> Communicator::recv(int src, int tag) {
  sim::Future<RecvResult> result(transport_->sim());
  charge_match();

  // Search the unexpected queue first (arrival order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    const bool match =
        (src == kAnySource || src == it->src) &&
        (tag == kAnyTag || tag == it->envelope.tag);
    if (!match) continue;

    UnexpectedMsg msg = std::move(*it);
    unexpected_.erase(it);
    if (msg.envelope.kind == MsgKind::kRts) {
      start_rendezvous_receive(msg.src, msg.envelope, result);
    } else {
      complete_recv(result, msg.src, msg.envelope.tag, std::move(msg.data));
    }
    return result;
  }

  posted_.push_back(PostedRecv{src, tag, result});
  return result;
}

void Communicator::complete_recv(sim::Future<RecvResult> future, int src,
                                 int tag, net::Buffer data) {
  ++received_;
  RecvResult r;
  r.src = src;
  r.tag = tag;
  r.data = std::move(data);
  future.set(std::move(r));
}

void Communicator::start_rendezvous_receive(int src, const Envelope& rts,
                                            sim::Future<RecvResult> future) {
  rndv_recvs_.emplace(rts.msg_id, PendingRndvRecv{future, src, rts.tag});
  Envelope cts;
  cts.kind = MsgKind::kCts;
  cts.msg_id = rts.msg_id;
  cts.tag = rts.tag;
  transport_->send(src, cts, net::Buffer::zeros(0), {});
}

void Communicator::on_message(int src, Envelope envelope, net::Buffer data) {
  switch (envelope.kind) {
    case MsgKind::kEager:
    case MsgKind::kBcast: {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (matches(*it, src, envelope.tag)) {
          auto future = it->future;
          posted_.erase(it);
          complete_recv(std::move(future), src, envelope.tag,
                        std::move(data));
          return;
        }
      }
      ++unexpected_count_;
      unexpected_.push_back(UnexpectedMsg{src, envelope, std::move(data)});
      return;
    }

    case MsgKind::kRts: {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (matches(*it, src, envelope.tag)) {
          auto future = it->future;
          posted_.erase(it);
          start_rendezvous_receive(src, envelope, std::move(future));
          return;
        }
      }
      ++unexpected_count_;
      unexpected_.push_back(UnexpectedMsg{src, envelope, {}});
      return;
    }

    case MsgKind::kCts: {
      auto it = rndv_sends_.find(envelope.msg_id);
      if (it == rndv_sends_.end()) return;
      PendingRndvSend pending = std::move(it->second);
      rndv_sends_.erase(it);
      Envelope env;
      env.kind = MsgKind::kData;
      env.msg_id = envelope.msg_id;
      env.tag = envelope.tag;
      auto future = pending.future;
      transport_->send(pending.dst, env, std::move(pending.data),
                       [future]() mutable { future.set(true); });
      return;
    }

    case MsgKind::kData: {
      auto it = rndv_recvs_.find(envelope.msg_id);
      if (it == rndv_recvs_.end()) return;
      PendingRndvRecv pending = std::move(it->second);
      rndv_recvs_.erase(it);
      complete_recv(std::move(pending.future), pending.src, pending.tag,
                    std::move(data));
      return;
    }
  }
}

// --- Collectives ------------------------------------------------------------------

sim::Future<bool> Communicator::barrier() {
  sim::Future<bool> done(transport_->sim());
  if (config_.nic_collective != nullptr) {
    config_.nic_collective->barrier(next_coll_seq_++,
                                    [done]() mutable { done.set(true); });
    return done;
  }
  barrier_task(done);
  return done;
}

sim::Task Communicator::barrier_task(sim::Future<bool> done) {
  // Dissemination barrier: log2(n) rounds of paired messages.
  const int n = size();
  int round = 0;
  for (int k = 1; k < n; k <<= 1, ++round) {
    const int dst = (rank() + k) % n;
    const int src = (rank() - k + n) % n;
    const int tag = kInternalTagBase + 0x100 + round;
    (void)co_await send(dst, tag, net::Buffer::zeros(0));
    (void)co_await recv(src, tag);
  }
  done.set(true);
}

sim::Future<net::Buffer> Communicator::bcast(int root, net::Buffer data) {
  sim::Future<net::Buffer> done(transport_->sim());
  if (config_.nic_collective != nullptr) {
    config_.nic_collective->bcast(
        next_coll_seq_++, root, std::move(data),
        [done](net::Buffer out) mutable { done.set(std::move(out)); });
    return done;
  }
  if (transport_->has_native_bcast() && config_.use_native_bcast &&
      size() > 2) {
    if (rank() == root) {
      bcast_native_root(std::move(data), done);
    } else {
      // Wait for the broadcast payload, then confirm to the root — CLIC's
      // Ethernet broadcast is a datagram; MPI adds the confirmation.
      bcast_task(root, std::move(data), done);
    }
    return done;
  }
  bcast_task(root, std::move(data), done);
  return done;
}

sim::Task Communicator::bcast_native_root(net::Buffer data,
                                          sim::Future<net::Buffer> done) {
  Envelope env;
  env.kind = MsgKind::kBcast;
  env.tag = kInternalTagBase + 0x200;
  sim::Future<bool> sent(transport_->sim());
  transport_->bcast(env, data, [sent]() mutable { sent.set(true); });
  (void)co_await sent;
  // Collect confirmations (reliability over the Ethernet datagram).
  for (int i = 0; i < size() - 1; ++i) {
    (void)co_await recv(kAnySource, kInternalTagBase + 0x201);
  }
  done.set(std::move(data));
}

sim::Task Communicator::bcast_task(int root, net::Buffer data,
                                   sim::Future<net::Buffer> done) {
  const int n = size();
  const int tag = kInternalTagBase + 0x200;

  if (transport_->has_native_bcast() && config_.use_native_bcast && n > 2 &&
      rank() != root) {
    RecvResult r = co_await recv(root, tag);
    (void)co_await send(root, kInternalTagBase + 0x201,
                        net::Buffer::zeros(0));
    done.set(std::move(r.data));
    co_return;
  }

  // Binomial tree.
  const int relative = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int src = (rank() - mask + n) % n;
      RecvResult r = co_await recv(src, tag);
      data = std::move(r.data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const int dst = (rank() + mask) % n;
      (void)co_await send(dst, tag, data);
    }
    mask >>= 1;
  }
  done.set(std::move(data));
}

sim::Future<net::Buffer> Communicator::reduce_sum(int root,
                                                  net::Buffer data) {
  sim::Future<net::Buffer> done(transport_->sim());
  reduce_task(root, std::move(data), done);
  return done;
}

sim::Task Communicator::reduce_task(int root, net::Buffer data,
                                    sim::Future<net::Buffer> done) {
  // Binomial-tree reduction toward `root`.
  const int n = size();
  const int tag = kInternalTagBase + 0x300;
  const int relative = (rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < n) {
        const int src = (src_rel + root) % n;
        RecvResult r = co_await recv(src, tag);
        // Combine contributions (element-wise sum): arithmetic cost.
        const auto combine = static_cast<sim::SimTime>(
            static_cast<double>(r.data.size()) * config_.reduce_ns_per_byte);
        sim::Future<bool> charged(transport_->sim());
        transport_->node().cpu().run(sim::CpuPriority::kUser, combine,
                                     [charged]() mutable {
                                       charged.set(true);
                                     });
        (void)co_await charged;
        data = net::Buffer::zeros(std::max(data.size(), r.data.size()));
      }
    } else {
      const int dst = ((relative ^ mask) + root) % n;
      (void)co_await send(dst, tag, std::move(data));
      done.set(net::Buffer::zeros(0));
      co_return;
    }
    mask <<= 1;
  }
  done.set(std::move(data));
}

sim::Future<net::Buffer> Communicator::allreduce_sum(net::Buffer data) {
  sim::Future<net::Buffer> done(transport_->sim());
  if (config_.nic_collective != nullptr) {
    config_.nic_collective->allreduce(
        next_coll_seq_++, std::move(data),
        [done](net::Buffer out) mutable { done.set(std::move(out)); });
    return done;
  }
  allreduce_task(std::move(data), done);
  return done;
}

sim::Task Communicator::allreduce_task(net::Buffer data,
                                       sim::Future<net::Buffer> done) {
  const std::int64_t bytes = data.size();
  net::Buffer reduced = co_await reduce_sum(0, std::move(data));
  if (rank() != 0) reduced = net::Buffer::zeros(bytes);
  net::Buffer out = co_await bcast(0, std::move(reduced));
  done.set(std::move(out));
}

sim::Future<std::vector<net::Buffer>> Communicator::gather(
    int root, net::Buffer data) {
  sim::Future<std::vector<net::Buffer>> done(transport_->sim());
  gather_task(root, std::move(data), done);
  return done;
}

sim::Task Communicator::gather_task(
    int root, net::Buffer data,
    sim::Future<std::vector<net::Buffer>> done) {
  const int n = size();
  const int tag = kInternalTagBase + 0x400;
  if (rank() != root) {
    (void)co_await send(root, tag, std::move(data));
    done.set({});
    co_return;
  }
  std::vector<net::Buffer> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(rank())] = std::move(data);
  for (int i = 0; i < n - 1; ++i) {
    RecvResult r = co_await recv(kAnySource, tag);
    out[static_cast<std::size_t>(r.src)] = std::move(r.data);
  }
  done.set(std::move(out));
}

sim::Future<net::Buffer> Communicator::scatter(
    int root, std::vector<net::Buffer> chunks) {
  sim::Future<net::Buffer> done(transport_->sim());
  scatter_task(root, std::move(chunks), done);
  return done;
}

sim::Task Communicator::scatter_task(int root,
                                     std::vector<net::Buffer> chunks,
                                     sim::Future<net::Buffer> done) {
  const int n = size();
  const int tag = kInternalTagBase + 0x500;
  if (rank() == root) {
    net::Buffer own;
    for (int i = 0; i < n; ++i) {
      net::Buffer chunk = i < static_cast<int>(chunks.size())
                              ? std::move(chunks[static_cast<std::size_t>(i)])
                              : net::Buffer::zeros(0);
      if (i == rank()) {
        own = std::move(chunk);
      } else {
        (void)co_await send(i, tag, std::move(chunk));
      }
    }
    done.set(std::move(own));
    co_return;
  }
  RecvResult r = co_await recv(root, tag);
  done.set(std::move(r.data));
}

sim::Future<std::vector<net::Buffer>> Communicator::alltoall(
    std::vector<net::Buffer> chunks) {
  sim::Future<std::vector<net::Buffer>> done(transport_->sim());
  alltoall_task(std::move(chunks), done);
  return done;
}

sim::Task Communicator::alltoall_task(
    std::vector<net::Buffer> chunks,
    sim::Future<std::vector<net::Buffer>> done) {
  const int n = size();
  const int tag = kInternalTagBase + 0x600;
  std::vector<net::Buffer> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(rank())] =
      rank() < static_cast<int>(chunks.size())
          ? std::move(chunks[static_cast<std::size_t>(rank())])
          : net::Buffer::zeros(0);

  // Rotated schedule so the sends do not all converge on rank 0 at once.
  for (int step = 1; step < n; ++step) {
    const int dst = (rank() + step) % n;
    net::Buffer chunk = dst < static_cast<int>(chunks.size())
                            ? std::move(chunks[static_cast<std::size_t>(dst)])
                            : net::Buffer::zeros(0);
    (void)co_await send(dst, tag, std::move(chunk));
  }
  for (int step = 1; step < n; ++step) {
    RecvResult r = co_await recv(kAnySource, tag);
    out[static_cast<std::size_t>(r.src)] = std::move(r.data);
  }
  done.set(std::move(out));
}

}  // namespace clicsim::mpi
