#include "mpi/transport.hpp"

#include <stdexcept>
#include <utility>

namespace clicsim::mpi {

namespace {

// Adapts a Future-returning protocol call to a completion callback.
sim::Task complete_when_done(sim::Future<clic::SendStatus> future,
                             std::function<void()> done) {
  (void)co_await future;
  if (done) done();
}

sim::Task complete_when_sent(sim::Future<std::int64_t> future,
                             std::function<void()> done) {
  (void)co_await future;
  if (done) done();
}

}  // namespace

void Transport::bcast(Envelope /*envelope*/, net::Buffer /*data*/,
                      std::function<void()> /*on_complete*/) {
  throw std::logic_error("Transport: native broadcast not supported");
}

// ============================ ClicTransport ==================================

ClicTransport::ClicTransport(clic::ClicModule& module, int rank, int size,
                             int port)
    : ClicTransport(module, rank, size, /*ranks_per_node=*/1, port) {}

ClicTransport::ClicTransport(clic::ClicModule& module, int rank, int size,
                             int ranks_per_node, int base_port)
    : module_(&module),
      rank_(rank),
      size_(size),
      ranks_per_node_(ranks_per_node),
      base_port_(base_port),
      port_(base_port + rank % ranks_per_node) {
  module_->bind_port(port_);
  recv_loop();
}

void ClicTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

void ClicTransport::send(int dst_rank, Envelope envelope, net::Buffer data,
                         std::function<void()> on_complete) {
  envelope.total_bytes = data.size();
  // The envelope's context field disambiguates the source rank when
  // several ranks share a node (the CLIC port pair alone is ambiguous).
  envelope.context = rank_;
  auto future = module_->send(
      port_, node_of(dst_rank), port_of(dst_rank), std::move(data),
      clic::SendMode::kSync, clic::PacketType::kMpi,
      net::HeaderBlob::of(envelope, kEnvelopeBytes));
  complete_when_done(std::move(future), std::move(on_complete));
}

void ClicTransport::bcast(Envelope envelope, net::Buffer data,
                          std::function<void()> on_complete) {
  envelope.total_bytes = data.size();
  envelope.context = rank_;
  auto future = module_->broadcast(
      port_, port_, std::move(data),
      net::HeaderBlob::of(envelope, kEnvelopeBytes));
  complete_when_done(std::move(future), std::move(on_complete));
}

sim::Task ClicTransport::recv_loop() {
  for (;;) {
    clic::Message m = co_await module_->recv(port_);
    const Envelope* env = m.meta.get<Envelope>();
    if (env == nullptr || !receiver_) continue;
    // Source rank travels in the envelope (supports co-located ranks);
    // single-rank-per-node setups fall back to the node id.
    const int src_rank = ranks_per_node_ > 1 ? env->context : m.src_node;
    receiver_(src_rank, *env, std::move(m.data));
  }
}

// ============================= TcpTransport ==================================

TcpTransport::TcpTransport(tcpip::TcpStack& stack, int rank, int size,
                           int base_port)
    : stack_(&stack),
      rank_(rank),
      size_(size),
      base_port_(base_port),
      peers_(static_cast<std::size_t>(size)) {}

void TcpTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

void TcpTransport::send(int dst_rank, Envelope envelope, net::Buffer data,
                        std::function<void()> on_complete) {
  Peer& peer = peers_.at(static_cast<std::size_t>(dst_rank));
  if (peer.socket == nullptr) {
    throw std::logic_error("TcpTransport: mesh not connected");
  }
  envelope.total_bytes = data.size();

  // Structured envelope fields travel out of band (payload bytes are
  // simulated); the 16 wire bytes ride the stream ahead of the data, so
  // ordering matches exactly.
  peer.remote->peers_[static_cast<std::size_t>(rank_)]
      .inbound_envelopes.push_back(envelope);

  (void)peer.socket->send(net::Buffer::zeros(kEnvelopeBytes));
  complete_when_sent(peer.socket->send(std::move(data)),
                     std::move(on_complete));
}

sim::Task TcpTransport::recv_loop(int src_rank) {
  Peer& peer = peers_.at(static_cast<std::size_t>(src_rank));
  for (;;) {
    net::Buffer env_bytes = co_await peer.socket->recv_exact(kEnvelopeBytes);
    if (env_bytes.size() < kEnvelopeBytes) co_return;  // peer closed
    if (peer.inbound_envelopes.empty()) {
      throw std::logic_error("TcpTransport: envelope stream desync");
    }
    Envelope env = peer.inbound_envelopes.front();
    peer.inbound_envelopes.pop_front();

    net::Buffer data;
    if (env.total_bytes > 0) {
      data = co_await peer.socket->recv_exact(env.total_bytes);
    }
    if (receiver_) receiver_(src_rank, env, std::move(data));
  }
}

sim::Task TcpTransport::mesh_connect_task(
    std::vector<std::unique_ptr<TcpTransport>>* ts, sim::Future<bool> done) {
  auto& transports = *ts;
  const int n = static_cast<int>(transports.size());

  // Rank j listens for connections from every lower rank i on port
  // base + i; rank i actively connects to each higher rank.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) {
      transports[static_cast<std::size_t>(j)]->stack_->listen(
          transports[static_cast<std::size_t>(j)]->base_port_ + i);
    }
  }
  for (int i = 0; i < n; ++i) {
    auto& ti = transports[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      auto& tj = transports[static_cast<std::size_t>(j)];
      auto& sock = ti->stack_->create_socket();
      const bool ok = co_await sock.connect(j, tj->base_port_ + i);
      if (!ok) {
        done.set(false);
        co_return;
      }
      tcpip::TcpSocket* accepted =
          co_await tj->stack_->accept(tj->base_port_ + i);

      ti->peers_[static_cast<std::size_t>(j)].socket = &sock;
      ti->peers_[static_cast<std::size_t>(j)].remote = tj.get();
      tj->peers_[static_cast<std::size_t>(i)].socket = accepted;
      tj->peers_[static_cast<std::size_t>(i)].remote = ti.get();
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      transports[static_cast<std::size_t>(i)]->recv_loop(j);
    }
  }
  done.set(true);
}

sim::Future<bool> connect_tcp_mesh(
    std::vector<std::unique_ptr<TcpTransport>>& transports) {
  if (transports.empty()) {
    throw std::invalid_argument("connect_tcp_mesh: no transports");
  }
  sim::Future<bool> done(transports.front()->sim());
  TcpTransport::mesh_connect_task(&transports, done);
  return done;
}

}  // namespace clicsim::mpi
