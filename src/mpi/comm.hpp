// Mini-MPI: tagged point-to-point messaging with eager/rendezvous
// protocols, wildcard matching, an unexpected-message queue, and the
// collectives Figure 6's workloads (and the LAM-MPI-on-CLIC port of [12])
// exercise: Barrier, Bcast, Reduce, Allreduce, Gather.
//
// One Communicator per rank, stacked on a Transport (CLIC or TCP). Tags
// >= kInternalTagBase are reserved for collectives.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mpi/transport.hpp"

namespace clicsim::hw {
class NicCollectiveEngine;
}

namespace clicsim::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
inline constexpr int kInternalTagBase = 1 << 20;

struct Config {
  std::int64_t eager_threshold = 16 * 1024;  // rendezvous above this
  sim::SimTime match_cost = sim::nanoseconds(500);   // queue operations
  double reduce_ns_per_byte = 1.0;                   // combine arithmetic
  // Allow bcast to ride the transport's native broadcast (CLIC's Ethernet
  // datagram + per-rank confirmations). Disable to force the binomial
  // host tree — the reliable choice at hundreds of ranks, where a single
  // dropped broadcast frame has no datagram-level retry.
  bool use_native_bcast = true;
  // When set (this rank's NIC offload engine, see hw/nic_collective.hpp),
  // barrier/bcast/allreduce run on the cards instead of host trees. Every
  // rank of the communicator must either set it or leave it null.
  hw::NicCollectiveEngine* nic_collective = nullptr;
};

struct RecvResult {
  int src = -1;
  int tag = 0;
  net::Buffer data;
};

class Communicator {
 public:
  explicit Communicator(Transport& transport, Config config = {});

  [[nodiscard]] int rank() const { return transport_->rank(); }
  [[nodiscard]] int size() const { return transport_->size(); }

  // --- Point to point -------------------------------------------------------
  // Standard-mode send: eager messages complete at local hand-off;
  // rendezvous sends complete when the payload left for a matched receive.
  [[nodiscard]] sim::Future<bool> send(int dst, int tag, net::Buffer data);

  [[nodiscard]] sim::Future<RecvResult> recv(int src = kAnySource,
                                             int tag = kAnyTag);

  // --- Collectives -------------------------------------------------------------
  [[nodiscard]] sim::Future<bool> barrier();
  // Returns the broadcast payload on every rank (root passes the data).
  [[nodiscard]] sim::Future<net::Buffer> bcast(int root, net::Buffer data);
  [[nodiscard]] sim::Future<net::Buffer> reduce_sum(int root,
                                                    net::Buffer data);
  [[nodiscard]] sim::Future<net::Buffer> allreduce_sum(net::Buffer data);
  [[nodiscard]] sim::Future<std::vector<net::Buffer>> gather(
      int root, net::Buffer data);
  // Root distributes chunks[i] to rank i; every rank returns its chunk.
  [[nodiscard]] sim::Future<net::Buffer> scatter(
      int root, std::vector<net::Buffer> chunks);
  // Personalized all-to-all exchange: sends chunks[j] to rank j and
  // returns the n received chunks indexed by source.
  [[nodiscard]] sim::Future<std::vector<net::Buffer>> alltoall(
      std::vector<net::Buffer> chunks);

  // --- Statistics ---------------------------------------------------------------
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }
  [[nodiscard]] std::uint64_t unexpected_messages() const {
    return unexpected_count_;
  }
  [[nodiscard]] std::uint64_t rendezvous_sends() const { return rndv_; }
  [[nodiscard]] Transport& transport() { return *transport_; }

 private:
  struct PostedRecv {
    int src;
    int tag;
    sim::Future<RecvResult> future;
  };

  struct UnexpectedMsg {
    int src;
    Envelope envelope;
    net::Buffer data;  // eager payload (empty for an RTS)
  };

  struct PendingRndvSend {
    int dst;
    net::Buffer data;
    sim::Future<bool> future;
  };

  struct PendingRndvRecv {
    sim::Future<RecvResult> future;
    int src;
    int tag;
  };

  void on_message(int src, Envelope envelope, net::Buffer data);
  static bool matches(const PostedRecv& posted, int src, int tag);
  void complete_recv(sim::Future<RecvResult> future, int src, int tag,
                     net::Buffer data);
  void start_rendezvous_receive(int src, const Envelope& rts,
                                sim::Future<RecvResult> future);
  void charge_match();

  // Collective bodies (coroutines fulfilling the returned futures).
  sim::Task barrier_task(sim::Future<bool> done);
  sim::Task bcast_task(int root, net::Buffer data,
                       sim::Future<net::Buffer> done);
  sim::Task bcast_native_root(net::Buffer data,
                              sim::Future<net::Buffer> done);
  sim::Task reduce_task(int root, net::Buffer data,
                        sim::Future<net::Buffer> done);
  sim::Task allreduce_task(net::Buffer data, sim::Future<net::Buffer> done);
  sim::Task gather_task(int root, net::Buffer data,
                        sim::Future<std::vector<net::Buffer>> done);
  sim::Task scatter_task(int root, std::vector<net::Buffer> chunks,
                         sim::Future<net::Buffer> done);
  sim::Task alltoall_task(std::vector<net::Buffer> chunks,
                          sim::Future<std::vector<net::Buffer>> done);

  Transport* transport_;
  Config config_;
  std::deque<PostedRecv> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  std::unordered_map<std::uint64_t, PendingRndvSend> rndv_sends_;
  std::unordered_map<std::uint64_t, PendingRndvRecv> rndv_recvs_;
  std::uint64_t next_msg_id_ = 1;
  // Sequence for NIC-offloaded collectives; consistent across ranks because
  // collectives are issued in the same order everywhere (MPI contract).
  std::uint32_t next_coll_seq_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t unexpected_count_ = 0;
  std::uint64_t rndv_ = 0;
};

}  // namespace clicsim::mpi
